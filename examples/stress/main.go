// Stress reproduces the paper's motivating scenario (Figure 1): a
// 100-member cluster where a subset of members runs a CPU-exhausting
// workload — modelled as a heavy block/wake duty cycle — and healthy
// members get falsely accused of failure under plain SWIM, while
// Lifeguard suppresses almost all false positives.
//
//	go run ./examples/stress [-stressed 8] [-minutes 2]
//
// Runs on the discrete-event simulator in virtual time: five simulated
// minutes take a few wall-clock seconds.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"lifeguard/simulation"
)

func main() {
	stressed := flag.Int("stressed", 8, "number of CPU-exhausted members (1-32)")
	minutes := flag.Int("minutes", 2, "workload duration in simulated minutes")
	seed := flag.Int64("seed", 1, "simulation seed")
	flag.Parse()

	if err := run(*stressed, *minutes, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "stress:", err)
		os.Exit(1)
	}
}

func run(stressed, minutes int, seed int64) error {
	fmt.Printf("100-member cluster, %d members CPU-exhausted for %d simulated minutes\n\n",
		stressed, minutes)

	params := simulation.StressParams{
		Stressed: stressed,
		Duration: time.Duration(minutes) * time.Minute,
	}

	for _, proto := range []simulation.ProtocolConfig{
		simulation.ConfigSWIM,
		simulation.ConfigLifeguard,
	} {
		start := time.Now()
		res, err := simulation.RunStress(
			simulation.ClusterConfig{N: 100, Seed: seed, Protocol: proto},
			params,
		)
		if err != nil {
			return err
		}
		fmt.Printf("%-10s total false positives: %4d   at healthy members: %4d   (simulated in %v)\n",
			proto.Name, res.FP, res.FPHealthy, time.Since(start).Round(time.Millisecond))
	}

	fmt.Println("\nUnder SWIM, the overloaded members keep accusing healthy peers and the")
	fmt.Println("accusations time out before refutations are processed. Lifeguard's local")
	fmt.Println("health awareness backs the overloaded detectors off and holds suspicion")
	fmt.Println("timeouts high exactly at the members that are not processing gossip.")
	return nil
}
