// Tuning explores the paper's §V-F4 trade-off: lowering Lifeguard's
// suspicion timeout parameters (α, β) buys lower detection latency at
// the cost of more false positives. It runs a Threshold experiment (for
// latency) and an Interval experiment (for false positives) per tuning
// and prints both against the SWIM baseline, a miniature Table VII.
//
//	go run ./examples/tuning
package main

import (
	"fmt"
	"os"
	"time"

	"lifeguard/simulation"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "tuning:", err)
		os.Exit(1)
	}
}

type row struct {
	label     string
	proto     simulation.ProtocolConfig
	medianDet time.Duration
	fp        int
}

func run() error {
	const (
		n    = 64
		seed = 21
	)
	tunings := []struct {
		alpha, beta float64
	}{
		{2, 2}, {2, 6}, {5, 2}, {5, 6},
	}

	rows := []row{{label: "SWIM (baseline)", proto: simulation.ConfigSWIM}}
	for _, t := range tunings {
		proto := simulation.ConfigLifeguard
		proto.Alpha, proto.Beta = t.alpha, t.beta
		rows = append(rows, row{
			label: fmt.Sprintf("Lifeguard α=%g β=%g", t.alpha, t.beta),
			proto: proto,
		})
	}

	fmt.Printf("measuring %d configurations on a %d-member simulated cluster...\n\n", len(rows), n)
	for i := range rows {
		r := &rows[i]

		// Latency: one long anomaly, C=4, D=32s (true failures).
		th, err := simulation.RunThreshold(
			simulation.ClusterConfig{N: n, Seed: seed, Protocol: r.proto},
			simulation.ThresholdParams{C: 4, D: 32768 * time.Millisecond},
		)
		if err != nil {
			return err
		}
		if len(th.FirstDetect) > 0 {
			var sum time.Duration
			for _, d := range th.FirstDetect {
				sum += d
			}
			r.medianDet = sum / time.Duration(len(th.FirstDetect))
		}

		// False positives: intermittent anomalies, C=8.
		iv, err := simulation.RunInterval(
			simulation.ClusterConfig{N: n, Seed: seed, Protocol: r.proto},
			simulation.IntervalParams{C: 8, D: 16384 * time.Millisecond, I: 64 * time.Millisecond},
		)
		if err != nil {
			return err
		}
		r.fp = iv.FP
	}

	base := rows[0]
	fmt.Printf("%-22s %14s %10s %12s %10s\n",
		"Configuration", "mean 1st det", "% SWIM", "false pos", "% SWIM")
	for _, r := range rows {
		fmt.Printf("%-22s %14v %9.0f%% %12d %9.0f%%\n",
			r.label,
			r.medianDet.Round(10*time.Millisecond),
			pct(r.medianDet.Seconds(), base.medianDet.Seconds()),
			r.fp,
			pct(float64(r.fp), float64(base.fp)))
	}

	fmt.Println("\nLower α/β trades detection latency against false positives (paper §V-F4):")
	fmt.Println("α=2,β=2 roughly halves detection time yet still beats SWIM on false")
	fmt.Println("positives; α=5,β=6 keeps SWIM's latency and suppresses nearly all of them.")
	return nil
}

func pct(v, base float64) float64 {
	if base == 0 {
		return 0
	}
	return v / base * 100
}
