// Flapping demonstrates the paper's §II failure mode: a member with
// intermittent slow processing (bursty CPU starvation, the Interval
// experiment's anomaly model) repeatedly oscillates between dead and
// alive in the cluster's view under SWIM — each flap a costly failover —
// while Lifeguard keeps the view stable.
//
//	go run ./examples/flapping [-c 8] [-block 16s] [-wake 64ms]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"lifeguard/simulation"
)

func main() {
	c := flag.Int("c", 8, "number of concurrently slow members")
	block := flag.Duration("block", 16*time.Second, "anomaly duration per cycle (paper's D)")
	wake := flag.Duration("wake", 64*time.Millisecond, "normal interval between anomalies (paper's I)")
	seed := flag.Int64("seed", 7, "simulation seed")
	flag.Parse()

	if err := run(*c, *block, *wake, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "flapping:", err)
		os.Exit(1)
	}
}

func run(c int, block, wake time.Duration, seed int64) error {
	fmt.Printf("128-member cluster, %d members cycling %v blocked / %v awake for 2 simulated minutes\n\n",
		c, block, wake)
	fmt.Printf("%-14s %-10s %-12s %-12s %-10s %-10s\n",
		"Configuration", "false-pos", "fp@healthy", "true-pos", "msgs", "MiB sent")

	for _, proto := range simulation.Configurations {
		res, err := simulation.RunInterval(
			simulation.ClusterConfig{N: 128, Seed: seed, Protocol: proto},
			simulation.IntervalParams{C: c, D: block, I: wake},
		)
		if err != nil {
			return err
		}
		fmt.Printf("%-14s %-10d %-12d %-12d %-10d %-10.1f\n",
			proto.Name, res.FP, res.FPHealthy, res.TruePositives,
			res.MsgsSent, float64(res.BytesSent)/(1<<20))
	}

	fmt.Println("\nEvery false positive is a healthy member flapping dead→alive somewhere in")
	fmt.Println("the cluster. The Interval anomaly cycles keep the slow members' suspicion")
	fmt.Println("timers racing their unprocessed refutations; Lifeguard's LHA-Suspicion")
	fmt.Println("keeps those timers high exactly where gossip is not being processed.")
	return nil
}
