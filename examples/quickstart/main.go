// Quickstart: a five-member Lifeguard cluster over real UDP on
// loopback. It forms the group, prints the converged membership, kills
// one member, and watches the failure detector declare it dead.
//
//	go run ./examples/quickstart
//
// Runs in about half a minute of wall time (the failure detector's
// suspicion timeout dominates).
package main

import (
	"fmt"
	"os"
	"sort"
	"time"

	"lifeguard"
)

const clusterSize = 5

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

type logger struct{ name string }

func (l logger) logf(format string, args ...any) {
	fmt.Printf("%7.2fs [%s] %s\n", time.Since(start).Seconds(), l.name, fmt.Sprintf(format, args...))
}

func (l logger) NotifyJoin(m lifeguard.Member)    { l.logf("join:    %s", m.Name) }
func (l logger) NotifySuspect(m lifeguard.Member) { l.logf("suspect: %s", m.Name) }
func (l logger) NotifyAlive(m lifeguard.Member)   { l.logf("refuted: %s", m.Name) }
func (l logger) NotifyDead(m lifeguard.Member)    { l.logf("dead:    %s", m.Name) }
func (l logger) NotifyUpdate(m lifeguard.Member)  { l.logf("update:  %s", m.Name) }

var start = time.Now()

func run() error {
	type member struct {
		node *lifeguard.Node
		tr   *lifeguard.UDPTransport
	}
	var cluster []member
	defer func() {
		for _, m := range cluster {
			m.node.Shutdown()
			m.tr.Close()
		}
	}()

	// Boot N members on loopback; everyone joins through the first.
	for i := 0; i < clusterSize; i++ {
		name := fmt.Sprintf("member-%d", i)
		tr, err := lifeguard.NewUDPTransport("127.0.0.1:0")
		if err != nil {
			return err
		}
		cfg := lifeguard.DefaultConfig(name)
		cfg.Addr = tr.LocalAddr()
		cfg.Transport = tr
		cfg.Events = logger{name: name}
		// Faster protocol period than the paper's 1 s, to keep the demo
		// brisk; every timeout scales with it.
		cfg.ProbeInterval = 500 * time.Millisecond
		cfg.ProbeTimeout = 250 * time.Millisecond

		node, err := lifeguard.NewNode(cfg)
		if err != nil {
			tr.Close()
			return err
		}
		tr.Run(node.HandlePacket)
		if err := node.Start(); err != nil {
			tr.Close()
			return err
		}
		cluster = append(cluster, member{node: node, tr: tr})
		if i > 0 {
			if err := node.Join(cluster[0].node.Addr()); err != nil {
				return err
			}
		}
	}

	fmt.Println("--- forming cluster ---")
	time.Sleep(3 * time.Second)
	printMembers(cluster[0].node)

	fmt.Println("--- killing member-3 (no graceful leave) ---")
	cluster[3].node.Shutdown()
	cluster[3].tr.Close()

	// Suspicion timeout here is α·log10(n)·probeInterval ≈ 2.5 s floor,
	// starting higher under LHA-Suspicion; give it time to confirm.
	deadline := time.Now().Add(45 * time.Second)
	for time.Now().Before(deadline) {
		if m, ok := cluster[0].node.Member("member-3"); ok && m.State == lifeguard.StateDead {
			break
		}
		time.Sleep(500 * time.Millisecond)
	}
	printMembers(cluster[0].node)

	m, _ := cluster[0].node.Member("member-3")
	if m.State != lifeguard.StateDead {
		return fmt.Errorf("member-3 not detected as dead within deadline (state %v)", m.State)
	}
	fmt.Println("--- member-3 correctly detected as failed ---")
	return nil
}

func printMembers(n *lifeguard.Node) {
	ms := n.Members()
	sort.Slice(ms, func(i, j int) bool { return ms[i].Name < ms[j].Name })
	fmt.Printf("membership at %s:\n", n.Name())
	for _, m := range ms {
		fmt.Printf("  %-10s %-8s inc=%d\n", m.Name, m.State, m.Incarnation)
	}
}
