// Partition demonstrates the robustness property that motivates SWIM in
// the paper's §II: "Even fully partitioned sub-groups can continue to
// operate, and will automatically merge once connectivity is
// re-established." A cluster is split in half, both halves settle on
// their own membership, then the network heals and the halves re-merge
// through the reconnect + anti-entropy + refutation cascade.
//
//	go run ./examples/partition [-n 32] [-split 60s]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"lifeguard/simulation"
)

func main() {
	n := flag.Int("n", 32, "cluster size")
	split := flag.Duration("split", 60*time.Second, "partition duration")
	seed := flag.Int64("seed", 3, "simulation seed")
	flag.Parse()

	if err := run(*n, *split, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "partition:", err)
		os.Exit(1)
	}
}

func run(n int, split time.Duration, seed int64) error {
	fmt.Printf("%d-member cluster, full bisection for %v, then heal\n\n", n, split)

	res, err := simulation.RunPartition(
		simulation.ClusterConfig{N: n, Seed: seed, Protocol: simulation.ConfigLifeguard},
		simulation.PartitionParams{
			SizeA:      n / 2,
			Duration:   split,
			HealBudget: 5 * time.Minute,
		},
	)
	if err != nil {
		return err
	}

	fmt.Printf("side A settled on its own membership during the split: %v\n", res.SideAConverged)
	fmt.Printf("side B settled on its own membership during the split: %v\n", res.SideBConverged)
	fmt.Printf("cross-partition members held dead/suspect at split end: %d (max %d)\n",
		res.CrossDeclaredDead, (n/2)*(n-n/2)*2)
	if res.Remerged {
		fmt.Printf("groups automatically re-merged %v after healing\n", res.RemergeTime.Round(time.Second))
	} else {
		fmt.Println("groups did NOT re-merge within the budget")
	}

	fmt.Println("\nHealing is driven by the reconnect loop (a periodic push-pull with a")
	fmt.Println("random dead member, as Consul's Serf layer does): the first exchange to")
	fmt.Println("cross the healed link makes both sides refute their death records with")
	fmt.Println("higher incarnations, and gossip spreads the revivals from there.")
	return nil
}
