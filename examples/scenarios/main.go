// Scenarios: the registry-driven experiment harness. It lists every
// registered scenario, then runs the rolling-restart scenario — members
// leaving and rejoining under the same name in staggered waves, the
// shape of a rolling deploy — through the shared parallel executor.
// Each of the five Table I configurations is an independent seeded cell,
// so they run concurrently; because every cell's seed derives from its
// canonical position, the output is byte-identical at any parallelism.
//
//	go run ./examples/scenarios
//
// Everything runs in virtual time on the discrete-event simulator, so
// the simulated minutes finish in wall-clock seconds and the output is
// identical on every run.
package main

import (
	"fmt"
	"os"

	"lifeguard/simulation"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "scenarios:", err)
		os.Exit(1)
	}
}

func run() error {
	fmt.Println("Registered scenarios:")
	for _, s := range simulation.Scenarios() {
		fmt.Printf("  %-16s %s\n", s.Name(), s.Description())
	}
	fmt.Println()

	// A reduced scale: a 32-member cluster restarted in 2 waves. The
	// same RunOptions drive any registered scenario.
	res, err := simulation.RunScenario("rolling-restart", simulation.RunOptions{
		Scale:    simulation.Scale{Name: "example", RestartN: 32, RestartWaves: 2},
		Seed:     1,
		Parallel: 4, // five cells, up to four in flight
	})
	if err != nil {
		return err
	}
	for _, section := range res.Sections {
		fmt.Printf("== %s ==\n%s\n", section.Title, section.Body)
	}
	fmt.Printf("%d records from %d cells in %.2fs wall\n",
		len(res.Records), res.Records[0].Cells, res.Records[0].Wall)

	// The records are the same rows lifebench emits under -json.
	for _, rec := range res.Records {
		fmt.Printf("  %-14s rejoined %.0f/%.0f, FP %.0f, rejoin median %.2fs\n",
			rec.Config, rec.Metrics["rejoined"], rec.Metrics["restarts"],
			rec.Metrics["fp"], rec.Metrics["rejoin_median_s"])
	}
	return nil
}
