// WAN: topology-aware failure detection on a simulated 3-zone WAN.
// It builds a US/EU/AP topology with realistic inter-zone latencies,
// runs the same seeded experiment twice — once with the static SWIM
// timeouts and uniform peer selection, once with RTT-adaptive probe
// timeouts, coordinate-aware relay selection and latency-biased gossip
// (Vivaldi coordinates, enabled via ClusterConfig.TopologyAware) — and
// prints per-zone detection latency for both, plus the headline deltas.
//
//	go run ./examples/wan
//
// Everything runs in virtual time on the discrete-event simulator, so
// the several simulated minutes finish in wall-clock seconds and the
// output is identical on every run (same seed, same numbers).
package main

import (
	"fmt"
	"os"
	"time"

	"lifeguard/simulation"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "wan:", err)
		os.Exit(1)
	}
}

func run() error {
	ms := time.Millisecond
	link := func(base time.Duration) simulation.LinkProfile {
		return simulation.LinkProfile{Base: base, Jitter: base / 10}
	}
	params := simulation.WANParams{
		// 3 zones, 32 members each; one-way inter-zone delays.
		Zones: []simulation.WANZone{
			{Name: "us", Members: 32},
			{Name: "eu", Members: 32},
			{Name: "ap", Members: 32},
		},
		Intra: simulation.LinkProfile{Base: ms, Jitter: 200 * time.Microsecond},
		Pairs: map[[2]string]simulation.LinkProfile{
			{"us", "eu"}: link(40 * ms),
			{"us", "ap"}: link(80 * ms),
			{"eu", "ap"}: link(120 * ms),
		},
		Converge:      3 * time.Minute, // coordinates settle before scoring
		FailPerZone:   4,               // then 4 members crash per zone
		DetectHorizon: 60 * time.Second,
	}

	fmt.Println("simulating a 96-member, 3-zone WAN (static vs adaptive, same seed)...")
	cmp, err := simulation.RunWANComparison(
		simulation.ClusterConfig{Seed: 23, Protocol: simulation.ConfigLifeguard},
		params,
	)
	if err != nil {
		return err
	}

	for _, side := range []struct {
		label string
		res   simulation.WANResult
	}{
		{"static probe timeouts, uniform relays and gossip", cmp.Static},
		{"adaptive timeouts, coordinate-aware relays, latency-biased gossip", cmp.Adaptive},
	} {
		fmt.Printf("\n%s:\n", side.label)
		fmt.Printf("  %-6s %8s %10s %22s %22s\n", "zone", "failed", "detected", "median detection (s)", "cross-zone median (s)")
		for _, z := range side.res.PerZone {
			fmt.Printf("  %-6s %8d %10d %22.2f %22.2f\n",
				z.Zone, z.Failed, z.Detected, z.FirstDetect.Median, z.CrossZoneDetect.Median)
		}
		fmt.Printf("  false positives: %d; traffic: %.1f MB\n",
			side.res.FP, float64(side.res.BytesSent)/1e6)
	}

	fmt.Printf("\ncross-zone detection median: %.2fs static -> %.2fs adaptive (FP %d -> %d)\n",
		cmp.Static.CrossZoneDetect.Median, cmp.Adaptive.CrossZoneDetect.Median,
		cmp.Static.FP, cmp.Adaptive.FP)
	fmt.Printf("adaptive rounds: %d RTT-derived timeouts, %d cold fallbacks; relays %d near / %d random\n",
		cmp.Adaptive.AdaptiveTimeouts, cmp.Adaptive.AdaptiveFallbacks,
		cmp.Adaptive.RelayNear, cmp.Adaptive.RelayRandom)
	return nil
}
