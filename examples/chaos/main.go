// Chaos: deterministic fault injection against the Lifeguard ablation.
// It runs the chaos scenario matrix — members degraded (slow message
// handling and timers), members flapping through total stalls, and
// victims behind lossy/duplicating/reordering links, each mixed with
// real hard crashes — across plain SWIM and full Lifeguard at the same
// seed, then prints the ablation table and the headline comparison:
// Lifeguard cuts false positives under member *degradation* (alive but
// slow members, the paper's motivating condition), while detecting the
// real crashes just as fast.
//
//	go run ./examples/chaos
//
// Everything runs in virtual time on the discrete-event simulator with
// every fault drawn from a dedicated seeded RNG stream, so the several
// simulated minutes finish in wall-clock seconds and the output is
// identical on every run.
package main

import (
	"fmt"
	"os"
	"time"

	"lifeguard/simulation"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "chaos:", err)
		os.Exit(1)
	}
}

func run() error {
	params := simulation.ChaosParams{
		N:         40,              // cluster size
		Victims:   5,               // members afflicted by each scenario's non-fatal fault
		Crashes:   3,               // members hard-crashed mid-window (must be detected)
		CrashAt:   5 * time.Second, // crashes land while the chaos is ongoing
		FaultFor:  45 * time.Second,
		Scenarios: []string{"degraded", "pause-flap", "lossy-link"},
		Configs: []simulation.ProtocolConfig{
			simulation.ConfigSWIM,
			simulation.ConfigLHASuspicion,
			simulation.ConfigLifeguard,
		},
	}

	fmt.Println("running the chaos matrix (3 scenarios × 3 configurations, same seed)...")
	res, err := simulation.RunChaos(
		simulation.ClusterConfig{Seed: 11},
		params,
	)
	if err != nil {
		return err
	}
	fmt.Println()
	fmt.Print(simulation.FormatChaos(res))

	// The headline cells: degraded members under SWIM versus Lifeguard.
	var swim, lifeguard simulation.ChaosCellResult
	for _, cell := range res.Cells {
		if cell.Scenario != "degraded" {
			continue
		}
		switch cell.Config {
		case "SWIM":
			swim = cell
		case "Lifeguard":
			lifeguard = cell
		}
	}
	fmt.Printf("\ndegraded members (alive, just slow): SWIM %d false positives -> Lifeguard %d\n",
		swim.FP, lifeguard.FP)
	fmt.Printf("real crashes still detected: %d/%d (SWIM, median %.2fs) vs %d/%d (Lifeguard, median %.2fs)\n",
		swim.CrashesDetected, swim.Crashes, swim.CrashDetect.Median,
		lifeguard.CrashesDetected, lifeguard.Crashes, lifeguard.CrashDetect.Median)
	fmt.Printf("suspicions refuted in time: %d of %d (SWIM) vs %d of %d (Lifeguard)\n",
		swim.Refuted, swim.Suspicions, lifeguard.Refuted, lifeguard.Suspicions)
	return nil
}
