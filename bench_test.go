// Benchmarks that regenerate every table and figure of the Lifeguard
// paper's evaluation (§V) on the discrete-event simulator, at a reduced
// but shape-preserving sweep scale. cmd/lifebench runs the same
// experiments at larger scales (-scale bench|paper).
//
//	go test -bench=. -benchmem
//
// Each benchmark prints the paper-layout table it regenerates and
// reports the headline comparison as benchmark metrics (e.g. FP counts
// and their ratio to the SWIM baseline).
package lifeguard_test

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"lifeguard/internal/broadcast"
	"lifeguard/internal/core"
	"lifeguard/internal/experiment"
	"lifeguard/internal/sim"
	"lifeguard/internal/stats"
	"lifeguard/internal/wire"
)

// benchScale trades the paper's full grids (Tables II/III, 10
// repetitions) for minutes of runtime while keeping every qualitative
// axis: the full concurrency axis (Figures 2/3 need it), anomaly
// durations on both sides of the suspicion timeout, and short+long
// recovery intervals.
var benchScale = experiment.Scale{
	Name: "bench64",
	N:    64,
	Cs:   experiment.PaperCs,
	Ds: []time.Duration{
		2048 * time.Millisecond,
		16384 * time.Millisecond,
		32768 * time.Millisecond,
	},
	Is: []time.Duration{
		64 * time.Millisecond,
		1024 * time.Millisecond,
	},
	Runs:           1,
	StressCounts:   []int{1, 4, 8, 16, 24, 32},
	StressDuration: 2 * time.Minute,
}

// tuningScale further trims the grid for the 10-sweep Table VII run.
var tuningScale = experiment.Scale{
	Name: "tuning64",
	N:    64,
	Cs:   []int{4, 16, 32},
	Ds: []time.Duration{
		16384 * time.Millisecond,
		32768 * time.Millisecond,
	},
	Is:   []time.Duration{64 * time.Millisecond, 1024 * time.Millisecond},
	Runs: 1,
}

const benchSeed = 1

// intervalSweepCache memoizes the shared interval grid: Table IV,
// Table VI and Figures 2/3 all render views of the same deterministic
// sweep (fixed seeds), so re-running it per benchmark would only burn
// time.
var intervalSweepCache = map[string][]experiment.IntervalSweepResult{}

// runIntervalSweeps runs (or reuses) the interval grid for all five
// configurations.
func runIntervalSweeps(b *testing.B, sc experiment.Scale) []experiment.IntervalSweepResult {
	b.Helper()
	if cached, ok := intervalSweepCache[sc.Name]; ok {
		return cached
	}
	var results []experiment.IntervalSweepResult
	for _, proto := range experiment.Configurations {
		r, err := experiment.RunIntervalSweep(proto, sc, benchSeed, nil)
		if err != nil {
			b.Fatal(err)
		}
		results = append(results, r)
	}
	intervalSweepCache[sc.Name] = results
	return results
}

// BenchmarkFigure1CPUExhaustion regenerates Figure 1: false positives
// versus number of CPU-exhausted members, SWIM against full Lifeguard.
func BenchmarkFigure1CPUExhaustion(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var results []experiment.StressSweepResult
		for _, proto := range []experiment.ProtocolConfig{experiment.ConfigSWIM, experiment.ConfigLifeguard} {
			r, err := experiment.RunStressSweep(proto, benchScale, benchSeed, nil)
			if err != nil {
				b.Fatal(err)
			}
			results = append(results, r)
		}
		swim, lg := 0, 0
		for _, res := range results[0].ByCount {
			swim += res.FP
		}
		for _, res := range results[1].ByCount {
			lg += res.FP
		}
		b.ReportMetric(float64(swim), "swim-fp")
		b.ReportMetric(float64(lg), "lifeguard-fp")
		if i == 0 {
			fmt.Printf("\n== Figure 1 (scale %s) ==\n%s\n", benchScale.Name,
				experiment.FormatFigure1(results))
		}
	}
}

// BenchmarkTable4FalsePositives regenerates Table IV: aggregated false
// positives per configuration, and Figures 2/3 from the same sweep.
func BenchmarkTable4FalsePositives(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results := runIntervalSweeps(b, benchScale)
		swim, lg := results[0], results[len(results)-1]
		b.ReportMetric(float64(swim.FP), "swim-fp")
		b.ReportMetric(float64(lg.FP), "lifeguard-fp")
		if swim.FP > 0 {
			b.ReportMetric(float64(lg.FP)/float64(swim.FP)*100, "fp-pct-of-swim")
		}
		if i == 0 {
			fmt.Printf("\n== Table IV (scale %s) ==\n%s\n", benchScale.Name,
				experiment.FormatTable4(results))
		}
	}
}

// BenchmarkFigure2FPByConcurrency regenerates Figure 2: total false
// positives versus concurrent anomalies for each configuration.
func BenchmarkFigure2FPByConcurrency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results := runIntervalSweeps(b, benchScale)
		if i == 0 {
			fmt.Printf("\n== Figure 2 (scale %s) ==\n%s\n", benchScale.Name,
				experiment.FormatFigure2(results, false))
		}
	}
}

// BenchmarkFigure3FPHealthyByConcurrency regenerates Figure 3: false
// positives at healthy members versus concurrent anomalies.
func BenchmarkFigure3FPHealthyByConcurrency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results := runIntervalSweeps(b, benchScale)
		if i == 0 {
			fmt.Printf("\n== Figure 3 (scale %s) ==\n%s\n", benchScale.Name,
				experiment.FormatFigure2(results, true))
		}
	}
}

// BenchmarkTable5DetectionLatency regenerates Table V: first-detection
// and full-dissemination latency percentiles per configuration.
func BenchmarkTable5DetectionLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var results []experiment.ThresholdSweepResult
		for _, proto := range experiment.Configurations {
			r, err := experiment.RunThresholdSweep(proto, benchScale, benchSeed, nil)
			if err != nil {
				b.Fatal(err)
			}
			results = append(results, r)
		}
		b.ReportMetric(results[0].FirstDetect.Median, "swim-med-detect-s")
		b.ReportMetric(results[len(results)-1].FirstDetect.Median, "lifeguard-med-detect-s")
		if i == 0 {
			fmt.Printf("\n== Table V (scale %s) ==\n%s\n", benchScale.Name,
				experiment.FormatTable5(results))
		}
	}
}

// BenchmarkTable6MessageLoad regenerates Table VI: messages and bytes
// sent per configuration.
func BenchmarkTable6MessageLoad(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results := runIntervalSweeps(b, benchScale)
		swim, lg := results[0], results[len(results)-1]
		if swim.MsgsSent > 0 {
			b.ReportMetric(float64(lg.MsgsSent)/float64(swim.MsgsSent)*100, "msgs-pct-of-swim")
			b.ReportMetric(float64(lg.BytesSent)/float64(swim.BytesSent)*100, "bytes-pct-of-swim")
		}
		if i == 0 {
			fmt.Printf("\n== Table VI (scale %s) ==\n%s\n", benchScale.Name,
				experiment.FormatTable6(results))
		}
	}
}

// BenchmarkTable7SuspicionTuning regenerates Table VII: Lifeguard's
// latency and false-positive metrics as a percentage of SWIM across the
// α/β tuning grid.
func BenchmarkTable7SuspicionTuning(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunTuningSweep(
			experiment.PaperAlphas, experiment.PaperBetas, tuningScale, benchSeed, nil)
		if err != nil {
			b.Fatal(err)
		}
		if n := len(res.Cells); n > 0 {
			first, last := res.Cells[0], res.Cells[n-1]
			b.ReportMetric(first.MedFirst, "a2b2-med-detect-pct")
			b.ReportMetric(last.FP, "a5b6-fp-pct")
		}
		if i == 0 {
			fmt.Printf("\n== Table VII (scale %s) ==\n%s\n", tuningScale.Name,
				experiment.FormatTable7(res))
		}
	}
}

// --- Ablation benches: the design choices DESIGN.md calls out ---

// BenchmarkAblationQueueCapacity varies the simulated kernel receive
// buffer: an unbounded queue removes the tail-drop that buries
// refutations behind stale suspicions.
func BenchmarkAblationQueueCapacity(b *testing.B) {
	for _, cap := range []int{64, 512, 1 << 20} {
		b.Run(fmt.Sprintf("cap=%d", cap), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cc := experiment.ClusterConfig{N: 64, Seed: benchSeed, Protocol: experiment.ConfigSWIM}
				cc.Net.QueueCap = cap
				r, err := experiment.RunInterval(cc, experiment.IntervalParams{
					C: 16, D: 16384 * time.Millisecond, I: 64 * time.Millisecond,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(r.FP), "fp")
			}
		})
	}
}

// BenchmarkAblationServiceRate varies the per-message processing cost:
// faster draining shortens the window in which refutations sit
// unprocessed behind a wake backlog.
func BenchmarkAblationServiceRate(b *testing.B) {
	for _, svc := range []time.Duration{10 * time.Microsecond, 100 * time.Microsecond, 1 * time.Millisecond} {
		b.Run(fmt.Sprintf("svc=%v", svc), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cc := experiment.ClusterConfig{N: 64, Seed: benchSeed, Protocol: experiment.ConfigSWIM}
				cc.Net.ServiceTime = svc
				r, err := experiment.RunInterval(cc, experiment.IntervalParams{
					C: 16, D: 16384 * time.Millisecond, I: 64 * time.Millisecond,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(r.FP), "fp")
			}
		})
	}
}

// BenchmarkAblationSuspicionK varies LHA-Suspicion's re-gossip factor K
// (the paper flags it as a heuristically-chosen constant, §VII).
func BenchmarkAblationSuspicionK(b *testing.B) {
	for _, k := range []int{1, 3, 6} {
		b.Run(fmt.Sprintf("K=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				proto := experiment.ConfigLifeguard
				r, err := runIntervalWithK(proto, k)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(r.FP), "fp")
				b.ReportMetric(float64(r.MsgsSent), "msgs")
			}
		})
	}
}

// runIntervalWithK runs one interval experiment with a custom
// SuspicionK (not part of ProtocolConfig, so configured via a cluster
// hook in the experiment package).
func runIntervalWithK(proto experiment.ProtocolConfig, k int) (experiment.IntervalResult, error) {
	cc := experiment.ClusterConfig{N: 64, Seed: benchSeed, Protocol: proto, SuspicionK: k}
	return experiment.RunInterval(cc, experiment.IntervalParams{
		C: 16, D: 16384 * time.Millisecond, I: 64 * time.Millisecond,
	})
}

// BenchmarkAblationMaxLHM varies the Local Health Multiplier's
// saturation limit S (another heuristic constant the paper flags for
// future auto-tuning, §VII).
func BenchmarkAblationMaxLHM(b *testing.B) {
	for _, s := range []int{2, 8, 16} {
		b.Run(fmt.Sprintf("S=%d", s), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cc := experiment.ClusterConfig{N: 64, Seed: benchSeed, Protocol: experiment.ConfigLifeguard, MaxLHM: s}
				r, err := experiment.RunInterval(cc, experiment.IntervalParams{
					C: 16, D: 16384 * time.Millisecond, I: 64 * time.Millisecond,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(r.FP), "fp")
			}
		})
	}
}

// BenchmarkAblationProbeSelection compares SWIM's round-robin probe
// target selection against uniform random selection (the strawman §III-A
// rejects): the tail of first-detection latency is the casualty.
func BenchmarkAblationProbeSelection(b *testing.B) {
	// Ablation hook: the experiment package exposes the flag through
	// ClusterConfig for exactly this comparison.
	for _, random := range []bool{false, true} {
		name := "round-robin"
		if random {
			name = "random"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				var first []float64
				for run := 0; run < 6; run++ {
					cc := experiment.ClusterConfig{
						N: 64, Seed: benchSeed + int64(run)*31, Protocol: experiment.ConfigLifeguard,
						RandomProbeSelection: random,
					}
					r, err := experiment.RunThreshold(cc, experiment.ThresholdParams{
						C: 8, D: 32768 * time.Millisecond,
					})
					if err != nil {
						b.Fatal(err)
					}
					for _, d := range r.FirstDetect {
						first = append(first, d.Seconds())
					}
				}
				s := stats.Summarize(first)
				b.ReportMetric(s.Median, "med-detect-s")
				b.ReportMetric(s.Max, "max-detect-s")
			}
		})
	}
}

// --- Hot-path micro-benchmarks: the 10k-member scaling work ---

// benchNode builds a started protocol node with n merged members on a
// virtual clock (timers are registered but never fire — the scheduler is
// not run) and a transport that discards every packet.
type nullTransport struct{ addr string }

func (t nullTransport) SendPacket(string, []byte, bool) error { return nil }
func (t nullTransport) LocalAddr() string                     { return t.addr }

func benchMemberName(i int) string { return fmt.Sprintf("member-%05d", i) }

func benchNode(tb testing.TB, n int) *core.Node {
	tb.Helper()
	sched := sim.NewScheduler(time.Unix(0, 0))
	cfg := core.DefaultConfig("bench-node")
	cfg.Clock = sim.NewClock(sched)
	cfg.Transport = nullTransport{addr: "bench-node"}
	cfg.RNG = rand.New(rand.NewSource(1))
	node, err := core.New(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	if err := node.Start(); err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(node.Shutdown)

	// Merge the whole membership in one push-pull response.
	states := make([]wire.PushPullState, n)
	for i := range states {
		name := benchMemberName(i)
		states[i] = wire.PushPullState{
			Name: name, Addr: name, Incarnation: 1, State: uint8(core.StateAlive),
		}
	}
	resp := &wire.PushPullResp{Source: benchMemberName(0), States: states}
	node.HandlePacket(benchMemberName(0), wire.EncodePacket([]wire.Message{resp}))
	if got := node.NumAlive(); got != n+1 {
		tb.Fatalf("bench node merged %d members, want %d", got, n+1)
	}
	return node
}

// BenchmarkBroadcastQueue10k exercises the broadcast queue at cluster
// scale: one fresh update plus one full piggyback selection per
// iteration against a queue holding n pending updates. ns/op should stay
// roughly flat in n — the indexed queue pays O(1) per Queue and
// O(selected) per GetBroadcasts, where the seed implementation re-sorted
// all n items on every call (O(n log n) per outgoing packet).
func BenchmarkBroadcastQueue10k(b *testing.B) {
	for _, n := range []int{128, 1024, 10240} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			q := broadcast.NewQueue(func() int { return n }, 4)
			payload := make([]byte, 40)
			names := make([]string, n)
			for i := range names {
				names[i] = benchMemberName(i)
				q.Queue(names[i], payload)
			}
			emit := func([]byte) {}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				q.Queue(names[i%n], payload)
				q.GetBroadcastsInto(wire.CompoundOverhead, 1400, emit)
			}
		})
	}
}

// BenchmarkKRandomSelection10k exercises k-random peer selection (the
// primitive behind indirect-probe relays and gossip/push-pull fan-out)
// against cluster size. The partial Fisher–Yates walk costs O(k) when
// most members match, so ns/op should stay roughly flat in n, where the
// seed implementation collected, sorted and fully shuffled every
// candidate per pick (O(n log n)).
func BenchmarkKRandomSelection10k(b *testing.B) {
	for _, n := range []int{128, 1024, 10240} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			node := benchNode(b, n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if got := node.SampleMembers(3); len(got) != 3 {
					b.Fatalf("sampled %d members, want 3", len(got))
				}
			}
		})
	}
}

// BenchmarkEncodeAllocs measures the transmit hot path end to end: each
// iteration delivers one alive update (keeping the gossip queue
// stocked) and one ping, whose ack is sent with piggybacked gossip
// packed by the pooled wire.Packer straight from the queue into the
// packet buffer. The seed path burned ~3 allocations per piggybacked
// message (Unmarshal, re-Marshal, [][]byte growth) plus the per-packet
// sort — 80 allocs/op, 4167 B/op on this scenario. Round one of the
// hot-path work (pooled packers, indexed queue) brought it to 19
// allocs/op; round two (pooled inbound decode, member interning,
// static-dispatch encoding, payload-owning queue) to 0.
// TestPiggybackSendAllocs pins the budget.
func BenchmarkEncodeAllocs(b *testing.B) {
	node := benchNode(b, 64)
	from := benchMemberName(0)
	ping := wire.EncodePacket([]wire.Message{
		&wire.Ping{SeqNo: 7, Target: "bench-node", Source: from},
	})
	names := make([]string, 16)
	for i := range names {
		names[i] = benchMemberName(i)
	}
	var alive wire.Alive
	var aliveBuf []byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		alive = wire.Alive{
			Incarnation: uint64(2 + i/16),
			Node:        names[i%16],
			Addr:        names[i%16],
		}
		aliveBuf = wire.AppendMarshal(aliveBuf[:0], &alive)
		node.HandlePacket(from, aliveBuf)
		node.HandlePacket(from, ping)
	}
}

// TestPiggybackSendAllocs pins the transmit hot path's allocation
// budget: one alive update plus one ping-with-piggybacked-ack performs
// no steady-state allocations (seed: 80 allocs/op; round one: 19). A
// regression means a pooled buffer, the interned member lookups, the
// static-dispatch encoder or the direct queue-to-packet copy stopped
// working.
func TestPiggybackSendAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool randomly drops items under the race detector, so the zero-alloc pin cannot hold")
	}
	node := benchNode(t, 64)
	from := benchMemberName(0)
	ping := wire.EncodePacket([]wire.Message{
		&wire.Ping{SeqNo: 7, Target: "bench-node", Source: from},
	})
	names := make([]string, 16)
	for i := range names {
		names[i] = benchMemberName(i)
	}
	var alive wire.Alive
	var aliveBuf []byte
	iter := 0
	warm := func() {
		alive = wire.Alive{
			Incarnation: uint64(2 + iter/16),
			Node:        names[iter%16],
			Addr:        names[iter%16],
		}
		iter++
		aliveBuf = wire.AppendMarshal(aliveBuf[:0], &alive)
		node.HandlePacket(from, aliveBuf)
		node.HandlePacket(from, ping)
	}
	warm() // fill the pools and intern tables once
	allocs := testing.AllocsPerRun(500, warm)
	if allocs > 0 {
		t.Errorf("piggybacked send path allocates %.1f allocs/op, want 0 (seed was 80, round one 19)", allocs)
	}
}

// BenchmarkPartitionHeal measures the §II robustness property: how long
// a fully bisected cluster takes to re-merge after the network heals.
func BenchmarkPartitionHeal(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunPartition(
			experiment.ClusterConfig{N: 32, Seed: benchSeed, Protocol: experiment.ConfigLifeguard},
			experiment.PartitionParams{SizeA: 16, Duration: time.Minute, HealBudget: 5 * time.Minute},
		)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Remerged {
			b.Fatal("partition did not heal")
		}
		b.ReportMetric(res.RemergeTime.Seconds(), "remerge-s")
	}
}
