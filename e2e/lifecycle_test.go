//go:build e2e

package e2e

import (
	"fmt"
	"syscall"
	"testing"
	"time"
)

// TestE2ELifecycle is the full join → kill → leave → rejoin story over
// real processes, pinning the repo's central claims outside the
// simulator for the first time:
//
//   - five agents converge to one mesh;
//   - a SIGKILLed agent is declared dead by every survivor within the
//     detection budget, with zero false positives among live members
//     (any live member observed dead/left fails the test instantly);
//   - a SIGTERMed agent propagates as `left`, never `dead`;
//   - a process restarted under the dead member's name refutes the
//     death via an incarnation bump and rejoins everywhere.
func TestE2ELifecycle(t *testing.T) {
	c := StartCluster(t, 5, nil)
	c.WaitConverged(t, convergeBudget, nil)

	// --- SIGKILL: ungraceful death must be detected by everyone. ---
	victim := c.Agents[3]
	c.MarkGone(victim)
	killedAt := time.Now()
	victim.Kill(t)
	c.WaitConverged(t, detectBudget, map[string]string{victim.Name: "dead"})
	t.Logf("kill → detected by all %d survivors in %v (budget %v)",
		len(c.Live()), time.Since(killedAt).Round(time.Millisecond), detectBudget)

	// Record the incarnation the death was declared at; the rejoin must
	// exceed it.
	seedView, err := c.Agents[0].Members()
	if err != nil {
		t.Fatal(err)
	}
	deadInc := seedView[victim.Name].Incarnation

	// --- SIGTERM: graceful leave must propagate as left, not failed. ---
	leaver := c.Agents[2]
	c.MarkGone(leaver)
	leaver.Signal(t, syscall.SIGTERM)
	if code := leaver.WaitExit(t, exitBudget); code != 0 {
		t.Fatalf("SIGTERM exit code = %d, want 0\n%s", code, leaver.Log())
	}
	c.WaitConverged(t, leaveBudget, map[string]string{
		victim.Name: "dead",
		leaver.Name: "left",
	})

	// --- Rejoin: same name, new process, new port. The survivors hold
	// a dead entry at deadInc; the fresh process must learn of its own
	// death through push-pull and refute it with a higher incarnation.
	// While the refutation propagates, survivors legitimately still hold
	// the dead entry — so the strict view check (which treats any
	// live-member-seen-dead as a false positive) only runs after the
	// incarnation bump has landed everywhere.
	rejoined := c.Restart(t, victim.Name)
	waitUntil(t, convergeBudget, "rejoin incarnation bump on every survivor", func() error {
		for _, a := range c.Live() {
			view, err := a.Members()
			if err != nil {
				return err
			}
			m := view[rejoined.Name]
			if m.State != "alive" {
				return fmt.Errorf("agent %s sees %s as %s", a.Name, rejoined.Name, m.State)
			}
			if m.Incarnation <= deadInc {
				return fmt.Errorf("agent %s sees %s at inc %d, want > %d (refutation)",
					a.Name, rejoined.Name, m.Incarnation, deadInc)
			}
		}
		return nil
	})
	c.WaitConverged(t, convergeBudget, map[string]string{leaver.Name: "left"})
}
