// Package e2e holds the multi-process end-to-end and soak suites for
// cmd/lifeguard-agent: real agent binaries on loopback UDP/TCP, driven
// through join/leave/kill and observed through the HTTP ops surface.
//
// Everything here is test code behind the `e2e` build tag, so the
// tier-1 suite (`go test ./...`) never spawns processes. Run it with:
//
//	go test -tags e2e ./e2e -timeout 120s -run TestE2ESmoke   # quick
//	go test -tags e2e -race -count=2 ./e2e -timeout 600s      # full
//	go test -tags e2e ./e2e -run TestE2ESoak -e2e.soak=30s    # soak
//
// See docs/E2E.md for the harness architecture and the flake policy
// (every wait is poll-until-deadline; there are no bare sleeps on the
// assertion paths).
package e2e
