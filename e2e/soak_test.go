//go:build e2e

package e2e

import (
	"fmt"
	"sort"
	"syscall"
	"testing"
	"time"
)

// TestE2ESoak churns a live cluster for -e2e.soak (default: skipped):
// alternating SIGKILL and SIGTERM departures, each followed by a
// replacement agent joining, with full convergence and a clean
// /metrics scrape on every live agent between steps. Throughout the
// run the zero-false-positive invariant holds (a live member observed
// dead/left fails instantly), and at the end the long-lived seed must
// not have leaked goroutines or file descriptors relative to the
// post-convergence baseline — the lifeguard_goroutines /
// lifeguard_open_fds gauges exist for exactly this check.
func TestE2ESoak(t *testing.T) {
	if *soakFor <= 0 {
		t.Skip("soak disabled; run with -e2e.soak=30s (or longer)")
	}
	c := StartCluster(t, 4, nil)
	c.WaitConverged(t, convergeBudget, nil)
	seed := c.Agents[0]

	base, err := seed.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	baseGoroutines, baseFDs := base["lifeguard_goroutines"], base["lifeguard_open_fds"]
	if baseGoroutines <= 0 {
		t.Fatalf("seed reports no goroutines gauge: %v", base)
	}

	deadline := time.Now().Add(*soakFor)
	iter := 0
	for time.Now().Before(deadline) {
		victim := c.pickChurnVictim(iter)
		c.MarkGone(victim)
		if iter%2 == 0 {
			victim.Kill(t)
			c.WaitConverged(t, detectBudget, map[string]string{victim.Name: "dead"})
		} else {
			victim.Signal(t, syscall.SIGTERM)
			if code := victim.WaitExit(t, exitBudget); code != 0 {
				t.Fatalf("soak iter %d: SIGTERM exit code = %d\n%s", iter, code, victim.Log())
			}
			c.WaitConverged(t, leaveBudget, map[string]string{victim.Name: "left"})
		}

		c.StartAgent()
		c.WaitConverged(t, convergeBudget, nil)

		// Every live agent's exposition must stay parseable mid-churn.
		for _, a := range c.Live() {
			m, err := a.Metrics()
			if err != nil {
				t.Fatalf("soak iter %d: agent %s /metrics: %v", iter, a.Name, err)
			}
			if m["lifeguard_members_alive"] != 4 {
				t.Fatalf("soak iter %d: agent %s alive gauge = %v, want 4", iter, a.Name, m["lifeguard_members_alive"])
			}
		}
		iter++
	}
	t.Logf("soak: %d churn iterations in %v", iter, *soakFor)
	if iter == 0 {
		t.Fatalf("soak budget %v too short for a single churn iteration", *soakFor)
	}

	// Leak check on the long-lived seed. Transients (in-flight TCP
	// handlers, scrape connections) die down on their own, so this is a
	// poll-until-settled wait, not a one-shot sample.
	const goroutineSlack, fdSlack = 15, 10
	waitUntil(t, 30*time.Second, "seed goroutine/fd counts back near baseline", func() error {
		m, err := seed.Metrics()
		if err != nil {
			return err
		}
		if g := m["lifeguard_goroutines"]; g > baseGoroutines+goroutineSlack {
			return fmt.Errorf("goroutines %v, baseline %v (+%d slack) — leak", g, baseGoroutines, goroutineSlack)
		}
		if baseFDs > 0 {
			if f := m["lifeguard_open_fds"]; f > baseFDs+fdSlack {
				return fmt.Errorf("open fds %v, baseline %v (+%d slack) — leak", f, baseFDs, fdSlack)
			}
		}
		return nil
	})
}

// pickChurnVictim rotates through the current live agents, never
// touching the seed (index 0) — it is the soak's fixed observation
// point.
func (c *Cluster) pickChurnVictim(iter int) *Agent {
	live := c.Live()
	sort.Slice(live, func(i, j int) bool { return live[i].Name < live[j].Name })
	var pool []*Agent
	for _, a := range live {
		if a != c.Agents[0] {
			pool = append(pool, a)
		}
	}
	return pool[iter%len(pool)]
}
