//go:build e2e

package e2e

import (
	"net"
	"strings"
	"syscall"
	"testing"
)

// TestE2EExitCodes pins the agent's process-exit contract: a nonzero
// exit for configurations that can never run (unparsable flags, an
// unbindable address), and a zero exit for signal-driven shutdown —
// with the graceful leave drained (and logged) before the process goes
// away.
func TestE2EExitCodes(t *testing.T) {
	t.Run("bad-flags", func(t *testing.T) {
		a := startAgentProcess(t, "badflags", []string{"-no-such-flag"})
		if code := a.WaitExit(t, exitBudget); code == 0 {
			t.Fatalf("exit code = 0 for unparsable flags\n%s", a.Log())
		}
	})

	t.Run("bad-probe-config", func(t *testing.T) {
		a := startAgentProcess(t, "badprobe", []string{
			"-bind", "127.0.0.1:0", "-probe-interval", "100ms", "-probe-timeout", "300ms",
		})
		if code := a.WaitExit(t, exitBudget); code == 0 {
			t.Fatalf("exit code = 0 for timeout > interval\n%s", a.Log())
		}
	})

	t.Run("bind-failure", func(t *testing.T) {
		// Occupy a UDP port, then point the agent at it.
		conn, err := net.ListenPacket("udp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		a := startAgentProcess(t, "bindfail", []string{"-bind", conn.LocalAddr().String()})
		if code := a.WaitExit(t, exitBudget); code == 0 {
			t.Fatalf("exit code = 0 for occupied bind address\n%s", a.Log())
		}
	})

	t.Run("signals", func(t *testing.T) {
		c := StartCluster(t, 3, nil)
		c.WaitConverged(t, convergeBudget, nil)

		for i, sig := range []syscall.Signal{syscall.SIGTERM, syscall.SIGINT} {
			a := c.Agents[len(c.Agents)-1-i] // peel off the non-seed agents
			c.MarkGone(a)
			a.Signal(t, sig)
			if code := a.WaitExit(t, exitBudget); code != 0 {
				t.Fatalf("%v exit code = %d, want 0\n%s", sig, code, a.Log())
			}
			// The leave must have drained before exit: the shutdown path
			// logs "leaving" on signal receipt and "leave broadcast
			// drained" once the announcement met its retransmit budget —
			// in that order, both before the process exited (the log is
			// complete at this point).
			log := a.Log()
			leaving := strings.Index(log, "leaving")
			drained := strings.Index(log, "leave broadcast drained")
			if leaving < 0 || drained < 0 || drained < leaving {
				t.Fatalf("%v: leave-drain log ordering wrong (leaving@%d drained@%d)\n%s",
					sig, leaving, drained, log)
			}
			c.WaitConverged(t, leaveBudget, map[string]string{a.Name: "left"})
		}
	})
}
