//go:build e2e

package e2e

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// soakFor is the -e2e.soak flag: how long TestE2ESoak churns the
// cluster. The zero default skips the soak entirely, so the flag is an
// explicit opt-in (CI runs it in the nightly-style job).
var soakFor = flag.Duration("e2e.soak", 0, "run the soak suite for this long (0 = skip)")

// agentBin is the lifeguard-agent binary built once in TestMain and
// shared by every test in the package.
var agentBin string

func TestMain(m *testing.M) {
	flag.Parse()
	dir, err := os.MkdirTemp("", "lifeguard-e2e-")
	if err != nil {
		fmt.Fprintln(os.Stderr, "e2e: mkdtemp:", err)
		os.Exit(1)
	}
	agentBin = filepath.Join(dir, "lifeguard-agent")
	build := exec.Command("go", "build", "-o", agentBin, "lifeguard/cmd/lifeguard-agent")
	if out, err := build.CombinedOutput(); err != nil {
		fmt.Fprintf(os.Stderr, "e2e: building agent: %v\n%s", err, out)
		os.RemoveAll(dir)
		os.Exit(1)
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

// Budgets for poll-until-deadline waits. They are deliberately generous
// — on loopback the events land in low single-digit seconds, but the
// suite must stay green under -race on loaded CI runners. A budget is a
// deadline, never a sleep: tests proceed the moment the condition
// holds.
const (
	readyBudget    = 20 * time.Second // process start → addresses logged
	convergeBudget = 30 * time.Second // full-mesh membership agreement
	detectBudget   = 20 * time.Second // SIGKILL → every survivor sees dead
	leaveBudget    = 20 * time.Second // SIGTERM → every survivor sees left
	exitBudget     = 15 * time.Second // signal → process exit
	pollEvery      = 100 * time.Millisecond
)

var (
	opsAddrRe    = regexp.MustCompile(`ops server on http://(\S+)`)
	gossipAddrRe = regexp.MustCompile(`listening on (\S+) \(`)
)

// Agent is one spawned lifeguard-agent process and its captured log.
type Agent struct {
	Name       string
	Args       []string // full argv (without the binary path)
	GossipAddr string   // bound UDP/TCP address, parsed from the log
	OpsURL     string   // "http://host:port" of the ops server

	cmd    *exec.Cmd
	waitCh chan error

	mu      sync.Mutex
	logBuf  bytes.Buffer
	exited  bool
	exitErr error
}

// Write captures process output (stdout and stderr share the buffer);
// exec.Cmd writes from its copy goroutines, hence the lock.
func (a *Agent) Write(p []byte) (int, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.logBuf.Write(p)
}

// Log returns a copy of everything the agent has printed so far.
func (a *Agent) Log() string {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.logBuf.String()
}

// startAgentProcess spawns the agent binary with the given argv and
// starts capturing its output. It does not wait for readiness.
func startAgentProcess(t *testing.T, name string, args []string) *Agent {
	t.Helper()
	a := &Agent{Name: name, Args: args, waitCh: make(chan error, 1)}
	a.cmd = exec.Command(agentBin, args...)
	a.cmd.Stdout = a
	a.cmd.Stderr = a
	if err := a.cmd.Start(); err != nil {
		t.Fatalf("starting agent %s: %v", name, err)
	}
	go func() { a.waitCh <- a.cmd.Wait() }()
	t.Cleanup(func() {
		if _, running := a.ExitCode(); running {
			a.cmd.Process.Kill()
			a.WaitExit(t, exitBudget)
		}
	})
	return a
}

// ExitCode returns the process's exit code and whether it is still
// running. It never blocks.
func (a *Agent) ExitCode() (code int, running bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.exited {
		return exitCodeOf(a.exitErr), false
	}
	select {
	case err := <-a.waitCh:
		a.exited, a.exitErr = true, err
		return exitCodeOf(err), false
	default:
		return 0, true
	}
}

func exitCodeOf(err error) int {
	if err == nil {
		return 0
	}
	var ee *exec.ExitError
	if errors.As(err, &ee) {
		return ee.ExitCode()
	}
	return -1
}

// WaitExit blocks until the process exits (or the budget lapses) and
// returns its exit code.
func (a *Agent) WaitExit(t *testing.T, timeout time.Duration) int {
	t.Helper()
	a.mu.Lock()
	if a.exited {
		defer a.mu.Unlock()
		return exitCodeOf(a.exitErr)
	}
	a.mu.Unlock()
	select {
	case err := <-a.waitCh:
		a.mu.Lock()
		a.exited, a.exitErr = true, err
		a.mu.Unlock()
		return exitCodeOf(err)
	case <-time.After(timeout):
		t.Fatalf("agent %s did not exit within %v\n%s", a.Name, timeout, a.Log())
		return -1
	}
}

// Signal delivers sig to the agent process.
func (a *Agent) Signal(t *testing.T, sig syscall.Signal) {
	t.Helper()
	if err := a.cmd.Process.Signal(sig); err != nil {
		t.Fatalf("signaling agent %s with %v: %v", a.Name, sig, err)
	}
}

// Kill SIGKILLs the agent — the ungraceful death the failure detector
// must notice — and reaps the process.
func (a *Agent) Kill(t *testing.T) {
	t.Helper()
	if err := a.cmd.Process.Kill(); err != nil {
		t.Fatalf("killing agent %s: %v", a.Name, err)
	}
	a.WaitExit(t, exitBudget)
}

// waitReady polls the agent log until both startup lines have appeared
// (the startup logging contract in cmd/lifeguard-agent) and records the
// parsed addresses.
func (a *Agent) waitReady(t *testing.T) {
	t.Helper()
	deadline := time.Now().Add(readyBudget)
	for time.Now().Before(deadline) {
		log := a.Log()
		ops := opsAddrRe.FindStringSubmatch(log)
		gossip := gossipAddrRe.FindStringSubmatch(log)
		if ops != nil && gossip != nil {
			a.OpsURL = "http://" + ops[1]
			a.GossipAddr = gossip[1]
			return
		}
		if _, running := a.ExitCode(); !running {
			t.Fatalf("agent %s exited during startup\nargs: %q\n%s", a.Name, a.Args, log)
		}
		time.Sleep(pollEvery)
	}
	t.Fatalf("agent %s never logged its addresses\nargs: %q\n%s", a.Name, a.Args, a.Log())
}

// getJSON fetches an ops endpoint and decodes the JSON body into v.
func (a *Agent) getJSON(path string, v any) error {
	resp, err := http.Get(a.OpsURL + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s%s: status %d", a.OpsURL, path, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// memberInfo is one row of an agent's /members view.
type memberInfo struct {
	Addr        string `json:"addr"`
	State       string `json:"state"`
	Incarnation uint64 `json:"incarnation"`
}

// Members returns the agent's current membership view keyed by name.
func (a *Agent) Members() (map[string]memberInfo, error) {
	var resp struct {
		Members []struct {
			Name string `json:"name"`
			memberInfo
		} `json:"members"`
	}
	if err := a.getJSON("/members", &resp); err != nil {
		return nil, err
	}
	out := make(map[string]memberInfo, len(resp.Members))
	for _, m := range resp.Members {
		out[m.Name] = m.memberInfo
	}
	return out, nil
}

// Metrics scrapes /metrics and returns every unlabeled sample as
// name → value (histogram bucket lines carry labels and are skipped —
// their _count/_sum aggregates come through unlabeled).
func (a *Agent) Metrics() (map[string]float64, error) {
	resp, err := http.Get(a.OpsURL + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /metrics: status %d", resp.StatusCode)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		return nil, err
	}
	out := make(map[string]float64)
	for _, line := range strings.Split(buf.String(), "\n") {
		if line == "" || strings.HasPrefix(line, "#") || strings.Contains(line, "{") {
			continue
		}
		name, val, ok := strings.Cut(line, " ")
		if !ok {
			return nil, fmt.Errorf("unparsable metrics line %q", line)
		}
		f, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return nil, fmt.Errorf("metrics line %q: %w", line, err)
		}
		out[name] = f
	}
	return out, nil
}

// Cluster is a set of agent processes forming one gossip mesh on
// loopback, plus the bookkeeping to know who is supposed to be alive.
type Cluster struct {
	t      *testing.T
	Agents []*Agent // every agent ever started, including stopped ones
	gone   map[string]bool
	seq    int
}

// defaultAgentArgs is the tuning shared by every harness agent: tight
// probe timings so detection budgets stay small on loopback, membership
// summaries for post-mortem logs, and a bounded leave drain.
func defaultAgentArgs(name string) []string {
	return []string{
		"-name", name,
		"-bind", "127.0.0.1:0",
		"-http", "127.0.0.1:0",
		"-probe-interval", "200ms",
		"-probe-timeout", "100ms",
		"-print-members", "2s",
		"-leave-timeout", "5s",
	}
}

// StartCluster spawns n agents (n ≥ 1): one seed plus n-1 joiners, with
// extraArgs(i) appended to agent i's argv, and waits for every agent to
// log its addresses. It does NOT wait for membership convergence — call
// WaitConverged for that.
func StartCluster(t *testing.T, n int, extraArgs func(i int) []string) *Cluster {
	t.Helper()
	c := &Cluster{t: t, gone: make(map[string]bool)}
	t.Cleanup(c.dumpOnFailure)
	for i := 0; i < n; i++ {
		var extra []string
		if extraArgs != nil {
			extra = extraArgs(i)
		}
		c.StartAgent(extra...)
	}
	return c
}

// StartAgent adds one more agent to the cluster (joining via the seed
// unless this is the first agent) and waits for its addresses.
func (c *Cluster) StartAgent(extra ...string) *Agent {
	c.t.Helper()
	name := fmt.Sprintf("n%d", c.seq)
	c.seq++
	args := defaultAgentArgs(name)
	if len(c.Agents) > 0 {
		args = append(args, "-join", c.Agents[0].GossipAddr)
	}
	args = append(args, extra...)
	a := startAgentProcess(c.t, name, args)
	a.waitReady(c.t)
	c.Agents = append(c.Agents, a)
	return a
}

// Restart spawns a fresh process under an existing agent's name (the
// rejoin-after-crash path: same identity, new ephemeral address).
func (c *Cluster) Restart(t *testing.T, name string, extra ...string) *Agent {
	t.Helper()
	args := defaultAgentArgs(name)
	args = append(args, "-join", c.Agents[0].GossipAddr)
	args = append(args, extra...)
	a := startAgentProcess(t, name, args)
	a.waitReady(t)
	c.Agents = append(c.Agents, a)
	delete(c.gone, name)
	return a
}

// MarkGone records that an agent was deliberately stopped, so Live and
// the convergence helpers stop expecting it.
func (c *Cluster) MarkGone(a *Agent) { c.gone[a.Name] = true }

// Live returns the agents currently expected to be up, newest instance
// winning when a name was restarted.
func (c *Cluster) Live() []*Agent {
	latest := make(map[string]*Agent)
	for _, a := range c.Agents {
		latest[a.Name] = a
	}
	var out []*Agent
	for name, a := range latest {
		if !c.gone[name] {
			out = append(out, a)
		}
	}
	return out
}

// dumpOnFailure writes every agent's argv, addresses and full log when
// the test failed — to the test log always, and as files under
// $E2E_ARTIFACT_DIR when set (CI uploads that directory), so any flake
// is reproducible from the artifacts alone.
func (c *Cluster) dumpOnFailure() {
	if !c.t.Failed() {
		return
	}
	dir := os.Getenv("E2E_ARTIFACT_DIR")
	if dir != "" {
		os.MkdirAll(dir, 0o755)
	}
	for _, a := range c.Agents {
		code, running := a.ExitCode()
		status := "running"
		if !running {
			status = fmt.Sprintf("exited %d", code)
		}
		c.t.Logf("agent %s [%s]: gossip=%s ops=%s argv=%q",
			a.Name, status, a.GossipAddr, a.OpsURL, a.Args)
		if dir == "" {
			c.t.Logf("agent %s log:\n%s", a.Name, a.Log())
			continue
		}
		fname := filepath.Join(dir, sanitize(c.t.Name())+"-"+a.Name+".log")
		header := fmt.Sprintf("# argv: %q\n# gossip: %s ops: %s status: %s\n", a.Args, a.GossipAddr, a.OpsURL, status)
		if err := os.WriteFile(fname, []byte(header+a.Log()), 0o644); err != nil {
			c.t.Logf("writing %s: %v", fname, err)
		} else {
			c.t.Logf("agent %s log written to %s", a.Name, fname)
		}
	}
}

func sanitize(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			return r
		default:
			return '_'
		}
	}, s)
}

// waitUntil polls cond every pollEvery until it returns nil, failing
// the test with the last error when the budget lapses. This is the only
// wait primitive in the harness — the flake policy in docs/E2E.md.
func waitUntil(t *testing.T, timeout time.Duration, desc string, cond func() error) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	var last error
	for time.Now().Before(deadline) {
		if last = cond(); last == nil {
			return
		}
		time.Sleep(pollEvery)
	}
	t.Fatalf("timed out after %v waiting for %s: %v", timeout, desc, last)
}

// viewConsistent checks one agent's /members view against the cluster's
// expectations: every live agent alive, every named departed agent in
// wantGone's state, and — the zero-false-positive invariant — no live
// agent ever reported dead or left.
func (c *Cluster) viewConsistent(a *Agent, wantGone map[string]string) error {
	view, err := a.Members()
	if err != nil {
		return fmt.Errorf("agent %s: %w", a.Name, err)
	}
	live := c.Live()
	for _, peer := range live {
		m, ok := view[peer.Name]
		if !ok {
			return fmt.Errorf("agent %s does not know live member %s", a.Name, peer.Name)
		}
		if m.State == "dead" || m.State == "left" {
			// A live member observed dead/left is a false positive —
			// fail immediately and loudly rather than waiting out the
			// budget.
			c.t.Fatalf("FALSE POSITIVE: agent %s sees live member %s as %s (inc=%d)\n%s",
				a.Name, peer.Name, m.State, m.Incarnation, a.Log())
		}
		if m.State != "alive" {
			return fmt.Errorf("agent %s sees %s as %s, want alive", a.Name, peer.Name, m.State)
		}
	}
	for name, wantState := range wantGone {
		m, ok := view[name]
		if !ok {
			return fmt.Errorf("agent %s has no entry for departed member %s", a.Name, name)
		}
		if m.State != wantState {
			return fmt.Errorf("agent %s sees departed %s as %s, want %s", a.Name, name, m.State, wantState)
		}
	}
	return nil
}

// WaitConverged blocks until every live agent's view lists every live
// agent as alive (and every entry in wantGone at its expected terminal
// state), failing on any false positive along the way.
func (c *Cluster) WaitConverged(t *testing.T, timeout time.Duration, wantGone map[string]string) {
	t.Helper()
	waitUntil(t, timeout, fmt.Sprintf("convergence of %d live agents (gone: %v)", len(c.Live()), wantGone), func() error {
		for _, a := range c.Live() {
			if err := c.viewConsistent(a, wantGone); err != nil {
				return err
			}
		}
		return nil
	})
}
