//go:build e2e

package e2e

import (
	"syscall"
	"testing"
)

// TestE2ESmoke is the CI fast path: three real agent processes form a
// mesh on loopback, the ops surface serves sane data on every agent,
// and one graceful shutdown propagates as `left`. It replaces the old
// single-process curl smoke — same runtime class, but now the wire
// path between processes is actually exercised.
func TestE2ESmoke(t *testing.T) {
	c := StartCluster(t, 3, nil)
	c.WaitConverged(t, convergeBudget, nil)

	for _, a := range c.Live() {
		metrics, err := a.Metrics()
		if err != nil {
			t.Fatalf("agent %s: %v", a.Name, err)
		}
		if got := metrics["lifeguard_members"]; got != 3 {
			t.Errorf("agent %s: lifeguard_members = %v, want 3", a.Name, got)
		}
		if got := metrics["lifeguard_members_alive"]; got != 3 {
			t.Errorf("agent %s: lifeguard_members_alive = %v, want 3", a.Name, got)
		}
		if metrics["lifeguard_goroutines"] <= 0 {
			t.Errorf("agent %s: missing goroutines gauge", a.Name)
		}
		var health struct {
			Status string `json:"status"`
		}
		if err := a.getJSON("/healthz", &health); err != nil || health.Status != "ok" {
			t.Errorf("agent %s: /healthz = %+v, %v", a.Name, health, err)
		}
	}

	// Graceful shutdown of one member: survivors must record `left`,
	// never `dead`, and the process must exit 0.
	departing := c.Agents[2]
	c.MarkGone(departing)
	departing.Signal(t, syscall.SIGTERM)
	if code := departing.WaitExit(t, exitBudget); code != 0 {
		t.Fatalf("SIGTERM exit code = %d, want 0\n%s", code, departing.Log())
	}
	c.WaitConverged(t, leaveBudget, map[string]string{departing.Name: "left"})
}
