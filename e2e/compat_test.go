//go:build e2e

package e2e

import (
	"fmt"
	"testing"
)

// coordsView is the /coords response shape the matrix asserts on.
type coordsView struct {
	Enabled bool `json:"enabled"`
	Self    *struct {
		Vec []float64 `json:"vec"`
	} `json:"self"`
	Peers []struct {
		Name     string  `json:"name"`
		EstRTTMs float64 `json:"est_rtt_ms"`
	} `json:"peers"`
}

// TestE2ECompatMatrix runs the mixed-version wire-compatibility matrix
// over real processes: agents with the Vivaldi coordinate extension
// disabled (-disable-coords — the pre-coordinate wire format) and
// coord-enabled agents share one mesh, in both seed directions. The
// PR-2 contract, pinned until now only in codec unit tests, must hold
// end to end: coordless encodings decode on new agents, new agents'
// trailing coordinate blocks are skipped by coordless decoders, the
// mixed cluster converges with zero false positives, the coord-enabled
// pair still builds RTT estimates of each other, and a crash is
// detected across the version boundary.
func TestE2ECompatMatrix(t *testing.T) {
	directions := []struct {
		name      string
		coordless map[int]bool // agent index → runs -disable-coords
		crash     int          // index of the agent to SIGKILL at the end
	}{
		// Old-wire seed: every coord-enabled joiner handshakes with a
		// coordless first contact; the crashed member is coordless, so
		// its death is detected by new-wire observers.
		{name: "coordless-seed", coordless: map[int]bool{0: true, 3: true}, crash: 3},
		// New-wire seed: coordless joiners handshake with a
		// coord-enabled first contact; the crashed member is
		// coord-enabled, so its death is detected by old-wire observers.
		{name: "coord-seed", coordless: map[int]bool{1: true, 3: true}, crash: 2},
	}
	for _, dir := range directions {
		dir := dir
		t.Run(dir.name, func(t *testing.T) {
			c := StartCluster(t, 4, func(i int) []string {
				if dir.coordless[i] {
					return []string{"-disable-coords"}
				}
				return nil
			})
			c.WaitConverged(t, convergeBudget, nil)

			var coordEnabled []*Agent
			for i, a := range c.Agents {
				var view coordsView
				if err := a.getJSON("/coords", &view); err != nil {
					t.Fatalf("agent %s: %v", a.Name, err)
				}
				if wantless := dir.coordless[i]; view.Enabled == wantless {
					t.Fatalf("agent %s: /coords enabled=%v, want %v", a.Name, view.Enabled, !wantless)
				}
				if dir.coordless[i] && view.Self != nil {
					t.Errorf("agent %s: coordless agent reports a self coordinate", a.Name)
				}
				if !dir.coordless[i] {
					coordEnabled = append(coordEnabled, a)
				}
			}

			// The two coord-enabled agents exchange coordinates on their
			// Ping/Ack traffic even though half the mesh speaks the old
			// wire format; each must converge to an RTT estimate of the
			// other (Vivaldi needs CoordMinSamples direct acks to warm).
			waitUntil(t, convergeBudget, "coord-enabled pair RTT estimates", func() error {
				for i, a := range coordEnabled {
					other := coordEnabled[1-i]
					var view coordsView
					if err := a.getJSON("/coords", &view); err != nil {
						return err
					}
					found := false
					for _, p := range view.Peers {
						if p.Name == other.Name {
							if p.EstRTTMs < 0 {
								return fmt.Errorf("agent %s estimates negative RTT to %s", a.Name, other.Name)
							}
							found = true
						}
					}
					if !found {
						return fmt.Errorf("agent %s has no RTT estimate for %s yet", a.Name, other.Name)
					}
				}
				return nil
			})

			// Cross-version failure detection: the crash must be seen by
			// every survivor on both sides of the wire boundary, with
			// zero false positives among the live members.
			victim := c.Agents[dir.crash]
			c.MarkGone(victim)
			victim.Kill(t)
			c.WaitConverged(t, detectBudget, map[string]string{victim.Name: "dead"})
		})
	}
}
