// Package metrics provides the telemetry surface the evaluation needs:
// message/byte counters at the transport and a time-stamped membership
// event log, mirroring the Consul telemetry and log analysis used in the
// paper (§V-F).
package metrics

import (
	"sort"
	"sync"
	"time"
)

// Sink receives named counter increments. Implementations must be safe
// for concurrent use.
type Sink interface {
	// IncrCounter adds delta to the named counter.
	IncrCounter(name string, delta int64)
}

// Counter names emitted by the protocol core and transports.
const (
	// CounterMsgsSent counts compound packets sent (a packet with
	// piggybacked gossip counts once, as in the paper's Msgs Sent).
	CounterMsgsSent = "msgs_sent"

	// CounterBytesSent counts payload bytes sent.
	CounterBytesSent = "bytes_sent"

	// CounterMsgsDropped counts packets dropped by the network (loss or
	// receiver queue overflow).
	CounterMsgsDropped = "msgs_dropped"

	// CounterProbes counts probe rounds started.
	CounterProbes = "probes"

	// CounterProbeFailures counts probe rounds that ended with no ack.
	CounterProbeFailures = "probe_failures"

	// CounterRefutes counts refutations of suspicion/death about self.
	CounterRefutes = "refutes"

	// CounterSuspicionsRaised counts suspicions started locally.
	CounterSuspicionsRaised = "suspicions_raised"

	// CounterSuspicionsRefuted counts suspicions cleared by an alive.
	CounterSuspicionsRefuted = "suspicions_refuted"

	// CounterCoordUpdates counts probe round-trips accepted by the
	// Vivaldi coordinate engine.
	CounterCoordUpdates = "coord_updates"

	// CounterCoordRejected counts observations the coordinate engine
	// rejected (malformed peer coordinate or out-of-range RTT).
	CounterCoordRejected = "coord_rejected"

	// CounterAdaptiveTimeouts counts probe rounds whose direct timeout
	// was derived from the RTT estimate (Config.AdaptiveProbeTimeout
	// enabled and coordinates warm).
	CounterAdaptiveTimeouts = "adaptive_timeouts"

	// CounterAdaptiveFallbacks counts probe rounds that wanted an
	// adaptive timeout but fell back to the static ProbeTimeout because
	// coordinates were cold (too few samples, or no estimate for the
	// target).
	CounterAdaptiveFallbacks = "adaptive_timeout_fallbacks"

	// CounterRelayNearPicks counts indirect-probe relays chosen by
	// coordinate proximity to the target.
	CounterRelayNearPicks = "relay_near_picks"

	// CounterRelayRandomPicks counts indirect-probe relays chosen
	// uniformly at random while CoordinateRelaySelection is enabled
	// (the diversity slice, plus cold-coordinate fill).
	CounterRelayRandomPicks = "relay_random_picks"

	// CounterGossipNearPicks counts gossip-tick targets chosen by
	// coordinate proximity under LatencyAwareGossip.
	CounterGossipNearPicks = "gossip_near_picks"

	// CounterGossipEscapePicks counts gossip-tick targets chosen
	// uniformly at random under LatencyAwareGossip (the cross-cluster
	// escape slice).
	CounterGossipEscapePicks = "gossip_escape_picks"
)

// NopSink discards all increments.
type NopSink struct{}

var _ Sink = NopSink{}

// IncrCounter implements Sink.
func (NopSink) IncrCounter(string, int64) {}

// MemSink accumulates counters in memory.
type MemSink struct {
	mu       sync.Mutex
	counters map[string]int64
}

var _ Sink = (*MemSink)(nil)

// NewMemSink returns an empty in-memory sink.
func NewMemSink() *MemSink {
	return &MemSink{counters: make(map[string]int64)}
}

// IncrCounter implements Sink.
func (s *MemSink) IncrCounter(name string, delta int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.counters[name] += delta
}

// Get returns the current value of the named counter.
func (s *MemSink) Get(name string) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.counters[name]
}

// Snapshot returns a copy of all counters.
func (s *MemSink) Snapshot() map[string]int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]int64, len(s.counters))
	for k, v := range s.counters {
		out[k] = v
	}
	return out
}

// EventType classifies membership events observed at a member.
type EventType uint8

// Membership event types.
const (
	// EventJoin is a member becoming alive in the observer's view
	// (initial join or recovery from dead).
	EventJoin EventType = iota + 1

	// EventSuspect is a member entering the suspected state.
	EventSuspect

	// EventDead is a member being declared dead — the paper's "failure
	// event", the unit in which false positives are counted.
	EventDead

	// EventAlive is a suspicion being refuted: the suspected member
	// proved itself alive (suspect → alive) without having been
	// declared dead. Refutation latency is computed from
	// suspect/alive event pairs.
	EventAlive
)

// String returns a short name for the event type.
func (t EventType) String() string {
	switch t {
	case EventJoin:
		return "join"
	case EventSuspect:
		return "suspect"
	case EventDead:
		return "dead"
	case EventAlive:
		return "alive"
	default:
		return "unknown"
	}
}

// Event is one membership state change observed at one member.
type Event struct {
	// Time is when the observer processed the change.
	Time time.Time

	// Observer is the member at which the event was raised.
	Observer string

	// Subject is the member the event is about.
	Subject string

	// Type is the kind of state change.
	Type EventType

	// Incarnation is the subject's incarnation at the time of the event.
	Incarnation uint64
}

// EventLog records membership events from many observers.
//
// EventLog is safe for concurrent use.
type EventLog struct {
	mu      sync.Mutex
	events  []Event
	max     int
	dropped uint64
}

// NewEventLog returns an empty, unbounded event log.
func NewEventLog() *EventLog {
	return &EventLog{}
}

// NewBoundedEventLog returns an empty event log that holds at most max
// events: once full, further appends are counted in Dropped and
// discarded, so long soak runs cannot grow the log without limit. A
// max below 1 means unbounded.
func NewBoundedEventLog(max int) *EventLog {
	if max < 1 {
		max = 0
	}
	return &EventLog{max: max}
}

// Append records an event. On a bounded log at capacity the event is
// dropped and counted instead.
func (l *EventLog) Append(ev Event) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.max > 0 && len(l.events) >= l.max {
		l.dropped++
		return
	}
	if len(l.events) == cap(l.events) {
		// Grow by explicit doubling: append's growth factor tapers off
		// for large slices, and a busy simulation appends millions of
		// events — the tapered growth re-copied the log often enough
		// that its cumulative allocation ran several times the final
		// size. Doubling caps the churn at ~2× the high-water mark.
		newCap := 2 * cap(l.events)
		if newCap < 256 {
			newCap = 256
		}
		if l.max > 0 && newCap > l.max {
			newCap = l.max
		}
		grown := make([]Event, len(l.events), newCap)
		copy(grown, l.events)
		l.events = grown
	}
	l.events = append(l.events, ev)
}

// Dropped returns how many events a bounded log has discarded at
// capacity.
func (l *EventLog) Dropped() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dropped
}

// Len returns the number of recorded events.
func (l *EventLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.events)
}

// Events returns a copy of all recorded events, ordered by time.
func (l *EventLog) Events() []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Event, len(l.events))
	copy(out, l.events)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Time.Before(out[j].Time) })
	return out
}

// Reset clears the log, including the dropped-event count; the bound
// itself is kept.
func (l *EventLog) Reset() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.events = nil
	l.dropped = 0
}
