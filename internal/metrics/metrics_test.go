package metrics

import (
	"sync"
	"testing"
	"time"
)

func TestMemSinkCounters(t *testing.T) {
	s := NewMemSink()
	s.IncrCounter(CounterMsgsSent, 3)
	s.IncrCounter(CounterMsgsSent, 4)
	s.IncrCounter(CounterBytesSent, 100)
	if got := s.Get(CounterMsgsSent); got != 7 {
		t.Errorf("msgs = %d", got)
	}
	if got := s.Get("absent"); got != 0 {
		t.Errorf("absent counter = %d", got)
	}
	snap := s.Snapshot()
	if len(snap) != 2 || snap[CounterBytesSent] != 100 {
		t.Errorf("snapshot = %v", snap)
	}
	// Snapshot is a copy.
	snap[CounterBytesSent] = 0
	if got := s.Get(CounterBytesSent); got != 100 {
		t.Error("snapshot aliases the sink")
	}
}

func TestMemSinkConcurrent(t *testing.T) {
	s := NewMemSink()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				s.IncrCounter("c", 1)
			}
		}()
	}
	wg.Wait()
	if got := s.Get("c"); got != 8000 {
		t.Errorf("c = %d, want 8000", got)
	}
}

func TestNopSink(t *testing.T) {
	// Must simply not panic.
	NopSink{}.IncrCounter("x", 1)
}

func TestEventLogOrdering(t *testing.T) {
	l := NewEventLog()
	base := time.Unix(100, 0)
	// Append out of order; Events must sort by time, stably.
	l.Append(Event{Time: base.Add(2 * time.Second), Observer: "b", Subject: "x", Type: EventDead})
	l.Append(Event{Time: base, Observer: "a", Subject: "x", Type: EventSuspect})
	l.Append(Event{Time: base.Add(2 * time.Second), Observer: "c", Subject: "x", Type: EventDead})

	evs := l.Events()
	if len(evs) != 3 {
		t.Fatalf("len = %d", len(evs))
	}
	if evs[0].Observer != "a" {
		t.Errorf("first event from %s", evs[0].Observer)
	}
	// Stable: b before c at the same instant.
	if evs[1].Observer != "b" || evs[2].Observer != "c" {
		t.Errorf("same-time order: %s, %s", evs[1].Observer, evs[2].Observer)
	}
}

func TestEventLogCopyAndReset(t *testing.T) {
	l := NewEventLog()
	l.Append(Event{Observer: "a"})
	evs := l.Events()
	evs[0].Observer = "mutated"
	if l.Events()[0].Observer != "a" {
		t.Error("Events returned aliased storage")
	}
	if l.Len() != 1 {
		t.Errorf("len = %d", l.Len())
	}
	l.Reset()
	if l.Len() != 0 {
		t.Error("reset did not clear")
	}
}

func TestEventLogConcurrentAppend(t *testing.T) {
	l := NewEventLog()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				l.Append(Event{Observer: "o", Type: EventJoin})
			}
		}()
	}
	wg.Wait()
	if got := l.Len(); got != 2000 {
		t.Errorf("len = %d", got)
	}
}

func TestBoundedEventLog(t *testing.T) {
	l := NewBoundedEventLog(3)
	for i := 0; i < 5; i++ {
		l.Append(Event{Observer: "o", Type: EventJoin, Incarnation: uint64(i)})
	}
	if got := l.Len(); got != 3 {
		t.Errorf("len = %d, want 3", got)
	}
	if got := l.Dropped(); got != 2 {
		t.Errorf("dropped = %d, want 2", got)
	}
	// The kept events are the first three.
	evs := l.Events()
	if evs[2].Incarnation != 2 {
		t.Errorf("last kept incarnation = %d, want 2", evs[2].Incarnation)
	}
	// Reset clears both the events and the drop count, keeping the bound.
	l.Reset()
	if l.Len() != 0 || l.Dropped() != 0 {
		t.Errorf("after reset: len=%d dropped=%d", l.Len(), l.Dropped())
	}
	for i := 0; i < 4; i++ {
		l.Append(Event{Observer: "o"})
	}
	if l.Len() != 3 || l.Dropped() != 1 {
		t.Errorf("bound not kept after reset: len=%d dropped=%d", l.Len(), l.Dropped())
	}

	// A bound below 1 means unbounded.
	u := NewBoundedEventLog(0)
	for i := 0; i < 10; i++ {
		u.Append(Event{Observer: "o"})
	}
	if u.Len() != 10 || u.Dropped() != 0 {
		t.Errorf("unbounded log: len=%d dropped=%d", u.Len(), u.Dropped())
	}
}

func TestEventTypeString(t *testing.T) {
	cases := map[EventType]string{
		EventJoin:     "join",
		EventSuspect:  "suspect",
		EventDead:     "dead",
		EventAlive:    "alive",
		EventType(99): "unknown",
	}
	for typ, want := range cases {
		if got := typ.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", typ, got, want)
		}
	}
}
