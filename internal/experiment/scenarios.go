package experiment

import (
	"fmt"
	"sort"
)

// This file registers every experiment driver with the scenario
// harness and builds their machine-readable records. Registration
// order is the canonical "all" run order.

func init() {
	Register(&scenario{
		name:   "interval",
		desc:   "Interval sweeps over Table I: false positives and message load (Tables IV/VI, Figures 2/3)",
		plan:   planInterval,
		report: reportInterval,
	})
	Register(&scenario{
		name:   "threshold",
		desc:   "Threshold sweeps over Table I: detection and dissemination latency (Table V)",
		plan:   planThreshold,
		report: reportThreshold,
	})
	Register(&scenario{
		name:   "tuning",
		desc:   "Suspicion α/β grid against a SWIM baseline (Table VII)",
		plan:   planTuning,
		report: reportTuning,
	})
	Register(&scenario{
		name:   "stress",
		desc:   "CPU-exhaustion duty cycle, SWIM vs Lifeguard (Figure 1)",
		plan:   planStress,
		report: reportStress,
	})
	Register(&scenario{
		name:   "wan",
		desc:   "Multi-zone WAN: coordinate accuracy and cross-zone detection, static vs adaptive",
		plan:   planWAN,
		report: reportWAN,
	})
	Register(&scenario{
		name:   "chaos",
		desc:   "Fault-scenario matrix (degraded, flapping, partitioned, lossy, combined) × Table I",
		plan:   planChaos,
		report: reportChaos,
	})
	Register(&scenario{
		name:   "churn",
		desc:   "Large cluster under continuous fail/join/leave membership change",
		plan:   planChurn,
		report: reportChurn,
	})
	Register(&scenario{
		name:   "partition",
		desc:   "Full split and heal: independent operation and automatic re-merge (§II)",
		plan:   planPartition,
		report: reportPartition,
	})
	Register(&scenario{
		name:   "rolling-restart",
		desc:   "Members leave and rejoin in staggered waves, scored per Table I configuration",
		plan:   planRestart,
		report: reportRestart,
	})
}

// outsAs converts the executor's ordered outputs to a scenario's cell
// type. A mismatch is a harness programming error.
func outsAs[T any](outs []any) ([]T, error) {
	typed := make([]T, len(outs))
	for i, out := range outs {
		v, ok := out.(T)
		if !ok {
			return nil, fmt.Errorf("cell %d returned %T", i, out)
		}
		typed[i] = v
	}
	return typed, nil
}

// --- interval -------------------------------------------------------

func planInterval(opt RunOptions) ([]Cell, error) {
	points := intervalPoints(opt.Scale)
	cells := make([]Cell, 0, len(Configurations)*len(points))
	for _, proto := range Configurations {
		proto := proto
		for idx, p := range points {
			seed := intervalSeed(opt.Seed, idx)
			p := p
			cells = append(cells, Cell{
				Label: fmt.Sprintf("interval %s %d/%d", proto.Name, idx+1, len(points)),
				Run: func() (any, error) {
					return RunInterval(ClusterConfig{N: opt.Scale.N, Seed: seed, Protocol: proto}, p)
				},
			})
		}
	}
	return cells, nil
}

func reportInterval(opt RunOptions, outs []any) (ScenarioResult, error) {
	runs, err := outsAs[IntervalResult](outs)
	if err != nil {
		return ScenarioResult{}, err
	}
	points := intervalPoints(opt.Scale)
	results := make([]IntervalSweepResult, 0, len(Configurations))
	for ci, proto := range Configurations {
		results = append(results, aggregateInterval(proto, points, runs[ci*len(points):(ci+1)*len(points)]))
	}
	return ScenarioResult{
		Records: intervalRecords(results),
		Sections: []Section{
			{Key: "table4", Title: "Table IV: aggregated false positives", Body: FormatTable4(results)},
			{Key: "fig2", Title: "Figure 2: total FP vs concurrent anomalies", Body: FormatFigure2(results, false)},
			{Key: "fig3", Title: "Figure 3: FP at healthy members vs concurrent anomalies", Body: FormatFigure2(results, true)},
			{Key: "table6", Title: "Table VI: message load", Body: FormatTable6(results)},
		},
	}, nil
}

// --- threshold ------------------------------------------------------

func planThreshold(opt RunOptions) ([]Cell, error) {
	points := thresholdPoints(opt.Scale)
	cells := make([]Cell, 0, len(Configurations)*len(points))
	for _, proto := range Configurations {
		proto := proto
		for idx, p := range points {
			seed := thresholdSeed(opt.Seed, idx)
			p := p
			cells = append(cells, Cell{
				Label: fmt.Sprintf("threshold %s %d/%d", proto.Name, idx+1, len(points)),
				Run: func() (any, error) {
					return RunThreshold(ClusterConfig{N: opt.Scale.N, Seed: seed, Protocol: proto}, p)
				},
			})
		}
	}
	return cells, nil
}

func reportThreshold(opt RunOptions, outs []any) (ScenarioResult, error) {
	runs, err := outsAs[ThresholdResult](outs)
	if err != nil {
		return ScenarioResult{}, err
	}
	per := len(thresholdPoints(opt.Scale))
	results := make([]ThresholdSweepResult, 0, len(Configurations))
	for ci, proto := range Configurations {
		results = append(results, aggregateThreshold(proto, runs[ci*per:(ci+1)*per]))
	}
	return ScenarioResult{
		Records: thresholdRecords(results),
		Sections: []Section{
			{Key: "table5", Title: "Table V: detection and dissemination latency (s)", Body: FormatTable5(results)},
		},
	}, nil
}

// --- tuning ---------------------------------------------------------

// tuningProtos lists the tuning scenario's configuration axis: the
// SWIM baseline first, then Lifeguard at every (α, β) of the grid.
func tuningProtos(alphas, betas []float64) []ProtocolConfig {
	protos := []ProtocolConfig{ConfigSWIM}
	for _, alpha := range alphas {
		for _, beta := range betas {
			proto := ConfigLifeguard
			proto.Alpha, proto.Beta = alpha, beta
			protos = append(protos, proto)
		}
	}
	return protos
}

func planTuning(opt RunOptions) ([]Cell, error) {
	alphas, betas := opt.Scale.TuningGrid()
	tPoints := thresholdPoints(opt.Scale)
	iPoints := intervalPoints(opt.Scale)
	var cells []Cell
	for _, proto := range tuningProtos(alphas, betas) {
		proto := proto
		for idx, p := range tPoints {
			seed := thresholdSeed(opt.Seed, idx)
			p := p
			cells = append(cells, Cell{
				Label: fmt.Sprintf("tuning %s threshold %d/%d", proto.Name, idx+1, len(tPoints)),
				Run: func() (any, error) {
					return RunThreshold(ClusterConfig{N: opt.Scale.N, Seed: seed, Protocol: proto}, p)
				},
			})
		}
		for idx, p := range iPoints {
			seed := intervalSeed(opt.Seed, idx)
			p := p
			cells = append(cells, Cell{
				Label: fmt.Sprintf("tuning %s interval %d/%d", proto.Name, idx+1, len(iPoints)),
				Run: func() (any, error) {
					return RunInterval(ClusterConfig{N: opt.Scale.N, Seed: seed, Protocol: proto}, p)
				},
			})
		}
	}
	return cells, nil
}

func reportTuning(opt RunOptions, outs []any) (ScenarioResult, error) {
	alphas, betas := opt.Scale.TuningGrid()
	protos := tuningProtos(alphas, betas)
	tPoints := thresholdPoints(opt.Scale)
	iPoints := intervalPoints(opt.Scale)
	per := len(tPoints) + len(iPoints)
	if len(outs) != len(protos)*per {
		return ScenarioResult{}, fmt.Errorf("tuning: %d outputs for %d cells", len(outs), len(protos)*per)
	}
	aggregate := func(ci int, proto ProtocolConfig) (ThresholdSweepResult, IntervalSweepResult, error) {
		block := outs[ci*per : (ci+1)*per]
		tRuns, err := outsAs[ThresholdResult](block[:len(tPoints)])
		if err != nil {
			return ThresholdSweepResult{}, IntervalSweepResult{}, err
		}
		iRuns, err := outsAs[IntervalResult](block[len(tPoints):])
		if err != nil {
			return ThresholdSweepResult{}, IntervalSweepResult{}, err
		}
		return aggregateThreshold(proto, tRuns), aggregateInterval(proto, iPoints, iRuns), nil
	}
	baseT, baseI, err := aggregate(0, protos[0])
	if err != nil {
		return ScenarioResult{}, err
	}
	res := TuningSweepResult{BaselineThreshold: baseT, BaselineInterval: baseI}
	for ci, proto := range protos[1:] {
		t, iv, err := aggregate(ci+1, proto)
		if err != nil {
			return ScenarioResult{}, err
		}
		res.Cells = append(res.Cells, tuningCell(proto.Alpha, proto.Beta, t, baseT, iv, baseI))
	}
	return ScenarioResult{
		Records: tuningRecords(res),
		Sections: []Section{
			{Key: "table7", Title: "Table VII: performance as % of SWIM under α/β tunings", Body: FormatTable7(res)},
		},
	}, nil
}

// --- stress ---------------------------------------------------------

// stressProtos is the Figure-1 configuration axis.
var stressProtos = []ProtocolConfig{ConfigSWIM, ConfigLifeguard}

func planStress(opt RunOptions) ([]Cell, error) {
	counts := stressCounts(opt.Scale)
	cells := make([]Cell, 0, len(stressProtos)*len(counts))
	for _, proto := range stressProtos {
		proto := proto
		for i, count := range counts {
			seed := stressSeed(opt.Seed, i)
			count := count
			cells = append(cells, Cell{
				Label: fmt.Sprintf("stress %s S=%d", proto.Name, count),
				Run: func() (any, error) {
					return RunStress(
						ClusterConfig{N: StressN, Seed: seed, Protocol: proto},
						StressParams{Stressed: count, Duration: opt.Scale.StressDuration})
				},
			})
		}
	}
	return cells, nil
}

func reportStress(opt RunOptions, outs []any) (ScenarioResult, error) {
	runs, err := outsAs[StressResult](outs)
	if err != nil {
		return ScenarioResult{}, err
	}
	counts := stressCounts(opt.Scale)
	results := make([]StressSweepResult, 0, len(stressProtos))
	for ci, proto := range stressProtos {
		r := StressSweepResult{Config: proto, ByCount: make(map[int]StressResult)}
		for i, count := range counts {
			r.ByCount[count] = runs[ci*len(counts)+i]
		}
		results = append(results, r)
	}
	return ScenarioResult{
		Records: stressRecords(results),
		Sections: []Section{
			{Key: "fig1", Title: "Figure 1: false positives from CPU exhaustion", Body: FormatFigure1(results)},
		},
	}, nil
}

// --- wan ------------------------------------------------------------

// wanParams resolves the WAN scenario's parameters from the options.
func wanParams(opt RunOptions) WANParams {
	perZone := opt.Scale.WANMembersPerZone
	if opt.WANMembersPerZone > 0 {
		perZone = opt.WANMembersPerZone
	}
	fail := opt.WANFailPerZone
	switch {
	case fail == 0:
		fail = 3
	case fail < 0:
		fail = 0
	}
	zones, pairs := DefaultWANZones(perZone)
	return WANParams{
		Zones:       zones,
		Pairs:       pairs,
		Converge:    opt.Scale.WANConverge,
		FailPerZone: fail,
	}
}

func planWAN(opt RunOptions) ([]Cell, error) {
	p := wanParams(opt)
	run := func(adaptive bool) func() (any, error) {
		return func() (any, error) {
			return RunWAN(ClusterConfig{
				Seed:          opt.Seed,
				Protocol:      ConfigLifeguard,
				TopologyAware: adaptive,
				Telemetry:     true,
			}, p)
		}
	}
	return []Cell{
		{Label: "wan static", Run: run(false)},
		{Label: "wan adaptive", Run: run(true)},
	}, nil
}

func reportWAN(opt RunOptions, outs []any) (ScenarioResult, error) {
	runs, err := outsAs[WANResult](outs)
	if err != nil {
		return ScenarioResult{}, err
	}
	cmp := WANComparison{Static: runs[0], Adaptive: runs[1]}
	return ScenarioResult{
		Records: []Record{wanRecord(cmp.Static, false), wanRecord(cmp.Adaptive, true)},
		Sections: []Section{
			{Key: "wan", Title: "WAN: adaptive vs static topology-aware detection", Body: FormatWANComparison(cmp)},
		},
	}, nil
}

// --- chaos ----------------------------------------------------------

// chaosParams resolves the chaos scenario's raw parameters from the
// options. The result is passed unresolved to each cell (withDefaults
// is not idempotent and must run exactly once per cell).
func chaosParams(opt RunOptions) ChaosParams {
	n := opt.Scale.ChaosN
	if opt.ChaosN > 0 {
		n = opt.ChaosN
	}
	return ChaosParams{
		N:        n,
		Victims:  opt.ChaosVictims,
		Crashes:  opt.ChaosCrashes,
		FaultFor: opt.Scale.ChaosFaultFor,
		Settle:   opt.Scale.ChaosSettle,
	}
}

func planChaos(opt RunOptions) ([]Cell, error) {
	p := chaosParams(opt)
	resolved := p.withDefaults()
	var cells []Cell
	for _, name := range ChaosScenarioNames() {
		name := name
		for _, proto := range resolved.Configs {
			proto := proto
			cells = append(cells, Cell{
				Label: fmt.Sprintf("chaos %s/%s", name, proto.Name),
				Run: func() (any, error) {
					cell, _, err := RunChaosCell(ClusterConfig{Seed: opt.Seed, Protocol: proto}, name, p)
					return cell, err
				},
			})
		}
	}
	return cells, nil
}

func reportChaos(opt RunOptions, outs []any) (ScenarioResult, error) {
	cells, err := outsAs[ChaosCellResult](outs)
	if err != nil {
		return ScenarioResult{}, err
	}
	res := ChaosResult{Params: chaosParams(opt).withDefaults(), Cells: cells}
	return ScenarioResult{
		Records: chaosRecords(res),
		Sections: []Section{
			{Key: "chaos", Title: "Chaos: fault-scenario matrix × protocol ablation", Body: FormatChaos(res)},
		},
	}, nil
}

// --- churn ----------------------------------------------------------

func planChurn(opt RunOptions) ([]Cell, error) {
	return []Cell{{
		Label: "churn",
		Run: func() (any, error) {
			return RunChurn(
				ClusterConfig{N: opt.Scale.ChurnN, Seed: opt.Seed, Protocol: ConfigLifeguard},
				ChurnParams{Duration: opt.Scale.ChurnFor})
		},
	}}, nil
}

func reportChurn(opt RunOptions, outs []any) (ScenarioResult, error) {
	runs, err := outsAs[ChurnResult](outs)
	if err != nil {
		return ScenarioResult{}, err
	}
	r := runs[0]
	return ScenarioResult{
		Records: []Record{churnRecord(r)},
		Sections: []Section{
			{Key: "churn", Title: "Churn: continuous fail/join/leave at scale", Body: FormatChurn(r)},
		},
	}, nil
}

// --- partition ------------------------------------------------------

func planPartition(opt RunOptions) ([]Cell, error) {
	return []Cell{{
		Label: "partition",
		Run: func() (any, error) {
			return RunPartition(
				ClusterConfig{N: opt.Scale.PartitionN, Seed: opt.Seed, Protocol: ConfigLifeguard},
				PartitionParams{})
		},
	}}, nil
}

func reportPartition(opt RunOptions, outs []any) (ScenarioResult, error) {
	runs, err := outsAs[PartitionResult](outs)
	if err != nil {
		return ScenarioResult{}, err
	}
	r := runs[0]
	return ScenarioResult{
		Records: []Record{partitionRecord(opt.Scale.PartitionN, r)},
		Sections: []Section{
			{Key: "partition", Title: "Partition: split, independent operation, heal and re-merge", Body: FormatPartition(r)},
		},
	}, nil
}

// --- rolling-restart ------------------------------------------------

// restartParams resolves the rolling-restart scenario's parameters
// from the options.
func restartParams(opt RunOptions) RestartParams {
	n := opt.Scale.RestartN
	if opt.RestartN > 0 {
		n = opt.RestartN
	}
	return RestartParams{N: n, Waves: opt.Scale.RestartWaves}.withDefaults()
}

func planRestart(opt RunOptions) ([]Cell, error) {
	p := restartParams(opt)
	cells := make([]Cell, 0, len(p.Configs))
	for _, proto := range p.Configs {
		proto := proto
		cells = append(cells, Cell{
			Label: fmt.Sprintf("rolling-restart %s", proto.Name),
			Run: func() (any, error) {
				return RunRestartCell(ClusterConfig{Seed: opt.Seed, Protocol: proto}, p)
			},
		})
	}
	return cells, nil
}

func reportRestart(opt RunOptions, outs []any) (ScenarioResult, error) {
	cells, err := outsAs[RestartCellResult](outs)
	if err != nil {
		return ScenarioResult{}, err
	}
	res := RestartResult{Params: restartParams(opt), Cells: cells}
	return ScenarioResult{
		Records: restartRecords(res),
		Sections: []Section{
			{Key: "rolling-restart", Title: "Rolling restart: staggered leave/rejoin waves", Body: FormatRestart(res)},
		},
	}, nil
}

// --- record builders ------------------------------------------------

func intervalRecords(results []IntervalSweepResult) []Record {
	out := make([]Record, 0, len(results))
	for _, r := range results {
		rec := Record{
			Experiment: "interval-sweep",
			Config:     r.Config.Name,
			Params:     map[string]any{"alpha": r.Config.Alpha, "beta": r.Config.Beta},
			Metrics: map[string]float64{
				"fp":         float64(r.FP),
				"fp_healthy": float64(r.FPHealthy),
				"msgs_sent":  float64(r.MsgsSent),
				"bytes_sent": float64(r.BytesSent),
				"runs":       float64(r.Runs),
			},
		}
		for c, cell := range r.ByC {
			rec.Metrics[fmt.Sprintf("fp_c%d", c)] = float64(cell.FP)
			rec.Metrics[fmt.Sprintf("fp_healthy_c%d", c)] = float64(cell.FPHealthy)
		}
		out = append(out, rec)
	}
	return out
}

func thresholdRecords(results []ThresholdSweepResult) []Record {
	out := make([]Record, 0, len(results))
	for _, r := range results {
		out = append(out, Record{
			Experiment: "threshold-sweep",
			Config:     r.Config.Name,
			Params:     map[string]any{"alpha": r.Config.Alpha, "beta": r.Config.Beta},
			Metrics: map[string]float64{
				"first_detect_median_s": r.FirstDetect.Median,
				"first_detect_p99_s":    r.FirstDetect.P99,
				"first_detect_p999_s":   r.FirstDetect.P999,
				"full_dissem_median_s":  r.FullDissem.Median,
				"full_dissem_p99_s":     r.FullDissem.P99,
				"full_dissem_p999_s":    r.FullDissem.P999,
				"detected":              float64(r.Detected),
				"undetected":            float64(r.Undetected),
				"runs":                  float64(r.Runs),
			},
		})
	}
	return out
}

func tuningRecords(res TuningSweepResult) []Record {
	out := make([]Record, 0, len(res.Cells))
	for _, cell := range res.Cells {
		out = append(out, Record{
			Experiment: "tuning-sweep",
			Config:     "Lifeguard",
			Params:     map[string]any{"alpha": cell.Alpha, "beta": cell.Beta},
			Metrics: map[string]float64{
				"med_first_pct_swim":  cell.MedFirst,
				"med_full_pct_swim":   cell.MedFull,
				"p99_first_pct_swim":  cell.P99First,
				"p99_full_pct_swim":   cell.P99Full,
				"p999_first_pct_swim": cell.P999First,
				"p999_full_pct_swim":  cell.P999Full,
				"fp_pct_swim":         cell.FP,
				"fp_healthy_pct_swim": cell.FPHealthy,
			},
		})
	}
	return out
}

func stressRecords(results []StressSweepResult) []Record {
	var out []Record
	for _, r := range results {
		// ByCount is a map; sort the keys so records are stable across
		// identical runs (the whole point of the records).
		counts := make([]int, 0, len(r.ByCount))
		for count := range r.ByCount {
			counts = append(counts, count)
		}
		sort.Ints(counts)
		for _, count := range counts {
			sr := r.ByCount[count]
			out = append(out, Record{
				Experiment: "stress",
				Config:     r.Config.Name,
				Params:     map[string]any{"stressed": count},
				Metrics: map[string]float64{
					"fp":         float64(sr.FP),
					"fp_healthy": float64(sr.FPHealthy),
				},
			})
		}
	}
	return out
}

func chaosRecords(res ChaosResult) []Record {
	out := make([]Record, 0, len(res.Cells))
	for _, cell := range res.Cells {
		out = append(out, Record{
			Experiment: "chaos",
			Config:     cell.Config,
			Params: map[string]any{
				"scenario":    cell.Scenario,
				"members":     res.Params.N,
				"victims":     cell.Victims,
				"crashes":     cell.Crashes,
				"fault_for_s": res.Params.FaultFor.Seconds(),
				"crash_at_s":  res.Params.CrashAt.Seconds(),
			},
			Metrics: map[string]float64{
				"fp":                    float64(cell.FP),
				"fp_healthy":            float64(cell.FPHealthy),
				"victim_deaths":         float64(cell.VictimDeaths),
				"crashes_detected":      float64(cell.CrashesDetected),
				"crash_detect_median_s": cell.CrashDetect.Median,
				"crash_detect_max_s":    cell.CrashDetect.Max,
				"suspicions":            float64(cell.Suspicions),
				"refuted":               float64(cell.Refuted),
				"refute_median_s":       cell.RefuteLatency.Median,
				"msgs_sent":             float64(cell.MsgsSent),
				"bytes_sent":            float64(cell.BytesSent),
				"duplicated":            float64(cell.Duplicated),
				"reordered":             float64(cell.Reordered),
				"fault_drops":           float64(cell.FaultDrops),
			},
		})
	}
	return out
}

func wanRecord(res WANResult, adaptive bool) Record {
	rec := Record{
		Experiment: "wan",
		Config:     "Lifeguard",
		Params: map[string]any{
			"members":       res.N,
			"zones":         len(res.Params.Zones),
			"fail_per_zone": res.Params.FailPerZone,
			"converge_s":    res.Params.Converge.Seconds(),
			"adaptive":      adaptive,
		},
		Metrics: map[string]float64{
			"coord_rel_err_median":       res.CoordErr.Median,
			"coord_rel_err_p99":          res.CoordErr.P99,
			"coord_abs_err_mean_s":       res.MeanAbsErr,
			"pairs_scored":               float64(res.PairsScored),
			"fp":                         float64(res.FP),
			"fp_healthy":                 float64(res.FPHealthy),
			"detect_cross_zone_median_s": res.CrossZoneDetect.Median,
			"detect_cross_zone_p99_s":    res.CrossZoneDetect.P99,
			"msgs_sent":                  float64(res.MsgsSent),
			"bytes_sent":                 float64(res.BytesSent),
			"adaptive_timeouts":          float64(res.AdaptiveTimeouts),
			"adaptive_timeout_fallbacks": float64(res.AdaptiveFallbacks),
			"relay_near_picks":           float64(res.RelayNear),
			"relay_random_picks":         float64(res.RelayRandom),
			"gossip_near_picks":          float64(res.GossipNear),
			"gossip_escape_picks":        float64(res.GossipEscape),
			"obs_rtt_samples":            float64(res.ObsRTTSamples),
			"obs_rtt_p50_err_median":     res.ObsRTTP50ErrMedian,
			"obs_rtt_p90_err_median":     res.ObsRTTP90ErrMedian,
		},
	}
	for _, pe := range res.ObsRTTPairs {
		pair := pe.ZoneA + "__" + pe.ZoneB
		rec.Metrics["obs_rtt_p50_err_"+pair] = pe.P50RelErr
		rec.Metrics["obs_rtt_p90_err_"+pair] = pe.P90RelErr
	}
	for _, z := range res.PerZone {
		rec.Metrics["detect_median_s_"+z.Zone] = z.FirstDetect.Median
		rec.Metrics["detect_cross_zone_median_s_"+z.Zone] = z.CrossZoneDetect.Median
		rec.Metrics["detected_"+z.Zone] = float64(z.Detected)
		rec.Metrics["failed_"+z.Zone] = float64(z.Failed)
		rec.Metrics["fp_"+z.Zone] = float64(z.FP)
	}
	return rec
}

func churnRecord(r ChurnResult) Record {
	return Record{
		Experiment: "churn",
		Config:     "Lifeguard",
		Params: map[string]any{
			"members":    r.N,
			"duration_s": r.Params.Duration.Seconds(),
			"interval_s": r.Params.Interval.Seconds(),
		},
		Metrics: map[string]float64{
			"fails":                 float64(r.Fails),
			"leaves":                float64(r.Leaves),
			"joins":                 float64(r.Joins),
			"detected_fails":        float64(r.DetectedFails),
			"first_detect_median_s": r.FirstDetect.Median,
			"first_detect_max_s":    r.FirstDetect.Max,
			"fp":                    float64(r.FP),
			"joins_seen":            float64(r.JoinsSeen),
			"joins_sampled":         float64(r.JoinsSampled),
		},
	}
}

func partitionRecord(n int, r PartitionResult) Record {
	b2f := func(b bool) float64 {
		if b {
			return 1
		}
		return 0
	}
	return Record{
		Experiment: "partition",
		Config:     "Lifeguard",
		Params: map[string]any{
			"members":       n,
			"size_a":        r.Params.SizeA,
			"duration_s":    r.Params.Duration.Seconds(),
			"heal_budget_s": r.Params.HealBudget.Seconds(),
		},
		Metrics: map[string]float64{
			"side_a_converged":    b2f(r.SideAConverged),
			"side_b_converged":    b2f(r.SideBConverged),
			"cross_declared_dead": float64(r.CrossDeclaredDead),
			"remerged":            b2f(r.Remerged),
			"remerge_s":           r.RemergeTime.Seconds(),
		},
	}
}

func restartRecords(res RestartResult) []Record {
	out := make([]Record, 0, len(res.Cells))
	for _, cell := range res.Cells {
		out = append(out, Record{
			Experiment: "rolling-restart",
			Config:     cell.Config,
			Params: map[string]any{
				"members":      res.Params.N,
				"waves":        res.Params.Waves,
				"per_wave":     res.Params.PerWave,
				"down_for_s":   res.Params.DownFor.Seconds(),
				"stagger_s":    res.Params.Stagger.Seconds(),
				"wave_every_s": res.Params.WaveEvery.Seconds(),
				"settle_s":     res.Params.Settle.Seconds(),
			},
			Metrics: map[string]float64{
				"restarts":        float64(cell.Restarts),
				"rejoined":        float64(cell.Rejoined),
				"fp":              float64(cell.FP),
				"fp_healthy":      float64(cell.FPHealthy),
				"rejoin_median_s": cell.RejoinConverge.Median,
				"rejoin_max_s":    cell.RejoinConverge.Max,
				"msgs_sent":       float64(cell.MsgsSent),
				"bytes_sent":      float64(cell.BytesSent),
			},
		})
	}
	return out
}
