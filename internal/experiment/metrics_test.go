package experiment

import (
	"strings"
	"testing"
	"time"

	"lifeguard/internal/metrics"
	"lifeguard/internal/stats"
)

func ev(t time.Duration, typ metrics.EventType, observer, subject string) metrics.Event {
	return metrics.Event{
		Time:     time.Unix(0, 0).Add(t),
		Type:     typ,
		Observer: observer,
		Subject:  subject,
	}
}

func TestCountFalsePositivesClassification(t *testing.T) {
	anomalous := []string{"bad1", "bad2"}
	start := time.Unix(0, 0).Add(15 * time.Second)
	events := []metrics.Event{
		// Before anomaly start: ignored entirely.
		ev(10*time.Second, metrics.EventDead, "h1", "h2"),
		// True positive: subject anomalous.
		ev(20*time.Second, metrics.EventDead, "h1", "bad1"),
		// FP at an anomalous observer.
		ev(21*time.Second, metrics.EventDead, "bad1", "h3"),
		// FP at a healthy observer (FP-).
		ev(22*time.Second, metrics.EventDead, "h1", "h3"),
		// Suspect events are not failure events.
		ev(23*time.Second, metrics.EventSuspect, "h1", "h4"),
		// Another true positive at an anomalous observer.
		ev(24*time.Second, metrics.EventDead, "bad2", "bad1"),
	}
	fp, fpHealthy, tp := countFalsePositives(events, anomalous, start)
	if fp != 2 {
		t.Errorf("fp = %d, want 2", fp)
	}
	if fpHealthy != 1 {
		t.Errorf("fp- = %d, want 1", fpHealthy)
	}
	if tp != 2 {
		t.Errorf("tp = %d, want 2", tp)
	}
}

func TestDetectionLatencies(t *testing.T) {
	all := []string{"a", "b", "c", "d", "bad"}
	anomalous := []string{"bad"}
	start := time.Unix(0, 0).Add(15 * time.Second)
	events := []metrics.Event{
		// First detection at a (t=25), then full coverage of healthy
		// members at t=27 (b), t=26 (c), t=30 (d).
		ev(25*time.Second, metrics.EventDead, "a", "bad"),
		ev(27*time.Second, metrics.EventDead, "b", "bad"),
		ev(26*time.Second, metrics.EventDead, "c", "bad"),
		ev(30*time.Second, metrics.EventDead, "d", "bad"),
		// Duplicate dead at a later time must not matter.
		ev(40*time.Second, metrics.EventDead, "a", "bad"),
		// Self-observation is excluded.
		ev(16*time.Second, metrics.EventDead, "bad", "bad"),
	}
	first, full := detectionLatencies(events, anomalous, all, start)
	if len(first) != 1 || first[0] != 10*time.Second {
		t.Errorf("first = %v, want [10s]", first)
	}
	if len(full) != 1 || full[0] != 15*time.Second {
		t.Errorf("full = %v, want [15s]", full)
	}
}

func TestDetectionLatenciesPartialDissemination(t *testing.T) {
	all := []string{"a", "b", "bad"}
	anomalous := []string{"bad"}
	start := time.Unix(0, 0)
	events := []metrics.Event{
		ev(5*time.Second, metrics.EventDead, "a", "bad"),
		// b never sees the failure: no full-dissemination sample.
	}
	first, full := detectionLatencies(events, anomalous, all, start)
	if len(first) != 1 {
		t.Errorf("first = %v", first)
	}
	if len(full) != 0 {
		t.Errorf("full = %v, want none", full)
	}
}

func TestDetectionLatenciesUndetected(t *testing.T) {
	first, full := detectionLatencies(nil, []string{"bad"}, []string{"a", "bad"}, time.Unix(0, 0))
	if len(first) != 0 || len(full) != 0 {
		t.Errorf("first=%v full=%v", first, full)
	}
}

func TestPickAnomalySetProperties(t *testing.T) {
	c, err := NewCluster(ClusterConfig{N: 16, Seed: 3, Protocol: ConfigSWIM})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()

	names := c.PickAnomalySet(5, 42)
	if len(names) != 5 {
		t.Fatalf("got %d names", len(names))
	}
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Errorf("duplicate %s", n)
		}
		seen[n] = true
		if n == NodeName(0) {
			t.Error("join seed selected as anomalous")
		}
	}
	// Deterministic per seed.
	again := c.PickAnomalySet(5, 42)
	for i := range names {
		if names[i] != again[i] {
			t.Fatal("anomaly set not deterministic")
		}
	}
	// Requesting more than available clamps.
	if got := c.PickAnomalySet(100, 1); len(got) != 15 {
		t.Errorf("clamped set size = %d, want 15", len(got))
	}
}

func TestNewClusterRejectsTinyN(t *testing.T) {
	if _, err := NewCluster(ClusterConfig{N: 1, Protocol: ConfigSWIM}); err == nil {
		t.Fatal("N=1 accepted")
	}
}

func TestClusterConvergesAfterQuiesce(t *testing.T) {
	c, err := NewCluster(ClusterConfig{N: 24, Seed: 9, Protocol: ConfigLifeguard})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	if err := c.Start(Quiesce); err != nil {
		t.Fatal(err)
	}
	// The membership map is usually complete within the paper's 15 s
	// quiesce; a transient suspicion may take a few more seconds to
	// refute, so allow a little slack before declaring failure.
	for extra := 0; extra < 30 && !c.Converged(); extra++ {
		c.Sched.RunFor(time.Second)
	}
	if !c.Converged() {
		t.Fatal("24-member cluster did not converge within quiesce + 30s")
	}
}

func TestWithTuning(t *testing.T) {
	p := ConfigLifeguard.WithTuning(2, 4)
	if p.Alpha != 2 || p.Beta != 4 {
		t.Errorf("tuning = %v/%v", p.Alpha, p.Beta)
	}
	if !strings.Contains(p.Name, "α=2") || !strings.Contains(p.Name, "β=4") {
		t.Errorf("name = %q", p.Name)
	}
	// Original untouched.
	if ConfigLifeguard.Alpha != 5 {
		t.Error("WithTuning mutated the original")
	}
}

// --- Report formatting ---

func sampleIntervalResults() []IntervalSweepResult {
	return []IntervalSweepResult{
		{
			Config: ConfigSWIM, FP: 1000, FPHealthy: 40,
			MsgsSent: 2_000_000, BytesSent: 3 << 30, Runs: 4,
			ByC: map[int]*IntervalCell{
				4:  {FP: 400, FPHealthy: 10, Runs: 2},
				16: {FP: 600, FPHealthy: 30, Runs: 2},
			},
		},
		{
			Config: ConfigLifeguard, FP: 20, FPHealthy: 1,
			MsgsSent: 2_200_000, BytesSent: 29 << 27, Runs: 4,
			ByC: map[int]*IntervalCell{
				4:  {FP: 5, FPHealthy: 0, Runs: 2},
				16: {FP: 15, FPHealthy: 1, Runs: 2},
			},
		},
	}
}

func TestFormatTable4(t *testing.T) {
	out := FormatTable4(sampleIntervalResults())
	for _, want := range []string{"SWIM", "Lifeguard", "100.00", "2.00", "2.50"} {
		if !strings.Contains(out, want) {
			t.Errorf("table 4 missing %q:\n%s", want, out)
		}
	}
}

func TestFormatTable5(t *testing.T) {
	res := []ThresholdSweepResult{{
		Config:      ConfigSWIM,
		FirstDetect: stats.Summary{Count: 10, Median: 12.44, P99: 16.96, P999: 19.4},
		FullDissem:  stats.Summary{Count: 10, Median: 12.9, P99: 16.93, P999: 20.17},
	}}
	out := FormatTable5(res)
	for _, want := range []string{"SWIM", "12.44", "16.96", "20.17"} {
		if !strings.Contains(out, want) {
			t.Errorf("table 5 missing %q:\n%s", want, out)
		}
	}
}

func TestFormatTable6(t *testing.T) {
	out := FormatTable6(sampleIntervalResults())
	for _, want := range []string{"Msgs Sent(M)", "2.000", "110.00", "SWIM"} {
		if !strings.Contains(out, want) {
			t.Errorf("table 6 missing %q:\n%s", want, out)
		}
	}
}

func TestFormatTable7(t *testing.T) {
	res := TuningSweepResult{Cells: []TuningCell{
		{Alpha: 2, Beta: 2, MedFirst: 53.14, FP: 98.37, FPHealthy: 31.15},
		{Alpha: 5, Beta: 6, MedFirst: 100.08, FP: 1.53, FPHealthy: 1.89},
	}}
	out := FormatTable7(res)
	for _, want := range []string{"α=2,β=2", "α=5,β=6", "53.14", "1.53", "FP-"} {
		if !strings.Contains(out, want) {
			t.Errorf("table 7 missing %q:\n%s", want, out)
		}
	}
}

func TestFormatFigure2(t *testing.T) {
	out := FormatFigure2(sampleIntervalResults(), false)
	for _, want := range []string{"C=4", "C=16", "400", "15"} {
		if !strings.Contains(out, want) {
			t.Errorf("figure 2 missing %q:\n%s", want, out)
		}
	}
	healthy := FormatFigure2(sampleIntervalResults(), true)
	if !strings.Contains(healthy, "FP at Healthy") {
		t.Errorf("figure 3 header missing:\n%s", healthy)
	}
}

func TestFormatFigure1(t *testing.T) {
	res := []StressSweepResult{{
		Config: ConfigSWIM,
		ByCount: map[int]StressResult{
			4:  {FP: 70, FPHealthy: 2},
			16: {FP: 500, FPHealthy: 9},
		},
	}}
	out := FormatFigure1(res)
	for _, want := range []string{"S=4", "S=16", "500", "total FP", "FP@healthy"} {
		if !strings.Contains(out, want) {
			t.Errorf("figure 1 missing %q:\n%s", want, out)
		}
	}
}
