package experiment

import (
	"testing"
	"time"

	"lifeguard/internal/metrics"
)

// TestDebugLifeguardResidualFPs traces the events surrounding residual
// Lifeguard false positives. Development aid, no assertions.
func TestDebugLifeguardResidualFPs(t *testing.T) {
	if testing.Short() {
		t.Skip("debug trace")
	}
	cc := ClusterConfig{N: 64, Seed: 11, Protocol: ConfigLifeguard}
	c, err := NewCluster(cc)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	if err := c.Start(Quiesce); err != nil {
		t.Fatal(err)
	}
	anomalous := c.PickAnomalySet(8, cc.Seed+1)
	anomalySet := toSet(anomalous)
	t.Logf("anomalous: %v", anomalous)

	d, i := 16384*time.Millisecond, 64*time.Millisecond
	for {
		c.SetAnomalous(anomalous, true)
		c.Sched.RunFor(d)
		c.SetAnomalous(anomalous, false)
		if c.Elapsed() >= Horizon {
			break
		}
		c.Sched.RunFor(i)
	}

	events := c.Events.Events()
	// Find FP subjects.
	fpSubjects := map[string]bool{}
	for _, ev := range events {
		if ev.Type != metrics.EventDead {
			continue
		}
		if _, bad := anomalySet[ev.Subject]; !bad {
			fpSubjects[ev.Subject] = true
		}
	}
	t.Logf("FP subjects: %v", fpSubjects)
	// Print the full event history of the first FP subject.
	var target string
	for s := range fpSubjects {
		target = s
		break
	}
	if target == "" {
		t.Log("no FPs this run")
		return
	}
	for _, ev := range events {
		if ev.Subject != target || ev.Time.Before(time.Unix(15, 0)) {
			continue
		}
		_, obsBad := anomalySet[ev.Observer]
		t.Logf("%8.3fs %-8s obs=%s(anom=%v) subj=%s inc=%d",
			ev.Time.Sub(time.Unix(0, 0)).Seconds(), ev.Type, ev.Observer, obsBad, ev.Subject, ev.Incarnation)
	}
}
