package experiment

import (
	"fmt"
	"math/rand"
	"time"

	"lifeguard/internal/core"
	"lifeguard/internal/metrics"
	"lifeguard/internal/stats"
)

// DefaultChurnN is the cluster size for the large-cluster churn
// scenario: paper-scale membership (the Lifeguard deployments behind
// §V run at thousands of members), well past the double-digit clusters
// the other experiments use.
const DefaultChurnN = 2048

// ChurnParams parameterizes the large-cluster churn scenario: a big
// cluster under continuous membership change — crash failures, graceful
// leaves, and fresh joins interleaved at a steady rate — verifying that
// detection latency and false-positive behavior hold at scale.
type ChurnParams struct {
	// Interval is the time between consecutive churn actions. Actions
	// cycle fail → join → leave → join, so the population stays roughly
	// stable. Defaults to 500 ms.
	Interval time.Duration

	// Duration is the length of the churn phase. Defaults to 30 s.
	Duration time.Duration

	// Settle is how long the cluster runs after the last churn action so
	// in-flight suspicions resolve before measurement. Defaults to twice
	// the cluster's maximum suspicion timeout.
	Settle time.Duration
}

// ChurnResult reports protocol behavior across one churn run.
type ChurnResult struct {
	Params ChurnParams

	// N is the initial cluster size.
	N int

	// Fails, Leaves and Joins count the churn actions performed.
	Fails, Leaves, Joins int

	// FirstDetect summarizes, per crashed member that was detected, the
	// seconds from crash to the first dead event at a surviving member.
	FirstDetect stats.Summary

	// DetectedFails counts crashed members detected by at least one
	// surviving member within the run.
	DetectedFails int

	// FP counts false-positive failure events: dead events about members
	// that neither crashed nor left.
	FP int

	// JoinsSeen counts joined members that a sample of long-lived
	// surviving members sees alive at the end of the run.
	JoinsSeen int

	// JoinsSampled is the sample size behind JoinsSeen (joins × sampled
	// observers).
	JoinsSampled int
}

// RunChurn executes the large-cluster churn scenario.
func RunChurn(cc ClusterConfig, p ChurnParams) (ChurnResult, error) {
	if cc.N == 0 {
		cc.N = DefaultChurnN
	}
	if p.Interval <= 0 {
		p.Interval = 500 * time.Millisecond
	}
	if p.Duration <= 0 {
		p.Duration = 30 * time.Second
	}
	if p.Settle <= 0 {
		// First detection of the last crash needs a probe round plus a
		// suspicion timeout. With thousands of probers the suspicion
		// gathers its K confirmations quickly and the timeout decays to
		// the §V-C floor Min = α·log10(n)·ProbeInterval, so 2.5·Min
		// covers probe, decay and dissemination slack.
		min := core.SuspicionMin(cc.Protocol.Alpha, cc.N, time.Second)
		p.Settle = time.Duration(2.5 * float64(min))
	}

	c, err := NewCluster(cc)
	if err != nil {
		return ChurnResult{}, err
	}
	defer c.Shutdown()
	// Quiesce must cover the join-stagger window plus epidemic
	// convergence of the bootstrap state before churn starts.
	if err := c.Start(Quiesce + bootstrapWindow(cc.N)); err != nil {
		return ChurnResult{}, err
	}

	res := ChurnResult{Params: p, N: cc.N}
	rng := rand.New(rand.NewSource(cc.Seed + 2))

	// pool is the set of members eligible for fail/leave: initially
	// everyone but the join seed (member 0), shrinking as members are
	// churned out and growing as fresh members join and converge (joined
	// members enter the pool after a dissemination delay, so a member is
	// never crashed before the cluster has learned it exists).
	pool := make([]string, 0, cc.N)
	for _, n := range c.Nodes[1:] {
		pool = append(pool, n.Name())
	}
	takeRandom := func() (string, bool) {
		if len(pool) == 0 {
			return "", false
		}
		i := rng.Intn(len(pool))
		name := pool[i]
		pool[i] = pool[len(pool)-1]
		pool = pool[:len(pool)-1]
		return name, true
	}

	failTimes := map[string]time.Time{}
	churnedAt := map[string]time.Time{}
	var joined []string

	seedAddr := c.Nodes[0].Addr()
	churnStart := c.Sched.Now()
	deadline := churnStart.Add(p.Duration)
	for i := 0; c.Sched.Now().Before(deadline); i++ {
		switch i % 4 {
		case 0: // crash failure: the process vanishes mid-protocol
			name, ok := takeRandom()
			if !ok {
				break
			}
			node := c.names[name]
			node.Shutdown()
			c.Net.Detach(name)
			failTimes[name] = c.Sched.Now()
			churnedAt[name] = c.Sched.Now()
			res.Fails++
		case 2: // graceful leave: announce, disseminate briefly, then exit
			name, ok := takeRandom()
			if !ok {
				break
			}
			node := c.names[name]
			node.Leave()
			churnedAt[name] = c.Sched.Now()
			c.Sched.Schedule(2*time.Second, func() {
				node.Shutdown()
				c.Net.Detach(name)
			})
			res.Leaves++
		default: // join: a fresh member enters through the seed
			name := fmt.Sprintf("churn-%03d", res.Joins)
			node, err := c.addNode(name)
			if err != nil {
				return ChurnResult{}, err
			}
			if err := node.Start(); err != nil {
				return ChurnResult{}, fmt.Errorf("experiment: start %s: %w", name, err)
			}
			if err := node.Join(seedAddr); err != nil {
				return ChurnResult{}, fmt.Errorf("experiment: join %s: %w", name, err)
			}
			joined = append(joined, name)
			res.Joins++
			// Once the join has disseminated, the member is fair game
			// for fail/leave like anyone else.
			c.Sched.Schedule(10*time.Second, func() {
				if _, gone := churnedAt[name]; !gone {
					pool = append(pool, name)
				}
			})
		}
		c.Sched.RunFor(p.Interval)
	}
	c.Sched.RunFor(p.Settle)

	// Detection latency of crash failures (first dead event about the
	// crashed member at any other member after the crash) and false
	// positives: a dead event is legitimate only at or after the
	// subject's own crash or leave — a declaration about a member that
	// was churned later (or never) is a false positive.
	firstDead := map[string]time.Time{}
	for _, ev := range c.Events.Events() {
		if ev.Type != metrics.EventDead || ev.Observer == ev.Subject || ev.Time.Before(churnStart) {
			continue
		}
		if at, wasChurned := churnedAt[ev.Subject]; wasChurned && !ev.Time.Before(at) {
			if _, isFail := failTimes[ev.Subject]; isFail {
				if _, seen := firstDead[ev.Subject]; !seen {
					firstDead[ev.Subject] = ev.Time
				}
			}
			continue // legitimate declaration of a crashed/left member
		}
		res.FP++
	}
	var latencies []time.Duration
	for name, t := range firstDead {
		latencies = append(latencies, t.Sub(failTimes[name]))
	}
	res.DetectedFails = len(latencies)
	res.FirstDetect = stats.Summarize(stats.DurationsToSeconds(latencies))

	// Join convergence: sample long-lived survivors and count how many
	// see each joined member alive. (Checking all ~2k observers would be
	// O(n²) map probes for no extra signal.)
	observers := []*core.Node{c.Nodes[0]}
	for _, n := range c.Nodes[1:] {
		if len(observers) >= 16 {
			break
		}
		if _, gone := churnedAt[n.Name()]; !gone {
			observers = append(observers, n)
		}
	}
	for _, name := range joined {
		if _, gone := churnedAt[name]; gone {
			continue
		}
		for _, obs := range observers {
			res.JoinsSampled++
			if m, ok := obs.Member(name); ok && m.State == core.StateAlive {
				res.JoinsSeen++
			}
		}
	}
	return res, nil
}
