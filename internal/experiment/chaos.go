package experiment

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"strings"
	"time"

	"lifeguard/internal/metrics"
	"lifeguard/internal/sim"
	"lifeguard/internal/stats"
)

// The chaos experiment is the repo's reproduction of the paper's
// headline claim: Lifeguard's false-positive reduction comes from
// tolerating *degraded* members — slow processing, stalls, impaired
// links — not just from detecting dead ones. Each run is a matrix of
// fault scenarios × protocol configurations (Table I ablation), all at
// the same seed so cells are directly comparable. Every scenario mixes
// non-fatal faults on a victim set (members that stay alive and must
// NOT be declared dead — every dead event about them is a false
// positive) with a set of real hard crashes (members that MUST be
// detected — scored for latency).

// ChaosParams parameterizes one chaos scenario matrix. Zero-valued
// fields take the documented defaults.
type ChaosParams struct {
	// N is the cluster size. Defaults to 48.
	N int

	// Victims is the number of members afflicted by each scenario's
	// non-fatal fault. Defaults to 6; negative means none (a pure
	// crash-detection run).
	Victims int

	// Crashes is the number of members hard-crashed (inbound dropped,
	// immune to resume) during the fault window. Defaults to 3;
	// negative means none (a pure false-positive run). The crash set is
	// disjoint from the victim set and identical in every cell.
	Crashes int

	// FaultFor is the fault window: scenario faults run over
	// [0, FaultFor) from the post-quiesce start. Defaults to 60 s.
	FaultFor time.Duration

	// CrashAt is the crash offset inside the fault window, so real
	// failures must be detected while the chaos is ongoing. Defaults to
	// FaultFor / 3.
	CrashAt time.Duration

	// Settle is how long the run continues after the fault window, for
	// in-flight suspicions to resolve. Defaults to 45 s.
	Settle time.Duration

	// Degrade is the degraded-member scenario's per-message (and
	// per-timer) processing delay. The default, Base 150 ms + 300 ms
	// jitter, makes victims miss most direct-probe deadlines and build
	// queues under gossip bursts while still (slowly) responding — the
	// paper's slow member, squarely in the regime where SWIM's fixed
	// suspicion timeout false-positives and Lifeguard's does not.
	Degrade sim.DelayDist

	// PauseFor and WakeFor are the pause-flap scenario's duty cycle.
	// Defaults: 12 s paused (long enough to outlive the SWIM suspicion
	// timeout), 6 s awake.
	PauseFor, WakeFor time.Duration

	// Link is the lossy-link scenario's impairment, applied in both
	// directions between each victim and every other member. Default:
	// 25% loss, 15% duplication, 25% reordering.
	Link sim.LinkFault

	// PartitionFraction is the fraction of peers each asym-partition
	// victim cannot send to (it still receives from everyone — the
	// asymmetric half-open failure). Defaults to 0.6.
	PartitionFraction float64

	// Scenarios filters the scenario axis by name. Empty runs all of
	// ChaosScenarioNames.
	Scenarios []string

	// Configs is the protocol-ablation axis. Empty runs Configurations
	// (the paper's Table I: SWIM, LHA-Probe, LHA-Suspicion, Buddy
	// System, Lifeguard).
	Configs []ProtocolConfig
}

// withDefaults resolves zero-valued parameters.
func (p ChaosParams) withDefaults() ChaosParams {
	if p.N == 0 {
		p.N = 48
	}
	switch {
	case p.Victims == 0:
		p.Victims = 6
	case p.Victims < 0:
		p.Victims = 0
	}
	switch {
	case p.Crashes == 0:
		p.Crashes = 3
	case p.Crashes < 0:
		p.Crashes = 0
	}
	if p.FaultFor <= 0 {
		p.FaultFor = 60 * time.Second
	}
	if p.CrashAt <= 0 {
		p.CrashAt = p.FaultFor / 3
	}
	if p.Settle <= 0 {
		p.Settle = 45 * time.Second
	}
	if p.Degrade.IsZero() {
		p.Degrade = sim.DelayDist{Base: 150 * time.Millisecond, Jitter: 300 * time.Millisecond}
	}
	if p.PauseFor <= 0 {
		p.PauseFor = 12 * time.Second
	}
	if p.WakeFor <= 0 {
		p.WakeFor = 6 * time.Second
	}
	if p.Link.Loss == 0 && p.Link.Duplicate == 0 && p.Link.Reorder == 0 {
		p.Link = sim.LinkFault{Loss: 0.25, Duplicate: 0.15, Reorder: 0.25}
	}
	if p.PartitionFraction == 0 {
		p.PartitionFraction = 0.6
	}
	if len(p.Configs) == 0 {
		p.Configs = Configurations
	}
	return p
}

// chaosScenario is one row of the scenario matrix: a named builder
// appending its fault script for the victim set over [0, FaultFor).
type chaosScenario struct {
	name string
	desc string
	// build appends the scenario's transitions to s. victims is the
	// scenario's victim set, peers every member name; rng is a
	// dedicated deterministic stream (same across configs, so every
	// column of a row sees identical faults).
	build func(s *sim.FaultSchedule, victims, peers []string, p ChaosParams, rng *rand.Rand)
}

// degrade slows victims' processing for the whole window.
func buildDegraded(s *sim.FaultSchedule, victims, _ []string, p ChaosParams, _ *rand.Rand) {
	for _, v := range victims {
		s.DegradeNode(0, v, p.Degrade)
		s.RestoreNode(p.FaultFor, v)
	}
}

// pause-flap cycles victims through total stalls with buffered inbound.
func buildPauseFlap(s *sim.FaultSchedule, victims, _ []string, p ChaosParams, _ *rand.Rand) {
	for _, v := range victims {
		for t := time.Duration(0); t < p.FaultFor; t += p.PauseFor + p.WakeFor {
			end := t + p.PauseFor
			if end > p.FaultFor {
				end = p.FaultFor
			}
			s.PauseNode(t, v, sim.PauseBuffer)
			s.ResumeNode(end, v)
		}
	}
}

// asym-partition makes each victim half-open: it cannot send to a
// random PartitionFraction of peers but still receives from everyone.
func buildAsymPartition(s *sim.FaultSchedule, victims, peers []string, p ChaosParams, rng *rand.Rand) {
	for _, v := range victims {
		others := make([]string, 0, len(peers)-1)
		for _, o := range peers {
			if o != v {
				others = append(others, o)
			}
		}
		k := int(p.PartitionFraction * float64(len(others)))
		for _, i := range rng.Perm(len(others))[:k] {
			o := others[i]
			s.FailLink(0, v, o, true)
			s.FailLink(p.FaultFor, v, o, false)
		}
	}
}

// lossy-link impairs both directions between each victim and everyone.
func buildLossyLink(s *sim.FaultSchedule, victims, peers []string, p ChaosParams, _ *rand.Rand) {
	for _, v := range victims {
		for _, o := range peers {
			if o == v {
				continue
			}
			s.ImpairLink(0, v, o, p.Link)
			s.ImpairLink(0, o, v, p.Link)
			s.HealLink(p.FaultFor, v, o)
			s.HealLink(p.FaultFor, o, v)
		}
	}
}

// combined deals the victims round-robin across the three fault
// classes — degraded, flapping, lossy — so every class is present
// whenever there are at least three victims (fewer victims cover the
// classes in that priority order).
func buildCombined(s *sim.FaultSchedule, victims, peers []string, p ChaosParams, rng *rand.Rand) {
	var groups [3][]string
	for i, v := range victims {
		groups[i%3] = append(groups[i%3], v)
	}
	buildDegraded(s, groups[0], peers, p, rng)
	buildPauseFlap(s, groups[1], peers, p, rng)
	buildLossyLink(s, groups[2], peers, p, rng)
}

// chaosScenarios is the scenario matrix, in report order.
var chaosScenarios = []chaosScenario{
	{name: "degraded", desc: "victims' message handling and timers slowed past the service-rate cliff", build: buildDegraded},
	{name: "pause-flap", desc: "victims cycle total stalls (buffered inbound) and wakes", build: buildPauseFlap},
	{name: "asym-partition", desc: "victims receive from everyone but cannot send to a fraction of peers", build: buildAsymPartition},
	{name: "lossy-link", desc: "victims' links suffer loss, duplication and reordering", build: buildLossyLink},
	{name: "combined", desc: "victims dealt across degraded, flapping and lossy at once", build: buildCombined},
}

// ChaosScenarioNames lists the chaos scenarios in matrix order.
func ChaosScenarioNames() []string {
	names := make([]string, len(chaosScenarios))
	for i, sc := range chaosScenarios {
		names[i] = sc.name
	}
	return names
}

// ChaosCellResult is one (scenario, configuration) cell of the chaos
// matrix. It contains no pointers, slices or maps, so whole-struct
// equality is the determinism check.
type ChaosCellResult struct {
	// Scenario and Config identify the cell.
	Scenario, Config string

	// Victims and Crashes are the fault-set sizes.
	Victims, Crashes int

	// FP counts false positives: dead events about members that were
	// alive at the time — subjects outside the crash set (victims
	// included: they are impaired, not dead), plus crash-set members
	// declared dead before their crash actually landed. FPHealthy
	// counts those raised at observers outside the crash set.
	FP, FPHealthy int

	// VictimDeaths is the slice of FP whose subject is a victim — an
	// impaired-but-alive member wrongly declared dead, the paper's
	// degraded-member false positive. FP − VictimDeaths is collateral
	// damage on completely healthy members.
	VictimDeaths int

	// CrashesDetected counts crashed members whose failure was detected
	// somewhere; CrashDetect summarizes crash-to-first-detection
	// latency in seconds.
	CrashesDetected int
	CrashDetect     stats.Summary

	// Suspicions counts suspicion episodes about non-crashed members
	// (per observer–subject pair); Refuted counts those cleared by a
	// refutation, and RefuteLatency summarizes suspect-to-alive latency
	// in seconds.
	Suspicions, Refuted int
	RefuteLatency       stats.Summary

	// MsgsSent and BytesSent total transport load over the run.
	MsgsSent, BytesSent int64

	// Duplicated, Reordered and FaultDrops total the fault engine's
	// packet interventions (duplicate deliveries, reorder hold-backs,
	// fault-injected drops).
	Duplicated, Reordered, FaultDrops int64

	// EventDigest is an FNV-64a digest of the full membership event
	// log — the byte-identical-replay fingerprint for this cell.
	EventDigest string
}

// ChaosResult holds one chaos matrix run.
type ChaosResult struct {
	// Params echoes the resolved parameters.
	Params ChaosParams

	// Cells holds one result per (scenario, configuration), scenario-
	// major in ChaosScenarioNames × Params.Configs order.
	Cells []ChaosCellResult
}

// chaosCast deterministically selects the victim and crash sets for a
// run: disjoint, excluding member 0 (the join seed), identical across
// every cell of the matrix.
func chaosCast(p ChaosParams, seed int64) (victims, crashed []string) {
	rng := rand.New(rand.NewSource(seed*31 + 17))
	idx := rng.Perm(p.N - 1)
	take := func(k int) []string {
		if k > len(idx) {
			k = len(idx)
		}
		names := make([]string, 0, k)
		for _, i := range idx[:k] {
			names = append(names, NodeName(i+1))
		}
		idx = idx[k:]
		return names
	}
	return take(p.Victims), take(p.Crashes)
}

// findChaosScenario resolves a scenario by name.
func findChaosScenario(name string) (chaosScenario, int, error) {
	for i, sc := range chaosScenarios {
		if sc.name == name {
			return sc, i, nil
		}
	}
	return chaosScenario{}, 0, fmt.Errorf("experiment: unknown chaos scenario %q (want one of %s)",
		name, strings.Join(ChaosScenarioNames(), "|"))
}

// RunChaosCell executes one (scenario, configuration) cell: quiesce,
// install the scenario's fault schedule plus the crash set, run out the
// fault window and settle phase, and score. It returns the scored cell
// and the full membership event log (the raw material for invariant
// harnesses). cc.N is taken from the params and must be left zero.
func RunChaosCell(cc ClusterConfig, scenario string, p ChaosParams) (ChaosCellResult, []metrics.Event, error) {
	p = p.withDefaults()
	if p.Victims+p.Crashes > p.N-1 {
		return ChaosCellResult{}, nil, fmt.Errorf(
			"experiment: chaos fault sets need %d members (%d victims + %d crashes) but only %d are eligible (N=%d minus the join seed)",
			p.Victims+p.Crashes, p.Victims, p.Crashes, p.N-1, p.N)
	}
	if p.PartitionFraction < 0 || p.PartitionFraction > 1 {
		return ChaosCellResult{}, nil, fmt.Errorf(
			"experiment: PartitionFraction %g outside [0, 1]", p.PartitionFraction)
	}
	sc, scIndex, err := findChaosScenario(scenario)
	if err != nil {
		return ChaosCellResult{}, nil, err
	}
	cc.N = p.N
	c, err := NewCluster(cc)
	if err != nil {
		return ChaosCellResult{}, nil, err
	}
	defer c.Shutdown()
	if err := c.Start(Quiesce); err != nil {
		return ChaosCellResult{}, nil, err
	}

	victims, crashed := chaosCast(p, cc.Seed)
	sched := &sim.FaultSchedule{}
	// The schedule RNG depends on seed and scenario, never on the
	// configuration, so every column of a matrix row sees identical
	// faults.
	rng := rand.New(rand.NewSource(cc.Seed*104729 + int64(scIndex)))
	sc.build(sched, victims, c.allNames(), p, rng)
	for _, name := range crashed {
		sched.CrashNode(p.CrashAt, name)
	}

	faultStart := c.Sched.Now()
	crashStart := faultStart.Add(p.CrashAt)
	c.Net.InstallFaults(sched)
	c.Sched.RunFor(p.FaultFor + p.Settle)

	events := c.Events.Events()
	res := ChaosCellResult{
		Scenario: sc.name,
		Config:   cc.Protocol.Name,
		Victims:  len(victims),
		Crashes:  len(crashed),
	}
	// False-positive classification is time-aware: a crash-set member
	// is a legitimate detection subject only from crashStart on; a dead
	// event about it before its crash landed is a false positive like
	// any other (countFalsePositives cannot express this — the WAN and
	// interval experiments have no gap between FP window and failure
	// instant, the chaos CrashAt offset does).
	crashedSet := toSet(crashed)
	victimSet := toSet(victims)
	for _, ev := range events {
		if ev.Type != metrics.EventDead || ev.Time.Before(faultStart) {
			continue
		}
		if _, bad := crashedSet[ev.Subject]; bad && !ev.Time.Before(crashStart) {
			continue // true positive
		}
		res.FP++
		if _, obsBad := crashedSet[ev.Observer]; !obsBad {
			res.FPHealthy++
		}
		if _, isVictim := victimSet[ev.Subject]; isVictim {
			res.VictimDeaths++
		}
	}
	firstBy := firstDetectionByName(events, crashed, crashStart)
	res.CrashesDetected = len(firstBy)
	var detect []float64
	for _, d := range firstBy {
		detect = append(detect, d.Seconds())
	}
	res.CrashDetect = stats.Summarize(detect)
	var refLat []float64
	res.Suspicions, res.Refuted, refLat = refutationLatencies(events, crashedSet, faultStart)
	res.RefuteLatency = stats.Summarize(refLat)
	total := c.Net.TotalStats()
	res.MsgsSent = total.MsgsSent
	res.BytesSent = total.BytesSent
	res.Duplicated = total.Duplicated
	res.Reordered = total.Reordered
	res.FaultDrops = total.DropsFault
	res.EventDigest = eventDigest(events)
	return res, events, nil
}

// RunChaos executes the full scenario × configuration matrix with one
// shared seed. cc.Protocol is overridden per cell; cc.N must be left
// zero (the params size the cluster).
func RunChaos(cc ClusterConfig, p ChaosParams) (ChaosResult, error) {
	// Cells receive the raw params: withDefaults is not idempotent (an
	// explicit-none sentinel resolves to 0, which a second pass would
	// re-default), so it must run exactly once per cell.
	resolved := p.withDefaults()
	scenarios := resolved.Scenarios
	if len(scenarios) == 0 {
		scenarios = ChaosScenarioNames()
	}
	res := ChaosResult{Params: resolved}
	for _, name := range scenarios {
		for _, proto := range resolved.Configs {
			cellCC := cc
			cellCC.Protocol = proto
			cell, _, err := RunChaosCell(cellCC, name, p)
			if err != nil {
				return res, err
			}
			res.Cells = append(res.Cells, cell)
		}
	}
	return res, nil
}

// refutationLatencies pairs suspect events with the alive events that
// refute them, per observer–subject pair, for subjects outside the
// crash set. A suspicion resolved by a dead event (or never resolved)
// counts as un-refuted.
func refutationLatencies(events []metrics.Event, crashed map[string]struct{}, start time.Time) (suspicions, refuted int, latencies []float64) {
	open := make(map[string]time.Time)
	for _, ev := range events {
		if ev.Time.Before(start) || ev.Observer == ev.Subject {
			continue
		}
		if _, bad := crashed[ev.Subject]; bad {
			continue
		}
		key := ev.Observer + "|" + ev.Subject
		switch ev.Type {
		case metrics.EventSuspect:
			if _, isOpen := open[key]; !isOpen {
				open[key] = ev.Time
				suspicions++
			}
		case metrics.EventAlive:
			if t0, isOpen := open[key]; isOpen {
				delete(open, key)
				refuted++
				latencies = append(latencies, ev.Time.Sub(t0).Seconds())
			}
		case metrics.EventDead:
			delete(open, key)
		}
	}
	return suspicions, refuted, latencies
}

// eventDigest fingerprints a membership event log. Two runs with
// byte-identical protocol behaviour produce equal digests.
func eventDigest(events []metrics.Event) string {
	h := fnv.New64a()
	for _, ev := range events {
		fmt.Fprintf(h, "%d|%s|%s|%d|%d\n",
			ev.Time.UnixNano(), ev.Observer, ev.Subject, ev.Type, ev.Incarnation)
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// FormatChaos renders a chaos matrix as the ablation table: one row per
// cell with false positives, crash detection and refutation behaviour.
func FormatChaos(r ChaosResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Chaos matrix: N=%d, %d victims, %d crashes, fault window %v (crashes at +%v)\n",
		r.Params.N, r.Params.Victims, r.Params.Crashes, r.Params.FaultFor, r.Params.CrashAt)
	fmt.Fprintf(&b, "%-14s %-14s %4s %4s %6s %7s %10s %6s %8s %10s %6s %6s\n",
		"Scenario", "Config", "FP", "FP-", "VicDie", "CrashOK", "MedDet(s)", "Susp", "Refuted", "MedRef(s)", "Dup", "Reord")
	for _, cell := range r.Cells {
		fmt.Fprintf(&b, "%-14s %-14s %4d %4d %6d %4d/%-2d %10.2f %6d %8d %10.2f %6d %6d\n",
			cell.Scenario, cell.Config, cell.FP, cell.FPHealthy, cell.VictimDeaths,
			cell.CrashesDetected, cell.Crashes, cell.CrashDetect.Median,
			cell.Suspicions, cell.Refuted, cell.RefuteLatency.Median,
			cell.Duplicated, cell.Reordered)
	}
	return b.String()
}
