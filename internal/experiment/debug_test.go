package experiment

import (
	"os"
	"testing"
	"time"

	"lifeguard/internal/metrics"
)

// TestDebugIntervalTrace is a development aid: it dumps the event stream
// of a small interval run so the false-positive mechanism can be
// inspected. It makes no assertions and is gated behind
// LIFEGUARD_DEBUG_TRACE=1 so it stays out of normal test output; run it
// with -v to see the trace.
func TestDebugIntervalTrace(t *testing.T) {
	if os.Getenv("LIFEGUARD_DEBUG_TRACE") == "" {
		t.Skip("debug trace; set LIFEGUARD_DEBUG_TRACE=1 to run")
	}
	cc := ClusterConfig{N: 32, Seed: 42, Protocol: ConfigSWIM}
	c, err := NewCluster(cc)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	if err := c.Start(Quiesce); err != nil {
		t.Fatal(err)
	}

	anomalous := c.PickAnomalySet(2, cc.Seed+1)
	t.Logf("anomalous: %v", anomalous)

	d, i := 8192*time.Millisecond, 64*time.Millisecond
	for cycle := 0; cycle < 6; cycle++ {
		c.SetAnomalous(anomalous, true)
		c.Sched.RunFor(d)
		c.SetAnomalous(anomalous, false)
		c.Sched.RunFor(i)
	}
	c.Sched.RunFor(10 * time.Second)

	anomalySet := toSet(anomalous)
	for _, ev := range c.Events.Events() {
		if ev.Type == metrics.EventJoin && ev.Time.Before(time.Unix(14, 0)) {
			continue // initial convergence noise
		}
		_, obsBad := anomalySet[ev.Observer]
		_, subBad := anomalySet[ev.Subject]
		t.Logf("%8.3fs %-8s obs=%s(anom=%v) subj=%s(anom=%v) inc=%d",
			ev.Time.Sub(time.Unix(0, 0)).Seconds(), ev.Type, ev.Observer, obsBad, ev.Subject, subBad, ev.Incarnation)
	}
}
