package experiment

import (
	"fmt"
	"sync"
	"time"
)

// This file is the scenario harness: a registry of named experiment
// scenarios, a shared plan/execute/report lifecycle, and a
// deterministic parallel executor. Every experiment driver in this
// package — the paper's sweeps as well as the churn, partition, WAN,
// chaos and rolling-restart scenarios — registers itself here, so
// cmd/lifebench and library users run them all through one door.
//
// Determinism contract: a scenario's Plan must enumerate independent
// cells whose seeds derive from the base seed and the cell's canonical
// index, never from execution order or shared mutable state. The
// executor may run cells concurrently in any order, but it hands Report
// the outputs in canonical (Plan) order, so the records produced at
// -parallel N are byte-identical to a serial run. The only
// post-hoc fields are the wall-clock duration and cell count stamped by
// RunScenario, which measure the harness, not the simulation.

// Record is one machine-readable result row, the unified output format
// of every scenario. cmd/lifebench emits records as a JSON array under
// -json, the stable interface for tracking bench trajectories across
// commits.
type Record struct {
	// Experiment names the table/figure/scenario ("table4", "wan",
	// "rolling-restart", …).
	Experiment string `json:"experiment"`

	// Config is the protocol configuration the row describes, where
	// applicable ("SWIM", "Lifeguard", …).
	Config string `json:"config,omitempty"`

	// Scale and Seed identify the run for reproduction. RunScenario
	// stamps both from its options.
	Scale string `json:"scale"`
	Seed  int64  `json:"seed"`

	// Wall is the wall-clock duration, in seconds, of the scenario run
	// that produced this record — the start of the perf trajectory a
	// BENCH_*.json series tracks. All records of one scenario invocation
	// share the value. It measures the harness on real hardware and is
	// therefore the single nondeterministic field: determinism checks
	// zero it before comparing records.
	Wall float64 `json:"wall_s"`

	// Cells is the number of independent cells the scenario executed to
	// produce its records (shared by all records of the invocation).
	Cells int `json:"cells"`

	// Params holds experiment-specific inputs (α/β, stressed count,
	// zone sizes, …).
	Params map[string]any `json:"params,omitempty"`

	// Metrics holds the row's numeric results, keyed by metric name.
	Metrics map[string]float64 `json:"metrics"`
}

// Section is one human-readable report block of a scenario: a stable
// key (used by cmd/lifebench's table/figure aliases to select views), a
// display title, and the formatted body.
type Section struct {
	// Key identifies the section ("table4", "fig2", "chaos", …).
	Key string

	// Title is the display heading.
	Title string

	// Body is the formatted table or figure text.
	Body string
}

// ScenarioResult is a scenario's merged output: machine-readable
// records plus human-readable report sections.
type ScenarioResult struct {
	// Records holds one entry per result row, in canonical order.
	Records []Record

	// Sections holds the report blocks, in display order.
	Sections []Section
}

// Cell is one independent unit of scenario work: a fully seeded
// simulation run. Cells share nothing — each builds its own scheduler,
// network and cluster — so the executor may run any subset
// concurrently.
type Cell struct {
	// Label names the cell for progress and error reporting.
	Label string

	// Run executes the cell and returns its scenario-specific output.
	Run func() (any, error)
}

// RunOptions parameterizes one scenario run.
type RunOptions struct {
	// Scale selects the sweep scale (grids, cluster sizes, durations).
	Scale Scale

	// Seed is the base RNG seed; every cell derives its own seed from
	// it and the cell's canonical index.
	Seed int64

	// Parallel is the maximum number of cells executed concurrently.
	// Values below 2 run serially. Output is identical at any value.
	Parallel int

	// Progress receives completion callbacks (cells done, cells total).
	// It may be nil. "done" counts completed cells, not canonical
	// positions, and successive calls carry strictly increasing done
	// values even under parallel execution (intermediate values may be
	// skipped; the final count is always delivered).
	Progress Progress

	// WANMembersPerZone overrides the scale's WAN zone size (0 keeps
	// the scale default).
	WANMembersPerZone int

	// WANFailPerZone is the number of members crashed per zone in the
	// WAN detection phase. Zero means the default (3); negative means
	// none.
	WANFailPerZone int

	// ChaosN overrides the scale's chaos cluster size (0 keeps the
	// scale default).
	ChaosN int

	// ChaosVictims and ChaosCrashes size the chaos fault sets following
	// the ChaosParams convention: zero means the documented defaults,
	// negative means none.
	ChaosVictims, ChaosCrashes int

	// RestartN overrides the scale's rolling-restart cluster size (0
	// keeps the scale default).
	RestartN int
}

// Scenario is one registered experiment: it plans a set of independent
// seeded cells and merges their outputs into records and report
// sections. Implementations must keep Plan and Report pure with
// respect to execution order — see the determinism contract above.
type Scenario interface {
	// Name is the registry key ("chaos", "rolling-restart", …).
	Name() string

	// Description is a one-line summary for listings.
	Description() string

	// Plan enumerates the run's independent cells in canonical order.
	Plan(opt RunOptions) ([]Cell, error)

	// Report merges the cell outputs — provided in canonical order —
	// into the final records and sections.
	Report(opt RunOptions, outs []any) (ScenarioResult, error)
}

// scenario is the registry's concrete Scenario: a named plan/report
// function pair.
type scenario struct {
	name, desc string
	plan       func(opt RunOptions) ([]Cell, error)
	report     func(opt RunOptions, outs []any) (ScenarioResult, error)
}

func (s *scenario) Name() string        { return s.name }
func (s *scenario) Description() string { return s.desc }

func (s *scenario) Plan(opt RunOptions) ([]Cell, error) { return s.plan(opt) }

func (s *scenario) Report(opt RunOptions, outs []any) (ScenarioResult, error) {
	return s.report(opt, outs)
}

// The scenario registry. Registration order is run order for "all".
var (
	registryMu sync.RWMutex
	registry   []Scenario
	byName     = make(map[string]Scenario)
)

// Register adds a scenario to the registry. It panics on a duplicate
// name — registration happens at init time, where a duplicate is a
// programming error.
func Register(s Scenario) {
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := byName[s.Name()]; dup {
		panic(fmt.Sprintf("experiment: duplicate scenario %q", s.Name()))
	}
	registry = append(registry, s)
	byName[s.Name()] = s
}

// Scenarios returns the registered scenarios in registration order —
// the canonical run order of "all".
func Scenarios() []Scenario {
	registryMu.RLock()
	defer registryMu.RUnlock()
	out := make([]Scenario, len(registry))
	copy(out, registry)
	return out
}

// ScenarioNames returns the registered scenario names in registration
// order.
func ScenarioNames() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	names := make([]string, len(registry))
	for i, s := range registry {
		names[i] = s.Name()
	}
	return names
}

// LookupScenario resolves a registered scenario by name.
func LookupScenario(name string) (Scenario, error) {
	registryMu.RLock()
	defer registryMu.RUnlock()
	s, ok := byName[name]
	if !ok {
		return nil, fmt.Errorf("experiment: unknown scenario %q", name)
	}
	return s, nil
}

// RunScenario plans, executes and reports one registered scenario. Up
// to opt.Parallel cells run concurrently; the records are identical at
// any parallelism (see the determinism contract). Every record is
// stamped with the scale name, seed, cell count and the run's
// wall-clock duration.
func RunScenario(name string, opt RunOptions) (ScenarioResult, error) {
	results, err := RunScenarios([]string{name}, opt)
	if err != nil {
		return ScenarioResult{}, err
	}
	return results[0].Result, nil
}

// NamedResult is one scenario's output from a RunScenarios batch: the
// scenario name, its merged result, and the wall-clock span (seconds)
// from its first cell starting to its last cell finishing — the value
// stamped into its records' wall_s field.
type NamedResult struct {
	Name   string
	Result ScenarioResult
	Wall   float64
	Cells  int
}

// RunScenarios plans every named scenario up front, concatenates their
// cells into one global work list, and executes that list through a
// single worker pool of up to opt.Parallel workers. A short scenario's
// tail no longer idles workers while a long one runs — the pool drains
// cells across scenario boundaries. Each cell keeps its canonical index
// within its scenario, and each scenario's Report receives its outputs
// in canonical order, so the records are byte-identical to running the
// scenarios one at a time, at any parallelism (wall_s aside).
func RunScenarios(names []string, opt RunOptions) ([]NamedResult, error) {
	type planned struct {
		s     Scenario
		cells []Cell
		first int // index of the scenario's first cell in the global list
	}
	plans := make([]planned, len(names))
	var all []Cell
	for i, name := range names {
		s, err := LookupScenario(name)
		if err != nil {
			return nil, err
		}
		cells, err := s.Plan(opt)
		if err != nil {
			return nil, fmt.Errorf("experiment: plan %s: %w", name, err)
		}
		plans[i] = planned{s: s, cells: cells, first: len(all)}
		all = append(all, cells...)
	}

	// Wrap every cell to record its scenario's wall span: first start to
	// last finish, under one clock mutex (cheap relative to a cell run).
	var (
		wallMu sync.Mutex
		starts = make([]time.Time, len(names))
		ends   = make([]time.Time, len(names))
	)
	wrapped := make([]Cell, len(all))
	for si := range plans {
		for ci, cell := range plans[si].cells {
			si, run := si, cell.Run
			wrapped[plans[si].first+ci] = Cell{
				Label: cell.Label,
				Run: func() (any, error) {
					wallMu.Lock()
					if starts[si].IsZero() {
						starts[si] = time.Now()
					}
					wallMu.Unlock()
					out, err := run()
					wallMu.Lock()
					ends[si] = time.Now()
					wallMu.Unlock()
					return out, err
				},
			}
		}
	}

	outs, err := runCells(wrapped, opt.Parallel, opt.Progress)
	if err != nil {
		return nil, fmt.Errorf("experiment: %w", err)
	}

	results := make([]NamedResult, len(names))
	for i, p := range plans {
		res, err := p.s.Report(opt, outs[p.first:p.first+len(p.cells)])
		if err != nil {
			return nil, fmt.Errorf("experiment: report %s: %w", names[i], err)
		}
		wall := 0.0
		if !starts[i].IsZero() {
			wall = ends[i].Sub(starts[i]).Seconds()
		}
		for r := range res.Records {
			rec := &res.Records[r]
			rec.Scale = opt.Scale.Name
			rec.Seed = opt.Seed
			rec.Wall = wall
			rec.Cells = len(p.cells)
		}
		results[i] = NamedResult{Name: names[i], Result: res, Wall: wall, Cells: len(p.cells)}
	}
	return results, nil
}

// runCells executes cells with up to parallel workers and returns their
// outputs in canonical (input) order regardless of completion order.
// The first cell error cancels the remaining unstarted cells.
func runCells(cells []Cell, parallel int, progress Progress) ([]any, error) {
	outs := make([]any, len(cells))
	if parallel > len(cells) {
		parallel = len(cells)
	}
	if parallel < 2 {
		for i, cell := range cells {
			out, err := cell.Run()
			if err != nil {
				return nil, fmt.Errorf("cell %s: %w", cell.Label, err)
			}
			outs[i] = out
			if progress != nil {
				progress(i+1, len(cells))
			}
		}
		return outs, nil
	}

	var (
		mu       sync.Mutex
		next     int
		done     int
		firstErr error
		wg       sync.WaitGroup

		// progressMu serializes the user's progress callback without
		// holding mu, so a slow callback never blocks workers claiming
		// cells. reported tracks the highest done value already delivered:
		// two workers racing from finish to the callback can arrive out of
		// order, and the stale one must be dropped, not reported — the
		// sequence the callback sees is strictly increasing.
		progressMu sync.Mutex
		reported   int
	)
	claim := func() (int, bool) {
		mu.Lock()
		defer mu.Unlock()
		if firstErr != nil || next >= len(cells) {
			return 0, false
		}
		i := next
		next++
		return i, true
	}
	finish := func(i int, out any, err error) {
		mu.Lock()
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("cell %s: %w", cells[i].Label, err)
			}
			mu.Unlock()
			return
		}
		outs[i] = out
		done++
		d := done
		mu.Unlock()
		if progress != nil {
			progressMu.Lock()
			if d > reported {
				reported = d
				progress(d, len(cells))
			}
			progressMu.Unlock()
		}
	}
	for w := 0; w < parallel; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i, ok := claim()
				if !ok {
					return
				}
				out, err := cells[i].Run()
				finish(i, out, err)
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return outs, nil
}
