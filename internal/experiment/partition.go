package experiment

import (
	"time"

	"lifeguard/internal/core"
)

// This file implements the partition/heal experiment behind the paper's
// robustness claim (§II): "Even fully partitioned sub-groups can
// continue to operate, and will automatically merge once connectivity is
// re-established." It is not one of the paper's measured tables, but it
// exercises the anti-entropy and refutation machinery the tables depend
// on, so it ships with its own harness and bench.

// Partition splits the cluster into two halves by failing every
// cross-half link in both directions. sizeA members (from index 0) form
// side A; the rest form side B.
func (c *Cluster) Partition(sizeA int) {
	c.setPartition(sizeA, true)
}

// Heal removes a partition created by Partition.
func (c *Cluster) Heal(sizeA int) {
	c.setPartition(sizeA, false)
}

func (c *Cluster) setPartition(sizeA int, failed bool) {
	for i := 0; i < sizeA; i++ {
		for j := sizeA; j < len(c.Nodes); j++ {
			a, b := NodeName(i), NodeName(j)
			c.Net.FailLink(a, b, failed)
			c.Net.FailLink(b, a, failed)
		}
	}
}

// PartitionParams parameterizes one partition/heal experiment.
type PartitionParams struct {
	// SizeA is the size of the first partition (the side holding the
	// join seed).
	SizeA int

	// Duration is how long the partition lasts.
	Duration time.Duration

	// HealBudget is how long after healing the cluster gets to fully
	// re-converge.
	HealBudget time.Duration
}

// PartitionResult reports how the group behaved across a partition.
type PartitionResult struct {
	Params PartitionParams

	// SideAConverged and SideBConverged report whether each side
	// settled on exactly its own membership (everyone else dead) while
	// partitioned.
	SideAConverged, SideBConverged bool

	// CrossDeclaredDead counts cross-partition dead declarations during
	// the split (expected: each side declares the other dead).
	CrossDeclaredDead int

	// Remerged reports whether every member saw every member alive
	// again within the heal budget.
	Remerged bool

	// RemergeTime is the time from healing until full re-convergence
	// (valid only when Remerged).
	RemergeTime time.Duration
}

// RunPartition executes one partition/heal experiment.
func RunPartition(cc ClusterConfig, p PartitionParams) (PartitionResult, error) {
	if cc.N == 0 {
		cc.N = 32
	}
	if p.SizeA <= 0 || p.SizeA >= cc.N {
		p.SizeA = cc.N / 2
	}
	if p.Duration <= 0 {
		p.Duration = time.Minute
	}
	if p.HealBudget <= 0 {
		p.HealBudget = 2 * time.Minute
	}

	c, err := NewCluster(cc)
	if err != nil {
		return PartitionResult{}, err
	}
	defer c.Shutdown()
	if err := c.Start(Quiesce); err != nil {
		return PartitionResult{}, err
	}

	res := PartitionResult{Params: p}
	c.Partition(p.SizeA)
	c.Sched.RunFor(p.Duration)

	inA := func(i int) bool { return i < p.SizeA }
	sideSettled := func(a bool) bool {
		for i, n := range c.Nodes {
			if inA(i) != a {
				continue
			}
			for j := range c.Nodes {
				m, ok := n.Member(NodeName(j))
				if !ok {
					return false
				}
				sameSide := inA(j) == a
				if sameSide && m.State != core.StateAlive {
					return false
				}
				if !sameSide && m.State == core.StateAlive {
					return false
				}
			}
		}
		return true
	}
	res.SideAConverged = sideSettled(true)
	res.SideBConverged = sideSettled(false)

	res.CrossDeclaredDead = c.countCrossDead(p.SizeA)

	c.Heal(p.SizeA)
	healStart := c.Sched.Now()
	step := 500 * time.Millisecond
	for waited := time.Duration(0); waited < p.HealBudget; waited += step {
		c.Sched.RunFor(step)
		if c.Converged() {
			res.Remerged = true
			res.RemergeTime = c.Sched.Now().Sub(healStart)
			break
		}
	}
	return res, nil
}

// countCrossDead counts members of each side currently holding the other
// side dead (a saturated split sees sizeA·(n−sizeA)·2 entries).
func (c *Cluster) countCrossDead(sizeA int) int {
	count := 0
	for i, n := range c.Nodes {
		for j := range c.Nodes {
			if (i < sizeA) == (j < sizeA) {
				continue
			}
			if m, ok := n.Member(NodeName(j)); ok &&
				(m.State == core.StateDead || m.State == core.StateSuspect) {
				count++
			}
		}
	}
	return count
}
