package experiment

import (
	"testing"
	"time"
)

func TestIntervalSWIMProducesFalsePositives(t *testing.T) {
	if testing.Short() {
		t.Skip("full interval run")
	}
	res, err := RunInterval(
		ClusterConfig{N: 64, Seed: 11, Protocol: ConfigSWIM},
		IntervalParams{C: 8, D: 16384 * time.Millisecond, I: 64 * time.Millisecond},
	)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("SWIM: FP=%d FP-=%d TP=%d msgs=%d bytes=%d cycles=%d",
		res.FP, res.FPHealthy, res.TruePositives, res.MsgsSent, res.BytesSent, res.Cycles)
	if res.FP == 0 {
		t.Error("SWIM produced zero false positives under heavy intermittent anomalies; expected many (paper §V-F1)")
	}
}

func TestIntervalLifeguardSuppressesFalsePositives(t *testing.T) {
	if testing.Short() {
		t.Skip("full interval run")
	}
	swim, err := RunInterval(
		ClusterConfig{N: 64, Seed: 11, Protocol: ConfigSWIM},
		IntervalParams{C: 8, D: 16384 * time.Millisecond, I: 64 * time.Millisecond},
	)
	if err != nil {
		t.Fatal(err)
	}
	lg, err := RunInterval(
		ClusterConfig{N: 64, Seed: 11, Protocol: ConfigLifeguard},
		IntervalParams{C: 8, D: 16384 * time.Millisecond, I: 64 * time.Millisecond},
	)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("SWIM FP=%d FP-=%d | Lifeguard FP=%d FP-=%d", swim.FP, swim.FPHealthy, lg.FP, lg.FPHealthy)
	if lg.FP >= swim.FP {
		t.Errorf("Lifeguard FP (%d) not below SWIM FP (%d)", lg.FP, swim.FP)
	}
}

func TestThresholdDetectsLongAnomaly(t *testing.T) {
	if testing.Short() {
		t.Skip("full threshold run")
	}
	res, err := RunThreshold(
		ClusterConfig{N: 64, Seed: 7, Protocol: ConfigSWIM},
		ThresholdParams{C: 4, D: 32768 * time.Millisecond},
	)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("threshold: detected=%d undetected=%d first=%v full=%v",
		res.Detected, res.Undetected, res.FirstDetect, res.FullDissem)
	if res.Detected != 4 {
		t.Errorf("detected %d of 4 long anomalies", res.Detected)
	}
	if len(res.FullDissem) == 0 {
		t.Error("no full dissemination samples")
	}
}

func TestThresholdLifeguardStillDetectsTrueFailures(t *testing.T) {
	if testing.Short() {
		t.Skip("full threshold run")
	}
	// Lifeguard's suspicion timeout starts at β× the SWIM value, but a
	// genuinely failed member accumulates independent accusations from
	// the healthy majority, driving the timeout back to Min: detection
	// latency must stay within a couple of seconds of SWIM's (paper
	// Table V).
	swim, err := RunThreshold(
		ClusterConfig{N: 64, Seed: 17, Protocol: ConfigSWIM},
		ThresholdParams{C: 4, D: 32768 * time.Millisecond},
	)
	if err != nil {
		t.Fatal(err)
	}
	lg, err := RunThreshold(
		ClusterConfig{N: 64, Seed: 17, Protocol: ConfigLifeguard},
		ThresholdParams{C: 4, D: 32768 * time.Millisecond},
	)
	if err != nil {
		t.Fatal(err)
	}
	if lg.Detected != 4 {
		t.Fatalf("Lifeguard detected %d of 4 true failures", lg.Detected)
	}
	mean := func(ds []time.Duration) time.Duration {
		var sum time.Duration
		for _, d := range ds {
			sum += d
		}
		return sum / time.Duration(len(ds))
	}
	sm, lm := mean(swim.FirstDetect), mean(lg.FirstDetect)
	t.Logf("mean first detect: SWIM=%v Lifeguard=%v", sm, lm)
	if lm > sm+5*time.Second {
		t.Errorf("Lifeguard detection %v much slower than SWIM %v", lm, sm)
	}
}
