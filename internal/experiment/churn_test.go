package experiment

import (
	"testing"
	"time"
)

// TestChurnSmall smoke-tests the churn machinery at a size every test
// run can afford: actions execute, crashes are detected, and joins
// become visible.
func TestChurnSmall(t *testing.T) {
	res, err := RunChurn(
		ClusterConfig{N: 24, Seed: 3, Protocol: ConfigLifeguard},
		ChurnParams{Interval: time.Second, Duration: 8 * time.Second},
	)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("churn small: fails=%d leaves=%d joins=%d detected=%d fp=%d joinsSeen=%d/%d med=%.2fs",
		res.Fails, res.Leaves, res.Joins, res.DetectedFails, res.FP,
		res.JoinsSeen, res.JoinsSampled, res.FirstDetect.Median)
	if res.Fails == 0 || res.Leaves == 0 || res.Joins == 0 {
		t.Fatalf("churn schedule did not execute all action kinds: %+v", res)
	}
	if res.DetectedFails != res.Fails {
		t.Errorf("detected %d of %d crashed members", res.DetectedFails, res.Fails)
	}
	if res.JoinsSampled > 0 && res.JoinsSeen < res.JoinsSampled*9/10 {
		t.Errorf("joins seen %d/%d, want ≥90%%", res.JoinsSeen, res.JoinsSampled)
	}
}

// TestChurnPoolExhaustion drives far more fail/leave actions than the
// initial membership can supply: the pool must refill from converged
// joins and, if it still runs dry, skip the action rather than panic.
func TestChurnPoolExhaustion(t *testing.T) {
	res, err := RunChurn(
		ClusterConfig{N: 8, Seed: 5, Protocol: ConfigLifeguard},
		ChurnParams{Interval: 200 * time.Millisecond, Duration: 10 * time.Second, Settle: 5 * time.Second},
	)
	if err != nil {
		t.Fatal(err)
	}
	if res.Fails+res.Leaves == 0 || res.Joins == 0 {
		t.Fatalf("degenerate churn run: %+v", res)
	}
}

// TestChurnLargeCluster runs the paper-scale scenario: a ≥2k-member
// cluster under continuous join/leave/fail churn. The assertions pin the
// protocol behaviors the paper's evaluation establishes and that must
// survive at scale:
//
//   - every crashed member is detected (SWIM completeness, §III-A);
//   - median first-detection latency sits between one probe interval and
//     the suspicion timeout — at n≈2k the timeout floor is
//     α·log10(n)·ProbeInterval ≈ 16.5 s (§V-C), so detections past ~2×
//     that indicate the probe schedule broke down;
//   - false positives at members that neither crashed nor left stay
//     rare relative to the number of true failures (the paper's FP
//     metric, §V-F1) — churn itself must not destabilize the detector;
//   - joining members converge into the views of established members.
func TestChurnLargeCluster(t *testing.T) {
	if testing.Short() {
		t.Skip("large-cluster churn run")
	}
	res, err := RunChurn(
		ClusterConfig{N: DefaultChurnN, Seed: 1, Protocol: ConfigLifeguard},
		ChurnParams{},
	)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("churn %d: fails=%d leaves=%d joins=%d detected=%d fp=%d joinsSeen=%d/%d med=%.2fs p99=%.2fs",
		res.N, res.Fails, res.Leaves, res.Joins, res.DetectedFails, res.FP,
		res.JoinsSeen, res.JoinsSampled, res.FirstDetect.Median, res.FirstDetect.P99)

	if res.N < 2000 {
		t.Fatalf("cluster size %d, want ≥ 2000", res.N)
	}
	if res.DetectedFails != res.Fails {
		t.Errorf("detected %d of %d crashed members (completeness violated)", res.DetectedFails, res.Fails)
	}
	suspMin := 5 * 3.31 // α·log10(2048) in seconds, the §V-C timeout floor
	if res.FirstDetect.Median <= 1 || res.FirstDetect.Median > 2*suspMin {
		t.Errorf("median first-detection %.2fs outside (1s, %.0fs]", res.FirstDetect.Median, 2*suspMin)
	}
	if res.FP > res.Fails/2 {
		t.Errorf("false positives %d vs %d true failures; churn destabilized the detector", res.FP, res.Fails)
	}
	if res.JoinsSampled > 0 && res.JoinsSeen < res.JoinsSampled*9/10 {
		t.Errorf("joins seen %d/%d, want ≥90%%", res.JoinsSeen, res.JoinsSampled)
	}
}
