package experiment

import (
	"fmt"
	"sort"
	"strings"

	"lifeguard/internal/stats"
)

// This file renders sweep results in the layout of the paper's tables
// and figures, so bench output can be compared side by side with the
// published numbers.

// FormatTable4 renders aggregated false-positive results for a set of
// configurations in the layout of Table IV. The first result is treated
// as the SWIM baseline for the percentage columns.
func FormatTable4(results []IntervalSweepResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-15s %12s %12s %12s %12s\n",
		"Configuration", "FP Events", "FP- Events", "FP %SWIM", "FP- %SWIM")
	if len(results) == 0 {
		return b.String()
	}
	base := results[0]
	for _, r := range results {
		fmt.Fprintf(&b, "%-15s %12d %12d %12.2f %12.2f\n",
			r.Config.Name, r.FP, r.FPHealthy,
			stats.PercentOf(float64(r.FP), float64(base.FP)),
			stats.PercentOf(float64(r.FPHealthy), float64(base.FPHealthy)))
	}
	return b.String()
}

// FormatTable5 renders detection/dissemination latencies in the layout
// of Table V (seconds).
func FormatTable5(results []ThresholdSweepResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-15s %10s %10s %10s %10s %10s %10s\n",
		"Configuration",
		"Med 1stDet", "99% 1stDet", "99.9% 1stD",
		"Med FullDs", "99% FullDs", "99.9% FlDs")
	for _, r := range results {
		fmt.Fprintf(&b, "%-15s %10.2f %10.2f %10.2f %10.2f %10.2f %10.2f\n",
			r.Config.Name,
			r.FirstDetect.Median, r.FirstDetect.P99, r.FirstDetect.P999,
			r.FullDissem.Median, r.FullDissem.P99, r.FullDissem.P999)
	}
	return b.String()
}

// FormatTable6 renders message-load results in the layout of Table VI.
// The first result is the SWIM baseline for the percentage columns.
func FormatTable6(results []IntervalSweepResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-15s %14s %14s %12s %12s\n",
		"Configuration", "Msgs Sent(M)", "Bytes(GiB)", "Msgs %SWIM", "Bytes %SWIM")
	if len(results) == 0 {
		return b.String()
	}
	base := results[0]
	for _, r := range results {
		fmt.Fprintf(&b, "%-15s %14.3f %14.3f %12.2f %12.2f\n",
			r.Config.Name,
			float64(r.MsgsSent)/1e6,
			float64(r.BytesSent)/(1<<30),
			stats.PercentOf(float64(r.MsgsSent), float64(base.MsgsSent)),
			stats.PercentOf(float64(r.BytesSent), float64(base.BytesSent)))
	}
	return b.String()
}

// FormatTable7 renders the suspicion-tuning grid in the layout of
// Table VII (all cells as % of the SWIM baseline).
func FormatTable7(res TuningSweepResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s", "Metric")
	for _, c := range res.Cells {
		fmt.Fprintf(&b, " α=%g,β=%g", c.Alpha, c.Beta)
	}
	b.WriteByte('\n')
	row := func(name string, get func(TuningCell) float64) {
		fmt.Fprintf(&b, "%-12s", name)
		for _, c := range res.Cells {
			fmt.Fprintf(&b, " %8.2f", get(c))
		}
		b.WriteByte('\n')
	}
	row("Med First", func(c TuningCell) float64 { return c.MedFirst })
	row("Med Full", func(c TuningCell) float64 { return c.MedFull })
	row("99% First", func(c TuningCell) float64 { return c.P99First })
	row("99% Full", func(c TuningCell) float64 { return c.P99Full })
	row("99.9% First", func(c TuningCell) float64 { return c.P999First })
	row("99.9% Full", func(c TuningCell) float64 { return c.P999Full })
	row("FP", func(c TuningCell) float64 { return c.FP })
	row("FP-", func(c TuningCell) float64 { return c.FPHealthy })
	return b.String()
}

// FormatFigure2 renders total false positives per concurrency level for
// each configuration: the series plotted in Figure 2 (and Figure 3 with
// healthy=true).
func FormatFigure2(results []IntervalSweepResult, healthy bool) string {
	var b strings.Builder
	name := "Total FP"
	if healthy {
		name = "FP at Healthy"
	}
	// Union of concurrency levels, sorted.
	levels := map[int]bool{}
	for _, r := range results {
		for c := range r.ByC {
			levels[c] = true
		}
	}
	cs := make([]int, 0, len(levels))
	for c := range levels {
		cs = append(cs, c)
	}
	sort.Ints(cs)

	fmt.Fprintf(&b, "%s by concurrent anomalies\n%-15s", name, "Configuration")
	for _, c := range cs {
		fmt.Fprintf(&b, " %8s", fmt.Sprintf("C=%d", c))
	}
	b.WriteByte('\n')
	for _, r := range results {
		fmt.Fprintf(&b, "%-15s", r.Config.Name)
		for _, c := range cs {
			cell := r.ByC[c]
			v := 0
			if cell != nil {
				if healthy {
					v = cell.FPHealthy
				} else {
					v = cell.FP
				}
			}
			fmt.Fprintf(&b, " %8d", v)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// FormatChurn renders one large-cluster churn run: action counts,
// crash-detection latency, false positives and join convergence.
func FormatChurn(r ChurnResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Churn: N=%d, %d fails / %d leaves / %d joins over %v (every %v)\n",
		r.N, r.Fails, r.Leaves, r.Joins, r.Params.Duration, r.Params.Interval)
	fmt.Fprintf(&b, "crashes detected %d/%d, first-detect median %.2fs max %.2fs; FP %d; joins seen %d/%d sampled views\n",
		r.DetectedFails, r.Fails, r.FirstDetect.Median, r.FirstDetect.Max,
		r.FP, r.JoinsSeen, r.JoinsSampled)
	return b.String()
}

// FormatPartition renders one partition/heal run: per-side convergence
// during the split and the re-merge outcome.
func FormatPartition(r PartitionResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Partition: side A %d members for %v (heal budget %v)\n",
		r.Params.SizeA, r.Params.Duration, r.Params.HealBudget)
	fmt.Fprintf(&b, "side A converged: %t, side B converged: %t, cross-side dead views: %d\n",
		r.SideAConverged, r.SideBConverged, r.CrossDeclaredDead)
	if r.Remerged {
		fmt.Fprintf(&b, "re-merged %v after healing\n", r.RemergeTime)
	} else {
		b.WriteString("did NOT re-merge within the heal budget\n")
	}
	return b.String()
}

// FormatFigure1 renders the CPU-exhaustion scenario results in the
// layout of Figure 1: for each stressed-member count, total FP and FP at
// healthy members, for each configuration.
func FormatFigure1(results []StressSweepResult) string {
	var b strings.Builder
	levels := map[int]bool{}
	for _, r := range results {
		for c := range r.ByCount {
			levels[c] = true
		}
	}
	cs := make([]int, 0, len(levels))
	for c := range levels {
		cs = append(cs, c)
	}
	sort.Ints(cs)

	fmt.Fprintf(&b, "%-28s", "Series")
	for _, c := range cs {
		fmt.Fprintf(&b, " %8s", fmt.Sprintf("S=%d", c))
	}
	b.WriteByte('\n')
	for _, r := range results {
		fmt.Fprintf(&b, "%-28s", r.Config.Name+" total FP")
		for _, c := range cs {
			fmt.Fprintf(&b, " %8d", r.ByCount[c].FP)
		}
		b.WriteByte('\n')
		fmt.Fprintf(&b, "%-28s", r.Config.Name+" FP@healthy")
		for _, c := range cs {
			fmt.Fprintf(&b, " %8d", r.ByCount[c].FPHealthy)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
