package experiment

import (
	"testing"
	"time"
)

func TestPartitionSidesOperateAndRemerge(t *testing.T) {
	if testing.Short() {
		t.Skip("partition run")
	}
	res, err := RunPartition(
		ClusterConfig{N: 24, Seed: 6, Protocol: ConfigLifeguard},
		PartitionParams{SizeA: 12, Duration: 90 * time.Second, HealBudget: 3 * time.Minute},
	)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("partition: A=%v B=%v crossDead=%d remerged=%v in %v",
		res.SideAConverged, res.SideBConverged, res.CrossDeclaredDead, res.Remerged, res.RemergeTime)

	if !res.SideAConverged || !res.SideBConverged {
		t.Error("partitioned sides did not settle on their own membership (§II robustness)")
	}
	// Each of 12 members on each side should hold the 12 others
	// dead/suspect: 288 cross entries at saturation.
	if res.CrossDeclaredDead < 200 {
		t.Errorf("cross-partition dead entries = %d, want near 288", res.CrossDeclaredDead)
	}
	if !res.Remerged {
		t.Fatal("cluster did not automatically merge after healing (§II robustness)")
	}
}

func TestPartitionDefaultsFilled(t *testing.T) {
	if testing.Short() {
		t.Skip("partition run")
	}
	// Degenerate split parameters fall back to a half/half split.
	res, err := RunPartition(
		ClusterConfig{N: 12, Seed: 8, Protocol: ConfigLifeguard},
		PartitionParams{SizeA: -1, Duration: 45 * time.Second, HealBudget: 2 * time.Minute},
	)
	if err != nil {
		t.Fatal(err)
	}
	if res.Params.SizeA != 6 {
		t.Errorf("SizeA = %d, want 6", res.Params.SizeA)
	}
	if !res.Remerged {
		t.Error("small cluster failed to remerge")
	}
}
