package experiment

import (
	"testing"
	"time"
)

// smallRestartParams is a reduced rolling-restart configuration for
// quick tests.
func smallRestartParams() RestartParams {
	return RestartParams{
		N:       32,
		Waves:   2,
		PerWave: 3,
		Settle:  20 * time.Second,
	}
}

// TestRestartCastDisjointAndDeterministic pins the restart-cast
// selection: distinct members, never the join seed, a pure function of
// the seed.
func TestRestartCastDisjointAndDeterministic(t *testing.T) {
	p := smallRestartParams().withDefaults()
	c1 := restartCast(p, 9)
	c2 := restartCast(p, 9)
	if len(c1) != p.Waves*p.PerWave {
		t.Fatalf("cast size %d, want %d", len(c1), p.Waves*p.PerWave)
	}
	seen := map[string]bool{NodeName(0): true}
	for i, name := range c1 {
		if seen[name] {
			t.Fatalf("cast repeats or includes the join seed: %s", name)
		}
		seen[name] = true
		if name != c2[i] {
			t.Fatalf("cast not deterministic: %v vs %v", c1, c2)
		}
	}
	c3 := restartCast(p, 10)
	same := true
	for i := range c1 {
		if c1[i] != c3[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical casts (suspicious)")
	}
}

// TestRestartRejectsOversizedCast pins the validation: more restarts
// than eligible members errors out instead of silently truncating.
func TestRestartRejectsOversizedCast(t *testing.T) {
	p := smallRestartParams()
	p.Waves, p.PerWave = 4, 10 // 40 > N-1 = 31
	if _, err := RunRestartCell(ClusterConfig{Seed: 1, Protocol: ConfigLifeguard}, p); err == nil {
		t.Fatal("oversized restart cast accepted")
	}
	if _, err := RunRestart(ClusterConfig{Seed: 1}, p); err == nil {
		t.Fatal("oversized restart cast accepted by RunRestart")
	}

	// A down window shorter than the leave linger would try to re-add
	// the member while the old instance is still attached.
	bad := smallRestartParams()
	bad.DownFor = 500 * time.Millisecond
	if _, err := RunRestartCell(ClusterConfig{Seed: 1, Protocol: ConfigLifeguard}, bad); err == nil {
		t.Fatal("DownFor shorter than LeaveLinger accepted")
	}
}

// TestRollingRestartRejoins is the scenario's acceptance bar: under
// full Lifeguard, every member restarted in staggered waves must be
// seen alive again — at a fresh incarnation — by every sampled
// long-lived observer, with its leave never misclassified as a false
// positive.
func TestRollingRestartRejoins(t *testing.T) {
	if testing.Short() {
		t.Skip("rolling-restart run")
	}
	cell, err := RunRestartCell(ClusterConfig{Seed: 1, Protocol: ConfigLifeguard}, smallRestartParams())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("restarts=%d rejoined=%d fp=%d fp-=%d rejoin med=%.2fs max=%.2fs msgs=%d",
		cell.Restarts, cell.Rejoined, cell.FP, cell.FPHealthy,
		cell.RejoinConverge.Median, cell.RejoinConverge.Max, cell.MsgsSent)
	if cell.Restarts != 6 {
		t.Fatalf("restarts = %d, want 6", cell.Restarts)
	}
	if cell.Rejoined != cell.Restarts {
		t.Errorf("only %d of %d restarted members fully rejoined", cell.Rejoined, cell.Restarts)
	}
	if cell.RejoinConverge.Count != cell.Rejoined {
		t.Errorf("convergence summary holds %d samples, want %d", cell.RejoinConverge.Count, cell.Rejoined)
	}
	// A rejoin should converge within the settle phase, not linger to
	// the horizon.
	if cell.RejoinConverge.Max > 30 {
		t.Errorf("slowest rejoin took %.2fs, want under 30s", cell.RejoinConverge.Max)
	}
	// Graceful leaves with dissemination time are not false positives;
	// the known FP source is a suspicion racing the leave, which the
	// Lifeguard configuration should keep rare.
	if cell.FP > cell.Restarts {
		t.Errorf("FP %d exceeds the restart count %d — leaves are being misclassified", cell.FP, cell.Restarts)
	}
	if cell.MsgsSent == 0 || cell.EventDigest == "" {
		t.Errorf("missing load or digest: msgs=%d digest=%q", cell.MsgsSent, cell.EventDigest)
	}
}

// TestRollingRestartDeterminism pins same-seed reproducibility of the
// per-configuration comparison: every cell must be identical across
// runs, and a different seed must actually change the event logs.
func TestRollingRestartDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("double rolling-restart run")
	}
	p := smallRestartParams()
	p.Configs = []ProtocolConfig{ConfigSWIM, ConfigLifeguard}
	run := func(seed int64) RestartResult {
		res, err := RunRestart(ClusterConfig{Seed: seed}, p)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(7), run(7)
	if len(a.Cells) != 2 {
		t.Fatalf("got %d cells, want 2", len(a.Cells))
	}
	for i := range a.Cells {
		if a.Cells[i] != b.Cells[i] {
			t.Errorf("same-seed cell %s diverged:\n%+v\n%+v", a.Cells[i].Config, a.Cells[i], b.Cells[i])
		}
	}
	c := run(8)
	if a.Cells[0].EventDigest == c.Cells[0].EventDigest && a.Cells[1].EventDigest == c.Cells[1].EventDigest {
		t.Error("different seeds produced identical event digests (suspicious)")
	}
}
