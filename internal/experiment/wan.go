package experiment

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"time"

	"lifeguard/internal/metrics"
	"lifeguard/internal/sim"
	"lifeguard/internal/stats"
)

// WANZone sizes one zone of a WAN experiment.
type WANZone struct {
	// Name is the zone name in the topology ("us-east", …).
	Name string

	// Members is the number of members placed in the zone.
	Members int
}

// WANParams parameterizes a WAN experiment: a multi-zone cluster on a
// topology-aware network, a coordinate-convergence phase scored
// against the simulator's ground-truth RTTs, and a per-zone failure
// phase scored for detection latency and false positives.
type WANParams struct {
	// Zones lists the zones and their sizes. Members are assigned to
	// zones in contiguous index blocks, in order.
	Zones []WANZone

	// Intra is the within-zone link profile.
	Intra sim.LinkProfile

	// Pairs maps zone pairs (unordered; put both names) to their link
	// profiles. Pairs not listed fall back to the topology's InterZone
	// default.
	Pairs map[[2]string]sim.LinkProfile

	// Converge is how long coordinates settle after the cluster
	// quiesces, before scoring. Each member takes roughly one RTT
	// observation per protocol period, so this bounds samples/member.
	Converge time.Duration

	// SamplePairs is the number of random member pairs scored for
	// coordinate error. Zero means 2000.
	SamplePairs int

	// FailPerZone is the number of members crashed in each zone for
	// the detection phase. Zero skips the phase.
	FailPerZone int

	// DetectHorizon is how long the detection phase runs after the
	// failures. Zero means 90 s.
	DetectHorizon time.Duration
}

// DefaultWANZones returns the canonical 4-zone WAN used by lifebench
// and tests: two US zones, Europe and Asia-Pacific, with realistic
// inter-zone latencies, membersPerZone members each.
func DefaultWANZones(membersPerZone int) ([]WANZone, map[[2]string]sim.LinkProfile) {
	zones := []WANZone{
		{Name: "us-east", Members: membersPerZone},
		{Name: "us-west", Members: membersPerZone},
		{Name: "eu", Members: membersPerZone},
		{Name: "ap", Members: membersPerZone},
	}
	ms := time.Millisecond
	pair := func(base time.Duration) sim.LinkProfile {
		// 10% jitter around the base one-way delay.
		return sim.LinkProfile{Base: base, Jitter: base / 10}
	}
	pairs := map[[2]string]sim.LinkProfile{
		{"us-east", "us-west"}: pair(30 * ms),
		{"us-east", "eu"}:      pair(40 * ms),
		{"us-east", "ap"}:      pair(90 * ms),
		{"us-west", "eu"}:      pair(70 * ms),
		{"us-west", "ap"}:      pair(60 * ms),
		{"eu", "ap"}:           pair(120 * ms),
	}
	return zones, pairs
}

// WANZoneResult is the per-zone slice of a WAN run.
type WANZoneResult struct {
	// Zone is the zone name.
	Zone string

	// Members is the number of members in the zone.
	Members int

	// Failed and Detected count crashed members and those whose
	// failure was detected somewhere.
	Failed, Detected int

	// FirstDetect summarizes, in seconds, the time from failure to the
	// first dead event about each detected member.
	FirstDetect stats.Summary

	// FP counts false-positive dead events about healthy members of
	// this zone.
	FP int
}

// WANResult holds one WAN run's metrics.
type WANResult struct {
	Params WANParams

	// N is the total cluster size.
	N int

	// PairsScored is the number of member pairs behind CoordErr.
	PairsScored int

	// CoordErr summarizes the relative RTT-estimation error
	// |estimate − truth| / truth over the scored pairs, where estimate
	// is the coordinate distance between the pair's members and truth
	// is the topology's expected RTT.
	CoordErr stats.Summary

	// MeanAbsErr is the mean absolute estimation error in seconds.
	MeanAbsErr float64

	// PerZone has one entry per zone, in Params.Zones order.
	PerZone []WANZoneResult

	// FP and FPHealthy count false positives cluster-wide during the
	// detection phase (FPHealthy: observer also healthy).
	FP, FPHealthy int
}

// BuildWANTopology constructs the sim topology for the given zones:
// contiguous member-index blocks per zone, the intra-zone profile on
// every zone with itself, and the listed pair profiles.
func BuildWANTopology(zones []WANZone, intra sim.LinkProfile, pairs map[[2]string]sim.LinkProfile) (*sim.Topology, int) {
	topo := sim.NewTopology()
	if intra.Base > 0 || intra.Jitter > 0 {
		topo.IntraZone = intra
	}
	idx := 0
	for _, z := range zones {
		for i := 0; i < z.Members; i++ {
			topo.SetZone(NodeName(idx), z.Name)
			idx++
		}
		topo.SetZonePair(z.Name, z.Name, topo.IntraZone)
	}
	for pair, p := range pairs {
		topo.SetZonePair(pair[0], pair[1], p)
	}
	return topo, idx
}

// RunWAN executes one WAN experiment. cc.N and cc.Net.Topology are
// derived from the params and must be left zero.
func RunWAN(cc ClusterConfig, p WANParams) (WANResult, error) {
	if len(p.Zones) == 0 {
		zones, pairs := DefaultWANZones(32)
		p.Zones, p.Pairs = zones, pairs
	}
	if p.Intra.Base == 0 && p.Intra.Jitter == 0 {
		p.Intra = sim.LinkProfile{Base: time.Millisecond, Jitter: 200 * time.Microsecond}
	}
	if p.Converge <= 0 {
		p.Converge = 5 * time.Minute
	}
	if p.SamplePairs <= 0 {
		p.SamplePairs = 2000
	}
	if p.DetectHorizon <= 0 {
		p.DetectHorizon = 90 * time.Second
	}

	topo, n := BuildWANTopology(p.Zones, p.Intra, p.Pairs)
	cc.N = n
	cc.Net.Topology = topo

	c, err := NewCluster(cc)
	if err != nil {
		return WANResult{}, err
	}
	defer c.Shutdown()
	if err := c.Start(Quiesce); err != nil {
		return WANResult{}, err
	}

	// Phase 1: coordinate convergence, then score estimates against the
	// topology's ground truth using each member's own coordinate.
	c.Sched.RunFor(p.Converge)
	res := WANResult{Params: p, N: n}
	res.CoordErr, res.MeanAbsErr, res.PairsScored = scoreCoordinates(c, topo, cc.Seed, p.SamplePairs)

	// Phase 2: crash FailPerZone members per zone, watch detection.
	zoneOf := func(name string) string { return topo.Zone(name) }
	var failed []string
	failedByZone := make(map[string][]string)
	if p.FailPerZone > 0 {
		rng := rand.New(rand.NewSource(cc.Seed + 1))
		idx := 0
		for _, z := range p.Zones {
			lo, hi := idx, idx+z.Members
			idx = hi
			if lo == 0 {
				lo = 1 // never crash the join seed
			}
			perm := rng.Perm(hi - lo)
			k := p.FailPerZone
			if k > len(perm) {
				k = len(perm)
			}
			for _, off := range perm[:k] {
				name := NodeName(lo + off)
				failed = append(failed, name)
				failedByZone[z.Name] = append(failedByZone[z.Name], name)
			}
		}
	}
	failStart := c.Sched.Now()
	if len(failed) > 0 {
		c.SetAnomalous(failed, true)
		c.Sched.RunFor(p.DetectHorizon)
	}

	events := c.Events.Events()
	res.FP, res.FPHealthy, _ = countFalsePositives(events, failed, failStart)

	// Per-zone breakdown: first-detection per failed member, FPs by the
	// subject's zone.
	firstByName := firstDetectionByName(events, failed, failStart)
	fpByZone := make(map[string]int)
	failedSet := toSet(failed)
	for _, ev := range events {
		if ev.Type != metrics.EventDead || ev.Time.Before(failStart) {
			continue
		}
		if _, bad := failedSet[ev.Subject]; !bad {
			fpByZone[zoneOf(ev.Subject)]++
		}
	}
	for _, z := range p.Zones {
		zr := WANZoneResult{Zone: z.Name, Members: z.Members, FP: fpByZone[z.Name]}
		var lat []float64
		for _, name := range failedByZone[z.Name] {
			zr.Failed++
			if d, ok := firstByName[name]; ok {
				zr.Detected++
				lat = append(lat, d.Seconds())
			}
		}
		zr.FirstDetect = stats.Summarize(lat)
		res.PerZone = append(res.PerZone, zr)
	}
	return res, nil
}

// scoreCoordinates samples random member pairs and scores coordinate
// distance against the topology's ground-truth RTT.
func scoreCoordinates(c *Cluster, topo *sim.Topology, seed int64, samplePairs int) (stats.Summary, float64, int) {
	rng := rand.New(rand.NewSource(seed + 2))
	n := len(c.Nodes)
	var relErrs []float64
	absSum := 0.0
	// Bounded attempts so disabled coordinates (every estimate nil)
	// terminate with an empty summary instead of spinning.
	for attempts := 0; len(relErrs) < samplePairs && attempts < samplePairs*50; attempts++ {
		i := rng.Intn(n)
		j := rng.Intn(n)
		if i == j {
			continue
		}
		a, b := c.Nodes[i], c.Nodes[j]
		ca, cb := a.Coordinate(), b.Coordinate()
		if ca == nil || cb == nil {
			continue
		}
		truth := topo.GroundTruthRTT(a.Name(), b.Name()).Seconds()
		if truth <= 0 {
			continue
		}
		est := ca.DistanceTo(cb).Seconds()
		relErrs = append(relErrs, math.Abs(est-truth)/truth)
		absSum += math.Abs(est - truth)
	}
	if len(relErrs) == 0 {
		return stats.Summary{}, 0, 0
	}
	return stats.Summarize(relErrs), absSum / float64(len(relErrs)), len(relErrs)
}

// firstDetectionByName maps each crashed member to the delay until the
// first dead event about it at any other member.
func firstDetectionByName(events []metrics.Event, failed []string, start time.Time) map[string]time.Duration {
	out := make(map[string]time.Duration, len(failed))
	failedSet := toSet(failed)
	for _, ev := range events {
		if ev.Type != metrics.EventDead || ev.Time.Before(start) || ev.Observer == ev.Subject {
			continue
		}
		if _, bad := failedSet[ev.Subject]; !bad {
			continue
		}
		if _, seen := out[ev.Subject]; !seen {
			out[ev.Subject] = ev.Time.Sub(start)
		}
	}
	return out
}

// FormatWAN renders one WAN result: the coordinate-estimation quality
// line and the per-zone detection table.
func FormatWAN(r WANResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "WAN cluster: %d members, %d zones; coordinate error over %d pairs: median %.1f%%, p99 %.1f%%, mean abs %.1fms\n",
		r.N, len(r.Params.Zones), r.PairsScored,
		r.CoordErr.Median*100, r.CoordErr.P99*100, r.MeanAbsErr*1000)
	fmt.Fprintf(&b, "%-10s %8s %7s %9s %11s %11s %6s\n",
		"Zone", "Members", "Failed", "Detected", "MedDet(s)", "MaxDet(s)", "FP")
	for _, z := range r.PerZone {
		fmt.Fprintf(&b, "%-10s %8d %7d %9d %11.2f %11.2f %6d\n",
			z.Zone, z.Members, z.Failed, z.Detected,
			z.FirstDetect.Median, z.FirstDetect.Max, z.FP)
	}
	fmt.Fprintf(&b, "cluster-wide FP: %d (at healthy observers: %d)\n", r.FP, r.FPHealthy)
	return b.String()
}
