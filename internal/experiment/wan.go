package experiment

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
	"time"

	"lifeguard/internal/metrics"
	"lifeguard/internal/sim"
	"lifeguard/internal/stats"
	"lifeguard/internal/telemetry"
)

// WANZone sizes one zone of a WAN experiment.
type WANZone struct {
	// Name is the zone name in the topology ("us-east", …).
	Name string

	// Members is the number of members placed in the zone.
	Members int
}

// WANParams parameterizes a WAN experiment: a multi-zone cluster on a
// topology-aware network, a coordinate-convergence phase scored
// against the simulator's ground-truth RTTs, and a per-zone failure
// phase scored for detection latency and false positives.
type WANParams struct {
	// Zones lists the zones and their sizes. Members are assigned to
	// zones in contiguous index blocks, in order.
	Zones []WANZone

	// Intra is the within-zone link profile.
	Intra sim.LinkProfile

	// Pairs maps zone pairs (unordered; put both names) to their link
	// profiles. Pairs not listed fall back to the topology's InterZone
	// default.
	Pairs map[[2]string]sim.LinkProfile

	// Converge is how long coordinates settle after the cluster
	// quiesces, before scoring. Each member takes roughly one RTT
	// observation per protocol period, so this bounds samples/member.
	Converge time.Duration

	// SamplePairs is the number of random member pairs scored for
	// coordinate error. Zero means 2000.
	SamplePairs int

	// FailPerZone is the number of members crashed in each zone for
	// the detection phase. Zero skips the phase.
	FailPerZone int

	// DetectHorizon is how long the detection phase runs after the
	// failures. Zero means 90 s.
	DetectHorizon time.Duration
}

// DefaultWANZones returns the canonical 4-zone WAN used by lifebench
// and tests: two US zones, Europe and Asia-Pacific, with realistic
// inter-zone latencies, membersPerZone members each.
func DefaultWANZones(membersPerZone int) ([]WANZone, map[[2]string]sim.LinkProfile) {
	zones := []WANZone{
		{Name: "us-east", Members: membersPerZone},
		{Name: "us-west", Members: membersPerZone},
		{Name: "eu", Members: membersPerZone},
		{Name: "ap", Members: membersPerZone},
	}
	ms := time.Millisecond
	pair := func(base time.Duration) sim.LinkProfile {
		// 10% jitter around the base one-way delay.
		return sim.LinkProfile{Base: base, Jitter: base / 10}
	}
	pairs := map[[2]string]sim.LinkProfile{
		{"us-east", "us-west"}: pair(30 * ms),
		{"us-east", "eu"}:      pair(40 * ms),
		{"us-east", "ap"}:      pair(90 * ms),
		{"us-west", "eu"}:      pair(70 * ms),
		{"us-west", "ap"}:      pair(60 * ms),
		{"eu", "ap"}:           pair(120 * ms),
	}
	return zones, pairs
}

// WANZoneResult is the per-zone slice of a WAN run.
type WANZoneResult struct {
	// Zone is the zone name.
	Zone string

	// Members is the number of members in the zone.
	Members int

	// Failed and Detected count crashed members and those whose
	// failure was detected somewhere.
	Failed, Detected int

	// FirstDetect summarizes, in seconds, the time from failure to the
	// first dead event about each detected member.
	FirstDetect stats.Summary

	// CrossZoneDetect summarizes, in seconds, the time from failure to
	// the first dead event about each member observed in a *different*
	// zone — when the failure became actionable for the rest of the
	// WAN, the paper-level number the adaptive configuration is scored
	// on.
	CrossZoneDetect stats.Summary

	// FP counts false-positive dead events about healthy members of
	// this zone.
	FP int
}

// WANResult holds one WAN run's metrics.
type WANResult struct {
	Params WANParams

	// N is the total cluster size.
	N int

	// PairsScored is the number of member pairs behind CoordErr.
	PairsScored int

	// CoordErr summarizes the relative RTT-estimation error
	// |estimate − truth| / truth over the scored pairs, where estimate
	// is the coordinate distance between the pair's members and truth
	// is the topology's expected RTT.
	CoordErr stats.Summary

	// MeanAbsErr is the mean absolute estimation error in seconds.
	MeanAbsErr float64

	// PerZone has one entry per zone, in Params.Zones order.
	PerZone []WANZoneResult

	// CrossZoneDetect summarizes cross-zone first-detection latency in
	// seconds over every crashed member (all zones pooled); see
	// WANZoneResult.CrossZoneDetect.
	CrossZoneDetect stats.Summary

	// FP and FPHealthy count false positives cluster-wide during the
	// detection phase (FPHealthy: observer also healthy).
	FP, FPHealthy int

	// MsgsSent and BytesSent total the transport load over the whole
	// run — the bandwidth side of the adaptive-versus-static tradeoff.
	MsgsSent, BytesSent int64

	// AdaptiveTimeouts and AdaptiveFallbacks count probe rounds that
	// used an RTT-derived timeout versus ones that fell back to the
	// static timeout while coordinates were cold, cluster-wide.
	AdaptiveTimeouts, AdaptiveFallbacks int64

	// RelayNear and RelayRandom count indirect-probe relays chosen by
	// coordinate proximity versus uniformly (diversity slice + cold
	// fill) under CoordinateRelaySelection.
	RelayNear, RelayRandom int64

	// GossipNear and GossipEscape count gossip targets chosen by
	// proximity versus the uniform escape slice under
	// LatencyAwareGossip.
	GossipNear, GossipEscape int64

	// ObsRTTSamples is the number of telemetry RTT samples behind the
	// observed-RTT scoring (zero when the cluster ran without a
	// telemetry recorder).
	ObsRTTSamples int

	// ObsRTTPairs scores, per zone pair, the members' *observed*
	// direct-ack RTT distribution (from the telemetry recorder — real
	// measurements, not coordinate estimates) against the topology's
	// ground-truth RTT.
	ObsRTTPairs []WANPairRTTErr

	// ObsRTTP50ErrMedian and ObsRTTP90ErrMedian are the medians, over
	// the zone pairs, of the per-pair p50 and p90 relative errors.
	ObsRTTP50ErrMedian, ObsRTTP90ErrMedian float64
}

// WANPairRTTErr scores one zone pair's observed RTT distribution
// against the simulator's ground truth.
type WANPairRTTErr struct {
	// ZoneA and ZoneB name the pair (sorted; equal for intra-zone).
	ZoneA, ZoneB string

	// Samples is the number of RTT measurements in the pair.
	Samples int

	// ObsP50S and ObsP90S are the observed RTT quantiles in seconds.
	ObsP50S, ObsP90S float64

	// TruthS is the topology's expected RTT in seconds (averaged over
	// the contributing member pairs).
	TruthS float64

	// P50RelErr and P90RelErr are |observed − truth| / truth at the
	// respective quantiles.
	P50RelErr, P90RelErr float64
}

// BuildWANTopology constructs the sim topology for the given zones:
// contiguous member-index blocks per zone, the intra-zone profile on
// every zone with itself, and the listed pair profiles.
func BuildWANTopology(zones []WANZone, intra sim.LinkProfile, pairs map[[2]string]sim.LinkProfile) (*sim.Topology, int) {
	topo := sim.NewTopology()
	if intra.Base > 0 || intra.Jitter > 0 {
		topo.IntraZone = intra
	}
	idx := 0
	for _, z := range zones {
		for i := 0; i < z.Members; i++ {
			topo.SetZone(NodeName(idx), z.Name)
			idx++
		}
		topo.SetZonePair(z.Name, z.Name, topo.IntraZone)
	}
	for pair, p := range pairs {
		topo.SetZonePair(pair[0], pair[1], p)
	}
	return topo, idx
}

// RunWAN executes one WAN experiment. cc.N and cc.Net.Topology are
// derived from the params and must be left zero.
func RunWAN(cc ClusterConfig, p WANParams) (WANResult, error) {
	if len(p.Zones) == 0 {
		zones, pairs := DefaultWANZones(32)
		p.Zones, p.Pairs = zones, pairs
	}
	if p.Intra.Base == 0 && p.Intra.Jitter == 0 {
		p.Intra = sim.LinkProfile{Base: time.Millisecond, Jitter: 200 * time.Microsecond}
	}
	if p.Converge <= 0 {
		p.Converge = 5 * time.Minute
	}
	if p.SamplePairs <= 0 {
		p.SamplePairs = 2000
	}
	if p.DetectHorizon <= 0 {
		p.DetectHorizon = 90 * time.Second
	}

	topo, n := BuildWANTopology(p.Zones, p.Intra, p.Pairs)
	cc.N = n
	cc.Net.Topology = topo

	c, err := NewCluster(cc)
	if err != nil {
		return WANResult{}, err
	}
	defer c.Shutdown()
	if err := c.Start(Quiesce); err != nil {
		return WANResult{}, err
	}

	// Phase 1: coordinate convergence, then score estimates against the
	// topology's ground truth using each member's own coordinate.
	c.Sched.RunFor(p.Converge)
	res := WANResult{Params: p, N: n}
	res.CoordErr, res.MeanAbsErr, res.PairsScored = scoreCoordinates(c, topo, cc.Seed, p.SamplePairs)
	res.ObsRTTPairs, res.ObsRTTSamples, err = scoreObservedRTT(c, topo)
	if err != nil {
		return WANResult{}, err
	}
	res.ObsRTTP50ErrMedian, res.ObsRTTP90ErrMedian = pairErrMedians(res.ObsRTTPairs)

	// Phase 2: crash FailPerZone members per zone, watch detection.
	zoneOf := func(name string) string { return topo.Zone(name) }
	var failed []string
	failedByZone := make(map[string][]string)
	if p.FailPerZone > 0 {
		rng := rand.New(rand.NewSource(cc.Seed + 1))
		idx := 0
		for _, z := range p.Zones {
			lo, hi := idx, idx+z.Members
			idx = hi
			if lo == 0 {
				lo = 1 // never crash the join seed
			}
			perm := rng.Perm(hi - lo)
			k := p.FailPerZone
			if k > len(perm) {
				k = len(perm)
			}
			for _, off := range perm[:k] {
				name := NodeName(lo + off)
				failed = append(failed, name)
				failedByZone[z.Name] = append(failedByZone[z.Name], name)
			}
		}
	}
	failStart := c.Sched.Now()
	if len(failed) > 0 {
		c.SetAnomalous(failed, true)
		c.Sched.RunFor(p.DetectHorizon)
	}

	events := c.Events.Events()
	res.FP, res.FPHealthy, _ = countFalsePositives(events, failed, failStart)

	// Per-zone breakdown: first-detection per failed member (anywhere,
	// and at an observer in a different zone), FPs by the subject's
	// zone.
	firstByName := firstDetectionByName(events, failed, failStart)
	crossByName := firstCrossZoneDetectionByName(events, failed, failStart, zoneOf)
	fpByZone := make(map[string]int)
	failedSet := toSet(failed)
	for _, ev := range events {
		if ev.Type != metrics.EventDead || ev.Time.Before(failStart) {
			continue
		}
		if _, bad := failedSet[ev.Subject]; !bad {
			fpByZone[zoneOf(ev.Subject)]++
		}
	}
	var crossAll []float64
	for _, z := range p.Zones {
		zr := WANZoneResult{Zone: z.Name, Members: z.Members, FP: fpByZone[z.Name]}
		var lat, cross []float64
		for _, name := range failedByZone[z.Name] {
			zr.Failed++
			if d, ok := firstByName[name]; ok {
				zr.Detected++
				lat = append(lat, d.Seconds())
			}
			if d, ok := crossByName[name]; ok {
				cross = append(cross, d.Seconds())
			}
		}
		zr.FirstDetect = stats.Summarize(lat)
		zr.CrossZoneDetect = stats.Summarize(cross)
		crossAll = append(crossAll, cross...)
		res.PerZone = append(res.PerZone, zr)
	}
	res.CrossZoneDetect = stats.Summarize(crossAll)

	total := c.Net.TotalStats()
	res.MsgsSent = total.MsgsSent
	res.BytesSent = total.BytesSent
	res.AdaptiveTimeouts = c.Sink.Get(metrics.CounterAdaptiveTimeouts)
	res.AdaptiveFallbacks = c.Sink.Get(metrics.CounterAdaptiveFallbacks)
	res.RelayNear = c.Sink.Get(metrics.CounterRelayNearPicks)
	res.RelayRandom = c.Sink.Get(metrics.CounterRelayRandomPicks)
	res.GossipNear = c.Sink.Get(metrics.CounterGossipNearPicks)
	res.GossipEscape = c.Sink.Get(metrics.CounterGossipEscapePicks)
	return res, nil
}

// WANComparison holds one same-seed adaptive-versus-static pair of WAN
// runs: identical topology, identical failures, the only difference
// being ClusterConfig.TopologyAware.
type WANComparison struct {
	// Static is the run with the coordinate-driven extensions off.
	Static WANResult

	// Adaptive is the run with RTT-adaptive probe timeouts,
	// coordinate-aware relay selection, and latency-biased gossip on.
	Adaptive WANResult
}

// RunWANComparison executes the WAN experiment twice with the same seed
// and parameters — once static, once topology-aware — so detection
// latency, false positives and bandwidth can be compared directly.
func RunWANComparison(cc ClusterConfig, p WANParams) (WANComparison, error) {
	cc.TopologyAware = false
	static, err := RunWAN(cc, p)
	if err != nil {
		return WANComparison{}, err
	}
	cc.TopologyAware = true
	adaptive, err := RunWAN(cc, p)
	if err != nil {
		return WANComparison{}, err
	}
	return WANComparison{Static: static, Adaptive: adaptive}, nil
}

// scoreObservedRTT groups the cluster telemetry recorder's RTT samples
// by zone pair and scores the observed p50/p90 against the topology's
// ground-truth RTT — the first telemetry-derived record metric. Returns
// nil with no recorder installed, and an error if the recorder evicted
// partitions (the surviving sample set would then be process-dependent,
// breaking the same-seed byte-identity contract on the records).
func scoreObservedRTT(c *Cluster, topo *sim.Topology) ([]WANPairRTTErr, int, error) {
	if c.Telem == nil {
		return nil, 0, nil
	}
	if ev := c.Telem.Buffer().Evictions(); ev > 0 {
		return nil, 0, fmt.Errorf("experiment: telemetry evicted %d partitions during a scored run; observed-RTT metrics would be nondeterministic (the harness sizes MaxPartitions so this cannot happen — raise it for custom recorders)", ev)
	}
	// ForEachPair visits partitions in unspecified (map) order and float
	// addition is not associative, so collect per-partition contributions
	// first and fix the accumulation order by sorting on the key: the CI
	// determinism guard byte-diffs same-seed records across processes.
	type contrib struct {
		key   telemetry.PairKey
		rtts  []float64
		truth float64 // ground-truth RTT for the member pair, seconds
	}
	byPair := make(map[[2]string][]contrib)
	total := 0
	c.Telem.ForEachPair(func(k telemetry.PairKey, ss []telemetry.RTTSample) {
		if len(ss) == 0 {
			return
		}
		za, zb := topo.Zone(k.Origin), topo.Zone(k.Peer)
		if za > zb {
			za, zb = zb, za
		}
		rtts := make([]float64, len(ss))
		for i, s := range ss {
			rtts[i] = s.RTT.Seconds()
		}
		pk := [2]string{za, zb}
		byPair[pk] = append(byPair[pk], contrib{
			key:   k,
			rtts:  rtts,
			truth: topo.GroundTruthRTT(k.Origin, k.Peer).Seconds(),
		})
		total += len(ss)
	})

	keys := make([][2]string, 0, len(byPair))
	for k := range byPair {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})

	out := make([]WANPairRTTErr, 0, len(keys))
	for _, k := range keys {
		cs := byPair[k]
		sort.Slice(cs, func(i, j int) bool {
			a, b := cs[i].key, cs[j].key
			if a.Origin != b.Origin {
				return a.Origin < b.Origin
			}
			if a.Peer != b.Peer {
				return a.Peer < b.Peer
			}
			return a.Epoch < b.Epoch
		})
		var rtts []float64
		truthSum := 0.0
		for _, cb := range cs {
			rtts = append(rtts, cb.rtts...)
			truthSum += cb.truth * float64(len(cb.rtts))
		}
		truth := truthSum / float64(len(rtts))
		pe := WANPairRTTErr{
			ZoneA:   k[0],
			ZoneB:   k[1],
			Samples: len(rtts),
			ObsP50S: stats.Percentile(rtts, 50),
			ObsP90S: stats.Percentile(rtts, 90),
			TruthS:  truth,
		}
		if truth > 0 {
			pe.P50RelErr = math.Abs(pe.ObsP50S-truth) / truth
			pe.P90RelErr = math.Abs(pe.ObsP90S-truth) / truth
		}
		out = append(out, pe)
	}
	return out, total, nil
}

// pairErrMedians returns the medians, over the zone pairs, of the
// per-pair p50 and p90 relative errors.
func pairErrMedians(pairs []WANPairRTTErr) (p50, p90 float64) {
	if len(pairs) == 0 {
		return 0, 0
	}
	e50 := make([]float64, len(pairs))
	e90 := make([]float64, len(pairs))
	for i, p := range pairs {
		e50[i], e90[i] = p.P50RelErr, p.P90RelErr
	}
	return stats.Percentile(e50, 50), stats.Percentile(e90, 50)
}

// scoreCoordinates samples random member pairs and scores coordinate
// distance against the topology's ground-truth RTT.
func scoreCoordinates(c *Cluster, topo *sim.Topology, seed int64, samplePairs int) (stats.Summary, float64, int) {
	rng := rand.New(rand.NewSource(seed + 2))
	n := len(c.Nodes)
	var relErrs []float64
	absSum := 0.0
	// Bounded attempts so disabled coordinates (every estimate nil)
	// terminate with an empty summary instead of spinning.
	for attempts := 0; len(relErrs) < samplePairs && attempts < samplePairs*50; attempts++ {
		i := rng.Intn(n)
		j := rng.Intn(n)
		if i == j {
			continue
		}
		a, b := c.Nodes[i], c.Nodes[j]
		ca, cb := a.Coordinate(), b.Coordinate()
		if ca == nil || cb == nil {
			continue
		}
		truth := topo.GroundTruthRTT(a.Name(), b.Name()).Seconds()
		if truth <= 0 {
			continue
		}
		est := ca.DistanceTo(cb).Seconds()
		relErrs = append(relErrs, math.Abs(est-truth)/truth)
		absSum += math.Abs(est - truth)
	}
	if len(relErrs) == 0 {
		return stats.Summary{}, 0, 0
	}
	return stats.Summarize(relErrs), absSum / float64(len(relErrs)), len(relErrs)
}

// firstDetectionByName maps each crashed member to the delay until the
// first dead event about it at any other member.
func firstDetectionByName(events []metrics.Event, failed []string, start time.Time) map[string]time.Duration {
	out := make(map[string]time.Duration, len(failed))
	failedSet := toSet(failed)
	for _, ev := range events {
		if ev.Type != metrics.EventDead || ev.Time.Before(start) || ev.Observer == ev.Subject {
			continue
		}
		if _, bad := failedSet[ev.Subject]; !bad {
			continue
		}
		if _, seen := out[ev.Subject]; !seen {
			out[ev.Subject] = ev.Time.Sub(start)
		}
	}
	return out
}

// firstCrossZoneDetectionByName maps each crashed member to the delay
// until the first dead event about it at an observer in a different
// zone — the moment the failure became visible to the rest of the WAN.
func firstCrossZoneDetectionByName(events []metrics.Event, failed []string, start time.Time, zoneOf func(string) string) map[string]time.Duration {
	out := make(map[string]time.Duration, len(failed))
	failedSet := toSet(failed)
	for _, ev := range events {
		if ev.Type != metrics.EventDead || ev.Time.Before(start) || ev.Observer == ev.Subject {
			continue
		}
		if _, bad := failedSet[ev.Subject]; !bad {
			continue
		}
		if zoneOf(ev.Observer) == zoneOf(ev.Subject) {
			continue
		}
		if _, seen := out[ev.Subject]; !seen {
			out[ev.Subject] = ev.Time.Sub(start)
		}
	}
	return out
}

// FormatWAN renders one WAN result: the coordinate-estimation quality
// line and the per-zone detection table.
func FormatWAN(r WANResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "WAN cluster: %d members, %d zones; coordinate error over %d pairs: median %.1f%%, p99 %.1f%%, mean abs %.1fms\n",
		r.N, len(r.Params.Zones), r.PairsScored,
		r.CoordErr.Median*100, r.CoordErr.P99*100, r.MeanAbsErr*1000)
	if r.ObsRTTSamples > 0 {
		fmt.Fprintf(&b, "observed RTT (telemetry, %d samples over %d zone pairs): p50 err median %.1f%%, p90 err median %.1f%%\n",
			r.ObsRTTSamples, len(r.ObsRTTPairs), r.ObsRTTP50ErrMedian*100, r.ObsRTTP90ErrMedian*100)
	}
	fmt.Fprintf(&b, "%-10s %8s %7s %9s %11s %11s %11s %6s\n",
		"Zone", "Members", "Failed", "Detected", "MedDet(s)", "MaxDet(s)", "XZoneMed(s)", "FP")
	for _, z := range r.PerZone {
		fmt.Fprintf(&b, "%-10s %8d %7d %9d %11.2f %11.2f %11.2f %6d\n",
			z.Zone, z.Members, z.Failed, z.Detected,
			z.FirstDetect.Median, z.FirstDetect.Max, z.CrossZoneDetect.Median, z.FP)
	}
	fmt.Fprintf(&b, "cluster-wide FP: %d (at healthy observers: %d); cross-zone detect median %.2fs; %d msgs, %.1f MB\n",
		r.FP, r.FPHealthy, r.CrossZoneDetect.Median, r.MsgsSent, float64(r.BytesSent)/1e6)
	if r.AdaptiveTimeouts+r.AdaptiveFallbacks > 0 {
		fmt.Fprintf(&b, "adaptive: %d RTT-derived probe timeouts (%d cold fallbacks), relays %d near/%d random, gossip %d near/%d escape\n",
			r.AdaptiveTimeouts, r.AdaptiveFallbacks, r.RelayNear, r.RelayRandom, r.GossipNear, r.GossipEscape)
	}
	return b.String()
}

// FormatWANComparison renders an adaptive-versus-static WAN pair with
// the headline deltas.
func FormatWANComparison(c WANComparison) string {
	var b strings.Builder
	b.WriteString("--- static (uniform timeouts and peer selection) ---\n")
	b.WriteString(FormatWAN(c.Static))
	b.WriteString("--- adaptive (RTT-adaptive timeouts, coordinate-aware relays, latency-biased gossip) ---\n")
	b.WriteString(FormatWAN(c.Adaptive))
	fmt.Fprintf(&b, "delta: cross-zone detect median %.2fs -> %.2fs, FP %d -> %d, bytes %.1f MB -> %.1f MB\n",
		c.Static.CrossZoneDetect.Median, c.Adaptive.CrossZoneDetect.Median,
		c.Static.FP, c.Adaptive.FP,
		float64(c.Static.BytesSent)/1e6, float64(c.Adaptive.BytesSent)/1e6)
	return b.String()
}
