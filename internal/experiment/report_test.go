package experiment

import (
	"testing"
	"time"

	"lifeguard/internal/stats"
)

// These golden-string tests pin the exact rendering of every report
// formatter on small synthetic results, so a drive-by format change
// (column order, width, units) is a deliberate diff, not an accident.

// fmtIntervalFixture is shared by the Table IV/VI and Figure 2/3
// goldens.
func fmtIntervalFixture() []IntervalSweepResult {
	return []IntervalSweepResult{
		{Config: ConfigSWIM, FP: 100, FPHealthy: 40, MsgsSent: 2_000_000, BytesSent: 3 << 30, Runs: 4,
			ByC: map[int]*IntervalCell{4: {FP: 60, FPHealthy: 25, Runs: 2}, 12: {FP: 40, FPHealthy: 15, Runs: 2}}},
		{Config: ConfigLifeguard, FP: 25, FPHealthy: 10, MsgsSent: 2_200_000, BytesSent: 3_500_000_000, Runs: 4,
			ByC: map[int]*IntervalCell{4: {FP: 15, FPHealthy: 6, Runs: 2}, 12: {FP: 10, FPHealthy: 4, Runs: 2}}},
	}
}

func checkGolden(t *testing.T, name, got, want string) {
	t.Helper()
	if got != want {
		t.Errorf("%s rendering changed:\n--- got ---\n%s--- want ---\n%s", name, got, want)
	}
}

func TestFormatTable4Golden(t *testing.T) {
	want := "" +
		"Configuration      FP Events   FP- Events     FP %SWIM    FP- %SWIM\n" +
		"SWIM                     100           40       100.00       100.00\n" +
		"Lifeguard                 25           10        25.00        25.00\n"
	checkGolden(t, "Table4", FormatTable4(fmtIntervalFixture()), want)
	// The empty case renders the header alone.
	wantEmpty := "Configuration      FP Events   FP- Events     FP %SWIM    FP- %SWIM\n"
	checkGolden(t, "Table4 empty", FormatTable4(nil), wantEmpty)
}

func TestFormatTable5Golden(t *testing.T) {
	results := []ThresholdSweepResult{
		{Config: ConfigSWIM, FirstDetect: stats.Summary{Median: 1.5, P99: 2.5, P999: 3.5}, FullDissem: stats.Summary{Median: 2, P99: 4, P999: 6}},
		{Config: ConfigLifeguard, FirstDetect: stats.Summary{Median: 1.25, P99: 2, P999: 3}, FullDissem: stats.Summary{Median: 1.75, P99: 3.5, P999: 5}},
	}
	want := "" +
		"Configuration   Med 1stDet 99% 1stDet 99.9% 1stD Med FullDs 99% FullDs 99.9% FlDs\n" +
		"SWIM                  1.50       2.50       3.50       2.00       4.00       6.00\n" +
		"Lifeguard             1.25       2.00       3.00       1.75       3.50       5.00\n"
	checkGolden(t, "Table5", FormatTable5(results), want)
}

func TestFormatTable6Golden(t *testing.T) {
	want := "" +
		"Configuration     Msgs Sent(M)     Bytes(GiB)   Msgs %SWIM  Bytes %SWIM\n" +
		"SWIM                     2.000          3.000       100.00       100.00\n" +
		"Lifeguard                2.200          3.260       110.00       108.65\n"
	checkGolden(t, "Table6", FormatTable6(fmtIntervalFixture()), want)
}

func TestFormatTable7Golden(t *testing.T) {
	res := TuningSweepResult{Cells: []TuningCell{
		{Alpha: 2, Beta: 4, MedFirst: 110, MedFull: 105, P99First: 95, P99Full: 90, P999First: 85, P999Full: 80, FP: 20, FPHealthy: 10},
		{Alpha: 5, Beta: 6, MedFirst: 120, MedFull: 115, P99First: 100, P99Full: 95, P999First: 90, P999Full: 85, FP: 15, FPHealthy: 5},
	}}
	want := "" +
		"Metric       α=2,β=4 α=5,β=6\n" +
		"Med First      110.00   120.00\n" +
		"Med Full       105.00   115.00\n" +
		"99% First       95.00   100.00\n" +
		"99% Full        90.00    95.00\n" +
		"99.9% First     85.00    90.00\n" +
		"99.9% Full      80.00    85.00\n" +
		"FP              20.00    15.00\n" +
		"FP-             10.00     5.00\n"
	checkGolden(t, "Table7", FormatTable7(res), want)
}

func TestFormatFigure2Golden(t *testing.T) {
	wantTotal := "" +
		"Total FP by concurrent anomalies\n" +
		"Configuration        C=4     C=12\n" +
		"SWIM                  60       40\n" +
		"Lifeguard             15       10\n"
	checkGolden(t, "Figure2", FormatFigure2(fmtIntervalFixture(), false), wantTotal)
	wantHealthy := "" +
		"FP at Healthy by concurrent anomalies\n" +
		"Configuration        C=4     C=12\n" +
		"SWIM                  25       15\n" +
		"Lifeguard              6        4\n"
	checkGolden(t, "Figure3", FormatFigure2(fmtIntervalFixture(), true), wantHealthy)
}

func TestFormatFigure1Golden(t *testing.T) {
	results := []StressSweepResult{
		{Config: ConfigSWIM, ByCount: map[int]StressResult{4: {FP: 12, FPHealthy: 5}, 16: {FP: 48, FPHealthy: 20}}},
		{Config: ConfigLifeguard, ByCount: map[int]StressResult{4: {FP: 1, FPHealthy: 0}, 16: {FP: 3, FPHealthy: 1}}},
	}
	want := "" +
		"Series                            S=4     S=16\n" +
		"SWIM total FP                      12       48\n" +
		"SWIM FP@healthy                     5       20\n" +
		"Lifeguard total FP                  1        3\n" +
		"Lifeguard FP@healthy                0        1\n"
	checkGolden(t, "Figure1", FormatFigure1(results), want)
}

func TestFormatChurnGolden(t *testing.T) {
	r := ChurnResult{
		Params: ChurnParams{Interval: 500 * time.Millisecond, Duration: 30 * time.Second},
		N:      2048, Fails: 15, Leaves: 15, Joins: 30, DetectedFails: 15,
		FirstDetect: stats.Summary{Median: 18.6, Max: 22.1},
		JoinsSeen:   480, JoinsSampled: 480,
	}
	want := "" +
		"Churn: N=2048, 15 fails / 15 leaves / 30 joins over 30s (every 500ms)\n" +
		"crashes detected 15/15, first-detect median 18.60s max 22.10s; FP 0; joins seen 480/480 sampled views\n"
	checkGolden(t, "Churn", FormatChurn(r), want)
}

func TestFormatPartitionGolden(t *testing.T) {
	r := PartitionResult{
		Params:         PartitionParams{SizeA: 16, Duration: time.Minute, HealBudget: 2 * time.Minute},
		SideAConverged: true, SideBConverged: true, CrossDeclaredDead: 512,
		Remerged: true, RemergeTime: 15500 * time.Millisecond,
	}
	want := "" +
		"Partition: side A 16 members for 1m0s (heal budget 2m0s)\n" +
		"side A converged: true, side B converged: true, cross-side dead views: 512\n" +
		"re-merged 15.5s after healing\n"
	checkGolden(t, "Partition", FormatPartition(r), want)

	r.Remerged, r.RemergeTime = false, 0
	wantStuck := "" +
		"Partition: side A 16 members for 1m0s (heal budget 2m0s)\n" +
		"side A converged: true, side B converged: true, cross-side dead views: 512\n" +
		"did NOT re-merge within the heal budget\n"
	checkGolden(t, "Partition stuck", FormatPartition(r), wantStuck)
}

func TestFormatRestartGolden(t *testing.T) {
	r := RestartResult{
		Params: RestartParams{N: 32, Waves: 2, PerWave: 4, DownFor: 10 * time.Second, Stagger: 2 * time.Second},
		Cells: []RestartCellResult{
			{Config: "SWIM", Restarts: 8, Rejoined: 8, FP: 2, FPHealthy: 1,
				RejoinConverge: stats.Summary{Median: 0.7, Max: 0.8}, MsgsSent: 7730, BytesSent: 800_000},
			{Config: "Lifeguard", Restarts: 8, Rejoined: 8,
				RejoinConverge: stats.Summary{Median: 0.73, Max: 0.8}, MsgsSent: 7710, BytesSent: 790_000},
		},
	}
	want := "" +
		"Rolling restart: N=32, 2 waves × 4 members, down 10s, stagger 2s\n" +
		"Config          Restarts  Rejoined   FP  FP- MedRejoin(s) MaxRejoin(s)       Msgs         MB\n" +
		"SWIM                   8         8    2    1         0.70         0.80       7730        0.8\n" +
		"Lifeguard              8         8    0    0         0.73         0.80       7710        0.8\n"
	checkGolden(t, "Restart", FormatRestart(r), want)
}
