package experiment

import (
	"time"

	"lifeguard/internal/metrics"
)

// Paper experiment constants (§V-D).
const (
	// DefaultN is the cluster size for Threshold/Interval experiments.
	DefaultN = 128

	// StressN is the cluster size for the Figure-1 scenario.
	StressN = 100

	// Quiesce is the settle time before anomalies start.
	Quiesce = 15 * time.Second

	// Horizon is the minimum experiment duration after start.
	Horizon = 120 * time.Second

	// StressHorizon is the Figure-1 workload duration.
	StressHorizon = 5 * time.Minute
)

// ThresholdParams parameterizes one Threshold experiment (§V-D1): a
// single set of C fully-correlated anomalies of duration D.
type ThresholdParams struct {
	// C is the number of concurrent anomalous members.
	C int

	// D is the anomaly duration.
	D time.Duration
}

// ThresholdResult holds the latency samples from one Threshold run.
type ThresholdResult struct {
	Params ThresholdParams

	// FirstDetect has, per anomalous member that was detected, the time
	// from anomaly start to the first dead event about it at any other
	// member.
	FirstDetect []time.Duration

	// FullDissem has, per anomalous member whose failure reached every
	// healthy member, the time from anomaly start until the last
	// healthy member raised the dead event.
	FullDissem []time.Duration

	// Detected and Undetected count anomalous members with/without a
	// first-detection sample (short anomalies are refuted before the
	// suspicion timeout and never become failures — by design).
	Detected, Undetected int
}

// RunThreshold executes one Threshold experiment.
func RunThreshold(cc ClusterConfig, p ThresholdParams) (ThresholdResult, error) {
	if cc.N == 0 {
		cc.N = DefaultN
	}
	c, err := NewCluster(cc)
	if err != nil {
		return ThresholdResult{}, err
	}
	defer c.Shutdown()
	if err := c.Start(Quiesce); err != nil {
		return ThresholdResult{}, err
	}

	anomalous := c.PickAnomalySet(p.C, cc.Seed+1)
	anomalyStart := c.Sched.Now()
	c.SetAnomalous(anomalous, true)
	c.Sched.RunFor(p.D)
	c.SetAnomalous(anomalous, false)

	// Run out the horizon (the paper runs until recovery or 120 s from
	// experiment start; detections happen well inside the horizon).
	remaining := Horizon - c.Elapsed()
	if remaining > 0 {
		c.Sched.RunFor(remaining)
	}

	res := ThresholdResult{Params: p}
	res.FirstDetect, res.FullDissem = detectionLatencies(
		c.Events.Events(), anomalous, c.allNames(), anomalyStart)
	res.Detected = len(res.FirstDetect)
	res.Undetected = p.C - res.Detected
	return res, nil
}

// allNames returns every member name.
func (c *Cluster) allNames() []string {
	names := make([]string, len(c.Nodes))
	for i, n := range c.Nodes {
		names[i] = n.Name()
	}
	return names
}

// detectionLatencies extracts first-detection and full-dissemination
// latencies for each anomalous member from the event log.
func detectionLatencies(events []metrics.Event, anomalous, all []string, start time.Time) (first, full []time.Duration) {
	anomalySet := toSet(anomalous)

	// firstAt[subject][observer] = first dead event time at observer.
	firstAt := make(map[string]map[string]time.Time, len(anomalous))
	for _, name := range anomalous {
		firstAt[name] = make(map[string]time.Time)
	}
	for _, ev := range events {
		if ev.Type != metrics.EventDead || ev.Time.Before(start) {
			continue
		}
		byObs, tracked := firstAt[ev.Subject]
		if !tracked || ev.Observer == ev.Subject {
			continue
		}
		if _, seen := byObs[ev.Observer]; !seen {
			byObs[ev.Observer] = ev.Time
		}
	}

	healthyCount := 0
	for _, name := range all {
		if _, bad := anomalySet[name]; !bad {
			healthyCount++
		}
	}

	for _, subject := range anomalous {
		byObs := firstAt[subject]
		if len(byObs) == 0 {
			continue
		}
		var earliest, latestHealthy time.Time
		healthySeen := 0
		for obs, t := range byObs {
			if earliest.IsZero() || t.Before(earliest) {
				earliest = t
			}
			if _, bad := anomalySet[obs]; !bad {
				healthySeen++
				if t.After(latestHealthy) {
					latestHealthy = t
				}
			}
		}
		first = append(first, earliest.Sub(start))
		if healthySeen == healthyCount {
			full = append(full, latestHealthy.Sub(start))
		}
	}
	return first, full
}

func toSet(names []string) map[string]struct{} {
	set := make(map[string]struct{}, len(names))
	for _, n := range names {
		set[n] = struct{}{}
	}
	return set
}

// IntervalParams parameterizes one Interval experiment (§V-D2): cycles
// of anomaly duration D separated by normal intervals I, repeated until
// the horizon.
type IntervalParams struct {
	// C is the number of concurrent anomalous members.
	C int

	// D is the duration of each anomalous period.
	D time.Duration

	// I is the normal-operation interval between anomalies.
	I time.Duration
}

// IntervalResult holds the false-positive and load metrics from one
// Interval run (§V-F1, §V-F3).
type IntervalResult struct {
	Params IntervalParams

	// FP counts false-positive failure events at any member: dead
	// events whose subject is not in the anomaly set.
	FP int

	// FPHealthy (the paper's FP-) counts false positives whose observer
	// is also outside the anomaly set.
	FPHealthy int

	// TruePositives counts dead events about anomalous members, for
	// context.
	TruePositives int

	// MsgsSent and BytesSent total the transport load over the whole
	// run.
	MsgsSent, BytesSent int64

	// Cycles is the number of anomaly periods executed.
	Cycles int
}

// RunInterval executes one Interval experiment.
func RunInterval(cc ClusterConfig, p IntervalParams) (IntervalResult, error) {
	if cc.N == 0 {
		cc.N = DefaultN
	}
	c, err := NewCluster(cc)
	if err != nil {
		return IntervalResult{}, err
	}
	defer c.Shutdown()
	if err := c.Start(Quiesce); err != nil {
		return IntervalResult{}, err
	}

	anomalous := c.PickAnomalySet(p.C, cc.Seed+1)
	anomalyStart := c.Sched.Now()

	res := IntervalResult{Params: p}
	// Cycle anomalies until at least Horizon has passed since the start
	// of the test; the test ends at the end of an anomalous period
	// (§V-D2).
	for {
		c.SetAnomalous(anomalous, true)
		c.Sched.RunFor(p.D)
		c.SetAnomalous(anomalous, false)
		res.Cycles++
		if c.Elapsed() >= Horizon {
			break
		}
		c.Sched.RunFor(p.I)
	}

	res.FP, res.FPHealthy, res.TruePositives = countFalsePositives(
		c.Events.Events(), anomalous, anomalyStart)
	total := c.Net.TotalStats()
	res.MsgsSent = total.MsgsSent
	res.BytesSent = total.BytesSent
	return res, nil
}

// countFalsePositives classifies dead events after start against the
// anomaly set.
func countFalsePositives(events []metrics.Event, anomalous []string, start time.Time) (fp, fpHealthy, truePos int) {
	anomalySet := toSet(anomalous)
	for _, ev := range events {
		if ev.Type != metrics.EventDead || ev.Time.Before(start) {
			continue
		}
		if _, bad := anomalySet[ev.Subject]; bad {
			truePos++
			continue
		}
		fp++
		if _, bad := anomalySet[ev.Observer]; !bad {
			fpHealthy++
		}
	}
	return fp, fpHealthy, truePos
}

// StressParams parameterizes the Figure-1 CPU-exhaustion scenario: a
// 100-member cluster where Stressed members run an extreme CPU workload
// for 5 minutes, modelled as a heavy block/wake duty cycle (the stress
// tool's 128 spinning processes starve the agent to ~1% of a core).
type StressParams struct {
	// Stressed is the number of members running the stress workload.
	Stressed int

	// BlockFor is the blocked part of the duty cycle. Defaults to 12 s —
	// long enough for a suspicion raised at one wake to outlive the next
	// (the paper's stress tool starves the agent to ~1% of one core).
	BlockFor time.Duration

	// WakeFor is the runnable window between blocks. Defaults to 120 ms
	// (≈1% duty cycle).
	WakeFor time.Duration

	// Duration is the workload duration. Defaults to StressHorizon.
	Duration time.Duration
}

// StressResult mirrors Figure 1's two metrics for one configuration.
type StressResult struct {
	Params StressParams

	// FP is the total number of false-positive failure events.
	FP int

	// FPHealthy is the number of false positives at healthy members.
	FPHealthy int
}

// RunStress executes one Figure-1 scenario run.
func RunStress(cc ClusterConfig, p StressParams) (StressResult, error) {
	if cc.N == 0 {
		cc.N = StressN
	}
	if p.BlockFor <= 0 {
		p.BlockFor = 12 * time.Second
	}
	if p.WakeFor <= 0 {
		p.WakeFor = 120 * time.Millisecond
	}
	if p.Duration <= 0 {
		p.Duration = StressHorizon
	}
	c, err := NewCluster(cc)
	if err != nil {
		return StressResult{}, err
	}
	defer c.Shutdown()
	if err := c.Start(Quiesce); err != nil {
		return StressResult{}, err
	}

	stressed := c.PickAnomalySet(p.Stressed, cc.Seed+1)
	workloadStart := c.Sched.Now()
	deadline := workloadStart.Add(p.Duration)
	for c.Sched.Now().Before(deadline) {
		c.SetAnomalous(stressed, true)
		c.Sched.RunFor(p.BlockFor)
		c.SetAnomalous(stressed, false)
		c.Sched.RunFor(p.WakeFor)
	}
	// Let in-flight suspicions resolve before counting, as the paper's
	// log analysis does (events are logged during and after the load).
	c.Sched.RunFor(30 * time.Second)

	res := StressResult{Params: p}
	res.FP, res.FPHealthy, _ = countFalsePositives(c.Events.Events(), stressed, workloadStart)
	return res, nil
}
