package experiment

import (
	"testing"
	"time"

	"lifeguard/internal/sim"
)

// smallWANParams is a 3-zone, 48-member configuration for quick tests.
func smallWANParams() WANParams {
	ms := time.Millisecond
	return WANParams{
		Zones: []WANZone{
			{Name: "us", Members: 16},
			{Name: "eu", Members: 16},
			{Name: "ap", Members: 16},
		},
		Intra: sim.LinkProfile{Base: ms, Jitter: 200 * time.Microsecond},
		Pairs: map[[2]string]sim.LinkProfile{
			{"us", "eu"}: {Base: 40 * ms, Jitter: 4 * ms},
			{"us", "ap"}: {Base: 80 * ms, Jitter: 8 * ms},
			{"eu", "ap"}: {Base: 120 * ms, Jitter: 12 * ms},
		},
		Converge:      2 * time.Minute,
		SamplePairs:   500,
		FailPerZone:   2,
		DetectHorizon: 60 * time.Second,
	}
}

// TestWANSmallCluster exercises the whole WAN pipeline at small scale:
// coordinates must beat 35% median error after two minutes, and every
// crashed member must be detected, in every zone.
func TestWANSmallCluster(t *testing.T) {
	if testing.Short() {
		t.Skip("WAN run")
	}
	res, err := RunWAN(
		ClusterConfig{Seed: 21, Protocol: ConfigLifeguard},
		smallWANParams(),
	)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", FormatWAN(res))
	if res.N != 48 {
		t.Fatalf("N = %d, want 48", res.N)
	}
	if res.PairsScored < 500 {
		t.Fatalf("scored %d pairs, want 500", res.PairsScored)
	}
	if res.CoordErr.Median > 0.35 {
		t.Errorf("median coordinate error %.1f%% > 35%%", res.CoordErr.Median*100)
	}
	if len(res.PerZone) != 3 {
		t.Fatalf("PerZone has %d entries, want 3", len(res.PerZone))
	}
	for _, z := range res.PerZone {
		if z.Failed != 2 {
			t.Errorf("zone %s: %d failed, want 2", z.Zone, z.Failed)
		}
		if z.Detected != z.Failed {
			t.Errorf("zone %s: detected %d of %d failures", z.Zone, z.Detected, z.Failed)
		}
	}
}

// TestWANDeterminism pins that same-seed WAN runs are bit-identical in
// their reported metrics (the simulation contract the whole evaluation
// rests on), and that a different seed actually changes the run.
func TestWANDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("WAN run")
	}
	p := smallWANParams()
	p.Converge = 30 * time.Second
	p.FailPerZone = 1
	p.DetectHorizon = 45 * time.Second

	run := func(seed int64) WANResult {
		res, err := RunWAN(ClusterConfig{Seed: seed, Protocol: ConfigLifeguard}, p)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(5), run(5)
	if a.CoordErr != b.CoordErr || a.MeanAbsErr != b.MeanAbsErr {
		t.Errorf("same-seed coordinate metrics diverged:\n%+v\n%+v", a.CoordErr, b.CoordErr)
	}
	if a.FP != b.FP || a.FPHealthy != b.FPHealthy {
		t.Errorf("same-seed FP counts diverged: %d/%d vs %d/%d", a.FP, a.FPHealthy, b.FP, b.FPHealthy)
	}
	for i := range a.PerZone {
		if a.PerZone[i] != b.PerZone[i] {
			t.Errorf("same-seed zone %s diverged:\n%+v\n%+v", a.PerZone[i].Zone, a.PerZone[i], b.PerZone[i])
		}
	}
	c := run(6)
	if a.CoordErr == c.CoordErr {
		t.Error("different seeds produced identical coordinate metrics (suspicious)")
	}
}

// TestWANLargeClusterConvergence is the acceptance bar for the WAN
// subsystem: a 512-member, 4-zone cluster must converge to ≤ 25%
// median relative RTT-estimation error against the simulator's ground
// truth.
func TestWANLargeClusterConvergence(t *testing.T) {
	if testing.Short() {
		t.Skip("large WAN run")
	}
	zones, pairs := DefaultWANZones(128)
	res, err := RunWAN(
		ClusterConfig{Seed: 31, Protocol: ConfigLifeguard},
		WANParams{
			Zones:         zones,
			Pairs:         pairs,
			Converge:      5 * time.Minute,
			SamplePairs:   2000,
			FailPerZone:   3,
			DetectHorizon: 90 * time.Second,
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", FormatWAN(res))
	if res.N != 512 {
		t.Fatalf("N = %d, want 512", res.N)
	}
	if res.CoordErr.Median > 0.25 {
		t.Errorf("median relative RTT-estimation error %.1f%% exceeds the 25%% acceptance bar",
			res.CoordErr.Median*100)
	}
	detected := 0
	for _, z := range res.PerZone {
		detected += z.Detected
	}
	if want := 4 * 3; detected < want-1 {
		t.Errorf("only %d of %d crashed members detected", detected, want)
	}
}
