package experiment

import (
	"testing"
	"time"

	"lifeguard/internal/sim"
)

// smallWANParams is a 3-zone, 48-member configuration for quick tests.
func smallWANParams() WANParams {
	ms := time.Millisecond
	return WANParams{
		Zones: []WANZone{
			{Name: "us", Members: 16},
			{Name: "eu", Members: 16},
			{Name: "ap", Members: 16},
		},
		Intra: sim.LinkProfile{Base: ms, Jitter: 200 * time.Microsecond},
		Pairs: map[[2]string]sim.LinkProfile{
			{"us", "eu"}: {Base: 40 * ms, Jitter: 4 * ms},
			{"us", "ap"}: {Base: 80 * ms, Jitter: 8 * ms},
			{"eu", "ap"}: {Base: 120 * ms, Jitter: 12 * ms},
		},
		Converge:      2 * time.Minute,
		SamplePairs:   500,
		FailPerZone:   2,
		DetectHorizon: 60 * time.Second,
	}
}

// TestWANSmallCluster exercises the whole WAN pipeline at small scale:
// coordinates must beat 35% median error after two minutes, and every
// crashed member must be detected, in every zone.
func TestWANSmallCluster(t *testing.T) {
	if testing.Short() {
		t.Skip("WAN run")
	}
	res, err := RunWAN(
		ClusterConfig{Seed: 21, Protocol: ConfigLifeguard},
		smallWANParams(),
	)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", FormatWAN(res))
	if res.N != 48 {
		t.Fatalf("N = %d, want 48", res.N)
	}
	if res.PairsScored < 500 {
		t.Fatalf("scored %d pairs, want 500", res.PairsScored)
	}
	if res.CoordErr.Median > 0.35 {
		t.Errorf("median coordinate error %.1f%% > 35%%", res.CoordErr.Median*100)
	}
	if len(res.PerZone) != 3 {
		t.Fatalf("PerZone has %d entries, want 3", len(res.PerZone))
	}
	for _, z := range res.PerZone {
		if z.Failed != 2 {
			t.Errorf("zone %s: %d failed, want 2", z.Zone, z.Failed)
		}
		if z.Detected != z.Failed {
			t.Errorf("zone %s: detected %d of %d failures", z.Zone, z.Detected, z.Failed)
		}
	}
}

// TestWANDeterminism pins that same-seed WAN runs are bit-identical in
// their reported metrics (the simulation contract the whole evaluation
// rests on), and that a different seed actually changes the run.
func TestWANDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("WAN run")
	}
	p := smallWANParams()
	p.Converge = 30 * time.Second
	p.FailPerZone = 1
	p.DetectHorizon = 45 * time.Second

	run := func(seed int64) WANResult {
		res, err := RunWAN(ClusterConfig{Seed: seed, Protocol: ConfigLifeguard}, p)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(5), run(5)
	if a.CoordErr != b.CoordErr || a.MeanAbsErr != b.MeanAbsErr {
		t.Errorf("same-seed coordinate metrics diverged:\n%+v\n%+v", a.CoordErr, b.CoordErr)
	}
	if a.FP != b.FP || a.FPHealthy != b.FPHealthy {
		t.Errorf("same-seed FP counts diverged: %d/%d vs %d/%d", a.FP, a.FPHealthy, b.FP, b.FPHealthy)
	}
	for i := range a.PerZone {
		if a.PerZone[i] != b.PerZone[i] {
			t.Errorf("same-seed zone %s diverged:\n%+v\n%+v", a.PerZone[i].Zone, a.PerZone[i], b.PerZone[i])
		}
	}
	c := run(6)
	if a.CoordErr == c.CoordErr {
		t.Error("different seeds produced identical coordinate metrics (suspicious)")
	}
}

// TestWANTelemetryDoesNotPerturb pins the telemetry determinism
// contract: enabling the cluster recorder must not change a single
// protocol-level metric — recording is write-only bookkeeping, never
// an RNG draw or a scheduled event — while the telemetry-only
// observed-RTT metrics appear.
func TestWANTelemetryDoesNotPerturb(t *testing.T) {
	if testing.Short() {
		t.Skip("WAN run")
	}
	p := smallWANParams()
	p.Converge = 30 * time.Second
	p.FailPerZone = 1
	p.DetectHorizon = 45 * time.Second

	run := func(telem bool) WANResult {
		res, err := RunWAN(ClusterConfig{Seed: 5, Protocol: ConfigLifeguard, Telemetry: telem}, p)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	off, on := run(false), run(true)
	if off.CoordErr != on.CoordErr || off.MeanAbsErr != on.MeanAbsErr {
		t.Errorf("telemetry changed coordinate metrics:\n%+v\n%+v", off.CoordErr, on.CoordErr)
	}
	if off.FP != on.FP || off.MsgsSent != on.MsgsSent || off.BytesSent != on.BytesSent {
		t.Errorf("telemetry changed load: FP %d/%d msgs %d/%d bytes %d/%d",
			off.FP, on.FP, off.MsgsSent, on.MsgsSent, off.BytesSent, on.BytesSent)
	}
	for i := range off.PerZone {
		if off.PerZone[i] != on.PerZone[i] {
			t.Errorf("telemetry changed zone %s:\n%+v\n%+v", off.PerZone[i].Zone, off.PerZone[i], on.PerZone[i])
		}
	}
	if off.ObsRTTSamples != 0 || len(off.ObsRTTPairs) != 0 {
		t.Errorf("telemetry-off run scored observed RTTs: %d samples", off.ObsRTTSamples)
	}
	if on.ObsRTTSamples == 0 || len(on.ObsRTTPairs) == 0 {
		t.Fatal("telemetry-on run recorded no RTT samples")
	}
	// Direct-path RTT medians should track the simulator's ground truth
	// well within a factor of two on every zone pair.
	for _, pe := range on.ObsRTTPairs {
		if pe.P50RelErr > 1.0 {
			t.Errorf("pair %s-%s: observed p50 off by %.0f%% from ground truth",
				pe.ZoneA, pe.ZoneB, pe.P50RelErr*100)
		}
	}
}

// TestWANObservedRTTDeterminism pins bitwise same-seed reproducibility
// of the telemetry-scored metrics. Buffer.ForEach visits partitions in
// randomized map order and float addition is not associative, so the
// scoring must fix its accumulation order — and never lose samples to
// partition eviction — for the CI determinism guard's byte-diff of
// records to hold across runs and processes.
func TestWANObservedRTTDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("WAN run")
	}
	p := smallWANParams()
	for i := range p.Zones {
		p.Zones[i].Members = 8
	}
	p.Converge = 20 * time.Second
	p.SamplePairs = 100
	p.FailPerZone = 0 // skip the detection phase

	run := func() WANResult {
		res, err := RunWAN(ClusterConfig{Seed: 9, Protocol: ConfigLifeguard, Telemetry: true}, p)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.ObsRTTSamples == 0 {
		t.Fatal("no RTT samples recorded")
	}
	if a.ObsRTTSamples != b.ObsRTTSamples {
		t.Errorf("obs_rtt_samples %d vs %d", a.ObsRTTSamples, b.ObsRTTSamples)
	}
	if a.ObsRTTP50ErrMedian != b.ObsRTTP50ErrMedian || a.ObsRTTP90ErrMedian != b.ObsRTTP90ErrMedian {
		t.Errorf("err medians differ: p50 %v/%v p90 %v/%v",
			a.ObsRTTP50ErrMedian, b.ObsRTTP50ErrMedian, a.ObsRTTP90ErrMedian, b.ObsRTTP90ErrMedian)
	}
	if len(a.ObsRTTPairs) != len(b.ObsRTTPairs) {
		t.Fatalf("pair counts differ: %d vs %d", len(a.ObsRTTPairs), len(b.ObsRTTPairs))
	}
	for i := range a.ObsRTTPairs {
		if a.ObsRTTPairs[i] != b.ObsRTTPairs[i] {
			t.Errorf("pair %d differs:\n%+v\n%+v", i, a.ObsRTTPairs[i], b.ObsRTTPairs[i])
		}
	}
}

// TestWANAdaptiveDeterminism pins same-seed reproducibility of the
// topology-aware configuration: the adaptive timeouts, relay selection
// and gossip bias must stay pure functions of the seed, including the
// counters that track them.
func TestWANAdaptiveDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("WAN run")
	}
	p := smallWANParams()
	p.Converge = 30 * time.Second
	p.FailPerZone = 1
	p.DetectHorizon = 45 * time.Second

	run := func() WANResult {
		res, err := RunWAN(ClusterConfig{Seed: 5, Protocol: ConfigLifeguard, TopologyAware: true}, p)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.CoordErr != b.CoordErr || a.CrossZoneDetect != b.CrossZoneDetect {
		t.Errorf("same-seed adaptive metrics diverged:\n%+v %+v\n%+v %+v",
			a.CoordErr, a.CrossZoneDetect, b.CoordErr, b.CrossZoneDetect)
	}
	if a.FP != b.FP || a.MsgsSent != b.MsgsSent || a.BytesSent != b.BytesSent {
		t.Errorf("same-seed load diverged: FP %d/%d msgs %d/%d bytes %d/%d",
			a.FP, b.FP, a.MsgsSent, b.MsgsSent, a.BytesSent, b.BytesSent)
	}
	if a.AdaptiveTimeouts != b.AdaptiveTimeouts || a.RelayNear != b.RelayNear ||
		a.RelayRandom != b.RelayRandom || a.GossipNear != b.GossipNear || a.GossipEscape != b.GossipEscape {
		t.Errorf("same-seed adaptive counters diverged:\n%+v\n%+v", a, b)
	}
	if a.AdaptiveTimeouts == 0 {
		t.Error("adaptive run took no adaptive timeouts")
	}
	for i := range a.PerZone {
		if a.PerZone[i] != b.PerZone[i] {
			t.Errorf("same-seed zone %s diverged:\n%+v\n%+v", a.PerZone[i].Zone, a.PerZone[i], b.PerZone[i])
		}
	}
}

// TestWANAdaptiveBeatsStatic is the acceptance bar for topology-aware
// failure detection: on the canonical 512-member, 4-zone WAN with the
// same seed and the same injected failures, the adaptive configuration
// must achieve a strictly lower median cross-zone detection latency
// than the static baseline, at equal or fewer false positives, without
// missing any failure.
func TestWANAdaptiveBeatsStatic(t *testing.T) {
	if testing.Short() {
		t.Skip("large WAN comparison run")
	}
	zones, pairs := DefaultWANZones(128)
	cmp, err := RunWANComparison(
		ClusterConfig{Seed: 31, Protocol: ConfigLifeguard},
		WANParams{
			Zones:    zones,
			Pairs:    pairs,
			Converge: 5 * time.Minute,
			// 8 crashes per zone = 32 latency samples, enough for the
			// median comparison to clear per-seed scheduling noise.
			SamplePairs:   2000,
			FailPerZone:   8,
			DetectHorizon: 90 * time.Second,
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", FormatWANComparison(cmp))
	if cmp.Static.N != 512 || cmp.Adaptive.N != 512 {
		t.Fatalf("N = %d/%d, want 512", cmp.Static.N, cmp.Adaptive.N)
	}
	for _, r := range []WANResult{cmp.Static, cmp.Adaptive} {
		detected, failed := 0, 0
		for _, z := range r.PerZone {
			detected += z.Detected
			failed += z.Failed
		}
		if detected != failed {
			t.Errorf("only %d of %d crashed members detected", detected, failed)
		}
	}
	if s, a := cmp.Static.CrossZoneDetect.Median, cmp.Adaptive.CrossZoneDetect.Median; a >= s {
		t.Errorf("adaptive cross-zone detection median %.2fs not better than static %.2fs", a, s)
	}
	if cmp.Adaptive.FP > cmp.Static.FP {
		t.Errorf("adaptive FP %d exceeds static %d", cmp.Adaptive.FP, cmp.Static.FP)
	}
	// The comparison is only meaningful if the extensions engaged.
	if cmp.Adaptive.AdaptiveTimeouts == 0 || cmp.Adaptive.GossipNear == 0 {
		t.Errorf("adaptive run barely engaged: %d adaptive timeouts, %d near gossip picks",
			cmp.Adaptive.AdaptiveTimeouts, cmp.Adaptive.GossipNear)
	}
	if cmp.Static.AdaptiveTimeouts != 0 {
		t.Errorf("static run took %d adaptive timeouts", cmp.Static.AdaptiveTimeouts)
	}
}

// TestWANLargeClusterConvergence is the acceptance bar for the WAN
// subsystem: a 512-member, 4-zone cluster must converge to ≤ 25%
// median relative RTT-estimation error against the simulator's ground
// truth.
func TestWANLargeClusterConvergence(t *testing.T) {
	if testing.Short() {
		t.Skip("large WAN run")
	}
	zones, pairs := DefaultWANZones(128)
	res, err := RunWAN(
		ClusterConfig{Seed: 31, Protocol: ConfigLifeguard},
		WANParams{
			Zones:         zones,
			Pairs:         pairs,
			Converge:      5 * time.Minute,
			SamplePairs:   2000,
			FailPerZone:   3,
			DetectHorizon: 90 * time.Second,
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", FormatWAN(res))
	if res.N != 512 {
		t.Fatalf("N = %d, want 512", res.N)
	}
	if res.CoordErr.Median > 0.25 {
		t.Errorf("median relative RTT-estimation error %.1f%% exceeds the 25%% acceptance bar",
			res.CoordErr.Median*100)
	}
	detected := 0
	for _, z := range res.PerZone {
		detected += z.Detected
	}
	if want := 4 * 3; detected < want-1 {
		t.Errorf("only %d of %d crashed members detected", detected, want)
	}
}
