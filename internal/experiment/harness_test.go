package experiment

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestRegistry pins the registered scenario set and lookup behaviour.
func TestRegistry(t *testing.T) {
	want := []string{
		"interval", "threshold", "tuning", "stress", "wan",
		"chaos", "churn", "partition", "rolling-restart",
	}
	names := ScenarioNames()
	if len(names) != len(want) {
		t.Fatalf("registry = %v, want %v", names, want)
	}
	for i, name := range want {
		if names[i] != name {
			t.Fatalf("registry = %v, want %v", names, want)
		}
		s, err := LookupScenario(name)
		if err != nil {
			t.Fatalf("lookup %s: %v", name, err)
		}
		if s.Name() != name || s.Description() == "" {
			t.Errorf("scenario %s: name %q, empty description %t", name, s.Name(), s.Description() == "")
		}
	}
	if _, err := LookupScenario("bogus"); err == nil {
		t.Error("unknown scenario accepted")
	}
}

// TestRunCellsOrderAndParallelism checks the executor returns outputs
// in canonical order regardless of completion order, and actually
// overlaps cell execution.
func TestRunCellsOrderAndParallelism(t *testing.T) {
	var inFlight, maxInFlight atomic.Int32
	cells := make([]Cell, 8)
	for i := range cells {
		i := i
		cells[i] = Cell{
			Label: fmt.Sprintf("cell-%d", i),
			Run: func() (any, error) {
				cur := inFlight.Add(1)
				for {
					prev := maxInFlight.Load()
					if cur <= prev || maxInFlight.CompareAndSwap(prev, cur) {
						break
					}
				}
				// Later cells finish first, so canonical-order output
				// must not mean completion order.
				time.Sleep(time.Duration(len(cells)-i) * 2 * time.Millisecond)
				inFlight.Add(-1)
				return i, nil
			},
		}
	}
	var calls int
	outs, err := runCells(cells, 4, func(done, total int) {
		calls++
		if total != len(cells) || done < 1 || done > total {
			t.Errorf("progress %d/%d out of range", done, total)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, out := range outs {
		if out.(int) != i {
			t.Fatalf("outs[%d] = %v, want %d (canonical order)", i, out, i)
		}
	}
	if calls != len(cells) {
		t.Errorf("progress called %d times, want %d", calls, len(cells))
	}
	if maxInFlight.Load() < 2 {
		t.Errorf("max in-flight cells = %d, want ≥ 2 under parallel execution", maxInFlight.Load())
	}
}

// TestRunCellsPropagatesErrors checks a failing cell surfaces its
// label and stops the run, serially and in parallel.
func TestRunCellsPropagatesErrors(t *testing.T) {
	boom := errors.New("boom")
	cells := []Cell{
		{Label: "ok", Run: func() (any, error) { return 1, nil }},
		{Label: "bad", Run: func() (any, error) { return nil, boom }},
		{Label: "ok2", Run: func() (any, error) { return 2, nil }},
	}
	for _, parallel := range []int{1, 3} {
		_, err := runCells(cells, parallel, nil)
		if err == nil || !errors.Is(err, boom) || !strings.Contains(err.Error(), "bad") {
			t.Errorf("parallel=%d: err = %v, want wrapped boom naming the cell", parallel, err)
		}
	}
}

// TestRunScenarioStampsRecords checks the harness stamps scale, seed,
// wall-clock duration and cell count onto every record.
func TestRunScenarioStampsRecords(t *testing.T) {
	if testing.Short() {
		t.Skip("partition run")
	}
	sc := Scale{Name: "tiny", PartitionN: 16}
	res, err := RunScenario("partition", RunOptions{Scale: sc, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 1 || len(res.Sections) != 1 {
		t.Fatalf("got %d records, %d sections", len(res.Records), len(res.Sections))
	}
	rec := res.Records[0]
	if rec.Scale != "tiny" || rec.Seed != 3 || rec.Cells != 1 || rec.Wall <= 0 {
		t.Errorf("record stamp = scale %q seed %d cells %d wall %g", rec.Scale, rec.Seed, rec.Cells, rec.Wall)
	}
	if rec.Experiment != "partition" || rec.Metrics["remerged"] != 1 {
		t.Errorf("partition record %+v", rec)
	}
	if _, err := RunScenario("bogus", RunOptions{}); err == nil {
		t.Error("unknown scenario accepted")
	}
}

// recordsJSON runs a scenario and returns its records as JSON with the
// wall-clock field — the single documented nondeterministic field —
// zeroed, so runs can be compared byte for byte.
func recordsJSON(t *testing.T, name string, opt RunOptions) []byte {
	t.Helper()
	res, err := RunScenario(name, opt)
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Records {
		res.Records[i].Wall = 0
	}
	b, err := json.Marshal(res.Records)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestChaosParallelMatchesSerial pins the harness determinism contract
// on the chaos matrix: -parallel N must produce byte-identical records
// to a serial run across the full scenario × configuration grid.
func TestChaosParallelMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("double chaos matrix run")
	}
	opt := RunOptions{
		Scale: Scale{Name: "tiny", ChaosN: 24, ChaosFaultFor: 12 * time.Second, ChaosSettle: 12 * time.Second},
		Seed:  5,
	}
	serial := recordsJSON(t, "chaos", opt)
	opt.Parallel = 4
	parallel := recordsJSON(t, "chaos", opt)
	if !bytes.Equal(serial, parallel) {
		t.Errorf("parallel chaos records differ from serial:\nserial:   %s\nparallel: %s", serial, parallel)
	}
}

// TestSweepParallelMatchesSerial pins the determinism contract on the
// protocol sweep: the interval sweep's per-cell seeds derive from
// canonical grid positions, so parallel and serial runs must emit
// byte-identical records.
func TestSweepParallelMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("double interval sweep run")
	}
	opt := RunOptions{
		Scale: Scale{
			Name: "tiny", N: 24,
			Cs:   []int{2},
			Ds:   []time.Duration{512 * time.Millisecond},
			Is:   []time.Duration{64 * time.Millisecond},
			Runs: 1,
		},
		Seed: 5,
	}
	serial := recordsJSON(t, "interval", opt)
	opt.Parallel = 5
	parallel := recordsJSON(t, "interval", opt)
	if !bytes.Equal(serial, parallel) {
		t.Errorf("parallel interval records differ from serial:\nserial:   %s\nparallel: %s", serial, parallel)
	}
}

// TestRestartParallelMatchesSerial pins the determinism contract on
// the rolling-restart scenario through the registry path.
func TestRestartParallelMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("double rolling-restart run")
	}
	opt := RunOptions{
		Scale: Scale{Name: "tiny", RestartN: 24, RestartWaves: 2},
		Seed:  5,
	}
	serial := recordsJSON(t, "rolling-restart", opt)
	opt.Parallel = 5
	parallel := recordsJSON(t, "rolling-restart", opt)
	if !bytes.Equal(serial, parallel) {
		t.Errorf("parallel rolling-restart records differ from serial:\nserial:   %s\nparallel: %s", serial, parallel)
	}
}

// TestSerialSweepMatchesScenario pins that the library's serial sweep
// API and the registry scenario produce identical aggregates — the
// refactor must not have forked the implementations.
func TestSerialSweepMatchesScenario(t *testing.T) {
	if testing.Short() {
		t.Skip("interval sweep run")
	}
	sc := Scale{
		Name: "tiny", N: 24,
		Cs:   []int{2},
		Ds:   []time.Duration{512 * time.Millisecond},
		Is:   []time.Duration{64 * time.Millisecond},
		Runs: 1,
	}
	direct, err := RunIntervalSweep(ConfigSWIM, sc, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunScenario("interval", RunOptions{Scale: sc, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	rec := res.Records[0] // Configurations[0] is SWIM
	if rec.Config != "SWIM" {
		t.Fatalf("first interval record is %q, want SWIM", rec.Config)
	}
	if got, want := rec.Metrics["fp"], float64(direct.FP); got != want {
		t.Errorf("scenario fp %g != direct sweep fp %g", got, want)
	}
	if got, want := rec.Metrics["msgs_sent"], float64(direct.MsgsSent); got != want {
		t.Errorf("scenario msgs_sent %g != direct sweep %g", got, want)
	}
}

// TestRunCellsProgressMonotone hammers the parallel executor with
// fast-finishing cells and checks the progress callback sees a strictly
// increasing done sequence ending at the total — the racing-workers
// regression: two workers finishing back to back must never report a
// stale lower count after a higher one.
func TestRunCellsProgressMonotone(t *testing.T) {
	const n = 200
	cells := make([]Cell, n)
	for i := range cells {
		i := i
		cells[i] = Cell{
			Label: fmt.Sprintf("cell-%d", i),
			Run:   func() (any, error) { return i, nil },
		}
	}
	for run := 0; run < 20; run++ {
		last := 0
		_, err := runCells(cells, 8, func(done, total int) {
			if total != n {
				t.Fatalf("total = %d, want %d", total, n)
			}
			if done <= last {
				t.Fatalf("progress not strictly increasing: %d after %d", done, last)
			}
			last = done
		})
		if err != nil {
			t.Fatal(err)
		}
		if last != n {
			t.Fatalf("final progress = %d, want %d", last, n)
		}
	}
}

// TestRunCellsProgressNotBlockedByCallback checks a slow progress
// callback does not serialize the workers: cells must still overlap
// while a callback sleeps.
func TestRunCellsProgressNotBlockedByCallback(t *testing.T) {
	var inFlight, maxInFlight atomic.Int32
	cells := make([]Cell, 16)
	for i := range cells {
		i := i
		cells[i] = Cell{
			Label: fmt.Sprintf("cell-%d", i),
			Run: func() (any, error) {
				cur := inFlight.Add(1)
				for {
					prev := maxInFlight.Load()
					if cur <= prev || maxInFlight.CompareAndSwap(prev, cur) {
						break
					}
				}
				time.Sleep(2 * time.Millisecond)
				inFlight.Add(-1)
				return i, nil
			},
		}
	}
	_, err := runCells(cells, 4, func(done, total int) {
		time.Sleep(5 * time.Millisecond) // a slow UI callback
	})
	if err != nil {
		t.Fatal(err)
	}
	if maxInFlight.Load() < 2 {
		t.Errorf("max in-flight = %d under a slow progress callback, want ≥ 2", maxInFlight.Load())
	}
}

// TestRunScenariosSharedPoolMatchesPerScenario pins the cross-scenario
// pool's determinism contract: running several scenarios through one
// shared worker pool — serially and at -parallel 4 — must produce
// records byte-identical to running each scenario on its own (wall_s
// zeroed, the single documented nondeterministic field).
func TestRunScenariosSharedPoolMatchesPerScenario(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-scenario runs")
	}
	names := []string{"partition", "rolling-restart", "chaos"}
	opt := RunOptions{
		Scale: Scale{
			Name: "tiny", PartitionN: 16,
			RestartN: 24, RestartWaves: 2,
			ChaosN: 24, ChaosFaultFor: 12 * time.Second, ChaosSettle: 12 * time.Second,
		},
		Seed: 5,
	}
	var want []byte
	for _, name := range names {
		want = append(want, recordsJSON(t, name, opt)...)
		want = append(want, '\n')
	}
	for _, parallel := range []int{0, 4} {
		opt.Parallel = parallel
		results, err := RunScenarios(names, opt)
		if err != nil {
			t.Fatal(err)
		}
		var got []byte
		for i, nr := range results {
			if nr.Name != names[i] {
				t.Fatalf("results[%d] = %q, want %q", i, nr.Name, names[i])
			}
			if nr.Cells == 0 || len(nr.Result.Records) == 0 {
				t.Fatalf("scenario %s: empty result (%d cells)", nr.Name, nr.Cells)
			}
			for r := range nr.Result.Records {
				if nr.Result.Records[r].Cells != nr.Cells {
					t.Errorf("scenario %s: record cells %d != %d", nr.Name, nr.Result.Records[r].Cells, nr.Cells)
				}
				nr.Result.Records[r].Wall = 0
			}
			b, err := json.Marshal(nr.Result.Records)
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, b...)
			got = append(got, '\n')
		}
		if !bytes.Equal(want, got) {
			t.Errorf("parallel=%d: shared-pool records differ from per-scenario runs:\nwant: %s\ngot:  %s", parallel, want, got)
		}
	}
}
