package experiment

import (
	"time"

	"lifeguard/internal/stats"
)

// Paper sweep grids (Tables II and III).
var (
	// PaperCs is the concurrent-anomaly counts tested (Tables II/III).
	PaperCs = []int{1, 4, 8, 12, 16, 20, 24, 28, 32}

	// PaperDs is the anomaly durations tested, in milliseconds.
	PaperDs = []time.Duration{
		128 * time.Millisecond,
		512 * time.Millisecond,
		2048 * time.Millisecond,
		8192 * time.Millisecond,
		16384 * time.Millisecond,
		32768 * time.Millisecond,
	}

	// PaperIs is the intervals between anomalies tested (Table III).
	PaperIs = []time.Duration{
		1 * time.Millisecond,
		4 * time.Millisecond,
		16 * time.Millisecond,
		64 * time.Millisecond,
		256 * time.Millisecond,
		1024 * time.Millisecond,
		4096 * time.Millisecond,
		16384 * time.Millisecond,
	}

	// PaperAlphas and PaperBetas are the suspicion tunings of §V-C.
	PaperAlphas = []float64{2, 4, 5}
	PaperBetas  = []float64{2, 4, 6}

	// PaperStressCounts is Figure 1's x-axis (number of stressed
	// members).
	PaperStressCounts = []int{1, 4, 8, 12, 16, 20, 24, 28, 32}
)

// Scale selects how much of the paper's combinatorial space a sweep
// covers. The full grid is 432 interval runs and 54 threshold runs per
// configuration per repetition; reduced scales keep every qualitative
// axis while trimming repetition.
type Scale struct {
	// Name labels the scale in reports.
	Name string

	// N is the cluster size.
	N int

	// Cs, Ds, Is restrict the parameter grids.
	Cs []int
	Ds []time.Duration
	Is []time.Duration

	// Runs is the number of repetitions per parameter combination.
	Runs int

	// StressCounts restricts Figure 1's x-axis.
	StressCounts []int

	// StressDuration shortens Figure 1's 5-minute workload.
	StressDuration time.Duration

	// WANMembersPerZone sizes the WAN experiment's four zones.
	WANMembersPerZone int

	// WANConverge is the WAN experiment's coordinate-convergence phase.
	WANConverge time.Duration

	// ChaosN sizes the chaos scenario matrix's cluster.
	ChaosN int

	// ChaosFaultFor and ChaosSettle size the chaos matrix's fault
	// window and post-window settle phase.
	ChaosFaultFor, ChaosSettle time.Duration

	// Alphas and Betas restrict the suspicion-tuning grid (Table VII).
	// Empty means the paper's full PaperAlphas × PaperBetas grid.
	Alphas, Betas []float64

	// ChurnN sizes the churn scenario's cluster and ChurnFor its churn
	// phase.
	ChurnN   int
	ChurnFor time.Duration

	// PartitionN sizes the partition/heal scenario's cluster.
	PartitionN int

	// RestartN sizes the rolling-restart scenario's cluster and
	// RestartWaves its wave count.
	RestartN, RestartWaves int
}

// TuningGrid returns the scale's suspicion-tuning axes, defaulting to
// the paper's §V-C grid when the scale does not restrict them.
func (sc Scale) TuningGrid() (alphas, betas []float64) {
	alphas, betas = sc.Alphas, sc.Betas
	if len(alphas) == 0 {
		alphas = PaperAlphas
	}
	if len(betas) == 0 {
		betas = PaperBetas
	}
	return alphas, betas
}

// ScaleSmoke is a minimal scale for tests: one cell per axis value that
// matters, single run.
var ScaleSmoke = Scale{
	Name:              "smoke",
	N:                 48,
	Cs:                []int{4, 12},
	Ds:                []time.Duration{2048 * time.Millisecond, 16384 * time.Millisecond},
	Is:                []time.Duration{64 * time.Millisecond, 1024 * time.Millisecond},
	Runs:              1,
	StressCounts:      []int{4, 16},
	StressDuration:    time.Minute,
	WANMembersPerZone: 24,
	WANConverge:       2 * time.Minute,
	ChaosN:            32,
	ChaosFaultFor:     24 * time.Second,
	ChaosSettle:       24 * time.Second,
	Alphas:            []float64{5},
	Betas:             []float64{2, 6},
	ChurnN:            192,
	ChurnFor:          10 * time.Second,
	PartitionN:        24,
	RestartN:          32,
	RestartWaves:      2,
}

// ScaleBench is the default benchmark scale: the full C axis (needed for
// Figures 2/3), representative D and I values, one run each.
var ScaleBench = Scale{
	Name:              "bench",
	N:                 DefaultN,
	Cs:                PaperCs,
	Ds:                []time.Duration{2048 * time.Millisecond, 16384 * time.Millisecond, 32768 * time.Millisecond},
	Is:                []time.Duration{64 * time.Millisecond, 1024 * time.Millisecond},
	Runs:              1,
	StressCounts:      PaperStressCounts,
	StressDuration:    StressHorizon,
	WANMembersPerZone: 128,
	WANConverge:       5 * time.Minute,
	ChaosN:            48,
	ChaosFaultFor:     60 * time.Second,
	ChaosSettle:       45 * time.Second,
	ChurnN:            512,
	ChurnFor:          30 * time.Second,
	PartitionN:        32,
	RestartN:          48,
	RestartWaves:      3,
}

// ScalePaper is the full grid of Tables II/III with the paper's 10
// repetitions. Expect hours of compute.
var ScalePaper = Scale{
	Name:              "paper",
	N:                 DefaultN,
	Cs:                PaperCs,
	Ds:                PaperDs,
	Is:                PaperIs,
	Runs:              10,
	StressCounts:      PaperStressCounts,
	StressDuration:    StressHorizon,
	WANMembersPerZone: 256,
	WANConverge:       10 * time.Minute,
	ChaosN:            64,
	ChaosFaultFor:     2 * time.Minute,
	ChaosSettle:       time.Minute,
	ChurnN:            DefaultChurnN,
	ChurnFor:          time.Minute,
	PartitionN:        64,
	RestartN:          64,
	RestartWaves:      4,
}

// Progress receives sweep progress callbacks (done and total runs).
// It may be nil.
type Progress func(done, total int)

// IntervalSweepResult aggregates Interval runs for one configuration:
// the material for Table IV (FP totals), Table VI (message load) and
// Figures 2/3 (per-C breakdown).
type IntervalSweepResult struct {
	Config ProtocolConfig

	// FP and FPHealthy total false positives across the sweep.
	FP, FPHealthy int

	// MsgsSent and BytesSent total transport load across the sweep.
	MsgsSent, BytesSent int64

	// Runs is the number of experiments aggregated.
	Runs int

	// ByC breaks totals down by concurrent-anomaly count (Figures 2/3).
	ByC map[int]*IntervalCell
}

// IntervalCell is the per-C aggregate of an interval sweep.
type IntervalCell struct {
	// FP and FPHealthy total false positives at this concurrency.
	FP, FPHealthy int

	// Runs is the number of experiments at this concurrency.
	Runs int
}

// intervalPoints enumerates the Interval grid of a scale in canonical
// (C-major) order. The index of a point is its seed-derivation index.
func intervalPoints(sc Scale) []IntervalParams {
	points := make([]IntervalParams, 0, len(sc.Cs)*len(sc.Ds)*len(sc.Is)*sc.Runs)
	for _, c := range sc.Cs {
		for _, d := range sc.Ds {
			for _, i := range sc.Is {
				for run := 0; run < sc.Runs; run++ {
					points = append(points, IntervalParams{C: c, D: d, I: i})
				}
			}
		}
	}
	return points
}

// intervalSeed derives the cell seed for the idx-th point of an
// Interval grid. The formula is part of the record trajectory: changing
// it re-seeds every published interval number.
func intervalSeed(base int64, idx int) int64 { return base + int64(idx)*1000003 + 7 }

// aggregateInterval folds one configuration's per-point Interval
// results (in canonical grid order) into the sweep aggregate.
func aggregateInterval(proto ProtocolConfig, points []IntervalParams, results []IntervalResult) IntervalSweepResult {
	res := IntervalSweepResult{Config: proto, ByC: make(map[int]*IntervalCell)}
	for i, r := range results {
		cell := res.ByC[points[i].C]
		if cell == nil {
			cell = &IntervalCell{}
			res.ByC[points[i].C] = cell
		}
		res.FP += r.FP
		res.FPHealthy += r.FPHealthy
		res.MsgsSent += r.MsgsSent
		res.BytesSent += r.BytesSent
		res.Runs++
		cell.FP += r.FP
		cell.FPHealthy += r.FPHealthy
		cell.Runs++
	}
	return res
}

// RunIntervalSweep runs the Interval grid for one configuration.
func RunIntervalSweep(proto ProtocolConfig, sc Scale, baseSeed int64, progress Progress) (IntervalSweepResult, error) {
	points := intervalPoints(sc)
	results := make([]IntervalResult, len(points))
	for idx, p := range points {
		r, err := RunInterval(
			ClusterConfig{N: sc.N, Seed: intervalSeed(baseSeed, idx), Protocol: proto}, p)
		if err != nil {
			return IntervalSweepResult{Config: proto}, err
		}
		results[idx] = r
		if progress != nil {
			progress(idx+1, len(points))
		}
	}
	return aggregateInterval(proto, points, results), nil
}

// ThresholdSweepResult aggregates Threshold runs for one configuration:
// the material for Table V.
type ThresholdSweepResult struct {
	Config ProtocolConfig

	// FirstDetect and FullDissem are percentile summaries over all
	// latency samples, in seconds.
	FirstDetect, FullDissem stats.Summary

	// Detected and Undetected count anomalies that did / did not become
	// failures (short anomalies refute in time by design).
	Detected, Undetected int

	// Runs is the number of experiments aggregated.
	Runs int
}

// thresholdPoints enumerates the Threshold grid of a scale in canonical
// (C-major) order. The index of a point is its seed-derivation index.
func thresholdPoints(sc Scale) []ThresholdParams {
	points := make([]ThresholdParams, 0, len(sc.Cs)*len(sc.Ds)*sc.Runs)
	for _, c := range sc.Cs {
		for _, d := range sc.Ds {
			for run := 0; run < sc.Runs; run++ {
				points = append(points, ThresholdParams{C: c, D: d})
			}
		}
	}
	return points
}

// thresholdSeed derives the cell seed for the idx-th point of a
// Threshold grid.
func thresholdSeed(base int64, idx int) int64 { return base + int64(idx)*999983 + 13 }

// aggregateThreshold folds one configuration's per-point Threshold
// results (in canonical grid order) into the sweep aggregate.
func aggregateThreshold(proto ProtocolConfig, results []ThresholdResult) ThresholdSweepResult {
	res := ThresholdSweepResult{Config: proto}
	var first, full []time.Duration
	for _, r := range results {
		first = append(first, r.FirstDetect...)
		full = append(full, r.FullDissem...)
		res.Detected += r.Detected
		res.Undetected += r.Undetected
		res.Runs++
	}
	res.FirstDetect = stats.Summarize(stats.DurationsToSeconds(first))
	res.FullDissem = stats.Summarize(stats.DurationsToSeconds(full))
	return res
}

// RunThresholdSweep runs the Threshold grid for one configuration.
func RunThresholdSweep(proto ProtocolConfig, sc Scale, baseSeed int64, progress Progress) (ThresholdSweepResult, error) {
	points := thresholdPoints(sc)
	results := make([]ThresholdResult, len(points))
	for idx, p := range points {
		r, err := RunThreshold(
			ClusterConfig{N: sc.N, Seed: thresholdSeed(baseSeed, idx), Protocol: proto}, p)
		if err != nil {
			return ThresholdSweepResult{Config: proto}, err
		}
		results[idx] = r
		if progress != nil {
			progress(idx+1, len(points))
		}
	}
	return aggregateThreshold(proto, results), nil
}

// StressSweepResult aggregates the Figure-1 scenario for one
// configuration: FP and FP⁻ per stressed-member count.
type StressSweepResult struct {
	Config ProtocolConfig

	// ByCount maps stressed-member count to results.
	ByCount map[int]StressResult
}

// stressCounts returns the scale's Figure-1 x-axis, defaulting to the
// paper's counts.
func stressCounts(sc Scale) []int {
	if len(sc.StressCounts) == 0 {
		return PaperStressCounts
	}
	return sc.StressCounts
}

// stressSeed derives the cell seed for the i-th stressed-member count.
func stressSeed(base int64, i int) int64 { return base + int64(i)*104729 }

// RunStressSweep runs the Figure-1 scenario across stressed-member
// counts for one configuration.
func RunStressSweep(proto ProtocolConfig, sc Scale, baseSeed int64, progress Progress) (StressSweepResult, error) {
	res := StressSweepResult{Config: proto, ByCount: make(map[int]StressResult)}
	counts := stressCounts(sc)
	for i, count := range counts {
		r, err := RunStress(
			ClusterConfig{N: StressN, Seed: stressSeed(baseSeed, i), Protocol: proto},
			StressParams{Stressed: count, Duration: sc.StressDuration},
		)
		if err != nil {
			return res, err
		}
		res.ByCount[count] = r
		if progress != nil {
			progress(i+1, len(counts))
		}
	}
	return res, nil
}

// TuningCell is one (α, β) cell of Table VII: Lifeguard's metrics as a
// percentage of the SWIM baseline from the same sweep grids.
type TuningCell struct {
	Alpha, Beta float64

	// Latency ratios (% of SWIM): median/99/99.9 of first detection and
	// full dissemination.
	MedFirst, MedFull, P99First, P99Full, P999First, P999Full float64

	// False positive ratios (% of SWIM).
	FP, FPHealthy float64
}

// TuningSweepResult is Table VII: one cell per (α, β) pair.
type TuningSweepResult struct {
	// Baseline summarizes the SWIM runs the percentages refer to.
	BaselineThreshold ThresholdSweepResult
	BaselineInterval  IntervalSweepResult

	// Cells holds one entry per (α, β), in sweep order.
	Cells []TuningCell
}

// RunTuningSweep reproduces Table VII: Lifeguard at each (α, β) against
// a SWIM baseline over the same grids.
func RunTuningSweep(alphas, betas []float64, sc Scale, baseSeed int64, progress Progress) (TuningSweepResult, error) {
	var res TuningSweepResult
	baseT, err := RunThresholdSweep(ConfigSWIM, sc, baseSeed, nil)
	if err != nil {
		return res, err
	}
	baseI, err := RunIntervalSweep(ConfigSWIM, sc, baseSeed, nil)
	if err != nil {
		return res, err
	}
	res.BaselineThreshold = baseT
	res.BaselineInterval = baseI

	total := len(alphas) * len(betas)
	done := 0
	for _, alpha := range alphas {
		for _, beta := range betas {
			proto := ConfigLifeguard
			proto.Alpha, proto.Beta = alpha, beta
			t, err := RunThresholdSweep(proto, sc, baseSeed, nil)
			if err != nil {
				return res, err
			}
			iv, err := RunIntervalSweep(proto, sc, baseSeed, nil)
			if err != nil {
				return res, err
			}
			res.Cells = append(res.Cells, tuningCell(alpha, beta, t, baseT, iv, baseI))
			done++
			if progress != nil {
				progress(done, total)
			}
		}
	}
	return res, nil
}

// tuningCell scores one (α, β) pair's sweeps against the SWIM baseline
// sweeps as Table VII percentages.
func tuningCell(alpha, beta float64, t, baseT ThresholdSweepResult, iv, baseI IntervalSweepResult) TuningCell {
	return TuningCell{
		Alpha:     alpha,
		Beta:      beta,
		MedFirst:  stats.PercentOf(t.FirstDetect.Median, baseT.FirstDetect.Median),
		MedFull:   stats.PercentOf(t.FullDissem.Median, baseT.FullDissem.Median),
		P99First:  stats.PercentOf(t.FirstDetect.P99, baseT.FirstDetect.P99),
		P99Full:   stats.PercentOf(t.FullDissem.P99, baseT.FullDissem.P99),
		P999First: stats.PercentOf(t.FirstDetect.P999, baseT.FirstDetect.P999),
		P999Full:  stats.PercentOf(t.FullDissem.P999, baseT.FullDissem.P999),
		FP:        stats.PercentOf(float64(iv.FP), float64(baseI.FP)),
		FPHealthy: stats.PercentOf(float64(iv.FPHealthy), float64(baseI.FPHealthy)),
	}
}
