// Package experiment implements the paper's evaluation harness (§V): a
// simulated cluster of protocol nodes with anomaly injection, the
// Threshold and Interval experiments, the Figure-1 CPU-exhaustion
// scenario, and the parameter sweeps behind every table and figure.
package experiment

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"lifeguard/internal/core"
	"lifeguard/internal/metrics"
	"lifeguard/internal/sim"
	"lifeguard/internal/telemetry"
)

// ProtocolConfig selects a row of the paper's Table I plus the tunable
// suspicion parameters of §V-C.
type ProtocolConfig struct {
	// Name labels the configuration in reports ("SWIM", "Lifeguard", …).
	Name string

	// LHAProbe, LHASuspicion and BuddySystem enable the respective
	// Lifeguard components.
	LHAProbe     bool
	LHASuspicion bool
	BuddySystem  bool

	// Alpha and Beta tune the suspicion timeout (§V-C). The SWIM
	// baseline is α = 5, β = 1 (fixed timeout).
	Alpha, Beta float64
}

// The five configurations of Table I. Lifeguard rows default to the
// paper's headline tuning α = 5, β = 6.
var (
	ConfigSWIM         = ProtocolConfig{Name: "SWIM", Alpha: 5, Beta: 1}
	ConfigLHAProbe     = ProtocolConfig{Name: "LHA-Probe", LHAProbe: true, Alpha: 5, Beta: 1}
	ConfigLHASuspicion = ProtocolConfig{Name: "LHA-Suspicion", LHASuspicion: true, Alpha: 5, Beta: 6}
	ConfigBuddy        = ProtocolConfig{Name: "Buddy System", BuddySystem: true, Alpha: 5, Beta: 1}
	ConfigLifeguard    = ProtocolConfig{Name: "Lifeguard", LHAProbe: true, LHASuspicion: true, BuddySystem: true, Alpha: 5, Beta: 6}
)

// Configurations lists Table I in the paper's order.
var Configurations = []ProtocolConfig{
	ConfigSWIM,
	ConfigLHAProbe,
	ConfigLHASuspicion,
	ConfigBuddy,
	ConfigLifeguard,
}

// WithTuning returns a copy of p with the given suspicion tuning.
func (p ProtocolConfig) WithTuning(alpha, beta float64) ProtocolConfig {
	p.Alpha, p.Beta = alpha, beta
	p.Name = fmt.Sprintf("%s(α=%g,β=%g)", p.Name, alpha, beta)
	return p
}

// apply copies the protocol selection onto a node config.
func (p ProtocolConfig) apply(cfg *core.Config) {
	cfg.LHAProbe = p.LHAProbe
	cfg.LHASuspicion = p.LHASuspicion
	cfg.BuddySystem = p.BuddySystem
	cfg.SuspicionAlpha = p.Alpha
	beta := p.Beta
	if beta < 1 {
		beta = 1
	}
	cfg.SuspicionBeta = beta
}

// ClusterConfig sizes and seeds a simulated cluster.
type ClusterConfig struct {
	// N is the number of members (128 in the paper's §V experiments,
	// 100 in Figure 1).
	N int

	// Seed makes the run deterministic: it seeds the network and every
	// node's RNG.
	Seed int64

	// Protocol selects the Lifeguard components and suspicion tuning.
	Protocol ProtocolConfig

	// Net overrides simulator options (latency, loss, queue capacity,
	// service time). Zero values take the simulator defaults.
	Net sim.Options

	// SuspicionK overrides LHA-Suspicion's re-gossip factor K for
	// ablation studies. Zero keeps the paper's default (3).
	SuspicionK int

	// MaxLHM overrides the Local Health Multiplier saturation limit S
	// for ablation studies. Zero keeps the paper's default (8).
	MaxLHM int

	// RandomProbeSelection replaces round-robin probe target selection
	// with uniform random selection, the strawman SWIM rejects
	// (§III-A). For ablation studies.
	RandomProbeSelection bool

	// TopologyAware enables the coordinate-driven protocol extensions
	// on every member: RTT-adaptive probe timeouts with early round
	// close, coordinate-aware indirect-probe relay selection, and
	// latency-biased gossip with a cross-cluster escape fraction. The
	// WAN comparison experiment flips this between its two runs.
	TopologyAware bool

	// Telemetry attaches a shared telemetry recorder to every member:
	// origin-attributed direct-ack RTT samples flow into Cluster.Telem,
	// which the WAN scenario scores against the simulator's ground-truth
	// RTTs. Recording never draws from a node's RNG or schedules clock
	// events, so enabling it leaves the simulation's event ordering — and
	// its same-seed records — unchanged.
	Telemetry bool
}

// Cluster is a simulated group of protocol nodes with anomaly gates.
type Cluster struct {
	Sched *sim.Scheduler
	Net   *sim.Network
	Nodes []*core.Node

	// Events collects membership events from every member, the raw
	// material for the paper's false-positive and latency metrics.
	Events *metrics.EventLog

	// Sink aggregates protocol counters across every member (probe
	// rounds, adaptive-timeout usage, relay and gossip pick counts,
	// coordinate updates, …), cluster-wide.
	Sink *metrics.MemSink

	// Telem is the shared telemetry recorder every member reports
	// origin-attributed RTT samples into; nil unless
	// ClusterConfig.Telemetry was set.
	Telem *telemetry.ClusterRecorder

	cc      ClusterConfig
	names   map[string]*core.Node
	started time.Time

	// addSeq counts addNode calls for RNG-seed derivation. Unlike
	// len(Nodes) it never decreases, so a member added after a
	// RemoveNode cannot collide with a live member's RNG stream.
	addSeq int64
}

// eventRecorder logs one node's membership events with observer
// attribution.
type eventRecorder struct {
	log      *metrics.EventLog
	clock    interface{ Now() time.Time }
	observer string
}

func (r eventRecorder) record(t metrics.EventType, m core.Member) {
	r.log.Append(metrics.Event{
		Time:        r.clock.Now(),
		Observer:    r.observer,
		Subject:     m.Name,
		Type:        t,
		Incarnation: m.Incarnation,
	})
}

func (r eventRecorder) NotifyJoin(m core.Member)    { r.record(metrics.EventJoin, m) }
func (r eventRecorder) NotifySuspect(m core.Member) { r.record(metrics.EventSuspect, m) }
func (r eventRecorder) NotifyAlive(m core.Member)   { r.record(metrics.EventAlive, m) }
func (r eventRecorder) NotifyDead(m core.Member)    { r.record(metrics.EventDead, m) }
func (r eventRecorder) NotifyUpdate(m core.Member)  {}

// NodeName returns the canonical member name for index i.
func NodeName(i int) string { return fmt.Sprintf("node-%03d", i) }

// NewCluster builds a cluster; call Start to boot it.
func NewCluster(cc ClusterConfig) (*Cluster, error) {
	if cc.N < 2 {
		return nil, fmt.Errorf("experiment: cluster needs at least 2 members, got %d", cc.N)
	}
	sched := sim.NewScheduler(time.Unix(0, 0))
	netOpts := cc.Net
	netOpts.Seed = cc.Seed
	network := sim.NewNetwork(sched, netOpts)

	c := &Cluster{
		Sched:  sched,
		Net:    network,
		Events: metrics.NewEventLog(),
		Sink:   metrics.NewMemSink(),
		cc:     cc,
		names:  make(map[string]*core.Node, cc.N),
	}
	if cc.Telemetry {
		// Scored runs must retain a same-seed byte-identical sample set:
		// partition eviction picks a victim inside one lock stripe, and
		// stripe assignment hashes with a process-local seed, so any
		// eviction makes which samples survive process-dependent. Size
		// the recorder so eviction provably cannot occur — one stripe
		// (the simulation writes single-threaded, so striping buys
		// nothing) makes the partition bound exact, and one run-spanning
		// epoch caps the distinct (origin, peer, epoch) keys at
		// N·(N−1) < N². scoreObservedRTT fails the run if an eviction
		// ever fires anyway.
		telem, err := telemetry.NewClusterRecorder(telemetry.ClusterConfig{
			Now:           network.Clock().Now,
			EpochInterval: math.MaxInt64,
			MaxPartitions: cc.N * cc.N,
			Stripes:       1,
		})
		if err != nil {
			return nil, fmt.Errorf("experiment: telemetry: %w", err)
		}
		c.Telem = telem
	}

	for i := 0; i < cc.N; i++ {
		if _, err := c.addNode(NodeName(i)); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// addNode builds one protocol node, attaches it to the network, and
// registers it with the cluster. The RNG seed derives from the node's
// position in the join order, so runs stay deterministic even when
// members are added mid-experiment (churn scenarios).
func (c *Cluster) addNode(name string) (*core.Node, error) {
	cfg := core.DefaultConfig(name)
	c.cc.Protocol.apply(cfg)
	if c.cc.SuspicionK > 0 {
		cfg.SuspicionK = c.cc.SuspicionK
	}
	if c.cc.MaxLHM > 0 {
		cfg.MaxLHM = c.cc.MaxLHM
	}
	cfg.RandomProbeSelection = c.cc.RandomProbeSelection
	if c.cc.TopologyAware {
		cfg.AdaptiveProbeTimeout = true
		cfg.CoordinateRelaySelection = true
		cfg.LatencyAwareGossip = true
	}
	// The per-member clock lets fault schedules degrade this member's
	// timers; with no degradation installed it is identical to the
	// shared network clock.
	cfg.Clock = c.Net.NodeClock(name)
	c.addSeq++
	cfg.RNG = rand.New(rand.NewSource(c.cc.Seed*7919 + c.addSeq))
	cfg.Events = eventRecorder{log: c.Events, clock: c.Net.Clock(), observer: name}
	cfg.Metrics = c.Sink
	if c.Telem != nil {
		cfg.Telemetry = c.Telem.For(name)
	}

	var node *core.Node
	port, err := c.Net.Attach(name, func(from string, payload []byte) {
		node.HandlePacket(from, payload)
	})
	if err != nil {
		return nil, fmt.Errorf("experiment: attach %s: %w", name, err)
	}
	cfg.Transport = port
	gate := name
	net := c.Net
	cfg.Blocked = func() bool { return net.Gated(gate) }

	node, err = core.New(cfg)
	if err != nil {
		return nil, fmt.Errorf("experiment: new node %s: %w", name, err)
	}
	c.Net.OnWake(name, node.Wake)
	c.Nodes = append(c.Nodes, node)
	c.names[name] = node
	return node, nil
}

// Start boots every member, joins them through member 0, and runs the
// quiesce period (15 s in the paper).
//
// Joins are staggered across a short bootstrap window scaled to the
// cluster size: a simultaneous join storm at thousands of members
// overflows the seed member's inbound queue (QueueCap tail-drop) and
// leaves the dropped joiners permanently isolated — they know no peer to
// retry through. Real clusters bootstrap over seconds, not an instant.
// At the paper's double-digit-to-128 sizes the window is sub-second, so
// the §V experiments are unaffected.
func (c *Cluster) Start(quiesce time.Duration) error {
	c.started = c.Sched.Now()
	for _, n := range c.Nodes {
		if err := n.Start(); err != nil {
			return fmt.Errorf("experiment: start %s: %w", n.Name(), err)
		}
	}
	seed := c.Nodes[0].Addr()
	window := bootstrapWindow(len(c.Nodes))
	for i, n := range c.Nodes[1:] {
		node := n
		offset := window * time.Duration(i) / time.Duration(len(c.Nodes)-1)
		if offset <= 0 {
			if err := node.Join(seed); err != nil {
				return fmt.Errorf("experiment: join %s: %w", node.Name(), err)
			}
			continue
		}
		c.Sched.ScheduleAt(c.started.Add(offset), func() { _ = node.Join(seed) })
	}
	c.Sched.RunFor(quiesce)
	return nil
}

// bootstrapWindow is the join-stagger span for an n-member cluster: 5 ms
// per member, capped at 10 s. Sub-second at the paper's sizes; long
// enough at thousands of members to keep the seed's inbound queue from
// overflowing.
func bootstrapWindow(n int) time.Duration {
	w := time.Duration(n) * 5 * time.Millisecond
	if w > 10*time.Second {
		w = 10 * time.Second
	}
	return w
}

// RemoveNode shuts the named member down, detaches it from the network
// and forgets it, so a fresh member can later be added under the same
// name (the rolling-restart scenario's process restart). Removing an
// unknown name is a no-op.
func (c *Cluster) RemoveNode(name string) {
	node, ok := c.names[name]
	if !ok {
		return
	}
	node.Shutdown()
	c.Net.Detach(name)
	delete(c.names, name)
	for i, n := range c.Nodes {
		if n == node {
			c.Nodes = append(c.Nodes[:i], c.Nodes[i+1:]...)
			break
		}
	}
}

// Shutdown stops every member.
func (c *Cluster) Shutdown() {
	for _, n := range c.Nodes {
		n.Shutdown()
	}
}

// Converged reports whether every member sees every member alive.
func (c *Cluster) Converged() bool {
	for _, n := range c.Nodes {
		alive := 0
		for _, m := range n.Members() {
			if m.State == core.StateAlive {
				alive++
			}
		}
		if alive != len(c.Nodes) {
			return false
		}
	}
	return true
}

// SetAnomalous gates or releases the named members in lock step, the
// paper's synchronized anomaly model (§V-D, footnote 6).
func (c *Cluster) SetAnomalous(names []string, anomalous bool) {
	for _, name := range names {
		c.Net.SetGated(name, anomalous)
	}
}

// PickAnomalySet selects count members uniformly at random using the
// given seed, excluding member 0 (the join seed) to keep runs comparable.
func (c *Cluster) PickAnomalySet(count int, seed int64) []string {
	rng := rand.New(rand.NewSource(seed))
	idx := rng.Perm(len(c.Nodes) - 1)
	if count > len(idx) {
		count = len(idx)
	}
	names := make([]string, 0, count)
	for _, i := range idx[:count] {
		names = append(names, NodeName(i+1))
	}
	return names
}

// Elapsed returns virtual time since Start.
func (c *Cluster) Elapsed() time.Duration {
	return c.Sched.Now().Sub(c.started)
}
