package experiment

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"lifeguard/internal/metrics"
	"lifeguard/internal/stats"
)

// The rolling-restart scenario models the most common planned
// disruption in real deployments: members leave and rejoin in staggered
// waves (a rolling deploy or kernel-upgrade cycle). Each restarted
// member announces a graceful leave, goes dark for a down window, and
// then rejoins under the same name — forcing the incarnation-refutation
// machinery to revive it from its own dead record. The scenario is
// scored per Table I configuration on false positives (dead
// declarations not explained by a departure), re-join convergence time
// (how long until long-lived observers see the restarted member alive
// again), and bandwidth.

// RestartParams parameterizes one rolling-restart run. Zero-valued
// fields take the documented defaults.
type RestartParams struct {
	// N is the cluster size. Defaults to 48.
	N int

	// Waves is the number of restart waves. Defaults to 3.
	Waves int

	// PerWave is the number of members restarted in each wave. Each
	// member restarts at most once across the run. Defaults to N/8 (at
	// least 1).
	PerWave int

	// Stagger is the span over which one wave's leaves are spread (a
	// rolling deploy takes machines down one after another, not
	// simultaneously). Defaults to 2 s.
	Stagger time.Duration

	// DownFor is each member's dark window between its leave
	// announcement and its rejoin. Defaults to 10 s.
	DownFor time.Duration

	// WaveEvery is the interval between consecutive wave starts.
	// Defaults to DownFor + Stagger + 8 s, so a wave's rejoins settle
	// before the next wave begins.
	WaveEvery time.Duration

	// LeaveLinger is how long a leaving member keeps running after its
	// announcement so the leave can disseminate. Defaults to 1 s.
	LeaveLinger time.Duration

	// Settle is how long the run continues after the last wave's
	// rejoins, for views to converge. Defaults to 30 s.
	Settle time.Duration

	// Observers is the number of long-lived (never restarted) members
	// sampled for the re-join convergence metric. Defaults to 8.
	Observers int

	// Configs is the protocol-ablation axis. Empty runs Configurations
	// (the paper's Table I).
	Configs []ProtocolConfig
}

// withDefaults resolves zero-valued parameters.
func (p RestartParams) withDefaults() RestartParams {
	if p.N == 0 {
		p.N = 48
	}
	if p.Waves <= 0 {
		p.Waves = 3
	}
	if p.PerWave <= 0 {
		p.PerWave = p.N / 8
		if p.PerWave < 1 {
			p.PerWave = 1
		}
	}
	if p.Stagger <= 0 {
		p.Stagger = 2 * time.Second
	}
	if p.DownFor <= 0 {
		p.DownFor = 10 * time.Second
	}
	if p.WaveEvery <= 0 {
		p.WaveEvery = p.DownFor + p.Stagger + 8*time.Second
	}
	if p.LeaveLinger <= 0 {
		p.LeaveLinger = time.Second
	}
	if p.Settle <= 0 {
		p.Settle = 30 * time.Second
	}
	if p.Observers <= 0 {
		p.Observers = 8
	}
	if len(p.Configs) == 0 {
		p.Configs = Configurations
	}
	return p
}

// RestartCellResult is one configuration's rolling-restart score. It
// contains no pointers, slices or maps, so whole-struct equality is
// the determinism check.
type RestartCellResult struct {
	// Config identifies the protocol configuration.
	Config string

	// Restarts is the number of members restarted (Waves × PerWave).
	Restarts int

	// FP counts false-positive dead declarations: dead events about
	// members that never restarted, dead events about a restarting
	// member before its leave, and dead events about a rejoined
	// incarnation (incarnation above the one that left) — the restarted
	// member was alive again and still got killed. Stale dissemination
	// of the leave itself (dead events at or below the departing
	// incarnation, after the leave) is legitimate, however late it
	// lands. FPHealthy counts the subset raised at observers outside
	// the restart cast.
	FP, FPHealthy int

	// Rejoined counts restarted members that every sampled observer saw
	// alive again (at a post-leave incarnation) after their rejoin.
	Rejoined int

	// RejoinConverge summarizes, in seconds per fully re-seen member,
	// the time from rejoin to the moment the last sampled observer saw
	// it alive again.
	RejoinConverge stats.Summary

	// MsgsSent and BytesSent total transport load over the run.
	MsgsSent, BytesSent int64

	// EventDigest is an FNV-64a digest of the full membership event
	// log — the byte-identical-replay fingerprint for this cell.
	EventDigest string
}

// RestartResult holds one rolling-restart run across the configuration
// axis.
type RestartResult struct {
	// Params echoes the resolved parameters.
	Params RestartParams

	// Cells holds one result per configuration, in Params.Configs
	// order.
	Cells []RestartCellResult
}

// restartCast deterministically selects the members restarted across
// the run: Waves × PerWave distinct members, excluding member 0 (the
// join seed), identical across every cell.
func restartCast(p RestartParams, seed int64) []string {
	return castFromSeed(p.N, p.Waves*p.PerWave, seed*127+29)
}

// castFromSeed picks k distinct member names from indices [1, n) using
// the given seed.
func castFromSeed(n, k int, seed int64) []string {
	rng := rand.New(rand.NewSource(seed))
	idx := rng.Perm(n - 1)
	if k > len(idx) {
		k = len(idx)
	}
	names := make([]string, 0, k)
	for _, i := range idx[:k] {
		names = append(names, NodeName(i+1))
	}
	return names
}

// restartRecord tracks one member's restart lifecycle for scoring.
type restartRecord struct {
	leaveAt  time.Time
	rejoinAt time.Time
	// leaveInc is the member's incarnation at its leave announcement.
	// The departure news carries at most this incarnation; anything
	// above it refers to the rejoined instance.
	leaveInc uint64
}

// RunRestartCell executes one configuration's rolling-restart run:
// quiesce, then Waves staggered leave/rejoin waves, then a settle
// phase, scored from the event log. cc.N is taken from the params and
// must be left zero.
func RunRestartCell(cc ClusterConfig, p RestartParams) (RestartCellResult, error) {
	p = p.withDefaults()
	if p.Waves*p.PerWave > p.N-1 {
		return RestartCellResult{}, fmt.Errorf(
			"experiment: rolling restart needs %d distinct members (%d waves × %d) but only %d are eligible (N=%d minus the join seed)",
			p.Waves*p.PerWave, p.Waves, p.PerWave, p.N-1, p.N)
	}
	if p.LeaveLinger >= p.DownFor {
		return RestartCellResult{}, fmt.Errorf(
			"experiment: rolling restart LeaveLinger %v must be shorter than DownFor %v (the member must be gone before its replacement rejoins)",
			p.LeaveLinger, p.DownFor)
	}
	cc.N = p.N
	c, err := NewCluster(cc)
	if err != nil {
		return RestartCellResult{}, err
	}
	defer c.Shutdown()
	if err := c.Start(Quiesce); err != nil {
		return RestartCellResult{}, err
	}

	cast := restartCast(p, cc.Seed)
	recs := make(map[string]*restartRecord, len(cast))
	seedAddr := c.Nodes[0].Addr()
	start := c.Sched.Now()
	var runErr error
	for w := 0; w < p.Waves; w++ {
		for j := 0; j < p.PerWave; j++ {
			name := cast[w*p.PerWave+j]
			rec := &restartRecord{}
			recs[name] = rec
			offset := time.Duration(w) * p.WaveEvery
			if p.PerWave > 1 {
				offset += p.Stagger * time.Duration(j) / time.Duration(p.PerWave-1)
			}
			leaveAt := start.Add(offset)
			c.Sched.ScheduleAt(leaveAt, func() {
				node := c.names[name]
				rec.leaveAt = c.Sched.Now()
				rec.leaveInc = node.Incarnation()
				node.Leave()
			})
			c.Sched.ScheduleAt(leaveAt.Add(p.LeaveLinger), func() {
				c.RemoveNode(name)
			})
			c.Sched.ScheduleAt(leaveAt.Add(p.DownFor), func() {
				node, err := c.addNode(name)
				if err == nil {
					err = node.Start()
				}
				if err == nil {
					rec.rejoinAt = c.Sched.Now()
					err = node.Join(seedAddr)
				}
				if err != nil && runErr == nil {
					runErr = fmt.Errorf("experiment: rejoin %s: %w", name, err)
				}
			})
		}
	}
	horizon := time.Duration(p.Waves-1)*p.WaveEvery + p.Stagger + p.DownFor + p.Settle
	c.Sched.RunFor(horizon)
	if runErr != nil {
		return RestartCellResult{}, runErr
	}

	events := c.Events.Events()
	res := RestartCellResult{
		Config:   cc.Protocol.Name,
		Restarts: len(cast),
	}

	// False positives: a dead event is legitimate only as stale news of
	// an actual departure — subject restarted, event at or after its
	// leave, incarnation at or below the incarnation that left.
	for _, ev := range events {
		if ev.Type != metrics.EventDead || ev.Time.Before(start) || ev.Observer == ev.Subject {
			continue
		}
		if rec := recs[ev.Subject]; rec != nil &&
			!rec.leaveAt.IsZero() && !ev.Time.Before(rec.leaveAt) &&
			ev.Incarnation <= rec.leaveInc {
			continue
		}
		res.FP++
		if recs[ev.Observer] == nil {
			res.FPHealthy++
		}
	}

	// Re-join convergence: for each restarted member, the first
	// post-rejoin sighting (join or alive at a higher-than-departed
	// incarnation) at each sampled long-lived observer; the member
	// counts as rejoined when every observer saw it, and its latency is
	// the slowest observer's.
	observers := make(map[string]bool, p.Observers)
	for i := 0; i < p.N && len(observers) < p.Observers; i++ {
		name := NodeName(i)
		if recs[name] == nil {
			observers[name] = true
		}
	}
	firstSeen := make(map[string]time.Time) // observer|subject
	for _, ev := range events {
		if ev.Type != metrics.EventJoin && ev.Type != metrics.EventAlive {
			continue
		}
		rec := recs[ev.Subject]
		if rec == nil || rec.rejoinAt.IsZero() || !observers[ev.Observer] ||
			ev.Time.Before(rec.rejoinAt) || ev.Incarnation <= rec.leaveInc {
			continue
		}
		key := ev.Observer + "|" + ev.Subject
		if _, seen := firstSeen[key]; !seen {
			firstSeen[key] = ev.Time
		}
	}
	var converge []float64
	for _, name := range cast {
		rec := recs[name]
		var last time.Time
		sawAll := true
		for obs := range observers {
			t, ok := firstSeen[obs+"|"+name]
			if !ok {
				sawAll = false
				break
			}
			if t.After(last) {
				last = t
			}
		}
		if sawAll {
			res.Rejoined++
			converge = append(converge, last.Sub(rec.rejoinAt).Seconds())
		}
	}
	res.RejoinConverge = stats.Summarize(converge)

	total := c.Net.TotalStats()
	res.MsgsSent = total.MsgsSent
	res.BytesSent = total.BytesSent
	res.EventDigest = eventDigest(events)
	return res, nil
}

// RunRestart executes the rolling-restart scenario across the
// configuration axis with one shared seed, so columns are directly
// comparable. cc.Protocol is overridden per cell; cc.N must be left
// zero (the params size the cluster).
func RunRestart(cc ClusterConfig, p RestartParams) (RestartResult, error) {
	resolved := p.withDefaults()
	res := RestartResult{Params: resolved}
	for _, proto := range resolved.Configs {
		cellCC := cc
		cellCC.Protocol = proto
		cell, err := RunRestartCell(cellCC, resolved)
		if err != nil {
			return res, err
		}
		res.Cells = append(res.Cells, cell)
	}
	return res, nil
}

// FormatRestart renders a rolling-restart run as the per-configuration
// comparison table.
func FormatRestart(r RestartResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Rolling restart: N=%d, %d waves × %d members, down %v, stagger %v\n",
		r.Params.N, r.Params.Waves, r.Params.PerWave, r.Params.DownFor, r.Params.Stagger)
	fmt.Fprintf(&b, "%-14s %9s %9s %4s %4s %12s %12s %10s %10s\n",
		"Config", "Restarts", "Rejoined", "FP", "FP-", "MedRejoin(s)", "MaxRejoin(s)", "Msgs", "MB")
	for _, cell := range r.Cells {
		fmt.Fprintf(&b, "%-14s %9d %9d %4d %4d %12.2f %12.2f %10d %10.1f\n",
			cell.Config, cell.Restarts, cell.Rejoined, cell.FP, cell.FPHealthy,
			cell.RejoinConverge.Median, cell.RejoinConverge.Max,
			cell.MsgsSent, float64(cell.BytesSent)/1e6)
	}
	return b.String()
}
