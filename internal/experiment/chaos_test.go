package experiment

import (
	"testing"
	"time"

	"lifeguard/internal/core"
	"lifeguard/internal/metrics"
	"lifeguard/internal/sim"
)

// smallChaosParams is a reduced matrix configuration for quick tests:
// same five scenarios, smaller cluster and shorter windows.
func smallChaosParams() ChaosParams {
	return ChaosParams{
		N:        32,
		Victims:  4,
		Crashes:  2,
		FaultFor: 24 * time.Second,
		Settle:   24 * time.Second,
	}
}

// TestChaosScenarioNames pins the scenario axis of the matrix.
func TestChaosScenarioNames(t *testing.T) {
	want := []string{"degraded", "pause-flap", "asym-partition", "lossy-link", "combined"}
	got := ChaosScenarioNames()
	if len(got) != len(want) {
		t.Fatalf("scenarios = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("scenarios = %v, want %v", got, want)
		}
	}
}

// TestChaosUnknownScenario pins the error path.
func TestChaosUnknownScenario(t *testing.T) {
	_, _, err := RunChaosCell(ClusterConfig{Seed: 1}, "bogus", smallChaosParams())
	if err == nil {
		t.Fatal("unknown scenario accepted")
	}
}

// TestChaosNegativeMeansNone pins the explicit-none sentinel: negative
// Victims or Crashes resolve to zero fault sets instead of the
// defaults, so pure crash-detection and pure false-positive runs are
// expressible.
func TestChaosNegativeMeansNone(t *testing.T) {
	p := ChaosParams{Victims: -1, Crashes: -1}.withDefaults()
	if p.Victims != 0 || p.Crashes != 0 {
		t.Errorf("negative fault sets resolved to %d/%d, want 0/0", p.Victims, p.Crashes)
	}
	p = ChaosParams{}.withDefaults()
	if p.Victims != 6 || p.Crashes != 3 {
		t.Errorf("zero fault sets resolved to %d/%d, want the 6/3 defaults", p.Victims, p.Crashes)
	}

	// End to end through RunChaos, which must not re-default the
	// resolved sentinel on its second withDefaults pass.
	res, err := RunChaos(ClusterConfig{Seed: 1}, ChaosParams{
		N: 16, Crashes: -1, Victims: 2,
		FaultFor: 10 * time.Second, Settle: 10 * time.Second,
		Scenarios: []string{"degraded"},
		Configs:   []ProtocolConfig{ConfigSWIM},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Params.Crashes != 0 || res.Cells[0].Crashes != 0 || res.Cells[0].CrashesDetected != 0 {
		t.Errorf("explicit-none crash run still crashed members: params %d, cell %d/%d",
			res.Params.Crashes, res.Cells[0].Crashes, res.Cells[0].CrashesDetected)
	}
}

// TestChaosRejectsOversizedFaultSets pins that a victim+crash demand
// exceeding the eligible membership (N minus the join seed) errors out
// instead of silently truncating the crash set to nothing.
func TestChaosRejectsOversizedFaultSets(t *testing.T) {
	p := smallChaosParams()
	p.Victims = p.N - 1 // leaves no room for the crashes
	if _, _, err := RunChaosCell(ClusterConfig{Seed: 1}, "degraded", p); err == nil {
		t.Fatal("oversized fault sets accepted")
	}
	if _, err := RunChaos(ClusterConfig{Seed: 1}, p); err == nil {
		t.Fatal("oversized fault sets accepted by RunChaos")
	}
	bad := smallChaosParams()
	bad.PartitionFraction = 1.5
	if _, _, err := RunChaosCell(ClusterConfig{Seed: 1}, "asym-partition", bad); err == nil {
		t.Fatal("out-of-range PartitionFraction accepted")
	}
	bad.PartitionFraction = -0.5
	if _, _, err := RunChaosCell(ClusterConfig{Seed: 1}, "asym-partition", bad); err == nil {
		t.Fatal("negative PartitionFraction accepted")
	}
}

// TestChaosCastDisjointAndDeterministic pins the fault-set selection:
// victims and crashes never overlap, never include the join seed, and
// are a pure function of the seed.
func TestChaosCastDisjointAndDeterministic(t *testing.T) {
	p := smallChaosParams()
	v1, c1 := chaosCast(p, 9)
	v2, c2 := chaosCast(p, 9)
	if len(v1) != p.Victims || len(c1) != p.Crashes {
		t.Fatalf("cast sizes %d/%d, want %d/%d", len(v1), len(c1), p.Victims, p.Crashes)
	}
	seen := map[string]bool{NodeName(0): true}
	for _, name := range append(append([]string{}, v1...), c1...) {
		if seen[name] {
			t.Fatalf("cast overlaps or includes the join seed: %s", name)
		}
		seen[name] = true
	}
	for i := range v1 {
		if v1[i] != v2[i] {
			t.Fatalf("victim cast not deterministic: %v vs %v", v1, v2)
		}
	}
	for i := range c1 {
		if c1[i] != c2[i] {
			t.Fatalf("crash cast not deterministic: %v vs %v", c1, c2)
		}
	}
	v3, _ := chaosCast(p, 10)
	different := false
	for i := range v1 {
		if v1[i] != v3[i] {
			different = true
		}
	}
	if !different {
		t.Error("different seeds produced identical victim casts (suspicious)")
	}
}

// TestRefutationLatencies pins the suspect/alive pairing on a synthetic
// event log: refuted suspicions yield latency samples, dead-resolved
// and still-open ones do not, crashed subjects and self-observations
// are excluded.
func TestRefutationLatencies(t *testing.T) {
	t0 := time.Unix(100, 0)
	at := func(s float64) time.Time { return t0.Add(time.Duration(s * float64(time.Second))) }
	events := []metrics.Event{
		{Time: at(1), Observer: "a", Subject: "v", Type: metrics.EventSuspect},
		{Time: at(3.5), Observer: "a", Subject: "v", Type: metrics.EventAlive},   // refuted, 2.5s
		{Time: at(4), Observer: "a", Subject: "v", Type: metrics.EventAlive},     // no open suspicion: ignored
		{Time: at(5), Observer: "b", Subject: "v", Type: metrics.EventSuspect},   // resolved by dead
		{Time: at(6), Observer: "b", Subject: "v", Type: metrics.EventDead},      // not a refutation
		{Time: at(7), Observer: "a", Subject: "w", Type: metrics.EventSuspect},   // still open at the end
		{Time: at(1), Observer: "a", Subject: "x", Type: metrics.EventSuspect},   // crashed subject: excluded
		{Time: at(2), Observer: "a", Subject: "x", Type: metrics.EventAlive},     // crashed subject: excluded
		{Time: at(1), Observer: "v", Subject: "v", Type: metrics.EventSuspect},   // self-observation: excluded
		{Time: at(0.5), Observer: "c", Subject: "v", Type: metrics.EventSuspect}, // before start: excluded
	}
	susp, refuted, lat := refutationLatencies(events, map[string]struct{}{"x": {}}, t0.Add(800*time.Millisecond))
	if susp != 3 || refuted != 1 {
		t.Fatalf("suspicions/refuted = %d/%d, want 3/1", susp, refuted)
	}
	if len(lat) != 1 || lat[0] != 2.5 {
		t.Fatalf("latencies = %v, want [2.5]", lat)
	}
}

// TestChaosCombinedCoversAllFaultClasses pins that the combined
// scenario keeps all three fault classes even at small victim counts
// (the round-robin deal): with 4 victims the lossy class must still be
// present, observable through the duplication/reordering counters.
func TestChaosCombinedCoversAllFaultClasses(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos cell run")
	}
	p := smallChaosParams()
	p.Victims = 4
	cell, _, err := RunChaosCell(ClusterConfig{Seed: 2, Protocol: ConfigSWIM}, "combined", p)
	if err != nil {
		t.Fatal(err)
	}
	if cell.Duplicated == 0 && cell.Reordered == 0 {
		t.Errorf("combined cell with 4 victims shows no link-fault interventions — lossy class missing")
	}
}

// TestChaosLifeguardBeatsSWIM is the acceptance bar for the chaos
// subsystem, the repo's first reproduction of the paper's headline
// claim: under the degraded-member scenario — victims alive but slow,
// not dead — full Lifeguard produces strictly fewer false positives
// than plain SWIM at the same seed, while detecting the real crashes
// just as fast (equal-or-better median) and just as completely.
func TestChaosLifeguardBeatsSWIM(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos matrix run")
	}
	res, err := RunChaos(
		ClusterConfig{Seed: 1},
		ChaosParams{
			CrashAt:   5 * time.Second,
			Scenarios: []string{"degraded"},
			Configs:   []ProtocolConfig{ConfigSWIM, ConfigLifeguard},
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", FormatChaos(res))
	if len(res.Cells) != 2 {
		t.Fatalf("got %d cells, want 2", len(res.Cells))
	}
	swim, lifeguard := res.Cells[0], res.Cells[1]
	if swim.Config != "SWIM" || lifeguard.Config != "Lifeguard" {
		t.Fatalf("cell order %s/%s", swim.Config, lifeguard.Config)
	}
	// Both configurations must detect every real crash.
	for _, cell := range res.Cells {
		if cell.CrashesDetected != cell.Crashes {
			t.Errorf("%s: detected %d of %d crashes", cell.Config, cell.CrashesDetected, cell.Crashes)
		}
	}
	// The headline: strictly fewer false positives under Lifeguard.
	if lifeguard.FP >= swim.FP {
		t.Errorf("Lifeguard FP %d not strictly below SWIM FP %d", lifeguard.FP, swim.FP)
	}
	// At equal-or-better detection latency for the real crashes.
	if lifeguard.CrashDetect.Median > swim.CrashDetect.Median {
		t.Errorf("Lifeguard crash-detection median %.2fs worse than SWIM %.2fs",
			lifeguard.CrashDetect.Median, swim.CrashDetect.Median)
	}
	// The degradation must actually bite: SWIM's false positives are
	// the paper's motivating condition, not noise.
	if swim.FP < 100 {
		t.Errorf("SWIM produced only %d FP — degradation did not engage", swim.FP)
	}
	if swim.Suspicions == 0 || lifeguard.Refuted == 0 {
		t.Errorf("suspicion machinery idle: SWIM susp %d, Lifeguard refuted %d",
			swim.Suspicions, lifeguard.Refuted)
	}
}

// TestChaosMatrixDeterminism pins same-seed reproducibility of the
// full scenario × configuration matrix: every cell — metrics, stats
// counters and the event-log digest — must be byte-identical across
// runs, and a different seed must actually change the runs.
func TestChaosMatrixDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("double chaos matrix run")
	}
	run := func(seed int64) ChaosResult {
		res, err := RunChaos(ClusterConfig{Seed: seed}, smallChaosParams())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(5), run(5)
	if len(a.Cells) != len(chaosScenarios)*len(Configurations) {
		t.Fatalf("matrix has %d cells, want %d", len(a.Cells), len(chaosScenarios)*len(Configurations))
	}
	for i := range a.Cells {
		if a.Cells[i] != b.Cells[i] {
			t.Errorf("same-seed cell %s/%s diverged:\n%+v\n%+v",
				a.Cells[i].Scenario, a.Cells[i].Config, a.Cells[i], b.Cells[i])
		}
	}
	c := run(6)
	same := 0
	for i := range a.Cells {
		if a.Cells[i].EventDigest == c.Cells[i].EventDigest {
			same++
		}
	}
	if same == len(a.Cells) {
		t.Error("different seeds produced identical event digests in every cell (suspicious)")
	}
}

// TestChaosInvariants is the property harness run across every chaos
// matrix cell: per observer–subject stream, incarnation numbers never
// decrease, and no member transitions Dead → Alive without an
// incarnation bump. Under -short it covers a 2×2 corner of the matrix;
// the full suite covers all 25 cells.
func TestChaosInvariants(t *testing.T) {
	p := smallChaosParams()
	scenarios := ChaosScenarioNames()
	configs := Configurations
	if testing.Short() {
		scenarios = []string{"degraded", "lossy-link"}
		configs = []ProtocolConfig{ConfigSWIM, ConfigLifeguard}
	}
	for _, scenario := range scenarios {
		for _, proto := range configs {
			cell, events, err := RunChaosCell(ClusterConfig{Seed: 3, Protocol: proto}, scenario, p)
			if err != nil {
				t.Fatal(err)
			}
			if len(events) == 0 {
				t.Fatalf("%s/%s: empty event log", scenario, proto.Name)
			}
			checkChaosInvariants(t, scenario+"/"+proto.Name, events)
			if cell.EventDigest == "" {
				t.Errorf("%s/%s: empty event digest", scenario, proto.Name)
			}
		}
	}
}

// checkChaosInvariants asserts the membership-protocol safety
// properties on one cell's event log.
func checkChaosInvariants(t *testing.T, cell string, events []metrics.Event) {
	t.Helper()
	type view struct {
		incarnation uint64
		dead        bool
		deadInc     uint64
	}
	views := make(map[string]*view)
	for _, ev := range events {
		key := ev.Observer + "|" + ev.Subject
		v := views[key]
		if v == nil {
			v = &view{}
			views[key] = v
		}
		if ev.Incarnation < v.incarnation {
			t.Fatalf("%s: incarnation of %s regressed at observer %s: %d -> %d (%s)",
				cell, ev.Subject, ev.Observer, v.incarnation, ev.Incarnation, ev.Type)
		}
		v.incarnation = ev.Incarnation
		switch ev.Type {
		case metrics.EventDead:
			v.dead = true
			v.deadInc = ev.Incarnation
		case metrics.EventJoin, metrics.EventAlive:
			if v.dead && ev.Incarnation <= v.deadInc {
				t.Fatalf("%s: %s transitioned dead -> alive at observer %s without an incarnation bump (dead inc %d, alive inc %d)",
					cell, ev.Subject, ev.Observer, v.deadInc, ev.Incarnation)
			}
			v.dead = false
		}
	}
}

// TestChaosPausedMemberRefutes is the Buddy System regression pinned
// at a fixed seed: a member paused for 7 s with inbound dropped (it
// never hears the suspicion raised while stalled) must, after resuming,
// learn of its suspicion from a buddy ping and refute — returning to
// Alive everywhere without ever being declared dead — when
// LHA-Suspicion + Buddy are enabled; under plain SWIM at the same seed
// the same member never learns, never refutes, and is declared dead
// while demonstrably alive (§IV-C's motivating failure).
func TestChaosPausedMemberRefutes(t *testing.T) {
	lhaSB := ProtocolConfig{Name: "LHA-Suspicion+Buddy", LHASuspicion: true, BuddySystem: true, Alpha: 5, Beta: 6}
	run := func(proto ProtocolConfig) (suspects, refutes, deads, aliveViews int) {
		c, err := NewCluster(ClusterConfig{N: 48, Seed: 1, Protocol: proto})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Shutdown()
		if err := c.Start(Quiesce); err != nil {
			t.Fatal(err)
		}
		victim := NodeName(7)
		s := &sim.FaultSchedule{}
		s.PauseNode(0, victim, sim.PauseDrop)
		s.ResumeNode(7*time.Second, victim)
		c.Net.InstallFaults(s)
		c.Sched.RunFor(60 * time.Second)

		for _, ev := range c.Events.Events() {
			if ev.Subject != victim || ev.Observer == victim {
				continue
			}
			switch ev.Type {
			case metrics.EventSuspect:
				suspects++
			case metrics.EventAlive:
				refutes++
			case metrics.EventDead:
				deads++
			}
		}
		for _, n := range c.Nodes {
			if n.Name() == victim {
				continue
			}
			for _, m := range n.Members() {
				if m.Name == victim && m.State == core.StateAlive {
					aliveViews++
				}
			}
		}
		return suspects, refutes, deads, aliveViews
	}

	suspects, refutes, deads, aliveViews := run(lhaSB)
	if suspects == 0 {
		t.Error("LHA-Suspicion+Buddy: victim was never suspected — the pause did not bite")
	}
	if deads != 0 {
		t.Errorf("LHA-Suspicion+Buddy: victim declared dead %d times, want 0", deads)
	}
	if refutes == 0 {
		t.Error("LHA-Suspicion+Buddy: victim never refuted its suspicion")
	}
	if aliveViews != 47 {
		t.Errorf("LHA-Suspicion+Buddy: victim alive in %d of 47 views", aliveViews)
	}

	suspects, refutes, deads, _ = run(ConfigSWIM)
	if suspects == 0 {
		t.Error("SWIM: victim was never suspected — the pause did not bite")
	}
	if deads == 0 {
		t.Error("SWIM: victim was never declared dead — no differential with the Lifeguard run")
	}
	_ = refutes // SWIM may eventually refute the death itself; the dead events are the regression.
}
