// Package coords implements Vivaldi network coordinates (Dabek,
// Cox, Kaashoek, Morris; SIGCOMM 2004), the decentralized RTT
// estimation scheme Serf layers on memberlist. Each member maintains a
// point in a low-dimensional Euclidean space augmented with a height
// (modelling the access-link delay that no Euclidean embedding can
// capture); the distance between two members' coordinates predicts the
// round-trip time between them.
//
// The Client is the per-node engine: every observed probe round-trip
// (peer coordinate + measured RTT) applies a spring force that pulls
// the local coordinate toward a configuration where coordinate
// distances match measured RTTs. A median latency filter suppresses
// RTT outliers, an adjustment window absorbs the residual systematic
// error, and a weak gravity force pulls coordinates toward the origin
// so the whole coordinate system does not drift.
//
// All distances and forces are computed in seconds; conversions to
// time.Duration happen only at the API boundary.
package coords

import (
	"fmt"
	"math"
	"time"
)

// zeroThreshold guards divisions: distances and errors below it are
// treated as zero.
const zeroThreshold = 1.0e-6

// Coordinate is one point in the Vivaldi coordinate space. Coordinates
// travel on the wire (piggybacked on Ping/Ack), so the struct is pure
// data; the update algorithm lives in Client.
type Coordinate struct {
	// Vec is the Euclidean component, in seconds.
	Vec []float64

	// Error is the node's confidence in its own coordinate (lower is
	// better). It weights updates: a node with a poor coordinate moves
	// readily toward a confident peer, and barely at all the other way.
	Error float64

	// Adjustment is a locally-tracked additive correction, in seconds,
	// absorbing the systematic error the Euclidean+height model cannot
	// express (Vivaldi §3.4's adjustment term).
	Adjustment float64

	// Height is the non-Euclidean component, in seconds: the member's
	// access-link delay, paid on every path regardless of direction.
	Height float64
}

// NewCoordinate returns an origin coordinate for the given
// configuration: zero vector, minimum height, maximum error.
func NewCoordinate(cfg *Config) *Coordinate {
	return &Coordinate{
		Vec:    make([]float64, cfg.Dimensionality),
		Error:  cfg.VivaldiErrorMax,
		Height: cfg.HeightMin,
	}
}

// Clone returns a deep copy.
func (c *Coordinate) Clone() *Coordinate {
	vec := make([]float64, len(c.Vec))
	copy(vec, c.Vec)
	return &Coordinate{Vec: vec, Error: c.Error, Adjustment: c.Adjustment, Height: c.Height}
}

// IsValid reports whether every component is a finite number. Wire
// decoding accepts arbitrary bit patterns; the engine rejects invalid
// coordinates before they can poison the local state.
func (c *Coordinate) IsValid() bool {
	for _, v := range c.Vec {
		if !isFinite(v) {
			return false
		}
	}
	return isFinite(c.Error) && isFinite(c.Adjustment) && isFinite(c.Height)
}

func isFinite(f float64) bool {
	return !math.IsNaN(f) && !math.IsInf(f, 0)
}

// IsCompatibleWith reports whether the two coordinates live in the same
// space and can be compared.
func (c *Coordinate) IsCompatibleWith(other *Coordinate) bool {
	return len(c.Vec) == len(other.Vec)
}

// DistanceTo returns the estimated RTT between the two coordinates.
// Incompatible coordinates yield 0.
func (c *Coordinate) DistanceTo(other *Coordinate) time.Duration {
	if !c.IsCompatibleWith(other) {
		return 0
	}
	dist := c.rawDistanceTo(other)
	if adjusted := dist + c.Adjustment + other.Adjustment; adjusted > 0 {
		dist = adjusted
	}
	return time.Duration(dist * float64(time.Second))
}

// rawDistanceTo is the model distance in seconds, without the
// adjustment terms: Euclidean distance plus both heights.
func (c *Coordinate) rawDistanceTo(other *Coordinate) float64 {
	return distance(c.Vec, other.Vec) + c.Height + other.Height
}

// applyForce adjusts the coordinate in place by a force of the given
// magnitude (seconds) directed away from other (negative values pull
// toward it). When the two points coincide, a deterministic
// pseudo-random unit vector from rnd breaks the tie. scratch must have
// the coordinate's dimensionality; it is overwritten. The engine calls
// this twice per observation, so an allocating version (clone, then
// fresh diff/mul/add vectors) was a steady-state cost; the arithmetic
// is element-for-element the same as the allocating chain, keeping
// same-seed runs bit-identical.
func (c *Coordinate) applyForce(cfg *Config, force float64, other *Coordinate, rnd func() float64, scratch []float64) {
	mag := unitVectorInto(scratch, c.Vec, other.Vec, rnd)
	for i := range c.Vec {
		c.Vec[i] += scratch[i] * force
	}
	if mag > zeroThreshold {
		c.Height = (c.Height+other.Height)*force/mag + c.Height
		c.Height = math.Max(c.Height, cfg.HeightMin)
	}
}

// String renders the coordinate compactly for logs.
func (c *Coordinate) String() string {
	return fmt.Sprintf("coords{vec=%v err=%.3f adj=%.6f h=%.6f}", c.Vec, c.Error, c.Adjustment, c.Height)
}

// Vector helpers. All operate on equal-length slices.

func magnitude(a []float64) float64 {
	sum := 0.0
	for _, v := range a {
		sum += v * v
	}
	return math.Sqrt(sum)
}

// distance is magnitude(diff(a, b)) without materialising the
// difference vector. Every RTT estimate goes through it — gossip
// ranking calls DistanceTo once per candidate per tick, so the
// intermediate slice was a steady-state allocation.
func distance(a, b []float64) float64 {
	sum := 0.0
	for i := range a {
		d := a[i] - b[i]
		sum += d * d
	}
	return math.Sqrt(sum)
}

// unitVectorInto fills out with the unit vector pointing from b toward
// a and returns the distance between the points. Coincident points get
// a random unit vector so springs can push them apart in a consistent
// direction.
func unitVectorInto(out, a, b []float64, rnd func() float64) float64 {
	for i := range out {
		out[i] = a[i] - b[i]
	}
	if mag := magnitude(out); mag > zeroThreshold {
		f := 1.0 / mag
		for i := range out {
			out[i] *= f
		}
		return mag
	}
	for i := range out {
		out[i] = rnd() - 0.5
	}
	if mag := magnitude(out); mag > zeroThreshold {
		f := 1.0 / mag
		for i := range out {
			out[i] *= f
		}
		return 0.0
	}
	// The random draw itself landed on the origin; fall back to an axis.
	for i := range out {
		out[i] = 0
	}
	if len(out) > 0 {
		out[0] = 1.0
	}
	return 0.0
}
