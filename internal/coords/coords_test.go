package coords

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

func newTestClient(t *testing.T, seed int64) *Client {
	t.Helper()
	cfg := DefaultConfig()
	rng := rand.New(rand.NewSource(seed))
	cfg.Rand = rng.Float64
	c, err := NewClient(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewCoordinateStartsAtOrigin(t *testing.T) {
	cfg := DefaultConfig()
	c := NewCoordinate(cfg)
	if len(c.Vec) != cfg.Dimensionality {
		t.Fatalf("dimensionality: got %d, want %d", len(c.Vec), cfg.Dimensionality)
	}
	for i, v := range c.Vec {
		if v != 0 {
			t.Fatalf("Vec[%d] = %v, want 0", i, v)
		}
	}
	if c.Error != cfg.VivaldiErrorMax {
		t.Fatalf("Error = %v, want %v", c.Error, cfg.VivaldiErrorMax)
	}
	if c.Height != cfg.HeightMin {
		t.Fatalf("Height = %v, want %v", c.Height, cfg.HeightMin)
	}
}

func TestDistanceToIsSymmetricAndIncludesHeights(t *testing.T) {
	a := &Coordinate{Vec: []float64{0.003, 0.004}, Height: 0.001}
	b := &Coordinate{Vec: []float64{0, 0}, Height: 0.002}
	want := 8 * time.Millisecond // 5ms Euclidean + 1ms + 2ms heights
	if got := a.DistanceTo(b); got != want {
		t.Fatalf("DistanceTo = %v, want %v", got, want)
	}
	if ab, ba := a.DistanceTo(b), b.DistanceTo(a); ab != ba {
		t.Fatalf("distance not symmetric: %v vs %v", ab, ba)
	}
}

func TestDistanceToIncompatibleIsZero(t *testing.T) {
	a := &Coordinate{Vec: []float64{1, 2}}
	b := &Coordinate{Vec: []float64{1, 2, 3}}
	if got := a.DistanceTo(b); got != 0 {
		t.Fatalf("incompatible distance = %v, want 0", got)
	}
}

func TestUpdateRejectsInvalidInputs(t *testing.T) {
	c := newTestClient(t, 1)
	before := c.Coordinate()

	bad := NewCoordinate(DefaultConfig())
	bad.Vec[0] = math.NaN()
	if _, err := c.Update("p", bad, 10*time.Millisecond); err == nil {
		t.Fatal("NaN coordinate accepted")
	}
	bad2 := NewCoordinate(DefaultConfig())
	bad2.Height = math.Inf(1)
	if _, err := c.Update("p", bad2, 10*time.Millisecond); err == nil {
		t.Fatal("Inf coordinate accepted")
	}
	short := &Coordinate{Vec: []float64{1}}
	if _, err := c.Update("p", short, 10*time.Millisecond); err == nil {
		t.Fatal("dimensionality mismatch accepted")
	}
	good := NewCoordinate(DefaultConfig())
	if _, err := c.Update("p", good, 0); err == nil {
		t.Fatal("zero RTT accepted")
	}
	if _, err := c.Update("p", good, time.Minute); err == nil {
		t.Fatal("absurd RTT accepted")
	}

	after := c.Coordinate()
	for i := range before.Vec {
		if before.Vec[i] != after.Vec[i] {
			t.Fatal("rejected update mutated the coordinate")
		}
	}
	if _, rejected := c.Stats(); rejected != 5 {
		t.Fatalf("rejected count = %d, want 5", rejected)
	}
	if _, ok := c.EstimateRTT("p"); ok {
		t.Fatal("rejected update cached the peer coordinate")
	}
}

func TestUpdateMovesTowardMeasuredRTT(t *testing.T) {
	c := newTestClient(t, 2)
	peer := NewCoordinate(DefaultConfig())
	peer.Error = 0.01 // a confident peer pulls us hard

	const rtt = 100 * time.Millisecond
	var est time.Duration
	for i := 0; i < 50; i++ {
		if _, err := c.Update("p", peer, rtt); err != nil {
			t.Fatal(err)
		}
		est = c.Coordinate().DistanceTo(peer)
	}
	if relerr := math.Abs(est.Seconds()-rtt.Seconds()) / rtt.Seconds(); relerr > 0.1 {
		t.Fatalf("after 50 updates estimate %v vs true %v (rel err %.2f)", est, rtt, relerr)
	}
	if e := c.Coordinate().Error; e >= DefaultConfig().VivaldiErrorMax {
		t.Fatalf("error estimate did not improve: %v", e)
	}
}

// TestLatencyFilterSuppressesOutlier checks that one absurd-but-legal
// sample inside the median window barely moves the coordinate compared
// to feeding the spike straight in.
func TestLatencyFilterSuppressesOutlier(t *testing.T) {
	run := func(filterSize int) time.Duration {
		cfg := DefaultConfig()
		cfg.LatencyFilterSize = filterSize
		rng := rand.New(rand.NewSource(3))
		cfg.Rand = rng.Float64
		c, err := NewClient(cfg)
		if err != nil {
			t.Fatal(err)
		}
		peer := NewCoordinate(cfg)
		peer.Error = 0.01
		for i := 0; i < 30; i++ {
			rtt := 20 * time.Millisecond
			if i == 28 {
				rtt = 2 * time.Second // queueing spike
			}
			if _, err := c.Update("p", peer, rtt); err != nil {
				t.Fatal(err)
			}
		}
		return c.Coordinate().DistanceTo(peer)
	}

	filtered := run(3)
	unfiltered := run(1)
	trueRTT := 20 * time.Millisecond
	fErr := math.Abs(filtered.Seconds() - trueRTT.Seconds())
	uErr := math.Abs(unfiltered.Seconds() - trueRTT.Seconds())
	if fErr >= uErr {
		t.Fatalf("median filter did not help: filtered err %v, unfiltered err %v", fErr, uErr)
	}
	if fErr > 0.01 {
		t.Fatalf("filtered estimate too far off: %v vs %v", filtered, trueRTT)
	}
}

// TestClientConvergenceOnSyntheticTopology embeds a clique of 8 nodes
// with a known RTT matrix (two "zones" 100 ms apart, 5 ms inside) and
// checks the median relative estimation error drops below 25%.
func TestClientConvergenceOnSyntheticTopology(t *testing.T) {
	const n = 8
	zone := func(i int) int { return i % 2 }
	trueRTT := func(i, j int) time.Duration {
		if zone(i) == zone(j) {
			return 5 * time.Millisecond
		}
		return 100 * time.Millisecond
	}

	clients := make([]*Client, n)
	names := make([]string, n)
	for i := range clients {
		cfg := DefaultConfig()
		rng := rand.New(rand.NewSource(int64(i) + 100))
		cfg.Rand = rng.Float64
		c, err := NewClient(cfg)
		if err != nil {
			t.Fatal(err)
		}
		clients[i] = c
		names[i] = string(rune('a' + i))
	}

	rng := rand.New(rand.NewSource(7))
	for round := 0; round < 150; round++ {
		for i := range clients {
			j := rng.Intn(n - 1)
			if j >= i {
				j++
			}
			// ±10% jitter on the observed RTT.
			rtt := time.Duration(float64(trueRTT(i, j)) * (0.9 + 0.2*rng.Float64()))
			if _, err := clients[i].Update(names[j], clients[j].Coordinate(), rtt); err != nil {
				t.Fatal(err)
			}
		}
	}

	var relErrs []float64
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			est := clients[i].Coordinate().DistanceTo(clients[j].Coordinate())
			truth := trueRTT(i, j)
			relErrs = append(relErrs, math.Abs(est.Seconds()-truth.Seconds())/truth.Seconds())
		}
	}
	median := medianOf(relErrs)
	if median > 0.25 {
		t.Fatalf("median relative error %.3f > 0.25 (errors: %v)", median, relErrs)
	}
}

func medianOf(v []float64) float64 {
	s := append([]float64(nil), v...)
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	return s[len(s)/2]
}

func TestUpdateIsDeterministicForSameSeed(t *testing.T) {
	run := func() *Coordinate {
		c := newTestClient(t, 42)
		peer := NewCoordinate(DefaultConfig())
		for i := 0; i < 20; i++ {
			// Coincident starting coordinates force the random
			// unit-vector path, the only randomness in the engine.
			if _, err := c.Update("p", peer, 30*time.Millisecond); err != nil {
				t.Fatal(err)
			}
		}
		return c.Coordinate()
	}
	a, b := run(), run()
	for i := range a.Vec {
		if a.Vec[i] != b.Vec[i] {
			t.Fatalf("same-seed runs diverged at Vec[%d]: %v vs %v", i, a.Vec[i], b.Vec[i])
		}
	}
	if a.Height != b.Height || a.Error != b.Error || a.Adjustment != b.Adjustment {
		t.Fatal("same-seed runs diverged in scalar components")
	}
}

func TestWitnessAndEstimateRTT(t *testing.T) {
	c := newTestClient(t, 5)
	if _, ok := c.EstimateRTT("unknown"); ok {
		t.Fatal("estimate for unknown peer")
	}
	peer := NewCoordinate(DefaultConfig())
	peer.Vec[0] = 0.025
	c.Witness("p", peer)
	est, ok := c.EstimateRTT("p")
	if !ok {
		t.Fatal("no estimate after Witness")
	}
	if want := c.Coordinate().DistanceTo(peer); est != want {
		t.Fatalf("estimate %v, want %v", est, want)
	}

	bad := NewCoordinate(DefaultConfig())
	bad.Vec[0] = math.NaN()
	c.Witness("q", bad)
	if _, ok := c.EstimateRTT("q"); ok {
		t.Fatal("invalid witnessed coordinate cached")
	}

	c.Forget("p")
	if _, ok := c.EstimateRTT("p"); ok {
		t.Fatal("estimate survived Forget")
	}
}

// TestPeerRTTAndNearestPeers exercises the third-party estimate and the
// deterministic nearest-k ranking behind coordinate-aware relay and
// gossip selection.
func TestPeerRTTAndNearestPeers(t *testing.T) {
	c, err := NewClient(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	place := func(name string, x float64) {
		co := NewCoordinate(c.cfg)
		co.Vec[0] = x
		co.Error = 0.1
		if !c.Witness(name, co) {
			t.Fatalf("witness %s rejected", name)
		}
	}
	place("target", 0.100)
	place("near", 0.110)
	place("mid", 0.200)
	place("far", 0.900)

	rtt, ok := c.PeerRTT("near", "target")
	if !ok {
		t.Fatal("no estimate between two cached peers")
	}
	if rtt < 5*time.Millisecond || rtt > 50*time.Millisecond {
		t.Errorf("near-target estimate %v, want ≈10ms", rtt)
	}
	if _, ok := c.PeerRTT("near", "unknown"); ok {
		t.Error("estimate produced for unknown peer")
	}

	got := c.NearestPeers("target", []string{"far", "mid", "near", "unknown"}, 2)
	if len(got) != 2 || got[0] != "near" || got[1] != "mid" {
		t.Errorf("NearestPeers(target) = %v, want [near mid]", got)
	}
	// Candidate order must not change the ranking.
	again := c.NearestPeers("target", []string{"near", "unknown", "mid", "far"}, 2)
	if len(again) != 2 || again[0] != got[0] || again[1] != got[1] {
		t.Errorf("ranking depends on candidate order: %v vs %v", again, got)
	}
	// Empty ref ranks from the local coordinate (at the origin here).
	fromSelf := c.NearestPeers("", []string{"far", "target", "near"}, 3)
	if len(fromSelf) != 3 || fromSelf[0] != "target" || fromSelf[2] != "far" {
		t.Errorf("NearestPeers(self) = %v, want [target near far]", fromSelf)
	}
	if c.NearestPeers("unknown", []string{"near"}, 1) != nil {
		t.Error("unknown ref produced a ranking")
	}
}
