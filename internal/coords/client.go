package coords

import (
	"fmt"
	"math"
	"slices"
	"sort"
	"strings"
	"time"
)

// Config tunes the Vivaldi engine. The defaults follow the Vivaldi
// paper's evaluated constants (and Serf's production tuning of them).
type Config struct {
	// Dimensionality is the Euclidean dimension of the coordinate
	// space. The Vivaldi paper finds low dimensions plus a height
	// outperform high-dimensional embeddings; 8 is Serf's default.
	Dimensionality int

	// VivaldiErrorMax caps (and initializes) a coordinate's error
	// estimate.
	VivaldiErrorMax float64

	// VivaldiCE is c_e, the maximum fraction of the error estimate
	// replaced by one observation.
	VivaldiCE float64

	// VivaldiCC is c_c, the maximum fraction of the distance to the
	// peer travelled in one update (the adaptive timestep ceiling).
	VivaldiCC float64

	// AdjustmentWindowSize is the number of recent samples over which
	// the additive adjustment term is averaged. Zero disables the
	// adjustment term.
	AdjustmentWindowSize int

	// HeightMin is the floor of the height component, in seconds.
	HeightMin float64

	// LatencyFilterSize is the per-peer median filter window: an RTT
	// observation only reaches the Vivaldi update as the median of the
	// last LatencyFilterSize samples from that peer, suppressing
	// one-off outliers (queueing spikes, retransmits).
	LatencyFilterSize int

	// GravityRho tunes the gravity force that pulls coordinates toward
	// the origin, preventing the coordinate system from drifting away
	// as a whole: the pull is proportional to distance/GravityRho.
	// Zero disables gravity.
	GravityRho float64

	// MaxRTT bounds accepted RTT observations; larger samples are
	// discarded as outliers (a 10-second "round trip" is a stalled
	// process, not a network path).
	MaxRTT time.Duration

	// Rand supplies the engine's randomness (tie-breaking coincident
	// coordinates). Defaults to a fixed-seed xorshift generator;
	// inject the node's seeded RNG for simulation determinism.
	Rand func() float64
}

// DefaultConfig returns the paper-tuned defaults.
func DefaultConfig() *Config {
	return &Config{
		Dimensionality:       8,
		VivaldiErrorMax:      1.5,
		VivaldiCE:            0.25,
		VivaldiCC:            0.25,
		AdjustmentWindowSize: 20,
		HeightMin:            10.0e-6,
		LatencyFilterSize:    3,
		GravityRho:           150.0,
		MaxRTT:               10 * time.Second,
	}
}

// Client is one node's Vivaldi engine. It is not safe for concurrent
// use; the protocol core serializes access under the node lock.
type Client struct {
	cfg   *Config
	coord *Coordinate

	// origin is a zero-value coordinate used as the gravity anchor.
	origin *Coordinate

	// latencyFilters holds the per-peer RTT sample windows.
	latencyFilters map[string][]float64

	// adjustmentSamples is the circular raw-error window feeding the
	// adjustment term.
	adjustmentSamples []float64
	adjustmentIndex   int

	// peers caches the most recent coordinate heard from each peer
	// (from pings received and acks observed), the basis for
	// EstimateRTT to members this node has not probed itself.
	peers map[string]*Coordinate

	// stats counters.
	updates  uint64
	rejected uint64

	// ranked is reusable scratch for NearestPeerIndexes, so the
	// per-gossip-tick ranking does not allocate.
	ranked []rankedPeer

	// medScratch is reusable scratch for the latency median filter.
	medScratch []float64

	// unitScratch is reusable scratch for applyForce's unit vector, so
	// the two spring steps per observation do not allocate.
	unitScratch []float64
}

// rankedPeer is one candidate in a NearestPeerIndexes ranking.
type rankedPeer struct {
	idx  int
	name string
	rtt  time.Duration
}

// NewClient validates cfg and returns an engine at the origin. The
// config is copied, so one Config value can seed many engines without
// the engines sharing mutable state.
func NewClient(cfg *Config) (*Client, error) {
	if cfg == nil {
		cfg = DefaultConfig()
	} else {
		cc := *cfg
		cfg = &cc
	}
	if cfg.Dimensionality <= 0 {
		return nil, fmt.Errorf("coords: dimensionality must be positive, got %d", cfg.Dimensionality)
	}
	if cfg.LatencyFilterSize <= 0 {
		return nil, fmt.Errorf("coords: latency filter size must be positive, got %d", cfg.LatencyFilterSize)
	}
	if cfg.Rand == nil {
		rng := uint64(0x9E3779B97F4A7C15)
		cfg.Rand = func() float64 {
			// xorshift64*: deterministic fallback randomness; only used
			// to separate exactly-coincident coordinates.
			rng ^= rng >> 12
			rng ^= rng << 25
			rng ^= rng >> 27
			return float64(rng*0x2545F4914F6CDD1D>>11) / float64(1<<53)
		}
	}
	adjustmentWindow := cfg.AdjustmentWindowSize
	if adjustmentWindow < 0 {
		adjustmentWindow = 0
	}
	return &Client{
		cfg:               cfg,
		coord:             NewCoordinate(cfg),
		origin:            NewCoordinate(cfg),
		latencyFilters:    make(map[string][]float64),
		peers:             make(map[string]*Coordinate),
		adjustmentSamples: make([]float64, adjustmentWindow),
		unitScratch:       make([]float64, cfg.Dimensionality),
	}, nil
}

// Coordinate returns a copy of the node's current coordinate.
func (c *Client) Coordinate() *Coordinate {
	return c.coord.Clone()
}

// Current returns the live coordinate without copying, for callers
// that serialize it immediately under the same lock that guards
// Update (the protocol core's send path encodes synchronously, so a
// per-packet clone would be waste). The returned value must be
// treated as read-only and not retained across engine updates.
func (c *Client) Current() *Coordinate {
	return c.coord
}

// SetCoordinate overrides the node's coordinate (tests; state restore).
// Invalid or incompatible coordinates are rejected.
func (c *Client) SetCoordinate(coord *Coordinate) error {
	if err := c.checkCoordinate(coord); err != nil {
		return err
	}
	c.coord = coord.Clone()
	return nil
}

// Witness caches a peer's coordinate without an RTT observation (the
// receive side of a ping, which knows the sender's coordinate but not
// the path RTT). Invalid coordinates are discarded; the return
// reports whether the coordinate was cached.
func (c *Client) Witness(peer string, coord *Coordinate) bool {
	if coord == nil || c.checkCoordinate(coord) != nil {
		c.rejected++
		return false
	}
	c.storePeer(peer, coord)
	return true
}

// storePeer caches a (validated) peer coordinate, copying into the
// existing cache entry when dimensions match so steady-state traffic
// does not allocate a Coordinate per observation.
func (c *Client) storePeer(peer string, coord *Coordinate) {
	if cur, ok := c.peers[peer]; ok && len(cur.Vec) == len(coord.Vec) {
		copy(cur.Vec, coord.Vec)
		cur.Error = coord.Error
		cur.Adjustment = coord.Adjustment
		cur.Height = coord.Height
		return
	}
	c.peers[peer] = coord.Clone()
}

// Update incorporates one probe observation: the peer's coordinate and
// the measured round-trip time. It returns the node's updated
// coordinate. Invalid inputs (malformed coordinate, non-positive or
// absurd RTT) are rejected without mutating state.
func (c *Client) Update(peer string, other *Coordinate, rtt time.Duration) (*Coordinate, error) {
	if other == nil {
		return nil, fmt.Errorf("coords: nil peer coordinate")
	}
	if err := c.checkCoordinate(other); err != nil {
		c.rejected++
		return nil, err
	}
	if rtt <= 0 || (c.cfg.MaxRTT > 0 && rtt > c.cfg.MaxRTT) {
		c.rejected++
		return nil, fmt.Errorf("coords: RTT %v outside acceptable range (0, %v]", rtt, c.cfg.MaxRTT)
	}

	rttSeconds := c.latencyFilter(peer, rtt.Seconds())
	c.updateVivaldi(other, rttSeconds)
	c.updateAdjustment(other, rttSeconds)
	c.updateGravity()
	c.storePeer(peer, other)
	c.updates++
	return c.coord.Clone(), nil
}

// Forget drops the per-peer state for a departed member.
func (c *Client) Forget(peer string) {
	delete(c.latencyFilters, peer)
	delete(c.peers, peer)
}

// PeerNames returns the names of every peer with a cached coordinate,
// sorted — the enumeration behind coordinate-table ops surfaces (the
// agent's /coords endpoint).
func (c *Client) PeerNames() []string {
	names := make([]string, 0, len(c.peers))
	for name := range c.peers {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// PeerCoordinate returns the cached coordinate last heard from the
// peer, or nil when none is known.
func (c *Client) PeerCoordinate(peer string) *Coordinate {
	if co, ok := c.peers[peer]; ok {
		return co.Clone()
	}
	return nil
}

// EstimateRTT predicts the round-trip time to the peer from the cached
// coordinates. The second return is false when the peer's coordinate
// is unknown.
func (c *Client) EstimateRTT(peer string) (time.Duration, bool) {
	co, ok := c.peers[peer]
	if !ok {
		return 0, false
	}
	return c.coord.DistanceTo(co), true
}

// PeerRTT predicts the round-trip time between two third-party peers
// from their cached coordinates — the single-pair form of the estimate
// NearestPeers ranks by (how far is a relay candidate from the probe
// target, as seen from here), exposed for callers that need one pair
// rather than a ranking. The second return is false when either peer's
// coordinate is unknown.
func (c *Client) PeerRTT(a, b string) (time.Duration, bool) {
	ca, ok := c.peers[a]
	if !ok {
		return 0, false
	}
	cb, ok := c.peers[b]
	if !ok {
		return 0, false
	}
	return ca.DistanceTo(cb), true
}

// NearestPeers returns up to k of the candidate peers ranked by
// estimated RTT from the reference point: the cached coordinate of the
// named ref peer, or the node's own coordinate when ref is empty.
// Candidates with no cached coordinate are skipped (the caller decides
// how to fill the shortfall); an unknown non-empty ref yields nil. Ties
// break by name, and the candidate order does not affect the result, so
// the ranking is deterministic — a requirement for same-seed simulation
// reproducibility.
func (c *Client) NearestPeers(ref string, candidates []string, k int) []string {
	if k <= 0 {
		return nil
	}
	if ref != "" {
		if _, ok := c.peers[ref]; !ok {
			return nil
		}
	}
	idx := c.NearestPeerIndexes(ref, candidates, k, nil)
	out := make([]string, len(idx))
	for i, j := range idx {
		out[i] = candidates[j]
	}
	return out
}

// NearestPeerIndexes is NearestPeers returning candidate indexes instead
// of names, appended to out (pass a reused slice to rank without
// allocating). Ranking, tie-breaking and edge cases are identical to
// NearestPeers: candidates without cached coordinates are skipped, ties
// break by name, and an unknown non-empty ref yields out unchanged.
func (c *Client) NearestPeerIndexes(ref string, candidates []string, k int, out []int) []int {
	if k <= 0 {
		return out
	}
	refCoord := c.coord
	if ref != "" {
		co, ok := c.peers[ref]
		if !ok {
			return out
		}
		refCoord = co
	}
	pool := c.ranked[:0]
	for i, name := range candidates {
		co, ok := c.peers[name]
		if !ok {
			continue
		}
		pool = append(pool, rankedPeer{i, name, refCoord.DistanceTo(co)})
	}
	c.ranked = pool[:0]
	// slices.SortFunc, unlike sort.Slice, does not box the slice or the
	// comparator, so ranking is allocation-free. The comparator is a
	// strict total order (names are unique), so any correct sort yields
	// the same permutation — determinism does not depend on stability.
	slices.SortFunc(pool, func(x, y rankedPeer) int {
		if x.rtt != y.rtt {
			if x.rtt < y.rtt {
				return -1
			}
			return 1
		}
		return strings.Compare(x.name, y.name)
	})
	if k > len(pool) {
		k = len(pool)
	}
	for i := 0; i < k; i++ {
		out = append(out, pool[i].idx)
	}
	return out
}

// Stats reports how many observations the engine has applied and
// rejected.
func (c *Client) Stats() (updates, rejected uint64) {
	return c.updates, c.rejected
}

func (c *Client) checkCoordinate(coord *Coordinate) error {
	if !c.coord.IsCompatibleWith(coord) {
		return fmt.Errorf("coords: dimensionality mismatch: ours %d, theirs %d", len(c.coord.Vec), len(coord.Vec))
	}
	if !coord.IsValid() {
		return fmt.Errorf("coords: rejected invalid coordinate (NaN/Inf component)")
	}
	return nil
}

// latencyFilter pushes one RTT sample (seconds) into the peer's window
// and returns the window median — the Vivaldi paper's MEDIAN filter,
// which discards one-off latency spikes without the lag of a mean.
func (c *Client) latencyFilter(peer string, rttSeconds float64) float64 {
	samples := c.latencyFilters[peer]
	samples = append(samples, rttSeconds)
	if len(samples) > c.cfg.LatencyFilterSize {
		// Shift in place instead of reslicing forward: a [1:] reslice
		// walks the window through its backing array, so every append
		// at capacity reallocated; the shift keeps one fixed-size
		// array per peer for the life of the filter.
		copy(samples, samples[1:])
		samples = samples[:len(samples)-1]
	}
	c.latencyFilters[peer] = samples

	sorted := append(c.medScratch[:0], samples...)
	c.medScratch = sorted[:0]
	sort.Float64s(sorted)
	return sorted[len(sorted)/2]
}

// updateVivaldi applies the core spring-relaxation step.
func (c *Client) updateVivaldi(other *Coordinate, rttSeconds float64) {
	if rttSeconds < zeroThreshold {
		rttSeconds = zeroThreshold
	}
	dist := c.coord.DistanceTo(other).Seconds()
	wrongness := math.Abs(dist-rttSeconds) / rttSeconds

	totalError := c.coord.Error + other.Error
	if totalError < zeroThreshold {
		totalError = zeroThreshold
	}
	weight := c.coord.Error / totalError

	c.coord.Error = math.Min(
		wrongness*c.cfg.VivaldiCE*weight+c.coord.Error*(1.0-c.cfg.VivaldiCE*weight),
		c.cfg.VivaldiErrorMax)

	force := c.cfg.VivaldiCC * weight * (rttSeconds - dist)
	c.coord.applyForce(c.cfg, force, other, c.cfg.Rand, c.unitScratch)
}

// updateAdjustment maintains the additive adjustment term: the average
// over the window of (measured − modelled) raw distances, split evenly
// between the two endpoints of each future prediction.
func (c *Client) updateAdjustment(other *Coordinate, rttSeconds float64) {
	if c.cfg.AdjustmentWindowSize <= 0 {
		return
	}
	c.adjustmentSamples[c.adjustmentIndex] = rttSeconds - c.coord.rawDistanceTo(other)
	c.adjustmentIndex = (c.adjustmentIndex + 1) % c.cfg.AdjustmentWindowSize

	sum := 0.0
	for _, s := range c.adjustmentSamples {
		sum += s
	}
	c.coord.Adjustment = sum / (2.0 * float64(c.cfg.AdjustmentWindowSize))
}

// updateGravity pulls the coordinate toward the origin in proportion
// to its distance, countering whole-system drift.
func (c *Client) updateGravity() {
	if c.cfg.GravityRho <= 0 {
		return
	}
	dist := c.origin.DistanceTo(c.coord).Seconds()
	force := -1.0 * dist / c.cfg.GravityRho
	c.coord.applyForce(c.cfg, force, c.origin, c.cfg.Rand, c.unitScratch)
}
