package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestPercentileBasics(t *testing.T) {
	vals := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 1},
		{100, 10},
		{50, 5.5}, // interpolated median of an even-length set
		{25, 3.25},
		{90, 9.1},
	}
	for _, c := range cases {
		if got := Percentile(vals, c.p); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("P%v = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestPercentileEdgeCases(t *testing.T) {
	if got := Percentile(nil, 50); got != 0 {
		t.Errorf("empty percentile = %v", got)
	}
	if got := Percentile([]float64{7}, 99); got != 7 {
		t.Errorf("single-sample percentile = %v", got)
	}
	if got := Percentile([]float64{3, 1}, -5); got != 1 {
		t.Errorf("clamped-low percentile = %v", got)
	}
	if got := Percentile([]float64{3, 1}, 150); got != 3 {
		t.Errorf("clamped-high percentile = %v", got)
	}
}

func TestPercentileDoesNotMutateInput(t *testing.T) {
	vals := []float64{5, 1, 4, 2, 3}
	Percentile(vals, 50)
	want := []float64{5, 1, 4, 2, 3}
	for i := range vals {
		if vals[i] != want[i] {
			t.Fatalf("input mutated: %v", vals)
		}
	}
}

func TestSummarize(t *testing.T) {
	vals := make([]float64, 1000)
	for i := range vals {
		vals[i] = float64(i + 1) // 1..1000
	}
	s := Summarize(vals)
	if s.Count != 1000 {
		t.Errorf("count = %d", s.Count)
	}
	if math.Abs(s.Median-500.5) > 1e-9 {
		t.Errorf("median = %v", s.Median)
	}
	if math.Abs(s.Mean-500.5) > 1e-9 {
		t.Errorf("mean = %v", s.Mean)
	}
	if s.Max != 1000 {
		t.Errorf("max = %v", s.Max)
	}
	if s.P99 < 989 || s.P99 > 991 {
		t.Errorf("p99 = %v", s.P99)
	}
	if s.P999 < 998 || s.P999 > 1000 {
		t.Errorf("p999 = %v", s.P999)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if s := Summarize(nil); s != (Summary{}) {
		t.Errorf("empty summary = %+v", s)
	}
}

func TestDurationsToSeconds(t *testing.T) {
	in := []time.Duration{time.Second, 1500 * time.Millisecond, 0}
	got := DurationsToSeconds(in)
	want := []float64{1, 1.5, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("got %v", got)
		}
	}
}

func TestPercentOf(t *testing.T) {
	if got := PercentOf(50, 200); got != 25 {
		t.Errorf("PercentOf(50, 200) = %v", got)
	}
	if got := PercentOf(0, 0); got != 100 {
		t.Errorf("PercentOf(0, 0) = %v, want 100", got)
	}
	if got := PercentOf(5, 0); !math.IsNaN(got) {
		t.Errorf("PercentOf(5, 0) = %v, want NaN", got)
	}
}

func TestQuickPercentileWithinRange(t *testing.T) {
	f := func(raw []float64, p8 uint8) bool {
		var vals []float64
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				vals = append(vals, v)
			}
		}
		if len(vals) == 0 {
			return true
		}
		p := float64(p8) / 255 * 100
		got := Percentile(vals, p)
		sorted := append([]float64(nil), vals...)
		sort.Float64s(sorted)
		return got >= sorted[0] && got <= sorted[len(sorted)-1]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickPercentileMonotoneInP(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	vals := make([]float64, 500)
	for i := range vals {
		vals[i] = rng.NormFloat64() * 100
	}
	prev := math.Inf(-1)
	for p := 0.0; p <= 100; p += 0.5 {
		got := Percentile(vals, p)
		if got < prev {
			t.Fatalf("P%v = %v < P%v = %v", p, got, p-0.5, prev)
		}
		prev = got
	}
}
