// Package stats provides the small statistical toolkit the evaluation
// needs: percentiles over latency samples and ratio tables against a
// baseline, as used throughout the paper's §V-F.
package stats

import (
	"math"
	"sort"
	"time"
)

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) of values using
// linear interpolation between closest ranks. It returns 0 for an empty
// slice. The input is not modified.
func Percentile(values []float64, p float64) float64 {
	if len(values) == 0 {
		return 0
	}
	sorted := make([]float64, len(values))
	copy(sorted, values)
	sort.Float64s(sorted)
	return percentileSorted(sorted, p)
}

func percentileSorted(sorted []float64, p float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Summary holds the percentile set the paper reports for latencies
// (Table V): median, 99th and 99.9th.
type Summary struct {
	// Count is the number of samples.
	Count int

	// Median is the 50th percentile.
	Median float64

	// P99 is the 99th percentile.
	P99 float64

	// P999 is the 99.9th percentile.
	P999 float64

	// Mean is the arithmetic mean.
	Mean float64

	// Max is the largest sample.
	Max float64
}

// Summarize computes a Summary over values. The input is not modified.
func Summarize(values []float64) Summary {
	if len(values) == 0 {
		return Summary{}
	}
	sorted := make([]float64, len(values))
	copy(sorted, values)
	sort.Float64s(sorted)
	sum := 0.0
	for _, v := range sorted {
		sum += v
	}
	return Summary{
		Count:  len(sorted),
		Median: percentileSorted(sorted, 50),
		P99:    percentileSorted(sorted, 99),
		P999:   percentileSorted(sorted, 99.9),
		Mean:   sum / float64(len(sorted)),
		Max:    sorted[len(sorted)-1],
	}
}

// DurationsToSeconds converts a slice of durations to float seconds,
// the unit the paper's latency tables use.
func DurationsToSeconds(ds []time.Duration) []float64 {
	out := make([]float64, len(ds))
	for i, d := range ds {
		out[i] = d.Seconds()
	}
	return out
}

// PercentOf returns value as a percentage of base (the paper's "% SWIM"
// columns). It returns math.NaN() when base is zero and value non-zero,
// and 100 when both are zero (equal to baseline).
func PercentOf(value, base float64) float64 {
	if base == 0 {
		if value == 0 {
			return 100
		}
		return math.NaN()
	}
	return value / base * 100
}
