package telemetry

import (
	"fmt"
	"sync"
	"testing"
)

// intKey keys test partitions; the low bits pick the epoch so eviction
// order is easy to control.
type intKey struct {
	ID    int
	Epoch uint64
}

func newTestBuffer(t *testing.T, cfg BufferConfig[intKey]) *Buffer[intKey, int] {
	t.Helper()
	b, err := NewBuffer[intKey, int](cfg)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestBufferConfigValidation(t *testing.T) {
	cases := []struct {
		name string
		cfg  BufferConfig[intKey]
	}{
		{"no ring capacity", BufferConfig[intKey]{MaxPartitions: 1}},
		{"no partition bound", BufferConfig[intKey]{MaxSamplesPerPartition: 1}},
		{"stripes without hash", BufferConfig[intKey]{MaxSamplesPerPartition: 1, MaxPartitions: 4, Stripes: 4}},
	}
	for _, tc := range cases {
		if _, err := NewBuffer[intKey, int](tc.cfg); err == nil {
			t.Errorf("%s: no error", tc.name)
		}
	}
	// Stripes are rounded up to a power of two.
	b := newTestBuffer(t, BufferConfig[intKey]{
		MaxSamplesPerPartition: 2,
		MaxPartitions:          12,
		Stripes:                3,
		Hash:                   func(k intKey) uint64 { return uint64(k.ID) },
	})
	if got := len(b.stripes); got != 4 {
		t.Errorf("stripes = %d, want 4", got)
	}
	// 12/4 = 3 partitions per stripe × 2 samples = 24.
	if got := b.MaxSamples(); got != 24 {
		t.Errorf("MaxSamples = %d, want 24", got)
	}
}

func TestBufferRingOverwrite(t *testing.T) {
	b := newTestBuffer(t, BufferConfig[intKey]{MaxSamplesPerPartition: 3, MaxPartitions: 1})
	k := intKey{ID: 1}
	for i := 1; i <= 5; i++ {
		b.Add(k, i)
	}
	if got := b.Len(); got != 3 {
		t.Errorf("Len = %d, want 3", got)
	}
	if got := b.Overwrites(); got != 2 {
		t.Errorf("Overwrites = %d, want 2", got)
	}
	var got []int
	b.ForEach(func(_ intKey, ss []int) { got = append(got, ss...) })
	// Oldest first: 1 and 2 were overwritten by 4 and 5.
	want := []int{3, 4, 5}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("samples = %v, want %v", got, want)
	}
}

func TestBufferPartialRingOrder(t *testing.T) {
	b := newTestBuffer(t, BufferConfig[intKey]{MaxSamplesPerPartition: 8, MaxPartitions: 1})
	for i := 1; i <= 3; i++ {
		b.Add(intKey{ID: 1}, i)
	}
	var got []int
	b.ForEach(func(_ intKey, ss []int) { got = append(got, ss...) })
	if fmt.Sprint(got) != fmt.Sprint([]int{1, 2, 3}) {
		t.Errorf("samples = %v, want [1 2 3]", got)
	}
}

func TestBufferOldestEpochEviction(t *testing.T) {
	b := newTestBuffer(t, BufferConfig[intKey]{
		MaxSamplesPerPartition: 4,
		MaxPartitions:          2,
		Epoch:                  func(k intKey) uint64 { return k.Epoch },
	})
	b.Add(intKey{ID: 1, Epoch: 10}, 1)
	b.Add(intKey{ID: 2, Epoch: 20}, 2)
	if got := b.Partitions(); got != 2 {
		t.Fatalf("partitions = %d, want 2", got)
	}
	// A third partition evicts epoch 10, the oldest.
	b.Add(intKey{ID: 3, Epoch: 30}, 3)
	if got := b.Partitions(); got != 2 {
		t.Errorf("partitions = %d, want 2", got)
	}
	if got := b.Evictions(); got != 1 {
		t.Errorf("evictions = %d, want 1", got)
	}
	epochs := map[uint64]bool{}
	b.ForEach(func(k intKey, _ []int) { epochs[k.Epoch] = true })
	if epochs[10] || !epochs[20] || !epochs[30] {
		t.Errorf("surviving epochs = %v, want {20, 30}", epochs)
	}
}

// TestBufferEvictionTieBreak pins the deterministic equal-epoch
// eviction order: with Less set, the least key among the lowest-epoch
// partitions is the victim, independent of map iteration order.
func TestBufferEvictionTieBreak(t *testing.T) {
	for run := 0; run < 20; run++ {
		b := newTestBuffer(t, BufferConfig[intKey]{
			MaxSamplesPerPartition: 4,
			MaxPartitions:          4,
			Epoch:                  func(k intKey) uint64 { return k.Epoch },
			Less: func(a, b intKey) bool {
				if a.Epoch != b.Epoch {
					return a.Epoch < b.Epoch
				}
				return a.ID < b.ID
			},
		})
		// Four equal-epoch partitions, inserted in varying order so a
		// map-order tie-break would pick different victims across runs.
		for i, id := range []int{3, 1, 4, 2} {
			b.Add(intKey{ID: (id + run) % 4, Epoch: 5}, i)
		}
		b.Add(intKey{ID: 100, Epoch: 6}, 9)
		if got := b.Evictions(); got != 1 {
			t.Fatalf("run %d: evictions = %d, want 1", run, got)
		}
		ids := map[int]bool{}
		b.ForEach(func(k intKey, _ []int) { ids[k.ID] = true })
		if ids[0] || !ids[1] || !ids[2] || !ids[3] || !ids[100] {
			t.Errorf("run %d: surviving IDs = %v, want {1, 2, 3, 100}", run, ids)
		}
	}
}

// TestBufferMemoryBound is the churn test for the hard memory bound:
// a stream of ever-new keys must never push occupancy past MaxSamples.
func TestBufferMemoryBound(t *testing.T) {
	b := newTestBuffer(t, BufferConfig[intKey]{
		MaxSamplesPerPartition: 4,
		MaxPartitions:          16,
		Stripes:                4,
		Hash:                   func(k intKey) uint64 { return uint64(k.ID) * 0x9e3779b97f4a7c15 },
		Epoch:                  func(k intKey) uint64 { return k.Epoch },
	})
	bound := b.MaxSamples()
	for i := 0; i < 10_000; i++ {
		b.Add(intKey{ID: i % 257, Epoch: uint64(i / 100)}, i)
		if got := b.Len(); got > bound {
			t.Fatalf("after %d adds: Len = %d exceeds bound %d", i+1, got, bound)
		}
	}
	if b.Evictions() == 0 {
		t.Error("churn caused no evictions")
	}
}

// TestBufferConcurrent exercises striped writes racing ForEach and the
// occupancy accessors; run under -race this is the buffer's
// thread-safety proof.
func TestBufferConcurrent(t *testing.T) {
	b := newTestBuffer(t, BufferConfig[intKey]{
		MaxSamplesPerPartition: 8,
		MaxPartitions:          64,
		Stripes:                8,
		Hash:                   func(k intKey) uint64 { return uint64(k.ID) * 0x9e3779b97f4a7c15 },
		Epoch:                  func(k intKey) uint64 { return k.Epoch },
	})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				b.Add(intKey{ID: (w*31 + i) % 97, Epoch: uint64(i / 50)}, i)
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			n := 0
			b.ForEach(func(_ intKey, ss []int) { n += len(ss) })
			if n > b.MaxSamples() {
				t.Errorf("snapshot saw %d samples, bound %d", n, b.MaxSamples())
				return
			}
			_ = b.Len()
			_ = b.Partitions()
		}
	}()
	wg.Wait()
}

// BenchmarkBufferAdd pins the steady-state write path: once a
// partition's ring exists, Add must not allocate.
func BenchmarkBufferAdd(b *testing.B) {
	buf, err := NewBuffer[intKey, int](BufferConfig[intKey]{
		MaxSamplesPerPartition: 128,
		MaxPartitions:          64,
		Stripes:                8,
		Hash:                   func(k intKey) uint64 { return uint64(k.ID) * 0x9e3779b97f4a7c15 },
	})
	if err != nil {
		b.Fatal(err)
	}
	k := intKey{ID: 7}
	buf.Add(k, 0) // create the partition outside the measured loop
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Add(k, i)
	}
	if testing.AllocsPerRun(100, func() { buf.Add(k, 1) }) != 0 {
		b.Error("steady-state Add allocates")
	}
}
