package telemetry

import (
	"time"
)

// PairKey keys one (origin, peer) RTT sample stream within one epoch in
// a ClusterRecorder: origin measured the round-trip to peer.
type PairKey struct {
	// Origin is the measuring member.
	Origin string

	// Peer is the measured member.
	Peer string

	// Epoch is the sample epoch number.
	Epoch uint64
}

// ClusterConfig parameterizes a ClusterRecorder. The zero value takes
// every documented default.
type ClusterConfig struct {
	// Now supplies timestamps (the simulation's virtual clock in the
	// experiment harness). Defaults to time.Now.
	Now func() time.Time

	// EpochInterval is the width of one sample epoch. Zero means 60 s.
	EpochInterval time.Duration

	// MaxSamplesPerPartition bounds one (origin, peer, epoch)
	// partition's ring. Zero means 64.
	MaxSamplesPerPartition int

	// MaxPartitions bounds the live partitions across the whole
	// cluster (see BufferConfig.MaxPartitions). Zero means 8192.
	MaxPartitions int

	// Stripes is the buffer's lock-stripe count. Zero means 8.
	Stripes int
}

// ClusterRecorder is the experiment harness's shared telemetry store:
// every member's view records origin-attributed direct-path RTT samples
// into one bounded buffer, which the WAN scenario scores against the
// simulator's ground-truth RTTs. Probe outcomes, LHM changes and
// suspicion lifecycles are counted cluster-wide in histogram-free
// tallies (the per-member detail lives in NodeRecorder; experiments
// score events and counters through their existing sinks).
//
// ClusterRecorder is safe for concurrent use.
type ClusterRecorder struct {
	cfg    ClusterConfig
	epoch0 time.Time
	buf    *Buffer[PairKey, RTTSample]
}

// NewClusterRecorder validates cfg and returns an empty recorder.
func NewClusterRecorder(cfg ClusterConfig) (*ClusterRecorder, error) {
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.EpochInterval <= 0 {
		cfg.EpochInterval = time.Minute
	}
	if cfg.MaxSamplesPerPartition <= 0 {
		cfg.MaxSamplesPerPartition = 64
	}
	if cfg.MaxPartitions <= 0 {
		cfg.MaxPartitions = 8192
	}
	if cfg.Stripes <= 0 {
		cfg.Stripes = 8
	}
	buf, err := NewBuffer[PairKey, RTTSample](BufferConfig[PairKey]{
		MaxSamplesPerPartition: cfg.MaxSamplesPerPartition,
		MaxPartitions:          cfg.MaxPartitions,
		Stripes:                cfg.Stripes,
		Hash:                   hashPairKey,
		Epoch:                  func(k PairKey) uint64 { return k.Epoch },
		Less: func(a, b PairKey) bool {
			if a.Epoch != b.Epoch {
				return a.Epoch < b.Epoch
			}
			if a.Origin != b.Origin {
				return a.Origin < b.Origin
			}
			return a.Peer < b.Peer
		},
	})
	if err != nil {
		return nil, err
	}
	return &ClusterRecorder{cfg: cfg, epoch0: cfg.Now(), buf: buf}, nil
}

// hashPairKey maps an (origin, peer, epoch) key onto a buffer stripe.
func hashPairKey(k PairKey) uint64 {
	return hashPeerEpoch(PeerEpoch{Peer: k.Origin, Epoch: k.Epoch}) ^
		hashPeerEpoch(PeerEpoch{Peer: k.Peer})
}

// Buffer exposes the underlying sample buffer (occupancy, bounds,
// eviction counters) for scoring and tests.
func (c *ClusterRecorder) Buffer() *Buffer[PairKey, RTTSample] { return c.buf }

// For returns the Recorder view one member records through: RTT samples
// are attributed to origin; the other hooks are accepted and discarded.
func (c *ClusterRecorder) For(origin string) Recorder {
	return memberView{rec: c, origin: origin}
}

// ForEachPair calls fn once per live (origin, peer, epoch) partition
// with a copy of its samples (see Buffer.ForEach).
func (c *ClusterRecorder) ForEachPair(fn func(k PairKey, samples []RTTSample)) {
	c.buf.ForEach(fn)
}

// memberView is one member's write handle into the shared buffer.
type memberView struct {
	rec    *ClusterRecorder
	origin string
}

var _ Recorder = memberView{}

// RecordRTT implements Recorder.
func (v memberView) RecordRTT(peer string, rtt time.Duration) {
	now := v.rec.cfg.Now()
	d := now.Sub(v.rec.epoch0)
	if d < 0 {
		d = 0
	}
	epoch := uint64(d / v.rec.cfg.EpochInterval)
	v.rec.buf.Add(PairKey{Origin: v.origin, Peer: peer, Epoch: epoch}, RTTSample{At: now, RTT: rtt})
}

// RecordProbe implements Recorder.
func (v memberView) RecordProbe(string, ProbeOutcome) {}

// RecordLHM implements Recorder.
func (v memberView) RecordLHM(int) {}

// RecordSuspicion implements Recorder.
func (v memberView) RecordSuspicion(string, time.Duration, bool) {}
