package telemetry

import (
	"sync/atomic"
	"time"
)

// ProbeOutcome classifies how one probe round against a peer ended.
type ProbeOutcome uint8

// Probe outcomes recorded by the protocol core.
const (
	// OutcomeDirectAck is a round answered by the target on the direct
	// path before escalation.
	OutcomeDirectAck ProbeOutcome = iota + 1

	// OutcomeIndirectAck is a round answered only after escalation to
	// indirect probes or the TCP fallback.
	OutcomeIndirectAck

	// OutcomeTimeout is a round that closed with no ack at all — the
	// probe failure that feeds the per-peer loss rate.
	OutcomeTimeout
)

// String returns a short name for the outcome.
func (o ProbeOutcome) String() string {
	switch o {
	case OutcomeDirectAck:
		return "direct_ack"
	case OutcomeIndirectAck:
		return "indirect_ack"
	case OutcomeTimeout:
		return "timeout"
	default:
		return "unknown"
	}
}

// Recorder receives protocol observations from one node. Install one
// through core's Config.Telemetry; nil (the default) disables recording
// at zero cost. Implementations must be safe for concurrent use and
// must not block: every hook runs under the node's protocol lock.
//
// The determinism contract: implementations must not draw from the
// node's RNG, schedule timers, or send packets — recording is strictly
// write-only bookkeeping, so enabling it cannot perturb a simulation's
// event ordering.
type Recorder interface {
	// RecordRTT reports one measured direct-path round-trip to a peer —
	// the same measurement that feeds the Vivaldi coordinate engine,
	// taken whether or not coordinates are enabled.
	RecordRTT(peer string, rtt time.Duration)

	// RecordProbe reports the outcome of one probe round this node
	// originated against peer.
	RecordProbe(peer string, outcome ProbeOutcome)

	// RecordLHM reports the Local Health Multiplier's new score after a
	// change (probe success/failure, missed nack, refute).
	RecordLHM(score int)

	// RecordSuspicion reports one completed suspicion lifecycle
	// observed at this node: how long peer stayed suspected before the
	// suspicion resolved, and whether it resolved in death (true) or
	// refutation (false).
	RecordSuspicion(peer string, d time.Duration, died bool)
}

// DefaultRTTBuckets are the histogram bounds used for RTT observations
// when none are configured: sub-millisecond LAN through multi-second
// outliers.
var DefaultRTTBuckets = []time.Duration{
	500 * time.Microsecond,
	time.Millisecond,
	2500 * time.Microsecond,
	5 * time.Millisecond,
	10 * time.Millisecond,
	25 * time.Millisecond,
	50 * time.Millisecond,
	100 * time.Millisecond,
	250 * time.Millisecond,
	500 * time.Millisecond,
	time.Second,
	2500 * time.Millisecond,
}

// DefaultSuspicionBuckets are the histogram bounds used for suspicion
// lifecycle durations when none are configured: sub-second refutations
// through multi-minute timeouts.
var DefaultSuspicionBuckets = []time.Duration{
	250 * time.Millisecond,
	500 * time.Millisecond,
	time.Second,
	2 * time.Second,
	5 * time.Second,
	10 * time.Second,
	30 * time.Second,
	time.Minute,
	2 * time.Minute,
	5 * time.Minute,
}

// Histogram is a fixed-bucket duration histogram with lock-free
// observation: one atomic add per bucket hit plus the running count and
// sum, cheap enough for the probe hot path.
//
// Histogram is safe for concurrent use.
type Histogram struct {
	bounds []time.Duration
	counts []atomic.Uint64
	count  atomic.Uint64
	sumNs  atomic.Int64
}

// NewHistogram returns a histogram over the given ascending bucket
// upper bounds, plus an implicit overflow bucket. Nil bounds take
// DefaultRTTBuckets.
func NewHistogram(bounds []time.Duration) *Histogram {
	if len(bounds) == 0 {
		bounds = DefaultRTTBuckets
	}
	return &Histogram{
		bounds: append([]time.Duration(nil), bounds...),
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	i := 0
	for i < len(h.bounds) && d > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sumNs.Add(int64(d))
}

// HistogramSnapshot is a point-in-time copy of a histogram, in
// Prometheus shape: Counts[i] holds observations ≤ Bounds[i] (the last
// entry is the overflow bucket) and the counts are per-bucket, not
// cumulative.
type HistogramSnapshot struct {
	// Bounds are the bucket upper bounds (JSON: nanoseconds).
	Bounds []time.Duration `json:"bounds_ns"`

	// Counts has one entry per bound plus the overflow bucket.
	Counts []uint64 `json:"counts"`

	// Count is the total number of observations.
	Count uint64 `json:"count"`

	// Sum is the sum of all observed durations (JSON: nanoseconds).
	Sum time.Duration `json:"sum_ns"`
}

// Snapshot copies the histogram's current state. Concurrent Observe
// calls may straddle the copy; each bucket is individually consistent.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: append([]time.Duration(nil), h.bounds...),
		Counts: make([]uint64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    time.Duration(h.sumNs.Load()),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}
