package telemetry

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeClock is a hand-advanced Now source for recorder tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1000, 0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]time.Duration{time.Millisecond, 10 * time.Millisecond})
	h.Observe(500 * time.Microsecond) // bucket 0
	h.Observe(time.Millisecond)       // bucket 0 (bounds are inclusive)
	h.Observe(5 * time.Millisecond)   // bucket 1
	h.Observe(time.Second)            // overflow
	s := h.Snapshot()
	if want := []uint64{2, 1, 1}; len(s.Counts) != 3 ||
		s.Counts[0] != want[0] || s.Counts[1] != want[1] || s.Counts[2] != want[2] {
		t.Errorf("counts = %v, want %v", s.Counts, want)
	}
	if s.Count != 4 {
		t.Errorf("count = %d, want 4", s.Count)
	}
	if want := 500*time.Microsecond + 6*time.Millisecond + time.Second; s.Sum != want {
		t.Errorf("sum = %v, want %v", s.Sum, want)
	}
}

func TestProbeOutcomeString(t *testing.T) {
	cases := map[ProbeOutcome]string{
		OutcomeDirectAck:   "direct_ack",
		OutcomeIndirectAck: "indirect_ack",
		OutcomeTimeout:     "timeout",
		ProbeOutcome(99):   "unknown",
	}
	for o, want := range cases {
		if got := o.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", o, got, want)
		}
	}
}

func TestNodeRecorderSnapshot(t *testing.T) {
	clock := newFakeClock()
	r, err := NewNodeRecorder(NodeConfig{Now: clock.Now, EpochInterval: time.Minute})
	if err != nil {
		t.Fatal(err)
	}

	// Ten RTT samples for peer a across two epochs: 10ms..100ms.
	for i := 1; i <= 10; i++ {
		r.RecordRTT("a", time.Duration(i)*10*time.Millisecond)
		clock.Advance(15 * time.Second) // crosses an epoch every 4 samples
	}
	r.RecordProbe("a", OutcomeDirectAck)
	r.RecordProbe("a", OutcomeDirectAck)
	r.RecordProbe("a", OutcomeIndirectAck)
	r.RecordProbe("a", OutcomeTimeout)
	r.RecordProbe("b", OutcomeTimeout)
	r.RecordSuspicion("b", 3*time.Second, true)
	r.RecordSuspicion("a", time.Second, false)
	r.RecordLHM(1)
	r.RecordLHM(2)
	r.RecordLHM(2) // unchanged, not a change

	s := r.Snapshot()
	if len(s.Peers) != 2 || s.Peers[0].Peer != "a" || s.Peers[1].Peer != "b" {
		t.Fatalf("peers = %+v", s.Peers)
	}
	a := s.Peers[0]
	if a.Samples != 10 {
		t.Errorf("a samples = %d, want 10", a.Samples)
	}
	if a.Epochs < 2 {
		t.Errorf("a epochs = %d, want >= 2", a.Epochs)
	}
	if a.RTTP50Ms < 40 || a.RTTP50Ms > 60 {
		t.Errorf("a p50 = %g ms, want ~50", a.RTTP50Ms)
	}
	if a.RTTP99Ms < 90 {
		t.Errorf("a p99 = %g ms, want >= 90", a.RTTP99Ms)
	}
	if a.DirectAcks != 2 || a.IndirectAcks != 1 || a.Timeouts != 1 {
		t.Errorf("a outcomes = %d/%d/%d", a.DirectAcks, a.IndirectAcks, a.Timeouts)
	}
	if a.LossRate != 0.25 {
		t.Errorf("a loss = %g, want 0.25", a.LossRate)
	}
	if a.Suspicions != 1 || a.Deaths != 0 {
		t.Errorf("a suspicions = %d deaths = %d", a.Suspicions, a.Deaths)
	}
	b := s.Peers[1]
	if b.Timeouts != 1 || b.LossRate != 1 {
		t.Errorf("b timeouts = %d loss = %g", b.Timeouts, b.LossRate)
	}
	if b.Suspicions != 1 || b.Deaths != 1 {
		t.Errorf("b suspicions = %d deaths = %d", b.Suspicions, b.Deaths)
	}
	if s.LHM != 2 || s.LHMChanges != 2 {
		t.Errorf("lhm = %d changes = %d", s.LHM, s.LHMChanges)
	}
	if s.Samples != 10 {
		t.Errorf("samples = %d, want 10", s.Samples)
	}
	if s.RTT.Count != 10 || s.Suspicion.Count != 2 {
		t.Errorf("histogram counts: rtt %d suspicion %d", s.RTT.Count, s.Suspicion.Count)
	}
}

// TestNodeRecorderMemoryBound churns peers and epochs past the
// configured partition bound and checks occupancy never exceeds the
// buffer's hard sample bound.
func TestNodeRecorderMemoryBound(t *testing.T) {
	clock := newFakeClock()
	r, err := NewNodeRecorder(NodeConfig{
		Now:                    clock.Now,
		EpochInterval:          time.Second,
		MaxSamplesPerPartition: 8,
		MaxPartitions:          32,
		Stripes:                4,
	})
	if err != nil {
		t.Fatal(err)
	}
	bound := r.Buffer().MaxSamples()
	peers := []string{"a", "b", "c", "d", "e", "f", "g"}
	for i := 0; i < 5000; i++ {
		r.RecordRTT(peers[i%len(peers)], time.Millisecond)
		clock.Advance(100 * time.Millisecond)
		if got := r.Buffer().Len(); got > bound {
			t.Fatalf("after %d samples: Len = %d exceeds bound %d", i+1, got, bound)
		}
	}
	if r.Buffer().Evictions() == 0 {
		t.Error("churn caused no evictions")
	}
	s := r.Snapshot()
	if s.Samples > bound {
		t.Errorf("snapshot samples = %d exceeds bound %d", s.Samples, bound)
	}
}

// TestNodeRecorderConcurrent races every write hook against Snapshot;
// under -race this is the recorder's thread-safety proof.
func TestNodeRecorderConcurrent(t *testing.T) {
	r, err := NewNodeRecorder(NodeConfig{MaxPartitions: 64})
	if err != nil {
		t.Fatal(err)
	}
	peers := []string{"a", "b", "c", "d"}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				p := peers[(w+i)%len(peers)]
				r.RecordRTT(p, time.Duration(i)*time.Microsecond)
				r.RecordProbe(p, ProbeOutcome(i%3+1))
				r.RecordLHM(i % 8)
				if i%50 == 0 {
					r.RecordSuspicion(p, time.Duration(i)*time.Millisecond, i%2 == 0)
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			s := r.Snapshot()
			if len(s.Peers) > len(peers) {
				t.Errorf("snapshot has %d peers", len(s.Peers))
				return
			}
		}
	}()
	wg.Wait()
	s := r.Snapshot()
	if s.RTT.Count != 4000 {
		t.Errorf("rtt count = %d, want 4000", s.RTT.Count)
	}
}

func TestClusterRecorderPairs(t *testing.T) {
	clock := newFakeClock()
	c, err := NewClusterRecorder(ClusterConfig{Now: clock.Now, EpochInterval: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	va, vb := c.For("a"), c.For("b")
	va.RecordRTT("b", 10*time.Millisecond)
	va.RecordRTT("b", 12*time.Millisecond)
	vb.RecordRTT("a", 11*time.Millisecond)
	clock.Advance(2 * time.Minute)
	va.RecordRTT("b", 14*time.Millisecond) // new epoch, new partition

	// The discarded hooks must not contribute samples.
	va.RecordProbe("b", OutcomeTimeout)
	va.RecordLHM(3)
	va.RecordSuspicion("b", time.Second, false)

	got := map[PairKey]int{}
	c.ForEachPair(func(k PairKey, ss []RTTSample) { got[k] = len(ss) })
	want := map[PairKey]int{
		{Origin: "a", Peer: "b", Epoch: 0}: 2,
		{Origin: "b", Peer: "a", Epoch: 0}: 1,
		{Origin: "a", Peer: "b", Epoch: 2}: 1,
	}
	if len(got) != len(want) {
		t.Fatalf("partitions = %v, want %v", got, want)
	}
	for k, n := range want {
		if got[k] != n {
			t.Errorf("partition %+v has %d samples, want %d", k, got[k], n)
		}
	}
}

func TestWriteCountersSorted(t *testing.T) {
	var b strings.Builder
	WriteCounters(&b, "lg_", map[string]int64{"zeta": 2, "alpha": 1})
	want := "# TYPE lg_alpha counter\nlg_alpha 1\n# TYPE lg_zeta counter\nlg_zeta 2\n"
	if b.String() != want {
		t.Errorf("output:\n%s\nwant:\n%s", b.String(), want)
	}
}

func TestWriteGauge(t *testing.T) {
	var b strings.Builder
	WriteGauge(&b, "lg_members", 42)
	want := "# TYPE lg_members gauge\nlg_members 42\n"
	if b.String() != want {
		t.Errorf("output:\n%s\nwant:\n%s", b.String(), want)
	}
}

// TestWriteHistogramExposition pins the Prometheus text format:
// cumulative le-labelled buckets in seconds, the +Inf bucket, and the
// _sum/_count pair.
func TestWriteHistogramExposition(t *testing.T) {
	h := NewHistogram([]time.Duration{time.Millisecond, 10 * time.Millisecond})
	h.Observe(500 * time.Microsecond)
	h.Observe(5 * time.Millisecond)
	h.Observe(time.Second)
	var b strings.Builder
	WriteHistogram(&b, "lg_rtt_seconds", h.Snapshot())
	want := strings.Join([]string{
		"# TYPE lg_rtt_seconds histogram",
		`lg_rtt_seconds_bucket{le="0.001"} 1`,
		`lg_rtt_seconds_bucket{le="0.01"} 2`,
		`lg_rtt_seconds_bucket{le="+Inf"} 3`,
		"lg_rtt_seconds_sum 1.0055",
		"lg_rtt_seconds_count 3",
		"",
	}, "\n")
	if b.String() != want {
		t.Errorf("output:\n%s\nwant:\n%s", b.String(), want)
	}
}
