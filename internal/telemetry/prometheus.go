package telemetry

import (
	"fmt"
	"io"
	"sort"
)

// WriteCounters renders a counter map in Prometheus text exposition
// format (stdlib only), one `# TYPE <prefix><name> counter` block per
// entry, sorted by name for a stable output. Counter names are assumed
// to already be valid metric name fragments (the metrics package's
// snake_case constants are).
func WriteCounters(w io.Writer, prefix string, counters map[string]int64) {
	names := make([]string, 0, len(counters))
	for name := range counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(w, "# TYPE %s%s counter\n%s%s %d\n", prefix, name, prefix, name, counters[name])
	}
}

// WriteGauge renders one gauge in Prometheus text exposition format.
func WriteGauge(w io.Writer, name string, value float64) {
	fmt.Fprintf(w, "# TYPE %s gauge\n%s %g\n", name, name, value)
}

// WriteHistogram renders a histogram snapshot in Prometheus text
// exposition format: cumulative `le`-labelled buckets (seconds), the
// `+Inf` bucket, and the `_sum`/`_count` pair.
func WriteHistogram(w io.Writer, name string, s HistogramSnapshot) {
	fmt.Fprintf(w, "# TYPE %s histogram\n", name)
	cum := uint64(0)
	for i, bound := range s.Bounds {
		cum += s.Counts[i]
		fmt.Fprintf(w, "%s_bucket{le=\"%g\"} %d\n", name, bound.Seconds(), cum)
	}
	if n := len(s.Bounds); n < len(s.Counts) {
		cum += s.Counts[n]
	}
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	fmt.Fprintf(w, "%s_sum %g\n", name, s.Sum.Seconds())
	fmt.Fprintf(w, "%s_count %d\n", name, s.Count)
}
