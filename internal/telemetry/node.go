package telemetry

import (
	"hash/maphash"
	"sort"
	"sync"
	"time"
)

// NodeConfig parameterizes a NodeRecorder. The zero value takes every
// documented default.
type NodeConfig struct {
	// Now supplies timestamps; defaults to time.Now. Simulated nodes
	// inject their virtual clock.
	Now func() time.Time

	// EpochInterval is the width of one sample epoch: per-peer RTT
	// samples are partitioned by (peer, epoch), and when the partition
	// bound is hit the oldest epoch is evicted first. Zero means 60 s.
	EpochInterval time.Duration

	// MaxSamplesPerPartition bounds one (peer, epoch) partition's ring.
	// Zero means 128.
	MaxSamplesPerPartition int

	// MaxPartitions bounds the live (peer, epoch) partitions (see
	// BufferConfig.MaxPartitions for the exact per-stripe enforcement).
	// Zero means 1024.
	MaxPartitions int

	// Stripes is the buffer's lock-stripe count. Zero means 8.
	Stripes int

	// RTTBuckets overrides the RTT histogram bounds. Nil takes
	// DefaultRTTBuckets.
	RTTBuckets []time.Duration

	// SuspicionBuckets overrides the suspicion-duration histogram
	// bounds. Nil takes DefaultSuspicionBuckets.
	SuspicionBuckets []time.Duration
}

// PeerEpoch keys one peer's RTT samples within one epoch.
type PeerEpoch struct {
	// Peer is the peer member's name.
	Peer string

	// Epoch is the sample epoch number (elapsed time since the
	// recorder started, in EpochInterval units).
	Epoch uint64
}

// RTTSample is one measured direct-path round-trip.
type RTTSample struct {
	// At is when the measurement was taken.
	At time.Time

	// RTT is the measured round-trip time.
	RTT time.Duration
}

// peerCounters accumulates one peer's probe outcomes.
type peerCounters struct {
	directAcks   uint64
	indirectAcks uint64
	timeouts     uint64
	suspicions   uint64
	deaths       uint64
}

// NodeRecorder implements Recorder for one live node: per-(peer, epoch)
// RTT sample partitions with a hard memory bound, per-peer probe
// outcome counters, and process-wide RTT/suspicion histograms plus the
// LHM gauge. It backs the agent's /telemetry and /metrics endpoints.
//
// NodeRecorder is safe for concurrent use.
type NodeRecorder struct {
	cfg    NodeConfig
	epoch0 time.Time
	buf    *Buffer[PeerEpoch, RTTSample]

	// RTTHist and SuspicionHist are the process-wide histograms, exposed
	// for Prometheus exposition.
	RTTHist       *Histogram
	SuspicionHist *Histogram

	mu         sync.Mutex
	peers      map[string]*peerCounters
	lhm        int
	lhmChanges uint64
}

var _ Recorder = (*NodeRecorder)(nil)

// peerEpochSeed seeds the stripe hash; process-local, never serialized.
var peerEpochSeed = maphash.MakeSeed()

// hashPeerEpoch maps a (peer, epoch) key onto a buffer stripe.
func hashPeerEpoch(k PeerEpoch) uint64 {
	var h maphash.Hash
	h.SetSeed(peerEpochSeed)
	h.WriteString(k.Peer)
	return h.Sum64() ^ k.Epoch
}

// NewNodeRecorder validates cfg and returns an empty recorder.
func NewNodeRecorder(cfg NodeConfig) (*NodeRecorder, error) {
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.EpochInterval <= 0 {
		cfg.EpochInterval = time.Minute
	}
	if cfg.MaxSamplesPerPartition <= 0 {
		cfg.MaxSamplesPerPartition = 128
	}
	if cfg.MaxPartitions <= 0 {
		cfg.MaxPartitions = 1024
	}
	if cfg.Stripes <= 0 {
		cfg.Stripes = 8
	}
	buf, err := NewBuffer[PeerEpoch, RTTSample](BufferConfig[PeerEpoch]{
		MaxSamplesPerPartition: cfg.MaxSamplesPerPartition,
		MaxPartitions:          cfg.MaxPartitions,
		Stripes:                cfg.Stripes,
		Hash:                   hashPeerEpoch,
		Epoch:                  func(k PeerEpoch) uint64 { return k.Epoch },
		Less: func(a, b PeerEpoch) bool {
			if a.Epoch != b.Epoch {
				return a.Epoch < b.Epoch
			}
			return a.Peer < b.Peer
		},
	})
	if err != nil {
		return nil, err
	}
	return &NodeRecorder{
		cfg:           cfg,
		epoch0:        cfg.Now(),
		buf:           buf,
		RTTHist:       NewHistogram(cfg.RTTBuckets),
		SuspicionHist: NewHistogram(firstNonEmpty(cfg.SuspicionBuckets, DefaultSuspicionBuckets)),
		peers:         make(map[string]*peerCounters),
	}, nil
}

// firstNonEmpty returns a if non-empty, b otherwise.
func firstNonEmpty(a, b []time.Duration) []time.Duration {
	if len(a) > 0 {
		return a
	}
	return b
}

// epochAt returns the epoch number for a timestamp.
func (r *NodeRecorder) epochAt(t time.Time) uint64 {
	d := t.Sub(r.epoch0)
	if d < 0 {
		return 0
	}
	return uint64(d / r.cfg.EpochInterval)
}

// Buffer exposes the underlying sample buffer (bounds, eviction
// counters) for tests and ops surfaces.
func (r *NodeRecorder) Buffer() *Buffer[PeerEpoch, RTTSample] { return r.buf }

// RecordRTT implements Recorder.
func (r *NodeRecorder) RecordRTT(peer string, rtt time.Duration) {
	now := r.cfg.Now()
	r.buf.Add(PeerEpoch{Peer: peer, Epoch: r.epochAt(now)}, RTTSample{At: now, RTT: rtt})
	r.RTTHist.Observe(rtt)
}

// RecordProbe implements Recorder.
func (r *NodeRecorder) RecordProbe(peer string, outcome ProbeOutcome) {
	r.mu.Lock()
	c := r.peers[peer]
	if c == nil {
		c = &peerCounters{}
		r.peers[peer] = c
	}
	switch outcome {
	case OutcomeDirectAck:
		c.directAcks++
	case OutcomeIndirectAck:
		c.indirectAcks++
	case OutcomeTimeout:
		c.timeouts++
	}
	r.mu.Unlock()
}

// RecordLHM implements Recorder.
func (r *NodeRecorder) RecordLHM(score int) {
	r.mu.Lock()
	if score != r.lhm {
		r.lhmChanges++
	}
	r.lhm = score
	r.mu.Unlock()
}

// RecordSuspicion implements Recorder.
func (r *NodeRecorder) RecordSuspicion(peer string, d time.Duration, died bool) {
	r.SuspicionHist.Observe(d)
	r.mu.Lock()
	c := r.peers[peer]
	if c == nil {
		c = &peerCounters{}
		r.peers[peer] = c
	}
	c.suspicions++
	if died {
		c.deaths++
	}
	r.mu.Unlock()
}

// PeerSnapshot is one peer's slice of a telemetry snapshot.
type PeerSnapshot struct {
	// Peer is the peer member's name.
	Peer string `json:"peer"`

	// Samples is the number of buffered RTT samples for the peer.
	Samples int `json:"samples"`

	// Epochs is the number of live sample epochs for the peer.
	Epochs int `json:"epochs"`

	// RTTP50Ms, RTTP90Ms and RTTP99Ms are RTT quantiles over the
	// buffered samples, in milliseconds (0 with no samples).
	RTTP50Ms float64 `json:"rtt_p50_ms"`
	RTTP90Ms float64 `json:"rtt_p90_ms"`
	RTTP99Ms float64 `json:"rtt_p99_ms"`

	// DirectAcks, IndirectAcks and Timeouts count the peer's probe
	// round outcomes.
	DirectAcks   uint64 `json:"direct_acks"`
	IndirectAcks uint64 `json:"indirect_acks"`
	Timeouts     uint64 `json:"timeouts"`

	// LossRate is Timeouts over all rounds, in [0, 1] (0 with no
	// rounds).
	LossRate float64 `json:"loss_rate"`

	// Suspicions and Deaths count suspicion lifecycles observed about
	// the peer and how many ended in death.
	Suspicions uint64 `json:"suspicions"`
	Deaths     uint64 `json:"deaths"`
}

// Snapshot is a point-in-time copy of a NodeRecorder.
type Snapshot struct {
	// Peers has one entry per observed peer, sorted by name.
	Peers []PeerSnapshot `json:"peers"`

	// RTT and Suspicion are the process-wide histograms.
	RTT       HistogramSnapshot `json:"rtt"`
	Suspicion HistogramSnapshot `json:"suspicion"`

	// LHM is the current Local Health Multiplier score; LHMChanges
	// counts observed score changes.
	LHM        int    `json:"lhm"`
	LHMChanges uint64 `json:"lhm_changes"`

	// Samples, Partitions, Evictions and Overwrites describe the
	// sample buffer's occupancy against its memory bound.
	Samples    int    `json:"samples"`
	Partitions int    `json:"partitions"`
	Evictions  uint64 `json:"evictions"`
	Overwrites uint64 `json:"overwrites"`
}

// Snapshot copies the recorder's current state: per-peer RTT quantiles
// and loss, the histograms, and buffer occupancy. Safe to call while
// recording continues.
func (r *NodeRecorder) Snapshot() Snapshot {
	type peerAgg struct {
		rtts   []float64 // milliseconds
		epochs int
	}
	agg := make(map[string]*peerAgg)
	samples := 0
	r.buf.ForEach(func(k PeerEpoch, ss []RTTSample) {
		a := agg[k.Peer]
		if a == nil {
			a = &peerAgg{}
			agg[k.Peer] = a
		}
		a.epochs++
		for _, s := range ss {
			a.rtts = append(a.rtts, float64(s.RTT)/float64(time.Millisecond))
		}
		samples += len(ss)
	})

	r.mu.Lock()
	peers := make(map[string]peerCounters, len(r.peers))
	for name, c := range r.peers {
		peers[name] = *c
	}
	lhm, lhmChanges := r.lhm, r.lhmChanges
	r.mu.Unlock()

	names := make(map[string]struct{}, len(agg)+len(peers))
	for name := range agg {
		names[name] = struct{}{}
	}
	for name := range peers {
		names[name] = struct{}{}
	}

	snap := Snapshot{
		RTT:        r.RTTHist.Snapshot(),
		Suspicion:  r.SuspicionHist.Snapshot(),
		LHM:        lhm,
		LHMChanges: lhmChanges,
		Samples:    samples,
		Partitions: r.buf.Partitions(),
		Evictions:  r.buf.Evictions(),
		Overwrites: r.buf.Overwrites(),
	}
	for name := range names {
		ps := PeerSnapshot{Peer: name}
		if a := agg[name]; a != nil {
			sort.Float64s(a.rtts)
			ps.Samples = len(a.rtts)
			ps.Epochs = a.epochs
			ps.RTTP50Ms = quantile(a.rtts, 0.50)
			ps.RTTP90Ms = quantile(a.rtts, 0.90)
			ps.RTTP99Ms = quantile(a.rtts, 0.99)
		}
		if c, ok := peers[name]; ok {
			ps.DirectAcks = c.directAcks
			ps.IndirectAcks = c.indirectAcks
			ps.Timeouts = c.timeouts
			ps.Suspicions = c.suspicions
			ps.Deaths = c.deaths
			if rounds := c.directAcks + c.indirectAcks + c.timeouts; rounds > 0 {
				ps.LossRate = float64(c.timeouts) / float64(rounds)
			}
		}
		snap.Peers = append(snap.Peers, ps)
	}
	sort.Slice(snap.Peers, func(i, j int) bool { return snap.Peers[i].Peer < snap.Peers[j].Peer })
	return snap
}

// quantile returns the q-quantile of ascending-sorted vs by
// nearest-rank, or 0 when empty.
func quantile(vs []float64, q float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	i := int(q * float64(len(vs)-1))
	return vs[i]
}
