// Package telemetry is the live observability subsystem: a generic,
// partitioned, epoch-keyed sample buffer with a hard memory bound,
// fixed-bucket histograms, and the recorders that feed them from the
// protocol core (direct-ack RTTs, probe outcomes, LHM score changes,
// suspicion lifecycle durations).
//
// The protocol core consumes it through the Recorder interface behind
// core's Config.Telemetry, which is nil by default: with no recorder
// installed the hooks are single nil checks, the probe hot path stays
// allocation-free, and — because recording never draws from a node's
// RNG or schedules clock events — enabling a recorder cannot perturb a
// simulation's event ordering or its same-seed byte-identical records.
//
// Two concrete recorders are provided: NodeRecorder for a live agent
// (per-peer RTT/loss partitions plus process-wide histograms, exported
// over cmd/lifeguard-agent's HTTP ops surface) and ClusterRecorder for
// the experiment harness (origin-attributed RTT samples scored against
// the simulator's ground truth by the WAN scenario).
package telemetry

import (
	"errors"
	"sync"
	"sync/atomic"
)

// BufferConfig parameterizes a Buffer. The zero value is not usable;
// every field except Epoch is required (Hash may be omitted only with
// Stripes == 1).
type BufferConfig[K comparable] struct {
	// MaxSamplesPerPartition is the ring capacity of one partition:
	// once full, new samples overwrite the oldest in place.
	MaxSamplesPerPartition int

	// MaxPartitions bounds the number of live partitions. The bound is
	// enforced per stripe (MaxPartitions/Stripes each, minimum one), so
	// the effective ceiling is Stripes × max(1, MaxPartitions/Stripes);
	// together with the ring capacity this is the buffer's hard memory
	// bound. When a stripe is full, the partition with the lowest Epoch
	// in that stripe is evicted to make room.
	MaxPartitions int

	// Stripes is the number of independently locked shards keys hash
	// across, bounding write contention from concurrent recorders. It
	// is rounded up to a power of two; zero means one stripe.
	Stripes int

	// Hash maps a key to its stripe. Required when Stripes > 1; must be
	// deterministic for a given key.
	Hash func(K) uint64

	// Epoch orders partitions for eviction: when a stripe is at
	// capacity the partition whose key has the lowest Epoch is dropped.
	// Nil treats every partition as epoch zero (arbitrary eviction).
	Epoch func(K) uint64

	// Less breaks eviction ties between equal-epoch partitions: among
	// the stripe's lowest-epoch keys the least key by Less is evicted.
	// Nil leaves ties to map iteration order, which is nondeterministic.
	// Note that with Stripes > 1 which keys share a stripe depends on
	// Hash (typically seeded per process), so eviction choice is only
	// fully deterministic across processes with Stripes == 1 and a
	// process-independent ordering here.
	Less func(a, b K) bool
}

// Buffer is a partitioned, epoch-keyed sample store with a hard memory
// bound: per-partition ring storage (MaxSamplesPerPartition), a bounded
// partition count with oldest-epoch eviction, and lock-striped writes
// so concurrent recorders rarely contend.
//
// Buffer is safe for concurrent use.
type Buffer[K comparable, S any] struct {
	cfg        BufferConfig[K]
	mask       uint64
	perStripe  int
	stripes    []bufferStripe[K, S]
	evictions  atomic.Uint64
	overwrites atomic.Uint64
}

// bufferStripe is one independently locked shard of the partition map.
type bufferStripe[K comparable, S any] struct {
	mu    sync.Mutex
	parts map[K]*partition[S]
	_     [40]byte // pad toward a cache line so stripe locks do not false-share
}

// partition is one key's ring of samples, preallocated at creation so
// steady-state appends never allocate.
type partition[S any] struct {
	samples []S
	next    int
	count   int
}

// NewBuffer validates cfg and returns an empty buffer.
func NewBuffer[K comparable, S any](cfg BufferConfig[K]) (*Buffer[K, S], error) {
	if cfg.MaxSamplesPerPartition < 1 {
		return nil, errors.New("telemetry: MaxSamplesPerPartition must be at least 1")
	}
	if cfg.MaxPartitions < 1 {
		return nil, errors.New("telemetry: MaxPartitions must be at least 1")
	}
	if cfg.Stripes < 1 {
		cfg.Stripes = 1
	}
	stripes := 1
	for stripes < cfg.Stripes {
		stripes <<= 1
	}
	if stripes > 1 && cfg.Hash == nil {
		return nil, errors.New("telemetry: Hash is required with more than one stripe")
	}
	perStripe := cfg.MaxPartitions / stripes
	if perStripe < 1 {
		perStripe = 1
	}
	b := &Buffer[K, S]{
		cfg:       cfg,
		mask:      uint64(stripes - 1),
		perStripe: perStripe,
		stripes:   make([]bufferStripe[K, S], stripes),
	}
	for i := range b.stripes {
		b.stripes[i].parts = make(map[K]*partition[S], perStripe)
	}
	return b, nil
}

// stripeFor returns the shard responsible for k.
func (b *Buffer[K, S]) stripeFor(k K) *bufferStripe[K, S] {
	if b.mask == 0 {
		return &b.stripes[0]
	}
	return &b.stripes[b.cfg.Hash(k)&b.mask]
}

// Add appends one sample to k's partition, creating it (and evicting
// the stripe's oldest-epoch partition if at capacity) as needed. A full
// ring overwrites its oldest sample in place, so steady-state adds are
// allocation-free.
func (b *Buffer[K, S]) Add(k K, s S) {
	st := b.stripeFor(k)
	st.mu.Lock()
	p := st.parts[k]
	if p == nil {
		if len(st.parts) >= b.perStripe {
			b.evictOldestLocked(st)
		}
		p = &partition[S]{samples: make([]S, b.cfg.MaxSamplesPerPartition)}
		st.parts[k] = p
	}
	if p.count == len(p.samples) {
		b.overwrites.Add(1)
	} else {
		p.count++
	}
	p.samples[p.next] = s
	p.next++
	if p.next == len(p.samples) {
		p.next = 0
	}
	st.mu.Unlock()
}

// evictOldestLocked drops the partition with the lowest epoch in the
// stripe, breaking equal-epoch ties with cfg.Less when set. Called with
// the stripe lock held.
func (b *Buffer[K, S]) evictOldestLocked(st *bufferStripe[K, S]) {
	var victim K
	var victimEpoch uint64
	first := true
	for k := range st.parts {
		e := uint64(0)
		if b.cfg.Epoch != nil {
			e = b.cfg.Epoch(k)
		}
		switch {
		case first || e < victimEpoch:
			victim, victimEpoch, first = k, e, false
		case e == victimEpoch && b.cfg.Less != nil && b.cfg.Less(k, victim):
			victim = k
		}
	}
	if !first {
		delete(st.parts, victim)
		b.evictions.Add(1)
	}
}

// Len returns the total number of samples currently held.
func (b *Buffer[K, S]) Len() int {
	total := 0
	for i := range b.stripes {
		st := &b.stripes[i]
		st.mu.Lock()
		for _, p := range st.parts {
			total += p.count
		}
		st.mu.Unlock()
	}
	return total
}

// Partitions returns the number of live partitions.
func (b *Buffer[K, S]) Partitions() int {
	total := 0
	for i := range b.stripes {
		st := &b.stripes[i]
		st.mu.Lock()
		total += len(st.parts)
		st.mu.Unlock()
	}
	return total
}

// Evictions returns how many partitions have been evicted to enforce
// the partition bound.
func (b *Buffer[K, S]) Evictions() uint64 { return b.evictions.Load() }

// Overwrites returns how many samples have been overwritten in full
// rings.
func (b *Buffer[K, S]) Overwrites() uint64 { return b.overwrites.Load() }

// MaxSamples returns the hard sample-count bound implied by the
// configuration: per-stripe partition cap × stripes × ring capacity.
func (b *Buffer[K, S]) MaxSamples() int {
	return b.perStripe * len(b.stripes) * b.cfg.MaxSamplesPerPartition
}

// ForEach calls fn once per live partition with the key and a copy of
// its samples in insertion order (oldest first). Only one stripe is
// locked at a time, so concurrent Adds to other stripes proceed; the
// iteration order is unspecified.
func (b *Buffer[K, S]) ForEach(fn func(k K, samples []S)) {
	for i := range b.stripes {
		st := &b.stripes[i]
		st.mu.Lock()
		type entry struct {
			k  K
			ss []S
		}
		entries := make([]entry, 0, len(st.parts))
		for k, p := range st.parts {
			ss := make([]S, 0, p.count)
			if p.count == len(p.samples) {
				ss = append(ss, p.samples[p.next:]...)
				ss = append(ss, p.samples[:p.next]...)
			} else {
				ss = append(ss, p.samples[:p.count]...)
			}
			entries = append(entries, entry{k: k, ss: ss})
		}
		st.mu.Unlock()
		for _, e := range entries {
			fn(e.k, e.ss)
		}
	}
}
