// Package bufpool provides pooled byte buffers for packet payloads at
// ownership boundaries: the core's Transport contract hands transports a
// payload that is valid only for the duration of the SendPacket call, so
// a transport that queues, schedules or ships the payload asynchronously
// copies it into a pooled buffer and releases the buffer once the packet
// has been consumed.
package bufpool

import "sync"

// Buf is a pooled byte buffer. B holds the payload.
type Buf struct {
	B []byte
}

var pool = sync.Pool{New: func() any { return new(Buf) }}

// Copy returns a pooled buffer holding a copy of src.
func Copy(src []byte) *Buf {
	b := pool.Get().(*Buf)
	b.B = append(b.B[:0], src...)
	return b
}

// Release returns the buffer to the pool. The caller must not use B
// afterwards.
func (b *Buf) Release() {
	pool.Put(b)
}
