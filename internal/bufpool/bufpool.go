// Package bufpool provides pooled, reference-counted byte buffers for
// packet payloads at ownership boundaries: the core's Transport contract
// hands transports a payload that is valid only for the duration of the
// SendPacket call, so a transport that queues, schedules or ships the
// payload asynchronously copies it into a pooled buffer and releases the
// buffer once the packet has been consumed.
//
// The reference count is what makes fan-out delivery zero-copy: a sender
// copies the caller's payload exactly once and hands the same buffer to
// every destination, each holding one reference (Acquire per extra
// destination), and the buffer returns to the pool when the last
// consumer releases it. Holders must treat B as read-only whenever more
// than one reference is outstanding.
package bufpool

import (
	"sync"
	"sync/atomic"
)

// Buf is a pooled byte buffer. B holds the payload; it is read-only
// while more than one reference is outstanding.
type Buf struct {
	B []byte

	// refs counts outstanding owners. Copy starts it at one; Acquire
	// and Release move it up and down, and the buffer returns to the
	// pool when it hits zero. A released buffer's count stays at zero
	// until the pool recycles it through Copy, so Acquire and Release
	// on a stale reference are detected instead of aliasing the next
	// packet's payload (mirroring the intern table's poisoned handles).
	refs atomic.Int32
}

var pool = sync.Pool{New: func() any { return new(Buf) }}

// Copy returns a pooled buffer holding a copy of src, with one
// reference owned by the caller.
func Copy(src []byte) *Buf {
	b := pool.Get().(*Buf)
	b.B = append(b.B[:0], src...)
	b.refs.Store(1)
	return b
}

// Acquire adds a reference for one additional consumer and returns b.
// Acquiring a buffer whose references have already drained to zero is a
// use-after-release — the buffer may be carrying someone else's payload
// by now — and panics.
func (b *Buf) Acquire() *Buf {
	if n := b.refs.Add(1); n <= 1 {
		panic("bufpool: Acquire of released buffer")
	}
	return b
}

// Release drops one reference; the last release returns the buffer to
// the pool. The caller must not use B afterwards. Releasing more
// references than were held panics rather than handing the same buffer
// out twice.
func (b *Buf) Release() {
	n := b.refs.Add(-1)
	if n < 0 {
		panic("bufpool: double Release")
	}
	if n == 0 {
		pool.Put(b)
	}
}

// Refs reports the current reference count, for tests.
func (b *Buf) Refs() int { return int(b.refs.Load()) }
