package bufpool

import (
	"bytes"
	"testing"
)

// TestCopyRoundTrip verifies the basic single-owner lifecycle: Copy
// snapshots the source, the copy is independent of later source
// mutation, and Release drops the only reference.
func TestCopyRoundTrip(t *testing.T) {
	src := []byte("payload-one")
	b := Copy(src)
	if !bytes.Equal(b.B, src) {
		t.Fatalf("Copy = %q, want %q", b.B, src)
	}
	if got := b.Refs(); got != 1 {
		t.Fatalf("fresh buffer refs = %d, want 1", got)
	}
	src[0] = 'X'
	if bytes.Equal(b.B, src) {
		t.Fatal("buffer aliases the caller's slice")
	}
	b.Release()
}

// TestAcquireSharesOneBuffer verifies fan-out sharing: every Acquire
// returns the same buffer, the payload stays intact until the last
// reference drops, and intermediate releases do not recycle it.
func TestAcquireSharesOneBuffer(t *testing.T) {
	b := Copy([]byte("shared"))
	for i := 0; i < 7; i++ {
		if got := b.Acquire(); got != b {
			t.Fatal("Acquire returned a different buffer")
		}
	}
	if got := b.Refs(); got != 8 {
		t.Fatalf("refs after 7 acquires = %d, want 8", got)
	}
	for i := 0; i < 7; i++ {
		b.Release()
		if !bytes.Equal(b.B, []byte("shared")) {
			t.Fatalf("payload changed while %d refs outstanding", b.Refs())
		}
	}
	if got := b.Refs(); got != 1 {
		t.Fatalf("refs after 7 releases = %d, want 1", got)
	}
	b.Release()
}

// TestDoubleReleasePanics pins the poison-on-double-release contract:
// releasing more references than are held must fail loudly instead of
// handing the same pooled buffer out twice.
func TestDoubleReleasePanics(t *testing.T) {
	b := Copy([]byte("x"))
	b.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("double Release did not panic")
		}
	}()
	b.Release()
}

// TestAcquireAfterReleasePanics pins the use-after-release guard: a
// stale reference must not be able to resurrect a buffer the pool may
// already have handed to another packet.
func TestAcquireAfterReleasePanics(t *testing.T) {
	b := Copy([]byte("x"))
	b.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("Acquire after Release did not panic")
		}
	}()
	b.Acquire()
}

// TestReuseAfterDrain verifies a drained buffer is safely reusable
// through the pool: the next Copy restarts the count at one regardless
// of which pooled buffer it lands on.
func TestReuseAfterDrain(t *testing.T) {
	b := Copy([]byte("first"))
	b.Acquire()
	b.Release()
	b.Release()
	c := Copy([]byte("second"))
	if got := c.Refs(); got != 1 {
		t.Fatalf("recycled buffer refs = %d, want 1", got)
	}
	if !bytes.Equal(c.B, []byte("second")) {
		t.Fatalf("recycled buffer = %q, want %q", c.B, "second")
	}
	c.Release()
}
