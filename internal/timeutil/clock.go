// Package timeutil defines the clock abstraction shared by the protocol
// core and its two runtimes: the real-time runtime (wall clock) and the
// discrete-event simulator (virtual clock).
//
// The protocol core never calls time.Now or time.AfterFunc directly; it
// receives a Clock so that experiments can run on virtual time,
// deterministically and orders of magnitude faster than wall time.
package timeutil

import "time"

// Clock supplies the current time and one-shot timers.
//
// Implementations must be safe for concurrent use. Callbacks registered
// with AfterFunc may run concurrently with other callbacks under the real
// clock; under the simulated clock they run sequentially on the event
// loop.
type Clock interface {
	// Now returns the current time.
	Now() time.Time

	// AfterFunc arranges for f to be called once, d from now. It returns
	// a Timer that can cancel the call.
	AfterFunc(d time.Duration, f func()) Timer
}

// Timer is a handle to a pending AfterFunc callback.
type Timer interface {
	// Stop cancels the pending call. It reports whether the call was
	// still pending (true) or had already fired or been stopped (false).
	Stop() bool
}

// RealClock is a Clock backed by the time package. The zero value is
// ready to use.
type RealClock struct{}

var _ Clock = RealClock{}

// Now implements Clock.
func (RealClock) Now() time.Time { return time.Now() }

// AfterFunc implements Clock.
func (RealClock) AfterFunc(d time.Duration, f func()) Timer {
	return realTimer{time.AfterFunc(d, f)}
}

type realTimer struct{ t *time.Timer }

func (r realTimer) Stop() bool { return r.t.Stop() }
