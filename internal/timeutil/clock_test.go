package timeutil

import (
	"sync/atomic"
	"testing"
	"time"
)

func TestRealClockNow(t *testing.T) {
	c := RealClock{}
	before := time.Now()
	got := c.Now()
	after := time.Now()
	if got.Before(before) || got.After(after) {
		t.Errorf("Now() = %v outside [%v, %v]", got, before, after)
	}
}

func TestRealClockAfterFuncFires(t *testing.T) {
	c := RealClock{}
	done := make(chan struct{})
	c.AfterFunc(time.Millisecond, func() { close(done) })
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("AfterFunc did not fire")
	}
}

func TestRealClockTimerStop(t *testing.T) {
	c := RealClock{}
	var fired atomic.Bool
	timer := c.AfterFunc(50*time.Millisecond, func() { fired.Store(true) })
	if !timer.Stop() {
		t.Fatal("Stop on pending timer returned false")
	}
	time.Sleep(100 * time.Millisecond)
	if fired.Load() {
		t.Error("stopped timer fired")
	}
	if timer.Stop() {
		t.Error("second Stop returned true")
	}
}
