package wire

import (
	"bytes"
	"testing"

	"lifeguard/internal/coords"
)

// FuzzDecodePacket throws arbitrary bytes at the packet decoder, which
// must never panic or allocate unboundedly (the maxStringLen/maxStates
// bounds exist precisely for corrupt length prefixes), and must
// round-trip every packet it accepts: decode → re-encode → decode again
// must reproduce the same messages.
func FuzzDecodePacket(f *testing.F) {
	// Corpus: one well-formed packet per message type, plus a compound
	// packet, the empty packet, and truncation/oversize probes.
	coord := &coords.Coordinate{
		Vec:        []float64{0.001, -0.002, 0.003, -0.004, 0.005, -0.006, 0.007, -0.008},
		Error:      0.5,
		Adjustment: 0.0001,
		Height:     0.00001,
	}
	singles := []Message{
		&Ping{SeqNo: 1, Target: "t", Source: "s"},
		&Ping{SeqNo: 1, Target: "t", Source: "s", Coord: coord},
		&Ack{SeqNo: 3, Source: "s", Coord: coord},
		&IndirectPing{SeqNo: 2, Target: "t", Source: "s", WantNack: true},
		&Ack{SeqNo: 3, Source: "s"},
		&Nack{SeqNo: 4, Source: "s"},
		&Suspect{Incarnation: 5, Node: "n", From: "f"},
		&Alive{Incarnation: 6, Node: "n", Addr: "a", Meta: []byte{1, 2}},
		&Dead{Incarnation: 7, Node: "n", From: "f"},
		&PushPullReq{Source: "s", Join: true, States: []PushPullState{
			{Name: "n", Addr: "a", Incarnation: 1, State: 1, Meta: []byte{3}},
		}},
		&PushPullResp{Source: "s", States: []PushPullState{
			{Name: "n", Addr: "a", Incarnation: 2, State: 3},
		}},
	}
	for _, m := range singles {
		f.Add(Marshal(m))
	}
	f.Add(EncodePacket([]Message{
		&Ping{SeqNo: 1, Target: "t", Source: "s"},
		&Suspect{Incarnation: 5, Node: "n", From: "f"},
		&Alive{Incarnation: 6, Node: "n", Addr: "a"},
	}))
	f.Add(EncodePacket([]Message{
		&Ping{SeqNo: 1, Target: "t", Source: "s", Coord: coord},
		&Ack{SeqNo: 1, Source: "t", Coord: coord},
		&Suspect{Incarnation: 5, Node: "n", From: "f"},
	}))
	// Coordinate-tail probes: truncated v1 block, oversize dimension,
	// and an unknown future version tail (must decode, ignored).
	f.Add(append(Marshal(&Ping{SeqNo: 1, Target: "t", Source: "s"}), coordBlockV1, 0x08, 0x00))
	f.Add(append(Marshal(&Ping{SeqNo: 1, Target: "t", Source: "s"}), coordBlockV1, 0xFF, 0xFF, 0x7F))
	f.Add(append(Marshal(&Ack{SeqNo: 1, Source: "s"}), 0x7F, 0xDE, 0xAD))
	f.Add([]byte{})
	f.Add([]byte{byte(TypeCompound)})
	f.Add([]byte{byte(TypeCompound), 0xFF, 0xFF, 0xFF, 0xFF, 0x0F})                 // huge count
	f.Add([]byte{byte(TypeAlive), 0x01, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F})              // oversize string
	f.Add(append([]byte{byte(TypePushPullReq), 0x01, 's', 0x01}, 0xFF, 0xFF, 0x7F)) // oversize states

	f.Fuzz(func(t *testing.T, data []byte) {
		msgs, err := DecodePacket(data)

		// The pooled decoder must accept and reject exactly the same
		// inputs as the allocating one, and produce identical messages.
		u := AcquireUnpacker()
		pooled, perr := u.Decode(data)
		if (err == nil) != (perr == nil) {
			t.Fatalf("Unpacker.Decode error mismatch: DecodePacket err=%v, Unpacker err=%v", err, perr)
		}
		if err == nil {
			if len(pooled) != len(msgs) {
				t.Fatalf("Unpacker.Decode message count %d, DecodePacket %d", len(pooled), len(msgs))
			}
			for i := range msgs {
				a, b := Marshal(msgs[i]), Marshal(pooled[i])
				if !bytes.Equal(a, b) {
					t.Fatalf("Unpacker.Decode message %d differs:\n%x\n%x", i, a, b)
				}
			}
		}
		u.Release()

		if err != nil {
			return
		}
		// Accepted packets must re-encode and decode to the same messages.
		reenc := EncodePacket(msgs)
		again, err := DecodePacket(reenc)
		if err != nil {
			t.Fatalf("re-decode of re-encoded packet failed: %v\ninput: %x\nreenc: %x", err, data, reenc)
		}
		if len(again) != len(msgs) {
			t.Fatalf("round trip changed message count: %d -> %d", len(msgs), len(again))
		}
		for i := range msgs {
			if msgs[i].Type() != again[i].Type() {
				t.Fatalf("round trip changed message %d type: %v -> %v", i, msgs[i].Type(), again[i].Type())
			}
			a, b := Marshal(msgs[i]), Marshal(again[i])
			if !bytes.Equal(a, b) {
				t.Fatalf("round trip changed message %d encoding:\n%x\n%x", i, a, b)
			}
		}
	})
}
