package wire

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
)

// TestUnpackerMatchesDecodePacket pins the pooled decoder to the
// allocating one over every message type, bare and compound.
func TestUnpackerMatchesDecodePacket(t *testing.T) {
	u := AcquireUnpacker()
	defer u.Release()

	var packets [][]byte
	for _, m := range sampleMessages() {
		packets = append(packets, Marshal(m))
	}
	packets = append(packets, EncodePacket(sampleMessages()))

	for _, pkt := range packets {
		want, err := DecodePacket(pkt)
		if err != nil {
			t.Fatalf("DecodePacket: %v", err)
		}
		got, err := u.Decode(pkt)
		if err != nil {
			t.Fatalf("Unpacker.Decode: %v", err)
		}
		if len(got) != len(want) {
			t.Fatalf("message count %d, want %d", len(got), len(want))
		}
		for i := range want {
			if !reflect.DeepEqual(want[i], got[i]) {
				t.Errorf("message %d:\n want %+v\n got  %+v", i, want[i], got[i])
			}
		}
	}
}

// TestUnpackerReuseAcrossDecodes drives one unpacker through many
// different packets and checks each decode is uncontaminated by the
// previous one.
func TestUnpackerReuseAcrossDecodes(t *testing.T) {
	u := AcquireUnpacker()
	defer u.Release()

	msgs := sampleMessages()
	for round := 0; round < 3; round++ {
		for _, m := range msgs {
			pkt := Marshal(m)
			got, err := u.Decode(pkt)
			if err != nil {
				t.Fatalf("%s: %v", m.Type(), err)
			}
			if len(got) != 1 || !reflect.DeepEqual(m, got[0]) {
				t.Fatalf("%s round %d:\n want %+v\n got  %+v", m.Type(), round, m, got[0])
			}
		}
	}
}

// TestUnpackerMetaIsFreshPerDecode pins the one retention exemption in
// the Unpacker contract: Meta byte slices are freshly allocated, so a
// handler that stores one (the membership table does) must not see it
// clobbered by a later decode.
func TestUnpackerMetaIsFreshPerDecode(t *testing.T) {
	u := AcquireUnpacker()
	defer u.Release()

	first, err := u.Decode(Marshal(&Alive{Incarnation: 1, Node: "n", Addr: "a", Meta: []byte("keep-me")}))
	if err != nil {
		t.Fatal(err)
	}
	kept := first[0].(*Alive).Meta
	if _, err := u.Decode(Marshal(&Alive{Incarnation: 2, Node: "n", Addr: "a", Meta: []byte("clobber")})); err != nil {
		t.Fatal(err)
	}
	if string(kept) != "keep-me" {
		t.Fatalf("retained Meta corrupted by later decode: %q", kept)
	}
}

// TestUnpackerInternOverflowStillDecodes checks the intern-table bounds
// degrade to plain allocation, not to wrong strings.
func TestUnpackerInternOverflowStillDecodes(t *testing.T) {
	u := AcquireUnpacker()
	defer u.Release()

	long := strings.Repeat("x", maxInternedNameLen+10)
	got, err := u.Decode(Marshal(&Nack{SeqNo: 1, Source: long}))
	if err != nil {
		t.Fatal(err)
	}
	if got[0].(*Nack).Source != long {
		t.Fatal("over-length string decoded incorrectly")
	}

	for i := 0; i < maxInternedNames+100; i++ {
		name := fmt.Sprintf("member-%d", i)
		got, err := u.Decode(Marshal(&Nack{SeqNo: 1, Source: name}))
		if err != nil {
			t.Fatal(err)
		}
		if got[0].(*Nack).Source != name {
			t.Fatalf("entry %d decoded as %q", i, got[0].(*Nack).Source)
		}
	}
	if len(u.names) > maxInternedNames {
		t.Fatalf("intern table grew to %d entries, cap is %d", len(u.names), maxInternedNames)
	}
}

// decodeAllocPacket builds the steady-state packet shape: a compound of
// ping + ack with coordinates plus piggybacked gossip, with all names
// pre-warm in the intern table after the first decode.
func decodeAllocPacket() []byte {
	return EncodePacket([]Message{
		&Ping{SeqNo: 9, Target: "node-b", Source: "node-a", Coord: sampleCoord()},
		&Ack{SeqNo: 8, Source: "node-b", Coord: sampleCoord()},
		&Suspect{Incarnation: 3, Node: "node-c", From: "node-a"},
		&Alive{Incarnation: 4, Node: "node-d", Addr: "10.0.0.4:7946"},
	})
}

// TestDecodeAllocs gates the zero-alloc decode contract: once the
// unpacker is warm, decoding a steady-state packet allocates nothing.
// (Meta-carrying alives allocate their Meta copy by design; the
// steady-state failure-detector traffic here carries none.)
func TestDecodeAllocs(t *testing.T) {
	// A fresh unpacker, not a pooled one: another test may have released
	// one with a saturated intern table, which legitimately falls back
	// to allocating and would make this gate order-dependent.
	u := new(Unpacker)
	pkt := decodeAllocPacket()
	if _, err := u.Decode(pkt); err != nil { // warm pools and intern table
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := u.Decode(pkt); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Errorf("steady-state Decode allocates %.1f times per packet, want 0", allocs)
	}
}

func BenchmarkDecodeAllocs(b *testing.B) {
	u := new(Unpacker)
	pkt := decodeAllocPacket()
	if _, err := u.Decode(pkt); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		msgs, err := u.Decode(pkt)
		if err != nil || len(msgs) != 4 {
			b.Fatalf("decode: %v (%d msgs)", err, len(msgs))
		}
	}
}

// BenchmarkDecodePacketAllocating is the pre-pool baseline for
// comparison with BenchmarkDecodeAllocs.
func BenchmarkDecodePacketAllocating(b *testing.B) {
	pkt := decodeAllocPacket()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		msgs, err := DecodePacket(pkt)
		if err != nil || len(msgs) != 4 {
			b.Fatalf("decode: %v (%d msgs)", err, len(msgs))
		}
	}
}
