// Package wire defines the protocol messages exchanged by SWIM/Lifeguard
// members and a compact binary codec for them.
//
// The message set is the one described in the Lifeguard paper (§III, §IV):
// the failure-detector messages ping, ping-req (indirect ping), ack and
// nack; the dissemination messages suspect, alive and dead (SWIM's confirm
// is renamed dead, following memberlist); and the push-pull anti-entropy
// exchange. Multiple messages are packed into a single UDP-sized packet as
// a compound message, which is how gossip updates piggyback on
// failure-detector traffic.
package wire

import (
	"fmt"

	"lifeguard/internal/coords"
)

// MsgType identifies the concrete type of a protocol message.
type MsgType uint8

// Message type tags. These values appear on the wire; do not reorder.
const (
	// TypePing is a direct liveness probe.
	TypePing MsgType = iota + 1
	// TypeIndirectPing asks a third party to probe a target (SWIM's
	// ping-req).
	TypeIndirectPing
	// TypeAck answers a ping, directly or via an indirect relay.
	TypeAck
	// TypeNack is Lifeguard's negative acknowledgement for indirect
	// probes (§IV-A): the relay answers nack when the target has not
	// acked within 80% of the probe timeout.
	TypeNack
	// TypeSuspect accuses a member of having failed a probe.
	TypeSuspect
	// TypeAlive declares a member alive at an incarnation; it both joins
	// new members and refutes suspicion.
	TypeAlive
	// TypeDead declares a member dead (SWIM's confirm).
	TypeDead
	// TypePushPullReq carries the sender's full membership state and
	// requests the receiver's in return (memberlist anti-entropy).
	TypePushPullReq
	// TypePushPullResp carries the responder's full membership state.
	TypePushPullResp
	// TypeCompound wraps several messages in one packet.
	TypeCompound
)

// String returns the lower-case protocol name of the message type.
func (t MsgType) String() string {
	switch t {
	case TypePing:
		return "ping"
	case TypeIndirectPing:
		return "ping-req"
	case TypeAck:
		return "ack"
	case TypeNack:
		return "nack"
	case TypeSuspect:
		return "suspect"
	case TypeAlive:
		return "alive"
	case TypeDead:
		return "dead"
	case TypePushPullReq:
		return "push-pull-req"
	case TypePushPullResp:
		return "push-pull-resp"
	case TypeCompound:
		return "compound"
	default:
		return fmt.Sprintf("unknown(%d)", uint8(t))
	}
}

// Message is implemented by every protocol message.
type Message interface {
	// Type returns the wire tag of the message.
	Type() MsgType

	encode(e *encoder)
	decode(d *decoder)
}

// Ping is a direct liveness probe from Source to Target.
type Ping struct {
	// SeqNo correlates the eventual Ack with this probe.
	SeqNo uint32
	// Target is the name of the member being probed. Carrying the
	// intended target lets a mis-addressed member refuse the probe.
	Target string
	// Source is the name of the probing member, so the target can
	// address the ack (and any piggybacked refutation) back.
	Source string
	// Coord is the prober's Vivaldi coordinate, or nil. It rides as an
	// optional trailing block: members without coordinate support
	// decode the fixed fields and ignore the tail, and a ping from
	// such a member simply has no tail — both directions interoperate.
	Coord *coords.Coordinate
}

// Type implements Message.
func (*Ping) Type() MsgType { return TypePing }

// IndirectPing asks the receiver to probe Target on behalf of Source
// (SWIM's ping-req).
type IndirectPing struct {
	// SeqNo is the originator's probe sequence number; the relayed ack
	// and nack carry it back.
	SeqNo uint32
	// Target is the member to probe.
	Target string
	// Source is the member that initiated the indirect probe.
	Source string
	// WantNack asks the relay to send a Nack if the target does not ack
	// in time. Set when Lifeguard's LHA-Probe component is enabled.
	WantNack bool
}

// Type implements Message.
func (*IndirectPing) Type() MsgType { return TypeIndirectPing }

// Ack answers a Ping. For indirect probes the relay rewrites SeqNo to the
// originator's sequence number and forwards it.
type Ack struct {
	// SeqNo echoes the probe's sequence number.
	SeqNo uint32
	// Source is the member that produced the ack (the probe target).
	Source string
	// Coord is the responder's Vivaldi coordinate, or nil; the prober
	// pairs it with the measured round-trip time to update its own
	// coordinate. Optional trailing block, see Ping.Coord.
	Coord *coords.Coordinate
}

// Type implements Message.
func (*Ack) Type() MsgType { return TypeAck }

// Nack tells the originator of an indirect probe that the relay has not
// heard from the target yet (Lifeguard §IV-A). Receiving the nack proves
// the relay path is live, so a missing nack counts against the
// originator's own local health.
type Nack struct {
	// SeqNo echoes the originator's probe sequence number.
	SeqNo uint32
	// Source is the relaying member.
	Source string
}

// Type implements Message.
func (*Nack) Type() MsgType { return TypeNack }

// Suspect accuses Node of having failed a probe.
type Suspect struct {
	// Incarnation is the accused member's incarnation as known to the
	// accuser. The accusation only applies at or above this incarnation.
	Incarnation uint64
	// Node is the accused member.
	Node string
	// From is the accusing member. Distinct From values constitute
	// independent suspicions for LHA-Suspicion (§IV-B).
	From string
}

// Type implements Message.
func (*Suspect) Type() MsgType { return TypeSuspect }

// Alive declares Node alive at Incarnation. It announces joins and, when
// gossiped by the suspected member itself with a higher incarnation,
// refutes suspicion.
type Alive struct {
	// Incarnation is the member's current incarnation.
	Incarnation uint64
	// Node is the member declared alive.
	Node string
	// Addr is the member's transport address.
	Addr string
	// Meta is opaque application metadata attached by the member (what
	// Serf builds its tags on). Limited to MaxMetaLen bytes.
	Meta []byte
}

// MaxMetaLen bounds the metadata attached to a member (memberlist's
// limit is 512 bytes).
const MaxMetaLen = 512

// Type implements Message.
func (*Alive) Type() MsgType { return TypeAlive }

// Dead declares Node dead at Incarnation (SWIM's confirm message).
type Dead struct {
	// Incarnation is the incarnation at which the member was declared
	// dead.
	Incarnation uint64
	// Node is the member declared dead.
	Node string
	// From is the declaring member. When From == Node the member is
	// announcing its own graceful leave.
	From string
}

// Type implements Message.
func (*Dead) Type() MsgType { return TypeDead }

// PushPullState is one member's entry in a push-pull exchange.
type PushPullState struct {
	// Name is the member's name.
	Name string
	// Addr is the member's transport address.
	Addr string
	// Incarnation is the member's incarnation.
	Incarnation uint64
	// State is the sender's view of the member: one of the StateX
	// constants defined by the core package (alive, suspect, dead,
	// left), encoded as a byte.
	State uint8
	// Meta is the member's application metadata as known to the sender.
	Meta []byte
}

// PushPullReq opens an anti-entropy exchange, carrying the sender's full
// membership table.
type PushPullReq struct {
	// Source is the requesting member.
	Source string
	// Join marks the request as part of a cluster join, in which case
	// the receiver treats the sender as a new member.
	Join bool
	// States is the sender's full membership table.
	States []PushPullState
}

// Type implements Message.
func (*PushPullReq) Type() MsgType { return TypePushPullReq }

// PushPullResp answers a PushPullReq with the responder's table.
type PushPullResp struct {
	// Source is the responding member.
	Source string
	// States is the responder's full membership table.
	States []PushPullState
}

// Type implements Message.
func (*PushPullResp) Type() MsgType { return TypePushPullResp }

// newMessage returns a zero message of the given type, or nil if the type
// is unknown or not directly instantiable (compound).
func newMessage(t MsgType) Message {
	switch t {
	case TypePing:
		return &Ping{}
	case TypeIndirectPing:
		return &IndirectPing{}
	case TypeAck:
		return &Ack{}
	case TypeNack:
		return &Nack{}
	case TypeSuspect:
		return &Suspect{}
	case TypeAlive:
		return &Alive{}
	case TypeDead:
		return &Dead{}
	case TypePushPullReq:
		return &PushPullReq{}
	case TypePushPullResp:
		return &PushPullResp{}
	default:
		return nil
	}
}
