package wire

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"lifeguard/internal/coords"
)

// sampleCoord returns a populated coordinate for codec tests.
func sampleCoord() *coords.Coordinate {
	return &coords.Coordinate{
		Vec:        []float64{0.001, -0.002, 0.003, -0.004, 0.005, -0.006, 0.007, -0.008},
		Error:      0.25,
		Adjustment: -0.0001,
		Height:     0.00035,
	}
}

// sampleMessages returns one populated instance of every message type.
func sampleMessages() []Message {
	return []Message{
		&Ping{SeqNo: 42, Target: "node-b", Source: "node-a"},
		&Ping{SeqNo: 43, Target: "node-b", Source: "node-a", Coord: sampleCoord()},
		&Ack{SeqNo: 43, Source: "node-b", Coord: sampleCoord()},
		&IndirectPing{SeqNo: 7, Target: "node-c", Source: "node-a", WantNack: true},
		&IndirectPing{SeqNo: 8, Target: "node-c", Source: "node-a", WantNack: false},
		&Ack{SeqNo: 42, Source: "node-b"},
		&Nack{SeqNo: 7, Source: "node-r"},
		&Suspect{Incarnation: 3, Node: "node-x", From: "node-y"},
		&Alive{Incarnation: 4, Node: "node-x", Addr: "10.0.0.1:7946"},
		&Alive{Incarnation: 4, Node: "node-m", Addr: "10.0.0.9:7946", Meta: []byte("dc=eu,role=web")},
		&Dead{Incarnation: 5, Node: "node-x", From: "node-z"},
		&PushPullReq{Source: "node-a", Join: true, States: []PushPullState{
			{Name: "node-a", Addr: "10.0.0.1:7946", Incarnation: 1, State: 1, Meta: []byte("tags")},
			{Name: "node-b", Addr: "10.0.0.2:7946", Incarnation: 9, State: 3},
		}},
		&PushPullReq{Source: "node-a", Join: false, States: nil},
		&PushPullResp{Source: "node-b", States: []PushPullState{
			{Name: "node-c", Addr: "", Incarnation: 0, State: 2},
		}},
	}
}

func TestMarshalRoundTripAllTypes(t *testing.T) {
	for _, msg := range sampleMessages() {
		buf := Marshal(msg)
		got, err := Unmarshal(buf)
		if err != nil {
			t.Fatalf("%s: unmarshal: %v", msg.Type(), err)
		}
		if !reflect.DeepEqual(msg, got) {
			t.Errorf("%s round trip mismatch:\n want %+v\n got  %+v", msg.Type(), msg, got)
		}
	}
}

func TestMarshalTypeTagIsFirstByte(t *testing.T) {
	for _, msg := range sampleMessages() {
		buf := Marshal(msg)
		if MsgType(buf[0]) != msg.Type() {
			t.Errorf("%s: first byte is %d", msg.Type(), buf[0])
		}
	}
}

func TestUnmarshalEmpty(t *testing.T) {
	if _, err := Unmarshal(nil); !errors.Is(err, ErrTruncated) {
		t.Errorf("unmarshal nil: got %v, want ErrTruncated", err)
	}
}

func TestUnmarshalUnknownType(t *testing.T) {
	if _, err := Unmarshal([]byte{0xEE, 0x01}); !errors.Is(err, ErrUnknownType) {
		t.Errorf("got %v, want ErrUnknownType", err)
	}
}

func TestUnmarshalTruncatedEveryPrefix(t *testing.T) {
	// Every strict prefix of a valid encoding must decode with an error,
	// never panic or succeed — with one designed exception: cutting the
	// optional trailing coordinate block cleanly off a Ping/Ack yields
	// the same message without a coordinate (that tolerance is exactly
	// what lets coordinate-unaware peers interoperate).
	for _, msg := range sampleMessages() {
		buf := Marshal(msg)
		for i := 1; i < len(buf); i++ {
			got, err := Unmarshal(buf[:i])
			if err == nil {
				if reflect.DeepEqual(got, msg) {
					continue
				}
				if stripped := withoutCoord(msg); stripped != nil && reflect.DeepEqual(got, stripped) {
					continue
				}
				t.Errorf("%s: prefix %d/%d decoded to %+v", msg.Type(), i, len(buf), got)
			}
		}
	}
}

// withoutCoord returns a copy of msg with its optional coordinate
// cleared, or nil if the message has none to clear.
func withoutCoord(msg Message) Message {
	switch m := msg.(type) {
	case *Ping:
		if m.Coord != nil {
			c := *m
			c.Coord = nil
			return &c
		}
	case *Ack:
		if m.Coord != nil {
			c := *m
			c.Coord = nil
			return &c
		}
	}
	return nil
}

func TestUnmarshalOversizeString(t *testing.T) {
	// Hand-encode a ping whose target length prefix claims 2^20 bytes.
	e := encoder{}
	e.byte(uint8(TypePing))
	e.uint32(1)
	e.uvarint(1 << 20)
	if _, err := Unmarshal(e.buf); !errors.Is(err, ErrOversize) {
		t.Errorf("got %v, want ErrOversize", err)
	}
}

func TestEncodePacketSingleIsBare(t *testing.T) {
	msg := &Ping{SeqNo: 1, Target: "t", Source: "s"}
	pkt := EncodePacket([]Message{msg})
	if MsgType(pkt[0]) != TypePing {
		t.Fatalf("single-message packet wrapped in compound (tag %d)", pkt[0])
	}
	if !bytes.Equal(pkt, Marshal(msg)) {
		t.Error("single-message packet differs from bare marshal")
	}
}

func TestEncodePacketEmpty(t *testing.T) {
	if pkt := EncodePacket(nil); pkt != nil {
		t.Errorf("empty packet: got %v", pkt)
	}
}

func TestCompoundRoundTrip(t *testing.T) {
	msgs := sampleMessages()
	pkt := EncodePacket(msgs)
	if MsgType(pkt[0]) != TypeCompound {
		t.Fatalf("multi-message packet not compound (tag %d)", pkt[0])
	}
	got, err := DecodePacket(pkt)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(msgs) {
		t.Fatalf("got %d messages, want %d", len(got), len(msgs))
	}
	for i := range msgs {
		if !reflect.DeepEqual(msgs[i], got[i]) {
			t.Errorf("message %d mismatch: want %+v, got %+v", i, msgs[i], got[i])
		}
	}
}

func TestDecodePacketBareMessage(t *testing.T) {
	msg := &Suspect{Incarnation: 1, Node: "n", From: "f"}
	got, err := DecodePacket(Marshal(msg))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || !reflect.DeepEqual(got[0], msg) {
		t.Errorf("got %+v", got)
	}
}

func TestDecodePacketRejectsNestedCompound(t *testing.T) {
	inner := EncodePacket([]Message{
		&Ping{SeqNo: 1}, &Ack{SeqNo: 1},
	})
	// Hand-build a compound packet containing the inner compound.
	e := encoder{}
	e.byte(uint8(TypeCompound))
	e.uvarint(1)
	e.uvarint(uint64(len(inner)))
	e.buf = append(e.buf, inner...)
	if _, err := DecodePacket(e.buf); err == nil {
		t.Error("nested compound accepted")
	}
}

func TestDecodePacketTruncatedCompound(t *testing.T) {
	pkt := EncodePacket([]Message{
		&Ping{SeqNo: 1, Target: "a", Source: "b"},
		&Ack{SeqNo: 1, Source: "a"},
	})
	for i := 1; i < len(pkt); i++ {
		if msgs, err := DecodePacket(pkt[:i]); err == nil && len(msgs) == 2 {
			t.Errorf("truncated compound at %d decoded fully", i)
		}
	}
}

func TestPacketLenMatchesEncodePacket(t *testing.T) {
	cases := [][]Message{
		{&Ping{SeqNo: 1, Target: "tgt", Source: "src"}},
		{&Ping{SeqNo: 1}, &Ack{SeqNo: 1}},
		sampleMessages(),
	}
	for _, msgs := range cases {
		sizes := make([]int, len(msgs))
		for i, m := range msgs {
			sizes[i] = Size(m)
		}
		want := len(EncodePacket(msgs))
		if got := PacketLen(sizes); got != want {
			t.Errorf("PacketLen(%v) = %d, want %d", sizes, got, want)
		}
	}
}

func TestSizeMatchesMarshal(t *testing.T) {
	for _, msg := range sampleMessages() {
		if Size(msg) != len(Marshal(msg)) {
			t.Errorf("%s: Size %d != len(Marshal) %d", msg.Type(), Size(msg), len(Marshal(msg)))
		}
	}
}

func TestAppendMarshalAppends(t *testing.T) {
	prefix := []byte{1, 2, 3}
	msg := &Ack{SeqNo: 9, Source: "x"}
	out := AppendMarshal(prefix, msg)
	if !bytes.Equal(out[:3], prefix) {
		t.Error("prefix clobbered")
	}
	if !bytes.Equal(out[3:], Marshal(msg)) {
		t.Error("appended encoding differs from Marshal")
	}
}

func TestMsgTypeStrings(t *testing.T) {
	known := map[MsgType]string{
		TypePing:         "ping",
		TypeIndirectPing: "ping-req",
		TypeAck:          "ack",
		TypeNack:         "nack",
		TypeSuspect:      "suspect",
		TypeAlive:        "alive",
		TypeDead:         "dead",
		TypePushPullReq:  "push-pull-req",
		TypePushPullResp: "push-pull-resp",
		TypeCompound:     "compound",
	}
	for typ, want := range known {
		if got := typ.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", typ, got, want)
		}
	}
	if got := MsgType(200).String(); got != "unknown(200)" {
		t.Errorf("unknown type string: %q", got)
	}
}

// Property: every generated message round-trips exactly.

func (Ping) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(Ping{
		SeqNo:  r.Uint32(),
		Target: randName(r),
		Source: randName(r),
	})
}

func (Suspect) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(Suspect{
		Incarnation: r.Uint64() >> uint(r.Intn(64)),
		Node:        randName(r),
		From:        randName(r),
	})
}

func (Alive) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(Alive{
		Incarnation: r.Uint64() >> uint(r.Intn(64)),
		Node:        randName(r),
		Addr:        randName(r),
	})
}

func randName(r *rand.Rand) string {
	const alphabet = "abcdefghijklmnopqrstuvwxyz0123456789.-:"
	n := r.Intn(64)
	b := make([]byte, n)
	for i := range b {
		b[i] = alphabet[r.Intn(len(alphabet))]
	}
	return string(b)
}

func TestQuickPingRoundTrip(t *testing.T) {
	f := func(p Ping) bool {
		got, err := Unmarshal(Marshal(&p))
		return err == nil && reflect.DeepEqual(got, &p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickSuspectRoundTrip(t *testing.T) {
	f := func(s Suspect) bool {
		got, err := Unmarshal(Marshal(&s))
		return err == nil && reflect.DeepEqual(got, &s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickAliveRoundTrip(t *testing.T) {
	f := func(a Alive) bool {
		got, err := Unmarshal(Marshal(&a))
		return err == nil && reflect.DeepEqual(got, &a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickCompoundRoundTrip(t *testing.T) {
	f := func(pings []Ping) bool {
		if len(pings) == 0 {
			return true
		}
		msgs := make([]Message, len(pings))
		for i := range pings {
			p := pings[i]
			msgs[i] = &p
		}
		got, err := DecodePacket(EncodePacket(msgs))
		if err != nil || len(got) != len(msgs) {
			return false
		}
		for i := range msgs {
			if !reflect.DeepEqual(msgs[i], got[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickDecodeRandomBytesNeverPanics(t *testing.T) {
	f := func(b []byte) bool {
		// Outcome is irrelevant; absence of panic is the property.
		_, _ = DecodePacket(b)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestUvarintLen(t *testing.T) {
	for _, v := range []uint64{0, 1, 127, 128, 16383, 16384, 1 << 32, 1<<64 - 1} {
		e := encoder{}
		e.uvarint(v)
		if got := uvarintLen(v); got != len(e.buf) {
			t.Errorf("uvarintLen(%d) = %d, want %d", v, got, len(e.buf))
		}
	}
}

func BenchmarkMarshalPing(b *testing.B) {
	msg := &Ping{SeqNo: 42, Target: "node-0123", Source: "node-4567"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Marshal(msg)
	}
}

func BenchmarkUnmarshalPing(b *testing.B) {
	buf := Marshal(&Ping{SeqNo: 42, Target: "node-0123", Source: "node-4567"})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Unmarshal(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncodePacketCompound(b *testing.B) {
	msgs := sampleMessages()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		EncodePacket(msgs)
	}
}

func BenchmarkDecodePacketCompound(b *testing.B) {
	pkt := EncodePacket(sampleMessages())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := DecodePacket(pkt); err != nil {
			b.Fatal(err)
		}
	}
}
