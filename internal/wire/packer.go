package wire

import "sync"

// Packer assembles one outgoing packet — a bare message, or a compound
// wrapping several — without per-message allocations: message bodies are
// encoded back to back into one reusable buffer, pre-encoded payloads
// (gossip piggyback) are copied in directly, and Finish assembles the
// final framing in a second reusable buffer. Instances are pooled;
// Acquire one per packet and Release it after the payload has been
// handed to the transport.
//
// The wire format produced is byte-identical to EncodePacket's.
type Packer struct {
	bodies []byte // concatenated message encodings (type tag included)
	lens   []int  // length of each encoding, in order
	out    []byte // assembled packet, reused across Finish calls
}

var packerPool = sync.Pool{New: func() any { return new(Packer) }}

// AcquirePacker returns an empty Packer from the pool.
func AcquirePacker() *Packer {
	return packerPool.Get().(*Packer)
}

// Release resets the packer and returns it to the pool. Payloads
// obtained from Finish are invalid afterwards.
func (p *Packer) Release() {
	p.Reset()
	packerPool.Put(p)
}

// Reset drops all added messages, keeping the buffers for reuse.
func (p *Packer) Reset() {
	p.bodies = p.bodies[:0]
	p.lens = p.lens[:0]
	p.out = p.out[:0]
}

// Add encodes m (type tag included) into the packer and returns the
// encoded size, which callers use for MTU budget accounting.
func (p *Packer) Add(m Message) int {
	e := encoder{buf: p.bodies}
	encodeInto(&e, m)
	n := len(e.buf) - len(p.bodies)
	p.bodies = e.buf
	p.lens = append(p.lens, n)
	return n
}

// AddRaw appends a pre-encoded message (wire.Marshal output, as stored
// in the broadcast queue). The bytes are copied; body may be reused by
// the caller after the call returns.
func (p *Packer) AddRaw(body []byte) {
	p.bodies = append(p.bodies, body...)
	p.lens = append(p.lens, len(body))
}

// Count returns the number of messages added so far.
func (p *Packer) Count() int { return len(p.lens) }

// Finish assembles the packet: a single message is returned bare, and
// several are wrapped in a compound message, exactly as EncodePacket
// frames them. The returned slice is owned by the packer and is valid
// only until the next Reset, Finish or Release.
func (p *Packer) Finish() []byte {
	switch len(p.lens) {
	case 0:
		return nil
	case 1:
		return p.bodies
	}
	e := encoder{buf: p.out[:0]}
	e.byte(uint8(TypeCompound))
	e.uvarint(uint64(len(p.lens)))
	off := 0
	for _, n := range p.lens {
		e.uvarint(uint64(n))
		e.buf = append(e.buf, p.bodies[off:off+n]...)
		off += n
	}
	p.out = e.buf
	return e.buf
}
