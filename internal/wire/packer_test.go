package wire

import (
	"bytes"
	"math/rand"
	"testing"

	"lifeguard/internal/coords"
)

// randomCoord builds a populated random coordinate.
func randomCoord(rng *rand.Rand) *coords.Coordinate {
	c := coords.NewCoordinate(coords.DefaultConfig())
	for i := range c.Vec {
		c.Vec[i] = rng.NormFloat64() * 0.05
	}
	c.Error = rng.Float64()
	c.Adjustment = rng.NormFloat64() * 0.001
	c.Height = rng.Float64() * 0.001
	return c
}

// fuzzMessages builds a random message list from every type.
func randomMessages(rng *rand.Rand, n int) []Message {
	msgs := make([]Message, 0, n)
	for i := 0; i < n; i++ {
		switch rng.Intn(9) {
		case 0:
			msgs = append(msgs, &Ping{SeqNo: rng.Uint32(), Target: "t", Source: "s"})
		case 1:
			msgs = append(msgs, &IndirectPing{SeqNo: rng.Uint32(), Target: "t", Source: "s", WantNack: rng.Intn(2) == 0})
		case 2:
			msgs = append(msgs, &Ack{SeqNo: rng.Uint32(), Source: "s"})
		case 3:
			msgs = append(msgs, &Suspect{Incarnation: rng.Uint64() % 1000, Node: "n", From: "f"})
		case 4:
			meta := make([]byte, rng.Intn(16))
			rng.Read(meta)
			msgs = append(msgs, &Alive{Incarnation: rng.Uint64() % 1000, Node: "n", Addr: "a", Meta: meta})
		case 5:
			msgs = append(msgs, &Dead{Incarnation: rng.Uint64() % 1000, Node: "n", From: "f"})
		case 6:
			msgs = append(msgs, &Nack{SeqNo: rng.Uint32(), Source: "s"})
		case 7:
			msgs = append(msgs, &Ping{SeqNo: rng.Uint32(), Target: "t", Source: "s", Coord: randomCoord(rng)})
		case 8:
			msgs = append(msgs, &Ack{SeqNo: rng.Uint32(), Source: "s", Coord: randomCoord(rng)})
		}
	}
	return msgs
}

// TestPackerMatchesEncodePacket pins the pooled packer's output to the
// reference EncodePacket framing, byte for byte, across message counts
// (bare single-message packets and compounds) and across Add vs AddRaw.
func TestPackerMatchesEncodePacket(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		msgs := randomMessages(rng, 1+rng.Intn(12))
		want := EncodePacket(msgs)

		p := AcquirePacker()
		sizes := 0
		for _, m := range msgs {
			sizes += p.Add(m)
		}
		if got := p.Finish(); !bytes.Equal(got, want) {
			p.Release()
			t.Fatalf("trial %d: Packer.Add framing diverged\ngot:  %x\nwant: %x", trial, got, want)
		}
		if p.Count() != len(msgs) {
			t.Fatalf("trial %d: Count = %d, want %d", trial, p.Count(), len(msgs))
		}
		// Add must report the same per-message sizes Size does.
		wantSizes := 0
		for _, m := range msgs {
			wantSizes += Size(m)
		}
		if sizes != wantSizes {
			t.Fatalf("trial %d: Add sizes total %d, want %d", trial, sizes, wantSizes)
		}

		// AddRaw (the gossip piggyback path) must frame identically.
		p.Reset()
		for _, m := range msgs {
			p.AddRaw(Marshal(m))
		}
		if got := p.Finish(); !bytes.Equal(got, want) {
			p.Release()
			t.Fatalf("trial %d: Packer.AddRaw framing diverged", trial)
		}
		p.Release()
	}
}

// TestCoordinatePingStaysUnderMTU reproduces the core's worst-case
// failure-detector send with coordinates enabled — a coordinate-bearing
// ping, a Buddy System suspect forced in, and gossip piggyback packed
// to the remaining budget, exactly the accounting in
// sendWithPiggybackLocked — and asserts the packet never exceeds MTU.
// This is the packet-size guarantee for coordinate exchange.
func TestCoordinatePingStaysUnderMTU(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	longName := "node-with-a-rather-long-hostname-0123456789.dc1.example.internal"

	p := AcquirePacker()
	defer p.Release()

	ping := &Ping{SeqNo: 1 << 31, Target: longName, Source: longName, Coord: randomCoord(rng)}
	used := p.Add(ping) + CompoundOverhead

	buddy := &Suspect{Incarnation: 1 << 40, Node: longName, From: longName}
	used += p.Add(buddy) + CompoundOverhead

	// Fill the rest of the budget greedily with maximum-size gossip
	// updates, the way GetBroadcastsInto packs the queue's payloads.
	meta := make([]byte, MaxMetaLen)
	rng.Read(meta)
	gossip := Marshal(&Alive{Incarnation: 1 << 40, Node: longName, Addr: longName, Meta: meta})
	budget := MTU - used
	for budget >= len(gossip)+CompoundOverhead {
		p.AddRaw(gossip)
		budget -= len(gossip) + CompoundOverhead
	}
	if p.Count() < 3 {
		t.Fatalf("budget left no room for piggyback: %d messages packed", p.Count())
	}

	pkt := p.Finish()
	if len(pkt) > MTU {
		t.Fatalf("coordinate ping packet is %d bytes, MTU is %d", len(pkt), MTU)
	}
	// The packet must also still decode.
	msgs, err := DecodePacket(pkt)
	if err != nil {
		t.Fatalf("packed coordinate packet does not decode: %v", err)
	}
	if got := msgs[0].(*Ping); got.Coord == nil {
		t.Fatal("coordinate lost in packing")
	}
}

// TestPackerReuse checks that a pooled packer carries no state across
// Reset/Release cycles.
func TestPackerReuse(t *testing.T) {
	p := AcquirePacker()
	p.Add(&Ping{SeqNo: 1, Target: "t", Source: "s"})
	p.Add(&Ack{SeqNo: 2, Source: "s"})
	first := append([]byte(nil), p.Finish()...)
	p.Reset()
	if p.Count() != 0 || p.Finish() != nil {
		t.Fatal("Reset left state behind")
	}
	p.Add(&Ping{SeqNo: 1, Target: "t", Source: "s"})
	p.Add(&Ack{SeqNo: 2, Source: "s"})
	if got := p.Finish(); !bytes.Equal(got, first) {
		t.Fatalf("reused packer produced different bytes:\n%x\n%x", got, first)
	}
	p.Release()
}
