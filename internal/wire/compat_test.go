package wire

import (
	"bytes"
	"reflect"
	"testing"

	"lifeguard/internal/coords"
)

// legacyMarshalPing encodes a Ping exactly as the pre-coordinate wire
// format did: fixed fields only, no trailing block. It stands in for a
// peer running the old protocol.
func legacyMarshalPing(m *Ping) []byte {
	e := encoder{}
	e.byte(uint8(TypePing))
	e.uint32(m.SeqNo)
	e.string(m.Target)
	e.string(m.Source)
	return e.buf
}

func legacyMarshalAck(m *Ack) []byte {
	e := encoder{}
	e.byte(uint8(TypeAck))
	e.uint32(m.SeqNo)
	e.string(m.Source)
	return e.buf
}

// legacyDecodePing decodes only the pre-coordinate fields and ignores
// whatever follows, exactly as the old decoder did (it never checked
// for trailing bytes). It stands in for the old peer's decode path.
func legacyDecodePing(t *testing.T, buf []byte) *Ping {
	t.Helper()
	if MsgType(buf[0]) != TypePing {
		t.Fatalf("not a ping: tag %d", buf[0])
	}
	d := decoder{buf: buf[1:]}
	m := &Ping{SeqNo: d.uint32(), Target: d.string(), Source: d.string()}
	if d.err != nil {
		t.Fatalf("legacy decode failed: %v", d.err)
	}
	return m
}

func legacyDecodeAck(t *testing.T, buf []byte) *Ack {
	t.Helper()
	if MsgType(buf[0]) != TypeAck {
		t.Fatalf("not an ack: tag %d", buf[0])
	}
	d := decoder{buf: buf[1:]}
	m := &Ack{SeqNo: d.uint32(), Source: d.string()}
	if d.err != nil {
		t.Fatalf("legacy decode failed: %v", d.err)
	}
	return m
}

// TestCoordlessEncodingIsByteIdenticalToLegacy pins the promise that a
// nil coordinate adds zero bytes: members that never set coordinates
// emit exactly the old wire format.
func TestCoordlessEncodingIsByteIdenticalToLegacy(t *testing.T) {
	ping := &Ping{SeqNo: 9, Target: "t", Source: "s"}
	if got, want := Marshal(ping), legacyMarshalPing(ping); !bytes.Equal(got, want) {
		t.Errorf("coordless ping encoding changed:\ngot:  %x\nwant: %x", got, want)
	}
	ack := &Ack{SeqNo: 9, Source: "s"}
	if got, want := Marshal(ack), legacyMarshalAck(ack); !bytes.Equal(got, want) {
		t.Errorf("coordless ack encoding changed:\ngot:  %x\nwant: %x", got, want)
	}
}

// TestLegacyPeerDecodesCoordinateMessages is the forward direction: a
// packet carrying coordinates decodes on a coordinate-unaware peer,
// which sees the fixed fields and skips the tail.
func TestLegacyPeerDecodesCoordinateMessages(t *testing.T) {
	ping := &Ping{SeqNo: 7, Target: "node-b", Source: "node-a", Coord: sampleCoord()}
	got := legacyDecodePing(t, Marshal(ping))
	if got.SeqNo != ping.SeqNo || got.Target != ping.Target || got.Source != ping.Source {
		t.Errorf("legacy peer mis-decoded coordinate ping: %+v", got)
	}

	ack := &Ack{SeqNo: 7, Source: "node-b", Coord: sampleCoord()}
	gotAck := legacyDecodeAck(t, Marshal(ack))
	if gotAck.SeqNo != ack.SeqNo || gotAck.Source != ack.Source {
		t.Errorf("legacy peer mis-decoded coordinate ack: %+v", gotAck)
	}
}

// TestModernPeerDecodesLegacyMessages is the reverse direction: a
// legacy packet (no tail) decodes on a coordinate-aware peer as a
// message without a coordinate.
func TestModernPeerDecodesLegacyMessages(t *testing.T) {
	ping := &Ping{SeqNo: 3, Target: "node-b", Source: "node-a"}
	m, err := Unmarshal(legacyMarshalPing(ping))
	if err != nil {
		t.Fatal(err)
	}
	if got := m.(*Ping); got.Coord != nil || !reflect.DeepEqual(got, ping) {
		t.Errorf("legacy ping decoded to %+v", got)
	}

	ack := &Ack{SeqNo: 3, Source: "node-b"}
	ma, err := Unmarshal(legacyMarshalAck(ack))
	if err != nil {
		t.Fatal(err)
	}
	if got := ma.(*Ack); got.Coord != nil || !reflect.DeepEqual(got, ack) {
		t.Errorf("legacy ack decoded to %+v", got)
	}
}

// TestUnknownCoordBlockVersionIgnored pins the next escape hatch: a
// tail tagged with a future version byte is skipped, not an error, so
// this codec revision is itself forward-compatible.
func TestUnknownCoordBlockVersionIgnored(t *testing.T) {
	base := &Ping{SeqNo: 5, Target: "t", Source: "s"}
	buf := append(legacyMarshalPing(base), 0x7F, 0xDE, 0xAD, 0xBE, 0xEF)
	m, err := Unmarshal(buf)
	if err != nil {
		t.Fatalf("future-version tail rejected: %v", err)
	}
	if got := m.(*Ping); got.Coord != nil || got.SeqNo != base.SeqNo {
		t.Errorf("future-version tail decoded to %+v", got)
	}
}

// TestCoordinateRoundTripInCompound exercises the coordinate block
// through compound framing, where each part is length-delimited and the
// tail boundary is per-message.
func TestCoordinateRoundTripInCompound(t *testing.T) {
	msgs := []Message{
		&Ping{SeqNo: 1, Target: "t", Source: "s", Coord: sampleCoord()},
		&Suspect{Incarnation: 2, Node: "n", From: "f"},
		&Ack{SeqNo: 1, Source: "t", Coord: sampleCoord()},
		&Ping{SeqNo: 2, Target: "u", Source: "s"}, // coordless alongside
	}
	got, err := DecodePacket(EncodePacket(msgs))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, msgs) {
		t.Errorf("compound coordinate round trip mismatch:\n got %+v\nwant %+v", got, msgs)
	}
}

// TestTruncatedCoordBlockRejected: a v1 tail that is cut short is a
// malformed packet, not a silent nil coordinate.
func TestTruncatedCoordBlockRejected(t *testing.T) {
	full := Marshal(&Ping{SeqNo: 1, Target: "t", Source: "s", Coord: sampleCoord()})
	bare := len(legacyMarshalPing(&Ping{SeqNo: 1, Target: "t", Source: "s"}))
	for i := bare + 1; i < len(full); i++ {
		if _, err := Unmarshal(full[:i]); err == nil {
			t.Errorf("truncated coord block at %d/%d accepted", i, len(full))
		}
	}
}

// TestOversizeCoordDimensionRejected: a corrupt dimension count must
// not allocate unboundedly.
func TestOversizeCoordDimensionRejected(t *testing.T) {
	e := encoder{buf: legacyMarshalPing(&Ping{SeqNo: 1, Target: "t", Source: "s"})}
	e.byte(coordBlockV1)
	e.uvarint(1 << 30)
	if _, err := Unmarshal(e.buf); err == nil {
		t.Error("oversize coordinate dimension accepted")
	}
}

// TestCoordinateSizeBudget pins the coordinate block's wire cost so MTU
// budgeting stays honest: an 8-dimension coordinate must cost at most
// 100 bytes on a ping or ack.
func TestCoordinateSizeBudget(t *testing.T) {
	c := coords.NewCoordinate(coords.DefaultConfig())
	bare := Size(&Ping{SeqNo: 1, Target: "node-000", Source: "node-001"})
	withCoord := Size(&Ping{SeqNo: 1, Target: "node-000", Source: "node-001", Coord: c})
	if cost := withCoord - bare; cost > 100 {
		t.Errorf("coordinate block costs %d bytes on the wire, budget is 100", cost)
	}
}
