package wire

import (
	"sync"

	"lifeguard/internal/coords"
)

// Unpacker is the decode-side counterpart of Packer: it decodes packets
// into pooled message structs, interned name strings, and reusable
// coordinate/state scratch, so the steady-state receive path performs no
// allocations. Acquire one per HandlePacket call and Release it once the
// decoded messages have been processed.
//
// Ownership contract: every message returned by Decode — the structs,
// their string fields excepted, and any Coordinate they carry — is owned
// by the Unpacker and valid only until the next Decode or Release.
// Handlers that need to keep data must copy it out. Two fields are safe
// to retain as-is: string fields (interned strings are immutable and
// shared) and Meta byte slices (always freshly allocated, because the
// membership table stores them verbatim).
type Unpacker struct {
	// msgs is the reusable result slice handed back by Decode.
	msgs []Message

	// dec is the reusable per-message decoder: Message.decode is a
	// dynamic call, so a stack decoder would escape and allocate per
	// message.
	dec decoder

	pings    msgScratch[Ping]
	ipings   msgScratch[IndirectPing]
	acks     msgScratch[Ack]
	nacks    msgScratch[Nack]
	suspects msgScratch[Suspect]
	alives   msgScratch[Alive]
	deads    msgScratch[Dead]
	ppreqs   msgScratch[PushPullReq]
	ppresps  msgScratch[PushPullResp]

	// coordPool recycles decoded coordinates; the coords engine clones
	// what it stores, so these never outlive the packet.
	coordPool []*coords.Coordinate
	nCoords   int

	// statePool recycles the backing arrays of decoded push-pull tables
	// (the core replays them synchronously and never retains the slice).
	states  [][]PushPullState
	nStates int

	// names interns decoded member names and addresses: a stable cluster
	// has a fixed vocabulary of strings, so after warm-up no string is
	// allocated per packet. Bounded so a hostile sender cannot grow it
	// without limit; overflow falls back to plain allocation.
	names map[string]string
}

// Intern-table bounds: entries above either limit are allocated fresh
// instead of cached. 8k names covers the 10k-member tier's working set
// per transport goroutine without pinning unbounded hostile input.
const (
	maxInternedNames   = 8192
	maxInternedNameLen = 128
)

// msgScratch is a pointer-stable freelist of decoded message structs of
// one type: take returns a zeroed struct, reusing storage across resets.
type msgScratch[T any] struct {
	items []*T
	next  int
}

func (p *msgScratch[T]) take() *T {
	if p.next == len(p.items) {
		p.items = append(p.items, new(T))
	}
	v := p.items[p.next]
	p.next++
	var zero T
	*v = zero
	return v
}

var unpackerPool = sync.Pool{New: func() any { return new(Unpacker) }}

// AcquireUnpacker returns an Unpacker from the pool.
func AcquireUnpacker() *Unpacker {
	return unpackerPool.Get().(*Unpacker)
}

// Release returns the unpacker to the pool. Messages obtained from
// Decode are invalid afterwards.
func (u *Unpacker) Release() {
	unpackerPool.Put(u)
}

// Decode decodes one packet, unwrapping one level of compound framing
// exactly like DecodePacket, but into pooled storage. The returned
// messages are owned by the unpacker (see the type comment).
func (u *Unpacker) Decode(b []byte) ([]Message, error) {
	u.pings.next = 0
	u.ipings.next = 0
	u.acks.next = 0
	u.nacks.next = 0
	u.suspects.next = 0
	u.alives.next = 0
	u.deads.next = 0
	u.ppreqs.next = 0
	u.ppresps.next = 0
	u.nCoords = 0
	u.nStates = 0
	msgs, err := decodePacketWith(u, u.msgs[:0], b)
	if err != nil {
		return nil, err
	}
	u.msgs = msgs
	return msgs, nil
}

// takeMessage returns a zeroed pooled message of the given type, or nil
// for unknown/compound types (mirroring newMessage).
func (u *Unpacker) takeMessage(t MsgType) Message {
	switch t {
	case TypePing:
		return u.pings.take()
	case TypeIndirectPing:
		return u.ipings.take()
	case TypeAck:
		return u.acks.take()
	case TypeNack:
		return u.nacks.take()
	case TypeSuspect:
		return u.suspects.take()
	case TypeAlive:
		return u.alives.take()
	case TypeDead:
		return u.deads.take()
	case TypePushPullReq:
		return u.ppreqs.take()
	case TypePushPullResp:
		return u.ppresps.take()
	default:
		return nil
	}
}

// takeCoord returns a pooled coordinate with a zeroed dim-length vector.
func (u *Unpacker) takeCoord(dim int) *coords.Coordinate {
	if u.nCoords == len(u.coordPool) {
		u.coordPool = append(u.coordPool, &coords.Coordinate{})
	}
	c := u.coordPool[u.nCoords]
	u.nCoords++
	if cap(c.Vec) < dim {
		c.Vec = make([]float64, dim)
	} else {
		c.Vec = c.Vec[:dim]
		for i := range c.Vec {
			c.Vec[i] = 0
		}
	}
	c.Error, c.Adjustment, c.Height = 0, 0, 0
	return c
}

// takeStatesSlot returns a pooled, emptied state slice and its slot
// index; the caller stores the grown slice back so the capacity is kept.
func (u *Unpacker) takeStatesSlot() (int, []PushPullState) {
	if u.nStates == len(u.states) {
		u.states = append(u.states, nil)
	}
	slot := u.nStates
	u.nStates++
	s := u.states[slot][:0]
	// Clear retained pointers from the previous decode so stale Meta
	// slices and strings do not outlive their packet via the pool.
	for i := range s[:cap(s)] {
		s[:cap(s)][i] = PushPullState{}
	}
	return slot, s
}

// intern returns the string value of b, reusing a previously decoded
// instance when possible.
func (u *Unpacker) intern(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	if len(b) > maxInternedNameLen {
		return string(b)
	}
	if s, ok := u.names[string(b)]; ok { // no-alloc lookup
		return s
	}
	if u.names == nil {
		u.names = make(map[string]string, 64)
	} else if len(u.names) >= maxInternedNames {
		return string(b)
	}
	s := string(b)
	u.names[s] = s
	return s
}
