package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"lifeguard/internal/coords"
)

// Codec limits. MTU mirrors memberlist's default UDP packet budget; gossip
// piggybacking packs messages up to this size.
const (
	// MTU is the maximum packet size produced by EncodePacket.
	MTU = 1400

	// maxStringLen bounds decoded strings to keep a corrupt length prefix
	// from allocating unbounded memory.
	maxStringLen = 1 << 12

	// maxStates bounds the number of push-pull entries decoded from one
	// message.
	maxStates = 1 << 16

	// maxCoordDim bounds the dimensionality of a decoded coordinate.
	// Vivaldi uses single-digit dimensions; anything huge is corrupt.
	maxCoordDim = 64

	// coordBlockV1 tags version 1 of the optional trailing coordinate
	// block on Ping/Ack. A tail starting with any other byte belongs to
	// a future protocol revision and is ignored, exactly as members
	// without coordinate support ignore the whole tail.
	coordBlockV1 = 1
)

// Codec errors.
var (
	// ErrTruncated reports a message shorter than its encoding requires.
	ErrTruncated = errors.New("wire: truncated message")

	// ErrUnknownType reports an unrecognized message type tag.
	ErrUnknownType = errors.New("wire: unknown message type")

	// ErrOversize reports a string or collection exceeding codec limits.
	ErrOversize = errors.New("wire: oversize field")
)

// encoder appends primitive values to a buffer. Methods never fail;
// bounds are enforced at decode time.
type encoder struct {
	buf []byte
}

func (e *encoder) byte(v uint8)    { e.buf = append(e.buf, v) }
func (e *encoder) bool(v bool)     { e.byte(boolByte(v)) }
func (e *encoder) uint32(v uint32) { e.buf = binary.BigEndian.AppendUint32(e.buf, v) }
func (e *encoder) uvarint(v uint64) {
	e.buf = binary.AppendUvarint(e.buf, v)
}

func (e *encoder) string(s string) {
	e.uvarint(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

func (e *encoder) bytes(b []byte) {
	e.uvarint(uint64(len(b)))
	e.buf = append(e.buf, b...)
}

func boolByte(v bool) uint8 {
	if v {
		return 1
	}
	return 0
}

// decoder consumes primitive values from a buffer, latching the first
// error (errors-are-values style so message decoders stay linear). When
// u is non-nil the decoder draws strings, coordinates, message structs
// and state slices from the Unpacker's pooled scratch instead of
// allocating; a nil u decodes standalone with fresh allocations.
type decoder struct {
	buf []byte
	err error
	u   *Unpacker
}

func (d *decoder) fail(err error) {
	if d.err == nil {
		d.err = err
	}
}

func (d *decoder) byte() uint8 {
	if d.err != nil {
		return 0
	}
	if len(d.buf) < 1 {
		d.fail(ErrTruncated)
		return 0
	}
	v := d.buf[0]
	d.buf = d.buf[1:]
	return v
}

func (d *decoder) bool() bool { return d.byte() != 0 }

func (d *decoder) uint32() uint32 {
	if d.err != nil {
		return 0
	}
	if len(d.buf) < 4 {
		d.fail(ErrTruncated)
		return 0
	}
	v := binary.BigEndian.Uint32(d.buf)
	d.buf = d.buf[4:]
	return v
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf)
	if n <= 0 {
		d.fail(ErrTruncated)
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

func (d *decoder) string() string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if n > maxStringLen {
		d.fail(ErrOversize)
		return ""
	}
	if uint64(len(d.buf)) < n {
		d.fail(ErrTruncated)
		return ""
	}
	var s string
	if d.u != nil {
		s = d.u.intern(d.buf[:n])
	} else {
		s = string(d.buf[:n])
	}
	d.buf = d.buf[n:]
	return s
}

func (d *decoder) bytes() []byte {
	n := d.uvarint()
	if d.err != nil {
		return nil
	}
	if n > maxStringLen {
		d.fail(ErrOversize)
		return nil
	}
	if uint64(len(d.buf)) < n {
		d.fail(ErrTruncated)
		return nil
	}
	if n == 0 {
		return nil // preserve nil round trips
	}
	b := make([]byte, n)
	copy(b, d.buf[:n])
	d.buf = d.buf[n:]
	return b
}

func (e *encoder) float64(v float64) {
	e.buf = binary.BigEndian.AppendUint64(e.buf, math.Float64bits(v))
}

func (d *decoder) float64() float64 {
	if d.err != nil {
		return 0
	}
	if len(d.buf) < 8 {
		d.fail(ErrTruncated)
		return 0
	}
	v := math.Float64frombits(binary.BigEndian.Uint64(d.buf))
	d.buf = d.buf[8:]
	return v
}

// encodeCoord appends the optional trailing coordinate block. A nil
// coordinate appends nothing, keeping the encoding byte-identical to
// the pre-coordinate wire format.
func encodeCoord(e *encoder, c *coords.Coordinate) {
	if c == nil {
		return
	}
	e.byte(coordBlockV1)
	e.uvarint(uint64(len(c.Vec)))
	for _, v := range c.Vec {
		e.float64(v)
	}
	e.float64(c.Error)
	e.float64(c.Adjustment)
	e.float64(c.Height)
}

// decodeCoord consumes the optional trailing coordinate block. An
// empty tail (a coordinate-less sender) or a tail with an unknown
// version byte (a future revision) yields nil without error; a v1
// block that is truncated or oversize latches the decoder error.
func decodeCoord(d *decoder) *coords.Coordinate {
	if d.err != nil || len(d.buf) == 0 {
		return nil
	}
	if d.buf[0] != coordBlockV1 {
		// Unknown tail: skip it wholesale, mirroring what a
		// coordinate-unaware decoder does with our tail.
		d.buf = nil
		return nil
	}
	d.byte()
	dim := d.uvarint()
	if d.err != nil {
		return nil
	}
	if dim > maxCoordDim {
		d.fail(ErrOversize)
		return nil
	}
	var c *coords.Coordinate
	if d.u != nil {
		c = d.u.takeCoord(int(dim))
	} else {
		c = &coords.Coordinate{Vec: make([]float64, dim)}
	}
	for i := range c.Vec {
		c.Vec[i] = d.float64()
	}
	c.Error = d.float64()
	c.Adjustment = d.float64()
	c.Height = d.float64()
	if d.err != nil {
		return nil
	}
	return c
}

// Per-message encodings. Field order is part of the wire format.

func (m *Ping) encode(e *encoder) {
	e.uint32(m.SeqNo)
	e.string(m.Target)
	e.string(m.Source)
	encodeCoord(e, m.Coord)
}

func (m *Ping) decode(d *decoder) {
	m.SeqNo = d.uint32()
	m.Target = d.string()
	m.Source = d.string()
	m.Coord = decodeCoord(d)
}

func (m *IndirectPing) encode(e *encoder) {
	e.uint32(m.SeqNo)
	e.string(m.Target)
	e.string(m.Source)
	e.bool(m.WantNack)
}

func (m *IndirectPing) decode(d *decoder) {
	m.SeqNo = d.uint32()
	m.Target = d.string()
	m.Source = d.string()
	m.WantNack = d.bool()
}

func (m *Ack) encode(e *encoder) {
	e.uint32(m.SeqNo)
	e.string(m.Source)
	encodeCoord(e, m.Coord)
}

func (m *Ack) decode(d *decoder) {
	m.SeqNo = d.uint32()
	m.Source = d.string()
	m.Coord = decodeCoord(d)
}

func (m *Nack) encode(e *encoder) {
	e.uint32(m.SeqNo)
	e.string(m.Source)
}

func (m *Nack) decode(d *decoder) {
	m.SeqNo = d.uint32()
	m.Source = d.string()
}

func (m *Suspect) encode(e *encoder) {
	e.uvarint(m.Incarnation)
	e.string(m.Node)
	e.string(m.From)
}

func (m *Suspect) decode(d *decoder) {
	m.Incarnation = d.uvarint()
	m.Node = d.string()
	m.From = d.string()
}

func (m *Alive) encode(e *encoder) {
	e.uvarint(m.Incarnation)
	e.string(m.Node)
	e.string(m.Addr)
	e.bytes(m.Meta)
}

func (m *Alive) decode(d *decoder) {
	m.Incarnation = d.uvarint()
	m.Node = d.string()
	m.Addr = d.string()
	m.Meta = d.bytes()
}

func (m *Dead) encode(e *encoder) {
	e.uvarint(m.Incarnation)
	e.string(m.Node)
	e.string(m.From)
}

func (m *Dead) decode(d *decoder) {
	m.Incarnation = d.uvarint()
	m.Node = d.string()
	m.From = d.string()
}

func encodeStates(e *encoder, states []PushPullState) {
	e.uvarint(uint64(len(states)))
	for i := range states {
		s := &states[i]
		e.string(s.Name)
		e.string(s.Addr)
		e.uvarint(s.Incarnation)
		e.byte(s.State)
		e.bytes(s.Meta)
	}
}

func decodeStates(d *decoder) []PushPullState {
	n := d.uvarint()
	if d.err != nil {
		return nil
	}
	if n > maxStates {
		d.fail(ErrOversize)
		return nil
	}
	if n == 0 {
		return nil // preserve nil round trips (nil is a valid slice)
	}
	var states []PushPullState
	slot := -1
	if d.u != nil {
		slot, states = d.u.takeStatesSlot()
	} else {
		states = make([]PushPullState, 0, n)
	}
	for i := uint64(0); i < n && d.err == nil; i++ {
		var s PushPullState
		s.Name = d.string()
		s.Addr = d.string()
		s.Incarnation = d.uvarint()
		s.State = d.byte()
		s.Meta = d.bytes()
		states = append(states, s)
	}
	if slot >= 0 {
		// Hand the (possibly grown) backing array back for reuse.
		d.u.states[slot] = states
	}
	return states
}

func (m *PushPullReq) encode(e *encoder) {
	e.string(m.Source)
	e.bool(m.Join)
	encodeStates(e, m.States)
}

func (m *PushPullReq) decode(d *decoder) {
	m.Source = d.string()
	m.Join = d.bool()
	m.States = decodeStates(d)
}

func (m *PushPullResp) encode(e *encoder) {
	e.string(m.Source)
	encodeStates(e, m.States)
}

func (m *PushPullResp) decode(d *decoder) {
	m.Source = d.string()
	m.States = decodeStates(d)
}

// encodeInto encodes m (type tag included) through a concrete-type
// dispatch: calling m.encode(&e) through the Message interface makes
// the encoder escape to the heap, costing an allocation per message on
// the send path, while the static calls below keep it on the stack.
func encodeInto(e *encoder, m Message) {
	e.byte(uint8(m.Type()))
	switch v := m.(type) {
	case *Ping:
		v.encode(e)
	case *IndirectPing:
		v.encode(e)
	case *Ack:
		v.encode(e)
	case *Nack:
		v.encode(e)
	case *Suspect:
		v.encode(e)
	case *Alive:
		v.encode(e)
	case *Dead:
		v.encode(e)
	case *PushPullReq:
		v.encode(e)
	case *PushPullResp:
		v.encode(e)
	default:
		// Message is sealed (unexported methods), so the switch above is
		// exhaustive. A dynamic m.encode(e) fallback here would force
		// the encoder to escape again on every path.
		panic(fmt.Sprintf("wire: cannot encode message type %T", m))
	}
}

// Marshal encodes a single message, including its type tag.
func Marshal(m Message) []byte {
	e := encoder{buf: make([]byte, 0, 64)}
	encodeInto(&e, m)
	return e.buf
}

// AppendMarshal appends the encoding of m (including type tag) to dst and
// returns the extended slice.
func AppendMarshal(dst []byte, m Message) []byte {
	e := encoder{buf: dst}
	encodeInto(&e, m)
	return e.buf
}

// Unmarshal decodes a single non-compound message.
func Unmarshal(b []byte) (Message, error) {
	return unmarshalWith(nil, b)
}

// unmarshalWith decodes one bare message, drawing the struct and its
// fields from u's pools when u is non-nil.
func unmarshalWith(u *Unpacker, b []byte) (Message, error) {
	if len(b) == 0 {
		return nil, ErrTruncated
	}
	var m Message
	if u != nil {
		m = u.takeMessage(MsgType(b[0]))
	} else {
		m = newMessage(MsgType(b[0]))
	}
	if m == nil {
		return nil, fmt.Errorf("%w: %d", ErrUnknownType, b[0])
	}
	var d *decoder
	if u != nil {
		d = &u.dec
		*d = decoder{buf: b[1:], u: u}
	} else {
		d = &decoder{buf: b[1:]}
	}
	m.decode(d)
	if d.err != nil {
		return nil, fmt.Errorf("decoding %s: %w", m.Type(), d.err)
	}
	return m, nil
}

// Size returns the encoded length of m, including the type tag.
func Size(m Message) int {
	// Messages are small; encoding into a scratch buffer is simpler and
	// safer than maintaining a parallel size computation, and this path
	// is not hot (packers reuse AppendMarshal output directly).
	return len(Marshal(m))
}

// EncodePacket packs one or more messages into a single packet. A single
// message is encoded bare; multiple messages are wrapped in a compound
// message: tag, count (uvarint), then length-prefixed encodings.
//
// The caller is responsible for keeping the total under MTU; PackPiggyback
// in this package does that for the gossip path.
func EncodePacket(msgs []Message) []byte {
	switch len(msgs) {
	case 0:
		return nil
	case 1:
		return Marshal(msgs[0])
	}
	e := encoder{buf: make([]byte, 0, 256)}
	e.byte(uint8(TypeCompound))
	e.uvarint(uint64(len(msgs)))
	for _, m := range msgs {
		body := Marshal(m)
		e.uvarint(uint64(len(body)))
		e.buf = append(e.buf, body...)
	}
	return e.buf
}

// DecodePacket decodes a packet into its constituent messages, unwrapping
// one level of compound framing. Nested compound messages are rejected.
func DecodePacket(b []byte) ([]Message, error) {
	return decodePacketWith(nil, nil, b)
}

// decodePacketWith is DecodePacket with optional pooled scratch: with a
// non-nil Unpacker, message structs, strings, coordinates and state
// slices come from its pools, and decoded messages are appended to msgs
// (the Unpacker's reusable slice).
func decodePacketWith(u *Unpacker, msgs []Message, b []byte) ([]Message, error) {
	if len(b) == 0 {
		return nil, ErrTruncated
	}
	if MsgType(b[0]) != TypeCompound {
		m, err := unmarshalWith(u, b)
		if err != nil {
			return nil, err
		}
		return append(msgs, m), nil
	}
	d := decoder{buf: b[1:], u: u}
	n := d.uvarint()
	if d.err != nil {
		return nil, d.err
	}
	if n > maxStates {
		return nil, ErrOversize
	}
	if n == 0 {
		// EncodePacket never produces an empty compound (zero messages
		// encode as no packet at all); accepting one would break
		// decode/re-encode symmetry. Found by FuzzDecodePacket.
		return nil, ErrTruncated
	}
	if msgs == nil {
		msgs = make([]Message, 0, n)
	}
	for i := uint64(0); i < n; i++ {
		sz := d.uvarint()
		if d.err != nil {
			return nil, d.err
		}
		if sz > math.MaxInt32 || uint64(len(d.buf)) < sz {
			return nil, ErrTruncated
		}
		body := d.buf[:sz]
		d.buf = d.buf[sz:]
		if len(body) > 0 && MsgType(body[0]) == TypeCompound {
			return nil, fmt.Errorf("%w: nested compound", ErrUnknownType)
		}
		m, err := unmarshalWith(u, body)
		if err != nil {
			return nil, fmt.Errorf("compound part %d: %w", i, err)
		}
		msgs = append(msgs, m)
	}
	return msgs, nil
}

// CompoundOverhead returns the framing bytes added per message when it is
// packed into a compound packet (the uvarint length prefix; 2 bytes covers
// every message under MTU plus slack for the count).
const CompoundOverhead = 2

// PacketLen returns the encoded size of a packet holding the given
// message sizes: used by piggyback packing to stay under MTU without
// encoding twice.
func PacketLen(sizes []int) int {
	if len(sizes) == 0 {
		return 0
	}
	if len(sizes) == 1 {
		return sizes[0]
	}
	total := 1 + uvarintLen(uint64(len(sizes)))
	for _, s := range sizes {
		total += uvarintLen(uint64(s)) + s
	}
	return total
}

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}
