package broadcast

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func fixedNodes(n int) func() int { return func() int { return n } }

func TestRetransmitLimit(t *testing.T) {
	cases := []struct {
		mult, n, want int
	}{
		{4, 0, 1},    // log10(1) = 0 → floor 1
		{4, 1, 4},    // ceil(log10(2)) = 1
		{4, 9, 4},    // ceil(log10(10)) = 1
		{4, 10, 8},   // ceil(log10(11)) = 2
		{4, 99, 8},   // ceil(log10(100)) = 2
		{4, 100, 12}, // ceil(log10(101)) = 3
		{4, 128, 12}, // the paper's cluster size
		{1, 128, 3},  //
		{4, -5, 1},   // negative clamps
		{0, 128, 1},  // degenerate multiplier floors at 1
	}
	for _, c := range cases {
		if got := RetransmitLimit(c.mult, c.n); got != c.want {
			t.Errorf("RetransmitLimit(%d, %d) = %d, want %d", c.mult, c.n, got, c.want)
		}
	}
}

func TestQueueFIFOAmongEqualTransmits(t *testing.T) {
	q := NewQueue(fixedNodes(128), 4)
	q.Queue("a", []byte("aa"))
	q.Queue("b", []byte("bb"))
	q.Queue("c", []byte("cc"))

	got := q.GetBroadcasts(0, 1000)
	if len(got) != 3 {
		t.Fatalf("got %d payloads, want 3", len(got))
	}
	for i, want := range []string{"aa", "bb", "cc"} {
		if string(got[i]) != want {
			t.Errorf("payload %d = %q, want %q", i, got[i], want)
		}
	}
}

func TestQueuePrefersFewerTransmits(t *testing.T) {
	q := NewQueue(fixedNodes(128), 4)
	q.Queue("old", []byte("old"))
	// Transmit "old" once.
	if got := q.GetBroadcasts(0, 1000); len(got) != 1 {
		t.Fatalf("first draw: %d payloads", len(got))
	}
	q.Queue("new", []byte("new"))

	// With budget for one payload, the fresh update must win.
	got := q.GetBroadcasts(0, 3)
	if len(got) != 1 || string(got[0]) != "new" {
		t.Fatalf("got %q, want [new]", got)
	}
}

func TestQueueInvalidationReplacesSameMember(t *testing.T) {
	q := NewQueue(fixedNodes(128), 4)
	q.Queue("m", []byte("suspect"))
	q.Queue("m", []byte("alive"))
	if q.Len() != 1 {
		t.Fatalf("queue len %d, want 1 after replacement", q.Len())
	}
	got := q.GetBroadcasts(0, 1000)
	if len(got) != 1 || string(got[0]) != "alive" {
		t.Fatalf("got %q, want [alive]", got)
	}
}

func TestQueueReplacementResetsTransmitBudget(t *testing.T) {
	// Re-queueing (as LHA-Suspicion's re-gossip does) must restore a
	// fresh transmit budget.
	q := NewQueue(fixedNodes(1), 1) // limit = 1 transmit
	q.Queue("m", []byte("one"))
	if got := q.GetBroadcasts(0, 1000); len(got) != 1 {
		t.Fatal("first transmit missing")
	}
	if q.Len() != 0 {
		t.Fatal("broadcast should be spent after hitting the limit")
	}
	q.Queue("m", []byte("two"))
	if got := q.GetBroadcasts(0, 1000); len(got) != 1 || string(got[0]) != "two" {
		t.Fatalf("re-queued broadcast not transmitted: %q", got)
	}
}

func TestQueueDropsAtRetransmitLimit(t *testing.T) {
	q := NewQueue(fixedNodes(9), 4) // limit = 4·ceil(log10(10)) = 4
	q.Queue("m", []byte("mm"))
	for i := 0; i < 4; i++ {
		if got := q.GetBroadcasts(0, 1000); len(got) != 1 {
			t.Fatalf("draw %d: %d payloads", i, len(got))
		}
	}
	if got := q.GetBroadcasts(0, 1000); len(got) != 0 {
		t.Fatalf("payload served beyond retransmit limit: %q", got)
	}
	if q.Len() != 0 {
		t.Errorf("queue len %d after exhaustion", q.Len())
	}
}

func TestQueueByteBudget(t *testing.T) {
	q := NewQueue(fixedNodes(128), 4)
	q.Queue("a", make([]byte, 100))
	q.Queue("b", make([]byte, 100))
	q.Queue("c", make([]byte, 100))

	// Budget for exactly two payloads with 2 bytes overhead each.
	got := q.GetBroadcasts(2, 204)
	if len(got) != 2 {
		t.Fatalf("got %d payloads, want 2", len(got))
	}
	// The third stays queued.
	if q.Len() != 3 { // a and b transmitted once (limit 12), still queued
		t.Errorf("queue len %d, want 3", q.Len())
	}
}

func TestQueueSkipsOversizedButPacksSmaller(t *testing.T) {
	q := NewQueue(fixedNodes(128), 4)
	q.Queue("big", make([]byte, 500))
	q.Queue("small", make([]byte, 10))
	got := q.GetBroadcasts(0, 100)
	if len(got) != 1 || len(got[0]) != 10 {
		t.Fatalf("expected only the small payload, got %d payloads", len(got))
	}
}

func TestInvalidate(t *testing.T) {
	q := NewQueue(fixedNodes(128), 4)
	q.Queue("a", []byte("aa"))
	q.Queue("b", []byte("bb"))
	q.Invalidate("a")
	got := q.GetBroadcasts(0, 1000)
	if len(got) != 1 || string(got[0]) != "bb" {
		t.Fatalf("got %q, want [bb]", got)
	}
}

func TestPeekDoesNotSpendBudget(t *testing.T) {
	q := NewQueue(fixedNodes(1), 1) // limit 1
	q.Queue("m", []byte("mm"))
	for i := 0; i < 5; i++ {
		if got := q.Peek("m"); string(got) != "mm" {
			t.Fatalf("peek %d: %q", i, got)
		}
	}
	if got := q.GetBroadcasts(0, 1000); len(got) != 1 {
		t.Fatal("peeking consumed the transmit budget")
	}
	if q.Peek("absent") != nil {
		t.Error("peek of absent member returned payload")
	}
}

func TestReset(t *testing.T) {
	q := NewQueue(fixedNodes(128), 4)
	q.Queue("a", []byte("aa"))
	q.Reset()
	if q.Len() != 0 || len(q.GetBroadcasts(0, 1000)) != 0 {
		t.Error("reset did not clear the queue")
	}
}

func TestQuickTransmitCountNeverExceedsLimit(t *testing.T) {
	// Property: however GetBroadcasts is called, no payload is handed
	// out more than RetransmitLimit times.
	f := func(seed int64, nNodes uint8, draws uint8) bool {
		n := int(nNodes%64) + 1
		limit := RetransmitLimit(4, n)
		q := NewQueue(fixedNodes(n), 4)
		rng := rand.New(rand.NewSource(seed))
		counts := map[string]int{}
		for i := 0; i < 5; i++ {
			q.Queue(fmt.Sprintf("m%d", i), []byte(fmt.Sprintf("payload-%d", i)))
		}
		for i := 0; i < int(draws); i++ {
			for _, p := range q.GetBroadcasts(2, 1+rng.Intn(64)) {
				counts[string(p)]++
			}
		}
		for _, c := range counts {
			if c > limit {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickInvalidationKeepsOnePerMember(t *testing.T) {
	// Property: after any sequence of Queue calls, at most one broadcast
	// per member name is queued.
	f := func(names []uint8) bool {
		q := NewQueue(fixedNodes(128), 4)
		seen := map[string]bool{}
		for i, n := range names {
			name := fmt.Sprintf("m%d", n%10)
			q.Queue(name, []byte{byte(i)})
			seen[name] = true
		}
		return q.Len() == len(seen)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkQueueAndDrain(b *testing.B) {
	q := NewQueue(fixedNodes(128), 4)
	payload := make([]byte, 40)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q.Queue(fmt.Sprintf("m%d", i%32), payload)
		if i%8 == 0 {
			q.GetBroadcasts(2, 1400)
		}
	}
}
