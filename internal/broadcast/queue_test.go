package broadcast

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func fixedNodes(n int) func() int { return func() int { return n } }

func TestRetransmitLimit(t *testing.T) {
	cases := []struct {
		mult, n, want int
	}{
		{4, 0, 1},    // log10(1) = 0 → floor 1
		{4, 1, 4},    // ceil(log10(2)) = 1
		{4, 9, 4},    // ceil(log10(10)) = 1
		{4, 10, 8},   // ceil(log10(11)) = 2
		{4, 99, 8},   // ceil(log10(100)) = 2
		{4, 100, 12}, // ceil(log10(101)) = 3
		{4, 128, 12}, // the paper's cluster size
		{1, 128, 3},  //
		{4, -5, 1},   // negative clamps
		{0, 128, 1},  // degenerate multiplier floors at 1

		// Exact powers of ten are where a float
		// ceil(log10(n+1)) can mis-round (2.999…→3 vs 4
		// depending on libm); pin both sides of each boundary.
		{1, 999, 3},        // n+1 = 1000 exactly
		{1, 1000, 4},       // n+1 = 1001
		{1, 9999, 4},       // n+1 = 10000 exactly
		{1, 10000, 5},      // n+1 = 10001
		{1, 99999, 5},      // n+1 = 1e5 exactly
		{1, 100000, 6},     // n+1 = 1e5 + 1
		{1, 999999, 6},     // n+1 = 1e6 exactly
		{1, 1000000, 7},    // n+1 = 1e6 + 1
		{3, 999999999, 27}, // n+1 = 1e9 exactly
		{3, 1000000000, 30},
	}
	for _, c := range cases {
		if got := RetransmitLimit(c.mult, c.n); got != c.want {
			t.Errorf("RetransmitLimit(%d, %d) = %d, want %d", c.mult, c.n, got, c.want)
		}
	}
}

func TestQueueFIFOAmongEqualTransmits(t *testing.T) {
	q := NewQueue(fixedNodes(128), 4)
	q.Queue("a", []byte("aa"))
	q.Queue("b", []byte("bb"))
	q.Queue("c", []byte("cc"))

	got := q.GetBroadcasts(0, 1000)
	if len(got) != 3 {
		t.Fatalf("got %d payloads, want 3", len(got))
	}
	for i, want := range []string{"aa", "bb", "cc"} {
		if string(got[i]) != want {
			t.Errorf("payload %d = %q, want %q", i, got[i], want)
		}
	}
}

func TestQueuePrefersFewerTransmits(t *testing.T) {
	q := NewQueue(fixedNodes(128), 4)
	q.Queue("old", []byte("old"))
	// Transmit "old" once.
	if got := q.GetBroadcasts(0, 1000); len(got) != 1 {
		t.Fatalf("first draw: %d payloads", len(got))
	}
	q.Queue("new", []byte("new"))

	// With budget for one payload, the fresh update must win.
	got := q.GetBroadcasts(0, 3)
	if len(got) != 1 || string(got[0]) != "new" {
		t.Fatalf("got %q, want [new]", got)
	}
}

func TestQueueInvalidationReplacesSameMember(t *testing.T) {
	q := NewQueue(fixedNodes(128), 4)
	q.Queue("m", []byte("suspect"))
	q.Queue("m", []byte("alive"))
	if q.Len() != 1 {
		t.Fatalf("queue len %d, want 1 after replacement", q.Len())
	}
	got := q.GetBroadcasts(0, 1000)
	if len(got) != 1 || string(got[0]) != "alive" {
		t.Fatalf("got %q, want [alive]", got)
	}
}

func TestQueueReplacementResetsTransmitBudget(t *testing.T) {
	// Re-queueing (as LHA-Suspicion's re-gossip does) must restore a
	// fresh transmit budget.
	q := NewQueue(fixedNodes(1), 1) // limit = 1 transmit
	q.Queue("m", []byte("one"))
	if got := q.GetBroadcasts(0, 1000); len(got) != 1 {
		t.Fatal("first transmit missing")
	}
	if q.Len() != 0 {
		t.Fatal("broadcast should be spent after hitting the limit")
	}
	q.Queue("m", []byte("two"))
	if got := q.GetBroadcasts(0, 1000); len(got) != 1 || string(got[0]) != "two" {
		t.Fatalf("re-queued broadcast not transmitted: %q", got)
	}
}

func TestQueueDropsAtRetransmitLimit(t *testing.T) {
	q := NewQueue(fixedNodes(9), 4) // limit = 4·ceil(log10(10)) = 4
	q.Queue("m", []byte("mm"))
	for i := 0; i < 4; i++ {
		if got := q.GetBroadcasts(0, 1000); len(got) != 1 {
			t.Fatalf("draw %d: %d payloads", i, len(got))
		}
	}
	if got := q.GetBroadcasts(0, 1000); len(got) != 0 {
		t.Fatalf("payload served beyond retransmit limit: %q", got)
	}
	if q.Len() != 0 {
		t.Errorf("queue len %d after exhaustion", q.Len())
	}
}

func TestQueueByteBudget(t *testing.T) {
	q := NewQueue(fixedNodes(128), 4)
	q.Queue("a", make([]byte, 100))
	q.Queue("b", make([]byte, 100))
	q.Queue("c", make([]byte, 100))

	// Budget for exactly two payloads with 2 bytes overhead each.
	got := q.GetBroadcasts(2, 204)
	if len(got) != 2 {
		t.Fatalf("got %d payloads, want 2", len(got))
	}
	// The third stays queued.
	if q.Len() != 3 { // a and b transmitted once (limit 12), still queued
		t.Errorf("queue len %d, want 3", q.Len())
	}
}

func TestQueueSkipsOversizedButPacksSmaller(t *testing.T) {
	q := NewQueue(fixedNodes(128), 4)
	q.Queue("big", make([]byte, 500))
	q.Queue("small", make([]byte, 10))
	got := q.GetBroadcasts(0, 100)
	if len(got) != 1 || len(got[0]) != 10 {
		t.Fatalf("expected only the small payload, got %d payloads", len(got))
	}
}

func TestInvalidate(t *testing.T) {
	q := NewQueue(fixedNodes(128), 4)
	q.Queue("a", []byte("aa"))
	q.Queue("b", []byte("bb"))
	q.Invalidate("a")
	got := q.GetBroadcasts(0, 1000)
	if len(got) != 1 || string(got[0]) != "bb" {
		t.Fatalf("got %q, want [bb]", got)
	}
}

func TestPeekDoesNotSpendBudget(t *testing.T) {
	q := NewQueue(fixedNodes(1), 1) // limit 1
	q.Queue("m", []byte("mm"))
	for i := 0; i < 5; i++ {
		if got := q.Peek("m"); string(got) != "mm" {
			t.Fatalf("peek %d: %q", i, got)
		}
	}
	if got := q.GetBroadcasts(0, 1000); len(got) != 1 {
		t.Fatal("peeking consumed the transmit budget")
	}
	if q.Peek("absent") != nil {
		t.Error("peek of absent member returned payload")
	}
}

func TestReset(t *testing.T) {
	q := NewQueue(fixedNodes(128), 4)
	q.Queue("a", []byte("aa"))
	q.Reset()
	if q.Len() != 0 || len(q.GetBroadcasts(0, 1000)) != 0 {
		t.Error("reset did not clear the queue")
	}
}

func TestQuickTransmitCountNeverExceedsLimit(t *testing.T) {
	// Property: however GetBroadcasts is called, no payload is handed
	// out more than RetransmitLimit times.
	f := func(seed int64, nNodes uint8, draws uint8) bool {
		n := int(nNodes%64) + 1
		limit := RetransmitLimit(4, n)
		q := NewQueue(fixedNodes(n), 4)
		rng := rand.New(rand.NewSource(seed))
		counts := map[string]int{}
		for i := 0; i < 5; i++ {
			q.Queue(fmt.Sprintf("m%d", i), []byte(fmt.Sprintf("payload-%d", i)))
		}
		for i := 0; i < int(draws); i++ {
			for _, p := range q.GetBroadcasts(2, 1+rng.Intn(64)) {
				counts[string(p)]++
			}
		}
		for _, c := range counts {
			if c > limit {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickInvalidationKeepsOnePerMember(t *testing.T) {
	// Property: after any sequence of Queue calls, at most one broadcast
	// per member name is queued.
	f := func(names []uint8) bool {
		q := NewQueue(fixedNodes(128), 4)
		seen := map[string]bool{}
		for i, n := range names {
			name := fmt.Sprintf("m%d", n%10)
			q.Queue(name, []byte{byte(i)})
			seen[name] = true
		}
		return q.Len() == len(seen)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQueueCopiesCallerPayload(t *testing.T) {
	// Queue must not alias the caller's buffer: the packet path marshals
	// into pooled scratch that is overwritten right after queueing.
	q := NewQueue(fixedNodes(128), 4)
	src := []byte("pristine")
	q.Queue("m", src)
	for i := range src {
		src[i] = 'X'
	}
	if got := q.Peek("m"); string(got) != "pristine" {
		t.Fatalf("Peek = %q after mutating source, want %q", got, "pristine")
	}
	var emitted []string
	q.GetBroadcastsInto(0, 1000, func(p []byte) { emitted = append(emitted, string(p)) })
	if len(emitted) != 1 || emitted[0] != "pristine" {
		t.Fatalf("emitted %q after mutating source, want [pristine]", emitted)
	}
}

func TestEmitScanSkipsRetightenedBucket(t *testing.T) {
	// Regression: minLen used to stay stale-small forever once the one
	// short payload left a bucket, so a byte-limited call walked every
	// long item futilely. With exact bounds the bucket is skipped in
	// O(1) and the futile-walk counter stays flat.
	q := NewQueue(fixedNodes(1), 1) // limit 1: items are spent on first transmit
	q.Queue("short", make([]byte, 2))
	for i := 0; i < 10; i++ {
		q.Queue(fmt.Sprintf("long%d", i), make([]byte, 100))
	}
	// Budget fits only the short payload; it gets selected and dropped
	// (retransmit limit 1), leaving ten 100-byte items behind.
	if got := q.GetBroadcasts(0, 50); len(got) != 1 || len(got[0]) != 2 {
		t.Fatalf("first draw: got %d payloads, want just the short one", len(got))
	}
	base := q.FutileWalks()
	// A budget below 100 must now skip bucket 0 without touching its
	// items: no walked-but-unselected work.
	if got := q.GetBroadcasts(0, 50); len(got) != 0 {
		t.Fatalf("second draw selected %d payloads, want 0", len(got))
	}
	if walked := q.FutileWalks() - base; walked != 0 {
		t.Errorf("skip index walked %d items futilely, want 0", walked)
	}
}

func TestFutileWalkCounterCountsUnselected(t *testing.T) {
	// Items are walked in id order, not size order, so a big item ahead
	// of a small one is visited-but-unselected under a tight budget.
	// This pins that the counter actually counts.
	q := NewQueue(fixedNodes(128), 4)
	q.Queue("big", make([]byte, 100))
	q.Queue("small", make([]byte, 2))
	got := q.GetBroadcasts(0, 50)
	if len(got) != 1 || len(got[0]) != 2 {
		t.Fatalf("got %d payloads, want just the small one", len(got))
	}
	if q.FutileWalks() != 1 {
		t.Errorf("futile walks = %d, want 1 (the big item)", q.FutileWalks())
	}
}

func TestQueueSteadyStateAllocationFree(t *testing.T) {
	// Once the freelist is warm, Queue + GetBroadcastsInto must not
	// allocate: Broadcast structs and payload buffers are recycled.
	q := NewQueue(fixedNodes(16), 1)
	payload := make([]byte, 40)
	names := make([]string, 8)
	for i := range names {
		names[i] = fmt.Sprintf("m%d", i)
	}
	work := func() {
		for _, name := range names {
			q.Queue(name, payload)
		}
		for q.Len() > 0 {
			q.GetBroadcastsInto(2, 1400, func([]byte) {})
		}
	}
	work() // warm the freelist and bucket/bitmap storage
	if allocs := testing.AllocsPerRun(100, work); allocs > 0 {
		t.Errorf("steady-state queue cycle allocates %.1f times, want 0", allocs)
	}
}

func BenchmarkQueueAndDrain(b *testing.B) {
	q := NewQueue(fixedNodes(128), 4)
	payload := make([]byte, 40)
	names := make([]string, 32)
	for i := range names {
		names[i] = fmt.Sprintf("m%d", i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Queue(names[i%32], payload)
		if i%8 == 0 {
			q.GetBroadcastsInto(2, 1400, func([]byte) {})
		}
	}
}
