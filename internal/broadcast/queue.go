// Package broadcast implements SWIM's transmit-limited gossip queue.
//
// Updates about members (suspect, alive, dead) are queued here and
// piggybacked onto failure-detector messages, or flushed by the dedicated
// gossip tick. Each update is retransmitted a bounded number of times —
// λ·⌈log10(n+1)⌉, the classic epidemic dissemination budget — and updates
// that have been sent fewer times are preferred, so fresh information
// spreads even under high update load (SWIM §3.2, Lifeguard §III-A).
//
// The queue is indexed for large clusters: a per-name map gives O(1)
// Queue/Invalidate/Peek, and items are kept in per-transmit-count buckets
// of id-ordered intrusive lists. A populated-bucket bitmap plus an exact
// per-bucket minimum payload length let GetBroadcasts skip empty and
// oversized buckets in O(1), so it walks only the items it selects.
//
// The queue owns every byte it hands out: Queue copies the caller's
// payload into an internal buffer, and spent Broadcast structs (and their
// payload buffers) are recycled through a freelist, so steady-state
// Queue/GetBroadcasts traffic is allocation-free.
package broadcast

import (
	"math/bits"
	"sync"
)

// Broadcast is one queued update.
type Broadcast struct {
	// Name is the member the update is about. A newer update about the
	// same member invalidates an older queued one.
	Name string

	// Payload is the queue's own copy of the encoded message.
	Payload []byte

	// transmits counts how many times the payload has been handed out.
	// It doubles as the index of the bucket holding the item.
	transmits int

	// id breaks ties so ordering is stable and FIFO among equals.
	id uint64

	// prev/next link the item into its bucket's id-ordered list.
	prev, next *Broadcast
}

// bucket holds the queued items at one transmit count, in ascending id
// order (FIFO among equals).
type bucket struct {
	head, tail *Broadcast
	count      int

	// minLen is a lower bound on the payload lengths in the bucket,
	// exact whenever minStale is false. Removing a minimum-length item
	// only marks the bound stale; retighten restores exactness on
	// demand, so the byte-budget skip check never degrades into futile
	// full walks (a stale-small bound can cause a futile walk, never a
	// wrongly skipped item — selection is unaffected either way).
	minLen   int
	minStale bool
}

// insert places b into the bucket in id order. Items arrive with the
// largest id so far in the common cases (fresh updates, and selections
// promoted from the previous bucket), so the walk starts from the tail.
func (k *bucket) insert(b *Broadcast) {
	if k.count == 0 {
		k.minLen, k.minStale = len(b.Payload), false
	} else if len(b.Payload) < k.minLen {
		// The new item undercuts the (lower-bound) minimum, so it is
		// the exact minimum now.
		k.minLen, k.minStale = len(b.Payload), false
	}
	k.count++
	at := k.tail
	for at != nil && at.id > b.id {
		at = at.prev
	}
	if at == nil {
		// New head.
		b.prev, b.next = nil, k.head
		if k.head != nil {
			k.head.prev = b
		} else {
			k.tail = b
		}
		k.head = b
		return
	}
	b.prev, b.next = at, at.next
	if at.next != nil {
		at.next.prev = b
	} else {
		k.tail = b
	}
	at.next = b
}

// remove unlinks b from the bucket. Removing the (possibly unique)
// minimum-length item marks minLen stale; an emptied bucket resets it.
func (k *bucket) remove(b *Broadcast) {
	if b.prev != nil {
		b.prev.next = b.next
	} else {
		k.head = b.next
	}
	if b.next != nil {
		b.next.prev = b.prev
	} else {
		k.tail = b.prev
	}
	b.prev, b.next = nil, nil
	k.count--
	if k.count == 0 {
		k.minLen, k.minStale = 0, false
	} else if len(b.Payload) == k.minLen {
		k.minStale = true
	}
}

// retighten rescans the bucket and restores an exact minLen. The stored
// value is a lower bound on the true minimum, so the scan can stop early
// the moment it finds a payload matching it (the common case when several
// same-sized updates share a bucket).
func (k *bucket) retighten() {
	k.minStale = false
	if k.count == 0 {
		k.minLen = 0
		return
	}
	floor := k.minLen
	min := -1
	for b := k.head; b != nil; b = b.next {
		if n := len(b.Payload); min < 0 || n < min {
			min = n
			if min == floor {
				break
			}
		}
	}
	k.minLen = min
}

// Queue is a transmit-limited broadcast queue. The zero value is not
// usable; use NewQueue.
//
// Queue is safe for concurrent use.
type Queue struct {
	// NumNodes reports the current cluster size, which sets the
	// retransmit budget. It must be non-nil.
	NumNodes func() int

	// RetransmitMult is λ in the λ·log(n) retransmit budget.
	RetransmitMult int

	mu      sync.Mutex
	byName  map[string]*Broadcast
	buckets []bucket
	size    int
	nextID  uint64

	// occupied is a bitmap over buckets: bit t is set iff buckets[t]
	// holds at least one item, so the emit scan finds populated buckets
	// with TrailingZeros instead of probing empty ones.
	occupied []uint64

	// moved is per-call scratch for selected items awaiting promotion to
	// their next bucket (reused to keep GetBroadcasts allocation-free).
	moved []*Broadcast

	// free recycles spent Broadcast structs and their payload buffers.
	free []*Broadcast

	// futile counts items that were walked by GetBroadcastsInto but not
	// selected (payload would not fit). With exact minLen bounds this
	// stays near zero; tests pin it to catch skip-index regressions.
	futile uint64

	// repeatable records whether the most recent GetBroadcastsInto call
	// is provably repeatable: it selected every queued item (nothing was
	// skipped for budget) and dropped none at the transmit limit. Under
	// those conditions every item was promoted by exactly one transmit,
	// which preserves bucket order and within-bucket id order, so an
	// immediately following call with the same overhead and limit would
	// emit the identical payload sequence — RepeatBroadcastsInto applies
	// that call's state transition without re-emitting. Any queue
	// mutation (Queue, Invalidate, Reset) clears the flag.
	repeatable   bool
	lastOverhead int
	lastLimit    int
}

// maxFree bounds the freelist so a burst of updates cannot pin an
// unbounded number of payload buffers.
const maxFree = 1024

// NewQueue returns a queue with the given cluster-size callback and
// retransmit multiplier.
func NewQueue(numNodes func() int, retransmitMult int) *Queue {
	return &Queue{
		NumNodes:       numNodes,
		RetransmitMult: retransmitMult,
		byName:         make(map[string]*Broadcast),
	}
}

// pow10 holds the int64-representable powers of ten; the index of the
// first entry ≥ x is ⌈log10(x)⌉ for x ≥ 1.
var pow10 = [...]int64{1, 1e1, 1e2, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9,
	1e10, 1e11, 1e12, 1e13, 1e14, 1e15, 1e16, 1e17, 1e18}

// RetransmitLimit returns the per-broadcast transmission budget for a
// cluster of n members: mult·⌈log10(n+1)⌉, at least 1. The ceil-log10 is
// computed over an integer power-of-ten table: the float path
// (math.Ceil(math.Log10(n+1))) can land on 2.999…→3-vs-4 style
// mis-roundings at exact powers of ten depending on the platform's libm.
func RetransmitLimit(mult, n int) int {
	if n < 0 {
		n = 0
	}
	x := int64(n) + 1
	d := 0
	for d < len(pow10) && pow10[d] < x {
		d++
	}
	limit := mult * d
	if limit < 1 {
		limit = 1
	}
	return limit
}

// setOccupied marks bucket t as populated, growing the bitmap as needed.
func (q *Queue) setOccupied(t int) {
	w := t >> 6
	for len(q.occupied) <= w {
		q.occupied = append(q.occupied, 0)
	}
	q.occupied[w] |= 1 << (uint(t) & 63)
}

// clearOccupied marks bucket t as empty.
func (q *Queue) clearOccupied(t int) {
	q.occupied[t>>6] &^= 1 << (uint(t) & 63)
}

// insertLocked files b under its transmit count, growing the bucket
// slice as needed.
func (q *Queue) insertLocked(b *Broadcast) {
	for len(q.buckets) <= b.transmits {
		q.buckets = append(q.buckets, bucket{})
	}
	q.buckets[b.transmits].insert(b)
	q.setOccupied(b.transmits)
	q.size++
}

// removeLocked unlinks b from its bucket and the name index.
func (q *Queue) removeLocked(b *Broadcast) {
	k := &q.buckets[b.transmits]
	k.remove(b)
	if k.count == 0 {
		q.clearOccupied(b.transmits)
	}
	delete(q.byName, b.Name)
	q.size--
}

// newBroadcastLocked returns a zeroed Broadcast, recycled if possible.
func (q *Queue) newBroadcastLocked() *Broadcast {
	if n := len(q.free); n > 0 {
		b := q.free[n-1]
		q.free[n-1] = nil
		q.free = q.free[:n-1]
		return b
	}
	return &Broadcast{}
}

// recycleLocked returns a spent, already-unlinked Broadcast to the
// freelist, retaining its payload buffer for reuse.
func (q *Queue) recycleLocked(b *Broadcast) {
	if len(q.free) >= maxFree {
		return
	}
	b.Name = ""
	b.Payload = b.Payload[:0]
	b.transmits = 0
	b.id = 0
	b.prev, b.next = nil, nil
	q.free = append(q.free, b)
}

// Queue adds an update about the named member, invalidating any older
// queued update about the same member. The replacement also resets the
// transmit counter, which is how Lifeguard's re-gossip of independent
// suspicions extends a suspicion's dissemination budget (§IV-B).
//
// The payload is copied: the queue never aliases caller memory, so
// callers may reuse or mutate their buffer immediately (the packet path
// marshals into pooled scratch and relies on this).
func (q *Queue) Queue(name string, payload []byte) {
	q.mu.Lock()
	defer q.mu.Unlock()

	q.repeatable = false
	if old, ok := q.byName[name]; ok {
		q.removeLocked(old)
		q.recycleLocked(old)
	}

	q.nextID++
	b := q.newBroadcastLocked()
	b.Name = name
	b.Payload = append(b.Payload[:0], payload...)
	b.id = q.nextID
	b.transmits = 0
	q.byName[name] = b
	q.insertLocked(b)
}

// Invalidate drops any queued update about the named member without
// queueing a replacement.
func (q *Queue) Invalidate(name string) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.repeatable = false
	if b, ok := q.byName[name]; ok {
		q.removeLocked(b)
		q.recycleLocked(b)
	}
}

// Len returns the number of queued updates.
func (q *Queue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.size
}

// Reset drops all queued updates.
func (q *Queue) Reset() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.repeatable = false
	q.byName = make(map[string]*Broadcast)
	q.buckets = nil
	q.occupied = nil
	q.size = 0
}

// FutileWalks reports how many items GetBroadcasts has walked without
// selecting over the queue's lifetime. It exists for tests and
// diagnostics: a growing count means the skip index has gone slack.
func (q *Queue) FutileWalks() uint64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.futile
}

// GetBroadcasts selects queued payloads to piggyback on an outgoing
// packet. overhead is the per-payload framing cost and limit the total
// byte budget. Payloads with fewer past transmissions are preferred;
// each selected payload's transmit counter is incremented, and payloads
// that reach the retransmit limit are dropped from the queue.
func (q *Queue) GetBroadcasts(overhead, limit int) [][]byte {
	var picked [][]byte
	q.GetBroadcastsInto(overhead, limit, func(payload []byte) {
		picked = append(picked, append([]byte(nil), payload...))
	})
	return picked
}

// GetBroadcastsInto is GetBroadcasts without the intermediate [][]byte:
// each selected payload is handed to emit in selection order (fewest
// transmits first, FIFO among equals), letting callers pack payloads
// directly into an outgoing packet buffer. The payload slice passed to
// emit is owned by the queue — its buffer is recycled for later updates —
// and must not be retained past the call.
func (q *Queue) GetBroadcastsInto(overhead, limit int, emit func(payload []byte)) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.size == 0 {
		return
	}

	transmitLimit := RetransmitLimit(q.RetransmitMult, q.NumNodes())

	used := 0
	startSize, selected, dropped := q.size, 0, 0
	moved := q.moved[:0]
	for w := 0; w < len(q.occupied); w++ {
		word := q.occupied[w]
		for word != 0 {
			bit := bits.TrailingZeros64(word)
			word &^= 1 << uint(bit)
			t := w<<6 | bit
			k := &q.buckets[t]
			// A stale bound can only be too small: if it would fail the
			// budget check the true minimum fails too, but if it would
			// pass it must be verified first or the walk may be futile.
			if k.minStale && limit-used >= overhead+k.minLen {
				k.retighten()
			}
			if limit-used < overhead+k.minLen {
				continue
			}
			for b := k.head; b != nil; {
				next := b.next
				cost := overhead + len(b.Payload)
				if used+cost <= limit {
					used += cost
					selected++
					emit(b.Payload)
					k.remove(b)
					if k.count == 0 {
						q.clearOccupied(t)
					}
					b.transmits++
					if b.transmits < transmitLimit {
						// Re-filed after the walk so an item is handed out
						// at most once per call.
						moved = append(moved, b)
					} else {
						delete(q.byName, b.Name)
						q.recycleLocked(b)
						dropped++
					}
					q.size--
					if k.minStale && limit-used >= overhead+k.minLen {
						k.retighten()
					}
					if limit-used < overhead+k.minLen {
						break // nothing else in this bucket can fit
					}
				} else {
					q.futile++
				}
				b = next
			}
		}
	}
	for _, b := range moved {
		q.insertLocked(b)
	}
	q.moved = moved[:0]
	q.repeatable = selected > 0 && selected == startSize && dropped == 0
	q.lastOverhead, q.lastLimit = overhead, limit
}

// RepeatBroadcastsInto reports whether a GetBroadcastsInto call with
// the given overhead and limit, made now, would emit exactly the
// payload sequence the previous call emitted — and, when it would,
// applies that call's state transition (every item promoted one
// transmit, items reaching the retransmit limit dropped) without
// re-emitting anything. Callers use it to reuse an already-encoded
// packet across gossip fan-out targets: on true, resend the previous
// bytes; on false, re-select and re-encode.
//
// The previous selection is repeatable only when it selected the whole
// queue with no transmit-limit drops (see the repeatable field); a
// budget-skipped or dropped item, a different overhead or limit, or any
// intervening queue mutation makes the repeat diverge, and the call
// returns false having changed nothing.
func (q *Queue) RepeatBroadcastsInto(overhead, limit int) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if !q.repeatable || overhead != q.lastOverhead || limit != q.lastLimit || q.size == 0 {
		return false
	}

	// The drop threshold is recomputed exactly as the repeated call
	// would compute it; a cluster-size change between calls shifts the
	// threshold for both paths identically.
	transmitLimit := RetransmitLimit(q.RetransmitMult, q.NumNodes())
	dropped := 0
	moved := q.moved[:0]
	for w := 0; w < len(q.occupied); w++ {
		word := q.occupied[w]
		for word != 0 {
			bit := bits.TrailingZeros64(word)
			word &^= 1 << uint(bit)
			t := w<<6 | bit
			k := &q.buckets[t]
			for b := k.head; b != nil; {
				next := b.next
				k.remove(b)
				b.transmits++
				if b.transmits < transmitLimit {
					// Re-filed after the walk, like GetBroadcastsInto.
					moved = append(moved, b)
				} else {
					delete(q.byName, b.Name)
					q.recycleLocked(b)
					dropped++
				}
				q.size--
				b = next
			}
			q.clearOccupied(t)
		}
	}
	for _, b := range moved {
		q.insertLocked(b)
	}
	q.moved = moved[:0]
	// The repeat selected the whole queue by construction; it stays
	// repeatable unless this promotion dropped items (the next real call
	// would then select a smaller set) or emptied the queue.
	q.repeatable = dropped == 0 && q.size > 0
	return true
}

// Peek returns the payload queued for the named member, or nil. The
// transmit counter is not changed. Used by the Buddy System to
// force-include a suspicion on pings to the suspected member. The
// returned slice is owned by the queue and only valid until the next
// mutating call; callers needing to retain it must copy.
func (q *Queue) Peek(name string) []byte {
	q.mu.Lock()
	defer q.mu.Unlock()
	if b, ok := q.byName[name]; ok {
		return b.Payload
	}
	return nil
}
