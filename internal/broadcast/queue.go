// Package broadcast implements SWIM's transmit-limited gossip queue.
//
// Updates about members (suspect, alive, dead) are queued here and
// piggybacked onto failure-detector messages, or flushed by the dedicated
// gossip tick. Each update is retransmitted a bounded number of times —
// λ·⌈log10(n+1)⌉, the classic epidemic dissemination budget — and updates
// that have been sent fewer times are preferred, so fresh information
// spreads even under high update load (SWIM §3.2, Lifeguard §III-A).
//
// The queue is indexed for large clusters: a per-name map gives O(1)
// Queue/Invalidate/Peek, and items are kept in per-transmit-count buckets
// of id-ordered intrusive lists, so GetBroadcasts walks only the items it
// selects (plus skipped buckets) instead of sorting the whole queue per
// outgoing packet.
package broadcast

import (
	"math"
	"sync"
)

// Broadcast is one queued update.
type Broadcast struct {
	// Name is the member the update is about. A newer update about the
	// same member invalidates an older queued one.
	Name string

	// Payload is the encoded message (wire.Marshal output).
	Payload []byte

	// transmits counts how many times the payload has been handed out.
	// It doubles as the index of the bucket holding the item.
	transmits int

	// id breaks ties so ordering is stable and FIFO among equals.
	id uint64

	// prev/next link the item into its bucket's id-ordered list.
	prev, next *Broadcast
}

// bucket holds the queued items at one transmit count, in ascending id
// order (FIFO among equals).
type bucket struct {
	head, tail *Broadcast
	count      int

	// minLen is a conservative lower bound on the payload lengths in the
	// bucket: exact after an insert into an empty bucket, and only ever
	// too small after removals (which is safe — it can cause a futile
	// walk, never a wrongly skipped item). GetBroadcasts uses it to skip
	// whole buckets that cannot fit in the remaining byte budget.
	minLen int
}

// insert places b into the bucket in id order. Items arrive with the
// largest id so far in the common cases (fresh updates, and selections
// promoted from the previous bucket), so the walk starts from the tail.
func (k *bucket) insert(b *Broadcast) {
	if k.count == 0 || len(b.Payload) < k.minLen {
		k.minLen = len(b.Payload)
	}
	k.count++
	at := k.tail
	for at != nil && at.id > b.id {
		at = at.prev
	}
	if at == nil {
		// New head.
		b.prev, b.next = nil, k.head
		if k.head != nil {
			k.head.prev = b
		} else {
			k.tail = b
		}
		k.head = b
		return
	}
	b.prev, b.next = at, at.next
	if at.next != nil {
		at.next.prev = b
	} else {
		k.tail = b
	}
	at.next = b
}

// remove unlinks b from the bucket.
func (k *bucket) remove(b *Broadcast) {
	if b.prev != nil {
		b.prev.next = b.next
	} else {
		k.head = b.next
	}
	if b.next != nil {
		b.next.prev = b.prev
	} else {
		k.tail = b.prev
	}
	b.prev, b.next = nil, nil
	k.count--
}

// Queue is a transmit-limited broadcast queue. The zero value is not
// usable; use NewQueue.
//
// Queue is safe for concurrent use.
type Queue struct {
	// NumNodes reports the current cluster size, which sets the
	// retransmit budget. It must be non-nil.
	NumNodes func() int

	// RetransmitMult is λ in the λ·log(n) retransmit budget.
	RetransmitMult int

	mu      sync.Mutex
	byName  map[string]*Broadcast
	buckets []bucket
	size    int
	nextID  uint64

	// moved is per-call scratch for selected items awaiting promotion to
	// their next bucket (reused to keep GetBroadcasts allocation-free).
	moved []*Broadcast
}

// NewQueue returns a queue with the given cluster-size callback and
// retransmit multiplier.
func NewQueue(numNodes func() int, retransmitMult int) *Queue {
	return &Queue{
		NumNodes:       numNodes,
		RetransmitMult: retransmitMult,
		byName:         make(map[string]*Broadcast),
	}
}

// RetransmitLimit returns the per-broadcast transmission budget for a
// cluster of n members: mult·⌈log10(n+1)⌉, at least 1.
func RetransmitLimit(mult, n int) int {
	if n < 0 {
		n = 0
	}
	limit := mult * int(math.Ceil(math.Log10(float64(n+1))))
	if limit < 1 {
		limit = 1
	}
	return limit
}

// insertLocked files b under its transmit count, growing the bucket
// slice as needed.
func (q *Queue) insertLocked(b *Broadcast) {
	for len(q.buckets) <= b.transmits {
		q.buckets = append(q.buckets, bucket{})
	}
	q.buckets[b.transmits].insert(b)
	q.size++
}

// removeLocked unlinks b from its bucket and the name index.
func (q *Queue) removeLocked(b *Broadcast) {
	q.buckets[b.transmits].remove(b)
	delete(q.byName, b.Name)
	q.size--
}

// Queue adds an update about the named member, invalidating any older
// queued update about the same member. The replacement also resets the
// transmit counter, which is how Lifeguard's re-gossip of independent
// suspicions extends a suspicion's dissemination budget (§IV-B).
func (q *Queue) Queue(name string, payload []byte) {
	q.mu.Lock()
	defer q.mu.Unlock()

	if old, ok := q.byName[name]; ok {
		q.removeLocked(old)
	}

	q.nextID++
	b := &Broadcast{Name: name, Payload: payload, id: q.nextID}
	q.byName[name] = b
	q.insertLocked(b)
}

// Invalidate drops any queued update about the named member without
// queueing a replacement.
func (q *Queue) Invalidate(name string) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if b, ok := q.byName[name]; ok {
		q.removeLocked(b)
	}
}

// Len returns the number of queued updates.
func (q *Queue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.size
}

// Reset drops all queued updates.
func (q *Queue) Reset() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.byName = make(map[string]*Broadcast)
	q.buckets = nil
	q.size = 0
}

// GetBroadcasts selects queued payloads to piggyback on an outgoing
// packet. overhead is the per-payload framing cost and limit the total
// byte budget. Payloads with fewer past transmissions are preferred;
// each selected payload's transmit counter is incremented, and payloads
// that reach the retransmit limit are dropped from the queue.
func (q *Queue) GetBroadcasts(overhead, limit int) [][]byte {
	var picked [][]byte
	q.GetBroadcastsInto(overhead, limit, func(payload []byte) {
		picked = append(picked, payload)
	})
	return picked
}

// GetBroadcastsInto is GetBroadcasts without the intermediate [][]byte:
// each selected payload is handed to emit in selection order (fewest
// transmits first, FIFO among equals), letting callers pack payloads
// directly into an outgoing packet buffer. The payload slice passed to
// emit is owned by the queue's producer and must not be retained past
// the call.
func (q *Queue) GetBroadcastsInto(overhead, limit int, emit func(payload []byte)) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.size == 0 {
		return
	}

	transmitLimit := RetransmitLimit(q.RetransmitMult, q.NumNodes())

	used := 0
	moved := q.moved[:0]
	for t := 0; t < len(q.buckets); t++ {
		k := &q.buckets[t]
		if k.count == 0 || limit-used < overhead+k.minLen {
			continue
		}
		for b := k.head; b != nil; {
			next := b.next
			cost := overhead + len(b.Payload)
			if used+cost <= limit {
				used += cost
				emit(b.Payload)
				k.remove(b)
				b.transmits++
				if b.transmits < transmitLimit {
					// Re-filed after the walk so an item is handed out
					// at most once per call.
					moved = append(moved, b)
				} else {
					delete(q.byName, b.Name)
				}
				q.size--
				if limit-used < overhead+k.minLen {
					break // nothing else in this bucket can fit
				}
			}
			b = next
		}
	}
	for _, b := range moved {
		q.insertLocked(b)
	}
	q.moved = moved[:0]
}

// Peek returns the payload queued for the named member, or nil. The
// transmit counter is not changed. Used by the Buddy System to
// force-include a suspicion on pings to the suspected member.
func (q *Queue) Peek(name string) []byte {
	q.mu.Lock()
	defer q.mu.Unlock()
	if b, ok := q.byName[name]; ok {
		return b.Payload
	}
	return nil
}
