// Package broadcast implements SWIM's transmit-limited gossip queue.
//
// Updates about members (suspect, alive, dead) are queued here and
// piggybacked onto failure-detector messages, or flushed by the dedicated
// gossip tick. Each update is retransmitted a bounded number of times —
// λ·⌈log10(n+1)⌉, the classic epidemic dissemination budget — and updates
// that have been sent fewer times are preferred, so fresh information
// spreads even under high update load (SWIM §3.2, Lifeguard §III-A).
package broadcast

import (
	"math"
	"sort"
	"sync"
)

// Broadcast is one queued update.
type Broadcast struct {
	// Name is the member the update is about. A newer update about the
	// same member invalidates an older queued one.
	Name string

	// Payload is the encoded message (wire.Marshal output).
	Payload []byte

	// transmits counts how many times the payload has been handed out.
	transmits int

	// id breaks ties so ordering is stable and FIFO among equals.
	id uint64
}

// Queue is a transmit-limited broadcast queue. The zero value is not
// usable; use NewQueue.
//
// Queue is safe for concurrent use.
type Queue struct {
	// NumNodes reports the current cluster size, which sets the
	// retransmit budget. It must be non-nil.
	NumNodes func() int

	// RetransmitMult is λ in the λ·log(n) retransmit budget.
	RetransmitMult int

	mu     sync.Mutex
	items  []*Broadcast
	nextID uint64
}

// NewQueue returns a queue with the given cluster-size callback and
// retransmit multiplier.
func NewQueue(numNodes func() int, retransmitMult int) *Queue {
	return &Queue{NumNodes: numNodes, RetransmitMult: retransmitMult}
}

// RetransmitLimit returns the per-broadcast transmission budget for a
// cluster of n members: mult·⌈log10(n+1)⌉, at least 1.
func RetransmitLimit(mult, n int) int {
	if n < 0 {
		n = 0
	}
	limit := mult * int(math.Ceil(math.Log10(float64(n+1))))
	if limit < 1 {
		limit = 1
	}
	return limit
}

// Queue adds an update about the named member, invalidating any older
// queued update about the same member. The replacement also resets the
// transmit counter, which is how Lifeguard's re-gossip of independent
// suspicions extends a suspicion's dissemination budget (§IV-B).
func (q *Queue) Queue(name string, payload []byte) {
	q.mu.Lock()
	defer q.mu.Unlock()

	// Invalidate older updates about the same member.
	kept := q.items[:0]
	for _, b := range q.items {
		if b.Name != name {
			kept = append(kept, b)
		}
	}
	q.items = kept

	q.nextID++
	q.items = append(q.items, &Broadcast{
		Name:    name,
		Payload: payload,
		id:      q.nextID,
	})
}

// Invalidate drops any queued update about the named member without
// queueing a replacement.
func (q *Queue) Invalidate(name string) {
	q.mu.Lock()
	defer q.mu.Unlock()
	kept := q.items[:0]
	for _, b := range q.items {
		if b.Name != name {
			kept = append(kept, b)
		}
	}
	q.items = kept
}

// Len returns the number of queued updates.
func (q *Queue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items)
}

// Reset drops all queued updates.
func (q *Queue) Reset() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.items = nil
}

// GetBroadcasts selects queued payloads to piggyback on an outgoing
// packet. overhead is the per-payload framing cost and limit the total
// byte budget. Payloads with fewer past transmissions are preferred;
// each selected payload's transmit counter is incremented, and payloads
// that reach the retransmit limit are dropped from the queue.
func (q *Queue) GetBroadcasts(overhead, limit int) [][]byte {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.items) == 0 {
		return nil
	}

	// Fewest transmits first; FIFO among equals.
	sort.SliceStable(q.items, func(i, j int) bool {
		if q.items[i].transmits != q.items[j].transmits {
			return q.items[i].transmits < q.items[j].transmits
		}
		return q.items[i].id < q.items[j].id
	})

	transmitLimit := RetransmitLimit(q.RetransmitMult, q.NumNodes())

	var picked [][]byte
	used := 0
	kept := q.items[:0]
	for _, b := range q.items {
		cost := overhead + len(b.Payload)
		if used+cost > limit {
			kept = append(kept, b)
			continue
		}
		used += cost
		picked = append(picked, b.Payload)
		b.transmits++
		if b.transmits < transmitLimit {
			kept = append(kept, b)
		}
	}
	q.items = kept
	return picked
}

// Peek returns the payload queued for the named member, or nil. The
// transmit counter is not changed. Used by the Buddy System to
// force-include a suspicion on pings to the suspected member.
func (q *Queue) Peek(name string) []byte {
	q.mu.Lock()
	defer q.mu.Unlock()
	for _, b := range q.items {
		if b.Name == name {
			return b.Payload
		}
	}
	return nil
}
