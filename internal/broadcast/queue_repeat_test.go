package broadcast

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// drain collects one GetBroadcastsInto selection as strings.
func drain(q *Queue, overhead, limit int) []string {
	var got []string
	q.GetBroadcastsInto(overhead, limit, func(p []byte) {
		got = append(got, string(p))
	})
	return got
}

// TestRepeatMatchesSequentialSelection is the shared-encode equivalence
// pin: when a selection took the whole queue with no drops, a repeat
// must leave the queue in exactly the state a second GetBroadcastsInto
// would — and that second call (run on a twin queue) must emit the
// byte sequence the first call emitted, so reusing the first call's
// encoding is sound.
func TestRepeatMatchesSequentialSelection(t *testing.T) {
	build := func() *Queue {
		q := NewQueue(fixedNodes(128), 4) // limit 12: no drops in a few rounds
		q.Queue("a", []byte("aaaa"))
		q.Queue("b", []byte("bb"))
		q.Queue("c", []byte("cccccc"))
		// Promote "a" and "b" into a higher bucket so the walk spans
		// several transmit counts.
		q.Invalidate("c")
		drain(q, 1, 1024)
		q.Queue("c", []byte("cccccc"))
		return q
	}

	seq := build()    // baseline: three sequential selections
	shared := build() // shared encode: one selection + repeats

	first := drain(seq, 1, 1024)
	second := drain(seq, 1, 1024)
	third := drain(seq, 1, 1024)
	if !reflect.DeepEqual(first, second) || !reflect.DeepEqual(second, third) {
		t.Fatalf("sequential full selections diverged: %v, %v, %v", first, second, third)
	}

	got := drain(shared, 1, 1024)
	if !reflect.DeepEqual(got, first) {
		t.Fatalf("twin queue selected %v, want %v", got, first)
	}
	for i := 0; i < 2; i++ {
		if !shared.RepeatBroadcastsInto(1, 1024) {
			t.Fatalf("repeat %d refused on a fully-selected, drop-free queue", i+1)
		}
	}

	// Both queues must now be in the identical state: the next real
	// selection emits the same sequence on each.
	a, b := drain(seq, 1, 1024), drain(shared, 1, 1024)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("after repeats, selections diverge: sequential %v, shared %v", a, b)
	}
}

// TestRepeatRefusesOnPartialSelection verifies the budget-divergence
// condition: a selection that left items behind (byte budget) is not
// repeatable, because the next call would emit a different set.
func TestRepeatRefusesOnPartialSelection(t *testing.T) {
	q := NewQueue(fixedNodes(128), 4)
	q.Queue("a", []byte("aaaa"))
	q.Queue("b", []byte("bbbbbbbbbb"))
	if got := drain(q, 1, 6); len(got) != 1 {
		t.Fatalf("selected %v, want just the small item", got)
	}
	if q.RepeatBroadcastsInto(1, 6) {
		t.Fatal("repeat accepted after a budget-limited selection")
	}
}

// TestRepeatRefusesOnDrop verifies the transmit-limit divergence
// condition: a selection that dropped a spent item is not repeatable
// (the next call would no longer include it).
func TestRepeatRefusesOnDrop(t *testing.T) {
	q := NewQueue(fixedNodes(1), 1) // limit 1: items are spent on first transmit
	q.Queue("a", []byte("aa"))
	if got := drain(q, 1, 1024); len(got) != 1 {
		t.Fatalf("selected %v, want the one item", got)
	}
	if q.RepeatBroadcastsInto(1, 1024) {
		t.Fatal("repeat accepted after the selection dropped its item")
	}
}

// TestRepeatRefusesOnParamOrMutationDivergence verifies that a changed
// budget, a changed overhead, or any intervening queue mutation clears
// repeatability.
func TestRepeatRefusesOnParamOrMutationDivergence(t *testing.T) {
	fresh := func() *Queue {
		q := NewQueue(fixedNodes(128), 4)
		q.Queue("a", []byte("aaaa"))
		q.Queue("b", []byte("bb"))
		drain(q, 1, 1024)
		return q
	}

	if q := fresh(); q.RepeatBroadcastsInto(2, 1024) {
		t.Fatal("repeat accepted a different overhead")
	}
	if q := fresh(); q.RepeatBroadcastsInto(1, 512) {
		t.Fatal("repeat accepted a different limit")
	}
	q := fresh()
	q.Queue("c", []byte("cc"))
	if q.RepeatBroadcastsInto(1, 1024) {
		t.Fatal("repeat accepted after Queue mutated the selection")
	}
	q = fresh()
	q.Invalidate("a")
	if q.RepeatBroadcastsInto(1, 1024) {
		t.Fatal("repeat accepted after Invalidate mutated the selection")
	}
	q = fresh()
	q.Reset()
	if q.RepeatBroadcastsInto(1, 1024) {
		t.Fatal("repeat accepted after Reset emptied the queue")
	}
}

// TestRepeatAppliesDropsAndStops verifies the repeat's own transmit
// accounting: a repeat that promotes items to the retransmit limit
// drops them, exactly as the real second call would, and further
// repeats refuse.
func TestRepeatAppliesDropsAndStops(t *testing.T) {
	q := NewQueue(fixedNodes(9), 2) // limit = 2·ceil(log10(10)) = 2 transmits
	q.Queue("a", []byte("aa"))
	q.Queue("b", []byte("bb"))
	if got := drain(q, 1, 1024); len(got) != 2 {
		t.Fatalf("selected %v, want both items", got)
	}
	if !q.RepeatBroadcastsInto(1, 1024) {
		t.Fatal("repeat refused a fully-selected, drop-free queue")
	}
	if q.Len() != 0 {
		t.Fatalf("queue holds %d items after the limit-reaching repeat, want 0", q.Len())
	}
	if q.RepeatBroadcastsInto(1, 1024) {
		t.Fatal("repeat accepted an emptied queue")
	}
	if got := drain(q, 1, 1024); len(got) != 0 {
		t.Fatalf("emptied queue emitted %v", got)
	}
}

// TestQuickRepeatEquivalence drives a twin pair of queues through
// random mixed workloads: whenever the shared-encode queue's repeat is
// accepted, the baseline queue runs a real selection instead, and the
// two must emit identical sequences and stay in identical states. This
// is the randomized version of the hand-built equivalence pin.
func TestQuickRepeatEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		nodes := 1 + rng.Intn(200)
		mult := 1 + rng.Intn(3)
		base := NewQueue(fixedNodes(nodes), mult)
		twin := NewQueue(fixedNodes(nodes), mult)
		limit := 32 + rng.Intn(256)

		var lastTwin []string // the twin's most recent emitted selection
		for step := 0; step < 60; step++ {
			switch rng.Intn(4) {
			case 0:
				name := fmt.Sprintf("m%d", rng.Intn(8))
				payload := make([]byte, 1+rng.Intn(40))
				for i := range payload {
					payload[i] = byte(rng.Intn(256))
				}
				base.Queue(name, payload)
				twin.Queue(name, payload)
			case 1:
				name := fmt.Sprintf("m%d", rng.Intn(8))
				base.Invalidate(name)
				twin.Invalidate(name)
			default:
				want := drain(base, 2, limit)
				if twin.RepeatBroadcastsInto(2, limit) {
					// The twin promised this selection equals its own
					// previous emission; the baseline's real selection is
					// the ground truth that reuse must match.
					if !reflect.DeepEqual(lastTwin, want) {
						t.Fatalf("trial %d step %d: repeat reused %q, baseline selected %q",
							trial, step, lastTwin, want)
					}
				} else {
					got := drain(twin, 2, limit)
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("trial %d step %d: selections diverged:\n got %q\nwant %q",
							trial, step, got, want)
					}
					lastTwin = got
				}
			}
			if base.Len() != twin.Len() {
				t.Fatalf("trial %d step %d: sizes diverged: base %d, twin %d",
					trial, step, base.Len(), twin.Len())
			}
		}
	}
}
