package broadcast

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

// seedQueue is the original flat-slice, sort-per-GetBroadcasts
// implementation this package shipped with, kept verbatim (minus locking)
// as the executable specification of selection order: fewest transmits
// first, FIFO among equals, transmit-counter reset on requeue, greedy
// byte-budget packing that skips oversized items but keeps scanning.
type seedQueue struct {
	numNodes       func() int
	retransmitMult int
	items          []*seedBroadcast
	nextID         uint64
}

type seedBroadcast struct {
	name      string
	payload   []byte
	transmits int
	id        uint64
}

func (q *seedQueue) Queue(name string, payload []byte) {
	kept := q.items[:0]
	for _, b := range q.items {
		if b.name != name {
			kept = append(kept, b)
		}
	}
	q.items = kept
	q.nextID++
	q.items = append(q.items, &seedBroadcast{name: name, payload: payload, id: q.nextID})
}

func (q *seedQueue) Invalidate(name string) {
	kept := q.items[:0]
	for _, b := range q.items {
		if b.name != name {
			kept = append(kept, b)
		}
	}
	q.items = kept
}

func (q *seedQueue) Len() int { return len(q.items) }

func (q *seedQueue) Peek(name string) []byte {
	for _, b := range q.items {
		if b.name == name {
			return b.payload
		}
	}
	return nil
}

func (q *seedQueue) GetBroadcasts(overhead, limit int) [][]byte {
	if len(q.items) == 0 {
		return nil
	}
	sort.SliceStable(q.items, func(i, j int) bool {
		if q.items[i].transmits != q.items[j].transmits {
			return q.items[i].transmits < q.items[j].transmits
		}
		return q.items[i].id < q.items[j].id
	})
	transmitLimit := RetransmitLimit(q.retransmitMult, q.numNodes())
	var picked [][]byte
	used := 0
	kept := q.items[:0]
	for _, b := range q.items {
		cost := overhead + len(b.payload)
		if used+cost > limit {
			kept = append(kept, b)
			continue
		}
		used += cost
		picked = append(picked, b.payload)
		b.transmits++
		if b.transmits < transmitLimit {
			kept = append(kept, b)
		}
	}
	q.items = kept
	return picked
}

// TestQueueMatchesSeedImplementation drives the indexed queue and the
// seed implementation through identical randomized interleavings of
// Queue/Invalidate/Peek/GetBroadcasts (with heterogeneous payload sizes
// and tight byte budgets, so the oversized-skip path is exercised) and
// requires the selection sequences to be byte-identical.
func TestQueueMatchesSeedImplementation(t *testing.T) {
	for trial := 0; trial < 200; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		nodes := 1 + rng.Intn(512)
		mult := 1 + rng.Intn(4)
		fast := NewQueue(fixedNodes(nodes), mult)
		slow := &seedQueue{numNodes: fixedNodes(nodes), retransmitMult: mult}

		ops := 1 + rng.Intn(200)
		for op := 0; op < ops; op++ {
			switch rng.Intn(10) {
			case 0, 1, 2, 3:
				name := fmt.Sprintf("m%d", rng.Intn(24))
				// Size classes from tiny to oversized-for-most-budgets.
				payload := make([]byte, []int{2, 10, 40, 200, 900}[rng.Intn(5)])
				rng.Read(payload)
				fast.Queue(name, payload)
				slow.Queue(name, payload)
			case 4:
				name := fmt.Sprintf("m%d", rng.Intn(24))
				fast.Invalidate(name)
				slow.Invalidate(name)
			case 5:
				name := fmt.Sprintf("m%d", rng.Intn(24))
				if !bytes.Equal(fast.Peek(name), slow.Peek(name)) {
					t.Fatalf("trial %d op %d: Peek(%s) diverged", trial, op, name)
				}
			default:
				overhead := rng.Intn(4)
				limit := []int{16, 64, 256, 1400}[rng.Intn(4)]
				got := fast.GetBroadcasts(overhead, limit)
				want := slow.GetBroadcasts(overhead, limit)
				if len(got) != len(want) {
					t.Fatalf("trial %d op %d: GetBroadcasts(%d, %d) returned %d payloads, seed returned %d",
						trial, op, overhead, limit, len(got), len(want))
				}
				for i := range got {
					if !bytes.Equal(got[i], want[i]) {
						t.Fatalf("trial %d op %d: payload %d diverged from seed selection order", trial, op, i)
					}
				}
			}
			if fast.Len() != slow.Len() {
				t.Fatalf("trial %d op %d: Len = %d, seed = %d", trial, op, fast.Len(), slow.Len())
			}
		}
	}
}
