package sim

import (
	"math/rand"
	"testing"
	"time"
)

func wanTopology() *Topology {
	topo := NewTopology()
	topo.SetZone("a1", "alpha")
	topo.SetZone("a2", "alpha")
	topo.SetZone("b1", "beta")
	topo.SetZonePair("alpha", "beta", LinkProfile{Base: 50 * time.Millisecond, Jitter: 10 * time.Millisecond})
	return topo
}

func TestTopologyZoneAssignment(t *testing.T) {
	topo := wanTopology()
	if got := topo.Zone("a1"); got != "alpha" {
		t.Errorf("Zone(a1) = %q", got)
	}
	if got := topo.Zone("stranger"); got != DefaultZone {
		t.Errorf("Zone(stranger) = %q, want %q", got, DefaultZone)
	}
}

func TestTopologyProfileResolutionOrder(t *testing.T) {
	topo := wanTopology()
	rng := rand.New(rand.NewSource(1))

	// Zone-pair profile for cross-zone traffic.
	for i := 0; i < 100; i++ {
		d := topo.Sample("a1", "b1", rng)
		if d < 50*time.Millisecond || d >= 60*time.Millisecond {
			t.Fatalf("cross-zone delay %v outside [50ms, 60ms)", d)
		}
	}
	// Intra-zone default for same-zone traffic.
	for i := 0; i < 100; i++ {
		d := topo.Sample("a1", "a2", rng)
		if d < 500*time.Microsecond || d >= time.Millisecond {
			t.Fatalf("intra-zone delay %v outside [500µs, 1ms)", d)
		}
	}
	// Inter-zone fallback when the pair has no profile.
	d := topo.Sample("a1", "stranger", rng)
	if d < topo.InterZone.Base || d >= topo.InterZone.Base+topo.InterZone.Jitter {
		t.Fatalf("fallback delay %v outside inter-zone profile", d)
	}

	// A per-link override beats everything, and is directed.
	topo.SetLink("a1", "b1", LinkProfile{Base: 300 * time.Millisecond})
	if d := topo.Sample("a1", "b1", rng); d != 300*time.Millisecond {
		t.Fatalf("link override ignored: %v", d)
	}
	if d := topo.Sample("b1", "a1", rng); d >= 300*time.Millisecond {
		t.Fatalf("reverse direction picked up directed override: %v", d)
	}
	topo.ClearLink("a1", "b1")
	if d := topo.Sample("a1", "b1", rng); d >= 300*time.Millisecond {
		t.Fatalf("ClearLink did not remove override: %v", d)
	}
}

func TestTopologyGroundTruthRTT(t *testing.T) {
	topo := wanTopology()
	// Cross-zone: expected one-way is 50ms + 10ms/2 = 55ms each way.
	if got, want := topo.GroundTruthRTT("a1", "b1"), 110*time.Millisecond; got != want {
		t.Errorf("cross-zone ground truth = %v, want %v", got, want)
	}
	// Asymmetric link override affects only its direction.
	topo.SetLink("a1", "b1", LinkProfile{Base: 100 * time.Millisecond})
	if got, want := topo.GroundTruthRTT("a1", "b1"), 155*time.Millisecond; got != want {
		t.Errorf("asymmetric ground truth = %v, want %v", got, want)
	}
	if ab, ba := topo.GroundTruthRTT("a1", "b1"), topo.GroundTruthRTT("b1", "a1"); ab != ba {
		t.Errorf("RTT not symmetric under asymmetric links: %v vs %v", ab, ba)
	}
}

// TestNetworkUsesTopology attaches two members in different zones and
// checks the delivery time matches the zone-pair profile rather than
// the flat default.
func TestNetworkUsesTopology(t *testing.T) {
	sched := NewScheduler(time.Unix(0, 0))
	topo := NewTopology()
	topo.SetZone("x", "west")
	topo.SetZone("y", "east")
	topo.SetZonePair("west", "east", LinkProfile{Base: 80 * time.Millisecond}) // no jitter
	net := NewNetwork(sched, Options{Topology: topo, Seed: 1})

	var deliveredAt time.Time
	if _, err := net.Attach("y", func(from string, payload []byte) {
		deliveredAt = net.Clock().Now()
	}); err != nil {
		t.Fatal(err)
	}
	px, err := net.Attach("x", func(string, []byte) {})
	if err != nil {
		t.Fatal(err)
	}

	start := net.Clock().Now()
	if err := px.SendPacket("y", []byte("hi"), false); err != nil {
		t.Fatal(err)
	}
	sched.RunFor(time.Second)

	if deliveredAt.IsZero() {
		t.Fatal("packet not delivered")
	}
	// Delivery = 80ms propagation + 100µs default service time.
	want := start.Add(80*time.Millisecond + 100*time.Microsecond)
	if !deliveredAt.Equal(want) {
		t.Errorf("delivered at %v, want %v", deliveredAt.Sub(start), want.Sub(start))
	}
}

// TestNetworkTopologyDeterminism: same seed, same topology → identical
// delay draws.
func TestNetworkTopologyDeterminism(t *testing.T) {
	draw := func() []time.Duration {
		topo := wanTopology()
		rng := rand.New(rand.NewSource(42))
		out := make([]time.Duration, 50)
		for i := range out {
			out[i] = topo.Sample("a1", "b1", rng)
		}
		return out
	}
	a, b := draw(), draw()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d diverged: %v vs %v", i, a[i], b[i])
		}
	}
}
