package sim

import (
	"fmt"
	"reflect"
	"testing"
	"time"
)

// sendN pumps n unreliable packets from src to dst, one every interval.
func sendN(t *testing.T, r *rig, src *Port, dst string, n int, interval time.Duration) {
	t.Helper()
	for i := 0; i < n; i++ {
		if err := src.SendPacket(dst, []byte{byte(i)}, false); err != nil {
			t.Fatal(err)
		}
		r.sched.RunFor(interval)
	}
}

// TestLinkFaultCounts pins the exact per-seed intervention counts of an
// impaired link: how many of 400 packets are fault-dropped, duplicated
// and reordered at seed 7. With an unimpeded receiver (as here) every
// duplicate lands, so delivered = sent − dropped + duplicated.
func TestLinkFaultCounts(t *testing.T) {
	cases := []struct {
		name                           string
		fault                          LinkFault
		wantDrop, wantDup, wantReorder int64
		wantDelivered                  int64
		reliable                       bool
	}{
		{
			name:          "loss only",
			fault:         LinkFault{Loss: 0.3},
			wantDrop:      124,
			wantDelivered: 276,
		},
		{
			name:          "duplication only",
			fault:         LinkFault{Duplicate: 0.2},
			wantDup:       69,
			wantDelivered: 469,
		},
		{
			name:          "reordering only",
			fault:         LinkFault{Reorder: 0.25},
			wantReorder:   94,
			wantDelivered: 400,
		},
		{
			name:          "combined",
			fault:         LinkFault{Loss: 0.3, Duplicate: 0.2, Reorder: 0.25},
			wantDrop:      126,
			wantDup:       49,
			wantReorder:   67,
			wantDelivered: 323,
		},
		{
			// Reliable traffic is exempt from fault loss and
			// duplication (TCP retransmits and dedups) but still
			// subject to reordering (TCP cannot mask delay).
			name:          "reliable exempt from loss and duplication",
			fault:         LinkFault{Loss: 1.0, Duplicate: 1.0, Reorder: 0.25},
			reliable:      true,
			wantDup:       0,
			wantReorder:   94,
			wantDelivered: 400,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := newRig(t, Options{Seed: 7})
			a, _ := r.attach(t, "a")
			r.attach(t, "b")
			r.net.SetLinkFault("a", "b", tc.fault)
			for i := 0; i < 400; i++ {
				if err := a.SendPacket("b", []byte{byte(i)}, tc.reliable); err != nil {
					t.Fatal(err)
				}
				r.sched.RunFor(5 * time.Millisecond)
			}
			r.sched.RunFor(time.Second)
			got := r.net.NodeStats("b")
			if got.DropsFault != tc.wantDrop || got.Duplicated != tc.wantDup || got.Reordered != tc.wantReorder {
				t.Errorf("interventions drop/dup/reorder = %d/%d/%d, want %d/%d/%d",
					got.DropsFault, got.Duplicated, got.Reordered,
					tc.wantDrop, tc.wantDup, tc.wantReorder)
			}
			if got.MsgsDelivered != tc.wantDelivered {
				t.Errorf("delivered = %d, want %d", got.MsgsDelivered, tc.wantDelivered)
			}
			if sent := r.net.NodeStats("a").MsgsSent; sent != 400 {
				t.Errorf("sent = %d, want 400", sent)
			}
		})
	}
}

// TestLinkFaultIsDirectionalAndClearable pins that an impairment
// applies to one direction only and stops at ClearLinkFault.
func TestLinkFaultIsDirectionalAndClearable(t *testing.T) {
	r := newRig(t, Options{Seed: 3})
	a, _ := r.attach(t, "a")
	b, _ := r.attach(t, "b")
	r.net.SetLinkFault("a", "b", LinkFault{Loss: 1.0})

	sendN(t, r, a, "b", 20, time.Millisecond)
	sendN(t, r, b, "a", 20, time.Millisecond)
	r.sched.RunFor(time.Second)
	if got := r.net.NodeStats("b"); got.MsgsDelivered != 0 || got.DropsFault != 20 {
		t.Errorf("impaired direction: %+v", got)
	}
	if got := r.net.NodeStats("a"); got.MsgsDelivered != 20 || got.DropsFault != 0 {
		t.Errorf("reverse direction: %+v", got)
	}

	r.net.ClearLinkFault("a", "b")
	sendN(t, r, a, "b", 20, time.Millisecond)
	r.sched.RunFor(time.Second)
	if got := r.net.NodeStats("b").MsgsDelivered; got != 20 {
		t.Errorf("after heal: delivered = %d, want 20", got)
	}
}

// TestReorderedPacketIsOvertaken pins the semantic point of the reorder
// fault: a held-back packet is actually overtaken by one sent later.
func TestReorderedPacketIsOvertaken(t *testing.T) {
	r := newRig(t, Options{Latency: UniformLatency(time.Millisecond, time.Millisecond), Seed: 1})
	a, _ := r.attach(t, "a")
	_, bGot := r.attach(t, "b")
	// Reorder every packet from a with a hold long enough that the
	// next packet (sent 2 ms later, arriving ~1 ms after that)
	// overtakes it; then clear and send the chaser un-reordered.
	r.net.SetLinkFault("a", "b", LinkFault{Reorder: 1.0, ReorderDelay: DelayDist{Base: 50 * time.Millisecond}})
	a.SendPacket("b", []byte("held"), false)
	r.sched.RunFor(2 * time.Millisecond)
	r.net.ClearLinkFault("a", "b")
	a.SendPacket("b", []byte("chaser"), false)
	r.sched.RunFor(time.Second)
	if len(*bGot) != 2 || (*bGot)[0] != "a:chaser" || (*bGot)[1] != "a:held" {
		t.Fatalf("delivery order %v, want chaser before held", *bGot)
	}
	if got := r.net.NodeStats("b").Reordered; got != 1 {
		t.Errorf("reordered = %d, want 1", got)
	}
}

// TestPauseBufferVsDrop pins the two pause modes: buffered inbound
// drains after resume; dropped inbound is gone (counted as DropsFault)
// and only post-resume traffic gets through.
func TestPauseBufferVsDrop(t *testing.T) {
	cases := []struct {
		mode          PauseMode
		wantDelivered int64
		wantDropped   int64
	}{
		{mode: PauseBuffer, wantDelivered: 10, wantDropped: 0},
		{mode: PauseDrop, wantDelivered: 5, wantDropped: 5},
	}
	for _, tc := range cases {
		name := map[PauseMode]string{PauseBuffer: "buffer", PauseDrop: "drop"}[tc.mode]
		t.Run(name, func(t *testing.T) {
			r := newRig(t, Options{})
			a, _ := r.attach(t, "a")
			r.attach(t, "b")
			r.net.Pause("b", tc.mode)
			sendN(t, r, a, "b", 5, 10*time.Millisecond)
			r.sched.RunFor(time.Second)
			if got := r.net.NodeStats("b").MsgsDelivered; got != 0 {
				t.Fatalf("paused member processed %d packets", got)
			}
			r.net.Resume("b")
			sendN(t, r, a, "b", 5, 10*time.Millisecond)
			r.sched.RunFor(time.Second)
			got := r.net.NodeStats("b")
			if got.MsgsDelivered != tc.wantDelivered || got.DropsFault != tc.wantDropped {
				t.Errorf("delivered/dropped = %d/%d, want %d/%d",
					got.MsgsDelivered, got.DropsFault, tc.wantDelivered, tc.wantDropped)
			}
		})
	}
}

// TestSetGatedReleaseEndsDropMode pins the gate/drop invariant: a
// member paused in drop mode that is released through the plain gate
// API (the experiment anomaly path) hears traffic again — dropInbound
// cannot outlive the gate and leave a running member permanently deaf.
func TestSetGatedReleaseEndsDropMode(t *testing.T) {
	r := newRig(t, Options{})
	a, _ := r.attach(t, "a")
	r.attach(t, "b")
	r.net.Pause("b", PauseDrop)
	sendN(t, r, a, "b", 3, 10*time.Millisecond)
	r.net.SetGated("b", false) // anomaly-gate release, not Resume
	sendN(t, r, a, "b", 3, 10*time.Millisecond)
	r.sched.RunFor(time.Second)
	got := r.net.NodeStats("b")
	if got.MsgsDelivered != 3 || got.DropsFault != 3 {
		t.Errorf("delivered/dropped = %d/%d after gate release, want 3/3", got.MsgsDelivered, got.DropsFault)
	}
}

// TestCrashNodeNeverResponds pins that a scheduled crash silences a
// member permanently: inbound dropped, sends held forever.
func TestCrashNodeNeverResponds(t *testing.T) {
	r := newRig(t, Options{})
	a, aGot := r.attach(t, "a")
	b, _ := r.attach(t, "b")
	s := &FaultSchedule{}
	s.CrashNode(10*time.Millisecond, "b")
	r.net.InstallFaults(s)

	r.sched.RunFor(20 * time.Millisecond)
	b.SendPacket("a", []byte("from the grave"), false)
	sendN(t, r, a, "b", 5, 10*time.Millisecond)
	r.sched.RunFor(time.Minute)
	if len(*aGot) != 0 {
		t.Errorf("a heard from crashed b: %v", *aGot)
	}
	if got := r.net.NodeStats("b"); got.MsgsDelivered != 0 || got.DropsFault != 5 {
		t.Errorf("crashed member stats: %+v", got)
	}
	if !r.net.Crashed("b") {
		t.Error("Crashed not reported")
	}
}

// TestCrashIsSticky pins that a crash survives later pause/resume/gate
// transitions: a schedule that flaps a member it also crashes cannot
// accidentally resurrect it.
func TestCrashIsSticky(t *testing.T) {
	r := newRig(t, Options{})
	a, _ := r.attach(t, "a")
	r.attach(t, "b")

	r.net.Crash("b")
	// Every resurrection path must be a no-op.
	r.net.Resume("b")
	r.net.SetGated("b", false)
	r.net.Pause("b", PauseBuffer)
	r.net.Resume("b")

	sendN(t, r, a, "b", 3, 10*time.Millisecond)
	r.sched.RunFor(time.Minute)
	if got := r.net.NodeStats("b"); got.MsgsDelivered != 0 || got.DropsFault != 3 {
		t.Errorf("crashed member came back: %+v", got)
	}
	if !r.net.Gated("b") || !r.net.Crashed("b") {
		t.Error("crashed member lost its gate or crash mark")
	}
}

// TestDegradedServiceDelayBounds pins the degradation distribution at
// the inbound path: every delivery at a degraded member lands within
// [ServiceTime+Base, ServiceTime+Base+Jitter) of its arrival, and
// restoring the member returns service to the plain ServiceTime.
func TestDegradedServiceDelayBounds(t *testing.T) {
	service := time.Millisecond
	degrade := DelayDist{Base: 20 * time.Millisecond, Jitter: 30 * time.Millisecond}
	r := newRig(t, Options{
		Latency:     UniformLatency(time.Millisecond, time.Millisecond),
		ServiceTime: service,
		Seed:        11,
	})
	a, _ := r.attach(t, "a")
	var served []time.Time
	if _, err := r.net.Attach("b", func(string, []byte) { served = append(served, r.sched.Now()) }); err != nil {
		t.Fatal(err)
	}
	r.net.SetDegraded("b", degrade)
	if !r.net.Degraded("b") {
		t.Fatal("Degraded not reported")
	}

	// One packet at a time, so service delay is measured without
	// queueing: arrival is send + 1 ms latency.
	const rounds = 50
	var sent []time.Time
	for i := 0; i < rounds; i++ {
		sent = append(sent, r.sched.Now())
		a.SendPacket("b", []byte{byte(i)}, false)
		r.sched.RunFor(200 * time.Millisecond)
	}
	if len(served) != rounds {
		t.Fatalf("served %d of %d", len(served), rounds)
	}
	for i := range served {
		d := served[i].Sub(sent[i]) - time.Millisecond // strip latency
		lo, hi := service+degrade.Base, service+degrade.Base+degrade.Jitter
		if d < lo || d >= hi {
			t.Fatalf("packet %d served %v after arrival, want [%v, %v)", i, d, lo, hi)
		}
	}

	r.net.SetDegraded("b", DelayDist{})
	if r.net.Degraded("b") {
		t.Fatal("degradation not cleared")
	}
	served = served[:0]
	start := r.sched.Now()
	a.SendPacket("b", []byte("x"), false)
	r.sched.RunFor(time.Second)
	if d := served[0].Sub(start); d != time.Millisecond+service {
		t.Errorf("restored service delay %v, want %v", d, time.Millisecond+service)
	}
}

// TestNodeClockDegradedTimer pins the degradation distribution at the
// timer path: a degraded member's timer callbacks are deferred by a
// draw within [Base, Base+Jitter), a healthy member's run exactly on
// time, and Stop cancels a timer even after the deferral stage has been
// scheduled.
func TestNodeClockDegradedTimer(t *testing.T) {
	degrade := DelayDist{Base: 20 * time.Millisecond, Jitter: 30 * time.Millisecond}
	r := newRig(t, Options{Seed: 13})
	r.attach(t, "a")
	clock := r.net.NodeClock("a")

	// Healthy: exact.
	var firedAt time.Time
	clock.AfterFunc(10*time.Millisecond, func() { firedAt = r.sched.Now() })
	r.sched.RunFor(time.Second)
	if got := firedAt.Sub(time.Unix(0, 0)); got != 10*time.Millisecond {
		t.Fatalf("healthy timer fired at %v, want 10ms", got)
	}

	// Degraded: deferred within bounds, repeatedly.
	r.net.SetDegraded("a", degrade)
	base := r.sched.Now()
	var fires []time.Duration
	for i := 0; i < 30; i++ {
		at := base.Add(time.Duration(i+1) * 200 * time.Millisecond)
		clock.AfterFunc(at.Sub(r.sched.Now()), func() { fires = append(fires, r.sched.Now().Sub(at)) })
	}
	r.sched.RunFor(time.Minute)
	if len(fires) != 30 {
		t.Fatalf("fired %d of 30", len(fires))
	}
	for i, d := range fires {
		if d < degrade.Base || d >= degrade.Base+degrade.Jitter {
			t.Fatalf("timer %d deferred %v, want [%v, %v)", i, d, degrade.Base, degrade.Base+degrade.Jitter)
		}
	}

	// Stop between the original fire and the deferred callback.
	stopped := false
	timer := clock.AfterFunc(10*time.Millisecond, func() { stopped = true })
	r.sched.RunFor(15 * time.Millisecond) // original event fired, deferral pending
	if !timer.Stop() {
		t.Fatal("Stop reported nothing pending during deferral")
	}
	r.sched.RunFor(time.Second)
	if stopped {
		t.Fatal("stopped timer's callback still ran")
	}
}

// TestStatsMergeCoversAllFields sets every Stats field (current and
// future) to a distinct value via reflection and checks Merge sums each
// one — so a new counter cannot be forgotten in Merge without failing
// here.
func TestStatsMergeCoversAllFields(t *testing.T) {
	var a, b Stats
	av, bv := reflect.ValueOf(&a).Elem(), reflect.ValueOf(&b).Elem()
	for i := 0; i < av.NumField(); i++ {
		av.Field(i).SetInt(int64(i + 1))
		bv.Field(i).SetInt(int64(100 * (i + 1)))
	}
	a.Merge(b)
	for i := 0; i < av.NumField(); i++ {
		want := int64(i+1) + int64(100*(i+1))
		if got := av.Field(i).Int(); got != want {
			t.Errorf("field %s = %d after Merge, want %d",
				av.Type().Field(i).Name, got, want)
		}
	}
}

// TestFaultScheduleAppliesInOrder pins schedule semantics: transitions
// fire at their virtual-time offsets from installation, same-offset
// transitions apply in insertion order, and negative offsets clamp to
// installation time.
func TestFaultScheduleAppliesInOrder(t *testing.T) {
	r := newRig(t, Options{})
	r.attach(t, "a")
	var order []string
	s := &FaultSchedule{}
	mark := func(label string) func(*Network) {
		return func(*Network) { order = append(order, fmt.Sprintf("%s@%v", label, r.sched.Now().Sub(time.Unix(0, 0)))) }
	}
	s.add(20*time.Millisecond, mark("late"))
	s.add(10*time.Millisecond, mark("mid-1"))
	s.add(10*time.Millisecond, mark("mid-2"))
	s.add(-5*time.Millisecond, mark("clamped"))
	if s.Len() != 4 {
		t.Fatalf("Len = %d, want 4", s.Len())
	}
	r.sched.RunFor(5 * time.Millisecond) // install mid-simulation
	r.net.InstallFaults(s)
	r.sched.RunFor(time.Second)
	want := []string{"clamped@5ms", "mid-1@15ms", "mid-2@15ms", "late@25ms"}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

// TestFaultScheduleDrivesNetwork exercises every schedule primitive end
// to end: degrade/restore, pause/resume, impair/heal and fail/heal all
// take effect at their scheduled times.
func TestFaultScheduleDrivesNetwork(t *testing.T) {
	r := newRig(t, Options{})
	r.attach(t, "a")
	r.attach(t, "b")
	s := &FaultSchedule{}
	s.DegradeNode(10*time.Millisecond, "a", DelayDist{Base: time.Millisecond})
	s.RestoreNode(20*time.Millisecond, "a")
	s.PauseNode(30*time.Millisecond, "b", PauseBuffer)
	s.ResumeNode(40*time.Millisecond, "b")
	s.ImpairLink(50*time.Millisecond, "a", "b", LinkFault{Loss: 1})
	s.HealLink(60*time.Millisecond, "a", "b")
	s.FailLink(70*time.Millisecond, "b", "a", true)
	s.FailLink(80*time.Millisecond, "b", "a", false)
	r.net.InstallFaults(s)

	type check struct {
		at   time.Duration
		test func() bool
		desc string
	}
	checks := []check{
		{15 * time.Millisecond, func() bool { return r.net.Degraded("a") }, "a degraded at 15ms"},
		{25 * time.Millisecond, func() bool { return !r.net.Degraded("a") }, "a restored at 25ms"},
		{35 * time.Millisecond, func() bool { return r.net.Gated("b") }, "b paused at 35ms"},
		{45 * time.Millisecond, func() bool { return !r.net.Gated("b") }, "b resumed at 45ms"},
		{55 * time.Millisecond, func() bool { _, ok := r.net.linkFaults[r.net.linkID("a", "b")]; return ok }, "a->b impaired at 55ms"},
		{65 * time.Millisecond, func() bool { _, ok := r.net.linkFaults[r.net.linkID("a", "b")]; return !ok }, "a->b healed at 65ms"},
		{75 * time.Millisecond, func() bool { return r.net.linkFailed(r.net.ids["b"], r.net.ids["a"]) }, "b->a failed at 75ms"},
		{85 * time.Millisecond, func() bool { return !r.net.linkFailed(r.net.ids["b"], r.net.ids["a"]) }, "b->a healed at 85ms"},
	}
	for _, c := range checks {
		r.sched.RunUntil(time.Unix(0, 0).Add(c.at))
		if !c.test() {
			t.Errorf("%s: condition does not hold", c.desc)
		}
	}
}

// TestFaultLossDoesNotShiftBaseStream pins the stronger half of the
// two-stream contract: a fault-dropped packet still consumes the base
// delay draw it would have consumed anyway, so clean traffic on other
// links sees byte-identical delivery times whether or not a lossy
// fault is active elsewhere.
func TestFaultLossDoesNotShiftBaseStream(t *testing.T) {
	run := func(withFault bool) []string {
		sched := NewScheduler(time.Unix(0, 0))
		network := NewNetwork(sched, Options{Seed: 9, Loss: 0.1})
		a, err := network.Attach("a", func(string, []byte) {})
		if err != nil {
			t.Fatal(err)
		}
		c, err := network.Attach("c", func(string, []byte) {})
		if err != nil {
			t.Fatal(err)
		}
		network.Attach("b", func(string, []byte) {})
		var trace []string
		if _, err := network.Attach("d", func(from string, payload []byte) {
			trace = append(trace, fmt.Sprintf("%d@%v", payload[0], sched.Now().Sub(time.Unix(0, 0))))
		}); err != nil {
			t.Fatal(err)
		}
		if withFault {
			network.SetLinkFault("a", "b", LinkFault{Loss: 1.0})
		}
		// Interleave faulted a->b traffic with clean c->d traffic.
		for i := 0; i < 100; i++ {
			a.SendPacket("b", []byte{byte(i)}, false)
			c.SendPacket("d", []byte{byte(i)}, false)
			sched.RunFor(10 * time.Millisecond)
		}
		sched.RunFor(time.Second)
		return trace
	}
	base, faulted := run(false), run(true)
	if len(base) != len(faulted) {
		t.Fatalf("clean-link deliveries changed under a lossy fault elsewhere: %d vs %d", len(base), len(faulted))
	}
	for i := range base {
		if base[i] != faulted[i] {
			t.Fatalf("clean-link delivery %d moved under a lossy fault elsewhere: %s vs %s", i, base[i], faulted[i])
		}
	}
}

// TestFaultRNGIsolation pins the two-stream contract: fault draws come
// from a dedicated RNG, so the base network's per-packet loss decisions
// for the same traffic are identical with and without active faults.
func TestFaultRNGIsolation(t *testing.T) {
	run := func(withFaults bool) (dropsLoss int64, delivered map[byte]int) {
		sched := NewScheduler(time.Unix(0, 0))
		network := NewNetwork(sched, Options{Seed: 42, Loss: 0.3})
		a, err := network.Attach("a", func(string, []byte) {})
		if err != nil {
			t.Fatal(err)
		}
		delivered = make(map[byte]int)
		if _, err := network.Attach("b", func(from string, payload []byte) {
			delivered[payload[0]]++
		}); err != nil {
			t.Fatal(err)
		}
		if withFaults {
			// Heavy duplication consumes many fault-stream draws; the
			// base loss stream must not notice.
			network.SetLinkFault("a", "b", LinkFault{Duplicate: 1.0})
		}
		for i := 0; i < 100; i++ {
			a.SendPacket("b", []byte{byte(i)}, false)
			sched.RunFor(10 * time.Millisecond)
		}
		sched.RunFor(time.Second)
		return network.NodeStats("b").DropsLoss, delivered
	}
	baseDrops, base := run(false)
	faultDrops, faulted := run(true)
	if baseDrops != faultDrops {
		t.Errorf("loss drops changed when faults were active: %d vs %d", baseDrops, faultDrops)
	}
	// Exactly the packets that survived loss in the base run must
	// survive in the faulted run (twice each, with Duplicate = 1).
	if len(faulted) != len(base) {
		t.Fatalf("faulted run delivered %d distinct packets, base %d", len(faulted), len(base))
	}
	for payload := range base {
		if faulted[payload] != 2 {
			t.Errorf("packet %d delivered %d times under Duplicate=1, want 2", payload, faulted[payload])
		}
	}
}
