package sim

import (
	"fmt"
	"math/rand"
	"time"

	"lifeguard/internal/bufpool"
)

// PacketHandler consumes one inbound packet at a member.
type PacketHandler func(from string, payload []byte)

// LatencyModel draws a one-way packet delay.
type LatencyModel func(rng *rand.Rand) time.Duration

// UniformLatency returns a model drawing uniformly from [min, max].
func UniformLatency(min, max time.Duration) LatencyModel {
	if max < min {
		max = min
	}
	return func(rng *rand.Rand) time.Duration {
		if max == min {
			return min
		}
		return min + time.Duration(rng.Int63n(int64(max-min)))
	}
}

// Options configures a simulated network.
type Options struct {
	// Latency draws per-packet one-way delays. Defaults to uniform
	// 100µs–1ms, approximating the paper's loopback deployment.
	Latency LatencyModel

	// Topology, when non-nil, replaces Latency with a zone-structured
	// model: per-packet delays depend on the source and destination
	// members' zones (with per-link overrides). WAN experiments use it
	// both to shape traffic and as the ground truth for scoring
	// Vivaldi coordinate estimates.
	Topology *Topology

	// Loss is the probability an unreliable packet is dropped in
	// flight. Reliable (TCP-modelled) packets are never loss-dropped.
	Loss float64

	// QueueCap bounds each member's inbound queue, modelling the kernel
	// socket buffer. Overflow is tail-drop: the newest packet is lost,
	// which is what makes a late refutation vanish behind an earlier
	// stale suspicion at a blocked member (DESIGN.md §2.1). Defaults to
	// 512 packets.
	QueueCap int

	// ServiceTime is the per-message processing cost at a member. A
	// member that wakes from an anomaly drains its backlog at this rate,
	// so short wake windows clear only part of the queue. Defaults to
	// 100µs.
	ServiceTime time.Duration

	// Seed seeds the network's RNG (latency/loss draws).
	Seed int64
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.Latency == nil {
		out.Latency = UniformLatency(100*time.Microsecond, time.Millisecond)
	}
	if out.QueueCap <= 0 {
		out.QueueCap = 512
	}
	if out.ServiceTime <= 0 {
		out.ServiceTime = 100 * time.Microsecond
	}
	return out
}

// Stats summarizes one member's transport activity.
type Stats struct {
	// MsgsSent counts packets handed to the network (compound packets
	// count once).
	MsgsSent int64

	// BytesSent counts payload bytes handed to the network.
	BytesSent int64

	// MsgsDelivered counts packets processed by the handler.
	MsgsDelivered int64

	// DropsLoss counts packets lost in flight to this member.
	DropsLoss int64

	// DropsOverflow counts packets tail-dropped at this member's full
	// inbound queue.
	DropsOverflow int64

	// DropsFault counts packets lost to injected faults: link-fault
	// loss, or inbound discarded while this member is paused in
	// PauseDrop mode.
	DropsFault int64

	// Duplicated counts extra copies injected toward this member by a
	// duplication fault. Like every in-flight packet, a copy can still
	// be lost downstream (queue overflow, a drop-mode pause, detach),
	// so this counts interventions, not guaranteed deliveries.
	Duplicated int64

	// Reordered counts packets to this member held back by an injected
	// reorder fault, allowing later packets to overtake them.
	Reordered int64
}

// Merge accumulates other into s.
func (s *Stats) Merge(other Stats) {
	s.MsgsSent += other.MsgsSent
	s.BytesSent += other.BytesSent
	s.MsgsDelivered += other.MsgsDelivered
	s.DropsLoss += other.DropsLoss
	s.DropsOverflow += other.DropsOverflow
	s.DropsFault += other.DropsFault
	s.Duplicated += other.Duplicated
	s.Reordered += other.Reordered
}

// inPacket and outPacket hold references on pooled payload buffers: the
// core's Transport contract only guarantees the payload for the
// duration of SendPacket, while the simulator queues packets across
// virtual time. A fan-out send and a duplication fault share one buffer
// across packets, each holding its own reference.
type inPacket struct {
	from string
	buf  *bufpool.Buf
}

type outPacket struct {
	to       string
	buf      *bufpool.Buf
	reliable bool
}

// delivery is one in-flight packet's scheduler payload. Deliveries are
// pooled on the Network and dispatched through the scheduler's pooled
// closure-free events, so the per-packet path allocates neither an
// Event nor a closure in steady state.
type delivery struct {
	net  *Network
	dst  *Port
	from string
	buf  *bufpool.Buf
}

// runDelivery is the static dispatch target for delivery events.
func runDelivery(a any) {
	d := a.(*delivery)
	n, dst, from, buf := d.net, d.dst, d.from, d.buf
	d.dst, d.buf, d.from = nil, nil, ""
	n.freeDeliveries = append(n.freeDeliveries, d)
	if dst.detached {
		// The destination was detached (and possibly replaced by a new
		// Port under the same name) while the packet was in flight.
		buf.Release()
		return
	}
	dst.receive(from, buf)
}

// servePort is the static dispatch target for service-completion events.
func servePort(a any) { a.(*Port).serveOne() }

// Port is one member's attachment to the network. It implements the
// core's Transport interface.
type Port struct {
	name string
	// id is the network-interned handle for name. Ids are assigned on
	// first sight and never recycled, so a re-attached member keeps its
	// id and any installed link faults keep applying to it by name.
	id      int32
	net     *Network
	handler PacketHandler

	gated bool

	// inbox is the member's inbound backlog, consumed from inHead: a
	// drained slot is zeroed and the head index advances, instead of
	// shifting the whole queue per packet (which made a 512-deep paused
	// backlog quadratic to drain). The array is reclaimed when the
	// queue empties, and compacted once the dead prefix exceeds the
	// queue cap.
	inbox  []inPacket
	inHead int

	serving bool
	outbox  []outPacket

	// detached marks a Port removed from the network; packets still in
	// flight to it are dropped on delivery without a name lookup.
	detached bool

	// degrade, when non-zero, is the member's injected processing
	// degradation: extra per-packet service delay, and deferral of
	// NodeClock timer callbacks.
	degrade DelayDist

	// dropInbound discards inbound packets while the member is gated
	// (PauseDrop); buffering is the default.
	dropInbound bool

	// crashed marks a permanent hard stop: the member stays gated and
	// dropping, and pause/resume/gate transitions no longer apply.
	crashed bool

	wakeFns []func()

	stats Stats
}

// Network is a simulated packet network with per-member anomaly gates.
// It must only be used from the owning scheduler's event loop (or before
// the simulation starts).
type Network struct {
	sched *Scheduler
	clock *Clock
	opts  Options
	rng   *rand.Rand
	nodes map[string]*Port

	// ids interns member names into dense int32 handles. A name is
	// assigned an id the first time the network sees it — on Attach or
	// when a link fault/partition is installed against it — and the id
	// is never recycled: name identity persists across Detach and
	// re-Attach, so faults installed by name keep applying to the
	// member's replacement Port.
	ids map[string]int32

	// failedLinks holds directed pairs {from, to} that drop all
	// traffic, for partition experiments. Keyed by a pair of interned
	// ids: the per-packet lookup hashes eight bytes instead of two
	// strings and allocates nothing.
	failedLinks map[[2]int32]bool

	// linkFaults holds directed per-link loss/duplication/reordering
	// impairments installed by fault schedules, keyed like failedLinks.
	linkFaults map[[2]int32]LinkFault

	// freeDeliveries pools the in-flight packet payloads handed to the
	// scheduler (see delivery).
	freeDeliveries []*delivery

	// delayBatch prefetches base-latency draws when the flat latency
	// model is provably the base RNG's only consumer (Loss == 0, no
	// topology): prefetching in draw order is then indistinguishable
	// from drawing per packet, and the hot path reads from a slice
	// instead of calling through the model closure. delayPos ==
	// len(delayBatch) triggers a refill.
	delayBatch []time.Duration
	delayPos   int

	// faultRNG drives every fault-injection draw (link-fault loss,
	// duplicate latency, reorder hold-back, degradation delays). It is
	// a separate stream from rng so that installing faults never
	// perturbs the base latency/loss sequence.
	faultRNG *rand.Rand
}

// NewNetwork returns a network on the given scheduler.
func NewNetwork(sched *Scheduler, opts Options) *Network {
	n := &Network{
		sched:       sched,
		clock:       NewClock(sched),
		opts:        opts.withDefaults(),
		rng:         rand.New(rand.NewSource(opts.Seed)),
		nodes:       make(map[string]*Port),
		ids:         make(map[string]int32),
		failedLinks: make(map[[2]int32]bool),
		linkFaults:  make(map[[2]int32]LinkFault),
		faultRNG:    rand.New(rand.NewSource(opts.Seed ^ 0x5eedfa17)),
	}
	if n.opts.Loss == 0 && n.opts.Topology == nil {
		// The base RNG's only consumer is the per-packet delay draw, so
		// draws can be prefetched in batches (see delayBatch).
		n.delayBatch = make([]time.Duration, 64)
		n.delayPos = len(n.delayBatch)
	}
	return n
}

// Clock returns the virtual clock shared by all members of this network.
func (n *Network) Clock() *Clock { return n.clock }

// Scheduler returns the underlying scheduler.
func (n *Network) Scheduler() *Scheduler { return n.sched }

// Attach registers a member and returns its Port. The handler is invoked
// for each delivered packet; it must not be nil.
func (n *Network) Attach(name string, handler PacketHandler) (*Port, error) {
	if handler == nil {
		return nil, fmt.Errorf("sim: nil handler for %q", name)
	}
	if _, dup := n.nodes[name]; dup {
		return nil, fmt.Errorf("sim: duplicate member %q", name)
	}
	p := &Port{name: name, id: n.internName(name), net: n, handler: handler}
	n.nodes[name] = p
	return p, nil
}

// internName returns the id for a member name, assigning the next
// dense id on first sight. Ids are never recycled (see Network.ids).
func (n *Network) internName(name string) int32 {
	if id, ok := n.ids[name]; ok {
		return id
	}
	id := int32(len(n.ids))
	n.ids[name] = id
	return id
}

// linkID returns the interned id pair keying a directed link,
// interning names not yet seen (a fault may be installed before the
// member attaches; the id sticks when it does).
func (n *Network) linkID(from, to string) [2]int32 {
	return [2]int32{n.internName(from), n.internName(to)}
}

// Detach removes a member; packets in flight to it are dropped on
// delivery. Re-attaching the same name creates a fresh Port, so
// in-flight packets addressed to the old one still drop.
func (n *Network) Detach(name string) {
	if p, ok := n.nodes[name]; ok {
		p.detached = true
		delete(n.nodes, name)
	}
}

// FailLink sets whether all traffic from a to b is dropped. Call twice
// (both directions) for a symmetric partition.
func (n *Network) FailLink(from, to string, failed bool) {
	key := n.linkID(from, to)
	if failed {
		n.failedLinks[key] = true
	} else {
		delete(n.failedLinks, key)
	}
}

func (n *Network) linkFailed(from, to int32) bool {
	if len(n.failedLinks) == 0 {
		return false
	}
	return n.failedLinks[[2]int32{from, to}]
}

// SetGated switches a member's anomaly gate. While gated the member's
// inbound processing stalls (packets queue, subject to QueueCap
// tail-drop) and its sends are held in an outbox. On release the outbox
// flushes, registered wake callbacks run (the core resumes its blocked
// probe/gossip loops), and the backlog drains at ServiceTime per message.
func (n *Network) SetGated(name string, gated bool) {
	p, ok := n.nodes[name]
	if !ok || p.crashed || p.gated == gated {
		return
	}
	p.gated = gated
	if gated {
		return
	}
	// Releasing the gate through any path ends a drop-mode pause too:
	// dropInbound without the gate would leave the member running but
	// permanently deaf.
	p.dropInbound = false
	// Wake: flush sends that were blocked mid-flight first (their
	// content was produced before or during the block), then let the
	// core resume its loops, then start draining the backlog.
	out := p.outbox
	p.outbox = nil
	for _, o := range out {
		n.transmit(p, o.to, o.buf, o.reliable)
	}
	for _, f := range p.wakeFns {
		f()
	}
	p.maybeServe()
}

// Gated reports whether the member is currently gated.
func (n *Network) Gated(name string) bool {
	p, ok := n.nodes[name]
	return ok && p.gated
}

// OnWake registers a callback run each time the member's gate is
// released. The core uses this to resume probe/gossip/push-pull loops
// that were blocked by the anomaly.
func (n *Network) OnWake(name string, fn func()) {
	if p, ok := n.nodes[name]; ok {
		p.wakeFns = append(p.wakeFns, fn)
	}
}

// NodeStats returns a member's transport statistics.
func (n *Network) NodeStats(name string) Stats {
	if p, ok := n.nodes[name]; ok {
		return p.stats
	}
	return Stats{}
}

// TotalStats aggregates statistics across all members.
func (n *Network) TotalStats() Stats {
	var total Stats
	for _, p := range n.nodes {
		total.Merge(p.stats)
	}
	return total
}

// QueueLen returns the member's current inbound backlog, for tests.
func (n *Network) QueueLen(name string) int {
	if p, ok := n.nodes[name]; ok {
		return p.queued()
	}
	return 0
}

// transmit moves a packet from p toward to: applies loss and latency and
// schedules delivery. It consumes one reference on buf — released on
// every drop path, and after the handler runs for delivered packets —
// so a fan-out caller passes the same buffer once per destination.
func (n *Network) transmit(p *Port, to string, buf *bufpool.Buf, reliable bool) {
	p.stats.MsgsSent++
	p.stats.BytesSent += int64(len(buf.B))

	dst, ok := n.nodes[to]
	if !ok || n.linkFailed(p.id, dst.id) {
		buf.Release()
		return
	}
	if !reliable && n.opts.Loss > 0 && n.rng.Float64() < n.opts.Loss {
		dst.stats.DropsLoss++
		buf.Release()
		return
	}
	fault, haveFault := LinkFault{}, false
	if len(n.linkFaults) > 0 {
		fault, haveFault = n.linkFaults[[2]int32{p.id, dst.id}]
	}
	// The base delay is drawn before any fault intervention, so a
	// fault-dropped packet still consumes exactly the draw it would
	// have in a fault-free run — installing faults never shifts the
	// base RNG stream of unaffected traffic.
	delay := n.baseDelay(p.name, to)
	if haveFault {
		if !reliable && fault.Loss > 0 && n.faultRNG.Float64() < fault.Loss {
			dst.stats.DropsFault++
			buf.Release()
			return
		}
		// Duplication applies to unreliable traffic only: a TCP receiver
		// discards duplicate segments, so the application never sees
		// them. Reordering applies to reliable traffic too — TCP masks
		// loss and duplication but cannot mask delay (head-of-line
		// blocking on a retransmitted segment). The duplicate shares the
		// original's refcounted buffer instead of copying it; delivery is
		// read-only, so both arrivals can hand out the same bytes.
		if !reliable && fault.Duplicate > 0 && n.faultRNG.Float64() < fault.Duplicate {
			dst.stats.Duplicated++
			n.deliverAfter(dst, p.name, buf.Acquire(), n.sampleDelay(p.name, to, n.faultRNG))
		}
		if fault.Reorder > 0 && n.faultRNG.Float64() < fault.Reorder {
			dst.stats.Reordered++
			delay += fault.reorderDelay().sample(n.faultRNG)
		}
	}
	n.deliverAfter(dst, p.name, buf, delay)
}

// baseDelay draws the base one-way delay for one packet from the
// network's own RNG, through the prefetch batch when it is active. The
// batch consumes the identical draw sequence — same model, same RNG,
// same order — so runs are byte-identical with and without it.
func (n *Network) baseDelay(from, to string) time.Duration {
	if n.delayBatch == nil {
		return n.sampleDelay(from, to, n.rng)
	}
	if n.delayPos == len(n.delayBatch) {
		for i := range n.delayBatch {
			n.delayBatch[i] = n.opts.Latency(n.rng)
		}
		n.delayPos = 0
	}
	d := n.delayBatch[n.delayPos]
	n.delayPos++
	return d
}

// sampleDelay draws a one-way delay for a packet from the given model:
// the zone topology when configured, the flat latency model otherwise.
func (n *Network) sampleDelay(from, to string, rng *rand.Rand) time.Duration {
	if n.opts.Topology != nil {
		return n.opts.Topology.Sample(from, to, rng)
	}
	return n.opts.Latency(rng)
}

// deliverAfter schedules a packet's arrival at dst, taking ownership of
// buf. The destination may have been detached (and possibly replaced)
// while the packet was in flight; such packets are dropped on delivery.
// Delivery rides a pooled scheduler event with a pooled payload — no
// allocation per packet in steady state.
func (n *Network) deliverAfter(dst *Port, from string, buf *bufpool.Buf, delay time.Duration) {
	var d *delivery
	if k := len(n.freeDeliveries); k > 0 {
		d = n.freeDeliveries[k-1]
		n.freeDeliveries[k-1] = nil
		n.freeDeliveries = n.freeDeliveries[:k-1]
	} else {
		d = &delivery{net: n}
	}
	d.dst, d.from, d.buf = dst, from, buf
	n.sched.scheduleArg(delay, runDelivery, d)
}

// LocalAddr returns the member's address (its name; the simulation uses
// a flat namespace).
func (p *Port) LocalAddr() string { return p.name }

// SendPacket sends payload to the named member. The payload is copied
// into a pooled buffer immediately (the caller's buffer is only valid
// for the duration of the call). While the sender is gated the packet is
// held in the outbox and transmitted on wake, which models a process
// blocked immediately before sending (§V-D). reliable marks TCP-modelled
// traffic, exempt from random loss.
func (p *Port) SendPacket(to string, payload []byte, reliable bool) error {
	buf := bufpool.Copy(payload)
	if p.gated {
		p.outbox = append(p.outbox, outPacket{to: to, buf: buf, reliable: reliable})
		return nil
	}
	p.net.transmit(p, to, buf, reliable)
	return nil
}

// SendPacketFanout sends the same payload to every named member,
// copying it into a pooled buffer exactly once: each destination holds
// one reference on the shared buffer, consumed on its own drop or
// delivery path, so an n-way gossip fan-out costs one copy instead of
// n. Loss, faults and latency still apply per destination, drawing the
// RNG in addrs order — the sequence of draws is identical to n
// consecutive SendPacket calls. Implements core.FanoutTransport.
func (p *Port) SendPacketFanout(addrs []string, payload []byte, reliable bool) error {
	if len(addrs) == 0 {
		return nil
	}
	buf := bufpool.Copy(payload)
	for i := 1; i < len(addrs); i++ {
		buf.Acquire()
	}
	if p.gated {
		for _, to := range addrs {
			p.outbox = append(p.outbox, outPacket{to: to, buf: buf, reliable: reliable})
		}
		return nil
	}
	for _, to := range addrs {
		p.net.transmit(p, to, buf, reliable)
	}
	return nil
}

// queued returns the inbound backlog length.
func (p *Port) queued() int { return len(p.inbox) - p.inHead }

// receive enqueues an inbound packet, tail-dropping on overflow, and
// kicks the service loop if the member is neither gated nor already
// serving. A member paused in PauseDrop mode discards inbound outright.
func (p *Port) receive(from string, buf *bufpool.Buf) {
	if p.dropInbound {
		p.stats.DropsFault++
		buf.Release()
		return
	}
	if p.queued() >= p.net.opts.QueueCap {
		p.stats.DropsOverflow++
		buf.Release()
		return
	}
	p.inbox = append(p.inbox, inPacket{from: from, buf: buf})
	p.maybeServe()
}

// maybeServe schedules processing of the next queued packet. A
// degraded member pays an extra per-packet delay on top of ServiceTime,
// so its effective service rate drops and a backlog builds — the
// paper's slow-member condition.
func (p *Port) maybeServe() {
	if p.serving || p.gated || p.queued() == 0 {
		return
	}
	p.serving = true
	d := p.net.opts.ServiceTime
	if !p.degrade.IsZero() {
		d += p.degrade.sample(p.net.faultRNG)
	}
	p.net.sched.scheduleArg(d, servePort, p)
}

// serveOne processes the head-of-line packet. If the member was gated
// after the service completion was scheduled, the packet stays queued
// (the handler is what blocks, after the kernel handed the packet over —
// close enough at this resolution).
func (p *Port) serveOne() {
	p.serving = false
	if p.gated || p.queued() == 0 {
		return
	}
	pkt := p.inbox[p.inHead]
	// Zero the vacated slot so the pooled buffer is not pinned, and
	// advance the head instead of shifting the queue.
	p.inbox[p.inHead] = inPacket{}
	p.inHead++
	if p.inHead == len(p.inbox) {
		// Drained: reclaim the whole array (capacity retained).
		p.inbox = p.inbox[:0]
		p.inHead = 0
	} else if p.inHead >= p.net.opts.QueueCap {
		// The dead prefix has outgrown the queue cap; compact so the
		// backing array stays bounded by ~2× the cap. Amortized O(1):
		// at least QueueCap packets were served since the last compact.
		k := copy(p.inbox, p.inbox[p.inHead:])
		for i := k; i < len(p.inbox); i++ {
			p.inbox[i] = inPacket{}
		}
		p.inbox = p.inbox[:k]
		p.inHead = 0
	}
	p.stats.MsgsDelivered++
	p.handler(pkt.from, pkt.buf.B)
	pkt.buf.Release()
	p.maybeServe()
}
