package sim

import (
	"fmt"
	"math/rand"
	"testing"
	"time"
)

type rig struct {
	sched *Scheduler
	net   *Network
}

func newRig(t *testing.T, opts Options) *rig {
	t.Helper()
	sched := NewScheduler(time.Unix(0, 0))
	return &rig{sched: sched, net: NewNetwork(sched, opts)}
}

// attach registers a member that records deliveries.
func (r *rig) attach(t *testing.T, name string) (*Port, *[]string) {
	t.Helper()
	var got []string
	p, err := r.net.Attach(name, func(from string, payload []byte) {
		got = append(got, from+":"+string(payload))
	})
	if err != nil {
		t.Fatal(err)
	}
	// The closure appends to the slice it captured; return a pointer to
	// observe it.
	return p, &got
}

func TestDeliveryBasics(t *testing.T) {
	r := newRig(t, Options{})
	a, _ := r.attach(t, "a")
	_, bGot := r.attach(t, "b")

	if err := a.SendPacket("b", []byte("hello"), false); err != nil {
		t.Fatal(err)
	}
	r.sched.RunFor(time.Second)
	if len(*bGot) != 1 || (*bGot)[0] != "a:hello" {
		t.Fatalf("b got %v", *bGot)
	}

	stats := r.net.NodeStats("a")
	if stats.MsgsSent != 1 || stats.BytesSent != 5 {
		t.Errorf("a stats: %+v", stats)
	}
	if got := r.net.NodeStats("b"); got.MsgsDelivered != 1 {
		t.Errorf("b stats: %+v", got)
	}
}

func TestDeliveryLatencyWithinModel(t *testing.T) {
	r := newRig(t, Options{Latency: UniformLatency(5*time.Millisecond, 10*time.Millisecond)})
	a, _ := r.attach(t, "a")
	var at time.Time
	_, err := r.net.Attach("b", func(string, []byte) { at = r.sched.Now() })
	if err != nil {
		t.Fatal(err)
	}
	a.SendPacket("b", []byte("x"), false)
	r.sched.RunFor(time.Second)
	d := at.Sub(time.Unix(0, 0))
	// Latency plus one service interval.
	if d < 5*time.Millisecond || d > 11*time.Millisecond {
		t.Errorf("delivery at %v, want within [5ms, 11ms]", d)
	}
}

func TestUnknownDestinationCountsSendOnly(t *testing.T) {
	r := newRig(t, Options{})
	a, _ := r.attach(t, "a")
	if err := a.SendPacket("ghost", []byte("x"), false); err != nil {
		t.Fatal(err)
	}
	r.sched.RunFor(time.Second)
	if got := r.net.NodeStats("a").MsgsSent; got != 1 {
		t.Errorf("msgs sent = %d", got)
	}
}

func TestLossDropsUnreliableOnly(t *testing.T) {
	r := newRig(t, Options{Loss: 1.0})
	a, _ := r.attach(t, "a")
	_, bGot := r.attach(t, "b")

	a.SendPacket("b", []byte("udp"), false)
	a.SendPacket("b", []byte("tcp"), true)
	r.sched.RunFor(time.Second)

	if len(*bGot) != 1 || (*bGot)[0] != "a:tcp" {
		t.Fatalf("b got %v, want only the reliable packet", *bGot)
	}
	if got := r.net.NodeStats("b").DropsLoss; got != 1 {
		t.Errorf("loss drops = %d", got)
	}
}

func TestQueueCapTailDrop(t *testing.T) {
	// A gated member's queue fills; the newest packets are dropped. The
	// survivor set must be the oldest (tail drop) — this is what buries
	// a late refutation behind an early stale suspicion.
	r := newRig(t, Options{QueueCap: 3, ServiceTime: time.Millisecond})
	a, _ := r.attach(t, "a")
	_, bGot := r.attach(t, "b")

	r.net.SetGated("b", true)
	for i := 0; i < 6; i++ {
		a.SendPacket("b", []byte{byte('0' + i)}, false)
		r.sched.RunFor(10 * time.Millisecond) // deliver one at a time
	}
	if got := r.net.QueueLen("b"); got != 3 {
		t.Fatalf("queue len = %d, want 3", got)
	}
	if got := r.net.NodeStats("b").DropsOverflow; got != 3 {
		t.Fatalf("overflow drops = %d, want 3", got)
	}

	r.net.SetGated("b", false)
	r.sched.RunFor(time.Second)
	if len(*bGot) != 3 {
		t.Fatalf("b got %d packets, want 3", len(*bGot))
	}
	for i, want := range []string{"a:0", "a:1", "a:2"} {
		if (*bGot)[i] != want {
			t.Errorf("packet %d = %q, want %q (oldest must survive)", i, (*bGot)[i], want)
		}
	}
}

func TestGatedSendsHoldInOutbox(t *testing.T) {
	r := newRig(t, Options{})
	a, _ := r.attach(t, "a")
	_, bGot := r.attach(t, "b")

	r.net.SetGated("a", true)
	a.SendPacket("b", []byte("held"), false)
	r.sched.RunFor(time.Second)
	if len(*bGot) != 0 {
		t.Fatal("packet escaped a gated sender")
	}
	// Stats count at transmit time, not enqueue time.
	if got := r.net.NodeStats("a").MsgsSent; got != 0 {
		t.Errorf("gated sender already counted %d sends", got)
	}

	r.net.SetGated("a", false)
	r.sched.RunFor(time.Second)
	if len(*bGot) != 1 || (*bGot)[0] != "a:held" {
		t.Fatalf("b got %v after release", *bGot)
	}
	if got := r.net.NodeStats("a").MsgsSent; got != 1 {
		t.Errorf("sends after release = %d", got)
	}
}

func TestGatedProcessingPausesAndResumes(t *testing.T) {
	r := newRig(t, Options{ServiceTime: time.Millisecond})
	a, _ := r.attach(t, "a")
	_, bGot := r.attach(t, "b")

	r.net.SetGated("b", true)
	for i := 0; i < 5; i++ {
		a.SendPacket("b", []byte{byte('0' + i)}, false)
	}
	r.sched.RunFor(10 * time.Second)
	if len(*bGot) != 0 {
		t.Fatal("gated member processed packets")
	}
	if got := r.net.QueueLen("b"); got != 5 {
		t.Fatalf("queue len = %d", got)
	}

	r.net.SetGated("b", false)
	// Service rate: 1 ms per message → all 5 within ~6 ms.
	r.sched.RunFor(3 * time.Millisecond)
	if got := len(*bGot); got == 0 || got == 5 {
		t.Fatalf("drain not rate-limited: %d processed after 3ms", got)
	}
	r.sched.RunFor(10 * time.Millisecond)
	if len(*bGot) != 5 {
		t.Fatalf("backlog not fully drained: %d", len(*bGot))
	}
}

func TestWakeCallbacksRunOnRelease(t *testing.T) {
	r := newRig(t, Options{})
	r.attach(t, "a")
	wakes := 0
	r.net.OnWake("a", func() { wakes++ })

	r.net.SetGated("a", true)
	if wakes != 0 {
		t.Fatal("wake ran on gating")
	}
	r.net.SetGated("a", false)
	if wakes != 1 {
		t.Fatalf("wakes = %d, want 1", wakes)
	}
	// Redundant releases do not re-fire.
	r.net.SetGated("a", false)
	if wakes != 1 {
		t.Fatalf("wakes = %d after redundant release", wakes)
	}
}

func TestWakeOrderOutboxBeforeCallbacksBeforeDrain(t *testing.T) {
	// On release: held sends flush first, then wake callbacks, then the
	// backlog drains at the service rate (DESIGN.md §2.1).
	r := newRig(t, Options{ServiceTime: time.Millisecond})
	a, _ := r.attach(t, "a")
	b, _ := r.attach(t, "b")

	var order []string
	r.net.Attach("obs", func(from string, payload []byte) {
		order = append(order, "delivered:"+string(payload))
	})
	r.net.OnWake("a", func() { order = append(order, "wake") })

	r.net.SetGated("a", true)
	a.SendPacket("obs", []byte("held-send"), false)
	b.SendPacket("a", []byte("inbound"), false)
	r.sched.RunFor(time.Second)

	_, err := r.net.Attach("probe", func(string, []byte) {})
	if err != nil {
		t.Fatal(err)
	}
	r.net.SetGated("a", false)
	// The held send is back in flight (latency applies); wake callbacks
	// already ran synchronously.
	if len(order) != 1 || order[0] != "wake" {
		t.Fatalf("order after release = %v", order)
	}
	r.sched.RunFor(time.Second)
	if len(order) != 2 || order[1] != "delivered:held-send" {
		t.Fatalf("final order = %v", order)
	}
}

func TestFailLinkIsDirectional(t *testing.T) {
	r := newRig(t, Options{})
	a, aGot := r.attach(t, "a")
	b, bGot := r.attach(t, "b")

	r.net.FailLink("a", "b", true)
	a.SendPacket("b", []byte("x"), false)
	b.SendPacket("a", []byte("y"), false)
	r.sched.RunFor(time.Second)

	if len(*bGot) != 0 {
		t.Error("packet crossed failed link")
	}
	if len(*aGot) != 1 {
		t.Error("reverse direction affected")
	}

	r.net.FailLink("a", "b", false)
	a.SendPacket("b", []byte("z"), false)
	r.sched.RunFor(time.Second)
	if len(*bGot) != 1 {
		t.Error("link did not heal")
	}
}

func TestAttachRejectsDuplicatesAndNilHandler(t *testing.T) {
	r := newRig(t, Options{})
	r.attach(t, "a")
	if _, err := r.net.Attach("a", func(string, []byte) {}); err == nil {
		t.Error("duplicate attach accepted")
	}
	if _, err := r.net.Attach("x", nil); err == nil {
		t.Error("nil handler accepted")
	}
}

func TestDetachDropsInFlight(t *testing.T) {
	r := newRig(t, Options{})
	a, _ := r.attach(t, "a")
	_, bGot := r.attach(t, "b")
	a.SendPacket("b", []byte("x"), false)
	r.net.Detach("b")
	r.sched.RunFor(time.Second)
	if len(*bGot) != 0 {
		t.Error("packet delivered to detached member")
	}
}

func TestDeterministicReplay(t *testing.T) {
	// Two networks with the same seed and workload must produce
	// identical delivery traces.
	run := func() []string {
		sched := NewScheduler(time.Unix(0, 0))
		network := NewNetwork(sched, Options{Seed: 99, Loss: 0.2})
		var trace []string
		ports := make([]*Port, 4)
		for i := range ports {
			name := fmt.Sprintf("n%d", i)
			p, err := network.Attach(name, func(from string, payload []byte) {
				trace = append(trace, fmt.Sprintf("%v %s<-%s %s", sched.Now().UnixNano(), name, from, payload))
			})
			if err != nil {
				t.Fatal(err)
			}
			ports[i] = p
		}
		for round := 0; round < 50; round++ {
			src := ports[round%4]
			dst := fmt.Sprintf("n%d", (round+1)%4)
			src.SendPacket(dst, []byte{byte(round)}, false)
			sched.RunFor(10 * time.Millisecond)
		}
		return trace
	}
	t1, t2 := run(), run()
	if len(t1) != len(t2) {
		t.Fatalf("trace lengths differ: %d vs %d", len(t1), len(t2))
	}
	for i := range t1 {
		if t1[i] != t2[i] {
			t.Fatalf("traces diverge at %d: %q vs %q", i, t1[i], t2[i])
		}
	}
}

func TestTotalStats(t *testing.T) {
	r := newRig(t, Options{})
	a, _ := r.attach(t, "a")
	b, _ := r.attach(t, "b")
	a.SendPacket("b", []byte("12345"), false)
	b.SendPacket("a", []byte("123"), false)
	r.sched.RunFor(time.Second)
	total := r.net.TotalStats()
	if total.MsgsSent != 2 || total.BytesSent != 8 || total.MsgsDelivered != 2 {
		t.Errorf("total = %+v", total)
	}
}

func TestUniformLatencyBounds(t *testing.T) {
	m := UniformLatency(2*time.Millisecond, 7*time.Millisecond)
	rng := newTestRand()
	for i := 0; i < 1000; i++ {
		d := m(rng)
		if d < 2*time.Millisecond || d >= 7*time.Millisecond {
			t.Fatalf("latency %v out of [2ms, 7ms)", d)
		}
	}
	// Degenerate: max < min collapses to min.
	fixed := UniformLatency(5*time.Millisecond, time.Millisecond)
	if d := fixed(rng); d != 5*time.Millisecond {
		t.Errorf("degenerate latency %v", d)
	}
}

func newTestRand() *rand.Rand { return rand.New(rand.NewSource(7)) }
