package sim

import (
	"fmt"
	"math/rand"
	"testing"
	"time"
)

// The calendar queue must be observationally identical to the heap
// backend: same callback order, same virtual timestamps, same Len and
// Executed counts, under randomized workloads that mix schedules,
// cancellations, re-entrant scheduling and horizon-bounded runs. This
// is the differential-test pattern from the broadcast queue's
// TestQueueMatchesSeedImplementation: the seed implementation is the
// oracle.

// schedTrace drives one scheduler through a deterministic randomized
// workload and records every observable: callback identity, the virtual
// time it ran at, and periodic Len/Now snapshots.
func schedTrace(t *testing.T, backend Backend, seed int64) []string {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	start := time.Unix(0, 0)
	s := NewSchedulerBackend(start, backend)
	var trace []string
	record := func(id int) {
		trace = append(trace, fmt.Sprintf("%d@%d", id, s.Now().UnixNano()))
	}

	var pending []*Event
	id := 0
	schedule := func(d time.Duration) {
		eid := id
		id++
		// Mix the three scheduling surfaces: Schedule, ScheduleAt and the
		// pooled no-handle scheduleArg.
		switch rng.Intn(3) {
		case 0:
			pending = append(pending, s.Schedule(d, func() { record(eid) }))
		case 1:
			pending = append(pending, s.ScheduleAt(s.Now().Add(d), func() { record(eid) }))
		default:
			s.scheduleArg(d, func(a any) { record(a.(int)) }, eid)
		}
	}

	// Delays spanning six orders of magnitude, including same-instant
	// bursts (d=0) and far-future outliers that ride wheel rotations.
	randDelay := func() time.Duration {
		switch rng.Intn(10) {
		case 0:
			return 0
		case 1:
			return time.Duration(rng.Int63n(int64(time.Microsecond)))
		case 2:
			return time.Duration(rng.Int63n(int64(10 * time.Second)))
		default:
			return time.Duration(rng.Int63n(int64(50 * time.Millisecond)))
		}
	}

	for round := 0; round < 200; round++ {
		for i, n := 0, rng.Intn(20); i < n; i++ {
			schedule(randDelay())
		}
		// Cancel a random subset of the handles we still hold.
		for i, n := 0, rng.Intn(4); i < n && len(pending) > 0; i++ {
			j := rng.Intn(len(pending))
			pending[j].Stop()
			pending[j] = pending[len(pending)-1]
			pending = pending[:len(pending)-1]
		}
		switch rng.Intn(3) {
		case 0:
			for i, n := 0, rng.Intn(10); i < n; i++ {
				s.Step()
			}
		case 1:
			s.RunFor(time.Duration(rng.Int63n(int64(100 * time.Millisecond))))
		default:
			s.RunUntil(s.Now().Add(time.Duration(rng.Int63n(int64(time.Second)))))
		}
		// Len is deliberately absent from the trace: it counts cancelled
		// events not yet discarded, and the two backends discard at
		// different moments (documented in eventQueue).
		trace = append(trace, fmt.Sprintf("now=%d exec=%d", s.Now().UnixNano(), s.Executed()))
	}
	s.Drain(1 << 20)
	trace = append(trace, fmt.Sprintf("final now=%d exec=%d", s.Now().UnixNano(), s.Executed()))
	return trace
}

func TestCalendarMatchesHeapBackend(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		heap := schedTrace(t, BackendHeap, seed)
		cal := schedTrace(t, BackendCalendar, seed)
		if len(heap) != len(cal) {
			t.Fatalf("seed %d: trace length %d (heap) vs %d (calendar)", seed, len(heap), len(cal))
		}
		for i := range heap {
			if heap[i] != cal[i] {
				t.Fatalf("seed %d: trace diverges at %d: heap %q vs calendar %q", seed, i, heap[i], cal[i])
			}
		}
	}
}

// TestCalendarZeroDelayBurst piles many same-instant events into one
// bucket and checks strict FIFO order.
func TestCalendarZeroDelayBurst(t *testing.T) {
	s := NewScheduler(time.Unix(0, 0))
	var got []int
	for i := 0; i < 500; i++ {
		i := i
		s.Schedule(0, func() { got = append(got, i) })
	}
	s.RunFor(time.Nanosecond)
	if len(got) != 500 {
		t.Fatalf("ran %d of 500 zero-delay events", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("zero-delay order broken at %d: got %d", i, v)
		}
	}
}

// TestCalendarFarFutureEvent schedules an event many wheel rotations
// ahead of a dense near-term workload: the year check must skip it until
// its rotation arrives, and the sparse-queue sweep must find it once the
// near-term work has drained.
func TestCalendarFarFutureEvent(t *testing.T) {
	s := NewScheduler(time.Unix(0, 0))
	var order []string
	s.Schedule(1000*time.Hour, func() { order = append(order, "far") })
	for i := 0; i < 200; i++ {
		s.Schedule(time.Duration(i)*time.Millisecond, func() { order = append(order, "near") })
	}
	s.RunFor(time.Second)
	if len(order) != 200 || order[0] != "near" {
		t.Fatalf("near-term events did not all run first: %d ran", len(order))
	}
	if s.Len() != 1 {
		t.Fatalf("far-future event missing from queue: Len=%d", s.Len())
	}
	s.RunFor(2000 * time.Hour)
	if len(order) != 201 || order[200] != "far" {
		t.Fatalf("far-future event did not run after the wheel caught up")
	}
	if got := s.Now().Sub(time.Unix(0, 0)); got < 1000*time.Hour {
		t.Fatalf("clock did not advance past the far event: %v", got)
	}
}

// TestCalendarCancelledDiscard cancels events both before and after the
// wheel has rotated over their slot, and checks Len converges to zero
// without running any of them.
func TestCalendarCancelledDiscard(t *testing.T) {
	s := NewScheduler(time.Unix(0, 0))
	ran := 0
	var evs []*Event
	for i := 0; i < 100; i++ {
		evs = append(evs, s.Schedule(time.Duration(i)*time.Millisecond, func() { ran++ }))
	}
	for _, e := range evs {
		if !e.Stop() {
			t.Fatal("Stop on a pending event reported false")
		}
	}
	for _, e := range evs {
		if e.Stop() {
			t.Fatal("second Stop reported true")
		}
	}
	s.RunFor(time.Second)
	if ran != 0 {
		t.Fatalf("%d cancelled events ran", ran)
	}
	if s.Len() != 0 {
		t.Fatalf("cancelled events left in queue: Len=%d", s.Len())
	}
	if s.Step() {
		t.Fatal("Step on a drained queue reported work")
	}
}

// TestCalendarMonotonicUnderResize forces the wheel through repeated
// grows and shrinks (bursts of inserts, then drains) and asserts
// callback time never regresses.
func TestCalendarMonotonicUnderResize(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := NewScheduler(time.Unix(0, 0))
	last := int64(-1)
	check := func() {
		now := s.Now().UnixNano()
		if now < last {
			t.Fatalf("clock regressed: %d after %d", now, last)
		}
		last = now
	}
	for round := 0; round < 30; round++ {
		// Burst far past the grow threshold, with delays at wildly mixed
		// scales so resize re-measures the width each time.
		for i := 0; i < 300; i++ {
			var d time.Duration
			if i%7 == 0 {
				d = time.Duration(rng.Int63n(int64(10 * time.Second)))
			} else {
				d = time.Duration(rng.Int63n(int64(time.Millisecond)))
			}
			s.Schedule(d, check)
		}
		// Drain most of it so the shrink path triggers too.
		s.Drain(290)
	}
	s.Drain(1 << 20)
	if s.Len() != 0 {
		t.Fatalf("queue not drained: Len=%d", s.Len())
	}
}

// BenchmarkSchedulerInsertPop measures one schedule+pop cycle against a
// standing backlog of pending events, for both backends: the heap pays
// O(log n) sift costs that grow with the backlog, the calendar queue
// stays flat.
func BenchmarkSchedulerInsertPop(b *testing.B) {
	for _, backend := range []struct {
		name string
		b    Backend
	}{{"calendar", BackendCalendar}, {"heap", BackendHeap}} {
		for _, pending := range []int{1000, 100000} {
			b.Run(fmt.Sprintf("%s/pending=%d", backend.name, pending), func(b *testing.B) {
				rng := rand.New(rand.NewSource(1))
				s := NewSchedulerBackend(time.Unix(0, 0), backend.b)
				fn := func(any) {}
				for i := 0; i < pending; i++ {
					s.scheduleArg(time.Duration(rng.Int63n(int64(time.Second))), fn, nil)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					s.scheduleArg(time.Duration(rng.Int63n(int64(time.Second))), fn, nil)
					s.Step()
				}
			})
		}
	}
}

// BenchmarkNetworkDeliver measures the full per-packet path — transmit,
// delay draw, delivery event, service event, handler — across a mesh of
// members under both scheduler backends.
func BenchmarkNetworkDeliver(b *testing.B) {
	for _, backend := range []struct {
		name string
		b    Backend
	}{{"calendar", BackendCalendar}, {"heap", BackendHeap}} {
		b.Run(backend.name, func(b *testing.B) {
			sched := NewSchedulerBackend(time.Unix(0, 0), backend.b)
			net := NewNetwork(sched, Options{
				Seed:        1,
				Latency:     UniformLatency(200*time.Microsecond, 2*time.Millisecond),
				ServiceTime: 50 * time.Microsecond,
			})
			const members = 16
			ports := make([]*Port, members)
			received := 0
			for i := 0; i < members; i++ {
				name := fmt.Sprintf("m%d", i)
				p, err := net.Attach(name, func(string, []byte) { received++ })
				if err != nil {
					b.Fatal(err)
				}
				ports[i] = p
			}
			payload := make([]byte, 64)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				src := ports[i%members]
				dst := fmt.Sprintf("m%d", (i+1+i/members)%members)
				if err := src.SendPacket(dst, payload, false); err != nil {
					b.Fatal(err)
				}
				if i%64 == 63 {
					sched.RunFor(5 * time.Millisecond)
				}
			}
			sched.RunFor(time.Second)
			if received == 0 {
				b.Fatal("no packets delivered")
			}
		})
	}
}
