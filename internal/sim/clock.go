package sim

import (
	"time"

	"lifeguard/internal/timeutil"
)

// Clock adapts a Scheduler to the timeutil.Clock interface consumed by
// the protocol core. Timer callbacks run synchronously on the event loop.
type Clock struct {
	sched *Scheduler
}

var _ timeutil.Clock = (*Clock)(nil)

// NewClock returns a virtual clock driven by sched.
func NewClock(sched *Scheduler) *Clock {
	return &Clock{sched: sched}
}

// Now implements timeutil.Clock.
func (c *Clock) Now() time.Time { return c.sched.Now() }

// AfterFunc implements timeutil.Clock.
func (c *Clock) AfterFunc(d time.Duration, f func()) timeutil.Timer {
	return c.sched.Schedule(d, f)
}
