// Package sim provides the discrete-event substrate the paper's
// experiments run on: a virtual-time scheduler, a Clock implementation
// for the protocol core, and a simulated network with per-member anomaly
// gates that reproduce the paper's "block before sending / after
// receiving" slow-processing model (§V-D), including the parts of a real
// memberlist process that keep running while blocked (timers) and the
// parts that do not (inbound message processing, sends).
package sim

import (
	"time"
)

// Event is a scheduled callback. It can be cancelled before it runs.
type Event struct {
	// at is the event's virtual time in nanoseconds since the
	// scheduler's epoch; seq is its schedule order, the same-instant
	// tie-break. Together they are the total execution order, identical
	// under every queue backend.
	at  int64
	seq uint64

	// fn is the callback. Pooled events use the closure-free fnArg/arg
	// pair instead, so the hot packet path allocates nothing per event.
	fn    func()
	fnArg func(any)
	arg   any

	cancelled bool
	done      bool // ran, or discarded after cancellation

	// pooled marks events owned by the scheduler's free list: scheduled
	// through scheduleArg, never handed out, recycled after they run.
	pooled bool

	// index is the event's heap position, used only by the heap backend.
	index int
}

// Stop cancels the event. It reports whether the event was still pending.
func (e *Event) Stop() bool {
	if e == nil || e.cancelled || e.done {
		return false
	}
	e.cancelled = true
	return true
}

// eventLess is the scheduler's total order: time, then schedule order.
func eventLess(a, b *Event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// eventQueue is the pending-event set behind a Scheduler. push accepts
// any event with at not before the last popped time; pop removes and
// returns the earliest live event by (at, seq), discarding cancelled
// events as it finds them, and returns nil when nothing is pending.
// len includes cancelled events not yet discarded.
type eventQueue interface {
	push(e *Event)
	pop() *Event
	len() int
}

// Backend selects a Scheduler's pending-event queue implementation.
type Backend int

const (
	// BackendCalendar is the default: a bucketed calendar queue (a
	// timing wheel with a year check and automatic resizing), O(1)
	// amortized insert and pop at simulator event densities.
	BackendCalendar Backend = iota

	// BackendHeap is the seed container/heap implementation, kept as
	// the reference for differential tests and as a fallback.
	BackendHeap
)

// Scheduler is a single-threaded discrete-event loop. All protocol logic
// in a simulation runs inside its callbacks; nothing in this package is
// safe for concurrent use, by design (determinism).
type Scheduler struct {
	epoch time.Time
	now   int64 // ns since epoch
	q     eventQueue
	seq   uint64

	// executed counts events run, for diagnostics and runaway guards.
	executed uint64

	// free is the pool of recycled pooled events (see scheduleArg).
	free []*Event
}

// NewScheduler returns a scheduler whose virtual clock starts at start,
// using the default calendar-queue backend.
func NewScheduler(start time.Time) *Scheduler {
	return NewSchedulerBackend(start, BackendCalendar)
}

// NewSchedulerBackend returns a scheduler on an explicit queue backend.
// Every backend produces the identical execution order — (time, then
// schedule order) — so simulations are byte-identical across backends;
// the choice only affects wall-clock speed.
func NewSchedulerBackend(start time.Time, b Backend) *Scheduler {
	s := &Scheduler{epoch: start}
	switch b {
	case BackendHeap:
		s.q = &heapQueue{}
	default:
		s.q = newCalendarQueue()
	}
	return s
}

// Now returns the current virtual time.
func (s *Scheduler) Now() time.Time { return s.epoch.Add(time.Duration(s.now)) }

// Len returns the number of pending events (including cancelled ones not
// yet drained).
func (s *Scheduler) Len() int { return s.q.len() }

// Executed returns the number of events run so far.
func (s *Scheduler) Executed() uint64 { return s.executed }

// Schedule runs fn d from now. Negative d is treated as zero (the event
// runs on the next step, after already-scheduled events for this
// instant).
func (s *Scheduler) Schedule(d time.Duration, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	s.seq++
	e := &Event{at: s.now + int64(d), seq: s.seq, fn: fn}
	s.q.push(e)
	return e
}

// ScheduleAt runs fn at the given virtual time, which must not be before
// Now (it is clamped if it is).
func (s *Scheduler) ScheduleAt(at time.Time, fn func()) *Event {
	rel := int64(at.Sub(s.epoch))
	if rel < s.now {
		rel = s.now
	}
	s.seq++
	e := &Event{at: rel, seq: s.seq, fn: fn}
	s.q.push(e)
	return e
}

// scheduleArg runs fn(arg) d from now on a pooled event: no Event and no
// closure are allocated in steady state. Pooled events cannot be
// cancelled — no handle is returned — which is exactly what the network's
// per-packet delivery and service events need.
func (s *Scheduler) scheduleArg(d time.Duration, fn func(any), arg any) {
	if d < 0 {
		d = 0
	}
	var e *Event
	if n := len(s.free); n > 0 {
		e = s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
	} else {
		e = &Event{pooled: true}
	}
	s.seq++
	e.at, e.seq, e.fnArg, e.arg = s.now+int64(d), s.seq, fn, arg
	s.q.push(e)
}

// runEvent executes a popped live event. Pooled events are recycled
// before the callback runs, so a callback that schedules new work can
// reuse the event it came from.
func (s *Scheduler) runEvent(e *Event) {
	e.done = true
	if e.pooled {
		fn, arg := e.fnArg, e.arg
		e.fnArg, e.arg, e.done, e.cancelled = nil, nil, false, false
		s.free = append(s.free, e)
		fn(arg)
		return
	}
	if e.fnArg != nil {
		e.fnArg(e.arg)
		return
	}
	e.fn()
}

// Step runs the next pending event, advancing virtual time to it. It
// reports whether an event was run (false when the queue is empty).
func (s *Scheduler) Step() bool {
	e := s.q.pop()
	if e == nil {
		return false
	}
	s.now = e.at
	s.executed++
	s.runEvent(e)
	return true
}

// RunUntil runs every event scheduled at or before t, then sets the
// virtual clock to t.
func (s *Scheduler) RunUntil(t time.Time) {
	rel := int64(t.Sub(s.epoch))
	for {
		e := s.q.pop()
		if e == nil {
			break
		}
		if e.at > rel {
			// Past the horizon: put it back. (at, seq) are unchanged, so
			// the queue order is exactly as if it had never been popped.
			s.q.push(e)
			break
		}
		s.now = e.at
		s.executed++
		s.runEvent(e)
	}
	if s.now < rel {
		s.now = rel
	}
}

// RunFor advances the simulation by d.
func (s *Scheduler) RunFor(d time.Duration) {
	s.RunUntil(s.Now().Add(d))
}

// Drain runs events until the queue is empty or limit events have run,
// whichever comes first. It returns the number of events run. Useful in
// tests that want quiescence.
func (s *Scheduler) Drain(limit int) int {
	n := 0
	for n < limit && s.Step() {
		n++
	}
	return n
}
