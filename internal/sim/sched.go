// Package sim provides the discrete-event substrate the paper's
// experiments run on: a virtual-time scheduler, a Clock implementation
// for the protocol core, and a simulated network with per-member anomaly
// gates that reproduce the paper's "block before sending / after
// receiving" slow-processing model (§V-D), including the parts of a real
// memberlist process that keep running while blocked (timers) and the
// parts that do not (inbound message processing, sends).
package sim

import (
	"container/heap"
	"time"
)

// Event is a scheduled callback. It can be cancelled before it runs.
type Event struct {
	at        time.Time
	seq       uint64
	fn        func()
	cancelled bool
	index     int // heap index, -1 once popped
}

// Stop cancels the event. It reports whether the event was still pending.
func (e *Event) Stop() bool {
	if e == nil || e.cancelled || e.index == -2 {
		return false
	}
	e.cancelled = true
	return true
}

// eventHeap orders events by time, then by scheduling order.
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if !h[i].at.Equal(h[j].at) {
		return h[i].at.Before(h[j].at)
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -2
	*h = old[:n-1]
	return e
}

// Scheduler is a single-threaded discrete-event loop. All protocol logic
// in a simulation runs inside its callbacks; nothing in this package is
// safe for concurrent use, by design (determinism).
type Scheduler struct {
	now  time.Time
	heap eventHeap
	seq  uint64

	// executed counts events run, for diagnostics and runaway guards.
	executed uint64
}

// NewScheduler returns a scheduler whose virtual clock starts at start.
func NewScheduler(start time.Time) *Scheduler {
	return &Scheduler{now: start}
}

// Now returns the current virtual time.
func (s *Scheduler) Now() time.Time { return s.now }

// Len returns the number of pending events (including cancelled ones not
// yet drained).
func (s *Scheduler) Len() int { return len(s.heap) }

// Executed returns the number of events run so far.
func (s *Scheduler) Executed() uint64 { return s.executed }

// Schedule runs fn d from now. Negative d is treated as zero (the event
// runs on the next step, after already-scheduled events for this
// instant).
func (s *Scheduler) Schedule(d time.Duration, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return s.ScheduleAt(s.now.Add(d), fn)
}

// ScheduleAt runs fn at the given virtual time, which must not be before
// Now (it is clamped if it is).
func (s *Scheduler) ScheduleAt(at time.Time, fn func()) *Event {
	if at.Before(s.now) {
		at = s.now
	}
	s.seq++
	e := &Event{at: at, seq: s.seq, fn: fn}
	heap.Push(&s.heap, e)
	return e
}

// Step runs the next pending event, advancing virtual time to it. It
// reports whether an event was run (false when the queue is empty).
func (s *Scheduler) Step() bool {
	for len(s.heap) > 0 {
		e := heap.Pop(&s.heap).(*Event)
		if e.cancelled {
			continue
		}
		s.now = e.at
		s.executed++
		e.fn()
		return true
	}
	return false
}

// RunUntil runs every event scheduled at or before t, then sets the
// virtual clock to t.
func (s *Scheduler) RunUntil(t time.Time) {
	for len(s.heap) > 0 {
		next := s.heap[0]
		if next.cancelled {
			heap.Pop(&s.heap)
			continue
		}
		if next.at.After(t) {
			break
		}
		s.Step()
	}
	if s.now.Before(t) {
		s.now = t
	}
}

// RunFor advances the simulation by d.
func (s *Scheduler) RunFor(d time.Duration) {
	s.RunUntil(s.now.Add(d))
}

// Drain runs events until the queue is empty or limit events have run,
// whichever comes first. It returns the number of events run. Useful in
// tests that want quiescence.
func (s *Scheduler) Drain(limit int) int {
	n := 0
	for n < limit && s.Step() {
		n++
	}
	return n
}
