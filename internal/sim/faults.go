package sim

import (
	"math/rand"
	"time"

	"lifeguard/internal/timeutil"
)

// This file is the fault-injection engine: deterministic, scriptable
// faults layered on top of the simulated network, reproducing the
// degraded-member conditions that motivate Lifeguard (slow message
// processing, process stalls, impaired links) rather than only clean
// crashes. All fault randomness is drawn from a dedicated RNG stream
// (Network.faultRNG), and a fault-dropped packet still consumes the
// base delay draw it would have consumed anyway, so degradation and
// link impairments never perturb the base latency/loss sequence of
// unaffected traffic — a run with an empty schedule is byte-identical
// to a run without one. (Scheduled FailLink partitions share the
// pre-existing partition semantics: packets dropped on a failed link
// consume no draws, like packets to a detached member.)

// DelayDist is a delay distribution: Base plus a uniform random
// addition in [0, Jitter). The zero value means "no delay".
type DelayDist struct {
	// Base is the deterministic part of the delay.
	Base time.Duration

	// Jitter is the width of the uniform random addition to Base.
	Jitter time.Duration
}

// sample draws one delay.
func (d DelayDist) sample(rng *rand.Rand) time.Duration {
	if d.Jitter <= 0 {
		return d.Base
	}
	return d.Base + time.Duration(rng.Int63n(int64(d.Jitter)))
}

// IsZero reports whether the distribution is the zero value (no delay).
func (d DelayDist) IsZero() bool { return d.Base <= 0 && d.Jitter <= 0 }

// PauseMode selects what happens to inbound packets while a member is
// paused.
type PauseMode int

const (
	// PauseBuffer queues inbound packets (subject to QueueCap
	// tail-drop) for processing after resume — a stopped process whose
	// kernel still accepts datagrams. This is the paper's §V-D anomaly
	// model.
	PauseBuffer PauseMode = iota

	// PauseDrop discards inbound packets while paused — the process (or
	// its host) is gone and the packets bounce. A PauseDrop that is
	// never resumed models a hard crash.
	PauseDrop
)

// LinkFault is an injected impairment for one directed member link,
// layered on top of the base latency model, the global Loss setting and
// any zone topology. Reliable (TCP-modelled) packets are exempt from
// Loss and Duplicate — TCP retransmits lost segments and discards
// duplicate ones — but still subject to Reorder, because TCP cannot
// mask delay (head-of-line blocking on a retransmission).
type LinkFault struct {
	// Loss is the probability an unreliable packet on the link is
	// dropped, on top of the network-wide Loss.
	Loss float64

	// Duplicate is the probability an unreliable packet is delivered
	// twice, the second copy with an independent latency draw.
	Duplicate float64

	// Reorder is the probability a packet is held back by an extra
	// ReorderDelay, letting packets sent after it overtake it.
	Reorder float64

	// ReorderDelay is the extra delay for held-back packets. Zero takes
	// DefaultReorderDelay.
	ReorderDelay DelayDist
}

// DefaultReorderDelay is the hold-back applied to reordered packets
// when LinkFault.ReorderDelay is zero: long relative to LAN latency, so
// the held packet is genuinely overtaken.
var DefaultReorderDelay = DelayDist{Base: 10 * time.Millisecond, Jitter: 30 * time.Millisecond}

// reorderDelay resolves the hold-back distribution.
func (f LinkFault) reorderDelay() DelayDist {
	if f.ReorderDelay.IsZero() {
		return DefaultReorderDelay
	}
	return f.ReorderDelay
}

// SetDegraded puts a member into (or adjusts) processing degradation:
// every inbound packet costs an extra draw from d on top of
// ServiceTime, and every timer callback registered through the member's
// NodeClock is deferred by a draw from d when it fires. This models the
// paper's slow member — GC pauses, CPU starvation, a saturated runtime —
// which keeps running but reacts late. A zero d restores healthy
// processing.
func (n *Network) SetDegraded(name string, d DelayDist) {
	if p, ok := n.nodes[name]; ok {
		p.degrade = d
	}
}

// Degraded reports whether the member currently has a processing
// degradation installed.
func (n *Network) Degraded(name string) bool {
	p, ok := n.nodes[name]
	return ok && !p.degrade.IsZero()
}

// Pause stalls a member completely: its protocol loops block (the gate
// reports Blocked), its sends are held in the outbox, and inbound
// packets either queue (PauseBuffer) or are discarded (PauseDrop,
// counted as DropsFault). Pausing a crashed member is a no-op.
func (n *Network) Pause(name string, mode PauseMode) {
	p, ok := n.nodes[name]
	if !ok || p.crashed {
		return
	}
	p.dropInbound = mode == PauseDrop
	n.SetGated(name, true)
}

// Resume releases a paused member: held sends flush, wake callbacks
// run, and any buffered backlog drains at the service rate. Resuming a
// crashed member is a no-op — crashes are sticky.
func (n *Network) Resume(name string) {
	p, ok := n.nodes[name]
	if !ok || p.crashed {
		return
	}
	p.dropInbound = false
	n.SetGated(name, false)
}

// Crash permanently silences a member: inbound is dropped, held sends
// never flush, and every later Pause, Resume or SetGated call on the
// member is ignored — a schedule that flaps a member it also crashes
// cannot accidentally resurrect it. Crashed reports the state.
func (n *Network) Crash(name string) {
	p, ok := n.nodes[name]
	if !ok {
		return
	}
	n.Pause(name, PauseDrop)
	p.crashed = true
}

// Crashed reports whether the member has been permanently crashed.
func (n *Network) Crashed(name string) bool {
	p, ok := n.nodes[name]
	return ok && p.crashed
}

// SetLinkFault installs (or replaces) the impairment on one directed
// member link. Call for both directions to impair a link symmetrically.
func (n *Network) SetLinkFault(from, to string, f LinkFault) {
	n.linkFaults[n.linkID(from, to)] = f
}

// ClearLinkFault removes the impairment on one directed member link.
func (n *Network) ClearLinkFault(from, to string) {
	delete(n.linkFaults, n.linkID(from, to))
}

// NodeClock is one member's view of the network's virtual clock. It
// implements timeutil.Clock; callbacks registered through it are
// subject to the member's injected processing degradation (a degraded
// member's timers fire late, exactly like its inbound handling). With
// no degradation installed it behaves identically to the shared Clock.
type NodeClock struct {
	net  *Network
	name string
}

var _ timeutil.Clock = (*NodeClock)(nil)

// NodeClock returns the named member's clock. The protocol core of a
// simulated member should be driven by this clock so that fault
// schedules can degrade its timers.
func (n *Network) NodeClock(name string) *NodeClock {
	return &NodeClock{net: n, name: name}
}

// Now implements timeutil.Clock.
func (c *NodeClock) Now() time.Time { return c.net.clock.Now() }

// AfterFunc implements timeutil.Clock. When the timer fires while the
// member is degraded, f is deferred by one draw from the degradation
// distribution; Stop cancels the deferred stage too.
func (c *NodeClock) AfterFunc(d time.Duration, f func()) timeutil.Timer {
	t := &nodeTimer{}
	t.ev = c.net.sched.Schedule(d, func() {
		p, ok := c.net.nodes[c.name]
		if !ok || p.degrade.IsZero() {
			f()
			return
		}
		t.ev = c.net.sched.Schedule(p.degrade.sample(c.net.faultRNG), f)
	})
	return t
}

// nodeTimer tracks the pending stage of a NodeClock timer: the original
// event, or the degradation-deferred one once the original has fired.
type nodeTimer struct{ ev *Event }

// Stop implements timeutil.Timer.
func (t *nodeTimer) Stop() bool { return t.ev.Stop() }

// FaultSchedule is a deterministic script of fault transitions, each at
// an offset from the moment the schedule is installed. Building a
// schedule does nothing; Network.InstallFaults schedules every
// transition on the simulation's event loop, where the scheduler's
// (time, insertion-order) ordering makes application fully
// deterministic. Schedules drive the chaos experiments; tests build
// them directly for single-fault scenarios.
type FaultSchedule struct {
	events []faultEvent
}

// faultEvent is one scripted transition.
type faultEvent struct {
	at    time.Duration
	apply func(n *Network)
}

// add appends one transition. Negative offsets clamp to zero.
func (s *FaultSchedule) add(at time.Duration, apply func(*Network)) {
	if at < 0 {
		at = 0
	}
	s.events = append(s.events, faultEvent{at: at, apply: apply})
}

// Len returns the number of scripted transitions.
func (s *FaultSchedule) Len() int { return len(s.events) }

// DegradeNode schedules processing degradation for a member at offset
// at: inbound handling and timer callbacks delayed by draws from d.
func (s *FaultSchedule) DegradeNode(at time.Duration, node string, d DelayDist) {
	s.add(at, func(n *Network) { n.SetDegraded(node, d) })
}

// RestoreNode schedules the end of a member's processing degradation.
func (s *FaultSchedule) RestoreNode(at time.Duration, node string) {
	s.add(at, func(n *Network) { n.SetDegraded(node, DelayDist{}) })
}

// PauseNode schedules a total stall of a member, with inbound packets
// buffered or dropped per mode.
func (s *FaultSchedule) PauseNode(at time.Duration, node string, mode PauseMode) {
	s.add(at, func(n *Network) { n.Pause(node, mode) })
}

// ResumeNode schedules the release of a paused member.
func (s *FaultSchedule) ResumeNode(at time.Duration, node string) {
	s.add(at, func(n *Network) { n.Resume(node) })
}

// CrashNode schedules a permanent hard stop of a member: inbound
// dropped, sends held, immune to later pause/resume transitions. The
// member stops responding and its failure should be detected.
func (s *FaultSchedule) CrashNode(at time.Duration, node string) {
	s.add(at, func(n *Network) { n.Crash(node) })
}

// ImpairLink schedules the installation of a directed link impairment
// (loss/duplication/reordering overrides).
func (s *FaultSchedule) ImpairLink(at time.Duration, from, to string, f LinkFault) {
	s.add(at, func(n *Network) { n.SetLinkFault(from, to, f) })
}

// HealLink schedules the removal of a directed link impairment.
func (s *FaultSchedule) HealLink(at time.Duration, from, to string) {
	s.add(at, func(n *Network) { n.ClearLinkFault(from, to) })
}

// FailLink schedules a directed link to start (failed=true) or stop
// (failed=false) dropping all traffic — the primitive behind scripted
// asymmetric partitions.
func (s *FaultSchedule) FailLink(at time.Duration, from, to string, failed bool) {
	s.add(at, func(n *Network) { n.FailLink(from, to, failed) })
}

// InstallFaults schedules every transition of the script on the event
// loop, at its offset from the current virtual time. Transitions at
// equal offsets apply in the order they were added to the schedule.
// Must be called on the event loop (or before the simulation starts),
// like every other Network mutation.
func (n *Network) InstallFaults(s *FaultSchedule) {
	for _, ev := range s.events {
		apply := ev.apply
		n.sched.Schedule(ev.at, func() { apply(n) })
	}
}
