package sim

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestFanoutSharesOneBufferAcrossPorts fans one payload out to 8 ports
// and pins the zero-copy contract from both sides: every delivery reads
// the caller's original bytes even though the caller's buffer is
// mutated right after the send returns (the copy happens synchronously,
// exactly once), and all deliveries observe the same backing array (no
// per-destination copies). Each handler additionally fans concurrent
// readers over the payload so `go test -race` proves shared delivery is
// read-only.
func TestFanoutSharesOneBufferAcrossPorts(t *testing.T) {
	r := newRig(t, Options{Seed: 1})
	src, _ := r.attach(t, "src")

	const fanout = 8
	var (
		addrs    []string
		delivers int
		backing  map[*byte]int // payload backing array → deliveries seen
	)
	backing = make(map[*byte]int)
	want := []byte("gossip-round-payload")
	for i := 0; i < fanout; i++ {
		name := fmt.Sprintf("dst%d", i)
		addrs = append(addrs, name)
		if _, err := r.net.Attach(name, func(from string, payload []byte) {
			if !bytes.Equal(payload, want) {
				t.Errorf("%s delivered %q, want %q", from, payload, want)
			}
			backing[&payload[0]]++
			var wg sync.WaitGroup
			for k := 0; k < 4; k++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					sum := 0
					for _, b := range payload {
						sum += int(b)
					}
					_ = sum
				}()
			}
			wg.Wait()
			delivers++
		}); err != nil {
			t.Fatal(err)
		}
	}

	caller := append([]byte(nil), want...)
	if err := src.SendPacketFanout(addrs, caller, false); err != nil {
		t.Fatal(err)
	}
	// The caller's buffer is only guaranteed for the duration of the
	// call; scribbling over it must not affect any in-flight delivery.
	for i := range caller {
		caller[i] = 0xFF
	}
	r.sched.RunFor(time.Second)

	if delivers != fanout {
		t.Fatalf("delivered %d packets, want %d", delivers, fanout)
	}
	if len(backing) != 1 {
		t.Fatalf("deliveries used %d distinct payload buffers, want 1 shared", len(backing))
	}
	for _, n := range backing {
		if n != fanout {
			t.Fatalf("shared buffer delivered %d times, want %d", n, fanout)
		}
	}
	stats := r.net.NodeStats("src")
	if stats.MsgsSent != fanout || stats.BytesSent != int64(fanout*len(want)) {
		t.Fatalf("sender stats %+v, want %d msgs / %d bytes", stats, fanout, fanout*len(want))
	}
}

// TestFanoutWhileGatedFlushesOnWake verifies the outbox path holds one
// reference per destination on the shared buffer: packets queued while
// the sender is gated all deliver after the gate lifts.
func TestFanoutWhileGatedFlushesOnWake(t *testing.T) {
	r := newRig(t, Options{Seed: 1})
	src, _ := r.attach(t, "src")
	var got []string
	for _, name := range []string{"a", "b", "c"} {
		name := name
		if _, err := r.net.Attach(name, func(from string, payload []byte) {
			got = append(got, name+"<-"+string(payload))
		}); err != nil {
			t.Fatal(err)
		}
	}

	r.net.SetGated("src", true)
	if err := src.SendPacketFanout([]string{"a", "b", "c"}, []byte("late"), false); err != nil {
		t.Fatal(err)
	}
	r.sched.RunFor(50 * time.Millisecond)
	if len(got) != 0 {
		t.Fatalf("gated sender leaked %v", got)
	}
	r.net.SetGated("src", false)
	r.sched.RunFor(time.Second)
	if len(got) != 3 {
		t.Fatalf("after wake got %v, want 3 deliveries", got)
	}
}

// TestFanoutDropPathsReleaseReferences exercises every per-destination
// drop path against the shared buffer — unknown destination, failed
// link, detached port — and verifies the remaining destinations still
// deliver intact bytes (a refcount bug here corrupts or double-frees
// the pooled buffer; the bufpool poison panics make that loud).
func TestFanoutDropPathsReleaseReferences(t *testing.T) {
	r := newRig(t, Options{Seed: 1})
	src, _ := r.attach(t, "src")
	_, okGot := r.attach(t, "ok")
	_, cutGot := r.attach(t, "cut")
	r.attach(t, "gone")
	r.net.Detach("gone")
	r.net.FailLink("src", "cut", true)

	payload := []byte("survivors-only")
	if err := src.SendPacketFanout([]string{"ghost", "cut", "gone", "ok"}, payload, false); err != nil {
		t.Fatal(err)
	}
	r.sched.RunFor(time.Second)

	if len(*cutGot) != 0 {
		t.Fatalf("failed link delivered %v", *cutGot)
	}
	if len(*okGot) != 1 || (*okGot)[0] != "src:survivors-only" {
		t.Fatalf("ok got %v, want the intact payload", *okGot)
	}
	// The buffer must have drained back to the pool: a fresh send can
	// reuse it without tripping the acquire/release poison checks.
	if err := src.SendPacket("ok", []byte("again"), false); err != nil {
		t.Fatal(err)
	}
	r.sched.RunFor(time.Second)
	if len(*okGot) != 2 {
		t.Fatalf("follow-up send not delivered: %v", *okGot)
	}
}

// BenchmarkNetworkDeliverFanout measures the zero-copy fan-out path —
// one payload copy shared by 8 destinations, each with its own delay
// draw, delivery event and service event. Steady state must be
// allocation-free, pinning the refcounted buffer sharing (the old path
// paid one bufpool copy per destination).
func BenchmarkNetworkDeliverFanout(b *testing.B) {
	sched := NewScheduler(time.Unix(0, 0))
	net := NewNetwork(sched, Options{
		Seed:        1,
		Latency:     UniformLatency(200*time.Microsecond, 2*time.Millisecond),
		ServiceTime: 50 * time.Microsecond,
	})
	const fanout = 8
	received := 0
	src, err := net.Attach("src", func(string, []byte) { received++ })
	if err != nil {
		b.Fatal(err)
	}
	addrs := make([]string, fanout)
	for i := 0; i < fanout; i++ {
		name := fmt.Sprintf("m%d", i)
		if _, err := net.Attach(name, func(string, []byte) { received++ }); err != nil {
			b.Fatal(err)
		}
		addrs[i] = name
	}
	payload := make([]byte, 64)
	// Warm the pools (delivery structs, scheduler events, inboxes) so
	// the measured loop is steady state. Each iteration drains fully:
	// that caps pending events at one round's worth, keeping the
	// calendar wheel inside its minimum size so adaptive grow/shrink
	// resizes never fire mid-measurement.
	for i := 0; i < 64; i++ {
		if err := src.SendPacketFanout(addrs, payload, false); err != nil {
			b.Fatal(err)
		}
		sched.RunFor(5 * time.Millisecond)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := src.SendPacketFanout(addrs, payload, false); err != nil {
			b.Fatal(err)
		}
		sched.RunFor(5 * time.Millisecond)
	}
	sched.RunFor(time.Second)
	if received == 0 {
		b.Fatal("no packets delivered")
	}
}
