package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestSchedulerRunsInTimeOrder(t *testing.T) {
	s := NewScheduler(time.Unix(0, 0))
	var order []int
	s.Schedule(3*time.Second, func() { order = append(order, 3) })
	s.Schedule(1*time.Second, func() { order = append(order, 1) })
	s.Schedule(2*time.Second, func() { order = append(order, 2) })
	s.RunFor(10 * time.Second)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if got := s.Now(); !got.Equal(time.Unix(10, 0)) {
		t.Errorf("now = %v, want t+10s", got)
	}
}

func TestSchedulerFIFOAtSameInstant(t *testing.T) {
	s := NewScheduler(time.Unix(0, 0))
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.Schedule(time.Second, func() { order = append(order, i) })
	}
	s.RunFor(2 * time.Second)
	for i, got := range order {
		if got != i {
			t.Fatalf("same-instant order = %v", order)
		}
	}
}

func TestSchedulerNegativeDelayClamps(t *testing.T) {
	s := NewScheduler(time.Unix(100, 0))
	ran := false
	s.Schedule(-time.Hour, func() { ran = true })
	s.Step()
	if !ran {
		t.Fatal("negative-delay event did not run")
	}
	if got := s.Now(); !got.Equal(time.Unix(100, 0)) {
		t.Errorf("time moved backwards: %v", got)
	}
}

func TestSchedulerStopCancels(t *testing.T) {
	s := NewScheduler(time.Unix(0, 0))
	ran := false
	e := s.Schedule(time.Second, func() { ran = true })
	if !e.Stop() {
		t.Fatal("Stop on pending event returned false")
	}
	if e.Stop() {
		t.Error("second Stop returned true")
	}
	s.RunFor(5 * time.Second)
	if ran {
		t.Error("cancelled event ran")
	}
}

func TestSchedulerStopAfterRun(t *testing.T) {
	s := NewScheduler(time.Unix(0, 0))
	e := s.Schedule(time.Second, func() {})
	s.RunFor(2 * time.Second)
	if e.Stop() {
		t.Error("Stop after execution returned true")
	}
}

func TestSchedulerEventSchedulingEvents(t *testing.T) {
	// Events scheduled from within callbacks at the same RunUntil
	// horizon must execute in the same pass.
	s := NewScheduler(time.Unix(0, 0))
	var hits []time.Duration
	var chain func()
	chain = func() {
		hits = append(hits, s.Now().Sub(time.Unix(0, 0)))
		if len(hits) < 5 {
			s.Schedule(time.Second, chain)
		}
	}
	s.Schedule(time.Second, chain)
	s.RunFor(10 * time.Second)
	if len(hits) != 5 {
		t.Fatalf("chain ran %d times, want 5", len(hits))
	}
	for i, h := range hits {
		if want := time.Duration(i+1) * time.Second; h != want {
			t.Errorf("hit %d at %v, want %v", i, h, want)
		}
	}
}

func TestSchedulerRunUntilDoesNotOvershoot(t *testing.T) {
	s := NewScheduler(time.Unix(0, 0))
	ran := false
	s.Schedule(5*time.Second, func() { ran = true })
	s.RunFor(4 * time.Second)
	if ran {
		t.Fatal("event beyond horizon ran")
	}
	if s.Len() != 1 {
		t.Fatalf("pending = %d", s.Len())
	}
	s.RunFor(2 * time.Second)
	if !ran {
		t.Fatal("event within extended horizon did not run")
	}
}

func TestSchedulerZeroDelayFromCallbackRunsSamePass(t *testing.T) {
	s := NewScheduler(time.Unix(0, 0))
	depth := 0
	var recurse func()
	recurse = func() {
		depth++
		if depth < 100 {
			s.Schedule(0, recurse)
		}
	}
	s.Schedule(0, recurse)
	s.RunFor(0)
	if depth != 100 {
		t.Fatalf("depth = %d, want 100 (zero-delay chain must drain)", depth)
	}
}

func TestSchedulerDrainLimit(t *testing.T) {
	s := NewScheduler(time.Unix(0, 0))
	for i := 0; i < 10; i++ {
		s.Schedule(time.Duration(i)*time.Millisecond, func() {})
	}
	if got := s.Drain(4); got != 4 {
		t.Fatalf("Drain(4) ran %d", got)
	}
	if got := s.Drain(100); got != 6 {
		t.Fatalf("second Drain ran %d, want 6", got)
	}
}

func TestSchedulerExecutedCount(t *testing.T) {
	s := NewScheduler(time.Unix(0, 0))
	for i := 0; i < 7; i++ {
		s.Schedule(time.Millisecond, func() {})
	}
	s.RunFor(time.Second)
	if got := s.Executed(); got != 7 {
		t.Fatalf("executed = %d, want 7", got)
	}
}

func TestQuickSchedulerNeverRunsOutOfOrder(t *testing.T) {
	f := func(delays []uint16) bool {
		s := NewScheduler(time.Unix(0, 0))
		var times []time.Time
		for _, d := range delays {
			s.Schedule(time.Duration(d)*time.Millisecond, func() {
				times = append(times, s.Now())
			})
		}
		s.RunFor(100 * time.Second)
		for i := 1; i < len(times); i++ {
			if times[i].Before(times[i-1]) {
				return false
			}
		}
		return len(times) == len(delays)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestClockImplementsTimeutil(t *testing.T) {
	s := NewScheduler(time.Unix(0, 0))
	c := NewClock(s)
	fired := false
	timer := c.AfterFunc(time.Second, func() { fired = true })
	if got := c.Now(); !got.Equal(time.Unix(0, 0)) {
		t.Errorf("now = %v", got)
	}
	s.RunFor(500 * time.Millisecond)
	if fired {
		t.Fatal("fired early")
	}
	s.RunFor(time.Second)
	if !fired {
		t.Fatal("did not fire")
	}
	if timer.Stop() {
		t.Error("Stop after fire returned true")
	}
}

func BenchmarkSchedulerThroughput(b *testing.B) {
	s := NewScheduler(time.Unix(0, 0))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Schedule(time.Duration(i%1000)*time.Microsecond, func() {})
		if i%1024 == 0 {
			s.Drain(1 << 20)
		}
	}
	s.Drain(1 << 30)
}
