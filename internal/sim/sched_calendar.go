package sim

import "sort"

// calendarQueue is a bucketed calendar queue (R. Brown, CACM '88): a
// timing wheel whose buckets each cover one `width`-nanosecond slot of
// virtual time, with events hashed in by slot modulo the bucket count.
// An event more than one wheel rotation in the future simply rides in
// its modular bucket and is skipped by the year check (at/width ==
// tick) until the wheel comes around to its rotation — that is the
// wheel's overflow mechanism.
//
// Insert is O(1): one division and an append. Pop scans forward from
// the current slot; the resize policy keeps bucket occupancy near one
// event and the width matched to the inter-event gap at the head of the
// queue, so the scan is O(1) amortized. When a forward scan finds
// nothing within maxSeqScan slots (the queue is sparse relative to the
// width, e.g. only far-future timers remain), pop falls back to one
// full sweep that finds the global minimum and jumps the wheel to it.
//
// The total order is identical to the heap backend's: (at, seq), with
// cancelled events discarded as they are encountered. Resizing never
// reorders events — it only re-buckets them — so the schedule order is
// byte-identical across any sequence of grows and shrinks.
type calendarQueue struct {
	buckets [][]*Event
	width   int64 // ns of virtual time per bucket
	mask    int   // len(buckets) - 1; len is a power of two
	tick    int64 // lower bound: no pending event has at/width < tick
	count   int   // pending events (including undiscarded cancelled ones)

	// scratch is reused across resizes to collect and sort the live
	// events while the wheel is rebuilt.
	scratch []*Event
}

const (
	// calMinBuckets is the smallest wheel. Shrinks stop here.
	calMinBuckets = 32

	// calInitWidth is the starting bucket width: 100µs, the simulator's
	// base service time and the low end of its latency models. The
	// first resize replaces it with a measured width.
	calInitWidth = int64(100_000)

	// calMinWidth / calMaxWidth clamp measured widths: below 100ns the
	// slot math degenerates, above 1s a single rotation outlives most
	// simulations.
	calMinWidth = int64(100)
	calMaxWidth = int64(1_000_000_000)

	// maxSeqScan bounds the forward slot scan in pop before falling
	// back to a full-sweep jump.
	maxSeqScan = 64
)

func newCalendarQueue() *calendarQueue {
	return &calendarQueue{
		buckets: make([][]*Event, calMinBuckets),
		width:   calInitWidth,
		mask:    calMinBuckets - 1,
	}
}

func (q *calendarQueue) len() int { return q.count }

func (q *calendarQueue) push(e *Event) {
	if q.count >= len(q.buckets)*2 {
		q.resize(len(q.buckets) * 2)
	}
	slot := e.at / q.width
	if slot < q.tick {
		// A push earlier than the wheel position (possible after a
		// resize rounded tick up to the then-earliest event): pull the
		// position back so the forward scan cannot miss it.
		q.tick = slot
	}
	idx := int(slot & int64(q.mask))
	q.buckets[idx] = append(q.buckets[idx], e)
	q.count++
}

// filterBucket discards cancelled events from one bucket in place.
func (q *calendarQueue) filterBucket(idx int) {
	b := q.buckets[idx]
	kept := b[:0]
	for _, e := range b {
		if e.cancelled {
			e.done = true
			q.count--
			continue
		}
		kept = append(kept, e)
	}
	for i := len(kept); i < len(b); i++ {
		b[i] = nil
	}
	q.buckets[idx] = kept
}

// removeFrom swap-removes one event from a bucket. Buckets are
// unordered — pop selects the minimum by scanning — so a swap is safe.
func (q *calendarQueue) removeFrom(idx, i int) *Event {
	b := q.buckets[idx]
	e := b[i]
	last := len(b) - 1
	b[i] = b[last]
	b[last] = nil
	q.buckets[idx] = b[:last]
	q.count--
	return e
}

func (q *calendarQueue) pop() *Event {
	if q.count == 0 {
		return nil
	}
	for scanned := 0; scanned < maxSeqScan; scanned++ {
		idx := int(q.tick & int64(q.mask))
		// One pass over the bucket: compact cancelled events out while
		// scanning for this rotation's minimum.
		b := q.buckets[idx]
		kept := b[:0]
		best := -1
		for _, e := range b {
			if e.cancelled {
				e.done = true
				q.count--
				continue
			}
			if e.at/q.width == q.tick && (best < 0 || eventLess(e, kept[best])) {
				best = len(kept)
			}
			kept = append(kept, e)
		}
		for i := len(kept); i < len(b); i++ {
			b[i] = nil
		}
		q.buckets[idx] = kept
		if q.count == 0 {
			return nil
		}
		if best >= 0 {
			e := q.removeFrom(idx, best)
			q.maybeShrink()
			return e
		}
		q.tick++
	}
	return q.popSweep()
}

// popSweep is the sparse-queue fallback: one full sweep over every
// bucket finds the global minimum live event and jumps the wheel to its
// slot.
func (q *calendarQueue) popSweep() *Event {
	var best *Event
	bi, bj := -1, -1
	for i := range q.buckets {
		q.filterBucket(i)
		for j, e := range q.buckets[i] {
			if best == nil || eventLess(e, best) {
				best, bi, bj = e, i, j
			}
		}
	}
	if best == nil {
		return nil
	}
	q.tick = best.at / q.width
	e := q.removeFrom(bi, bj)
	q.maybeShrink()
	return e
}

func (q *calendarQueue) maybeShrink() {
	if len(q.buckets) > calMinBuckets && q.count*4 < len(q.buckets) {
		q.resize(len(q.buckets) / 2)
	}
}

// resize rebuilds the wheel with newN buckets and a width measured from
// the current queue: the average gap between adjacent events at the
// head, times four, so head-of-queue density maps to roughly one event
// per slot with room to scan. Far-future outliers (suspicion timers
// behind a dense packet burst) cannot skew the width — only the head
// sample counts.
func (q *calendarQueue) resize(newN int) {
	if newN < calMinBuckets {
		newN = calMinBuckets
	}
	q.scratch = q.scratch[:0]
	for i := range q.buckets {
		for _, e := range q.buckets[i] {
			if e.cancelled {
				e.done = true
				continue
			}
			q.scratch = append(q.scratch, e)
		}
	}
	q.count = len(q.scratch)
	sort.Slice(q.scratch, func(i, j int) bool { return eventLess(q.scratch[i], q.scratch[j]) })
	tickNs := q.tick * q.width // wheel position in ns, width-independent
	q.width = q.measureWidth()
	q.buckets = make([][]*Event, newN)
	q.mask = newN - 1
	if q.count > 0 {
		q.tick = q.scratch[0].at / q.width
	} else {
		// Preserve the wheel's time position; a later push behind it
		// still triggers the push-side tick pullback.
		q.tick = tickNs / q.width
	}
	for i, e := range q.scratch {
		idx := int((e.at / q.width) & int64(q.mask))
		q.buckets[idx] = append(q.buckets[idx], e)
		q.scratch[i] = nil
	}
	q.scratch = q.scratch[:0]
}

// measureWidth derives the new bucket width from the sorted scratch
// slice: the mean positive gap over up to 32 adjacent head pairs, ×4.
// With no measurable gap (fewer than two events, or an all-same-instant
// head) the current width is kept.
func (q *calendarQueue) measureWidth() int64 {
	n := len(q.scratch)
	if n < 2 {
		return q.width
	}
	limit := n
	if limit > 33 {
		limit = 33
	}
	var sum int64
	var cnt int64
	for i := 1; i < limit; i++ {
		if g := q.scratch[i].at - q.scratch[i-1].at; g > 0 {
			sum += g
			cnt++
		}
	}
	if cnt == 0 {
		return q.width
	}
	w := sum / cnt * 4
	if w < calMinWidth {
		w = calMinWidth
	}
	if w > calMaxWidth {
		w = calMaxWidth
	}
	return w
}
