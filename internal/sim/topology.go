package sim

import (
	"math/rand"
	"time"
)

// LinkProfile describes one link class: a base one-way delay plus
// uniform jitter in [0, Jitter).
type LinkProfile struct {
	// Base is the deterministic part of the one-way delay.
	Base time.Duration

	// Jitter is the width of the uniform random addition to Base.
	Jitter time.Duration
}

// sample draws one one-way delay.
func (p LinkProfile) sample(rng *rand.Rand) time.Duration {
	if p.Jitter <= 0 {
		return p.Base
	}
	return p.Base + time.Duration(rng.Int63n(int64(p.Jitter)))
}

// expected is the mean one-way delay.
func (p LinkProfile) expected() time.Duration {
	return p.Base + p.Jitter/2
}

// Topology is a zone-structured latency model for the simulated
// network, replacing the single global latency distribution for WAN
// and multi-zone experiments. Each member belongs to a named zone;
// packet delays are drawn from the profile of the (source zone,
// destination zone) pair, with optional per-link overrides for
// degenerate paths (a congested peering link, a satellite hop).
//
// Because the model is explicit, the ground-truth expected RTT between
// any two members is known — the reference against which Vivaldi
// coordinate estimates are scored.
//
// A Topology must only be mutated before the simulation starts (or
// from the scheduler's event loop); the Network reads it on every
// packet.
type Topology struct {
	// IntraZone is the profile for traffic within a zone. Defaults to
	// 500µs ± 500µs, a LAN.
	IntraZone LinkProfile

	// InterZone is the fallback profile for traffic between two zones
	// that have no explicit pair profile. Defaults to 40ms ± 4ms.
	InterZone LinkProfile

	// zones maps member name to zone name. Members without a zone use
	// DefaultZone.
	zones map[string]string

	// pairs maps an unordered zone pair to its profile.
	pairs map[[2]string]LinkProfile

	// links maps a directed member pair "a->b" to an override profile,
	// taking precedence over zone profiles.
	links map[string]LinkProfile
}

// DefaultZone is the zone of members never assigned one.
const DefaultZone = "default"

// NewTopology returns an empty topology with LAN/WAN default profiles.
func NewTopology() *Topology {
	return &Topology{
		IntraZone: LinkProfile{Base: 500 * time.Microsecond, Jitter: 500 * time.Microsecond},
		InterZone: LinkProfile{Base: 40 * time.Millisecond, Jitter: 4 * time.Millisecond},
		zones:     make(map[string]string),
		pairs:     make(map[[2]string]LinkProfile),
		links:     make(map[string]LinkProfile),
	}
}

// SetZone assigns a member to a zone.
func (t *Topology) SetZone(member, zone string) {
	t.zones[member] = zone
}

// Zone returns the member's zone (DefaultZone if unassigned).
func (t *Topology) Zone(member string) string {
	if z, ok := t.zones[member]; ok {
		return z
	}
	return DefaultZone
}

// SetZonePair sets the symmetric profile for traffic between two zones
// (or within one, when a == b).
func (t *Topology) SetZonePair(a, b string, p LinkProfile) {
	t.pairs[zoneKey(a, b)] = p
}

// SetLink sets a directed per-link override from one member to
// another, taking precedence over every zone profile. Call twice for a
// symmetric override.
func (t *Topology) SetLink(from, to string, p LinkProfile) {
	t.links[from+"->"+to] = p
}

// ClearLink removes a per-link override.
func (t *Topology) ClearLink(from, to string) {
	delete(t.links, from+"->"+to)
}

func zoneKey(a, b string) [2]string {
	if b < a {
		a, b = b, a
	}
	return [2]string{a, b}
}

// profileFor resolves the link profile for one directed member pair:
// link override, then zone-pair profile, then the intra/inter default.
func (t *Topology) profileFor(from, to string) LinkProfile {
	if len(t.links) > 0 {
		if p, ok := t.links[from+"->"+to]; ok {
			return p
		}
	}
	za, zb := t.Zone(from), t.Zone(to)
	if p, ok := t.pairs[zoneKey(za, zb)]; ok {
		return p
	}
	if za == zb {
		return t.IntraZone
	}
	return t.InterZone
}

// Sample draws a one-way delay for a packet from one member to
// another.
func (t *Topology) Sample(from, to string, rng *rand.Rand) time.Duration {
	return t.profileFor(from, to).sample(rng)
}

// GroundTruthRTT returns the expected round-trip time between two
// members under this model: the mean forward delay plus the mean
// reverse delay. This is the reference RTT for scoring coordinate
// estimates.
func (t *Topology) GroundTruthRTT(a, b string) time.Duration {
	return t.profileFor(a, b).expected() + t.profileFor(b, a).expected()
}
