package sim

import "container/heap"

// heapQueue is the seed scheduler queue: a container/heap binary heap
// ordered by (time, schedule order). O(log n) insert and pop. Kept as
// the reference implementation for the calendar queue's differential
// tests and as a fallback backend.
type heapQueue struct {
	h eventHeap
}

func (q *heapQueue) push(e *Event) { heap.Push(&q.h, e) }

func (q *heapQueue) pop() *Event {
	for q.h.Len() > 0 {
		e := heap.Pop(&q.h).(*Event)
		if e.cancelled {
			e.done = true
			continue
		}
		return e
	}
	return nil
}

func (q *heapQueue) len() int { return q.h.Len() }

// eventHeap orders events by time, then by scheduling order.
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool { return eventLess(h[i], h[j]) }

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}
