package nettrans

import (
	"bytes"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"
)

// collector gathers delivered packets behind a mutex (delivery is
// concurrent).
type collector struct {
	mu   sync.Mutex
	pkts [][]byte
}

func (c *collector) handle(_ string, payload []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	// The delivery loops reuse their read buffers (PacketHandler
	// contract), so retained payloads must be copied.
	c.pkts = append(c.pkts, append([]byte(nil), payload...))
}

func (c *collector) wait(t *testing.T, n int, timeout time.Duration) [][]byte {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		c.mu.Lock()
		if len(c.pkts) >= n {
			out := make([][]byte, len(c.pkts))
			copy(out, c.pkts)
			c.mu.Unlock()
			return out
		}
		c.mu.Unlock()
		time.Sleep(5 * time.Millisecond)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	t.Fatalf("timed out waiting for %d packets (have %d)", n, len(c.pkts))
	return nil
}

func newPair(t *testing.T) (*Transport, *Transport, *collector, *collector) {
	t.Helper()
	a, err := New("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close() })
	b, err := New("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { b.Close() })

	ca, cb := &collector{}, &collector{}
	a.Run(ca.handle)
	b.Run(cb.handle)
	return a, b, ca, cb
}

func TestUDPRoundTrip(t *testing.T) {
	a, b, _, cb := newPair(t)
	payload := []byte("hello over udp")
	if err := a.SendPacket(b.LocalAddr(), payload, false); err != nil {
		t.Fatal(err)
	}
	got := cb.wait(t, 1, 2*time.Second)
	if !bytes.Equal(got[0], payload) {
		t.Errorf("got %q", got[0])
	}
	_ = a
}

func TestReliableRoundTrip(t *testing.T) {
	a, b, _, cb := newPair(t)
	payload := []byte("hello over tcp")
	if err := a.SendPacket(b.LocalAddr(), payload, true); err != nil {
		t.Fatal(err)
	}
	got := cb.wait(t, 1, 2*time.Second)
	if !bytes.Equal(got[0], payload) {
		t.Errorf("got %q", got[0])
	}
}

func TestLargePayloadGoesOverStream(t *testing.T) {
	a, b, _, cb := newPair(t)
	// Larger than any UDP datagram we send: forced onto TCP.
	payload := bytes.Repeat([]byte{0xAB}, 200_000)
	if err := a.SendPacket(b.LocalAddr(), payload, false); err != nil {
		t.Fatal(err)
	}
	got := cb.wait(t, 1, 5*time.Second)
	if !bytes.Equal(got[0], payload) {
		t.Errorf("large payload corrupted (len %d)", len(got[0]))
	}
}

func TestManyPacketsBothDirections(t *testing.T) {
	a, b, ca, cb := newPair(t)
	const n = 50
	for i := 0; i < n; i++ {
		if err := a.SendPacket(b.LocalAddr(), []byte(fmt.Sprintf("a->b %d", i)), false); err != nil {
			t.Fatal(err)
		}
		if err := b.SendPacket(a.LocalAddr(), []byte(fmt.Sprintf("b->a %d", i)), false); err != nil {
			t.Fatal(err)
		}
	}
	// UDP on loopback is effectively lossless; expect everything.
	cb.wait(t, n, 5*time.Second)
	ca.wait(t, n, 5*time.Second)
}

func TestBindFailsOnBadAddress(t *testing.T) {
	if _, err := New("999.999.999.999:1"); err == nil {
		t.Fatal("bad bind address accepted")
	}
}

func TestSendAfterCloseFails(t *testing.T) {
	a, err := New("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.SendPacket("127.0.0.1:9", []byte("x"), false); err == nil {
		t.Error("send after close succeeded")
	}
	// Close is idempotent.
	if err := a.Close(); err != nil {
		t.Errorf("second close: %v", err)
	}
}

func TestCloseUnblocksLoops(t *testing.T) {
	a, err := New("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	a.Run(func(string, []byte) {})
	done := make(chan struct{})
	go func() {
		a.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close blocked on delivery loops")
	}
}

func TestReliableToUnreachableDoesNotBlockCaller(t *testing.T) {
	a, err := New("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	a.Run(func(string, []byte) {})

	start := time.Now()
	// TEST-NET-1 address: connection will not succeed; the call must
	// return immediately (async dial).
	if err := a.SendPacket("192.0.2.1:9", []byte("x"), true); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d > time.Second {
		t.Errorf("reliable send blocked for %v", d)
	}
}

// TestOversizedPayloadRejected pins the send-side bound: a payload
// larger than the stream frame limit is rejected with
// ErrPayloadTooLarge on both channels — a receiver would drop the
// connection unread, so sending it would silently black-hole bytes.
func TestOversizedPayloadRejected(t *testing.T) {
	a, b, _, cb := newPair(t)
	huge := make([]byte, maxStreamMsg+1)
	for _, reliable := range []bool{false, true} {
		err := a.SendPacket(b.LocalAddr(), huge, reliable)
		if !errors.Is(err, ErrPayloadTooLarge) {
			t.Errorf("oversized send (reliable=%v) err = %v, want ErrPayloadTooLarge", reliable, err)
		}
	}
	// The limit itself is still deliverable (over the stream channel).
	if err := a.SendPacket(b.LocalAddr(), bytes.Repeat([]byte{1}, maxPacket+1), false); err != nil {
		t.Fatal(err)
	}
	cb.wait(t, 1, 5*time.Second)
}

// waitGoroutinesBelow polls until the live goroutine count drops to at
// most limit, giving detached sends and delivery loops time to unwind.
func waitGoroutinesBelow(t *testing.T, limit int, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= limit {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines = %d, want <= %d (leak)", runtime.NumGoroutine(), limit)
}

// TestConcurrentSendDuringClose hammers SendPacket from many goroutines
// while the transport shuts down: no panic, every call returns, and no
// goroutine outlives the close (the async reliable senders are
// wg-tracked, so Close must wait for them).
func TestConcurrentSendDuringClose(t *testing.T) {
	base := runtime.NumGoroutine()
	a, b, _, _ := newPair(t)

	var senders sync.WaitGroup
	start := make(chan struct{})
	for g := 0; g < 8; g++ {
		senders.Add(1)
		go func(g int) {
			defer senders.Done()
			<-start
			for i := 0; i < 50; i++ {
				// Errors are expected once the transport closes; the
				// contract under test is "no panic, prompt return".
				_ = a.SendPacket(b.LocalAddr(), []byte("x"), i%2 == 0)
			}
		}(g)
	}
	close(start)
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	senders.Wait()
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	// +2 slack: runtime housekeeping goroutines that may have spawned.
	waitGoroutinesBelow(t, base+2, 5*time.Second)
}

// TestReliableSurvivesDeadUDPSocket kills the UDP socket out from under
// a live transport: the UDP delivery loop must exit instead of
// hot-spinning, unreliable sends must fail loudly, and the TCP channel
// — the protocol's fallback path — must keep delivering.
func TestReliableSurvivesDeadUDPSocket(t *testing.T) {
	base := runtime.NumGoroutine()
	a, b, _, cb := newPair(t)

	if err := a.udp.Close(); err != nil {
		t.Fatal(err)
	}
	// newPair started 4 delivery loops (2 per transport); the udpLoop of
	// a must exit on net.ErrClosed without Close having been called —
	// observable as the count dropping to 3 loops above baseline.
	waitGoroutinesBelow(t, base+3, 5*time.Second)

	if err := a.SendPacket(b.LocalAddr(), []byte("x"), false); err == nil {
		t.Error("unreliable send on a dead UDP socket succeeded")
	}
	payload := []byte("over tcp despite dead udp")
	if err := a.SendPacket(b.LocalAddr(), payload, true); err != nil {
		t.Fatal(err)
	}
	got := cb.wait(t, 1, 5*time.Second)
	if !bytes.Equal(got[0], payload) {
		t.Errorf("got %q", got[0])
	}
	// Close stays clean: it must not hang on the already-dead loop. The
	// double-close error on the UDP socket is reported but harmless.
	done := make(chan struct{})
	go func() { a.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close hung after UDP socket death")
	}
}

func TestAdvertisedAddressUsable(t *testing.T) {
	a, err := New("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	c := &collector{}
	a.Run(c.handle)
	// Self-send through the advertised address.
	if err := a.SendPacket(a.LocalAddr(), []byte("loop"), false); err != nil {
		t.Fatal(err)
	}
	c.wait(t, 1, 2*time.Second)
}
