// Package nettrans is the production transport for the protocol core:
// UDP datagrams for failure-detector and gossip traffic, with a TCP side
// channel for reliable messages (push-pull anti-entropy and the fallback
// direct probe), mirroring memberlist's transport split (§III-B of the
// paper).
package nettrans

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"lifeguard/internal/bufpool"
)

const (
	// maxPacket bounds a single UDP datagram read.
	maxPacket = 65535

	// maxStreamMsg bounds a framed TCP message (push-pull tables can
	// exceed the UDP MTU comfortably, but not this).
	maxStreamMsg = 10 << 20

	// dialTimeout bounds a reliable send's connection attempt.
	dialTimeout = 5 * time.Second

	// ioTimeout bounds individual stream reads/writes.
	ioTimeout = 10 * time.Second
)

// ErrPayloadTooLarge is returned by SendPacket for payloads that exceed
// maxStreamMsg: a receiver would drop the connection unread, so the
// send is rejected up front instead of silently black-holing bytes.
var ErrPayloadTooLarge = errors.New("nettrans: payload exceeds max stream message size")

// PacketHandler consumes one inbound packet. The payload is only valid
// for the duration of the call: the delivery loops reuse their read
// buffers. Handlers that retain the payload must copy it (the protocol
// core's HandlePacket decodes into owned messages and retains nothing).
type PacketHandler func(from string, payload []byte)

// Transport moves packets over UDP and framed TCP. Create it with New,
// start delivery with Run, and Close it on shutdown.
//
// Transport is safe for concurrent use.
type Transport struct {
	udp *net.UDPConn
	tcp *net.TCPListener

	advertise string

	mu      sync.Mutex
	handler PacketHandler
	closed  bool

	wg sync.WaitGroup
}

// New binds a UDP socket and a TCP listener on bindAddr ("host:port";
// port 0 picks the same free port for both when possible).
func New(bindAddr string) (*Transport, error) {
	udpAddr, err := net.ResolveUDPAddr("udp", bindAddr)
	if err != nil {
		return nil, fmt.Errorf("nettrans: resolve %q: %w", bindAddr, err)
	}
	udp, err := net.ListenUDP("udp", udpAddr)
	if err != nil {
		return nil, fmt.Errorf("nettrans: listen udp %q: %w", bindAddr, err)
	}
	// Bind TCP on the port UDP actually got, so one advertised address
	// serves both channels.
	actual := udp.LocalAddr().(*net.UDPAddr)
	tcpAddr := &net.TCPAddr{IP: actual.IP, Port: actual.Port}
	tcp, err := net.ListenTCP("tcp", tcpAddr)
	if err != nil {
		udp.Close()
		return nil, fmt.Errorf("nettrans: listen tcp %v: %w", tcpAddr, err)
	}
	return &Transport{
		udp:       udp,
		tcp:       tcp,
		advertise: actual.String(),
	}, nil
}

// LocalAddr returns the transport's advertised address.
func (t *Transport) LocalAddr() string { return t.advertise }

// Run starts the delivery loops, invoking handler for each inbound
// packet (possibly concurrently). It returns immediately.
func (t *Transport) Run(handler PacketHandler) {
	t.mu.Lock()
	t.handler = handler
	t.mu.Unlock()

	t.wg.Add(2)
	go t.udpLoop()
	go t.acceptLoop()
}

// Close shuts the sockets down and waits for delivery loops to exit.
func (t *Transport) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	t.mu.Unlock()

	udpErr := t.udp.Close()
	tcpErr := t.tcp.Close()
	t.wg.Wait()
	return errors.Join(udpErr, tcpErr)
}

func (t *Transport) isClosed() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.closed
}

func (t *Transport) deliver(from string, payload []byte) {
	t.mu.Lock()
	h := t.handler
	t.mu.Unlock()
	if h != nil {
		h(from, payload)
	}
}

// SendPacket sends payload to addr. Unreliable sends go as a single UDP
// datagram; reliable sends open a short-lived TCP connection with
// length-prefixed framing. Reliable sends run asynchronously so the
// protocol core never blocks on a dial.
func (t *Transport) SendPacket(addr string, payload []byte, reliable bool) error {
	if t.isClosed() {
		return errors.New("nettrans: transport closed")
	}
	if len(payload) > maxStreamMsg {
		return fmt.Errorf("%w (%d > %d bytes)", ErrPayloadTooLarge, len(payload), maxStreamMsg)
	}
	if !reliable && len(payload) <= maxPacket {
		udpAddr, err := net.ResolveUDPAddr("udp", addr)
		if err != nil {
			return fmt.Errorf("nettrans: resolve %q: %w", addr, err)
		}
		if _, err := t.udp.WriteToUDP(payload, udpAddr); err != nil {
			return fmt.Errorf("nettrans: udp send to %q: %w", addr, err)
		}
		return nil
	}

	// Reliable (or oversized) path: fire-and-forget stream send. The
	// payload must be copied before the goroutine detaches — the caller
	// only guarantees it for the duration of this call. The failure
	// detector is the loss handler, exactly as for UDP.
	buf := bufpool.Copy(payload)
	t.wg.Add(1)
	go func() {
		defer t.wg.Done()
		defer buf.Release()
		if err := t.sendStream(addr, buf.B); err != nil && !t.isClosed() {
			// Nothing to do: a lost reliable packet looks like a lost
			// UDP packet to the protocol.
			_ = err
		}
	}()
	return nil
}

func (t *Transport) sendStream(addr string, payload []byte) error {
	conn, err := net.DialTimeout("tcp", addr, dialTimeout)
	if err != nil {
		return fmt.Errorf("nettrans: dial %q: %w", addr, err)
	}
	defer conn.Close()
	if err := conn.SetWriteDeadline(time.Now().Add(ioTimeout)); err != nil {
		return err
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := conn.Write(hdr[:]); err != nil {
		return fmt.Errorf("nettrans: stream header to %q: %w", addr, err)
	}
	if _, err := conn.Write(payload); err != nil {
		return fmt.Errorf("nettrans: stream body to %q: %w", addr, err)
	}
	return nil
}

func (t *Transport) udpLoop() {
	defer t.wg.Done()
	buf := make([]byte, maxPacket)
	for {
		n, from, err := t.udp.ReadFromUDP(buf)
		if err != nil {
			// A closed socket is terminal even when the transport as a
			// whole hasn't shut down (the e2e harness kills sockets out
			// from under live transports); any other persistent error
			// must not hot-spin the loop.
			if t.isClosed() || errors.Is(err, net.ErrClosed) {
				return
			}
			time.Sleep(time.Millisecond)
			continue
		}
		// Delivery is synchronous and the handler does not retain the
		// payload (PacketHandler contract), so the read buffer is handed
		// over directly and reused for the next datagram.
		t.deliver(from.String(), buf[:n])
	}
}

func (t *Transport) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.tcp.Accept()
		if err != nil {
			if t.isClosed() || errors.Is(err, net.ErrClosed) {
				return
			}
			time.Sleep(time.Millisecond)
			continue
		}
		t.wg.Add(1)
		go func() {
			defer t.wg.Done()
			defer conn.Close()
			t.serveStream(conn)
		}()
	}
}

// serveStream reads length-prefixed messages until EOF or error, reusing
// one read buffer across messages (the handler does not retain payloads).
func (t *Transport) serveStream(conn net.Conn) {
	from := conn.RemoteAddr().String()
	var payload []byte
	for {
		if err := conn.SetReadDeadline(time.Now().Add(ioTimeout)); err != nil {
			return
		}
		var hdr [4]byte
		if _, err := io.ReadFull(conn, hdr[:]); err != nil {
			return
		}
		size := binary.BigEndian.Uint32(hdr[:])
		if size > maxStreamMsg {
			return
		}
		if uint32(cap(payload)) < size {
			payload = make([]byte, size)
		}
		payload = payload[:size]
		if _, err := io.ReadFull(conn, payload); err != nil {
			return
		}
		t.deliver(from, payload)
	}
}
