package awareness

import (
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestNewStartsHealthy(t *testing.T) {
	a := New(8)
	if got := a.Score(); got != 0 {
		t.Errorf("initial score %d, want 0", got)
	}
	if got := a.Max(); got != 8 {
		t.Errorf("max %d, want 8", got)
	}
}

func TestNewClampsDegenerateMax(t *testing.T) {
	if got := New(0).Max(); got != 1 {
		t.Errorf("max %d, want 1", got)
	}
	if got := New(-3).Max(); got != 1 {
		t.Errorf("max %d, want 1", got)
	}
}

func TestApplyDeltaSaturation(t *testing.T) {
	a := New(8)
	// Cannot go below zero.
	if got := a.ApplyDelta(-5); got != 0 {
		t.Errorf("score %d, want 0 after negative delta from zero", got)
	}
	// Cannot exceed S.
	if got := a.ApplyDelta(100); got != 8 {
		t.Errorf("score %d, want 8 after huge positive delta", got)
	}
	// Decrements work from saturation.
	if got := a.ApplyDelta(-1); got != 7 {
		t.Errorf("score %d, want 7", got)
	}
}

func TestPaperEventDeltas(t *testing.T) {
	// The paper's event table (§IV-A): failed probe +1, refute +1,
	// missed nack +1, successful probe −1.
	a := New(8)
	a.ApplyDelta(DeltaProbeFailed)
	a.ApplyDelta(DeltaRefute)
	a.ApplyDelta(DeltaMissedNack)
	if got := a.Score(); got != 3 {
		t.Fatalf("score %d, want 3", got)
	}
	a.ApplyDelta(DeltaProbeSuccess)
	if got := a.Score(); got != 2 {
		t.Fatalf("score %d, want 2", got)
	}
}

func TestScaleTimeout(t *testing.T) {
	a := New(8)
	base := time.Second
	if got := a.ScaleTimeout(base); got != time.Second {
		t.Errorf("healthy scale: %v, want 1s", got)
	}
	for i := 0; i < 8; i++ {
		a.ApplyDelta(1)
	}
	// At saturation (S=8): d·(8+1) = 9s, the paper's maximum probe
	// interval for BaseProbeInterval = 1 s.
	if got := a.ScaleTimeout(base); got != 9*time.Second {
		t.Errorf("saturated scale: %v, want 9s", got)
	}
	if got := a.ScaleTimeout(500 * time.Millisecond); got != 4500*time.Millisecond {
		t.Errorf("saturated probe timeout: %v, want 4.5s", got)
	}
}

func TestQuickScoreAlwaysInRange(t *testing.T) {
	f := func(deltas []int8) bool {
		a := New(8)
		for _, d := range deltas {
			got := a.ApplyDelta(int(d))
			if got < 0 || got > 8 {
				return false
			}
		}
		s := a.Score()
		return s >= 0 && s <= 8
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickScaleTimeoutMonotoneInScore(t *testing.T) {
	f := func(up uint8) bool {
		a := New(8)
		prev := a.ScaleTimeout(time.Second)
		for i := 0; i < int(up%12); i++ {
			a.ApplyDelta(1)
			cur := a.ScaleTimeout(time.Second)
			if cur < prev {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestConcurrentApplyDelta(t *testing.T) {
	a := New(8)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				a.ApplyDelta(1)
				a.ApplyDelta(-1)
			}
		}()
	}
	wg.Wait()
	if got := a.Score(); got < 0 || got > 8 {
		t.Errorf("score %d out of range after concurrent updates", got)
	}
}
