// Package awareness implements Lifeguard's Local Health Multiplier (LHM).
//
// The LHM is a saturating counter that estimates how likely the local
// failure-detector instance is to be processing messages slowly
// (Lifeguard §IV-A). Evidence of local slowness (failed probes, missed
// nacks, having to refute a suspicion about oneself) raises the score;
// successful probes lower it. The score linearly scales the probe
// interval and probe timeout, so a struggling member both probes less
// aggressively and gives its peers longer to answer.
package awareness

import (
	"sync"
	"time"
)

// Awareness tracks the Local Health Multiplier.
//
// Awareness is safe for concurrent use.
type Awareness struct {
	mu sync.Mutex

	// max is S, the saturation limit (exclusive upper bound is max;
	// score stays in [0, max]).
	max int

	// score is the current LHM value.
	score int
}

// New returns an Awareness with saturation limit max (the paper's S,
// default 8). max must be at least 1.
func New(max int) *Awareness {
	if max < 1 {
		max = 1
	}
	return &Awareness{max: max}
}

// Delta values for the events the paper assigns LHM scores (§IV-A).
const (
	// DeltaProbeSuccess is applied on any successful probe (ack received
	// for a direct or indirect probe).
	DeltaProbeSuccess = -1

	// DeltaProbeFailed is applied when a probe round ends with no ack.
	DeltaProbeFailed = 1

	// DeltaRefute is applied when the member must refute a suspicion or
	// death accusation about itself.
	DeltaRefute = 1

	// DeltaMissedNack is applied per indirect-probe relay that sent
	// neither an ack nor a nack.
	DeltaMissedNack = 1
)

// ApplyDelta adjusts the score by delta, saturating at [0, max]. It
// returns the new score.
func (a *Awareness) ApplyDelta(delta int) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.score += delta
	if a.score < 0 {
		a.score = 0
	} else if a.score > a.max {
		a.score = a.max
	}
	return a.score
}

// Score returns the current LHM value, in [0, max].
func (a *Awareness) Score() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.score
}

// Max returns the saturation limit S.
func (a *Awareness) Max() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.max
}

// ScaleTimeout scales a base duration by the current multiplier:
// d·(LHM+1). With a healthy detector (score 0) the duration is unchanged;
// at saturation it is d·(S+1).
func (a *Awareness) ScaleTimeout(d time.Duration) time.Duration {
	a.mu.Lock()
	defer a.mu.Unlock()
	return d * time.Duration(a.score+1)
}
