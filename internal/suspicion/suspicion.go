// Package suspicion implements the suspicion timer used by SWIM's
// Suspicion subprotocol and Lifeguard's Local Health Aware Suspicion
// (LHA-Suspicion, §IV-B).
//
// A Suspicion starts with a timeout of Max and decays toward Min as
// independent suspicions (suspect messages about the same member from
// distinct accusers) are confirmed:
//
//	timeout = max(Min, Max − (Max−Min)·log(C+1)/log(K+1))
//
// where C is the number of independent confirmations processed and K the
// number required to reach Min. A member that is processing gossip in a
// timely manner quickly collects confirmations and converges to Min; a
// member that is not leaves the timeout high, buying time for a
// refutation it has not yet processed. With K = 0 the timer is the fixed
// SWIM timeout (Min) from the start.
package suspicion

import (
	"math"
	"sync"
	"time"

	"lifeguard/internal/timeutil"
)

// Suspicion is a single member's suspicion timer.
//
// Suspicion is safe for concurrent use.
type Suspicion struct {
	mu sync.Mutex

	clock timeutil.Clock

	// k is the number of independent confirmations that drive the
	// timeout to min.
	k int

	// min and max bound the timeout.
	min, max time.Duration

	// start is when the suspicion was raised.
	start time.Time

	// confirmations records the distinct accusers seen, including the
	// original one. A small slice with linear-scan dedup: accuser sets
	// are bounded by k plus a handful of dedup-only entries, and a
	// suspicion is born on the protocol hot path, where the map this
	// used to be cost two allocations per suspicion.
	confirmations []string

	// timer is the pending expiry callback.
	timer timeutil.Timer

	// fired records that the timeout callback ran (or is running), so a
	// late Confirm cannot re-arm it.
	fired bool

	// stopped records that Stop was called.
	stopped bool

	// timeoutFn is invoked exactly once on expiry with the number of
	// independent confirmations that had been processed.
	timeoutFn func(confirmations int)
}

// New starts a suspicion raised by `from` about some member. clock drives
// the timer; k, min and max parameterize the decay; fn runs once when the
// suspicion times out without having been stopped (i.e. the member is to
// be declared dead).
//
// With k == 0, or min >= max, the timeout is fixed at min.
func New(clock timeutil.Clock, from string, k int, min, max time.Duration, fn func(confirmations int)) *Suspicion {
	s := &Suspicion{
		clock:         clock,
		k:             k,
		min:           min,
		max:           max,
		start:         clock.Now(),
		confirmations: append(make([]string, 0, 4), from),
		timeoutFn:     fn,
	}
	s.timer = clock.AfterFunc(s.remainingLocked(), s.expire)
	return s
}

// Timeout computes the suspicion timeout for c confirmations out of k
// needed, bounded by [min, max]. Exported for tests and for computing the
// paper's timeout table without a live timer.
func Timeout(k, c int, min, max time.Duration) time.Duration {
	if k < 1 || min >= max {
		return min
	}
	frac := math.Log(float64(c)+1) / math.Log(float64(k)+1)
	timeout := time.Duration(float64(max) - frac*float64(max-min))
	if timeout < min {
		timeout = min
	}
	return timeout
}

// remainingLocked returns the time left until expiry given the current
// confirmation count. May be negative if the deadline has already passed.
func (s *Suspicion) remainingLocked() time.Duration {
	// The original accuser does not count as an *independent*
	// confirmation.
	c := len(s.confirmations) - 1
	deadline := s.start.Add(Timeout(s.k, c, s.min, s.max))
	return deadline.Sub(s.clock.Now())
}

func (s *Suspicion) expire() {
	s.mu.Lock()
	if s.fired || s.stopped {
		s.mu.Unlock()
		return
	}
	s.fired = true
	c := len(s.confirmations) - 1
	fn := s.timeoutFn
	s.mu.Unlock()
	fn(c)
}

// Confirm processes a suspect message about the same member from the
// given accuser. It reports whether the accuser was new (an independent
// confirmation). New confirmations shrink the timeout; if the new
// deadline has already passed the timeout fires immediately.
//
// Confirmations beyond k are remembered (for dedup) but no longer count
// toward the decay, matching the paper's "first K independent suspicions".
func (s *Suspicion) Confirm(from string) bool {
	s.mu.Lock()
	if s.fired || s.stopped {
		s.mu.Unlock()
		return false
	}
	if s.accusedLocked(from) {
		s.mu.Unlock()
		return false
	}
	if len(s.confirmations)-1 >= s.k {
		// Already at the floor; remember for dedup only.
		s.confirmations = append(s.confirmations, from)
		s.mu.Unlock()
		return false
	}
	s.confirmations = append(s.confirmations, from)

	// Re-arm for the remaining time under the reduced timeout. A
	// deadline already in the past fires via a zero-delay timer rather
	// than inline: callers (the protocol core) invoke Confirm with
	// their own lock held, and the expiry callback re-enters them.
	if s.timer != nil {
		s.timer.Stop()
	}
	remaining := s.remainingLocked()
	if remaining < 0 {
		remaining = 0
	}
	s.timer = s.clock.AfterFunc(remaining, s.expire)
	s.mu.Unlock()
	return true
}

// Confirmations returns the number of independent confirmations processed
// (excluding the original accuser), capped at k.
func (s *Suspicion) Confirmations() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	c := len(s.confirmations) - 1
	if c > s.k {
		c = s.k
	}
	return c
}

// Accused reports whether the given member has already contributed a
// suspicion (original or confirmation).
func (s *Suspicion) Accused(from string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.accusedLocked(from)
}

func (s *Suspicion) accusedLocked(from string) bool {
	for _, name := range s.confirmations {
		if name == from {
			return true
		}
	}
	return false
}

// Stop cancels the suspicion (the member was refuted or declared dead by
// other means). It reports whether the timeout had not yet fired.
func (s *Suspicion) Stop() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.fired || s.stopped {
		return false
	}
	s.stopped = true
	if s.timer != nil {
		s.timer.Stop()
	}
	return true
}

// Start returns when the suspicion was raised.
func (s *Suspicion) Start() time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.start
}
