package suspicion

import (
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"lifeguard/internal/sim"
)

// newSim returns a scheduler-driven clock starting at virtual zero.
func newSim() (*sim.Scheduler, *sim.Clock) {
	sched := sim.NewScheduler(time.Unix(0, 0))
	return sched, sim.NewClock(sched)
}

func TestTimeoutFormula(t *testing.T) {
	min, max := 10*time.Second, 60*time.Second
	cases := []struct {
		k, c int
		want time.Duration
	}{
		// C=0 → Max; C=K → Min (log decay in between).
		{3, 0, 60 * time.Second},
		{3, 3, 10 * time.Second},
		{0, 0, 10 * time.Second},  // K=0: fixed SWIM timeout
		{0, 5, 10 * time.Second},  //
		{3, 10, 10 * time.Second}, // beyond K clamps at Min
	}
	for _, c := range cases {
		if got := Timeout(c.k, c.c, min, max); got != c.want {
			t.Errorf("Timeout(k=%d, c=%d) = %v, want %v", c.k, c.c, got, c.want)
		}
	}

	// Intermediate confirmations decay logarithmically: each successive
	// confirmation reduces the timeout by less (paper §IV-B).
	t1 := Timeout(3, 1, min, max)
	t2 := Timeout(3, 2, min, max)
	drop1 := max - t1
	drop2 := t1 - t2
	if !(t1 > t2 && t2 > min) {
		t.Errorf("decay not monotone: t1=%v t2=%v", t1, t2)
	}
	if drop2 >= drop1 {
		t.Errorf("decay not diminishing: drop1=%v drop2=%v", drop1, drop2)
	}
}

func TestTimeoutMinGEMaxIsFixed(t *testing.T) {
	if got := Timeout(3, 0, 10*time.Second, 10*time.Second); got != 10*time.Second {
		t.Errorf("min==max: %v", got)
	}
	if got := Timeout(3, 0, 10*time.Second, 5*time.Second); got != 10*time.Second {
		t.Errorf("min>max treated as fixed: %v", got)
	}
}

func TestFiresAtMaxWithoutConfirmations(t *testing.T) {
	sched, clock := newSim()
	fired := -1
	New(clock, "accuser", 3, 10*time.Second, 60*time.Second, func(c int) { fired = c })

	sched.RunFor(59 * time.Second)
	if fired != -1 {
		t.Fatal("fired before Max")
	}
	sched.RunFor(2 * time.Second)
	if fired != 0 {
		t.Fatalf("fired=%d, want 0 confirmations at expiry", fired)
	}
}

func TestConfirmationsShrinkTimeout(t *testing.T) {
	sched, clock := newSim()
	fired := -1
	s := New(clock, "a", 3, 10*time.Second, 60*time.Second, func(c int) { fired = c })

	sched.RunFor(time.Second)
	if !s.Confirm("b") || !s.Confirm("c") || !s.Confirm("d") {
		t.Fatal("fresh confirmations rejected")
	}
	// With C = K = 3 the timeout is Min = 10s from the start.
	sched.RunFor(8 * time.Second) // t = 9s
	if fired != -1 {
		t.Fatal("fired before Min")
	}
	sched.RunFor(2 * time.Second) // t = 11s
	if fired != 3 {
		t.Fatalf("fired=%d, want 3", fired)
	}
}

func TestConfirmDedupByAccuser(t *testing.T) {
	sched, clock := newSim()
	s := New(clock, "a", 3, 10*time.Second, 60*time.Second, func(int) {})
	defer s.Stop()
	sched.RunFor(time.Second)

	if !s.Confirm("b") {
		t.Fatal("first confirmation rejected")
	}
	if s.Confirm("b") {
		t.Error("duplicate accuser counted twice")
	}
	if s.Confirm("a") {
		t.Error("original accuser counted as confirmation")
	}
	if got := s.Confirmations(); got != 1 {
		t.Errorf("confirmations = %d, want 1", got)
	}
	if !s.Accused("a") || !s.Accused("b") || s.Accused("z") {
		t.Error("Accused bookkeeping wrong")
	}
}

func TestConfirmBeyondKRemembersButDoesNotCount(t *testing.T) {
	sched, clock := newSim()
	s := New(clock, "a", 2, 10*time.Second, 60*time.Second, func(int) {})
	defer s.Stop()
	sched.RunFor(time.Second)

	s.Confirm("b")
	s.Confirm("c")
	if s.Confirm("d") {
		t.Error("confirmation beyond K reported as counted")
	}
	if !s.Accused("d") {
		t.Error("beyond-K accuser not remembered for dedup")
	}
	if got := s.Confirmations(); got != 2 {
		t.Errorf("confirmations = %d, want K = 2", got)
	}
}

func TestLateConfirmationFiresImmediately(t *testing.T) {
	// If confirmations arrive after the reduced deadline has already
	// passed (a member draining a backlog at wake), the timeout fires
	// right away — but asynchronously, never inside Confirm.
	sched, clock := newSim()
	fired := -1
	s := New(clock, "a", 3, 5*time.Second, 60*time.Second, func(c int) { fired = c })

	sched.RunFor(20 * time.Second) // already past Min, well short of Max
	inConfirm := true
	s.Confirm("b")
	s.Confirm("c")
	s.Confirm("d") // C = K → deadline = start+5s, long past
	inConfirm = false
	_ = inConfirm
	if fired != -1 {
		t.Fatal("fired synchronously inside Confirm (deadlock hazard)")
	}
	sched.RunFor(time.Millisecond)
	if fired != 3 {
		t.Fatalf("fired=%d, want 3 right after late confirmation", fired)
	}
}

func TestStopPreventsFiring(t *testing.T) {
	sched, clock := newSim()
	fired := false
	s := New(clock, "a", 0, time.Second, time.Second, func(int) { fired = true })
	if !s.Stop() {
		t.Fatal("Stop reported already-fired")
	}
	if s.Stop() {
		t.Error("second Stop reported success")
	}
	sched.RunFor(5 * time.Second)
	if fired {
		t.Error("fired after Stop")
	}
	if s.Confirm("b") {
		t.Error("Confirm accepted after Stop")
	}
}

func TestFiresExactlyOnce(t *testing.T) {
	sched, clock := newSim()
	fires := 0
	s := New(clock, "a", 3, time.Second, 2*time.Second, func(int) { fires++ })
	sched.RunFor(time.Second + time.Millisecond)
	// Confirmations after firing must not re-arm.
	s.Confirm("b")
	s.Confirm("c")
	sched.RunFor(10 * time.Second)
	if fires != 1 {
		t.Fatalf("fired %d times, want 1", fires)
	}
	if s.Stop() {
		t.Error("Stop after firing reported success")
	}
}

func TestStartTime(t *testing.T) {
	sched, clock := newSim()
	sched.RunFor(7 * time.Second)
	s := New(clock, "a", 0, time.Minute, time.Minute, func(int) {})
	defer s.Stop()
	if got := s.Start(); !got.Equal(time.Unix(7, 0)) {
		t.Errorf("start = %v, want t+7s", got)
	}
}

func TestQuickTimeoutBoundedAndMonotone(t *testing.T) {
	f := func(k8, c8 uint8, minSec, spread uint16) bool {
		k := int(k8 % 10)
		c := int(c8 % 16)
		min := time.Duration(minSec%300+1) * time.Second
		max := min + time.Duration(spread)*time.Second
		got := Timeout(k, c, min, max)
		if got < min || got > max {
			return false
		}
		// Monotone non-increasing in C.
		if c > 0 && Timeout(k, c-1, min, max) < got {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestQuickPaperTimeoutTable(t *testing.T) {
	// Spot-check the paper's configuration: n=128, α=5, β=6, K=3 →
	// Min ≈ 10.53 s, Max ≈ 63.2 s, and C=1 cuts the gap by log(2)/log(4)
	// = 50%.
	min := time.Duration(5 * 2.1072099696 * float64(time.Second))
	max := 6 * min
	half := Timeout(3, 1, min, max)
	wantHalf := max - (max-min)/2
	if d := half - wantHalf; d < -time.Millisecond || d > time.Millisecond {
		t.Errorf("C=1 timeout %v, want %v (±1ms)", half, wantHalf)
	}
}

func TestManyIndependentSuspicions(t *testing.T) {
	// A table of suspicions like a node under churn would hold: all fire
	// in deterministic order on the virtual clock.
	sched, clock := newSim()
	var fired []string
	for i := 0; i < 10; i++ {
		name := fmt.Sprintf("m%d", i)
		d := time.Duration(i+1) * time.Second
		New(clock, "a", 0, d, d, func(int) { fired = append(fired, name) })
	}
	sched.RunFor(time.Minute)
	if len(fired) != 10 {
		t.Fatalf("fired %d, want 10", len(fired))
	}
	for i, name := range fired {
		if want := fmt.Sprintf("m%d", i); name != want {
			t.Errorf("fire order[%d] = %s, want %s", i, name, want)
		}
	}
}

func BenchmarkConfirm(b *testing.B) {
	sched, clock := newSim()
	s := New(clock, "a", 1<<30, time.Hour, 2*time.Hour, func(int) {})
	defer s.Stop()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Confirm(fmt.Sprintf("m%d", i))
	}
	_ = sched
}
