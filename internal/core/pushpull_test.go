package core

import (
	"testing"
	"time"

	"lifeguard/internal/wire"
)

func TestJoinSendsPushPullReq(t *testing.T) {
	h := newHarness(t, nil)
	h.clearSent()
	if err := h.node.Join("seed-addr"); err != nil {
		t.Fatal(err)
	}
	reqs := h.sentOfType(wire.TypePushPullReq)
	if len(reqs) != 1 {
		t.Fatalf("sent %d push-pull requests", len(reqs))
	}
	req := reqs[0].msg.(*wire.PushPullReq)
	if !req.Join || req.Source != "self" {
		t.Errorf("req = %+v", req)
	}
	if !reqs[0].pkt.reliable {
		t.Error("push-pull sent unreliably")
	}
	// The local table (just self) travels with the request.
	if len(req.States) != 1 || req.States[0].Name != "self" {
		t.Errorf("states = %+v", req.States)
	}
}

func TestPushPullReqMergesAndResponds(t *testing.T) {
	h := newHarness(t, nil)
	h.clearSent()
	h.inject("peer", &wire.PushPullReq{
		Source: "peer",
		States: []wire.PushPullState{
			{Name: "peer", Addr: "peer", Incarnation: 2, State: uint8(StateAlive)},
			{Name: "m1", Addr: "m1", Incarnation: 1, State: uint8(StateAlive)},
		},
	})
	// Both remote members learned.
	if got := h.state("peer").Incarnation; got != 2 {
		t.Errorf("peer inc = %d", got)
	}
	if got := h.state("m1").State; got != StateAlive {
		t.Errorf("m1 = %v", got)
	}
	// And we answered with our table.
	resps := h.sentOfType(wire.TypePushPullResp)
	if len(resps) != 1 {
		t.Fatalf("sent %d responses", len(resps))
	}
	// The merge happens before the response snapshot, so the response
	// reflects the just-learned members too (self + peer + m1).
	resp := resps[0].msg.(*wire.PushPullResp)
	if resp.Source != "self" || len(resp.States) != 3 {
		t.Errorf("resp = %+v", resp)
	}
	if !resps[0].pkt.reliable {
		t.Error("response sent unreliably")
	}
}

// TestPushPullRespGoesToAdvertisedAddrAfterCrashRejoin pins the
// response addressing for the crash-rejoin race the e2e harness flushed
// out: a member that died and restarted on a new ephemeral address
// sends its join push-pull while our table still holds the dead entry
// at the OLD address (alive@inc cannot displace dead@inc before a
// refutation). The response must go to the address the requester
// advertises for itself in its state table — sending it to the stale
// recorded address strands the rejoiner forever.
func TestPushPullRespGoesToAdvertisedAddrAfterCrashRejoin(t *testing.T) {
	h := newHarness(t, nil)
	h.addMember("m1", 1)
	h.addMember("m2", 1)
	// m1 crashes and is declared dead at incarnation 1, addr "m1".
	h.inject("m2", &wire.Dead{Incarnation: 1, Node: "m1", From: "m2"})
	if got := h.state("m1"); got.State != StateDead || got.Addr != "m1" {
		t.Fatalf("m1 = %+v, want dead at old addr", got)
	}

	// m1 restarts on a fresh port and joins: same name and incarnation,
	// new advertised address.
	h.clearSent()
	h.inject("m1-new", &wire.PushPullReq{
		Source: "m1",
		Join:   true,
		States: []wire.PushPullState{
			{Name: "m1", Addr: "m1-new", Incarnation: 1, State: uint8(StateAlive)},
		},
	})

	// The dead entry still wins the merge (no refutation yet) ...
	if got := h.state("m1").State; got != StateDead {
		t.Fatalf("m1 = %v after merge, want still dead pending refutation", got)
	}
	// ... but the response is addressed to where the rejoiner actually
	// lives, so it can learn of its own death and refute.
	resps := h.sentOfType(wire.TypePushPullResp)
	if len(resps) != 1 {
		t.Fatalf("sent %d responses", len(resps))
	}
	if got := resps[0].pkt.to; got != "m1-new" {
		t.Errorf("response addressed to %q, want advertised addr \"m1-new\"", got)
	}
}

func TestPushPullMergeRemoteSuspectStartsTimerWithoutConfirming(t *testing.T) {
	h := newHarness(t, nil)
	h.addMember("m1", 1)
	// Merge a remote table holding m1 suspect.
	h.inject("peer", &wire.PushPullResp{
		Source: "peer",
		States: []wire.PushPullState{
			{Name: "m1", Addr: "m1", Incarnation: 1, State: uint8(StateSuspect)},
		},
	})
	if got := h.state("m1").State; got != StateSuspect {
		t.Fatalf("m1 = %v after merge", got)
	}
	// The merged suspicion must not count the peer as an accuser: K=3
	// more gossiped suspicions must be needed to reach Min. With only
	// two more, the timeout must stay above Min (5s at n=2).
	h.inject("x", &wire.Suspect{Incarnation: 1, Node: "m1", From: "a1"})
	h.inject("x", &wire.Suspect{Incarnation: 1, Node: "m1", From: "a2"})
	h.run(10 * time.Second)
	if got := h.state("m1").State; got == StateDead {
		t.Fatal("merge-seeded suspicion reached Min with only 2 accusers")
	}
}

func TestPushPullMergeDoesNotRebroadcastSuspicion(t *testing.T) {
	h := newHarness(t, nil)
	h.addMember("m1", 1)
	for h.node.queue.Len() > 0 {
		h.node.queue.GetBroadcasts(2, 1400)
	}
	h.clearSent()
	h.inject("peer", &wire.PushPullResp{
		Source: "peer",
		States: []wire.PushPullState{
			{Name: "m1", Addr: "m1", Incarnation: 1, State: uint8(StateSuspect)},
		},
	})
	h.run(2 * time.Second) // several gossip ticks
	for _, s := range h.sentOfType(wire.TypeSuspect) {
		// The Buddy System legitimately tells m1 itself about the
		// suspicion; only copies sent to third parties would be
		// accusation re-gossip.
		if s.msg.(*wire.Suspect).Node == "m1" && s.pkt.to != "m1" {
			t.Fatal("anti-entropy merge was re-gossiped as an accusation")
		}
	}
}

func TestPushPullMergeRemoteDeadTreatedAsSuspicion(t *testing.T) {
	// memberlist merges remote dead as a suspicion so a live member can
	// still refute.
	h := newHarness(t, nil)
	h.addMember("m1", 1)
	h.inject("peer", &wire.PushPullResp{
		Source: "peer",
		States: []wire.PushPullState{
			{Name: "m1", Addr: "m1", Incarnation: 1, State: uint8(StateDead)},
		},
	})
	if got := h.state("m1").State; got != StateSuspect {
		t.Fatalf("m1 = %v, want suspect (refutable)", got)
	}
	// Refutation still wins.
	h.addMember("m1", 2)
	if got := h.state("m1").State; got != StateAlive {
		t.Errorf("m1 = %v after refutation", got)
	}
}

func TestPushPullMergeRemoteLeftIsTerminal(t *testing.T) {
	h := newHarness(t, nil)
	h.inject("peer", &wire.PushPullResp{
		Source: "peer",
		States: []wire.PushPullState{
			{Name: "m1", Addr: "m1", Incarnation: 3, State: uint8(StateLeft)},
		},
	})
	if got := h.state("m1").State; got != StateLeft {
		t.Fatalf("m1 = %v, want left", got)
	}
}

func TestPushPullMergeSuspectAboutSelfRefutes(t *testing.T) {
	h := newHarness(t, nil)
	before := h.node.Incarnation()
	h.inject("peer", &wire.PushPullResp{
		Source: "peer",
		States: []wire.PushPullState{
			{Name: "self", Addr: "self", Incarnation: before, State: uint8(StateSuspect)},
		},
	})
	if got := h.node.Incarnation(); got != before+1 {
		t.Errorf("incarnation = %d, want %d", got, before+1)
	}
}

func TestPushPullMergeUnknownSuspectLearnsThenSuspects(t *testing.T) {
	h := newHarness(t, nil)
	h.inject("peer", &wire.PushPullResp{
		Source: "peer",
		States: []wire.PushPullState{
			{Name: "ghost", Addr: "ghost", Incarnation: 4, State: uint8(StateSuspect)},
		},
	})
	m := h.state("ghost")
	if m.State != StateSuspect || m.Incarnation != 4 {
		t.Errorf("ghost = %+v", m)
	}
}

func TestPushPullTickExchangesState(t *testing.T) {
	h := newHarness(t, nil)
	h.addMember("m1", 1)
	h.clearSent()
	// Push-pull interval is 30s jittered ±1/8.
	h.run(40 * time.Second)
	reqs := h.sentOfType(wire.TypePushPullReq)
	if len(reqs) == 0 {
		t.Fatal("no periodic push-pull")
	}
	if reqs[0].pkt.to != "m1" {
		t.Errorf("push-pull to %s", reqs[0].pkt.to)
	}
}

func TestPushPullDisabled(t *testing.T) {
	h := newHarness(t, func(cfg *Config) { cfg.PushPullInterval = 0 })
	h.addMember("m1", 1)
	h.clearSent()
	h.run(2 * time.Minute)
	if got := len(h.sentOfType(wire.TypePushPullReq)); got != 0 {
		t.Errorf("%d push-pulls despite PushPullInterval=0", got)
	}
}

func TestPushPullStatesIncludeDead(t *testing.T) {
	// Dead-member retention: the table carries dead entries so failure
	// knowledge survives partitions (§III-B).
	h := newHarness(t, nil)
	h.addMember("m1", 1)
	h.inject("x", &wire.Dead{Incarnation: 1, Node: "m1", From: "x"})
	h.clearSent()
	h.inject("peer", &wire.PushPullReq{Source: "peer", States: nil})
	resps := h.sentOfType(wire.TypePushPullResp)
	if len(resps) != 1 {
		t.Fatal("no response")
	}
	var foundDead bool
	for _, s := range resps[0].msg.(*wire.PushPullResp).States {
		if s.Name == "m1" && State(s.State) == StateDead {
			foundDead = true
		}
	}
	if !foundDead {
		t.Error("dead member missing from push-pull table")
	}
}

func TestGossipPiggybackRespectsMTU(t *testing.T) {
	h := newHarness(t, func(cfg *Config) { cfg.MTU = 256 })
	for i := 0; i < 40; i++ {
		h.addMember(nodeName(i), 1)
	}
	h.clearSent()
	h.run(5 * time.Second)
	for _, pkt := range h.sent {
		total := len(wire.EncodePacket(pkt.msgs))
		if total > 256 {
			t.Fatalf("packet of %d bytes exceeds MTU 256", total)
		}
	}
}

func nodeName(i int) string {
	return string([]byte{'m', byte('0' + i/10), byte('0' + i%10)})
}

func TestGossipToTheRecentlyDead(t *testing.T) {
	h := newHarness(t, func(cfg *Config) {
		cfg.GossipNodes = 1
		cfg.GossipToTheDead = 30 * time.Second
	})
	h.addMember("m1", 1)
	h.inject("x", &wire.Dead{Incarnation: 1, Node: "m1", From: "x"})
	h.clearSent()

	// Keep the queue non-empty and count gossip packets to the dead
	// member: within the retention window it must receive some.
	sawDead := false
	for i := 0; i < 20; i++ {
		h.inject("x", &wire.Alive{Incarnation: uint64(i + 2), Node: "filler", Addr: "filler"})
		h.run(time.Second)
		for _, pkt := range h.sent {
			if pkt.to == "m1" {
				sawDead = true
			}
		}
	}
	if !sawDead {
		t.Error("dead member received no gossip within the retention window")
	}
}
