package core

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"time"

	"lifeguard/internal/coords"
	"lifeguard/internal/metrics"
	"lifeguard/internal/telemetry"
	"lifeguard/internal/timeutil"
	"lifeguard/internal/wire"
)

// Config parameterizes a Node. DefaultConfig returns the paper's
// memberlist defaults with all Lifeguard components enabled; SWIMConfig
// returns the paper's baseline (Table I, row "SWIM").
type Config struct {
	// Name is the member's unique name within the group.
	Name string

	// Addr is the member's transport address. Defaults to Name, which is
	// what the simulator uses.
	Addr string

	// Meta is opaque application metadata announced with the member (at
	// most wire.MaxMetaLen bytes). Change it at runtime with
	// Node.UpdateMeta.
	Meta []byte

	// Transport delivers packets. Required.
	Transport Transport

	// Clock drives timers. Defaults to the real clock.
	Clock timeutil.Clock

	// RNG drives randomized peer selection. Defaults to a time-seeded
	// source; experiments inject seeded sources for determinism.
	RNG *rand.Rand

	// Events receives membership change notifications. Optional.
	Events EventDelegate

	// Metrics receives counters. Defaults to a no-op sink.
	Metrics metrics.Sink

	// Telemetry, when non-nil, receives protocol observations: direct-ack
	// round-trip times (the same measurements that feed the Vivaldi
	// coordinate engine), probe round outcomes, Local Health Multiplier
	// score changes, and suspicion lifecycle durations. Nil — the default
	// — disables recording at zero cost: each hook is a single nil check
	// and the probe hot path stays allocation-free. Recording happens
	// under the node's lock and never draws from RNG or schedules clock
	// events, so enabling it does not perturb simulation determinism.
	Telemetry telemetry.Recorder

	// ProbeInterval is the base protocol period between liveness probes
	// (1 s in the paper). LHA-Probe scales it by (LHM+1).
	ProbeInterval time.Duration

	// ProbeTimeout is the base timeout for a direct probe's ack (500 ms
	// in the paper). LHA-Probe scales it by (LHM+1).
	ProbeTimeout time.Duration

	// IndirectChecks is k, the number of members enlisted for indirect
	// probes (3 in SWIM and the paper).
	IndirectChecks int

	// TCPFallback enables memberlist's reliable-channel direct probe
	// issued alongside the indirect probes (§III-B).
	TCPFallback bool

	// RetransmitMult is λ, the gossip retransmission multiplier (the
	// per-update budget is λ·⌈log10(n+1)⌉). memberlist's default is 4.
	RetransmitMult int

	// GossipInterval is the dedicated gossip tick (200 ms in
	// memberlist).
	GossipInterval time.Duration

	// GossipNodes is the gossip fanout per tick (3 in memberlist).
	GossipNodes int

	// GossipToTheDead is how long after death a member still receives
	// gossip, aiding recovery (30 s in memberlist).
	GossipToTheDead time.Duration

	// PushPullInterval is the anti-entropy full state sync period (30 s
	// in memberlist). Zero disables push-pull.
	PushPullInterval time.Duration

	// ReconnectInterval is how often the member attempts a push-pull
	// with a random dead (not left) member, the Serf-layer reconnect
	// that lets fully partitioned sub-groups re-merge once connectivity
	// returns (§II; Serf's default is 30 s). Zero disables reconnects.
	ReconnectInterval time.Duration

	// SuspicionAlpha is α in Min = α·log10(n)·ProbeInterval (paper
	// §V-C). The SWIM baseline uses α = 5 with β = 1.
	SuspicionAlpha float64

	// SuspicionBeta is β in Max = β·Min. Only meaningful with
	// LHASuspicion; the effective β is 1 (fixed timeout) otherwise.
	SuspicionBeta float64

	// SuspicionK is K, the number of independent suspicions that drive
	// the timeout to Min (3 in the paper).
	SuspicionK int

	// MaxLHM is S, the Local Health Multiplier saturation limit (8 in
	// the paper).
	MaxLHM int

	// NackTimeoutFraction is the fraction of the probe timeout after
	// which an indirect-probe relay sends a nack (0.8 in the paper).
	NackTimeoutFraction float64

	// LHAProbe enables Local Health Aware Probe (§IV-A): the LHM
	// counter, nack requests, and dynamic probe interval/timeout.
	LHAProbe bool

	// LHASuspicion enables Local Health Aware Suspicion (§IV-B):
	// dynamic suspicion timeouts with confirmation-driven decay and
	// re-gossip of the first K independent suspicions.
	LHASuspicion bool

	// BuddySystem enables the Buddy System (§IV-C): pings to a suspected
	// member always carry the suspicion.
	BuddySystem bool

	// RandomProbeSelection replaces SWIM's round-robin probe target
	// selection with uniform random selection, the strawman the SWIM
	// paper rejects because it leaves worst-case first-detection latency
	// unbounded (§III-A). Provided for ablation studies; leave false in
	// production.
	RandomProbeSelection bool

	// DisableCoordinates turns off the Vivaldi network-coordinate
	// subsystem: no coordinate payloads on pings and acks, no RTT
	// estimation. Coordinates are on by default; members with and
	// without them interoperate freely (the payload is an optional
	// trailing block old decoders skip).
	DisableCoordinates bool

	// Coords tunes the Vivaldi engine. Nil takes coords.DefaultConfig,
	// with the engine's randomness driven by RNG so simulations stay
	// deterministic.
	Coords *coords.Config

	// AdaptiveProbeTimeout derives each direct probe's ack timeout from
	// the Vivaldi RTT estimate to the target —
	// clamp(AdaptiveTimeoutMult·estRTT + AdaptiveTimeoutSlack,
	// AdaptiveTimeoutFloor, ProbeTimeout) — instead of the one static
	// ProbeTimeout, and closes the probe round's suspicion decision
	// early (AdaptiveRoundMult × the derived timeout, capped by the
	// protocol period) once the RTT-scaled budget has conclusively
	// passed. While coordinates are cold (fewer than CoordMinSamples
	// observations applied, or no estimate for the target) the round
	// falls back to the static timeout and full-period close. The
	// LHA-Probe awareness multiplier composes on top in both cases.
	// Requires coordinates; off by default.
	AdaptiveProbeTimeout bool

	// AdaptiveTimeoutMult is α, the multiple of the estimated RTT
	// granted to a direct probe before escalation. Zero takes the
	// default (3).
	AdaptiveTimeoutMult float64

	// AdaptiveTimeoutSlack is β, the additive slack on top of the
	// RTT-derived timeout, absorbing scheduling and processing delay
	// the coordinate cannot model. Zero takes the default (10 ms).
	AdaptiveTimeoutSlack time.Duration

	// AdaptiveTimeoutFloor is the lower clamp of the adaptive timeout,
	// so a near-zero estimate (coincident coordinates) cannot produce a
	// degenerate deadline. Zero takes the default (20 ms).
	AdaptiveTimeoutFloor time.Duration

	// AdaptiveRoundMult is the early-close multiplier: an adaptive
	// round's suspicion decision lands at AdaptiveRoundMult × the
	// derived direct timeout (still capped by the scaled protocol
	// period), budgeting for the indirect-probe detour instead of
	// always waiting the full period. Zero takes the default (3).
	AdaptiveRoundMult float64

	// CoordMinSamples is how many RTT observations the local Vivaldi
	// engine must have applied before its estimates steer protocol
	// decisions (adaptive timeouts, latency-biased gossip). Applies
	// only when those features are enabled; the default is 8.
	CoordMinSamples int

	// CoordinateRelaySelection biases indirect-probe relay selection
	// toward members whose estimated RTT to the probe target is lowest
	// (per the cached peer coordinates), after a guaranteed
	// random-diversity slice of RelayDiversity·IndirectChecks uniform
	// picks so selection never collapses onto one zone. Off by default.
	CoordinateRelaySelection bool

	// RelayDiversity is the fraction of IndirectChecks relay slots that
	// stay uniformly random under CoordinateRelaySelection, in [0, 1];
	// at least one slot stays random whenever the fraction is positive.
	// Zero takes the default (1/3).
	RelayDiversity float64

	// LatencyAwareGossip biases the dedicated gossip tick's peer
	// sampling toward members with a low estimated RTT from the local
	// coordinate, reserving a GossipEscapeFraction slice of the fanout
	// for uniform picks so updates still escape across zones. Waits for
	// CoordMinSamples observations; off by default.
	LatencyAwareGossip bool

	// GossipEscapeFraction is the fraction of the gossip fanout chosen
	// uniformly at random under LatencyAwareGossip, in (0, 1] — the
	// cross-cluster escape hatch that keeps dissemination latency
	// bounded when most traffic stays near. The fraction rounds to the
	// nearest whole slot of the fanout. Zero takes the default (0.5).
	GossipEscapeFraction float64

	// MTU is the maximum packet size for piggyback packing.
	MTU int

	// Blocked, when non-nil, reports whether the member's protocol
	// loops are currently stalled by an injected anomaly. The probe,
	// gossip and push-pull loops consult it and defer their work to the
	// next Wake call, modelling goroutines blocked on send (§V-D).
	// Production deployments leave it nil.
	Blocked func() bool
}

// DefaultConfig returns the paper's configuration with all Lifeguard
// components enabled (Table I, row "Lifeguard"): α = 5, β = 6, K = 3,
// S = 8.
func DefaultConfig(name string) *Config {
	return &Config{
		Name:                 name,
		ProbeInterval:        time.Second,
		ProbeTimeout:         500 * time.Millisecond,
		IndirectChecks:       3,
		TCPFallback:          true,
		RetransmitMult:       4,
		GossipInterval:       200 * time.Millisecond,
		GossipNodes:          3,
		GossipToTheDead:      30 * time.Second,
		PushPullInterval:     30 * time.Second,
		ReconnectInterval:    30 * time.Second,
		SuspicionAlpha:       5,
		SuspicionBeta:        6,
		SuspicionK:           3,
		MaxLHM:               8,
		NackTimeoutFraction:  0.8,
		LHAProbe:             true,
		LHASuspicion:         true,
		BuddySystem:          true,
		AdaptiveTimeoutMult:  3,
		AdaptiveTimeoutSlack: 10 * time.Millisecond,
		AdaptiveTimeoutFloor: 20 * time.Millisecond,
		AdaptiveRoundMult:    3,
		CoordMinSamples:      8,
		RelayDiversity:       1.0 / 3,
		GossipEscapeFraction: 0.5,
		MTU:                  1400,
	}
}

// SWIMConfig returns the paper's baseline configuration (Table I, row
// "SWIM"): all Lifeguard components disabled and the fixed suspicion
// timeout equivalent to α = 5, β = 1.
func SWIMConfig(name string) *Config {
	cfg := DefaultConfig(name)
	cfg.LHAProbe = false
	cfg.LHASuspicion = false
	cfg.BuddySystem = false
	cfg.SuspicionBeta = 1
	return cfg
}

// validate normalizes defaults and rejects unusable configurations.
func (c *Config) validate() error {
	if c.Name == "" {
		return errors.New("core: config requires a Name")
	}
	if c.Transport == nil {
		return errors.New("core: config requires a Transport")
	}
	if c.Addr == "" {
		c.Addr = c.Transport.LocalAddr()
	}
	if c.Clock == nil {
		c.Clock = timeutil.RealClock{}
	}
	if c.RNG == nil {
		c.RNG = rand.New(rand.NewSource(time.Now().UnixNano()))
	}
	if c.Metrics == nil {
		c.Metrics = metrics.NopSink{}
	}
	if c.ProbeInterval <= 0 || c.ProbeTimeout <= 0 {
		return fmt.Errorf("core: probe interval (%v) and timeout (%v) must be positive", c.ProbeInterval, c.ProbeTimeout)
	}
	if c.ProbeTimeout > c.ProbeInterval {
		return fmt.Errorf("core: probe timeout (%v) exceeds probe interval (%v)", c.ProbeTimeout, c.ProbeInterval)
	}
	if c.IndirectChecks < 0 {
		return errors.New("core: IndirectChecks must be non-negative")
	}
	if c.RetransmitMult < 1 {
		return errors.New("core: RetransmitMult must be at least 1")
	}
	if c.GossipInterval <= 0 || c.GossipNodes < 0 {
		return errors.New("core: gossip interval must be positive and fanout non-negative")
	}
	if c.SuspicionAlpha <= 0 {
		return errors.New("core: SuspicionAlpha must be positive")
	}
	if c.SuspicionBeta < 1 {
		return errors.New("core: SuspicionBeta must be at least 1")
	}
	if c.SuspicionK < 0 {
		return errors.New("core: SuspicionK must be non-negative")
	}
	if c.MaxLHM < 1 {
		return errors.New("core: MaxLHM must be at least 1")
	}
	if c.NackTimeoutFraction <= 0 || c.NackTimeoutFraction >= 1 {
		return errors.New("core: NackTimeoutFraction must be in (0, 1)")
	}
	if c.AdaptiveTimeoutMult == 0 {
		c.AdaptiveTimeoutMult = 3
	}
	if c.AdaptiveTimeoutSlack == 0 {
		c.AdaptiveTimeoutSlack = 10 * time.Millisecond
	}
	if c.AdaptiveTimeoutFloor == 0 {
		c.AdaptiveTimeoutFloor = 20 * time.Millisecond
	}
	if c.AdaptiveRoundMult == 0 {
		c.AdaptiveRoundMult = 3
	}
	if c.CoordMinSamples == 0 {
		c.CoordMinSamples = 8
	}
	if c.RelayDiversity == 0 {
		c.RelayDiversity = 1.0 / 3
	}
	if c.GossipEscapeFraction == 0 {
		c.GossipEscapeFraction = 0.5
	}
	if c.AdaptiveTimeoutMult < 1 {
		return errors.New("core: AdaptiveTimeoutMult must be at least 1")
	}
	if c.AdaptiveTimeoutSlack < 0 || c.AdaptiveTimeoutFloor < 0 {
		return errors.New("core: adaptive timeout slack and floor must be non-negative")
	}
	if c.AdaptiveTimeoutFloor > c.ProbeTimeout {
		// A floor above the ceiling just means "always the static
		// timeout"; aggressive low-latency configs shrink it rather
		// than reject.
		c.AdaptiveTimeoutFloor = c.ProbeTimeout
	}
	if c.AdaptiveRoundMult < 1 {
		return errors.New("core: AdaptiveRoundMult must be at least 1")
	}
	if c.CoordMinSamples < 0 {
		return errors.New("core: CoordMinSamples must be non-negative")
	}
	if c.RelayDiversity < 0 || c.RelayDiversity > 1 {
		return errors.New("core: RelayDiversity must be in [0, 1]")
	}
	if c.GossipEscapeFraction < 0 || c.GossipEscapeFraction > 1 {
		return errors.New("core: GossipEscapeFraction must be in [0, 1]")
	}
	if c.AdaptiveProbeTimeout && c.DisableCoordinates {
		return errors.New("core: AdaptiveProbeTimeout requires coordinates")
	}
	if c.CoordinateRelaySelection && c.DisableCoordinates {
		return errors.New("core: CoordinateRelaySelection requires coordinates")
	}
	if c.LatencyAwareGossip && c.DisableCoordinates {
		return errors.New("core: LatencyAwareGossip requires coordinates")
	}
	if c.MTU < 128 {
		return errors.New("core: MTU must be at least 128 bytes")
	}
	if len(c.Meta) > wire.MaxMetaLen {
		return fmt.Errorf("core: Meta is %d bytes, limit %d", len(c.Meta), wire.MaxMetaLen)
	}
	return nil
}

// SuspicionMin returns Min = α·max(1, log10(n))·probeInterval, the floor
// of the suspicion timeout for a cluster of n members (paper §V-C,
// following memberlist's formula, which clamps log10(n) below at 1).
func SuspicionMin(alpha float64, n int, probeInterval time.Duration) time.Duration {
	if n < 1 {
		n = 1
	}
	nodeScale := math.Max(1, math.Log10(float64(n)))
	return time.Duration(alpha * nodeScale * float64(probeInterval))
}
