package core

import (
	"math/rand"
	"testing"
	"time"

	"lifeguard/internal/metrics"
	"lifeguard/internal/sim"
	"lifeguard/internal/wire"
)

// harness drives a single Node with a virtual clock and a transport
// that captures every outgoing packet, decoded.
type harness struct {
	t     *testing.T
	sched *sim.Scheduler
	clock *sim.Clock
	node  *Node
	sink  *metrics.MemSink

	sent    []sentPacket
	blocked bool
	events  []string

	// autoAck makes the transport answer the node's pings on behalf of
	// live peers, so the node's own probe loop does not falsely suspect
	// everyone. Names in unresponsive stop answering.
	autoAck      bool
	unresponsive map[string]bool
}

type sentPacket struct {
	to       string
	reliable bool
	msgs     []wire.Message
}

type captureTransport struct {
	h    *harness
	addr string
}

func (c *captureTransport) LocalAddr() string { return c.addr }

func (c *captureTransport) SendPacket(to string, payload []byte, reliable bool) error {
	msgs, err := wire.DecodePacket(payload)
	if err != nil {
		c.h.t.Fatalf("node sent undecodable packet: %v", err)
	}
	c.h.sent = append(c.h.sent, sentPacket{to: to, reliable: reliable, msgs: msgs})

	if c.h.autoAck && !c.h.unresponsive[to] {
		for _, m := range msgs {
			ping, ok := m.(*wire.Ping)
			if !ok || ping.Target != to {
				continue
			}
			seq, peer := ping.SeqNo, to
			// Deliver the ack asynchronously (the node lock is held
			// here), like a 1 ms network round trip.
			c.h.sched.Schedule(time.Millisecond, func() {
				c.h.node.HandlePacket(peer, wire.EncodePacket([]wire.Message{
					&wire.Ack{SeqNo: seq, Source: peer},
				}))
			})
		}
	}
	return nil
}

type eventRecorder struct{ h *harness }

func (e eventRecorder) NotifyJoin(m Member)    { e.h.events = append(e.h.events, "join:"+m.Name) }
func (e eventRecorder) NotifySuspect(m Member) { e.h.events = append(e.h.events, "suspect:"+m.Name) }
func (e eventRecorder) NotifyAlive(m Member)   { e.h.events = append(e.h.events, "alive:"+m.Name) }
func (e eventRecorder) NotifyUpdate(m Member)  { e.h.events = append(e.h.events, "update:"+m.Name) }
func (e eventRecorder) NotifyDead(m Member)    { e.h.events = append(e.h.events, "dead:"+m.Name) }

// newHarness builds a started node named "self". configure may adjust
// the config before the node is created.
func newHarness(t *testing.T, configure func(*Config)) *harness {
	t.Helper()
	h := &harness{
		t:            t,
		sched:        sim.NewScheduler(time.Unix(0, 0)),
		sink:         metrics.NewMemSink(),
		autoAck:      true,
		unresponsive: make(map[string]bool),
	}
	h.clock = sim.NewClock(h.sched)

	cfg := DefaultConfig("self")
	cfg.Clock = h.clock
	cfg.Transport = &captureTransport{h: h, addr: "self"}
	cfg.RNG = rand.New(rand.NewSource(1))
	cfg.Events = eventRecorder{h: h}
	cfg.Metrics = h.sink
	cfg.Blocked = func() bool { return h.blocked }
	if configure != nil {
		configure(cfg)
	}

	node, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	h.node = node
	if err := node.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(node.Shutdown)
	return h
}

// inject delivers one message to the node as if from the given peer.
func (h *harness) inject(from string, msgs ...wire.Message) {
	h.t.Helper()
	h.node.HandlePacket(from, wire.EncodePacket(msgs))
}

// addMember introduces a member via an alive message.
func (h *harness) addMember(name string, inc uint64) {
	h.t.Helper()
	h.inject(name, &wire.Alive{Incarnation: inc, Node: name, Addr: name})
}

// run advances virtual time.
func (h *harness) run(d time.Duration) { h.sched.RunFor(d) }

// clearSent discards captured packets (e.g. the initial alive burst).
func (h *harness) clearSent() { h.sent = nil }

// sentOfType returns every captured message of the given type, with the
// packet it travelled in.
func (h *harness) sentOfType(t wire.MsgType) []struct {
	pkt sentPacket
	msg wire.Message
} {
	var out []struct {
		pkt sentPacket
		msg wire.Message
	}
	for _, pkt := range h.sent {
		for _, m := range pkt.msgs {
			if m.Type() == t {
				out = append(out, struct {
					pkt sentPacket
					msg wire.Message
				}{pkt, m})
			}
		}
	}
	return out
}

// state returns the node's view of a member, failing the test if the
// member is unknown.
func (h *harness) state(name string) Member {
	h.t.Helper()
	m, ok := h.node.Member(name)
	if !ok {
		h.t.Fatalf("member %q unknown", name)
	}
	return m
}
