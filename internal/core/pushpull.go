package core

import (
	"time"

	"lifeguard/internal/wire"
)

// localStatesLocked snapshots the full membership table, including self
// and the retained dead, for a push-pull exchange. The table is in
// ascending name order so the wire encoding — and therefore the
// receiver's merge order — is deterministic; the order comes for free
// from the incrementally maintained sorted roster (see intern.go), so
// the per-exchange allocate-and-sort of the whole table is gone.
//
// The returned slice is the node's reusable snapshot scratch: it is
// valid only until the next localStatesLocked call. Every caller
// encodes it into a packet before releasing the node lock, which is
// what makes the reuse safe.
func (n *Node) localStatesLocked() []wire.PushPullState {
	states := n.ppStates[:0]
	for _, m := range n.sortedMembers {
		states = append(states, wire.PushPullState{
			Name:        m.Name,
			Addr:        m.Addr,
			Incarnation: m.Incarnation,
			State:       uint8(m.State),
			Meta:        m.Meta,
		})
	}
	n.ppStates = states
	return states
}

// schedulePushPullLocked arms the next anti-entropy exchange.
func (n *Node) schedulePushPullLocked() {
	if n.shutdown || n.cfg.PushPullInterval <= 0 {
		return
	}
	// Jitter the first and subsequent syncs so a simultaneously-started
	// cluster does not synchronize in lock step.
	d := n.cfg.PushPullInterval
	jitter := d / 8
	if jitter > 0 {
		d = d - jitter + time.Duration(n.cfg.RNG.Int63n(int64(2*jitter)))
	}
	n.pushPullTimer = n.cfg.Clock.AfterFunc(d, n.pushPullTick)
}

// pushPullTick starts one full state sync with a random live member.
func (n *Node) pushPullTick() {
	n.mu.Lock()
	if n.shutdown {
		n.mu.Unlock()
		return
	}
	n.schedulePushPullLocked()
	if n.blockedLocked() {
		if !n.pushPullDeferred {
			n.pushPullDeferred = true
			n.deferToWakeLocked(func() {
				n.mu.Lock()
				n.pushPullDeferred = false
				n.pushPullLocked()
				n.mu.Unlock()
			})
		}
		n.mu.Unlock()
		return
	}
	n.pushPullLocked()
	n.mu.Unlock()
}

// pushPullLocked sends the request half of an anti-entropy exchange.
func (n *Node) pushPullLocked() {
	peers := n.selectRandomLocked(1, func(m *memberState) bool {
		return m.State == StateAlive && m != n.self
	})
	if len(peers) == 0 {
		return
	}
	req := &wire.PushPullReq{
		Source: n.cfg.Name,
		States: n.localStatesLocked(),
	}
	_ = n.sendPacketLocked(peers[0].Addr, []wire.Message{req}, true)
}

// handlePushPullReqLocked merges the remote table and answers with ours.
//
// The merge happens before the response snapshot is taken (memberlist
// does the reverse): if the remote table accuses us of being dead or
// suspect, our refutation — and any suspicions the remote table seeded —
// are already reflected in the response. This makes partition healing
// converge in a couple of reconnect rounds instead of many.
func (n *Node) handlePushPullReqLocked(from string, req *wire.PushPullReq) {
	n.mergeRemoteStateLocked(req.Source, req.States)
	resp := &wire.PushPullResp{
		Source: n.cfg.Name,
		States: n.localStatesLocked(),
	}

	// Address the response by the requester's own advertised address in
	// its state table, not by our member record: after a crash-rejoin on
	// a fresh ephemeral port the record still holds the dead entry's old
	// address (alive@inc cannot displace dead@inc before a refutation),
	// and a response sent there is lost — the rejoiner would never learn
	// it must refute. Self-advertised and recorded addresses agree in
	// every other case.
	addr := req.Source
	if m, ok := n.members[req.Source]; ok {
		addr = m.Addr
	} else if from != "" {
		addr = from
	}
	for i := range req.States {
		if req.States[i].Name == req.Source && req.States[i].Addr != "" {
			addr = req.States[i].Addr
			break
		}
	}
	_ = n.sendPacketLocked(addr, []wire.Message{resp}, true)
}

// handlePushPullRespLocked merges the response half of an exchange.
func (n *Node) handlePushPullRespLocked(resp *wire.PushPullResp) {
	n.mergeRemoteStateLocked(resp.Source, resp.States)
}

// scheduleReconnectLocked arms the next reconnect attempt (the Serf
// layer's partition-healing behaviour).
func (n *Node) scheduleReconnectLocked() {
	if n.shutdown || n.cfg.ReconnectInterval <= 0 {
		return
	}
	d := n.cfg.ReconnectInterval
	jitter := d / 8
	if jitter > 0 {
		d = d - jitter + time.Duration(n.cfg.RNG.Int63n(int64(2*jitter)))
	}
	n.reconnectTimer = n.cfg.Clock.AfterFunc(d, n.reconnectTick)
}

// reconnectTick attempts a push-pull with one random dead member. If the
// member is actually reachable again (healed partition, recovered host),
// the exchange triggers the refutation cascade that re-merges the
// groups; if it is truly dead, the packet vanishes like any other.
func (n *Node) reconnectTick() {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.shutdown {
		return
	}
	n.scheduleReconnectLocked()
	if n.blockedLocked() {
		return // skip quietly; reconnects are periodic anyway
	}
	targets := n.selectRandomLocked(1, func(m *memberState) bool {
		return m.State == StateDead && m != n.self
	})
	if len(targets) == 0 {
		return
	}
	n.cfg.Metrics.IncrCounter("reconnect_attempts", 1)
	req := &wire.PushPullReq{
		Source: n.cfg.Name,
		States: n.localStatesLocked(),
	}
	_ = n.sendPacketLocked(targets[0].Addr, []wire.Message{req}, true)
}

// mergeRemoteStateLocked reconciles a remote membership table with ours
// using incarnation precedence, by replaying each entry through the
// regular message handlers. A remote dead is merged as a suspicion
// (memberlist's choice): if the member is actually alive, refutation can
// still win; left is terminal and merged as-is.
func (n *Node) mergeRemoteStateLocked(source string, states []wire.PushPullState) {
	for i := range states {
		s := &states[i]
		switch State(s.State) {
		case StateAlive:
			n.handleAliveLocked(&wire.Alive{
				Incarnation: s.Incarnation,
				Node:        s.Name,
				Addr:        s.Addr,
				Meta:        s.Meta,
			})
		case StateSuspect, StateDead:
			// Learn of the member first if it is new, then apply the
			// suspicion at the remote incarnation. Anti-entropy state is
			// not an accusation: it must neither confirm an existing
			// suspicion (only received suspect messages from distinct
			// accusers count as independent, §IV-B) nor be re-gossiped
			// with a relabeled accuser — doing either manufactures fake
			// independent suspicions on every push-pull and collapses
			// LHA-Suspicion's timeout cluster-wide.
			if _, known := n.members[s.Name]; !known {
				n.handleAliveLocked(&wire.Alive{
					Incarnation: s.Incarnation,
					Node:        s.Name,
					Addr:        s.Addr,
				})
			}
			n.applyMergedSuspicionLocked(s.Name, s.Incarnation)
		case StateLeft:
			if _, known := n.members[s.Name]; !known {
				n.handleAliveLocked(&wire.Alive{
					Incarnation: s.Incarnation,
					Node:        s.Name,
					Addr:        s.Addr,
				})
			}
			n.handleDeadLocked(&wire.Dead{
				Incarnation: s.Incarnation,
				Node:        s.Name,
				From:        s.Name,
			})
		}
	}
}
