package core_test

// Integration tests: full protocol nodes on the discrete-event
// simulator. These exercise convergence, true failure detection,
// refutation, recovery and the Lifeguard components end to end in
// virtual time.

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"lifeguard/internal/core"
	"lifeguard/internal/sim"
)

// testCluster wires N nodes to a simulated network.
type testCluster struct {
	t     *testing.T
	sched *sim.Scheduler
	net   *sim.Network
	nodes []*core.Node
}

type clusterOpts struct {
	n         int
	seed      int64
	netOpts   sim.Options
	configure func(i int, cfg *core.Config)
}

func newTestCluster(t *testing.T, opts clusterOpts) *testCluster {
	t.Helper()
	sched := sim.NewScheduler(time.Unix(0, 0))
	netOpts := opts.netOpts
	netOpts.Seed = opts.seed
	network := sim.NewNetwork(sched, netOpts)

	c := &testCluster{t: t, sched: sched, net: network}
	for i := 0; i < opts.n; i++ {
		name := fmt.Sprintf("node-%03d", i)
		cfg := core.DefaultConfig(name)
		cfg.Clock = network.Clock()
		cfg.RNG = rand.New(rand.NewSource(opts.seed + int64(i) + 1))
		if opts.configure != nil {
			opts.configure(i, cfg)
		}
		var node *core.Node
		port, err := network.Attach(name, func(from string, payload []byte) {
			node.HandlePacket(from, payload)
		})
		if err != nil {
			t.Fatalf("attach %s: %v", name, err)
		}
		cfg.Transport = port
		gateName := name
		cfg.Blocked = func() bool { return network.Gated(gateName) }
		node, err = core.New(cfg)
		if err != nil {
			t.Fatalf("new %s: %v", name, err)
		}
		network.OnWake(name, node.Wake)
		c.nodes = append(c.nodes, node)
	}
	return c
}

// start boots every node and joins them through node 0.
func (c *testCluster) start() {
	for _, n := range c.nodes {
		if err := n.Start(); err != nil {
			c.t.Fatalf("start %s: %v", n.Name(), err)
		}
	}
	seed := c.nodes[0].Addr()
	for _, n := range c.nodes[1:] {
		if err := n.Join(seed); err != nil {
			c.t.Fatalf("join %s: %v", n.Name(), err)
		}
	}
}

func (c *testCluster) run(d time.Duration) { c.sched.RunFor(d) }

// converged reports whether every node sees every node alive.
func (c *testCluster) converged() bool {
	for _, n := range c.nodes {
		alive := 0
		for _, m := range n.Members() {
			if m.State == core.StateAlive {
				alive++
			}
		}
		if alive != len(c.nodes) {
			return false
		}
	}
	return true
}

func (c *testCluster) shutdown() {
	for _, n := range c.nodes {
		n.Shutdown()
	}
}

func TestClusterConvergence(t *testing.T) {
	c := newTestCluster(t, clusterOpts{n: 16, seed: 1})
	defer c.shutdown()
	c.start()
	c.run(15 * time.Second)
	if !c.converged() {
		for _, n := range c.nodes {
			t.Logf("%s: alive=%d members=%d", n.Name(), n.NumAlive(), len(n.Members()))
		}
		t.Fatal("cluster did not converge within 15s")
	}
}

func TestTrueFailureDetected(t *testing.T) {
	c := newTestCluster(t, clusterOpts{n: 16, seed: 2})
	defer c.shutdown()
	c.start()
	c.run(15 * time.Second)
	if !c.converged() {
		t.Fatal("no convergence")
	}

	// Kill node 5 outright: no anomaly, a real crash.
	victim := c.nodes[5]
	victim.Shutdown()
	c.net.Detach(victim.Name())

	// Suspicion min for n=16 at α=5 is 5·log10(16)·1s ≈ 6.0s; with β=6
	// the timeout starts near 36s but confirmations from a healthy
	// cluster should drive it down. Allow a generous horizon.
	c.run(60 * time.Second)

	for _, n := range c.nodes {
		if n == victim {
			continue
		}
		m, ok := n.Member(victim.Name())
		if !ok || m.State != core.StateDead {
			t.Fatalf("%s still sees %s as %v", n.Name(), victim.Name(), m.State)
		}
	}
}

func TestSuspicionRefutedForHealthyMember(t *testing.T) {
	// Block a member briefly so it gets suspected, then release it; it
	// must refute and return to alive everywhere without ever being
	// declared dead.
	deadEvents := 0
	c := newTestCluster(t, clusterOpts{
		n:    16,
		seed: 3,
		configure: func(i int, cfg *core.Config) {
			cfg.Events = deadCounter{&deadEvents}
		},
	})
	defer c.shutdown()
	c.start()
	c.run(15 * time.Second)

	c.net.SetGated("node-007", true)
	c.run(4 * time.Second) // long enough to fail probes, short of any timeout
	c.net.SetGated("node-007", false)
	c.run(30 * time.Second)

	if deadEvents != 0 {
		t.Fatalf("healthy member was declared dead %d times", deadEvents)
	}
	if !c.converged() {
		t.Fatal("cluster did not re-converge after anomaly")
	}
}

type deadCounter struct{ n *int }

func (d deadCounter) NotifyJoin(core.Member)    {}
func (d deadCounter) NotifySuspect(core.Member) {}
func (d deadCounter) NotifyAlive(core.Member)   {}
func (d deadCounter) NotifyDead(core.Member)    { *d.n++ }
func (d deadCounter) NotifyUpdate(core.Member)  {}

func TestRecoveryAfterFalseDeath(t *testing.T) {
	// Under SWIM (no Lifeguard), a long enough block gets a member
	// declared dead; on release it must refute and rejoin everywhere.
	c := newTestCluster(t, clusterOpts{
		n:    16,
		seed: 4,
		configure: func(i int, cfg *core.Config) {
			swim := core.SWIMConfig(cfg.Name)
			swim.Clock, swim.RNG = cfg.Clock, cfg.RNG
			*cfg = *swim
		},
	})
	defer c.shutdown()
	c.start()
	c.run(15 * time.Second)
	if !c.converged() {
		t.Fatal("no convergence")
	}

	victim := "node-003"
	c.net.SetGated(victim, true)
	c.run(30 * time.Second) // past the fixed ~6s suspicion timeout

	declared := 0
	for _, n := range c.nodes {
		if n.Name() == victim {
			continue
		}
		if m, ok := n.Member(victim); ok && m.State == core.StateDead {
			declared++
		}
	}
	if declared == 0 {
		t.Fatal("blocked member was never declared dead under SWIM")
	}

	c.net.SetGated(victim, false)
	c.run(60 * time.Second)
	if !c.converged() {
		for _, n := range c.nodes {
			m, _ := n.Member(victim)
			t.Logf("%s sees %s as %v inc=%d", n.Name(), victim, m.State, m.Incarnation)
		}
		t.Fatal("cluster did not re-converge after release")
	}
}

func TestClusterToleratesPacketLoss(t *testing.T) {
	// 10% uniform loss: the cluster must still converge and hold steady
	// without false positives (gossip redundancy is the point of SWIM).
	deadEvents := 0
	c := newTestCluster(t, clusterOpts{
		n:       16,
		seed:    31,
		netOpts: sim.Options{Loss: 0.10},
		configure: func(i int, cfg *core.Config) {
			cfg.Events = deadCounter{&deadEvents}
		},
	})
	defer c.shutdown()
	c.start()
	c.run(30 * time.Second)
	if !c.converged() {
		t.Fatal("no convergence under 10% loss")
	}
	c.run(60 * time.Second)
	if deadEvents != 0 {
		t.Errorf("%d false failure events under 10%% loss", deadEvents)
	}
}

func TestClusterSurvivesHeavyLoss(t *testing.T) {
	// 40% loss: convergence may stutter but the group must not melt
	// down into mass false positives.
	deadEvents := 0
	c := newTestCluster(t, clusterOpts{
		n:       12,
		seed:    33,
		netOpts: sim.Options{Loss: 0.40},
		configure: func(i int, cfg *core.Config) {
			cfg.Events = deadCounter{&deadEvents}
		},
	})
	defer c.shutdown()
	c.start()
	c.run(2 * time.Minute)
	if deadEvents > 12 {
		t.Errorf("%d failure events under 40%% loss (mass false positives)", deadEvents)
	}
}

func TestLHMRisesUnderAnomaly(t *testing.T) {
	c := newTestCluster(t, clusterOpts{n: 8, seed: 5})
	defer c.shutdown()
	c.start()
	c.run(15 * time.Second)

	target := c.nodes[2]
	if got := target.HealthScore(); got != 0 {
		t.Fatalf("healthy member has LHM %d, want 0", got)
	}

	// Isolate node 2's outbound+inbound links so its probes fail while
	// it keeps running (network trouble, not process block).
	for _, n := range c.nodes {
		if n == target {
			continue
		}
		c.net.FailLink(target.Name(), n.Name(), true)
		c.net.FailLink(n.Name(), target.Name(), true)
	}
	c.run(10 * time.Second)

	if got := target.HealthScore(); got < 3 {
		t.Fatalf("isolated member has LHM %d, want >= 3", got)
	}
}
