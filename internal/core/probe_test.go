package core

import (
	"fmt"
	"testing"
	"time"

	"lifeguard/internal/metrics"
	"lifeguard/internal/wire"
)

func TestProbeSendsPingEachPeriod(t *testing.T) {
	h := newHarness(t, nil)
	h.addMember("m1", 1)
	h.clearSent()
	h.run(3500 * time.Millisecond)

	pings := h.sentOfType(wire.TypePing)
	if len(pings) != 3 {
		t.Fatalf("sent %d pings in 3.5 periods, want 3", len(pings))
	}
	for _, p := range pings {
		ping := p.msg.(*wire.Ping)
		if ping.Target != "m1" || ping.Source != "self" {
			t.Errorf("ping = %+v", ping)
		}
	}
}

func TestProbeRoundRobinCoversAllMembers(t *testing.T) {
	h := newHarness(t, nil)
	const n = 8
	for i := 0; i < n; i++ {
		h.addMember(fmt.Sprintf("m%d", i), 1)
	}
	h.clearSent()
	// Two full passes: every member must be probed exactly twice —
	// round robin, not random selection.
	h.run(2 * n * time.Second)

	counts := map[string]int{}
	for _, p := range h.sentOfType(wire.TypePing) {
		counts[p.msg.(*wire.Ping).Target]++
	}
	if len(counts) != n {
		t.Fatalf("probed %d distinct members, want %d (%v)", len(counts), n, counts)
	}
	for name, c := range counts {
		if c != 2 {
			t.Errorf("%s probed %d times, want 2", name, c)
		}
	}
}

func TestProbeSkipsDeadMembers(t *testing.T) {
	h := newHarness(t, nil)
	h.addMember("m1", 1)
	h.addMember("m2", 1)
	h.inject("x", &wire.Dead{Incarnation: 1, Node: "m1", From: "x"})
	h.clearSent()
	h.run(6 * time.Second)
	for _, p := range h.sentOfType(wire.TypePing) {
		if p.msg.(*wire.Ping).Target == "m1" {
			t.Fatal("probed a dead member")
		}
	}
}

func TestSuccessfulProbeLowersLHM(t *testing.T) {
	h := newHarness(t, nil)
	h.addMember("m1", 1)
	// Charge the LHM first.
	h.node.aware.ApplyDelta(4)
	// One successful probe round: −1.
	h.run(5 * time.Second) // scaled interval is 5s at LHM=4
	if got := h.node.HealthScore(); got >= 4 {
		t.Errorf("LHM = %d, want < 4 after successful probes", got)
	}
}

func TestFailedProbeRaisesLHMAndSuspects(t *testing.T) {
	h := newHarness(t, nil)
	h.addMember("m1", 1)
	h.unresponsive["m1"] = true
	h.clearSent()

	// The round starts at the first tick (t = 1 s) and closes one full
	// period later (t = 2 s).
	h.run(2100 * time.Millisecond)
	if got := h.state("m1").State; got != StateSuspect {
		t.Fatalf("state = %v after failed round", got)
	}
	// Failed probe +1; with LHA-Probe and no relays, no nack penalty.
	if got := h.node.HealthScore(); got != 1 {
		t.Errorf("LHM = %d, want 1", got)
	}
	if got := h.sink.Get(metrics.CounterProbeFailures); got != 1 {
		t.Errorf("probe failures = %d", got)
	}
	// The failure-origin suspicion names us as accuser.
	found := false
	for _, s := range h.sentOfType(wire.TypeSuspect) {
		sus := s.msg.(*wire.Suspect)
		if sus.Node == "m1" && sus.From == "self" {
			found = true
		}
	}
	if !found {
		t.Error("own suspicion not gossiped with From=self")
	}
}

func TestProbeTimeoutLaunchesIndirectAndFallback(t *testing.T) {
	h := newHarness(t, nil)
	h.addMember("m1", 1)
	for i := 0; i < 5; i++ {
		h.addMember(fmt.Sprintf("r%d", i), 1)
	}
	h.unresponsive["m1"] = true
	h.clearSent()

	// Walk the schedule until m1 is the round-robin target: detect by a
	// direct ping to m1.
	deadline := 20
	for i := 0; i < deadline; i++ {
		h.run(time.Second)
		if len(h.sentOfType(wire.TypeIndirectPing)) > 0 {
			break
		}
	}

	inds := h.sentOfType(wire.TypeIndirectPing)
	if len(inds) != 3 {
		t.Fatalf("sent %d ping-reqs, want k=3", len(inds))
	}
	relays := map[string]bool{}
	for _, p := range inds {
		ind := p.msg.(*wire.IndirectPing)
		if ind.Target != "m1" || ind.Source != "self" {
			t.Errorf("ping-req = %+v", ind)
		}
		if !ind.WantNack {
			t.Error("LHA-Probe enabled but WantNack false")
		}
		if p.pkt.to == "m1" || p.pkt.to == "self" {
			t.Errorf("ping-req relayed via %s", p.pkt.to)
		}
		if relays[p.pkt.to] {
			t.Errorf("duplicate relay %s", p.pkt.to)
		}
		relays[p.pkt.to] = true
	}

	// Reliable-channel fallback direct probe.
	foundTCP := false
	for _, p := range h.sentOfType(wire.TypePing) {
		if p.pkt.to == "m1" && p.pkt.reliable {
			foundTCP = true
		}
	}
	if !foundTCP {
		t.Error("no reliable fallback probe")
	}
}

func TestSWIMConfigSendsNoNackRequest(t *testing.T) {
	h := newHarness(t, func(cfg *Config) {
		cfg.LHAProbe = false
	})
	h.addMember("m1", 1)
	h.addMember("r1", 1)
	h.unresponsive["m1"] = true
	h.clearSent()
	h.run(5 * time.Second)

	for _, p := range h.sentOfType(wire.TypeIndirectPing) {
		if p.msg.(*wire.IndirectPing).WantNack {
			t.Fatal("WantNack set without LHA-Probe")
		}
	}
}

func TestMissedNackChargesLHM(t *testing.T) {
	h := newHarness(t, nil)
	h.addMember("m1", 1)
	h.addMember("r1", 1)
	h.addMember("r2", 1)
	h.unresponsive["m1"] = true
	h.clearSent()

	// One full failed round: probes m1 (2 relays enlisted, both silent).
	// Expected LHM delta: +1 failed probe, +2 missed nacks = 3. Probing
	// of r1/r2 in other rounds gives −1 each.
	var indirects int
	for i := 0; i < 10 && indirects == 0; i++ {
		h.run(time.Second)
		indirects = len(h.sentOfType(wire.TypeIndirectPing))
	}
	if indirects == 0 {
		t.Fatal("no indirect probes issued")
	}
	h.run(time.Second) // let the period close
	if got := h.node.HealthScore(); got < 2 {
		t.Errorf("LHM = %d, want >= 2 (failed probe + missed nacks)", got)
	}
}

func TestNackReceivedAvoidsMissedNackPenalty(t *testing.T) {
	h := newHarness(t, nil)
	h.addMember("m1", 1)
	h.addMember("r1", 1)
	h.unresponsive["m1"] = true
	h.clearSent()

	// Drive until the indirect probe goes out, then answer with a nack
	// from the relay.
	var seq uint32
	for i := 0; i < 10; i++ {
		h.run(time.Second)
		if inds := h.sentOfType(wire.TypeIndirectPing); len(inds) > 0 {
			seq = inds[0].msg.(*wire.IndirectPing).SeqNo
			break
		}
	}
	if seq == 0 {
		t.Fatal("no indirect probe")
	}
	h.inject("r1", &wire.Nack{SeqNo: seq, Source: "r1"})
	h.run(2 * time.Second)
	// +1 failed probe only; the nack proves the relay path. The probes
	// of r1 succeed (−1), so LHM must stay ≤ 1.
	if got := h.node.HealthScore(); got > 1 {
		t.Errorf("LHM = %d, want <= 1 with nack received", got)
	}
}

func TestAckAfterNackCountsAsSuccess(t *testing.T) {
	h := newHarness(t, nil)
	h.addMember("m1", 1)
	h.addMember("r1", 1)
	h.unresponsive["m1"] = true
	h.clearSent()

	// Step finely so the ack can be injected inside the round's window,
	// between the indirect probes going out and the period closing.
	var seq uint32
	for i := 0; i < 200 && seq == 0; i++ {
		h.run(100 * time.Millisecond)
		if inds := h.sentOfType(wire.TypeIndirectPing); len(inds) > 0 {
			seq = inds[0].msg.(*wire.IndirectPing).SeqNo
		}
	}
	if seq == 0 {
		t.Fatal("no indirect probe")
	}
	h.inject("r1", &wire.Nack{SeqNo: seq, Source: "r1"})
	h.inject("r1", &wire.Ack{SeqNo: seq, Source: "m1"}) // relayed ack after nack
	h.run(2 * time.Second)
	if got := h.state("m1").State; got != StateAlive {
		t.Fatalf("nack-then-ack round suspected the target (state %v)", got)
	}
}

func TestRelayBehaviour(t *testing.T) {
	h := newHarness(t, nil)
	h.addMember("origin", 1)
	h.addMember("target", 1)
	h.clearSent()

	// origin asks us to probe target with nack wanted.
	h.inject("origin", &wire.IndirectPing{SeqNo: 77, Target: "target", Source: "origin", WantNack: true})
	pings := h.sentOfType(wire.TypePing)
	if len(pings) != 1 {
		t.Fatalf("relay sent %d pings", len(pings))
	}
	relayPing := pings[0].msg.(*wire.Ping)
	if relayPing.Target != "target" || relayPing.Source != "self" {
		t.Errorf("relay ping = %+v", relayPing)
	}
	if relayPing.SeqNo == 77 {
		t.Error("relay reused the originator's sequence number")
	}

	// Target acks (the harness auto-ack already did); the relay must
	// forward an ack bearing the ORIGINATOR's sequence number.
	h.run(100 * time.Millisecond)
	found := false
	for _, p := range h.sentOfType(wire.TypeAck) {
		ack := p.msg.(*wire.Ack)
		if p.pkt.to == "origin" && ack.SeqNo == 77 && ack.Source == "target" {
			found = true
		}
	}
	if !found {
		t.Fatalf("forwarded ack missing: %+v", h.sentOfType(wire.TypeAck))
	}
	// No nack: the target answered inside the window.
	if len(h.sentOfType(wire.TypeNack)) != 0 {
		t.Error("nack sent despite timely ack")
	}
}

func TestRelaySendsNackWhenTargetSilent(t *testing.T) {
	h := newHarness(t, nil)
	h.addMember("origin", 1)
	h.addMember("target", 1)
	h.unresponsive["target"] = true
	h.clearSent()

	h.inject("origin", &wire.IndirectPing{SeqNo: 88, Target: "target", Source: "origin", WantNack: true})
	// Nack at 80% of 500 ms = 400 ms.
	h.run(350 * time.Millisecond)
	if len(h.sentOfType(wire.TypeNack)) != 0 {
		t.Fatal("nack before the 80% window")
	}
	h.run(100 * time.Millisecond)
	nacks := h.sentOfType(wire.TypeNack)
	if len(nacks) != 1 {
		t.Fatalf("got %d nacks", len(nacks))
	}
	nack := nacks[0].msg.(*wire.Nack)
	if nack.SeqNo != 88 || nacks[0].pkt.to != "origin" {
		t.Errorf("nack = %+v to %s", nack, nacks[0].pkt.to)
	}
}

func TestRelayWithoutWantNackStaysQuiet(t *testing.T) {
	h := newHarness(t, nil)
	h.addMember("origin", 1)
	h.addMember("target", 1)
	h.unresponsive["target"] = true
	h.clearSent()
	h.inject("origin", &wire.IndirectPing{SeqNo: 99, Target: "target", Source: "origin", WantNack: false})
	h.run(time.Second)
	if len(h.sentOfType(wire.TypeNack)) != 0 {
		t.Error("nack sent although not requested")
	}
}

func TestPingReplyCarriesAck(t *testing.T) {
	h := newHarness(t, nil)
	h.addMember("m1", 1)
	h.clearSent()
	h.inject("m1", &wire.Ping{SeqNo: 5, Target: "self", Source: "m1"})
	acks := h.sentOfType(wire.TypeAck)
	if len(acks) != 1 {
		t.Fatalf("got %d acks", len(acks))
	}
	ack := acks[0].msg.(*wire.Ack)
	if ack.SeqNo != 5 || ack.Source != "self" || acks[0].pkt.to != "m1" {
		t.Errorf("ack = %+v to %s", ack, acks[0].pkt.to)
	}
}

func TestMisdirectedPingRefused(t *testing.T) {
	h := newHarness(t, nil)
	h.addMember("m1", 1)
	h.clearSent()
	h.inject("m1", &wire.Ping{SeqNo: 5, Target: "somebody-else", Source: "m1"})
	if len(h.sentOfType(wire.TypeAck)) != 0 {
		t.Error("acked a probe for a different member")
	}
}

func TestLHMScalesProbeInterval(t *testing.T) {
	h := newHarness(t, nil)
	h.addMember("m1", 1)
	h.unresponsive["m1"] = true // every probe fails, LHM climbs
	h.clearSent()

	// At saturation (S=8) the probe interval reaches 9 s. Count probe
	// rounds in a 60-second window: with backoff the count must be far
	// below 60.
	h.run(60 * time.Second)
	probes := h.sink.Get(metrics.CounterProbes)
	if probes >= 40 {
		t.Errorf("%d probe rounds in 60s; LHA backoff not engaged", probes)
	}
	if got := h.node.HealthScore(); got < 6 {
		t.Errorf("LHM = %d, want near saturation", got)
	}
}

func TestSWIMProbeIntervalFixedUnderFailures(t *testing.T) {
	h := newHarness(t, func(cfg *Config) { cfg.LHAProbe = false })
	h.addMember("m1", 1)
	h.unresponsive["m1"] = true
	h.clearSent()
	h.run(30 * time.Second)
	probes := h.sink.Get(metrics.CounterProbes)
	if probes < 28 {
		t.Errorf("%d probe rounds in 30s; SWIM must not back off", probes)
	}
	if got := h.node.HealthScore(); got != 0 {
		// The counter exists but is never charged without LHA-Probe.
		t.Errorf("LHM = %d under SWIM config", got)
	}
}

// --- Buddy System ---

func TestBuddyForceIncludesSuspicionOnPing(t *testing.T) {
	h := newHarness(t, nil)
	h.addMember("m1", 1)
	h.inject("x", &wire.Suspect{Incarnation: 1, Node: "m1", From: "x"})
	// Exhaust the broadcast queue so only the buddy path can supply the
	// suspect message.
	for h.node.queue.Len() > 0 {
		h.node.queue.GetBroadcasts(2, 1400)
	}
	h.clearSent()

	h.run(3 * time.Second) // probe m1 at least once

	foundBuddy := false
	for _, pkt := range h.sent {
		if pkt.to != "m1" {
			continue
		}
		hasPing, hasSuspect := false, false
		for _, m := range pkt.msgs {
			switch mm := m.(type) {
			case *wire.Ping:
				hasPing = true
			case *wire.Suspect:
				if mm.Node == "m1" {
					hasSuspect = true
				}
			}
		}
		if hasPing && hasSuspect {
			foundBuddy = true
		}
	}
	if !foundBuddy {
		t.Fatal("ping to suspected member did not carry the suspicion")
	}
}

func TestNoBuddyWithoutComponent(t *testing.T) {
	h := newHarness(t, func(cfg *Config) { cfg.BuddySystem = false })
	h.addMember("m1", 1)
	h.inject("x", &wire.Suspect{Incarnation: 1, Node: "m1", From: "x"})
	for h.node.queue.Len() > 0 {
		h.node.queue.GetBroadcasts(2, 1400)
	}
	h.clearSent()
	h.run(3 * time.Second)

	for _, pkt := range h.sent {
		if pkt.to != "m1" {
			continue
		}
		for _, m := range pkt.msgs {
			if s, ok := m.(*wire.Suspect); ok && s.Node == "m1" {
				t.Fatal("suspicion piggybacked without Buddy System")
			}
		}
	}
}

func TestBuddyOnRelayedPing(t *testing.T) {
	// The buddy guarantee covers pings sent on behalf of others too
	// (§IV-C: "either on its own behalf, or for the indirect path").
	h := newHarness(t, nil)
	h.addMember("origin", 1)
	h.addMember("m1", 1)
	h.inject("x", &wire.Suspect{Incarnation: 1, Node: "m1", From: "x"})
	for h.node.queue.Len() > 0 {
		h.node.queue.GetBroadcasts(2, 1400)
	}
	h.clearSent()

	h.inject("origin", &wire.IndirectPing{SeqNo: 7, Target: "m1", Source: "origin", WantNack: true})
	found := false
	for _, pkt := range h.sent {
		if pkt.to != "m1" {
			continue
		}
		for _, m := range pkt.msgs {
			if s, ok := m.(*wire.Suspect); ok && s.Node == "m1" {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("relayed ping did not carry the suspicion")
	}
}

// --- Anomaly deferral (Blocked / Wake) ---

func TestBlockedProbeRoundFailsAtWake(t *testing.T) {
	h := newHarness(t, nil)
	h.addMember("m1", 1)
	h.clearSent()

	h.blocked = true
	h.run(10 * time.Second) // several ticks while blocked: rounds coalesce
	if got := len(h.sentOfType(wire.TypePing)); got != 0 {
		t.Fatalf("%d pings escaped a blocked member", got)
	}
	h.blocked = false
	h.node.Wake()
	// The resumed round's deadlines are long past: the target is
	// suspected immediately, before its ack can be processed.
	if got := h.state("m1").State; got != StateSuspect {
		t.Fatalf("state = %v at wake, want suspect (stale round)", got)
	}
	// And the stale ping did go out at wake.
	if got := len(h.sentOfType(wire.TypePing)); got == 0 {
		t.Error("blocked ping never flushed")
	}
}

func TestBlockedTicksCoalesceToOneRound(t *testing.T) {
	h := newHarness(t, nil)
	h.addMember("m1", 1)
	h.addMember("m2", 1)
	h.clearSent()

	h.blocked = true
	h.run(20 * time.Second)
	h.blocked = false
	h.node.Wake()

	// Exactly one stale round resumed (one direct ping target).
	pings := h.sentOfType(wire.TypePing)
	direct := 0
	for _, p := range pings {
		if !p.pkt.reliable {
			direct++
		}
	}
	if direct != 1 {
		t.Fatalf("%d direct pings at wake, want 1 (ticker coalescing)", direct)
	}
}

func TestSuspicionTimerFiresWhileBlocked(t *testing.T) {
	// The load-bearing fidelity rule: suspicion expiry only touches
	// local state, so it runs even while the member is blocked.
	h := newHarness(t, nil)
	h.addMember("m1", 1)
	h.inject("x", &wire.Suspect{Incarnation: 1, Node: "m1", From: "x"})
	h.blocked = true
	h.run(31 * time.Second) // past Max (30s at n=2)
	if got := h.state("m1").State; got != StateDead {
		t.Fatalf("state = %v; suspicion timer must fire during a block", got)
	}
}

func TestGossipDeferredWhileBlocked(t *testing.T) {
	h := newHarness(t, nil)
	h.addMember("m1", 1)
	h.blocked = true
	h.inject("x", &wire.Suspect{Incarnation: 1, Node: "m1", From: "x"})
	h.clearSent()
	h.run(5 * time.Second)
	if len(h.sent) != 0 {
		t.Fatalf("blocked member sent %d packets", len(h.sent))
	}
	h.blocked = false
	h.node.Wake()
	if len(h.sentOfType(wire.TypeSuspect)) == 0 {
		t.Error("suspicion did not escape at wake")
	}
}

func TestRandomProbeSelectionProbesSomeone(t *testing.T) {
	h := newHarness(t, func(cfg *Config) { cfg.RandomProbeSelection = true })
	for i := 0; i < 6; i++ {
		h.addMember(fmt.Sprintf("m%d", i), 1)
	}
	h.clearSent()
	h.run(30 * time.Second)
	counts := map[string]int{}
	total := 0
	for _, p := range h.sentOfType(wire.TypePing) {
		ping := p.msg.(*wire.Ping)
		if ping.Target == "self" {
			t.Fatal("probed self")
		}
		counts[ping.Target]++
		total++
	}
	if total < 25 {
		t.Fatalf("only %d probes in 30 periods", total)
	}
	// Random selection with 6 targets over 30 rounds: at least a few
	// distinct targets must appear (all-same would indicate a stuck
	// selector).
	if len(counts) < 3 {
		t.Errorf("random selection hit only %d distinct targets: %v", len(counts), counts)
	}
}

func TestRandomProbeSelectionSkipsDead(t *testing.T) {
	h := newHarness(t, func(cfg *Config) { cfg.RandomProbeSelection = true })
	h.addMember("m1", 1)
	h.addMember("m2", 1)
	h.inject("x", &wire.Dead{Incarnation: 1, Node: "m1", From: "x"})
	h.clearSent()
	h.run(10 * time.Second)
	for _, p := range h.sentOfType(wire.TypePing) {
		if p.msg.(*wire.Ping).Target == "m1" {
			t.Fatal("random selection probed a dead member")
		}
	}
}

// TestCoordinateRelaySelectionPrefersNearTarget: with coordinates
// cached, relay selection keeps a random-diversity slot and fills the
// rest with the members whose estimated RTT to the target is lowest.
func TestCoordinateRelaySelectionPrefersNearTarget(t *testing.T) {
	h := newHarness(t, func(cfg *Config) { cfg.CoordinateRelaySelection = true })
	h.addMember("target", 1)
	for _, name := range []string{"near-a", "near-b", "far-a", "far-b", "far-c"} {
		h.addMember(name, 1)
	}
	// Cache coordinates via inbound pings: the target at 100 ms on the
	// first axis, two candidates right next to it, the rest far away.
	place := func(name string, x float64) {
		c := h.node.Coordinate()
		c.Vec[0] = x
		c.Error = 0.1
		h.inject(name, &wire.Ping{SeqNo: 1, Target: "self", Source: name, Coord: c})
	}
	place("target", 0.100)
	place("near-a", 0.101)
	place("near-b", 0.099)
	place("far-a", 0.500)
	place("far-b", 0.600)
	// far-c has no cached coordinate at all.

	h.node.mu.Lock()
	relays := h.node.selectRelaysLocked(h.node.members["target"])
	h.node.mu.Unlock()

	if len(relays) != h.node.Config().IndirectChecks {
		t.Fatalf("selected %d relays, want %d", len(relays), h.node.Config().IndirectChecks)
	}
	got := map[string]bool{}
	for _, r := range relays {
		if r.Name == "target" || r.Name == "self" {
			t.Fatalf("selected %s as its own relay", r.Name)
		}
		got[r.Name] = true
	}
	// Whatever the random-diversity slot drew, the two nearest members
	// always end up selected: either as near picks, or as the random
	// pick with the next-nearest promoted.
	if !got["near-a"] || !got["near-b"] {
		t.Errorf("nearest candidates missing from relay set %v", got)
	}
	near := h.sink.Get("relay_near_picks")
	random := h.sink.Get("relay_random_picks")
	if near == 0 || random == 0 || near+random != int64(len(relays)) {
		t.Errorf("relay pick counters near=%d random=%d, want both positive summing to %d", near, random, len(relays))
	}
}

// TestCoordinateRelaySelectionColdDegradesToUniform: with no cached
// coordinates every slot falls back to a uniform pick.
func TestCoordinateRelaySelectionColdDegradesToUniform(t *testing.T) {
	h := newHarness(t, func(cfg *Config) { cfg.CoordinateRelaySelection = true })
	h.addMember("target", 1)
	for _, name := range []string{"c1", "c2", "c3", "c4"} {
		h.addMember(name, 1)
	}
	h.node.mu.Lock()
	relays := h.node.selectRelaysLocked(h.node.members["target"])
	h.node.mu.Unlock()
	if len(relays) != h.node.Config().IndirectChecks {
		t.Fatalf("selected %d relays, want %d", len(relays), h.node.Config().IndirectChecks)
	}
	if h.sink.Get("relay_near_picks") != 0 {
		t.Error("cold cache produced near picks")
	}
	if h.sink.Get("relay_random_picks") != int64(len(relays)) {
		t.Error("cold picks not accounted as random")
	}
}
