package core

import (
	"bytes"
	"fmt"
	"os"
	"time"

	"lifeguard/internal/awareness"
	"lifeguard/internal/metrics"
	"lifeguard/internal/suspicion"
	"lifeguard/internal/wire"
)

// debugTrace enables a development trace of suspicion/death decisions.
var debugTrace = os.Getenv("LIFEGUARD_DEBUG") != ""

var traceEpoch = time.Unix(0, 0)

// handleSuspectLocked processes a suspect message: refute it if it is
// about us, confirm an existing suspicion, or open a new one.
func (n *Node) handleSuspectLocked(s *wire.Suspect) {
	if s.Node == n.cfg.Name {
		n.refuteLocked(s.Incarnation)
		return
	}
	m, ok := n.members[s.Node]
	if !ok {
		return
	}
	n.suspectNodeLocked(m, s)
}

// suspectNodeLocked applies a suspicion (local probe failure or gossiped
// accusation) to a member.
func (n *Node) suspectNodeLocked(m *memberState, s *wire.Suspect) {
	if s.Incarnation < m.Incarnation {
		return // stale accusation, already refuted
	}
	switch m.State {
	case StateDead, StateLeft:
		return
	case StateSuspect:
		// An independent suspicion about an already-suspected member.
		if m.susp == nil {
			return
		}
		if m.susp.Accused(s.From) {
			return
		}
		confirmed := m.susp.Confirm(s.From)
		// LHA-Suspicion re-gossips the first K independent suspicions to
		// make confirmations prevalent cluster-wide (§IV-B). Baseline
		// SWIM gossips only the first accusation it hears.
		if confirmed && n.cfg.LHASuspicion {
			n.broadcastLocked(m.Name, s)
		}
		return
	}

	// Alive → suspect.
	m.State = StateSuspect
	m.StateChange = n.cfg.Clock.Now()
	n.cfg.Metrics.IncrCounter(metrics.CounterSuspicionsRaised, 1)

	k := 0
	if n.cfg.LHASuspicion {
		k = n.cfg.SuspicionK
	}
	min := SuspicionMin(n.cfg.SuspicionAlpha, n.aliveCount, n.cfg.ProbeInterval)
	max := min
	if n.cfg.LHASuspicion {
		max = time.Duration(n.cfg.SuspicionBeta * float64(min))
	}
	accusedInc := s.Incarnation
	handle := m.handle
	m.susp = suspicion.New(n.cfg.Clock, s.From, k, min, max, func(int) {
		n.suspicionExpired(handle, accusedInc)
	})
	if debugTrace {
		fmt.Printf("TRACE %v %s: suspect %s inc=%d from=%s min=%v max=%v k=%d\n",
			n.cfg.Clock.Now().Sub(traceEpoch), n.cfg.Name, m.Name, accusedInc, s.From, min, max, k)
	}

	n.broadcastLocked(m.Name, s)
	n.eventSuspectLocked(m)
}

// applyMergedSuspicionLocked applies a suspicion learned through
// push-pull anti-entropy. Unlike a gossiped suspect message it carries no
// accuser: it starts a suspicion timer if the member was thought alive
// (so a missed suspicion still converges to a failure), but never
// confirms an existing one and is not re-gossiped.
func (n *Node) applyMergedSuspicionLocked(name string, inc uint64) {
	if name == n.cfg.Name {
		n.refuteLocked(inc)
		return
	}
	m, ok := n.members[name]
	if !ok || m.State != StateAlive || inc < m.Incarnation {
		return
	}
	m.State = StateSuspect
	m.StateChange = n.cfg.Clock.Now()
	n.cfg.Metrics.IncrCounter(metrics.CounterSuspicionsRaised, 1)

	k := 0
	if n.cfg.LHASuspicion {
		k = n.cfg.SuspicionK
	}
	min := SuspicionMin(n.cfg.SuspicionAlpha, n.aliveCount, n.cfg.ProbeInterval)
	max := min
	if n.cfg.LHASuspicion {
		max = time.Duration(n.cfg.SuspicionBeta * float64(min))
	}
	handle, accusedInc := m.handle, inc
	m.susp = suspicion.New(n.cfg.Clock, n.cfg.Name, k, min, max, func(int) {
		n.suspicionExpired(handle, accusedInc)
	})
	n.eventSuspectLocked(m)
}

// suspicionExpired is the suspicion timer callback: declare the member
// dead. It runs on the clock even while the member is blocked by an
// anomaly — in memberlist this is a time.AfterFunc that only mutates
// local state and enqueues a broadcast, so a stalled process still
// executes it. This is the mechanism behind false positives at slow
// members (DESIGN.md §2.1). The member is identified by its intern
// handle, captured when the suspicion was opened.
func (n *Node) suspicionExpired(handle int, inc uint64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.shutdown {
		return
	}
	m := n.byHandle[handle]
	if m == nil || m.State != StateSuspect {
		return
	}
	if m.Incarnation > inc {
		// Refuted while the timer was firing.
		return
	}
	d := &wire.Dead{Incarnation: m.Incarnation, Node: m.Name, From: n.cfg.Name}
	n.deadNodeLocked(m, d)
}

// handleDeadLocked processes a dead message.
func (n *Node) handleDeadLocked(d *wire.Dead) {
	if d.Node == n.cfg.Name {
		// Someone declared us dead. Refute, unless we are leaving.
		if !n.leaving {
			n.refuteLocked(d.Incarnation)
		}
		return
	}
	m, ok := n.members[d.Node]
	if !ok {
		return
	}
	n.deadNodeLocked(m, d)
}

// deadNodeLocked marks a member dead (or left, when self-announced) and
// re-gossips the declaration. Dead members are retained for push-pull
// exchange and late gossip (§III-B).
func (n *Node) deadNodeLocked(m *memberState, d *wire.Dead) {
	if d.Incarnation < m.Incarnation {
		return // stale declaration, already refuted
	}
	if m.State == StateDead || m.State == StateLeft {
		return
	}

	if debugTrace {
		fmt.Printf("TRACE %v %s: dead %s inc=%d from=%s prevState=%v\n",
			n.cfg.Clock.Now().Sub(traceEpoch), n.cfg.Name, m.Name, d.Incarnation, d.From, m.State)
	}
	if n.cfg.Telemetry != nil && m.State == StateSuspect {
		// A suspicion lifecycle resolving in death: how long the member
		// stayed suspected in this view before being declared dead.
		n.cfg.Telemetry.RecordSuspicion(m.Name, n.cfg.Clock.Now().Sub(m.StateChange), true)
	}
	if m.susp != nil {
		m.susp.Stop()
		m.susp = nil
	}
	if m.State == StateAlive || m.State == StateSuspect {
		n.addAliveCountLocked(-1)
	}
	m.Incarnation = d.Incarnation
	if d.From == m.Name {
		m.State = StateLeft
	} else {
		m.State = StateDead
	}
	m.StateChange = n.cfg.Clock.Now()
	n.removeProbeTargetLocked(m)
	// Drop the coordinate engine's per-peer state (cached coordinate,
	// latency-filter window): estimates to a departed member would be
	// stale, and under name churn the maps would grow without bound. A
	// refuted member that returns re-learns within a few probes.
	if n.coordClient != nil {
		n.coordClient.Forget(m.Name)
	}

	n.broadcastLocked(m.Name, d)
	n.eventDeadLocked(m)
}

// handleAliveLocked processes an alive message: add a new member, update
// an incarnation, or clear a suspicion/death (strictly newer incarnation
// required, SWIM §4.2).
func (n *Node) handleAliveLocked(a *wire.Alive) {
	if a.Node == n.cfg.Name {
		// Echo of our own announcement, possibly stale. Only the member
		// itself increments its incarnation, so nothing can be newer.
		return
	}

	m, ok := n.members[a.Node]
	if !ok {
		// New member. Decoded strings are interned and Meta is freshly
		// allocated per decode, so storing them verbatim is safe.
		m = &memberState{probeSlot: -1, Member: Member{
			Name:        a.Node,
			Addr:        a.Addr,
			Incarnation: a.Incarnation,
			Meta:        a.Meta,
			State:       StateAlive,
			StateChange: n.cfg.Clock.Now(),
		}}
		n.members[a.Node] = m
		n.internMemberLocked(m)
		n.roster = append(n.roster, m)
		n.addAliveCountLocked(1)
		n.insertProbeTargetLocked(m)
		n.broadcastLocked(a.Node, a)
		n.eventJoinLocked(m)
		return
	}

	if a.Incarnation <= m.Incarnation {
		// Not strictly newer: no news for an alive member, and it cannot
		// override suspect/dead (SWIM §4.2 precedence).
		return
	}

	// Strictly newer incarnation: the member is alive.
	prev := m.State
	m.Incarnation = a.Incarnation
	if a.Addr != "" {
		m.Addr = a.Addr
	}
	metaChanged := !bytes.Equal(m.Meta, a.Meta)
	m.Meta = a.Meta
	if m.State == StateAlive && metaChanged {
		n.eventUpdateLocked(m)
	}
	if m.State != StateAlive {
		if m.susp != nil {
			m.susp.Stop()
			m.susp = nil
		}
		suspectedSince := m.StateChange
		m.State = StateAlive
		m.StateChange = n.cfg.Clock.Now()
		switch prev {
		case StateSuspect:
			// Suspect members already count toward aliveCount; no
			// adjustment here.
			if n.cfg.Telemetry != nil {
				// A suspicion lifecycle resolving in refutation.
				n.cfg.Telemetry.RecordSuspicion(m.Name, m.StateChange.Sub(suspectedSince), false)
			}
			n.eventAliveLocked(m)
		case StateDead, StateLeft:
			n.addAliveCountLocked(1)
			n.insertProbeTargetLocked(m)
			n.eventJoinLocked(m)
		}
	}
	n.broadcastLocked(a.Node, a)
}

// refuteLocked answers an accusation about the local member by jumping
// past the claimed incarnation and gossiping a fresh alive. Having to
// refute is evidence of local slowness, so the LHM is charged (§IV-A).
func (n *Node) refuteLocked(claimedInc uint64) {
	if debugTrace {
		fmt.Printf("TRACE %v %s: refute claimed=%d current=%d\n",
			n.cfg.Clock.Now().Sub(traceEpoch), n.cfg.Name, claimedInc, n.incarnation)
	}
	if claimedInc < n.incarnation {
		// The accusation is older than our current announcement; the
		// existing alive broadcast already refutes it.
		return
	}
	n.incarnation = claimedInc + 1
	if n.self != nil {
		n.self.Incarnation = n.incarnation
	}
	n.cfg.Metrics.IncrCounter(metrics.CounterRefutes, 1)
	if n.cfg.LHAProbe {
		score := n.aware.ApplyDelta(awareness.DeltaRefute)
		if n.cfg.Telemetry != nil {
			n.cfg.Telemetry.RecordLHM(score)
		}
	}
	n.broadcastLocked(n.cfg.Name, n.selfAliveLocked())
}
