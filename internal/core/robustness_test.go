package core

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"lifeguard/internal/timeutil"
	"lifeguard/internal/wire"
)

// --- Hostile input ---

func TestHandlePacketGarbageNeverPanics(t *testing.T) {
	h := newHarness(t, nil)
	h.addMember("m1", 1)
	f := func(from string, payload []byte) bool {
		h.node.HandlePacket(from, payload)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
	if got := h.sink.Get("decode_errors"); got == 0 {
		t.Error("no decode errors counted for garbage input")
	}
}

func TestQuickRandomValidMessagesKeepInvariants(t *testing.T) {
	// Fire random well-formed protocol messages at a node and check the
	// core invariants after each: the node's own record stays alive, the
	// alive count matches the table, and incarnations never regress.
	h := newHarness(t, nil)
	names := []string{"m1", "m2", "m3", "self"}
	for _, n := range names[:3] {
		h.addMember(n, 1)
	}
	lastInc := map[string]uint64{}

	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 5000; i++ {
		name := names[rng.Intn(len(names))]
		inc := uint64(rng.Intn(8))
		from := names[rng.Intn(len(names))]
		var msg wire.Message
		switch rng.Intn(4) {
		case 0:
			msg = &wire.Alive{Incarnation: inc, Node: name, Addr: name}
		case 1:
			msg = &wire.Suspect{Incarnation: inc, Node: name, From: from}
		case 2:
			msg = &wire.Dead{Incarnation: inc, Node: name, From: from}
		case 3:
			msg = &wire.Ping{SeqNo: uint32(rng.Intn(100)), Target: "self", Source: from}
		}
		h.inject(from, msg)
		if rng.Intn(10) == 0 {
			h.run(time.Duration(rng.Intn(300)) * time.Millisecond)
		}

		if self, ok := h.node.Member("self"); !ok || self.State != StateAlive {
			t.Fatalf("iteration %d: self no longer alive (%+v)", i, self)
		}
		aliveCount := 0
		for _, m := range h.node.Members() {
			if m.State == StateAlive || m.State == StateSuspect {
				aliveCount++
			}
			if m.Incarnation < lastInc[m.Name] {
				t.Fatalf("iteration %d: %s incarnation regressed %d -> %d",
					i, m.Name, lastInc[m.Name], m.Incarnation)
			}
			lastInc[m.Name] = m.Incarnation
		}
		if aliveCount != h.node.NumAlive() {
			t.Fatalf("iteration %d: alive count %d != table %d", i, h.node.NumAlive(), aliveCount)
		}
	}
}

// --- Concurrency under the real clock (run with -race) ---

// chanTransport delivers packets to a sibling node through goroutines,
// exercising the real-time locking paths.
type chanTransport struct {
	mu    sync.Mutex
	peers map[string]*Node
	addr  string
}

func (c *chanTransport) LocalAddr() string { return c.addr }

func (c *chanTransport) SendPacket(to string, payload []byte, _ bool) error {
	c.mu.Lock()
	peer := c.peers[to]
	c.mu.Unlock()
	if peer == nil {
		return nil
	}
	// The payload is only valid for the duration of this call (Transport
	// contract); copy before handing it to the delivery goroutine.
	owned := append([]byte(nil), payload...)
	go peer.HandlePacket(c.addr, owned)
	return nil
}

func TestConcurrentRealClockCluster(t *testing.T) {
	if testing.Short() {
		t.Skip("real-clock test")
	}
	peers := make(map[string]*Node)
	var peersMu sync.Mutex

	var nodes []*Node
	for _, name := range []string{"a", "b", "c"} {
		tr := &chanTransport{peers: peers, addr: name}
		tr.mu = sync.Mutex{}
		cfg := DefaultConfig(name)
		cfg.Transport = tr
		cfg.Clock = timeutil.RealClock{}
		cfg.RNG = rand.New(rand.NewSource(int64(len(nodes) + 1)))
		cfg.ProbeInterval = 20 * time.Millisecond
		cfg.ProbeTimeout = 10 * time.Millisecond
		cfg.GossipInterval = 5 * time.Millisecond
		cfg.PushPullInterval = 50 * time.Millisecond
		node, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, node)
		peersMu.Lock()
		peers[name] = node
		peersMu.Unlock()
	}
	for _, n := range nodes {
		if err := n.Start(); err != nil {
			t.Fatal(err)
		}
	}
	defer func() {
		for _, n := range nodes {
			n.Shutdown()
		}
	}()
	if err := nodes[1].Join("a"); err != nil {
		t.Fatal(err)
	}
	if err := nodes[2].Join("a"); err != nil {
		t.Fatal(err)
	}

	// Hammer the public API from several goroutines while the protocol
	// runs on real timers.
	var wg sync.WaitGroup
	stop := time.Now().Add(500 * time.Millisecond)
	for _, n := range nodes {
		n := n
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Now().Before(stop) {
				n.Members()
				n.NumAlive()
				n.HealthScore()
				n.Incarnation()
			}
		}()
	}
	wg.Wait()

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if nodes[0].NumAlive() == 3 && nodes[1].NumAlive() == 3 && nodes[2].NumAlive() == 3 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("no convergence: %d/%d/%d alive",
		nodes[0].NumAlive(), nodes[1].NumAlive(), nodes[2].NumAlive())
}
