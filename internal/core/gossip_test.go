package core

import (
	"testing"
	"time"

	"lifeguard/internal/metrics"
	"lifeguard/internal/wire"
)

func TestGossipTickFlushesQueue(t *testing.T) {
	h := newHarness(t, nil)
	h.addMember("m1", 1)
	h.addMember("m2", 1)
	h.clearSent()

	// Queue an update, then let one gossip tick (200 ms) pass.
	h.inject("x", &wire.Alive{Incarnation: 3, Node: "m2", Addr: "m2"})
	h.run(250 * time.Millisecond)

	found := 0
	for _, s := range h.sentOfType(wire.TypeAlive) {
		if a := s.msg.(*wire.Alive); a.Node == "m2" && a.Incarnation == 3 {
			found++
		}
	}
	if found == 0 {
		t.Fatal("queued update not gossiped within one tick")
	}
}

func TestGossipFanout(t *testing.T) {
	h := newHarness(t, func(cfg *Config) { cfg.GossipNodes = 2 })
	for i := 0; i < 8; i++ {
		h.addMember(nodeName(i), 1)
	}
	h.clearSent()
	h.inject("x", &wire.Alive{Incarnation: 5, Node: nodeName(0), Addr: nodeName(0)})

	// One tick: at most GossipNodes pure-gossip packets (plus any probe
	// traffic, which carries a ping).
	h.run(210 * time.Millisecond)
	gossipPkts := 0
	for _, pkt := range h.sent {
		hasPing := false
		for _, m := range pkt.msgs {
			switch m.Type() {
			case wire.TypePing, wire.TypeIndirectPing, wire.TypeAck, wire.TypeNack,
				wire.TypePushPullReq, wire.TypePushPullResp:
				hasPing = true
			}
		}
		if !hasPing {
			gossipPkts++
		}
	}
	if gossipPkts > 2 {
		t.Errorf("%d pure gossip packets in one tick, want <= fanout 2", gossipPkts)
	}
}

func TestGossipIdleQueueSendsNothing(t *testing.T) {
	h := newHarness(t, nil)
	h.addMember("m1", 1)
	// Drain the join broadcasts fully.
	for h.node.queue.Len() > 0 {
		h.node.queue.GetBroadcasts(2, 1400)
	}
	h.clearSent()
	h.run(time.Second) // 5 gossip ticks, 1 probe

	for _, pkt := range h.sent {
		for _, m := range pkt.msgs {
			switch m.Type() {
			case wire.TypePing, wire.TypeAck:
				// probe traffic is fine
			default:
				t.Fatalf("idle node sent %s", m.Type())
			}
		}
	}
}

func TestPiggybackOnAck(t *testing.T) {
	h := newHarness(t, nil)
	h.addMember("m1", 1)
	h.inject("x", &wire.Alive{Incarnation: 9, Node: "m1", Addr: "m1"})
	h.clearSent()

	// Answering a ping must piggyback the queued update (the paper's
	// dissemination path: updates ride on ping/ping-req/ack).
	h.inject("m1", &wire.Ping{SeqNo: 3, Target: "self", Source: "m1"})
	pkts := h.sent
	if len(pkts) != 1 {
		t.Fatalf("%d packets", len(pkts))
	}
	hasAck, hasAlive := false, false
	for _, m := range pkts[0].msgs {
		switch mm := m.(type) {
		case *wire.Ack:
			hasAck = true
		case *wire.Alive:
			if mm.Node == "m1" && mm.Incarnation == 9 {
				hasAlive = true
			}
		}
	}
	if !hasAck || !hasAlive {
		t.Errorf("ack packet missing piggyback: ack=%v alive=%v", hasAck, hasAlive)
	}
}

func TestSeqNoMonotoneAcrossRounds(t *testing.T) {
	h := newHarness(t, nil)
	h.addMember("m1", 1)
	h.clearSent()
	h.run(10 * time.Second)

	var last uint32
	for _, p := range h.sentOfType(wire.TypePing) {
		seq := p.msg.(*wire.Ping).SeqNo
		if seq <= last {
			t.Fatalf("sequence numbers not monotone: %d after %d", seq, last)
		}
		last = seq
	}
}

func TestMsgsSentCounterCountsCompoundOnce(t *testing.T) {
	h := newHarness(t, nil)
	h.addMember("m1", 1)
	h.clearSent()
	before := h.sink.Get(metrics.CounterMsgsSent)
	// A ping with piggybacked gossip is one compound packet: one count.
	h.inject("m1", &wire.Ping{SeqNo: 1, Target: "self", Source: "m1"})
	after := h.sink.Get(metrics.CounterMsgsSent)
	if after-before != 1 {
		t.Errorf("msgs_sent delta = %d, want 1", after-before)
	}
	if got := h.sink.Get(metrics.CounterBytesSent); got == 0 {
		t.Error("bytes_sent not counted")
	}
}
