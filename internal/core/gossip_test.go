package core

import (
	"testing"
	"time"

	"lifeguard/internal/metrics"
	"lifeguard/internal/wire"
)

func TestGossipTickFlushesQueue(t *testing.T) {
	h := newHarness(t, nil)
	h.addMember("m1", 1)
	h.addMember("m2", 1)
	h.clearSent()

	// Queue an update, then let one gossip tick (200 ms) pass.
	h.inject("x", &wire.Alive{Incarnation: 3, Node: "m2", Addr: "m2"})
	h.run(250 * time.Millisecond)

	found := 0
	for _, s := range h.sentOfType(wire.TypeAlive) {
		if a := s.msg.(*wire.Alive); a.Node == "m2" && a.Incarnation == 3 {
			found++
		}
	}
	if found == 0 {
		t.Fatal("queued update not gossiped within one tick")
	}
}

func TestGossipFanout(t *testing.T) {
	h := newHarness(t, func(cfg *Config) { cfg.GossipNodes = 2 })
	for i := 0; i < 8; i++ {
		h.addMember(nodeName(i), 1)
	}
	h.clearSent()
	h.inject("x", &wire.Alive{Incarnation: 5, Node: nodeName(0), Addr: nodeName(0)})

	// One tick: at most GossipNodes pure-gossip packets (plus any probe
	// traffic, which carries a ping).
	h.run(210 * time.Millisecond)
	gossipPkts := 0
	for _, pkt := range h.sent {
		hasPing := false
		for _, m := range pkt.msgs {
			switch m.Type() {
			case wire.TypePing, wire.TypeIndirectPing, wire.TypeAck, wire.TypeNack,
				wire.TypePushPullReq, wire.TypePushPullResp:
				hasPing = true
			}
		}
		if !hasPing {
			gossipPkts++
		}
	}
	if gossipPkts > 2 {
		t.Errorf("%d pure gossip packets in one tick, want <= fanout 2", gossipPkts)
	}
}

func TestGossipIdleQueueSendsNothing(t *testing.T) {
	h := newHarness(t, nil)
	h.addMember("m1", 1)
	// Drain the join broadcasts fully.
	for h.node.queue.Len() > 0 {
		h.node.queue.GetBroadcasts(2, 1400)
	}
	h.clearSent()
	h.run(time.Second) // 5 gossip ticks, 1 probe

	for _, pkt := range h.sent {
		for _, m := range pkt.msgs {
			switch m.Type() {
			case wire.TypePing, wire.TypeAck:
				// probe traffic is fine
			default:
				t.Fatalf("idle node sent %s", m.Type())
			}
		}
	}
}

func TestPiggybackOnAck(t *testing.T) {
	h := newHarness(t, nil)
	h.addMember("m1", 1)
	h.inject("x", &wire.Alive{Incarnation: 9, Node: "m1", Addr: "m1"})
	h.clearSent()

	// Answering a ping must piggyback the queued update (the paper's
	// dissemination path: updates ride on ping/ping-req/ack).
	h.inject("m1", &wire.Ping{SeqNo: 3, Target: "self", Source: "m1"})
	pkts := h.sent
	if len(pkts) != 1 {
		t.Fatalf("%d packets", len(pkts))
	}
	hasAck, hasAlive := false, false
	for _, m := range pkts[0].msgs {
		switch mm := m.(type) {
		case *wire.Ack:
			hasAck = true
		case *wire.Alive:
			if mm.Node == "m1" && mm.Incarnation == 9 {
				hasAlive = true
			}
		}
	}
	if !hasAck || !hasAlive {
		t.Errorf("ack packet missing piggyback: ack=%v alive=%v", hasAck, hasAlive)
	}
}

func TestSeqNoMonotoneAcrossRounds(t *testing.T) {
	h := newHarness(t, nil)
	h.addMember("m1", 1)
	h.clearSent()
	h.run(10 * time.Second)

	var last uint32
	for _, p := range h.sentOfType(wire.TypePing) {
		seq := p.msg.(*wire.Ping).SeqNo
		if seq <= last {
			t.Fatalf("sequence numbers not monotone: %d after %d", seq, last)
		}
		last = seq
	}
}

func TestMsgsSentCounterCountsCompoundOnce(t *testing.T) {
	h := newHarness(t, nil)
	h.addMember("m1", 1)
	h.clearSent()
	before := h.sink.Get(metrics.CounterMsgsSent)
	// A ping with piggybacked gossip is one compound packet: one count.
	h.inject("m1", &wire.Ping{SeqNo: 1, Target: "self", Source: "m1"})
	after := h.sink.Get(metrics.CounterMsgsSent)
	if after-before != 1 {
		t.Errorf("msgs_sent delta = %d, want 1", after-before)
	}
	if got := h.sink.Get(metrics.CounterBytesSent); got == 0 {
		t.Error("bytes_sent not counted")
	}
}

// TestLatencyAwareGossipSplitsNearAndEscape: with the engine warm, the
// gossip fanout splits into a near slice (lowest estimated RTT from the
// local coordinate) and a uniformly random escape slice, per
// GossipEscapeFraction.
func TestLatencyAwareGossipSplitsNearAndEscape(t *testing.T) {
	h := newHarness(t, func(cfg *Config) {
		cfg.LatencyAwareGossip = true
		cfg.CoordMinSamples = 1
	})
	h.addMember("peer-1", 1)
	h.autoAck = false
	warmPeer(h, "peer-1", 1, time.Millisecond) // one applied update warms the engine
	for _, name := range []string{"m1", "m2", "m3", "m4", "m5", "m6", "m7", "m8"} {
		h.addMember(name, 1)
	}

	// Cache far coordinates for a few members; the warmed peer's cached
	// coordinate is within a millisecond of ours, so it ranks nearest.
	for i, name := range []string{"m1", "m2", "m3"} {
		c := h.node.Coordinate()
		c.Vec[0] = 0.3 + 0.1*float64(i)
		c.Error = 0.1
		h.inject(name, &wire.Ping{SeqNo: uint32(i + 10), Target: "self", Source: name, Coord: c})
	}

	h.node.mu.Lock()
	targets := h.node.gossipTargetsLocked()
	h.node.mu.Unlock()

	k := h.node.Config().GossipNodes
	if len(targets) != k {
		t.Fatalf("picked %d gossip targets, want %d", len(targets), k)
	}
	seen := map[string]bool{}
	for _, m := range targets {
		if m.Name == "self" {
			t.Fatal("gossiped to self")
		}
		if seen[m.Name] {
			t.Fatalf("duplicate gossip target %s", m.Name)
		}
		seen[m.Name] = true
	}
	if !seen["peer-1"] {
		t.Errorf("nearest member not in gossip targets %v", seen)
	}
	near := h.sink.Get("gossip_near_picks")
	escape := h.sink.Get("gossip_escape_picks")
	if near != 1 || escape != 2 {
		t.Errorf("gossip pick counters near=%d escape=%d, want 1 and 2 (fanout 3, escape fraction 0.5)", near, escape)
	}
}

// TestLatencyAwareGossipColdStaysUniform: before CoordMinSamples
// observations the latency bias stays off and selection is uniform.
func TestLatencyAwareGossipColdStaysUniform(t *testing.T) {
	h := newHarness(t, func(cfg *Config) { cfg.LatencyAwareGossip = true })
	for _, name := range []string{"m1", "m2", "m3", "m4", "m5"} {
		h.addMember(name, 1)
	}
	h.node.mu.Lock()
	targets := h.node.gossipTargetsLocked()
	h.node.mu.Unlock()
	if len(targets) != h.node.Config().GossipNodes {
		t.Fatalf("picked %d gossip targets, want %d", len(targets), h.node.Config().GossipNodes)
	}
	if h.sink.Get("gossip_near_picks") != 0 || h.sink.Get("gossip_escape_picks") != 0 {
		t.Error("cold engine used latency-aware selection")
	}
}
