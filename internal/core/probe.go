package core

import (
	"time"

	"lifeguard/internal/awareness"
	"lifeguard/internal/metrics"
	"lifeguard/internal/telemetry"
	"lifeguard/internal/timeutil"
	"lifeguard/internal/wire"
)

// ackHandler tracks one probe round originated by this member.
type ackHandler struct {
	seq uint32

	// target is the probed member's intern-table handle: every timer
	// and ack in the round resolves it through Node.byHandle instead of
	// hashing the member name per packet. The handle cannot go stale
	// within the round — member records are retained even after death.
	target int

	// acked is set by the first matching ack (direct, relayed, or
	// nack-then-ack, which the paper counts as success).
	acked bool

	// nacksExpected is the number of relays asked for nacks; relays
	// that send neither an ack nor a nack count against local health.
	nacksExpected int

	// nackFrom dedupes relay nacks by relay name. At most
	// IndirectChecks relays answer, so a linear scan over a slice
	// replaces the per-round map allocation.
	nackFrom []string

	// interval is the round's suspicion-decision deadline captured at
	// probe start: the scaled protocol period, or the shorter
	// RTT-derived budget when the round is adaptive.
	interval time.Duration

	// adaptive marks a round whose direct timeout and decision deadline
	// were derived from the target's RTT estimate. Such rounds skip the
	// missed-nack awareness surcharge: relays time their nacks off
	// their own static probe timeout, so against an early-closing round
	// a "missed" nack is usually just late, not evidence of trouble.
	adaptive bool

	// sentAt is when the direct ping left (refreshed if the send was
	// deferred to wake); a direct ack's arrival minus sentAt is the RTT
	// observation fed to the Vivaldi coordinate engine.
	sentAt time.Time

	// indirect is set once the round escalated to indirect probes (and
	// the TCP fallback): from then on an ack's timing no longer
	// measures the direct path, so no RTT observation is taken.
	indirect bool

	timeoutTimer timeutil.Timer
	periodTimer  timeutil.Timer
}

// relayHandler tracks one indirect probe this member relays for another.
type relayHandler struct {
	// origin is the member that asked for the indirect probe, by name —
	// the originator is not necessarily in our membership table, so the
	// name is authoritative. originH is its intern-table handle when it
	// was known at relay start, or -1; answers fall back to a name
	// lookup then, in case the originator has since been learned.
	origin  string
	originH int

	// origSeq is the originator's sequence number, echoed in the
	// forwarded ack and in the nack.
	origSeq uint32

	// target is the intern-table handle of the member being probed on
	// the originator's behalf.
	target int

	// acked is set once the target's ack has been forwarded.
	acked bool

	// wantNack is whether the originator asked for a nack.
	wantNack bool

	// sentAt is when the relayed ping left; the relay measures its own
	// RTT to the target and feeds its coordinate engine too.
	sentAt time.Time

	nackTimer   timeutil.Timer
	expireTimer timeutil.Timer
}

// scaledProbeInterval returns the protocol period, scaled by the LHM
// when LHA-Probe is enabled (§IV-A).
func (n *Node) scaledProbeInterval() time.Duration {
	if n.cfg.LHAProbe {
		return n.aware.ScaleTimeout(n.cfg.ProbeInterval)
	}
	return n.cfg.ProbeInterval
}

// scaledProbeTimeout returns the ack timeout, scaled by the LHM when
// LHA-Probe is enabled.
func (n *Node) scaledProbeTimeout() time.Duration {
	if n.cfg.LHAProbe {
		return n.aware.ScaleTimeout(n.cfg.ProbeTimeout)
	}
	return n.cfg.ProbeTimeout
}

// adaptiveProbeTimeoutLocked returns the RTT-derived direct-probe
// timeout for the target, before awareness scaling:
// clamp(mult·estRTT + slack, floor, ProbeTimeout). ok is false while
// coordinates are cold — the feature is off, the engine has applied
// fewer than CoordMinSamples observations, or no coordinate is cached
// for the target (never probed, or dropped when it died).
func (n *Node) adaptiveProbeTimeoutLocked(target string) (time.Duration, bool) {
	if !n.cfg.AdaptiveProbeTimeout || !n.coordWarmLocked() {
		return 0, false
	}
	est, ok := n.coordClient.EstimateRTT(target)
	if !ok || est <= 0 {
		return 0, false
	}
	t := time.Duration(n.cfg.AdaptiveTimeoutMult*float64(est)) + n.cfg.AdaptiveTimeoutSlack
	if t < n.cfg.AdaptiveTimeoutFloor {
		t = n.cfg.AdaptiveTimeoutFloor
	}
	if t > n.cfg.ProbeTimeout {
		t = n.cfg.ProbeTimeout
	}
	return t, true
}

// probeTimeoutsLocked computes a probe round's direct-ack timeout and
// its suspicion-decision deadline for the given target. Adaptive rounds
// get the RTT-derived timeout and an early decision deadline
// (AdaptiveRoundMult × timeout, capped by the scaled period); cold or
// non-adaptive rounds get the static timeout and the full period. The
// awareness multiplier applies on top of the adaptive value too, so a
// locally-slow member still grants its targets extra time (§IV-A).
func (n *Node) probeTimeoutsLocked(target string) (timeout, deadline time.Duration, adaptive bool) {
	interval := n.scaledProbeInterval()
	if at, ok := n.adaptiveProbeTimeoutLocked(target); ok {
		if n.cfg.LHAProbe {
			at = n.aware.ScaleTimeout(at)
		}
		deadline := time.Duration(n.cfg.AdaptiveRoundMult * float64(at))
		if deadline > interval {
			deadline = interval
		}
		return at, deadline, true
	}
	return n.scaledProbeTimeout(), interval, false
}

// scheduleProbeLocked arms the next probe tick.
func (n *Node) scheduleProbeLocked() {
	if n.shutdown {
		return
	}
	n.probeTimer = n.cfg.Clock.AfterFunc(n.scaledProbeInterval(), n.probeTick)
}

// probeTick runs one protocol period.
//
// While the member is blocked by an anomaly, the round still *starts* at
// the tick — memberlist arms the ack and period timers before the send,
// and timers keep firing in a stalled process — but the ping itself is
// stuck until wake. The resumed round then finds its deadlines long past
// and fails immediately, suspecting a healthy target: the false-positive
// seed the paper attributes to slow members (§II, §IV). Ticks that fire
// while a blocked round is pending are dropped, like a ticker whose
// reader goroutine is stuck.
func (n *Node) probeTick() {
	n.mu.Lock()
	if n.shutdown {
		n.mu.Unlock()
		return
	}
	n.scheduleProbeLocked()
	if n.blockedLocked() {
		if !n.probeDeferred {
			target := n.nextProbeTargetLocked()
			if target != nil {
				n.probeDeferred = true
				addr := target.Addr
				ping := n.startProbeRoundLocked(target)
				n.deferToWakeLocked(func() {
					n.mu.Lock()
					n.probeDeferred = false
					if !n.shutdown {
						// The ping only leaves now; restamp the round
						// so a later RTT observation measures the
						// network, not the block.
						if h, ok := n.acks[ping.SeqNo]; ok {
							h.sentAt = n.cfg.Clock.Now()
						}
						n.sendWithPiggybackLocked(addr, ping, target, false)
					}
					n.mu.Unlock()
				})
			}
		}
		n.mu.Unlock()
		return
	}
	n.probeLocked()
	n.mu.Unlock()
}

// probeLocked picks the next probe target and starts a probe round.
func (n *Node) probeLocked() {
	target := n.nextProbeTargetLocked()
	if target == nil {
		return
	}
	n.probeNodeLocked(target)
}

// nextProbeTargetLocked selects the member to probe this period:
// round-robin by default, uniform random under the ablation flag.
func (n *Node) nextProbeTargetLocked() *memberState {
	if n.cfg.RandomProbeSelection {
		picks := n.selectRandomLocked(1, func(m *memberState) bool {
			return m != n.self && m.State != StateDead && m.State != StateLeft
		})
		if len(picks) == 0 {
			return nil
		}
		return picks[0]
	}
	return n.nextRoundRobinTargetLocked()
}

// nextRoundRobinTargetLocked advances the round-robin schedule. The
// probe list is maintained incrementally and holds exactly the probeable
// members (non-self, not dead or left), so a pass is a straight walk;
// the membership checks are kept as a safety net only.
func (n *Node) nextRoundRobinTargetLocked() *memberState {
	for pass := 0; pass < 2; pass++ {
		for n.probeIdx < len(n.probeList) {
			m := n.probeList[n.probeIdx]
			n.probeIdx++
			if m == n.self {
				continue
			}
			if m.State == StateDead || m.State == StateLeft {
				continue
			}
			return m
		}
		if len(n.probeList) == 0 {
			return nil
		}
		n.resetProbeListLocked()
	}
	return nil
}

// resetProbeListLocked reshuffles the probe schedule in place at the end
// of a full pass (Fisher–Yates, O(n)). The schedule's membership is
// maintained incrementally by insert/removeProbeTargetLocked, so no
// rebuild — and in particular no per-pass sort over the member table —
// is needed; the RNG remains the only source of randomness, preserving
// the simulation's same-seed determinism.
func (n *Node) resetProbeListLocked() {
	for i := len(n.probeList) - 1; i > 0; i-- {
		j := n.cfg.RNG.Intn(i + 1)
		n.probeList[i], n.probeList[j] = n.probeList[j], n.probeList[i]
		n.probeList[i].probeSlot = i
		n.probeList[j].probeSlot = j
	}
	n.probeIdx = 0
}

// insertProbeTargetLocked schedules a new member at a uniformly random
// position among the not-yet-probed remainder of the current pass (SWIM
// §4.3), preserving the expected first-detection latency while bounding
// the worst case. The insert is a swap: the member lands at the chosen
// slot and the displaced member moves to the end of the pass, staying
// pending. O(1), versus the O(n) memmove of a true insertion.
func (n *Node) insertProbeTargetLocked(m *memberState) {
	if m == n.self {
		return
	}
	if m.probeSlot >= 0 {
		return
	}
	n.probeList = append(n.probeList, m)
	pos := len(n.probeList) - 1
	m.probeSlot = pos
	if lo := n.probeIdx; lo < pos {
		j := lo + n.cfg.RNG.Intn(pos-lo+1)
		n.probeList[pos], n.probeList[j] = n.probeList[j], n.probeList[pos]
		n.probeList[pos].probeSlot = pos
		n.probeList[j].probeSlot = j
	}
}

// removeProbeTargetLocked drops a member from the probe schedule when it
// dies or leaves. Removal is by swap (O(1)): a hole in the already-probed
// prefix is filled with the last probed member, and the resulting hole at
// the pending boundary — or a hole directly in the pending region — is
// filled with the list's tail, which keeps both regions contiguous so no
// member is skipped or probed twice within the pass.
func (n *Node) removeProbeTargetLocked(m *memberState) {
	p := m.probeSlot
	if p < 0 {
		return
	}
	last := len(n.probeList) - 1
	if p < n.probeIdx {
		n.probeIdx--
		moved := n.probeList[n.probeIdx]
		n.probeList[p] = moved
		moved.probeSlot = p
		p = n.probeIdx
	}
	if p != last {
		moved := n.probeList[last]
		n.probeList[p] = moved
		moved.probeSlot = p
	}
	n.probeList = n.probeList[:last]
	m.probeSlot = -1
}

// probeNodeLocked starts a probe round against m and sends the ping.
func (n *Node) probeNodeLocked(m *memberState) {
	ping := n.startProbeRoundLocked(m)
	n.sendWithPiggybackLocked(m.Addr, ping, m, false)
}

// startProbeRoundLocked registers the ack handler and arms the round's
// timers, returning the ping to send. Separated from the send so a
// blocked member's round can start at the tick while its ping waits for
// wake.
func (n *Node) startProbeRoundLocked(m *memberState) *wire.Ping {
	n.cfg.Metrics.IncrCounter(metrics.CounterProbes, 1)
	n.seqNo++
	seq := n.seqNo
	timeout, interval, adaptive := n.probeTimeoutsLocked(m.Name)
	if adaptive {
		n.cfg.Metrics.IncrCounter(metrics.CounterAdaptiveTimeouts, 1)
	} else if n.cfg.AdaptiveProbeTimeout {
		n.cfg.Metrics.IncrCounter(metrics.CounterAdaptiveFallbacks, 1)
	}

	h := &ackHandler{
		seq:      seq,
		target:   m.handle,
		interval: interval,
		adaptive: adaptive,
		sentAt:   n.cfg.Clock.Now(),
	}
	n.acks[seq] = h
	h.timeoutTimer = n.cfg.Clock.AfterFunc(timeout, func() { n.probeTimeoutExpired(seq) })
	h.periodTimer = n.cfg.Clock.AfterFunc(interval, func() { n.probePeriodExpired(seq) })

	return &wire.Ping{SeqNo: seq, Target: m.Name, Source: n.cfg.Name, Coord: n.coordPayloadLocked()}
}

// probeTimeoutExpired fires when the direct probe's ack deadline passes:
// launch indirect probes through k members, plus the reliable-channel
// fallback. While blocked, the continuation is deferred to wake — the
// probe goroutine is stuck before its sends — after which the (long
// past) deadline makes the round fail immediately, exactly the resumed
// stale probe the paper describes.
func (n *Node) probeTimeoutExpired(seq uint32) {
	n.mu.Lock()
	if n.shutdown {
		n.mu.Unlock()
		return
	}
	h, ok := n.acks[seq]
	if !ok || h.acked {
		n.mu.Unlock()
		return
	}
	if n.blockedLocked() {
		n.deferToWakeLocked(func() { n.probeTimeoutExpired(seq) })
		n.mu.Unlock()
		return
	}
	target := n.byHandle[h.target]
	if target == nil || target.State == StateDead || target.State == StateLeft {
		n.mu.Unlock()
		return
	}
	// Indirect probes through k members (uniform random, or
	// coordinate-aware under CoordinateRelaySelection).
	relays := n.selectRelaysLocked(target)
	// Only an actually-escalated round pollutes ack timing: if no
	// indirect probe or fallback ping leaves (no eligible relay and no
	// reliable channel), a late direct ack still measures the direct
	// path. That matters under adaptive timeouts, where an
	// underestimated RTT fires the timeout before the ack — without
	// the sample the estimate could never correct itself.
	h.indirect = len(relays) > 0 || n.cfg.TCPFallback
	wantNack := n.cfg.LHAProbe
	for _, r := range relays {
		ind := &wire.IndirectPing{
			SeqNo:    seq,
			Target:   target.Name,
			Source:   n.cfg.Name,
			WantNack: wantNack,
		}
		n.sendWithPiggybackLocked(r.Addr, ind, target, false)
	}
	if wantNack {
		h.nacksExpected = len(relays)
	}

	// Reliable-channel fallback direct probe (memberlist §III-B). It
	// carries the coordinate like every other ping: under degraded UDP
	// the fallback may be the only path our coordinate reaches the
	// target on.
	if n.cfg.TCPFallback {
		ping := &wire.Ping{SeqNo: seq, Target: target.Name, Source: n.cfg.Name, Coord: n.coordPayloadLocked()}
		n.sendWithPiggybackLocked(target.Addr, ping, target, true)
	}
	n.mu.Unlock()
}

// probePeriodExpired closes the probe round at the end of the protocol
// period: account local health, and suspect the target if no ack
// arrived.
func (n *Node) probePeriodExpired(seq uint32) {
	n.mu.Lock()
	if n.shutdown {
		n.mu.Unlock()
		return
	}
	h, ok := n.acks[seq]
	if !ok {
		n.mu.Unlock()
		return
	}
	if h.acked {
		delete(n.acks, seq)
		n.mu.Unlock()
		return
	}
	if n.blockedLocked() {
		n.deferToWakeLocked(func() { n.probePeriodExpired(seq) })
		n.mu.Unlock()
		return
	}
	delete(n.acks, seq)
	stopTimer(h.timeoutTimer)

	target := n.byHandle[h.target]
	n.cfg.Metrics.IncrCounter(metrics.CounterProbeFailures, 1)
	if n.cfg.Telemetry != nil {
		n.cfg.Telemetry.RecordProbe(target.Name, telemetry.OutcomeTimeout)
	}
	if n.cfg.LHAProbe {
		delta := awareness.DeltaProbeFailed
		// Adaptive rounds close before the relays' static nack schedule
		// can possibly answer, so the missed-nack surcharge (§IV-A)
		// only applies to rounds that ran the full period.
		if !h.adaptive {
			missed := h.nacksExpected - len(h.nackFrom)
			if missed > 0 {
				delta += missed * awareness.DeltaMissedNack
			}
		}
		score := n.aware.ApplyDelta(delta)
		if n.cfg.Telemetry != nil {
			n.cfg.Telemetry.RecordLHM(score)
		}
	}

	if target == nil || target.State == StateDead || target.State == StateLeft {
		n.mu.Unlock()
		return
	}
	// An already-suspected target still gets our accusation:
	// suspectNodeLocked records it as an independent confirmation, which
	// is what drives LHA-Suspicion's timeout decay for genuinely failed
	// members (§IV-B) — every healthy member whose probe fails becomes a
	// distinct accuser.
	s := &wire.Suspect{Incarnation: target.Incarnation, Node: target.Name, From: n.cfg.Name}
	n.suspectNodeLocked(target, s)
	n.mu.Unlock()
}

// handlePingLocked answers a direct probe. The ack carries piggybacked
// gossip like any failure-detector message.
func (n *Node) handlePingLocked(from string, p *wire.Ping) {
	if p.Target != "" && p.Target != n.cfg.Name {
		// Mis-addressed probe; answering would poison the sender's view.
		n.cfg.Metrics.IncrCounter("misdirected_pings", 1)
		return
	}
	src := p.Source
	if src == "" {
		src = from
	}
	// One wire-boundary lookup resolves the prober's record; the
	// address and the coordinate liveness check both come from it.
	sm := n.members[src]
	addr := src
	if sm != nil {
		addr = sm.Addr
	}
	// The prober's coordinate rides on the ping; cache it (no RTT is
	// measurable on the receive side). The ack carries ours back, which
	// the prober pairs with its measured round-trip. Only live members
	// are cached: a packet that raced a dead declaration must not
	// resurrect state the death transition just Forgot.
	if p.Coord != nil && memberLive(sm) {
		n.witnessCoordLocked(src, p.Coord)
	}
	n.scratchAck = wire.Ack{SeqNo: p.SeqNo, Source: n.cfg.Name, Coord: n.coordPayloadLocked()}
	n.sendWithPiggybackLocked(addr, &n.scratchAck, nil, false)
}

// memberLive reports whether a member record may contribute coordinate
// state: non-nil and not dead or left, so packets racing a death
// declaration cannot re-cache what the transition dropped
// (deadNodeLocked only Forgets once per death).
func memberLive(m *memberState) bool {
	return m != nil && (m.State == StateAlive || m.State == StateSuspect)
}

// handleIndirectPingLocked relays a probe on behalf of another member.
func (n *Node) handleIndirectPingLocked(from string, ind *wire.IndirectPing) {
	origin := ind.Source
	if origin == "" {
		origin = from
	}
	target, ok := n.members[ind.Target]
	if !ok {
		return
	}
	originH := -1
	if om, ok := n.members[origin]; ok {
		originH = om.handle
	}

	n.seqNo++
	seq := n.seqNo
	r := &relayHandler{
		origin:   origin,
		originH:  originH,
		origSeq:  ind.SeqNo,
		target:   target.handle,
		wantNack: ind.WantNack,
		sentAt:   n.cfg.Clock.Now(),
	}
	n.relays[seq] = r

	if ind.WantNack {
		nackAfter := time.Duration(float64(n.scaledProbeTimeout()) * n.cfg.NackTimeoutFraction)
		r.nackTimer = n.cfg.Clock.AfterFunc(nackAfter, func() { n.relayNackExpired(seq) })
	}
	// Forget the relay once the originator's round is long over.
	r.expireTimer = n.cfg.Clock.AfterFunc(2*n.scaledProbeInterval(), func() {
		n.mu.Lock()
		if rr, ok := n.relays[seq]; ok {
			stopTimer(rr.nackTimer)
			delete(n.relays, seq)
		}
		n.mu.Unlock()
	})

	ping := &wire.Ping{SeqNo: seq, Target: target.Name, Source: n.cfg.Name, Coord: n.coordPayloadLocked()}
	n.sendWithPiggybackLocked(target.Addr, ping, target, false)
}

// relayOriginAddrLocked resolves the address to answer a relayed probe
// on: the originator's record when known (by handle when it was known
// at relay start, by one name lookup otherwise — it may have joined our
// view since), falling back to its self-reported name.
func (n *Node) relayOriginAddrLocked(r *relayHandler) string {
	if r.originH >= 0 {
		if m := n.byHandle[r.originH]; m != nil {
			return m.Addr
		}
	} else if m, ok := n.members[r.origin]; ok {
		return m.Addr
	}
	return r.origin
}

// relayNackExpired sends the nack for a relayed probe whose target has
// not acked within the nack window (§IV-A).
func (n *Node) relayNackExpired(seq uint32) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.shutdown {
		return
	}
	r, ok := n.relays[seq]
	if !ok || r.acked || !r.wantNack {
		return
	}
	n.scratchNack = wire.Nack{SeqNo: r.origSeq, Source: n.cfg.Name}
	n.sendPacketLocked(n.relayOriginAddrLocked(r), []wire.Message{&n.scratchNack}, false)
}

// handleAckLocked closes the matching probe round (as originator) or
// forwards the ack (as relay). Probe and relay rounds share the node's
// sequence space, so a sequence number identifies exactly one of the two.
func (n *Node) handleAckLocked(_ string, a *wire.Ack) {
	// Originator path: the ack (direct, fallback, or relay-forwarded)
	// answers a probe we initiated. An ack arriving after a nack still
	// counts as a successful probe (§IV-A, footnote 5).
	if h, ok := n.acks[a.SeqNo]; ok {
		if h.acked {
			return
		}
		h.acked = true
		stopTimer(h.timeoutTimer)
		tm := n.byHandle[h.target]
		if n.cfg.LHAProbe {
			score := n.aware.ApplyDelta(awareness.DeltaProbeSuccess)
			if n.cfg.Telemetry != nil {
				n.cfg.Telemetry.RecordLHM(score)
			}
		}
		if n.cfg.Telemetry != nil {
			if h.indirect {
				n.cfg.Telemetry.RecordProbe(tm.Name, telemetry.OutcomeIndirectAck)
			} else {
				// A round that never escalated is answered on the direct
				// path, so the timing is a clean RTT measurement — taken
				// even with coordinates disabled.
				n.cfg.Telemetry.RecordProbe(tm.Name, telemetry.OutcomeDirectAck)
				n.cfg.Telemetry.RecordRTT(tm.Name, n.cfg.Clock.Now().Sub(h.sentAt))
			}
		}
		// Coordinate bookkeeping: a direct ack from the target measures
		// the direct path, so feed RTT + peer coordinate to the Vivaldi
		// engine. Once the round went indirect the timing is polluted
		// by the relay detour; just cache the coordinate. Dead/left
		// members are excluded so late packets cannot resurrect state
		// the death transition Forgot.
		if a.Coord != nil && a.Source == tm.Name && memberLive(tm) {
			if h.indirect {
				n.witnessCoordLocked(a.Source, a.Coord)
			} else {
				n.observeRTTLocked(a.Source, a.Coord, n.cfg.Clock.Now().Sub(h.sentAt))
			}
		}
		return
	}

	// Relay path: the target answered a ping we sent on someone's
	// behalf; forward under the originator's sequence number. Forwarding
	// happens even after a nack was sent.
	if r, ok := n.relays[a.SeqNo]; ok && !r.acked {
		r.acked = true
		stopTimer(r.nackTimer)
		tm := n.byHandle[r.target]
		if n.cfg.Telemetry != nil && a.Source == tm.Name {
			// The relay's own ping/ack exchange with the target is a
			// direct-path measurement for the relay too.
			n.cfg.Telemetry.RecordRTT(a.Source, n.cfg.Clock.Now().Sub(r.sentAt))
		}
		// The relay's own ping/ack exchange with the target is a clean
		// direct-path measurement; the relay's engine learns from it
		// (unless the target died in the meantime, see above).
		if a.Coord != nil && a.Source == tm.Name && memberLive(tm) {
			n.observeRTTLocked(a.Source, a.Coord, n.cfg.Clock.Now().Sub(r.sentAt))
		}
		// The target's coordinate is forwarded so the originator can at
		// least cache it; the originator knows not to take an RTT
		// sample from a relayed ack (see h.indirect above). The scratch
		// ack is encoded before sendPacketLocked returns.
		n.scratchAck = wire.Ack{SeqNo: r.origSeq, Source: a.Source, Coord: a.Coord}
		n.sendPacketLocked(n.relayOriginAddrLocked(r), []wire.Message{&n.scratchAck}, false)
	}
}

// handleNackLocked records a relay's nack: proof the relay path is live
// even though the target is not answering.
func (n *Node) handleNackLocked(_ string, nk *wire.Nack) {
	h, ok := n.acks[nk.SeqNo]
	if !ok {
		return
	}
	for _, s := range h.nackFrom {
		if s == nk.Source {
			return
		}
	}
	h.nackFrom = append(h.nackFrom, nk.Source)
}

// selectRelaysLocked picks the relays for an indirect probe against
// target. The default is IndirectChecks uniform random picks; with
// CoordinateRelaySelection on, a guaranteed random-diversity slice is
// drawn first (so selection never collapses onto one zone) and the
// remaining slots go to the candidates whose estimated RTT to the
// target is lowest per the cached peer coordinates — the members best
// placed to reach the target quickly. The near ranking runs within a
// bounded uniform candidate pool (a few dozen members), not the whole
// roster, so an escalation costs O(pool log pool) even at 10k members —
// the same bounded-pool shape as gossipTargetsLocked. Candidates
// without cached coordinates can only enter through the random slices,
// and a fully cold cache degrades to the uniform behavior.
func (n *Node) selectRelaysLocked(target *memberState) []*memberState {
	k := n.cfg.IndirectChecks
	match := func(m *memberState) bool {
		return m.State == StateAlive && m != n.self && m != target
	}
	if !n.cfg.CoordinateRelaySelection || n.coordClient == nil || k <= 0 {
		return n.selectRandomLocked(k, match)
	}

	diverse := int(float64(k) * n.cfg.RelayDiversity)
	if diverse < 1 && n.cfg.RelayDiversity > 0 {
		diverse = 1
	}
	if diverse > k {
		diverse = k
	}
	picked := n.selectRandomLocked(diverse, match)
	n.cfg.Metrics.IncrCounter(metrics.CounterRelayRandomPicks, int64(len(picked)))
	if len(picked) >= k {
		return picked
	}

	// Near slice: rank a bounded uniform pool of eligible members by
	// estimated RTT to the target. Pool draw and ranking are both
	// deterministic, preserving same-seed reproducibility. The diverse
	// slice is excluded by a linear scan — it holds at most k records.
	pool := n.selectRandomLocked(relayPoolSize(k), func(m *memberState) bool {
		if !match(m) {
			return false
		}
		for _, pm := range picked {
			if pm == m {
				return false
			}
		}
		return true
	})
	n.nearNames = n.nearNames[:0]
	for _, m := range pool {
		n.nearNames = append(n.nearNames, m.Name)
	}
	marks := n.poolMarksLocked(len(pool))
	n.nearIdx = n.coordClient.NearestPeerIndexes(target.Name, n.nearNames, k-len(picked), n.nearIdx[:0])
	for _, i := range n.nearIdx {
		picked = append(picked, pool[i])
		marks[i] = true
	}
	n.cfg.Metrics.IncrCounter(metrics.CounterRelayNearPicks, int64(len(n.nearIdx)))

	// Cold coordinates (target or candidates unranked) leave slots
	// open; fill them uniformly from the pool's remainder.
	filled := 0
	for i, m := range pool {
		if len(picked) >= k {
			break
		}
		if !marks[i] {
			picked = append(picked, m)
			marks[i] = true
			filled++
		}
	}
	n.cfg.Metrics.IncrCounter(metrics.CounterRelayRandomPicks, int64(filled))
	return picked
}

// poolMarksLocked returns the node's reusable per-pool-slot flag
// scratch, zeroed to the requested size.
func (n *Node) poolMarksLocked(size int) []bool {
	if cap(n.pickMarks) < size {
		n.pickMarks = make([]bool, size)
	}
	marks := n.pickMarks[:size]
	for i := range marks {
		marks[i] = false
	}
	return marks
}

// relayPoolSize bounds the candidate pool ranked per escalation: wide
// enough that the nearest members are almost surely represented, small
// enough that sorting it is negligible.
func relayPoolSize(k int) int {
	const min = 24
	if 8*k > min {
		return 8 * k
	}
	return min
}

// selectRandomLocked returns up to k distinct members matching the
// filter, chosen uniformly at random by a partial Fisher–Yates walk over
// the incrementally maintained roster: position i is swapped with a
// random position in [i, n) and kept if it matches, stopping at k picks.
// Matching members therefore form a uniform k-subset at a cost of O(k)
// RNG draws when most members match, instead of the full sort+shuffle of
// every candidate. The roster order is itself deterministic (it evolves
// only through message handling and these RNG-driven swaps — never map
// iteration), so selection remains a pure function of the node's RNG and
// same-seed simulations stay reproducible.
func (n *Node) selectRandomLocked(k int, match func(*memberState) bool) []*memberState {
	return n.selectRandomIntoLocked(nil, k, match)
}

// selectRandomIntoLocked is selectRandomLocked appending into dst (a
// caller-owned scratch slice, typically sliced to zero length), so
// periodic callers like the gossip tick avoid a per-call allocation. A
// nil dst allocates as before.
func (n *Node) selectRandomIntoLocked(dst []*memberState, k int, match func(*memberState) bool) []*memberState {
	if k <= 0 || len(n.roster) == 0 {
		return dst
	}
	if dst == nil {
		dst = make([]*memberState, 0, k)
	}
	start := len(dst)
	r := n.roster
	for i := 0; i < len(r) && len(dst)-start < k; i++ {
		j := i + n.cfg.RNG.Intn(len(r)-i)
		r[i], r[j] = r[j], r[i]
		if match(r[i]) {
			dst = append(dst, r[i])
		}
	}
	return dst
}
