package core

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"lifeguard/internal/coords"
	"lifeguard/internal/metrics"
	"lifeguard/internal/sim"
	"lifeguard/internal/wire"
)

// benchTransport swallows every packet: these benchmarks measure the
// node's selection paths, not encoding or delivery.
type benchTransport struct{}

func (benchTransport) LocalAddr() string                     { return "self" }
func (benchTransport) SendPacket(string, []byte, bool) error { return nil }

// newBenchNode builds a started node with size members merged in, on a
// virtual clock that never advances during the measured loop.
func newBenchNode(b *testing.B, size int, configure func(*Config)) *Node {
	b.Helper()
	sched := sim.NewScheduler(time.Unix(0, 0))

	cfg := DefaultConfig("self")
	cfg.Clock = sim.NewClock(sched)
	cfg.Transport = benchTransport{}
	cfg.RNG = rand.New(rand.NewSource(1))
	cfg.Metrics = metrics.NewMemSink()
	if configure != nil {
		configure(cfg)
	}
	n, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	if err := n.Start(); err != nil {
		b.Fatal(err)
	}
	b.Cleanup(n.Shutdown)

	n.mu.Lock()
	for i := 0; i < size; i++ {
		name := fmt.Sprintf("member-%05d", i)
		n.handleAliveLocked(&wire.Alive{Incarnation: 1, Node: name, Addr: name})
	}
	n.mu.Unlock()
	return n
}

// warmCoords feeds the local Vivaldi engine enough synthetic RTT
// observations to pass the cold-start gate and cache a coordinate for
// every member, so the latency-aware gossip path is exercised.
func warmCoords(b *testing.B, n *Node) {
	b.Helper()
	n.mu.Lock()
	defer n.mu.Unlock()
	origin := coords.NewCoordinate(coords.DefaultConfig())
	for _, m := range n.roster {
		if m == n.self {
			continue
		}
		if _, err := n.coordClient.Update(m.Name, origin, time.Millisecond); err != nil {
			b.Fatalf("coord update for %s: %v", m.Name, err)
		}
	}
	if !n.coordWarmLocked() {
		b.Fatalf("coordinates still cold after %d updates", len(n.roster)-1)
	}
}

// BenchmarkGossipTargets measures one gossip tick's fanout selection at
// a 1k-member roster. Both paths must be allocation-free in steady
// state: the uniform path appends into the node's reusable target
// scratch, and the latency-aware path additionally reuses the candidate
// pool, candidate-name, ranked-index and pick-mark scratch that used to
// be a fresh slice + two maps per tick.
func BenchmarkGossipTargets(b *testing.B) {
	b.Run("uniform", func(b *testing.B) {
		n := newBenchNode(b, 1000, nil)
		n.mu.Lock()
		defer n.mu.Unlock()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if got := n.gossipTargetsLocked(); len(got) == 0 {
				b.Fatal("no targets selected")
			}
		}
	})
	b.Run("latency-aware", func(b *testing.B) {
		n := newBenchNode(b, 1000, func(cfg *Config) {
			cfg.LatencyAwareGossip = true
		})
		warmCoords(b, n)
		n.mu.Lock()
		defer n.mu.Unlock()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if got := n.gossipTargetsLocked(); len(got) == 0 {
				b.Fatal("no targets selected")
			}
		}
	})
}

// TestGossipTargetsAllocs pins both gossip fanout paths at zero
// steady-state allocations, so the per-tick map/slice builds this
// selection used to do cannot quietly return.
func TestGossipTargetsAllocs(t *testing.T) {
	for _, tc := range []struct {
		name      string
		configure func(*Config)
		warm      bool
	}{
		{name: "uniform"},
		{name: "latency-aware", configure: func(cfg *Config) { cfg.LatencyAwareGossip = true }, warm: true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var b testing.B
			n := newBenchNode(&b, 200, tc.configure)
			if tc.warm {
				warmCoords(&b, n)
			}
			if b.Failed() {
				t.Fatal("bench node setup failed")
			}
			n.mu.Lock()
			defer n.mu.Unlock()
			n.gossipTargetsLocked() // grow every scratch buffer once
			allocs := testing.AllocsPerRun(100, func() {
				n.gossipTargetsLocked()
			})
			if allocs > 0 {
				t.Fatalf("gossip fanout selection allocates %.1f per tick, want 0", allocs)
			}
		})
	}
}

// BenchmarkPushPullSnapshot measures one push-pull exchange's state
// snapshot at a 1k-member table. The incrementally maintained sorted
// roster plus the node-owned scratch slice make it a straight copy —
// zero allocations and no per-exchange sort (the old path allocated a
// fresh slice and sort.Slice'd the whole table every exchange).
func BenchmarkPushPullSnapshot(b *testing.B) {
	n := newBenchNode(b, 1000, nil)
	n.mu.Lock()
	defer n.mu.Unlock()
	n.localStatesLocked() // grow the scratch once
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := n.localStatesLocked(); len(got) != 1001 {
			b.Fatalf("snapshot has %d states, want 1001", len(got))
		}
	}
}

// BenchmarkProbeRoundLookup measures the interned hot-path member
// lookup a probe round performs when an ack arrives: handle → record
// via the dense byHandle table, replacing the per-packet name-map
// lookups.
func BenchmarkProbeRoundLookup(b *testing.B) {
	n := newBenchNode(b, 1000, nil)
	n.mu.Lock()
	defer n.mu.Unlock()
	b.ReportAllocs()
	b.ResetTimer()
	var sink *memberState
	for i := 0; i < b.N; i++ {
		sink = n.byHandle[1+i%1000]
	}
	if sink == nil {
		b.Fatal("nil record")
	}
}
