package core

// Transport moves packets between members. The core consumes this
// interface; implementations are the in-memory simulator
// (internal/sim.Port) and the real UDP/TCP transport
// (internal/nettrans.Transport).
type Transport interface {
	// SendPacket sends an encoded packet to the member at addr.
	// reliable requests a loss-exempt channel (TCP in the real
	// transport); it is used for push-pull anti-entropy and the
	// fallback direct probe (memberlist §III-B).
	//
	// SendPacket must not block the caller beyond local queueing.
	//
	// payload is only valid for the duration of the call: the core
	// packs packets in pooled buffers that are reused for the next
	// send. An implementation that queues, schedules or ships the
	// payload asynchronously must copy it first — once is enough: the
	// simulator copies into a reference-counted bufpool buffer and
	// shares that one copy across every queued delivery that carries
	// the same bytes (in-flight fan-out packets, duplication faults),
	// releasing it when the last consumer is done.
	SendPacket(addr string, payload []byte, reliable bool) error

	// LocalAddr returns the member's own address.
	LocalAddr() string
}

// FanoutTransport is an optional Transport extension for sending one
// payload to several members at once. The core type-asserts for it at
// construction and uses it on the gossip fan-out path when consecutive
// targets receive byte-identical packets, letting the transport copy
// the payload once for the whole group instead of once per destination
// (internal/sim.Port shares one refcounted buffer across the group;
// a datagram transport could use sendmmsg).
type FanoutTransport interface {
	Transport

	// SendPacketFanout sends payload to every member in addrs, under
	// SendPacket's contract: the payload is valid only for the duration
	// of the call, and delivery to each destination is independently
	// subject to the transport's loss and ordering behaviour, exactly
	// as if SendPacket had been called once per address in order.
	SendPacketFanout(addrs []string, payload []byte, reliable bool) error
}
