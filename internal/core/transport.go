package core

// Transport moves packets between members. The core consumes this
// interface; implementations are the in-memory simulator
// (internal/sim.Port) and the real UDP/TCP transport
// (internal/nettrans.Transport).
type Transport interface {
	// SendPacket sends an encoded packet to the member at addr.
	// reliable requests a loss-exempt channel (TCP in the real
	// transport); it is used for push-pull anti-entropy and the
	// fallback direct probe (memberlist §III-B).
	//
	// SendPacket must not block the caller beyond local queueing.
	//
	// payload is only valid for the duration of the call: the core
	// packs packets in pooled buffers that are reused for the next
	// send. An implementation that queues, schedules or ships the
	// payload asynchronously must copy it first (see internal/bufpool).
	SendPacket(addr string, payload []byte, reliable bool) error

	// LocalAddr returns the member's own address.
	LocalAddr() string
}
