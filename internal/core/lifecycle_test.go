package core

import (
	"testing"
	"time"

	"lifeguard/internal/wire"
)

// Edge-case lifecycle behaviour not covered by the main state tests.

func TestAckForUnknownSeqIgnored(t *testing.T) {
	h := newHarness(t, nil)
	h.addMember("m1", 1)
	// Must not panic or disturb state.
	h.inject("m1", &wire.Ack{SeqNo: 4242, Source: "m1"})
	h.inject("m1", &wire.Nack{SeqNo: 4242, Source: "m1"})
	if got := h.state("m1").State; got != StateAlive {
		t.Errorf("state = %v", got)
	}
}

func TestLateAckAfterPeriodIgnored(t *testing.T) {
	h := newHarness(t, nil)
	h.addMember("m1", 1)
	h.unresponsive["m1"] = true
	h.clearSent()

	// Round fails at t=2s; a very late ack must not revive the handler
	// or lower the LHM retroactively.
	h.run(2100 * time.Millisecond)
	if got := h.state("m1").State; got != StateSuspect {
		t.Fatalf("state = %v", got)
	}
	lhmBefore := h.node.HealthScore()
	pings := h.sentOfType(wire.TypePing)
	if len(pings) == 0 {
		t.Fatal("no pings")
	}
	seq := pings[0].msg.(*wire.Ping).SeqNo
	h.inject("m1", &wire.Ack{SeqNo: seq, Source: "m1"})
	if got := h.node.HealthScore(); got != lhmBefore {
		t.Errorf("late ack changed LHM %d -> %d", lhmBefore, got)
	}
	// The suspicion stands (the ack is not a refutation).
	if got := h.state("m1").State; got != StateSuspect {
		t.Errorf("late ack cleared suspicion: %v", got)
	}
}

func TestIndirectPingForUnknownTargetIgnored(t *testing.T) {
	h := newHarness(t, nil)
	h.addMember("origin", 1)
	h.clearSent()
	h.inject("origin", &wire.IndirectPing{SeqNo: 1, Target: "stranger", Source: "origin"})
	if len(h.sent) != 0 {
		t.Errorf("relay acted on unknown target: %d packets", len(h.sent))
	}
}

func TestRelayStateExpires(t *testing.T) {
	h := newHarness(t, nil)
	h.addMember("origin", 1)
	h.addMember("target", 1)
	h.unresponsive["target"] = true
	h.inject("origin", &wire.IndirectPing{SeqNo: 5, Target: "target", Source: "origin", WantNack: true})
	// After 2 protocol periods the relay bookkeeping must be gone: a
	// very late ack from the target is not forwarded.
	h.run(3 * time.Second)
	h.clearSent()
	pings := 0
	for range h.sentOfType(wire.TypePing) {
		pings++
	}
	_ = pings
	// Find the relay's own ping seq from history is gone; inject a
	// guess-range of acks and verify none are forwarded to origin.
	for seq := uint32(1); seq < 20; seq++ {
		h.inject("target", &wire.Ack{SeqNo: seq, Source: "target"})
	}
	for _, p := range h.sentOfType(wire.TypeAck) {
		if p.pkt.to == "origin" {
			t.Fatal("expired relay still forwarded an ack")
		}
	}
}

func TestDeadMemberRevivalRejoinsProbeList(t *testing.T) {
	h := newHarness(t, nil)
	h.addMember("m1", 1)
	h.inject("x", &wire.Dead{Incarnation: 1, Node: "m1", From: "x"})
	h.clearSent()
	h.run(5 * time.Second)
	if len(h.sentOfType(wire.TypePing)) != 0 {
		t.Fatal("dead member probed")
	}
	// Revive; probing must resume.
	h.addMember("m1", 2)
	h.clearSent()
	h.run(5 * time.Second)
	if len(h.sentOfType(wire.TypePing)) == 0 {
		t.Fatal("revived member never probed again")
	}
}

func TestLeftMemberNotProbedOrGossipedTo(t *testing.T) {
	h := newHarness(t, nil)
	h.addMember("m1", 1)
	h.addMember("m2", 1)
	h.inject("x", &wire.Dead{Incarnation: 1, Node: "m1", From: "m1"}) // graceful leave
	h.clearSent()
	h.run(10 * time.Second)
	for _, pkt := range h.sent {
		if pkt.to == "m1" {
			t.Fatalf("traffic to left member: %v", pkt.msgs[0].Type())
		}
	}
}

func TestSuspicionTimeoutUsesClusterSize(t *testing.T) {
	// With a larger known group, the suspicion floor grows as
	// α·log10(n); verify indirectly: a 100-member view must keep a
	// suspect alive past the 2-member timeout.
	h := newHarness(t, nil)
	for i := 0; i < 99; i++ {
		h.addMember(nodeName(i), 1)
	}
	// n=100 → Min = 10s, Max = 60s.
	h.inject("x", &wire.Suspect{Incarnation: 1, Node: nodeName(3), From: "x"})
	h.run(35 * time.Second) // past the n=2 Max of 30s
	if got := h.state(nodeName(3)).State; got != StateSuspect {
		t.Fatalf("state = %v at 35s; expected still suspect under n=100 timeout", got)
	}
	h.run(30 * time.Second) // past 60s total
	if got := h.state(nodeName(3)).State; got != StateDead {
		t.Fatalf("state = %v at 65s", got)
	}
}

func TestWakeWithNothingDeferredIsSafe(t *testing.T) {
	h := newHarness(t, nil)
	h.node.Wake()
	h.node.Wake()
}

func TestLeavePendingTracksLeaveBroadcast(t *testing.T) {
	h := newHarness(t, nil)
	h.addMember("m1", 1)
	if h.node.LeavePending() {
		t.Error("leave pending before Leave")
	}
	h.node.Leave()
	if !h.node.LeavePending() {
		t.Error("leave not pending immediately after Leave")
	}
	// Gossip hands the announcement out until its retransmit budget is
	// spent; LeavePending must go false then, even though other updates
	// (the suspicion and death of the silent peer) stay queued.
	h.run(time.Minute)
	if h.node.LeavePending() {
		t.Errorf("leave still pending after a minute of gossip (%d broadcasts queued)",
			h.node.PendingBroadcasts())
	}
}

func TestLeaveThenShutdownSequence(t *testing.T) {
	h := newHarness(t, nil)
	h.addMember("m1", 1)
	h.node.Leave()
	h.node.Leave() // idempotent
	if got, _ := h.node.Member("self"); got.State != StateLeft {
		t.Errorf("self state = %v after leave", got.State)
	}
	h.node.Shutdown()
}

func TestProbeTickWithNoPeersIsQuiet(t *testing.T) {
	h := newHarness(t, nil)
	h.clearSent()
	h.run(10 * time.Second)
	if got := len(h.sentOfType(wire.TypePing)); got != 0 {
		t.Errorf("%d pings with no peers", got)
	}
}

func TestMembersSnapshotIsCopy(t *testing.T) {
	h := newHarness(t, nil)
	h.addMember("m1", 1)
	ms := h.node.Members()
	for i := range ms {
		ms[i].State = StateDead
		ms[i].Name = "mutated"
	}
	if got := h.state("m1").State; got != StateAlive {
		t.Error("Members() exposed internal state")
	}
}

func TestIncarnationMonotoneUnderRefutationStorm(t *testing.T) {
	h := newHarness(t, nil)
	h.addMember("m1", 1)
	prev := h.node.Incarnation()
	for i := 0; i < 50; i++ {
		h.inject("m1", &wire.Suspect{Incarnation: prev, Node: "self", From: "m1"})
		got := h.node.Incarnation()
		if got <= prev {
			t.Fatalf("incarnation not monotone: %d -> %d", prev, got)
		}
		prev = got
	}
	// LHM saturates rather than overflowing.
	if got := h.node.HealthScore(); got > h.node.Config().MaxLHM {
		t.Errorf("LHM %d beyond saturation", got)
	}
}

func TestBlockedPushPullDeferred(t *testing.T) {
	h := newHarness(t, nil)
	// Two members: the blocked probe round will suspect one of them at
	// wake (its deadlines are long past), and the deferred push-pull
	// needs an alive peer left to contact.
	h.addMember("m1", 1)
	h.addMember("m2", 1)
	h.blocked = true
	h.clearSent()
	h.run(90 * time.Second) // several push-pull intervals while blocked
	if got := len(h.sentOfType(wire.TypePushPullReq)); got != 0 {
		t.Fatalf("%d push-pulls escaped a blocked member", got)
	}
	h.blocked = false
	h.node.Wake()
	h.run(100 * time.Millisecond)
	if got := len(h.sentOfType(wire.TypePushPullReq)); got != 1 {
		t.Errorf("%d push-pulls at wake, want exactly 1 (coalesced)", got)
	}
}

func TestReconnectAttemptsDeadMembers(t *testing.T) {
	h := newHarness(t, nil)
	h.addMember("m1", 1)
	h.addMember("m2", 1)
	h.inject("x", &wire.Dead{Incarnation: 1, Node: "m1", From: "x"})
	h.clearSent()
	h.run(80 * time.Second) // a couple of reconnect intervals

	found := false
	for _, p := range h.sentOfType(wire.TypePushPullReq) {
		if p.pkt.to == "m1" {
			found = true
			if !p.pkt.reliable {
				t.Error("reconnect push-pull not on the reliable channel")
			}
		}
	}
	if !found {
		t.Fatal("no reconnect attempt to the dead member")
	}
}

func TestReconnectDisabled(t *testing.T) {
	h := newHarness(t, func(cfg *Config) { cfg.ReconnectInterval = 0 })
	h.addMember("m1", 1)
	h.inject("x", &wire.Dead{Incarnation: 1, Node: "m1", From: "x"})
	h.clearSent()
	h.run(2 * time.Minute)
	for _, p := range h.sentOfType(wire.TypePushPullReq) {
		if p.pkt.to == "m1" {
			t.Fatal("reconnect attempted despite ReconnectInterval=0")
		}
	}
}
