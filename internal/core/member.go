package core

import (
	"time"

	"lifeguard/internal/suspicion"
)

// State is a member's liveness state in the local view.
type State uint8

// Member states. Values appear in push-pull exchanges; do not reorder.
const (
	// StateAlive means the member is believed healthy.
	StateAlive State = iota + 1

	// StateSuspect means the member failed a probe and its suspicion
	// timer is running.
	StateSuspect

	// StateDead means the member was declared failed.
	StateDead

	// StateLeft means the member announced a graceful leave.
	StateLeft
)

// String returns the lower-case state name.
func (s State) String() string {
	switch s {
	case StateAlive:
		return "alive"
	case StateSuspect:
		return "suspect"
	case StateDead:
		return "dead"
	case StateLeft:
		return "left"
	default:
		return "unknown"
	}
}

// Member is a snapshot of one member's entry in the local membership
// view.
type Member struct {
	// Name is the member's unique name.
	Name string

	// Addr is the member's transport address.
	Addr string

	// Incarnation is the member's latest known incarnation number.
	Incarnation uint64

	// Meta is the member's opaque application metadata (what Serf
	// builds node tags on), at most wire.MaxMetaLen bytes.
	Meta []byte

	// State is the member's liveness state.
	State State

	// StateChange is when the state last changed, on the node's clock.
	StateChange time.Time
}

// memberState is the node's mutable record for one member.
type memberState struct {
	Member

	// handle is the member's dense index in Node.byHandle — the intern
	// table that lets hot-path bookkeeping (in-flight probe rounds,
	// relays, the probe schedule) reference members by integer instead
	// of hashing their name on every packet. Assigned by
	// internMemberLocked; see internal/core/intern.go for the lifecycle.
	handle int

	// probeSlot is the member's current slot in Node.probeList, or -1
	// when it is not scheduled (self, dead, left). It replaces the old
	// name-keyed position map for the probe schedule's O(1) swap
	// insert/remove operations.
	probeSlot int

	// susp is the running suspicion timer while State == StateSuspect.
	susp *suspicion.Suspicion
}
