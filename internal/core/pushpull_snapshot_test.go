package core

import (
	"sort"
	"testing"

	"lifeguard/internal/wire"
)

// snapshotMatchesTable asserts localStatesLocked equals the members map
// sorted by name — the exact contract the old allocate-and-sort
// implementation provided per exchange and the incremental roster must
// preserve through every membership mutation.
func snapshotMatchesTable(t *testing.T, n *Node) {
	t.Helper()
	n.mu.Lock()
	defer n.mu.Unlock()

	want := make([]wire.PushPullState, 0, len(n.members))
	for _, m := range n.members {
		want = append(want, wire.PushPullState{
			Name:        m.Name,
			Addr:        m.Addr,
			Incarnation: m.Incarnation,
			State:       uint8(m.State),
			Meta:        m.Meta,
		})
	}
	sort.Slice(want, func(i, j int) bool { return want[i].Name < want[j].Name })

	got := n.localStatesLocked()
	if len(got) != len(want) {
		t.Fatalf("snapshot has %d states, members table has %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Name != want[i].Name || got[i].Incarnation != want[i].Incarnation ||
			got[i].State != want[i].State || got[i].Addr != want[i].Addr {
			t.Fatalf("snapshot[%d] = %+v, want %+v", i, got[i], want[i])
		}
	}
}

// TestPushPullSnapshotTracksMembership drives the node through join,
// death, refutation and an embedder-style prune, checking after each
// step that the incrementally sorted snapshot still equals the sorted
// members table.
func TestPushPullSnapshotTracksMembership(t *testing.T) {
	h := newHarness(t, nil)
	snapshotMatchesTable(t, h.node)

	// Joins arrive in name-unsorted order; the roster must file them.
	for _, name := range []string{"delta", "alpha", "zed", "mike"} {
		h.addMember(name, 1)
		snapshotMatchesTable(t, h.node)
	}

	// Death and refutation mutate state in place — set membership is
	// unchanged, and the snapshot reflects the new state fields.
	h.inject("zed", &wire.Dead{Incarnation: 1, Node: "mike", From: "zed"})
	snapshotMatchesTable(t, h.node)
	if h.state("mike").State != StateDead {
		t.Fatal("mike not marked dead")
	}
	h.inject("mike", &wire.Alive{Incarnation: 2, Node: "mike", Addr: "mike"})
	snapshotMatchesTable(t, h.node)

	// An embedder pruning a record releases its handle; the snapshot
	// must drop it with the table entry.
	n := h.node
	n.mu.Lock()
	m := n.members["delta"]
	n.releaseMemberLocked(m)
	delete(n.members, "delta")
	n.mu.Unlock()
	snapshotMatchesTable(t, h.node)

	// Rediscovery after a prune re-interns under the same name.
	h.addMember("delta", 3)
	snapshotMatchesTable(t, h.node)
}

// TestPushPullSnapshotAllocs pins the snapshot path at zero steady-state
// allocations: the sorted roster is maintained incrementally and the
// state slice is node-owned scratch, so an exchange allocates nothing
// once the scratch has grown to the table size.
func TestPushPullSnapshotAllocs(t *testing.T) {
	var b testing.B
	n := newBenchNode(&b, 200, nil)
	if b.Failed() {
		t.Fatal("bench node setup failed")
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.localStatesLocked() // grow the scratch once
	allocs := testing.AllocsPerRun(100, func() {
		if got := n.localStatesLocked(); len(got) != 201 {
			t.Fatalf("snapshot has %d states, want 201", len(got))
		}
	})
	if allocs > 0 {
		t.Fatalf("push-pull snapshot allocates %.1f per exchange, want 0", allocs)
	}
}
