package core

// EventDelegate receives membership change notifications, the unit in
// which the paper counts failure events (a "false positive" is a
// NotifyDead about a healthy member).
//
// Callbacks are invoked synchronously from the protocol core with its
// internal lock held: they must be fast and must not call back into the
// Node. Record and return; do any heavy work elsewhere.
type EventDelegate interface {
	// NotifyJoin fires when a member becomes alive in the local view:
	// on first sight, or on recovery from the dead/left state.
	NotifyJoin(m Member)

	// NotifySuspect fires when a member enters the suspected state.
	NotifySuspect(m Member)

	// NotifyAlive fires when a suspicion is refuted (suspect → alive)
	// without the member having been declared dead.
	NotifyAlive(m Member)

	// NotifyDead fires when a member is declared dead or announces a
	// graceful leave — the paper's failure event.
	NotifyDead(m Member)

	// NotifyUpdate fires when an alive member's metadata or address
	// changes without a liveness transition.
	NotifyUpdate(m Member)
}

// NopEvents is an EventDelegate that ignores all notifications. Embed it
// to implement only the callbacks of interest.
type NopEvents struct{}

var _ EventDelegate = NopEvents{}

// NotifyJoin implements EventDelegate.
func (NopEvents) NotifyJoin(Member) {}

// NotifySuspect implements EventDelegate.
func (NopEvents) NotifySuspect(Member) {}

// NotifyAlive implements EventDelegate.
func (NopEvents) NotifyAlive(Member) {}

// NotifyDead implements EventDelegate.
func (NopEvents) NotifyDead(Member) {}

// NotifyUpdate implements EventDelegate.
func (NopEvents) NotifyUpdate(Member) {}
