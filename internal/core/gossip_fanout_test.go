package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"lifeguard/internal/metrics"
	"lifeguard/internal/sim"
	"lifeguard/internal/wire"
)

// sendRec is one captured transport send.
type sendRec struct {
	addr    string
	payload []byte
}

// recordTransport captures per-target sends (no fan-out extension).
type recordTransport struct {
	sends []sendRec
}

func (r *recordTransport) LocalAddr() string { return "self" }
func (r *recordTransport) SendPacket(addr string, payload []byte, _ bool) error {
	r.sends = append(r.sends, sendRec{addr: addr, payload: append([]byte(nil), payload...)})
	return nil
}

// recordFanoutTransport additionally implements FanoutTransport,
// recording grouped sends expanded per destination plus a group count.
type recordFanoutTransport struct {
	recordTransport
	groups     int
	groupSizes []int
}

func (r *recordFanoutTransport) SendPacketFanout(addrs []string, payload []byte, _ bool) error {
	r.groups++
	r.groupSizes = append(r.groupSizes, len(addrs))
	for _, a := range addrs {
		r.sends = append(r.sends, sendRec{addr: a, payload: append([]byte(nil), payload...)})
	}
	return nil
}

// newGossipNode builds a started node on the given transport with size
// members merged in, everything else deterministic and identical across
// calls.
func newGossipNode(t *testing.T, tr Transport, size int) *Node {
	t.Helper()
	sched := sim.NewScheduler(time.Unix(0, 0))
	cfg := DefaultConfig("self")
	cfg.Clock = sim.NewClock(sched)
	cfg.Transport = tr
	cfg.RNG = rand.New(rand.NewSource(11))
	cfg.Metrics = metrics.NewMemSink()
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(n.Shutdown)
	n.mu.Lock()
	for i := 0; i < size; i++ {
		name := fmt.Sprintf("member-%03d", i)
		n.handleAliveLocked(&wire.Alive{Incarnation: 1, Node: name, Addr: name})
	}
	n.mu.Unlock()
	return n
}

// TestGossipFanoutMatchesPerTargetSends is the shared-encode
// equivalence pin at the node layer: a gossip round through the
// fan-out transport must put exactly the packets on the wire that the
// per-target select-and-encode loop puts there — same targets, same
// order, byte-identical payloads — while actually coalescing the
// identical ones into grouped sends.
func TestGossipFanoutMatchesPerTargetSends(t *testing.T) {
	plain := &recordTransport{}
	grouped := &recordFanoutTransport{}
	a := newGossipNode(t, plain, 40)
	b := newGossipNode(t, grouped, 40)

	for round := 0; round < 6; round++ {
		a.mu.Lock()
		a.gossipLocked()
		a.mu.Unlock()
		b.mu.Lock()
		b.gossipLocked()
		b.mu.Unlock()
	}

	if len(plain.sends) == 0 {
		t.Fatal("no gossip packets sent")
	}
	if len(plain.sends) != len(grouped.sends) {
		t.Fatalf("per-target path sent %d packets, fan-out path %d",
			len(plain.sends), len(grouped.sends))
	}
	for i := range plain.sends {
		if plain.sends[i].addr != grouped.sends[i].addr {
			t.Fatalf("send %d addressed to %s via fan-out, %s per-target",
				i, grouped.sends[i].addr, plain.sends[i].addr)
		}
		if !bytes.Equal(plain.sends[i].payload, grouped.sends[i].payload) {
			t.Fatalf("send %d to %s: fan-out payload differs from per-target payload",
				i, plain.sends[i].addr)
		}
	}
	if grouped.groups == 0 {
		t.Fatal("fan-out transport was never used for a gossip group")
	}
	coalesced := false
	for _, size := range grouped.groupSizes {
		if size > 1 {
			coalesced = true
		}
	}
	if !coalesced {
		t.Fatalf("every fan-out group had a single target (%v); shared encoding never engaged",
			grouped.groupSizes)
	}
}

// TestGossipSharedEncodeCountsPerTarget verifies telemetry is
// unchanged by grouping: msgs/bytes counters accumulate one packet per
// destination, identical on both paths.
func TestGossipSharedEncodeCountsPerTarget(t *testing.T) {
	plain := &recordTransport{}
	grouped := &recordFanoutTransport{}
	a := newGossipNode(t, plain, 40)
	b := newGossipNode(t, grouped, 40)
	for round := 0; round < 4; round++ {
		a.mu.Lock()
		a.gossipLocked()
		a.mu.Unlock()
		b.mu.Lock()
		b.gossipLocked()
		b.mu.Unlock()
	}
	am := a.cfg.Metrics.(*metrics.MemSink)
	bm := b.cfg.Metrics.(*metrics.MemSink)
	for _, counter := range []string{metrics.CounterMsgsSent, metrics.CounterBytesSent} {
		if av, bv := am.Get(counter), bm.Get(counter); av != bv || av == 0 {
			t.Fatalf("%s: per-target %d, fan-out %d (want equal, non-zero)", counter, av, bv)
		}
	}
}
