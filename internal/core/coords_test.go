package core

import (
	"testing"
	"time"

	"lifeguard/internal/wire"
)

// TestProbeFeedsCoordinateEngine drives the node through several probe
// rounds (the harness auto-acks with a 1 ms round trip, attaching the
// peer's coordinate below) and checks RTT observations reach the
// Vivaldi engine.
func TestProbeFeedsCoordinateEngine(t *testing.T) {
	h := newHarness(t, nil)
	h.addMember("peer-1", 1)

	// Answer pings like the harness does, but with a coordinate
	// attached, as a coordinate-bearing peer would.
	h.autoAck = false
	peerCoord := h.node.Coordinate() // any valid coordinate shape works
	if peerCoord == nil {
		t.Fatal("coordinates unexpectedly disabled")
	}
	peerCoord.Error = 0.1
	h.run(100 * time.Millisecond) // drain the startup burst
	h.clearSent()

	answered := 0
	for round := 0; round < 12; round++ {
		h.run(h.node.Config().ProbeInterval)
		for _, s := range h.sentOfType(wire.TypePing) {
			ping := s.msg.(*wire.Ping)
			if ping.Target != "peer-1" {
				continue
			}
			if ping.Coord == nil {
				t.Fatal("outgoing ping carries no coordinate")
			}
			h.inject("peer-1", &wire.Ack{SeqNo: ping.SeqNo, Source: "peer-1", Coord: peerCoord})
			answered++
		}
		h.clearSent()
	}
	if answered == 0 {
		t.Fatal("no pings to answer")
	}

	if got := h.sink.Get("coord_updates"); got == 0 {
		t.Fatal("no RTT observations reached the coordinate engine")
	}
	est, ok := h.node.EstimateRTT("peer-1")
	if !ok {
		t.Fatal("no RTT estimate for probed peer")
	}
	if est <= 0 || est > time.Second {
		t.Fatalf("implausible RTT estimate %v", est)
	}
	if h.node.PeerCoordinate("peer-1") == nil {
		t.Fatal("peer coordinate not cached")
	}
}

// TestPingReceiverCachesProberCoordinate: the receive side of a ping
// cannot measure RTT but must cache the prober's coordinate and answer
// with its own.
func TestPingReceiverCachesProberCoordinate(t *testing.T) {
	h := newHarness(t, nil)
	h.addMember("prober", 1)
	h.clearSent()

	c := h.node.Coordinate()
	c.Vec[0] = 0.010
	h.inject("prober", &wire.Ping{SeqNo: 77, Target: "self", Source: "prober", Coord: c})

	acks := h.sentOfType(wire.TypeAck)
	if len(acks) != 1 {
		t.Fatalf("expected 1 ack, got %d", len(acks))
	}
	if acks[0].msg.(*wire.Ack).Coord == nil {
		t.Fatal("ack carries no coordinate")
	}
	if h.node.PeerCoordinate("prober") == nil {
		t.Fatal("prober's coordinate not cached")
	}
	if _, ok := h.node.EstimateRTT("prober"); !ok {
		t.Fatal("no estimate available from witnessed coordinate")
	}
}

// TestCoordinatesDisabledInteroperates: a node with coordinates
// disabled sends coordinate-less pings/acks, ignores inbound
// coordinates, and reports no estimates — while still completing the
// probe exchange with a coordinate-bearing peer.
func TestCoordinatesDisabledInteroperates(t *testing.T) {
	h := newHarness(t, func(cfg *Config) { cfg.DisableCoordinates = true })
	h.addMember("peer-1", 1)
	h.clearSent()

	if h.node.Coordinate() != nil {
		t.Fatal("Coordinate() non-nil with coordinates disabled")
	}

	// Inbound coordinate ping from a modern peer: must be answered
	// normally, without caching or echoing coordinates.
	peerCoord := newHarness(t, nil).node.Coordinate()
	h.inject("peer-1", &wire.Ping{SeqNo: 5, Target: "self", Source: "peer-1", Coord: peerCoord})

	acks := h.sentOfType(wire.TypeAck)
	if len(acks) != 1 {
		t.Fatalf("expected 1 ack, got %d", len(acks))
	}
	if acks[0].msg.(*wire.Ack).Coord != nil {
		t.Fatal("disabled node attached a coordinate to its ack")
	}
	if _, ok := h.node.EstimateRTT("peer-1"); ok {
		t.Fatal("disabled node produced an RTT estimate")
	}
	h.clearSent()

	// Outbound probes must be coordinate-less.
	h.run(2 * h.node.Config().ProbeInterval)
	pings := h.sentOfType(wire.TypePing)
	if len(pings) == 0 {
		t.Fatal("no pings sent")
	}
	for _, s := range pings {
		if s.msg.(*wire.Ping).Coord != nil {
			t.Fatal("disabled node attached a coordinate to its ping")
		}
	}
}

// TestDeadMemberCoordinateForgotten: declaring a member dead drops its
// cached coordinate, so estimates to departed members do not serve
// stale data (and per-peer engine state cannot grow without bound
// under name churn).
func TestDeadMemberCoordinateForgotten(t *testing.T) {
	h := newHarness(t, nil)
	h.addMember("doomed", 1)
	c := h.node.Coordinate()
	h.inject("doomed", &wire.Ping{SeqNo: 1, Target: "self", Source: "doomed", Coord: c})
	if _, ok := h.node.EstimateRTT("doomed"); !ok {
		t.Fatal("no estimate after witnessed ping")
	}

	h.inject("other", &wire.Dead{Incarnation: 1, Node: "doomed", From: "other"})
	if m := h.state("doomed"); m.State != StateDead {
		t.Fatalf("doomed is %v, want dead", m.State)
	}
	if _, ok := h.node.EstimateRTT("doomed"); ok {
		t.Fatal("estimate for dead member served from stale cache")
	}

	// A ping that raced the death declaration must not re-cache the
	// dead member's coordinate (deadNodeLocked only Forgets once).
	h.inject("doomed", &wire.Ping{SeqNo: 2, Target: "self", Source: "doomed", Coord: c})
	if _, ok := h.node.EstimateRTT("doomed"); ok {
		t.Fatal("late ping resurrected the dead member's coordinate")
	}
}

// TestRelayMeasuresTargetRTT: an indirect-probe relay pings the target
// itself, so the relay's coordinate engine takes the sample, and the
// forwarded ack carries the target's coordinate for the originator's
// cache (but no RTT update there).
func TestRelayMeasuresTargetRTT(t *testing.T) {
	h := newHarness(t, nil)
	h.addMember("origin", 1)
	h.addMember("target", 1)
	h.autoAck = false
	h.run(10 * time.Millisecond)
	h.clearSent()

	h.inject("origin", &wire.IndirectPing{SeqNo: 9, Target: "target", Source: "origin", WantNack: true})
	relayed := h.sentOfType(wire.TypePing)
	if len(relayed) != 1 {
		t.Fatalf("expected 1 relayed ping, got %d", len(relayed))
	}
	seq := relayed[0].msg.(*wire.Ping).SeqNo
	h.clearSent()

	// The target answers 3 ms later with its coordinate.
	tc := h.node.Coordinate()
	tc.Vec[1] = 0.004
	h.run(3 * time.Millisecond)
	h.inject("target", &wire.Ack{SeqNo: seq, Source: "target", Coord: tc})

	if got := h.sink.Get("coord_updates"); got != 1 {
		t.Fatalf("relay took %d RTT observations, want 1", got)
	}
	fwd := h.sentOfType(wire.TypeAck)
	if len(fwd) != 1 {
		t.Fatalf("expected 1 forwarded ack, got %d", len(fwd))
	}
	fa := fwd[0].msg.(*wire.Ack)
	if fa.SeqNo != 9 || fa.Source != "target" {
		t.Fatalf("forwarded ack %+v", fa)
	}
	if fa.Coord == nil {
		t.Fatal("forwarded ack dropped the target's coordinate")
	}
}
