package core

import (
	"testing"
	"time"

	"lifeguard/internal/wire"
)

// --- SWIM §4.2 message precedence, implemented in state.go ---

func TestAliveAddsNewMember(t *testing.T) {
	h := newHarness(t, nil)
	h.addMember("m1", 1)

	m := h.state("m1")
	if m.State != StateAlive || m.Incarnation != 1 {
		t.Fatalf("m1 = %+v", m)
	}
	if h.node.NumAlive() != 2 {
		t.Errorf("alive count = %d", h.node.NumAlive())
	}
	if len(h.events) != 1 || h.events[0] != "join:m1" {
		t.Errorf("events = %v", h.events)
	}
}

func TestAliveNewerIncarnationUpdates(t *testing.T) {
	h := newHarness(t, nil)
	h.addMember("m1", 1)
	h.addMember("m1", 5)
	if got := h.state("m1").Incarnation; got != 5 {
		t.Errorf("incarnation = %d", got)
	}
}

func TestAliveStaleIncarnationIgnored(t *testing.T) {
	h := newHarness(t, nil)
	h.addMember("m1", 5)
	h.addMember("m1", 3)
	if got := h.state("m1").Incarnation; got != 5 {
		t.Errorf("incarnation regressed to %d", got)
	}
}

func TestSuspectRequiresKnownMember(t *testing.T) {
	h := newHarness(t, nil)
	h.inject("x", &wire.Suspect{Incarnation: 1, Node: "stranger", From: "x"})
	if _, ok := h.node.Member("stranger"); ok {
		t.Error("suspect created a member out of thin air")
	}
}

func TestSuspectMarksAliveMember(t *testing.T) {
	h := newHarness(t, nil)
	h.addMember("m1", 1)
	h.clearSent()

	h.inject("x", &wire.Suspect{Incarnation: 1, Node: "m1", From: "x"})
	if got := h.state("m1").State; got != StateSuspect {
		t.Fatalf("state = %v", got)
	}
	// The suspicion is re-gossiped (dissemination), with the original
	// accuser preserved.
	var found bool
	h.run(time.Second) // let a gossip tick drain the queue
	for _, s := range h.sentOfType(wire.TypeSuspect) {
		sus := s.msg.(*wire.Suspect)
		if sus.Node == "m1" && sus.From == "x" {
			found = true
		}
	}
	if !found {
		t.Error("received suspicion not re-gossiped with original accuser")
	}
}

func TestSuspectAtEqualIncarnationApplies(t *testing.T) {
	// SWIM §4.2: suspect overrides alive at the same incarnation.
	h := newHarness(t, nil)
	h.addMember("m1", 3)
	h.inject("x", &wire.Suspect{Incarnation: 3, Node: "m1", From: "x"})
	if got := h.state("m1").State; got != StateSuspect {
		t.Errorf("state = %v", got)
	}
}

func TestSuspectStaleIncarnationIgnored(t *testing.T) {
	h := newHarness(t, nil)
	h.addMember("m1", 5)
	h.inject("x", &wire.Suspect{Incarnation: 4, Node: "m1", From: "x"})
	if got := h.state("m1").State; got != StateAlive {
		t.Errorf("stale suspect applied: %v", got)
	}
}

func TestAliveEqualIncarnationDoesNotRefuteSuspicion(t *testing.T) {
	// Only a strictly newer incarnation clears suspicion (SWIM §4.2).
	h := newHarness(t, nil)
	h.addMember("m1", 3)
	h.inject("x", &wire.Suspect{Incarnation: 3, Node: "m1", From: "x"})
	h.addMember("m1", 3)
	if got := h.state("m1").State; got != StateSuspect {
		t.Errorf("equal-incarnation alive cleared suspicion: %v", got)
	}
}

func TestAliveNewerIncarnationRefutesSuspicion(t *testing.T) {
	h := newHarness(t, nil)
	h.addMember("m1", 3)
	h.inject("x", &wire.Suspect{Incarnation: 3, Node: "m1", From: "x"})
	h.addMember("m1", 4)
	if got := h.state("m1").State; got != StateAlive {
		t.Fatalf("refutation ignored: %v", got)
	}
	// The suspicion timer must be dead: no dead event later.
	h.run(5 * time.Minute)
	if got := h.state("m1").State; got != StateAlive {
		t.Errorf("suspicion timer survived refutation: %v", got)
	}
	want := []string{"join:m1", "suspect:m1", "alive:m1"}
	if len(h.events) != len(want) {
		t.Fatalf("events = %v", h.events)
	}
	for i := range want {
		if h.events[i] != want[i] {
			t.Fatalf("events = %v, want %v", h.events, want)
		}
	}
}

func TestSuspicionExpiresToDead(t *testing.T) {
	h := newHarness(t, nil)
	h.addMember("m1", 1)
	h.inject("x", &wire.Suspect{Incarnation: 1, Node: "m1", From: "x"})
	// n = 2 alive: Min = 5·max(1, log10(2))·1s = 5s; β=6 → Max = 30s.
	h.run(31 * time.Second)
	if got := h.state("m1").State; got != StateDead {
		t.Fatalf("state = %v after suspicion timeout", got)
	}
	// Dead is re-gossiped.
	h.run(time.Second)
	if len(h.sentOfType(wire.TypeDead)) == 0 {
		t.Error("death not gossiped")
	}
}

func TestLHASuspicionConfirmationsShrinkTimeout(t *testing.T) {
	h := newHarness(t, nil)
	h.addMember("m1", 1)
	for _, name := range []string{"m2", "m3", "m4"} {
		h.addMember(name, 1)
	}
	// n = 5 alive → Min = 5s, Max = 30s (log10(5) < 1 clamps to 1).
	h.inject("x", &wire.Suspect{Incarnation: 1, Node: "m1", From: "m2"})
	// K=3 independent confirmations drive the timeout to Min.
	h.inject("x", &wire.Suspect{Incarnation: 1, Node: "m1", From: "m3"})
	h.inject("x", &wire.Suspect{Incarnation: 1, Node: "m1", From: "m4"})
	h.inject("x", &wire.Suspect{Incarnation: 1, Node: "m1", From: "m5"})

	h.run(6 * time.Second)
	if got := h.state("m1").State; got != StateDead {
		t.Errorf("state = %v at Min+1s with K confirmations", got)
	}
}

func TestSWIMConfigHasFixedTimeout(t *testing.T) {
	h := newHarness(t, func(cfg *Config) {
		swim := SWIMConfig("self")
		swim.Clock, swim.Transport, swim.RNG = cfg.Clock, cfg.Transport, cfg.RNG
		swim.Events, swim.Metrics, swim.Blocked = cfg.Events, cfg.Metrics, cfg.Blocked
		*cfg = *swim
	})
	h.addMember("m1", 1)
	h.inject("x", &wire.Suspect{Incarnation: 1, Node: "m1", From: "x"})
	// Fixed timeout = Min = 5s; must be dead shortly after, regardless
	// of zero confirmations.
	h.run(6 * time.Second)
	if got := h.state("m1").State; got != StateDead {
		t.Errorf("state = %v at fixed timeout + 1s", got)
	}
}

func TestDuplicateAccuserDoesNotConfirm(t *testing.T) {
	h := newHarness(t, nil)
	h.addMember("m1", 1)
	h.inject("x", &wire.Suspect{Incarnation: 1, Node: "m1", From: "m9"})
	for i := 0; i < 10; i++ {
		h.inject("x", &wire.Suspect{Incarnation: 1, Node: "m1", From: "m9"})
	}
	// Timeout must still be Max (30s for n=2): not dead at 20s.
	h.run(20 * time.Second)
	if got := h.state("m1").State; got != StateSuspect {
		t.Errorf("state = %v; duplicate accusers must not shrink the timeout", got)
	}
}

func TestDeadMessageAppliesAndRetains(t *testing.T) {
	h := newHarness(t, nil)
	h.addMember("m1", 1)
	h.inject("x", &wire.Dead{Incarnation: 1, Node: "m1", From: "x"})
	m := h.state("m1")
	if m.State != StateDead {
		t.Fatalf("state = %v", m.State)
	}
	if h.node.NumAlive() != 1 {
		t.Errorf("alive count = %d", h.node.NumAlive())
	}
	// Retained for push-pull: still in Members().
	found := false
	for _, mm := range h.node.Members() {
		if mm.Name == "m1" {
			found = true
		}
	}
	if !found {
		t.Error("dead member dropped from the table")
	}
}

func TestDeadOverridesSuspectAtEqualIncarnation(t *testing.T) {
	h := newHarness(t, nil)
	h.addMember("m1", 2)
	h.inject("x", &wire.Suspect{Incarnation: 2, Node: "m1", From: "x"})
	h.inject("x", &wire.Dead{Incarnation: 2, Node: "m1", From: "x"})
	if got := h.state("m1").State; got != StateDead {
		t.Errorf("state = %v", got)
	}
}

func TestDeadStaleIncarnationIgnored(t *testing.T) {
	h := newHarness(t, nil)
	h.addMember("m1", 5)
	h.inject("x", &wire.Dead{Incarnation: 4, Node: "m1", From: "x"})
	if got := h.state("m1").State; got != StateAlive {
		t.Errorf("stale dead applied: %v", got)
	}
}

func TestAliveNewerRevivesDeadMember(t *testing.T) {
	h := newHarness(t, nil)
	h.addMember("m1", 1)
	h.inject("x", &wire.Dead{Incarnation: 1, Node: "m1", From: "x"})
	h.addMember("m1", 2)
	if got := h.state("m1").State; got != StateAlive {
		t.Fatalf("state = %v", got)
	}
	// dead → alive fires a join, not a refute.
	last := h.events[len(h.events)-1]
	if last != "join:m1" {
		t.Errorf("last event = %v", last)
	}
}

func TestSelfSuspectTriggersRefutation(t *testing.T) {
	h := newHarness(t, nil)
	h.addMember("m1", 1)
	h.clearSent()

	before := h.node.Incarnation()
	h.inject("m1", &wire.Suspect{Incarnation: before, Node: "self", From: "m1"})
	after := h.node.Incarnation()
	if after != before+1 {
		t.Fatalf("incarnation %d → %d, want +1", before, after)
	}
	// A fresh alive broadcast must be queued; let gossip flush it.
	h.run(time.Second)
	found := false
	for _, s := range h.sentOfType(wire.TypeAlive) {
		a := s.msg.(*wire.Alive)
		if a.Node == "self" && a.Incarnation == after {
			found = true
		}
	}
	if !found {
		t.Error("refuting alive not gossiped")
	}
	// Refuting charges local health (+1).
	if got := h.node.HealthScore(); got != 1 {
		t.Errorf("LHM = %d, want 1", got)
	}
}

func TestSelfDeadTriggersRefutation(t *testing.T) {
	h := newHarness(t, nil)
	h.addMember("m1", 1)
	before := h.node.Incarnation()
	h.inject("m1", &wire.Dead{Incarnation: before, Node: "self", From: "m1"})
	if got := h.node.Incarnation(); got != before+1 {
		t.Errorf("incarnation %d, want %d", got, before+1)
	}
}

func TestStaleSelfAccusationNotRefuted(t *testing.T) {
	h := newHarness(t, nil)
	h.addMember("m1", 1)
	h.inject("m1", &wire.Suspect{Incarnation: 0, Node: "self", From: "m1"})
	// Claimed incarnation 0 < current 1: existing alive already refutes.
	if got := h.node.Incarnation(); got != 1 {
		t.Errorf("incarnation bumped to %d for a stale accusation", got)
	}
}

func TestRefutationJumpsPastClaimedIncarnation(t *testing.T) {
	h := newHarness(t, nil)
	h.addMember("m1", 1)
	// An accusation claiming a future incarnation (e.g. replayed through
	// several refutation rounds) must be jumped past, not incremented.
	h.inject("m1", &wire.Suspect{Incarnation: 7, Node: "self", From: "m1"})
	if got := h.node.Incarnation(); got != 8 {
		t.Errorf("incarnation = %d, want 8", got)
	}
}

func TestLeaveAnnouncesSelfDead(t *testing.T) {
	h := newHarness(t, nil)
	h.addMember("m1", 1)
	h.clearSent()
	h.node.Leave()
	h.run(time.Second)

	found := false
	for _, s := range h.sentOfType(wire.TypeDead) {
		d := s.msg.(*wire.Dead)
		if d.Node == "self" && d.From == "self" {
			found = true
		}
	}
	if !found {
		t.Fatal("leave did not gossip a self-dead")
	}
	// While leaving, a dead about self is not refuted.
	inc := h.node.Incarnation()
	h.inject("m1", &wire.Dead{Incarnation: inc, Node: "self", From: "m1"})
	if got := h.node.Incarnation(); got != inc {
		t.Error("leaving node refuted its own death")
	}
}

func TestSelfLeftStateIsLeft(t *testing.T) {
	h := newHarness(t, nil)
	h.addMember("m1", 1)
	// A dead message From == Node means graceful leave.
	h.inject("x", &wire.Dead{Incarnation: 1, Node: "m1", From: "m1"})
	if got := h.state("m1").State; got != StateLeft {
		t.Errorf("state = %v, want left", got)
	}
}

func TestEventSequenceOnFalseDeathAndRecovery(t *testing.T) {
	h := newHarness(t, nil)
	h.addMember("m1", 1)
	h.inject("x", &wire.Suspect{Incarnation: 1, Node: "m1", From: "x"})
	h.run(31 * time.Second) // expire (n=2: max 30s)
	h.addMember("m1", 2)    // refutation arrives too late; member revives

	want := []string{"join:m1", "suspect:m1", "dead:m1", "join:m1"}
	if len(h.events) != len(want) {
		t.Fatalf("events = %v, want %v", h.events, want)
	}
	for i := range want {
		if h.events[i] != want[i] {
			t.Fatalf("events = %v, want %v", h.events, want)
		}
	}
}

func TestSuspicionRefutedCounterMetric(t *testing.T) {
	h := newHarness(t, nil)
	h.addMember("m1", 1)
	h.inject("x", &wire.Suspect{Incarnation: 1, Node: "m1", From: "x"})
	h.addMember("m1", 2)
	if got := h.sink.Get("suspicions_refuted"); got != 1 {
		t.Errorf("suspicions_refuted = %d", got)
	}
	if got := h.sink.Get("suspicions_raised"); got != 1 {
		t.Errorf("suspicions_raised = %d", got)
	}
}
