package core

import (
	"testing"
	"time"

	"lifeguard/internal/wire"
)

// warmPeer answers `rounds` probe pings to peer with acks carrying a
// valid peer coordinate after rtt of virtual time, feeding the node's
// Vivaldi engine one RTT observation per round. autoAck must be off.
func warmPeer(h *harness, peer string, rounds int, rtt time.Duration) {
	h.t.Helper()
	peerCoord := h.node.Coordinate()
	if peerCoord == nil {
		h.t.Fatal("coordinates unexpectedly disabled")
	}
	peerCoord.Error = 0.1
	answered := 0
	for step := 0; answered < rounds; step++ {
		if step > 200*rounds {
			h.t.Fatalf("answered only %d of %d probe rounds", answered, rounds)
		}
		h.run(10 * time.Millisecond)
		for _, s := range h.sentOfType(wire.TypePing) {
			ping := s.msg.(*wire.Ping)
			if ping.Target != peer {
				continue
			}
			seq := ping.SeqNo
			h.sched.Schedule(rtt, func() {
				h.inject(peer, &wire.Ack{SeqNo: seq, Source: peer, Coord: peerCoord})
			})
			answered++
		}
		h.clearSent()
	}
	h.run(2 * rtt) // let the last ack land
}

// TestAdaptiveTimeoutColdFallsBack: with AdaptiveProbeTimeout enabled
// but no RTT observations applied, probe rounds use the static timeout
// and the fallback counter accounts for them.
func TestAdaptiveTimeoutColdFallsBack(t *testing.T) {
	h := newHarness(t, func(cfg *Config) { cfg.AdaptiveProbeTimeout = true })
	h.addMember("peer-1", 1)

	if got, want := h.node.EffectiveProbeTimeout("peer-1"), h.node.Config().ProbeTimeout; got != want {
		t.Fatalf("cold effective timeout = %v, want static %v", got, want)
	}
	h.run(3 * h.node.Config().ProbeInterval)
	if h.sink.Get("adaptive_timeouts") != 0 {
		t.Error("cold node took adaptive timeouts")
	}
	if h.sink.Get("adaptive_timeout_fallbacks") == 0 {
		t.Error("cold fallbacks not accounted")
	}
}

// TestAdaptiveTimeoutWarmClampsToFloor: a near-zero RTT estimate clamps
// the adaptive timeout at AdaptiveTimeoutFloor rather than producing a
// degenerate deadline.
func TestAdaptiveTimeoutWarmClampsToFloor(t *testing.T) {
	h := newHarness(t, func(cfg *Config) {
		cfg.AdaptiveProbeTimeout = true
		cfg.CoordMinSamples = 1
	})
	h.addMember("peer-1", 1)
	h.autoAck = false
	warmPeer(h, "peer-1", 3, time.Millisecond)

	got := h.node.EffectiveProbeTimeout("peer-1")
	cfg := h.node.Config()
	if got != cfg.AdaptiveTimeoutFloor {
		est, ok := h.node.EstimateRTT("peer-1")
		t.Fatalf("effective timeout = %v (estimate %v ok=%v), want floor %v", got, est, ok, cfg.AdaptiveTimeoutFloor)
	}
	h.run(cfg.ProbeInterval) // one more round, now adaptive
	if h.sink.Get("adaptive_timeouts") == 0 {
		t.Error("warm adaptive rounds not accounted")
	}
}

// TestAdaptiveTimeoutClampsToCeiling: an estimate far beyond the static
// timeout clamps at ProbeTimeout — adaptive rounds never wait longer
// than the configured worst case.
func TestAdaptiveTimeoutClampsToCeiling(t *testing.T) {
	h := newHarness(t, func(cfg *Config) {
		cfg.AdaptiveProbeTimeout = true
		cfg.CoordMinSamples = 1
	})
	h.addMember("peer-1", 1)
	h.addMember("far", 1)
	h.autoAck = false
	warmPeer(h, "peer-1", 1, time.Millisecond) // warm the engine

	// Cache a coordinate a full second away for "far": 3·1s + slack
	// would exceed the 500 ms static timeout by far.
	farCoord := h.node.Coordinate()
	farCoord.Vec[0] = 1.0
	h.inject("far", &wire.Ping{SeqNo: 99, Target: "self", Source: "far", Coord: farCoord})

	est, ok := h.node.EstimateRTT("far")
	if !ok || est < 500*time.Millisecond {
		t.Fatalf("estimate to far = %v ok=%v, want ≥ 500ms", est, ok)
	}
	if got, want := h.node.EffectiveProbeTimeout("far"), h.node.Config().ProbeTimeout; got != want {
		t.Fatalf("effective timeout = %v, want ceiling %v", got, want)
	}
}

// TestAdaptiveTimeoutComposesWithAwareness: the LHM multiplier scales
// the adaptive timeout exactly as it scales the static one (§IV-A on
// top of the RTT-derived value).
func TestAdaptiveTimeoutComposesWithAwareness(t *testing.T) {
	h := newHarness(t, func(cfg *Config) {
		cfg.AdaptiveProbeTimeout = true
		cfg.CoordMinSamples = 1
	})
	h.addMember("peer-1", 1)
	h.autoAck = false
	warmPeer(h, "peer-1", 3, time.Millisecond)

	base := h.node.EffectiveProbeTimeout("peer-1")
	if base != h.node.Config().AdaptiveTimeoutFloor {
		t.Fatalf("unexpected base timeout %v", base)
	}

	// Refuting accusations about ourselves charges the LHM.
	h.inject("accuser", &wire.Suspect{Incarnation: h.node.Incarnation(), Node: "self", From: "accuser"})
	h.inject("accuser", &wire.Suspect{Incarnation: h.node.Incarnation(), Node: "self", From: "accuser"})
	score := h.node.HealthScore()
	if score == 0 {
		t.Fatal("refutes did not raise the health score")
	}
	want := base * time.Duration(score+1)
	if got := h.node.EffectiveProbeTimeout("peer-1"); got != want {
		t.Fatalf("LHM %d: effective timeout = %v, want %v", score, got, want)
	}
}

// TestAdaptiveTimeoutStaleAfterDeath: a member's death drops its cached
// coordinate, so probes against a returned member fall back to the
// static timeout instead of trusting a stale estimate.
func TestAdaptiveTimeoutStaleAfterDeath(t *testing.T) {
	h := newHarness(t, func(cfg *Config) {
		cfg.AdaptiveProbeTimeout = true
		cfg.CoordMinSamples = 1
	})
	h.addMember("peer-1", 1)
	h.autoAck = false
	warmPeer(h, "peer-1", 3, time.Millisecond)
	if h.node.EffectiveProbeTimeout("peer-1") == h.node.Config().ProbeTimeout {
		t.Fatal("expected an adaptive timeout before the death")
	}

	h.inject("other", &wire.Dead{Incarnation: 1, Node: "peer-1", From: "other"})
	h.addMember("peer-1", 2) // rejoins at a fresh incarnation
	if m := h.state("peer-1"); m.State != StateAlive {
		t.Fatalf("peer-1 is %v after rejoin", m.State)
	}
	if got, want := h.node.EffectiveProbeTimeout("peer-1"), h.node.Config().ProbeTimeout; got != want {
		t.Fatalf("effective timeout after death+rejoin = %v, want static %v", got, want)
	}
}

// TestAdaptiveRoundClosesEarly: with a warm estimate, an unanswered
// probe round's suspicion decision lands at AdaptiveRoundMult × the
// adaptive timeout instead of waiting the full protocol period.
func TestAdaptiveRoundClosesEarly(t *testing.T) {
	for _, adaptive := range []bool{true, false} {
		h := newHarness(t, func(cfg *Config) {
			cfg.AdaptiveProbeTimeout = adaptive
			cfg.CoordMinSamples = 1
		})
		h.addMember("peer-1", 1)
		h.autoAck = false
		warmPeer(h, "peer-1", 3, time.Millisecond)

		// Catch the next probe round and stop answering.
		var started bool
		for i := 0; i < 200 && !started; i++ {
			h.run(10 * time.Millisecond)
			for _, s := range h.sentOfType(wire.TypePing) {
				if s.msg.(*wire.Ping).Target == "peer-1" && !s.pkt.reliable {
					started = true
				}
			}
			h.clearSent()
		}
		if !started {
			t.Fatal("no probe round started")
		}
		// The adaptive deadline is 3×20 ms = 60 ms; the static period is
		// 1 s. 500 ms after the round started, only the adaptive round
		// has decided.
		h.run(500 * time.Millisecond)
		state := h.state("peer-1").State
		if adaptive && state != StateSuspect {
			t.Errorf("adaptive round: peer-1 is %v 500ms in, want suspect", state)
		}
		if !adaptive && state != StateAlive {
			t.Errorf("static round: peer-1 is %v 500ms in, want still alive", state)
		}
	}
}

// TestLateDirectAckStillFeedsCoordinates is the regression test for the
// escalation-marking fix: when a round's timeout fires but no indirect
// probe or fallback ping actually leaves (no eligible relay, TCP
// fallback off), a direct ack arriving before the round's deadline is
// still a clean direct-path measurement and must reach the Vivaldi
// engine. Without it, an underestimated adaptive timeout could never
// correct itself. Round-robin selection (the default) is exercised
// explicitly — the probe-round RTT feed must not depend on
// RandomProbeSelection.
func TestLateDirectAckStillFeedsCoordinates(t *testing.T) {
	h := newHarness(t, func(cfg *Config) {
		cfg.AdaptiveProbeTimeout = true
		cfg.CoordMinSamples = 1
		cfg.TCPFallback = false
		if cfg.RandomProbeSelection {
			t.Fatal("default config unexpectedly uses random probe selection")
		}
	})
	h.addMember("peer-1", 1) // the only peer: no relay candidates
	h.autoAck = false
	warmPeer(h, "peer-1", 3, time.Millisecond)
	updatesBefore := h.sink.Get("coord_updates")
	if updatesBefore == 0 {
		t.Fatal("warm-up fed no observations")
	}
	// Adaptive timeout is now the 20 ms floor, the round deadline 60 ms.
	if got := h.node.EffectiveProbeTimeout("peer-1"); got != h.node.Config().AdaptiveTimeoutFloor {
		t.Fatalf("effective timeout = %v, want floor", got)
	}

	// Answer the next ping at 40 ms: after the 20 ms timeout fired,
	// before the 60 ms round deadline.
	answered := false
	for i := 0; i < 200 && !answered; i++ {
		h.run(10 * time.Millisecond)
		for _, s := range h.sentOfType(wire.TypePing) {
			ping := s.msg.(*wire.Ping)
			if ping.Target != "peer-1" {
				continue
			}
			seq := ping.SeqNo
			peerCoord := h.node.Coordinate()
			peerCoord.Error = 0.1
			h.sched.Schedule(40*time.Millisecond, func() {
				h.inject("peer-1", &wire.Ack{SeqNo: seq, Source: "peer-1", Coord: peerCoord})
			})
			answered = true
		}
		h.clearSent()
	}
	if !answered {
		t.Fatal("no probe round to answer")
	}
	h.run(100 * time.Millisecond)

	if got := h.sink.Get("coord_updates"); got != updatesBefore+1 {
		t.Errorf("late direct ack fed %d observations, want 1 (total %d, was %d)",
			got-updatesBefore, got, updatesBefore)
	}
	if state := h.state("peer-1").State; state != StateAlive {
		t.Errorf("peer-1 is %v after in-deadline ack, want alive", state)
	}
}
