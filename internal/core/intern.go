package core

import (
	"slices"
	"strings"
)

// Member interning: the node assigns every member a dense integer
// handle on first sight and keeps the handle ⇄ record mapping in the
// byHandle table. Hot-path state that refers to members — in-flight
// probe rounds, relay bookkeeping, the round-robin probe schedule —
// carries handles (or the record pointers the table resolves to), so
// per-packet processing indexes a slice instead of hashing a name. The
// name-keyed members map remains, but only as the wire-boundary
// translation: inbound messages carry names, so the first touch of a
// packet resolves name → record once, and everything downstream is
// index-based.
//
// Handle lifecycle:
//
//   - A handle is assigned by internMemberLocked when the record enters
//     the membership table (local start, first alive, push-pull merge)
//     and stays valid for as long as the record is retained.
//   - releaseMemberLocked returns a handle to the free list for reuse.
//     In the protocol as implemented, dead and left members are
//     retained indefinitely for push-pull exchange and late gossip
//     (§III-B), so release only runs when a record is actually dropped
//     — today that is only exercised by embedders (and tests) that
//     prune long-dead members; the protocol itself never calls it.
//   - Recycled handles go to new members, so a handle must never be
//     held across a release of its member. In-protocol holders
//     (ackHandler, relayHandler, probeList) are all bounded by probe
//     rounds, which cannot outlive a retained member.

// internMemberLocked assigns m a dense handle, recycling a freed index
// when one is available, and records it in the byHandle table. It also
// files m into the name-sorted roster backing push-pull snapshots.
func (n *Node) internMemberLocked(m *memberState) {
	n.sortedInsertLocked(m)
	if len(n.freeHandles) > 0 {
		h := n.freeHandles[len(n.freeHandles)-1]
		n.freeHandles = n.freeHandles[:len(n.freeHandles)-1]
		m.handle = h
		n.byHandle[h] = m
		return
	}
	m.handle = len(n.byHandle)
	n.byHandle = append(n.byHandle, m)
}

// sortedInsertLocked files m into sortedMembers at its name's position.
// Binary search + copy is O(log n) + O(n) move, paid once per member
// arrival — against the allocate-and-sort of the whole table this
// replaces, which was paid on every push-pull exchange.
func (n *Node) sortedInsertLocked(m *memberState) {
	i, found := slices.BinarySearchFunc(n.sortedMembers, m.Name,
		func(s *memberState, name string) int { return strings.Compare(s.Name, name) })
	if found {
		// Member names are unique; a duplicate means the record is being
		// re-interned (embedder prune followed by rediscovery). Replace
		// in place.
		n.sortedMembers[i] = m
		return
	}
	n.sortedMembers = append(n.sortedMembers, nil)
	copy(n.sortedMembers[i+1:], n.sortedMembers[i:])
	n.sortedMembers[i] = m
}

// sortedRemoveLocked drops m from the name-sorted roster, verifying
// identity so a stale release cannot evict the name's current record.
func (n *Node) sortedRemoveLocked(m *memberState) {
	i, found := slices.BinarySearchFunc(n.sortedMembers, m.Name,
		func(s *memberState, name string) int { return strings.Compare(s.Name, name) })
	if !found || n.sortedMembers[i] != m {
		return
	}
	copy(n.sortedMembers[i:], n.sortedMembers[i+1:])
	n.sortedMembers[len(n.sortedMembers)-1] = nil
	n.sortedMembers = n.sortedMembers[:len(n.sortedMembers)-1]
}

// releaseMemberLocked frees m's handle for reuse, clears its table
// slot, and drops it from the name-sorted roster. The caller must have
// removed every reference to the handle first; the record's handle
// field is poisoned so a use-after-release indexes out of bounds
// instead of aliasing a recycled member.
func (n *Node) releaseMemberLocked(m *memberState) {
	h := m.handle
	if h < 0 || h >= len(n.byHandle) || n.byHandle[h] != m {
		return
	}
	n.sortedRemoveLocked(m)
	n.byHandle[h] = nil
	n.freeHandles = append(n.freeHandles, h)
	m.handle = -1
}
