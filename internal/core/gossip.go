package core

import (
	"math"

	"lifeguard/internal/metrics"
	"lifeguard/internal/wire"
)

// sendPacketLocked encodes msgs into one packet and hands it to the
// transport, accounting telemetry. A compound packet counts as one
// message, matching the paper's Msgs Sent metric.
func (n *Node) sendPacketLocked(addr string, msgs []wire.Message, reliable bool) error {
	if len(msgs) == 0 {
		return nil
	}
	p := wire.AcquirePacker()
	defer p.Release()
	for _, m := range msgs {
		p.Add(m)
	}
	return n.sendPackedLocked(addr, p, reliable)
}

// sendPackedLocked finishes the packed messages into one payload and
// hands it to the transport. The payload lives in the packer's reusable
// buffer; the Transport contract (payload valid only for the duration of
// SendPacket) is what makes that safe.
func (n *Node) sendPackedLocked(addr string, p *wire.Packer, reliable bool) error {
	payload := p.Finish()
	if len(payload) == 0 {
		return nil
	}
	n.cfg.Metrics.IncrCounter(metrics.CounterMsgsSent, 1)
	n.cfg.Metrics.IncrCounter(metrics.CounterBytesSent, int64(len(payload)))
	return n.cfg.Transport.SendPacket(addr, payload, reliable)
}

// sendWithPiggybackLocked sends a failure-detector message with gossip
// updates packed into the remaining MTU budget. Queued payloads are
// copied straight from the broadcast queue into the packet buffer — no
// decode/re-encode round trip and no [][]byte intermediate.
//
// buddy is the member record the packet is headed to (for pings; nil
// otherwise); when the Buddy System is enabled and that member is
// currently suspected, the suspicion is force-included first,
// guaranteeing the suspected member hears the accusation at the first
// opportunity (§IV-C). Passing the record instead of the name keeps the
// per-ping buddy check off the member map.
func (n *Node) sendWithPiggybackLocked(addr string, primary wire.Message, buddy *memberState, reliable bool) {
	p := wire.AcquirePacker()
	defer p.Release()
	used := p.Add(primary) + wire.CompoundOverhead

	if n.cfg.BuddySystem && buddy != nil && buddy.State == StateSuspect {
		// The scratch suspect is encoded into the packer immediately.
		n.scratchSuspect = wire.Suspect{Incarnation: buddy.Incarnation, Node: buddy.Name, From: n.cfg.Name}
		used += p.Add(&n.scratchSuspect) + wire.CompoundOverhead
	}

	if budget := n.cfg.MTU - used; budget > 0 {
		n.queue.GetBroadcastsInto(wire.CompoundOverhead, budget, p.AddRaw)
	}
	// Sends are fire-and-forget at this layer; the failure detector is
	// the loss handler.
	_ = n.sendPackedLocked(addr, p, reliable)
}

// gossipTargetsLocked picks this tick's gossip fanout. The default is
// GossipNodes uniform random picks; with LatencyAwareGossip on and
// coordinates warm, the fanout splits into a near slice — the lowest
// estimated RTT from the local coordinate, ranked within a uniformly
// drawn candidate pool a few times the fanout, so no per-tick O(n)
// scan — and a uniformly random escape slice (GossipEscapeFraction)
// that keeps updates crossing zones. Members without cached
// coordinates can only enter through the escape slice.
func (n *Node) gossipTargetsLocked() []*memberState {
	now := n.cfg.Clock.Now()
	match := func(m *memberState) bool {
		if m == n.self {
			return false
		}
		switch m.State {
		case StateAlive, StateSuspect:
			return true
		case StateDead:
			// Gossip to the recently dead so a falsely-declared member
			// hears about it and can refute (§III-B).
			return now.Sub(m.StateChange) <= n.cfg.GossipToTheDead
		default:
			return false
		}
	}
	k := n.cfg.GossipNodes
	if !n.cfg.LatencyAwareGossip || k <= 0 || !n.coordWarmLocked() {
		n.gossipTargets = n.selectRandomIntoLocked(n.gossipTargets[:0], k, match)
		return n.gossipTargets
	}

	n.gossipPool = n.selectRandomIntoLocked(n.gossipPool[:0], 4*k, match)
	pool := n.gossipPool
	if len(pool) <= k {
		return pool
	}
	escape := int(math.Round(float64(k) * n.cfg.GossipEscapeFraction))
	if escape < 1 {
		// The escape hatch must never round away entirely (mirroring
		// RelayDiversity's minimum-one guarantee): a positive fraction
		// always keeps at least one uniform slot crossing zones.
		escape = 1
	}
	if escape > k {
		escape = k
	}

	// Rank the pool by index: no per-tick name slice, membership map or
	// result map — the candidate-name scratch, ranked-index scratch and
	// pick-mark scratch are all reused across ticks.
	n.nearNames = n.nearNames[:0]
	for _, m := range pool {
		n.nearNames = append(n.nearNames, m.Name)
	}
	marks := n.poolMarksLocked(len(pool))
	targets := n.gossipTargets[:0]
	n.nearIdx = n.coordClient.NearestPeerIndexes("", n.nearNames, k-escape, n.nearIdx[:0])
	for _, i := range n.nearIdx {
		targets = append(targets, pool[i])
		marks[i] = true
	}
	n.cfg.Metrics.IncrCounter(metrics.CounterGossipNearPicks, int64(len(targets)))

	// Escape slice (plus any near shortfall): uniform over the pool's
	// remainder, by partial Fisher–Yates on the already-random pool,
	// compacted in place (reads stay ahead of writes).
	rest := pool[:0]
	for i, m := range pool {
		if !marks[i] {
			rest = append(rest, m)
		}
	}
	escaped := 0
	for i := 0; i < len(rest) && len(targets) < k; i++ {
		j := i + n.cfg.RNG.Intn(len(rest)-i)
		rest[i], rest[j] = rest[j], rest[i]
		targets = append(targets, rest[i])
		escaped++
	}
	n.cfg.Metrics.IncrCounter(metrics.CounterGossipEscapePicks, int64(escaped))
	n.gossipTargets = targets
	return targets
}

// scheduleGossipLocked arms the next dedicated gossip tick (§III-B: a
// gossip layer separate from the failure detector, so dissemination rate
// can exceed probe rate).
func (n *Node) scheduleGossipLocked() {
	if n.shutdown || n.cfg.GossipInterval <= 0 {
		return
	}
	n.gossipTimer = n.cfg.Clock.AfterFunc(n.cfg.GossipInterval, n.gossipTick)
}

// gossipTick pushes queued updates to a few random members. Blocked
// members coalesce missed ticks into one deferred round, like the probe
// loop.
func (n *Node) gossipTick() {
	n.mu.Lock()
	if n.shutdown {
		n.mu.Unlock()
		return
	}
	n.scheduleGossipLocked()
	if n.blockedLocked() {
		if !n.gossipDeferred {
			n.gossipDeferred = true
			n.deferToWakeLocked(func() {
				n.mu.Lock()
				n.gossipDeferred = false
				n.gossipLocked()
				n.mu.Unlock()
			})
		}
		n.mu.Unlock()
		return
	}
	n.gossipLocked()
	n.mu.Unlock()
}

// gossipLocked sends one round of pure gossip packets, in shared-payload
// groups: the broadcast selection and its encoding are computed once,
// and each following target joins the group as long as the queue can
// prove its selection would emit identical bytes (RepeatBroadcastsInto
// applies the transmit accounting without re-encoding). The group then
// goes out through one fan-out send. Divergence — a budget-skipped
// item, a transmit-limit drop, or a queue mutation — falls back to a
// fresh select-and-encode, so the packets on the wire are exactly the
// per-target loop's.
func (n *Node) gossipLocked() {
	if n.queue.Len() == 0 {
		return
	}
	targets := n.gossipTargetsLocked()
	p := wire.AcquirePacker()
	defer p.Release()
	for i := 0; i < len(targets); {
		p.Reset()
		n.queue.GetBroadcastsInto(wire.CompoundOverhead, n.cfg.MTU, p.AddRaw)
		if p.Count() == 0 {
			return
		}
		j := i + 1
		for j < len(targets) && n.queue.RepeatBroadcastsInto(wire.CompoundOverhead, n.cfg.MTU) {
			j++
		}
		n.sendFanoutLocked(targets[i:j], p, false)
		i = j
	}
}

// sendFanoutLocked finishes the packed messages once and sends the
// payload to every target — through the transport's optional fan-out
// extension when it is available and the group is plural, one
// SendPacket per target otherwise. Telemetry counts per destination,
// exactly as the per-target send loop did.
func (n *Node) sendFanoutLocked(targets []*memberState, p *wire.Packer, reliable bool) {
	payload := p.Finish()
	if len(payload) == 0 {
		return
	}
	n.cfg.Metrics.IncrCounter(metrics.CounterMsgsSent, int64(len(targets)))
	n.cfg.Metrics.IncrCounter(metrics.CounterBytesSent, int64(len(targets))*int64(len(payload)))
	if n.fanout != nil && len(targets) > 1 {
		addrs := n.fanoutAddrs[:0]
		for _, t := range targets {
			addrs = append(addrs, t.Addr)
		}
		n.fanoutAddrs = addrs
		_ = n.fanout.SendPacketFanout(addrs, payload, reliable)
		return
	}
	for _, t := range targets {
		_ = n.cfg.Transport.SendPacket(t.Addr, payload, reliable)
	}
}
