package core

import (
	"lifeguard/internal/metrics"
	"lifeguard/internal/wire"
)

// sendPacketLocked encodes msgs into one packet and hands it to the
// transport, accounting telemetry. A compound packet counts as one
// message, matching the paper's Msgs Sent metric.
func (n *Node) sendPacketLocked(addr string, msgs []wire.Message, reliable bool) error {
	if len(msgs) == 0 {
		return nil
	}
	p := wire.AcquirePacker()
	defer p.Release()
	for _, m := range msgs {
		p.Add(m)
	}
	return n.sendPackedLocked(addr, p, reliable)
}

// sendPackedLocked finishes the packed messages into one payload and
// hands it to the transport. The payload lives in the packer's reusable
// buffer; the Transport contract (payload valid only for the duration of
// SendPacket) is what makes that safe.
func (n *Node) sendPackedLocked(addr string, p *wire.Packer, reliable bool) error {
	payload := p.Finish()
	if len(payload) == 0 {
		return nil
	}
	n.cfg.Metrics.IncrCounter(metrics.CounterMsgsSent, 1)
	n.cfg.Metrics.IncrCounter(metrics.CounterBytesSent, int64(len(payload)))
	return n.cfg.Transport.SendPacket(addr, payload, reliable)
}

// sendWithPiggybackLocked sends a failure-detector message with gossip
// updates packed into the remaining MTU budget. Queued payloads are
// copied straight from the broadcast queue into the packet buffer — no
// decode/re-encode round trip and no [][]byte intermediate.
//
// buddyTarget names the member the packet is headed to (for pings); when
// the Buddy System is enabled and that member is currently suspected,
// the suspicion is force-included first, guaranteeing the suspected
// member hears the accusation at the first opportunity (§IV-C).
func (n *Node) sendWithPiggybackLocked(addr string, primary wire.Message, buddyTarget string, reliable bool) {
	p := wire.AcquirePacker()
	defer p.Release()
	used := p.Add(primary) + wire.CompoundOverhead

	if n.cfg.BuddySystem && buddyTarget != "" {
		if m, ok := n.members[buddyTarget]; ok && m.State == StateSuspect {
			s := &wire.Suspect{Incarnation: m.Incarnation, Node: m.Name, From: n.cfg.Name}
			used += p.Add(s) + wire.CompoundOverhead
		}
	}

	if budget := n.cfg.MTU - used; budget > 0 {
		n.queue.GetBroadcastsInto(wire.CompoundOverhead, budget, p.AddRaw)
	}
	// Sends are fire-and-forget at this layer; the failure detector is
	// the loss handler.
	_ = n.sendPackedLocked(addr, p, reliable)
}

// scheduleGossipLocked arms the next dedicated gossip tick (§III-B: a
// gossip layer separate from the failure detector, so dissemination rate
// can exceed probe rate).
func (n *Node) scheduleGossipLocked() {
	if n.shutdown || n.cfg.GossipInterval <= 0 {
		return
	}
	n.gossipTimer = n.cfg.Clock.AfterFunc(n.cfg.GossipInterval, n.gossipTick)
}

// gossipTick pushes queued updates to a few random members. Blocked
// members coalesce missed ticks into one deferred round, like the probe
// loop.
func (n *Node) gossipTick() {
	n.mu.Lock()
	if n.shutdown {
		n.mu.Unlock()
		return
	}
	n.scheduleGossipLocked()
	if n.blockedLocked() {
		if !n.gossipDeferred {
			n.gossipDeferred = true
			n.deferToWakeLocked(func() {
				n.mu.Lock()
				n.gossipDeferred = false
				n.gossipLocked()
				n.mu.Unlock()
			})
		}
		n.mu.Unlock()
		return
	}
	n.gossipLocked()
	n.mu.Unlock()
}

// gossipLocked sends one round of pure gossip packets.
func (n *Node) gossipLocked() {
	if n.queue.Len() == 0 {
		return
	}
	now := n.cfg.Clock.Now()
	targets := n.selectRandomLocked(n.cfg.GossipNodes, func(m *memberState) bool {
		if m.Name == n.cfg.Name {
			return false
		}
		switch m.State {
		case StateAlive, StateSuspect:
			return true
		case StateDead:
			// Gossip to the recently dead so a falsely-declared member
			// hears about it and can refute (§III-B).
			return now.Sub(m.StateChange) <= n.cfg.GossipToTheDead
		default:
			return false
		}
	})
	p := wire.AcquirePacker()
	defer p.Release()
	for _, t := range targets {
		p.Reset()
		n.queue.GetBroadcastsInto(wire.CompoundOverhead, n.cfg.MTU, p.AddRaw)
		if p.Count() == 0 {
			return
		}
		_ = n.sendPackedLocked(t.Addr, p, false)
	}
}
