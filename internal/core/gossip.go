package core

import (
	"lifeguard/internal/metrics"
	"lifeguard/internal/wire"
)

// sendPacketLocked encodes msgs into one packet and hands it to the
// transport, accounting telemetry. A compound packet counts as one
// message, matching the paper's Msgs Sent metric.
func (n *Node) sendPacketLocked(addr string, msgs []wire.Message, reliable bool) error {
	if len(msgs) == 0 {
		return nil
	}
	payload := wire.EncodePacket(msgs)
	n.cfg.Metrics.IncrCounter(metrics.CounterMsgsSent, 1)
	n.cfg.Metrics.IncrCounter(metrics.CounterBytesSent, int64(len(payload)))
	return n.cfg.Transport.SendPacket(addr, payload, reliable)
}

// sendWithPiggybackLocked sends a failure-detector message with gossip
// updates packed into the remaining MTU budget.
//
// buddyTarget names the member the packet is headed to (for pings); when
// the Buddy System is enabled and that member is currently suspected,
// the suspicion is force-included first, guaranteeing the suspected
// member hears the accusation at the first opportunity (§IV-C).
func (n *Node) sendWithPiggybackLocked(addr string, primary wire.Message, buddyTarget string, reliable bool) {
	msgs := make([]wire.Message, 0, 8)
	msgs = append(msgs, primary)
	used := wire.Size(primary) + wire.CompoundOverhead

	if n.cfg.BuddySystem && buddyTarget != "" {
		if m, ok := n.members[buddyTarget]; ok && m.State == StateSuspect {
			s := &wire.Suspect{Incarnation: m.Incarnation, Node: m.Name, From: n.cfg.Name}
			msgs = append(msgs, s)
			used += wire.Size(s) + wire.CompoundOverhead
		}
	}

	budget := n.cfg.MTU - used
	if budget > 0 {
		for _, payload := range n.queue.GetBroadcasts(wire.CompoundOverhead, budget) {
			msg, err := wire.Unmarshal(payload)
			if err != nil {
				continue // corrupted queue entry; drop it silently
			}
			msgs = append(msgs, msg)
		}
	}
	// Sends are fire-and-forget at this layer; the failure detector is
	// the loss handler.
	_ = n.sendPacketLocked(addr, msgs, reliable)
}

// scheduleGossipLocked arms the next dedicated gossip tick (§III-B: a
// gossip layer separate from the failure detector, so dissemination rate
// can exceed probe rate).
func (n *Node) scheduleGossipLocked() {
	if n.shutdown || n.cfg.GossipInterval <= 0 {
		return
	}
	n.gossipTimer = n.cfg.Clock.AfterFunc(n.cfg.GossipInterval, n.gossipTick)
}

// gossipTick pushes queued updates to a few random members. Blocked
// members coalesce missed ticks into one deferred round, like the probe
// loop.
func (n *Node) gossipTick() {
	n.mu.Lock()
	if n.shutdown {
		n.mu.Unlock()
		return
	}
	n.scheduleGossipLocked()
	if n.blockedLocked() {
		if !n.gossipDeferred {
			n.gossipDeferred = true
			n.deferToWakeLocked(func() {
				n.mu.Lock()
				n.gossipDeferred = false
				n.gossipLocked()
				n.mu.Unlock()
			})
		}
		n.mu.Unlock()
		return
	}
	n.gossipLocked()
	n.mu.Unlock()
}

// gossipLocked sends one round of pure gossip packets.
func (n *Node) gossipLocked() {
	if n.queue.Len() == 0 {
		return
	}
	now := n.cfg.Clock.Now()
	targets := n.selectRandomLocked(n.cfg.GossipNodes, func(m *memberState) bool {
		if m.Name == n.cfg.Name {
			return false
		}
		switch m.State {
		case StateAlive, StateSuspect:
			return true
		case StateDead:
			// Gossip to the recently dead so a falsely-declared member
			// hears about it and can refute (§III-B).
			return now.Sub(m.StateChange) <= n.cfg.GossipToTheDead
		default:
			return false
		}
	})
	for _, t := range targets {
		payloads := n.queue.GetBroadcasts(wire.CompoundOverhead, n.cfg.MTU)
		if len(payloads) == 0 {
			return
		}
		msgs := make([]wire.Message, 0, len(payloads))
		for _, p := range payloads {
			msg, err := wire.Unmarshal(p)
			if err != nil {
				continue
			}
			msgs = append(msgs, msg)
		}
		_ = n.sendPacketLocked(t.Addr, msgs, false)
	}
}
