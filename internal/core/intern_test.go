package core

import (
	"fmt"
	"testing"
)

// TestInternHandlesDense verifies that members receive dense handles in
// arrival order and that byHandle maps each handle back to its record.
func TestInternHandlesDense(t *testing.T) {
	h := newHarness(t, nil)
	for i := 0; i < 5; i++ {
		h.addMember(fmt.Sprintf("m%d", i), 1)
	}

	n := h.node
	n.mu.Lock()
	defer n.mu.Unlock()

	// Self is interned first, at handle 0, then m0..m4 in arrival order.
	if n.self.handle != 0 {
		t.Fatalf("self handle = %d, want 0", n.self.handle)
	}
	if len(n.byHandle) != 6 {
		t.Fatalf("len(byHandle) = %d, want 6", len(n.byHandle))
	}
	for i := 0; i < 5; i++ {
		m := n.members[fmt.Sprintf("m%d", i)]
		if m.handle != i+1 {
			t.Errorf("m%d handle = %d, want %d", i, m.handle, i+1)
		}
		if n.byHandle[m.handle] != m {
			t.Errorf("byHandle[%d] does not point back to m%d", m.handle, i)
		}
	}
	if len(n.freeHandles) != 0 {
		t.Errorf("freeHandles = %v, want empty", n.freeHandles)
	}
}

// TestInternReleaseAndRecycle verifies the freelist path: releasing a
// record frees its slot and poisons the handle, a later intern reuses
// the freed index, and stale or double releases are no-ops.
func TestInternReleaseAndRecycle(t *testing.T) {
	h := newHarness(t, nil)
	h.addMember("a", 1)
	h.addMember("b", 1)
	h.addMember("c", 1)

	n := h.node
	n.mu.Lock()
	defer n.mu.Unlock()

	b := n.members["b"]
	freed := b.handle
	n.releaseMemberLocked(b)

	if b.handle != -1 {
		t.Fatalf("released handle = %d, want -1 (poisoned)", b.handle)
	}
	if n.byHandle[freed] != nil {
		t.Fatalf("byHandle[%d] still set after release", freed)
	}
	if len(n.freeHandles) != 1 || n.freeHandles[0] != freed {
		t.Fatalf("freeHandles = %v, want [%d]", n.freeHandles, freed)
	}

	// Double release must be a no-op: the poisoned handle no longer
	// passes the byHandle[h] == m identity check.
	n.releaseMemberLocked(b)
	if len(n.freeHandles) != 1 {
		t.Fatalf("double release grew freelist: %v", n.freeHandles)
	}

	// A stale release — record replaced at the same slot — must not free
	// the new occupant's slot.
	repl := &memberState{Member: Member{Name: "repl"}, probeSlot: -1}
	n.internMemberLocked(repl)
	if repl.handle != freed {
		t.Fatalf("re-intern got handle %d, want recycled %d", repl.handle, freed)
	}
	stale := &memberState{Member: Member{Name: "stale"}, handle: freed}
	n.releaseMemberLocked(stale)
	if n.byHandle[freed] != repl {
		t.Fatalf("stale release evicted byHandle[%d]", freed)
	}
	if len(n.freeHandles) != 0 {
		t.Fatalf("stale release grew freelist: %v", n.freeHandles)
	}

	// With the freelist empty again, the next intern extends the table.
	next := &memberState{Member: Member{Name: "next"}, probeSlot: -1}
	n.internMemberLocked(next)
	if next.handle != len(n.byHandle)-1 {
		t.Fatalf("fresh intern handle = %d, want %d", next.handle, len(n.byHandle)-1)
	}
}

// TestInternReleaseOutOfRange verifies release tolerates nonsense
// handles without panicking or corrupting the table.
func TestInternReleaseOutOfRange(t *testing.T) {
	h := newHarness(t, nil)
	n := h.node
	n.mu.Lock()
	defer n.mu.Unlock()

	for _, bad := range []int{-1, -7, len(n.byHandle), len(n.byHandle) + 3} {
		m := &memberState{Member: Member{Name: "ghost"}, handle: bad}
		n.releaseMemberLocked(m)
		if len(n.freeHandles) != 0 {
			t.Fatalf("release with handle %d grew freelist", bad)
		}
	}
}
