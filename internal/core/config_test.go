package core

import (
	"lifeguard/internal/wire"
	"math"
	"strings"
	"testing"
	"time"
)

// nopTransport satisfies Transport for validation tests.
type nopTransport struct{}

func (nopTransport) LocalAddr() string                     { return "nop" }
func (nopTransport) SendPacket(string, []byte, bool) error { return nil }

func validConfig() *Config {
	cfg := DefaultConfig("n1")
	cfg.Transport = nopTransport{}
	return cfg
}

func TestNewRejectsNilConfig(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Fatal("nil config accepted")
	}
}

func TestConfigValidationTable(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*Config)
		wantErr string
	}{
		{"valid", func(c *Config) {}, ""},
		{"missing name", func(c *Config) { c.Name = "" }, "Name"},
		{"missing transport", func(c *Config) { c.Transport = nil }, "Transport"},
		{"zero probe interval", func(c *Config) { c.ProbeInterval = 0 }, "probe"},
		{"negative probe timeout", func(c *Config) { c.ProbeTimeout = -time.Second }, "probe"},
		{"timeout exceeds interval", func(c *Config) { c.ProbeTimeout = 2 * c.ProbeInterval }, "exceeds"},
		{"negative indirect checks", func(c *Config) { c.IndirectChecks = -1 }, "IndirectChecks"},
		{"zero retransmit mult", func(c *Config) { c.RetransmitMult = 0 }, "RetransmitMult"},
		{"zero gossip interval", func(c *Config) { c.GossipInterval = 0 }, "gossip"},
		{"negative gossip fanout", func(c *Config) { c.GossipNodes = -1 }, "gossip"},
		{"zero alpha", func(c *Config) { c.SuspicionAlpha = 0 }, "SuspicionAlpha"},
		{"beta below one", func(c *Config) { c.SuspicionBeta = 0.5 }, "SuspicionBeta"},
		{"negative K", func(c *Config) { c.SuspicionK = -1 }, "SuspicionK"},
		{"zero LHM max", func(c *Config) { c.MaxLHM = 0 }, "MaxLHM"},
		{"nack fraction zero", func(c *Config) { c.NackTimeoutFraction = 0 }, "NackTimeoutFraction"},
		{"nack fraction one", func(c *Config) { c.NackTimeoutFraction = 1 }, "NackTimeoutFraction"},
		{"tiny MTU", func(c *Config) { c.MTU = 16 }, "MTU"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			cfg := validConfig()
			c.mutate(cfg)
			_, err := New(cfg)
			if c.wantErr == "" {
				if err != nil {
					t.Fatalf("valid config rejected: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("invalid config accepted")
			}
			if !strings.Contains(err.Error(), c.wantErr) {
				t.Errorf("error %q does not mention %q", err, c.wantErr)
			}
		})
	}
}

func TestValidateFillsDefaults(t *testing.T) {
	cfg := validConfig()
	node, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got := node.Config()
	if got.Clock == nil || got.RNG == nil || got.Metrics == nil {
		t.Error("defaults not filled")
	}
	if got.Addr != "nop" {
		t.Errorf("addr = %q, want transport's LocalAddr", got.Addr)
	}
}

func TestNewCopiesConfig(t *testing.T) {
	cfg := validConfig()
	node, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.SuspicionAlpha = 99 // caller mutation after New must not leak in
	if got := node.Config().SuspicionAlpha; got == 99 {
		t.Error("node aliases the caller's config")
	}
}

func TestDefaultConfigMatchesPaper(t *testing.T) {
	cfg := DefaultConfig("x")
	checks := []struct {
		name string
		got  any
		want any
	}{
		{"ProbeInterval", cfg.ProbeInterval, time.Second},
		{"ProbeTimeout", cfg.ProbeTimeout, 500 * time.Millisecond},
		{"IndirectChecks", cfg.IndirectChecks, 3},
		{"SuspicionAlpha", cfg.SuspicionAlpha, 5.0},
		{"SuspicionBeta", cfg.SuspicionBeta, 6.0},
		{"SuspicionK", cfg.SuspicionK, 3},
		{"MaxLHM", cfg.MaxLHM, 8},
		{"NackTimeoutFraction", cfg.NackTimeoutFraction, 0.8},
		{"LHAProbe", cfg.LHAProbe, true},
		{"LHASuspicion", cfg.LHASuspicion, true},
		{"BuddySystem", cfg.BuddySystem, true},
		{"GossipNodes", cfg.GossipNodes, 3},
		{"RetransmitMult", cfg.RetransmitMult, 4},
	}
	for _, c := range checks {
		if c.got != c.want {
			t.Errorf("%s = %v, want %v", c.name, c.got, c.want)
		}
	}
}

func TestSWIMConfigDisablesLifeguard(t *testing.T) {
	cfg := SWIMConfig("x")
	if cfg.LHAProbe || cfg.LHASuspicion || cfg.BuddySystem {
		t.Error("SWIM config has Lifeguard components enabled")
	}
	if cfg.SuspicionBeta != 1 {
		t.Errorf("beta = %v, want 1 (fixed timeout)", cfg.SuspicionBeta)
	}
}

func TestSuspicionMin(t *testing.T) {
	cases := []struct {
		alpha float64
		n     int
		want  time.Duration
	}{
		// Paper's cluster: α=5, n=128 → 5·log10(128)·1s ≈ 10.536s.
		{5, 128, time.Duration(5 * math.Log10(128) * float64(time.Second))},
		// Small clusters clamp log10(n) at 1 (memberlist behaviour).
		{5, 2, 5 * time.Second},
		{5, 10, 5 * time.Second},
		{2, 100, 4 * time.Second},
		// Degenerate n.
		{5, 0, 5 * time.Second},
		{5, -3, 5 * time.Second},
	}
	for _, c := range cases {
		got := SuspicionMin(c.alpha, c.n, time.Second)
		if d := got - c.want; d < -time.Microsecond || d > time.Microsecond {
			t.Errorf("SuspicionMin(%v, %d) = %v, want %v", c.alpha, c.n, got, c.want)
		}
	}
}

func TestStateString(t *testing.T) {
	cases := map[State]string{
		StateAlive:   "alive",
		StateSuspect: "suspect",
		StateDead:    "dead",
		StateLeft:    "left",
		State(9):     "unknown",
	}
	for s, want := range cases {
		if got := s.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", s, got, want)
		}
	}
}

func TestStartTwiceFails(t *testing.T) {
	h := newHarness(t, nil)
	if err := h.node.Start(); err == nil {
		t.Fatal("second Start succeeded")
	}
}

func TestShutdownIsIdempotentAndStopsActivity(t *testing.T) {
	h := newHarness(t, nil)
	h.addMember("m1", 1)
	h.node.Shutdown()
	h.node.Shutdown() // no panic
	h.clearSent()
	h.run(time.Minute)
	if len(h.sent) != 0 {
		t.Errorf("%d packets sent after shutdown", len(h.sent))
	}
	// Inbound traffic is ignored after shutdown.
	h.inject("x", &wire.Alive{Incarnation: 1, Node: "m9", Addr: "m9"})
	if _, ok := h.node.Member("m9"); ok {
		t.Error("message processed after shutdown")
	}
}

func TestJoinRequiresRunningNode(t *testing.T) {
	cfg := validConfig()
	node, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := node.Join("elsewhere"); err == nil {
		t.Error("Join before Start succeeded")
	}
	node.Shutdown()
}

func TestNopEventsImplementsDelegate(t *testing.T) {
	var d EventDelegate = NopEvents{}
	// Must simply not panic.
	d.NotifyJoin(Member{})
	d.NotifySuspect(Member{})
	d.NotifyAlive(Member{})
	d.NotifyDead(Member{})
}
