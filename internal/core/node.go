// Package core implements the SWIM group-membership protocol with the
// Lifeguard extensions (LHA-Probe, LHA-Suspicion, Buddy System), at the
// feature level of HashiCorp's memberlist as described in the paper
// (§III-B): suspicion subprotocol with incarnation-based refutation,
// gossip dissemination piggybacked on failure-detector traffic plus a
// dedicated gossip tick, indirect probes with a reliable-channel
// fallback, push-pull anti-entropy, and dead-member state retention.
//
// A Node is driven entirely through its Clock and Transport, so the same
// protocol logic runs in real time over UDP/TCP (internal/nettrans) and
// in virtual time on the discrete-event simulator (internal/sim).
package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"lifeguard/internal/awareness"
	"lifeguard/internal/broadcast"
	"lifeguard/internal/coords"
	"lifeguard/internal/metrics"
	"lifeguard/internal/timeutil"
	"lifeguard/internal/wire"
)

// Node is one group member. Create it with New, start the protocol with
// Start, and feed inbound packets to HandlePacket.
//
// Node is safe for concurrent use.
type Node struct {
	cfg Config

	mu sync.Mutex

	// incarnation is the local member's own incarnation number.
	incarnation uint64

	// members indexes every known member (including self and the
	// retained dead) by name. It is the wire-boundary translation only:
	// inbound messages carry names, so packet handling resolves name →
	// record here once, and all downstream bookkeeping is index-based
	// through the intern table below.
	members map[string]*memberState

	// byHandle is the member intern table: a dense handle → record
	// mapping assigned on first sight, with freed indexes recycled
	// through freeHandles (see intern.go for the lifecycle). self is
	// the local member's own record, resolved once at Start so the
	// self-referential paths never hash the local name.
	byHandle    []*memberState
	freeHandles []int
	self        *memberState

	// probeList is the round-robin probe schedule: a locally shuffled
	// list of probeable member records (non-self, not dead or left),
	// maintained incrementally — swap-insert at a random pending offset
	// on join (SWIM §4.3), swap-remove on death — and reshuffled in
	// place at the end of each full pass. Each record's probeSlot field
	// indexes its current slot for the O(1) swap operations.
	probeList []*memberState
	probeIdx  int

	// roster is an incrementally shuffled slice of every known member
	// (self, dead and left included; entries are never removed, matching
	// the members map). selectRandomLocked draws k-of-n samples from it
	// with a partial Fisher–Yates walk instead of sorting and shuffling
	// the whole member table per pick.
	roster []*memberState

	// sortedMembers mirrors the membership table in ascending name
	// order, maintained incrementally by the intern machinery (binary-
	// search insert on intern, removal on release), so a push-pull
	// snapshot walks it in place instead of allocating and sorting the
	// full roster per exchange.
	sortedMembers []*memberState

	// aliveCount tracks members in the alive or suspect states
	// (including self); it is SWIM's n for timeout and retransmit
	// scaling. aliveEst mirrors it atomically so the broadcast queue can
	// read it without taking the node lock (the queue is always invoked
	// with the lock already held).
	aliveCount int
	aliveEst   atomic.Int64

	// seqNo numbers outgoing probes.
	seqNo uint32

	// acks tracks in-flight probes originated here.
	acks map[uint32]*ackHandler

	// relays tracks indirect probes this member is relaying for others.
	relays map[uint32]*relayHandler

	// queue is the transmit-limited gossip queue.
	queue *broadcast.Queue

	// aware is the Local Health Multiplier (always maintained; only
	// consulted for scaling when LHAProbe is on).
	aware *awareness.Awareness

	// coordClient is the Vivaldi network-coordinate engine, fed by
	// probe round-trips; nil when Config.DisableCoordinates is set.
	// Guarded by mu, like the rest of the protocol state.
	coordClient *coords.Client

	// Tick timers, stopped on shutdown.
	probeTimer     timeutil.Timer
	gossipTimer    timeutil.Timer
	pushPullTimer  timeutil.Timer
	reconnectTimer timeutil.Timer

	// deferred holds work postponed while Blocked() (loops stalled by an
	// injected anomaly); Wake runs it in order.
	deferred []func()

	// probeDeferred and gossipDeferred dedupe tick deferral, modelling a
	// ticker whose reader is blocked: missed ticks coalesce into one.
	probeDeferred    bool
	gossipDeferred   bool
	pushPullDeferred bool

	started  bool
	shutdown bool
	leaving  bool

	// Hot-path scratch, all guarded by mu. The message scratch structs
	// are safe to reuse because every send path encodes its message
	// into the packer's buffer before returning.
	bcastBuf       []byte // broadcastLocked's marshal buffer
	scratchAck     wire.Ack
	scratchSuspect wire.Suspect
	scratchNack    wire.Nack
	nearNames      []string // candidate names for coordinate ranking
	nearIdx        []int    // ranked candidate indexes (out param)
	pickMarks      []bool   // per-pool-slot "already picked" flags
	gossipPool     []*memberState
	gossipTargets  []*memberState
	fanoutAddrs    []string             // shared-payload gossip group addresses
	ppStates       []wire.PushPullState // push-pull snapshot scratch

	// fanout is cfg.Transport's optional fan-out extension, resolved
	// once at construction; nil when the transport sends one packet at
	// a time.
	fanout FanoutTransport
}

// New validates cfg and returns an unstarted Node.
func New(cfg *Config) (*Node, error) {
	if cfg == nil {
		return nil, fmt.Errorf("core: nil config")
	}
	c := *cfg // copy so later caller mutation cannot race the node
	if err := c.validate(); err != nil {
		return nil, err
	}
	n := &Node{
		cfg:     c,
		members: make(map[string]*memberState),
		acks:    make(map[uint32]*ackHandler),
		relays:  make(map[uint32]*relayHandler),
		aware:   awareness.New(c.MaxLHM),
	}
	n.fanout, _ = c.Transport.(FanoutTransport)
	if !c.DisableCoordinates {
		ccfg := coords.DefaultConfig()
		if c.Coords != nil {
			cc := *c.Coords // copy so shared configs are not mutated
			ccfg = &cc
		}
		if ccfg.Rand == nil {
			// Drive the engine's tie-breaking randomness from the
			// node's RNG so same-seed simulations stay deterministic.
			ccfg.Rand = c.RNG.Float64
		}
		client, err := coords.NewClient(ccfg)
		if err != nil {
			return nil, fmt.Errorf("core: coordinates: %w", err)
		}
		n.coordClient = client
	}
	n.queue = broadcast.NewQueue(n.estNumNodes, c.RetransmitMult)
	return n, nil
}

// Name returns the member's name.
func (n *Node) Name() string { return n.cfg.Name }

// Addr returns the member's transport address.
func (n *Node) Addr() string { return n.cfg.Addr }

// Config returns a copy of the node's effective configuration.
func (n *Node) Config() Config { return n.cfg }

// Incarnation returns the local member's current incarnation.
func (n *Node) Incarnation() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.incarnation
}

// HealthScore returns the current Local Health Multiplier value, in
// [0, MaxLHM]. Zero means locally healthy.
func (n *Node) HealthScore() int { return n.aware.Score() }

// Coordinate returns a copy of the member's current Vivaldi network
// coordinate, or nil when coordinates are disabled. The coordinate
// converges as probe round-trips are observed; distances between two
// members' coordinates estimate the RTT between them.
func (n *Node) Coordinate() *coords.Coordinate {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.coordClient == nil {
		return nil
	}
	return n.coordClient.Coordinate()
}

// EstimateRTT predicts the round-trip time to the named member from
// the coordinate most recently heard from it. The second return is
// false when coordinates are disabled or no coordinate is known for
// the member yet.
func (n *Node) EstimateRTT(name string) (time.Duration, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.coordClient == nil {
		return 0, false
	}
	return n.coordClient.EstimateRTT(name)
}

// PeerRTT predicts the round-trip time between two other members from
// their cached coordinates — the third-party estimate coordinate-aware
// relay selection ranks by, exposed for application-level placement
// decisions. The second return is false when coordinates are disabled
// or either member's coordinate is unknown.
func (n *Node) PeerRTT(a, b string) (time.Duration, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.coordClient == nil {
		return 0, false
	}
	return n.coordClient.PeerRTT(a, b)
}

// CoordinatePeers returns the names of every member whose coordinate
// is currently cached, sorted — the enumeration behind the agent's
// /coords endpoint. Nil when coordinates are disabled.
func (n *Node) CoordinatePeers() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.coordClient == nil {
		return nil
	}
	return n.coordClient.PeerNames()
}

// PeerCoordinate returns the coordinate most recently heard from the
// named member, or nil when none is known (or coordinates are
// disabled).
func (n *Node) PeerCoordinate(name string) *coords.Coordinate {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.coordClient == nil {
		return nil
	}
	return n.coordClient.PeerCoordinate(name)
}

// coordPayloadLocked returns the coordinate to attach to an outgoing
// ping or ack, or nil when coordinates are disabled. The value is the
// engine's live coordinate, not a clone: every send path encodes it
// under the node lock (the deferred-to-wake probe send re-acquires the
// lock before encoding, and simply picks up the then-current values),
// so the zero-allocation send path stays allocation-free.
func (n *Node) coordPayloadLocked() *coords.Coordinate {
	if n.coordClient == nil {
		return nil
	}
	return n.coordClient.Current()
}

// coordWarmLocked reports whether the local Vivaldi engine has applied
// enough RTT observations (CoordMinSamples) for its estimates to steer
// protocol decisions — the shared cold-start gate for adaptive probe
// timeouts and latency-biased gossip.
func (n *Node) coordWarmLocked() bool {
	if n.coordClient == nil {
		return false
	}
	updates, _ := n.coordClient.Stats()
	return updates >= uint64(n.cfg.CoordMinSamples)
}

// EffectiveProbeTimeout returns the direct-probe ack timeout a probe
// round against the named member would use if it started now: the
// RTT-adaptive value when Config.AdaptiveProbeTimeout is enabled and
// coordinates are warm, the static ProbeTimeout otherwise — in both
// cases scaled by the LHA-Probe awareness multiplier when that is
// enabled.
func (n *Node) EffectiveProbeTimeout(target string) time.Duration {
	n.mu.Lock()
	defer n.mu.Unlock()
	timeout, _, _ := n.probeTimeoutsLocked(target)
	return timeout
}

// observeRTTLocked feeds one probe round-trip into the coordinate
// engine. Malformed peer coordinates and absurd RTTs are rejected
// inside the engine; the protocol does not care.
func (n *Node) observeRTTLocked(peer string, coord *coords.Coordinate, rtt time.Duration) {
	if n.coordClient == nil || coord == nil {
		return
	}
	if _, err := n.coordClient.Update(peer, coord, rtt); err == nil {
		n.cfg.Metrics.IncrCounter(metrics.CounterCoordUpdates, 1)
	} else {
		n.cfg.Metrics.IncrCounter(metrics.CounterCoordRejected, 1)
	}
}

// witnessCoordLocked caches a peer's coordinate without an RTT sample,
// metering rejections (malformed coordinates) like observeRTTLocked.
func (n *Node) witnessCoordLocked(peer string, coord *coords.Coordinate) {
	if n.coordClient == nil || coord == nil {
		return
	}
	if !n.coordClient.Witness(peer, coord) {
		n.cfg.Metrics.IncrCounter(metrics.CounterCoordRejected, 1)
	}
}

// Start marks the local member alive, announces it, and starts the
// probe, gossip and push-pull loops.
func (n *Node) Start() error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.started {
		return fmt.Errorf("core: node %s already started", n.cfg.Name)
	}
	if n.shutdown {
		return fmt.Errorf("core: node %s is shut down", n.cfg.Name)
	}
	n.started = true

	n.incarnation = 1
	self := &memberState{probeSlot: -1, Member: Member{
		Name:        n.cfg.Name,
		Addr:        n.cfg.Addr,
		Incarnation: n.incarnation,
		Meta:        append([]byte(nil), n.cfg.Meta...),
		State:       StateAlive,
		StateChange: n.cfg.Clock.Now(),
	}}
	n.members[n.cfg.Name] = self
	n.internMemberLocked(self)
	n.self = self
	n.roster = append(n.roster, self)
	n.setAliveCountLocked(1)

	n.broadcastLocked(n.cfg.Name, n.selfAliveLocked())

	n.scheduleProbeLocked()
	n.scheduleGossipLocked()
	n.schedulePushPullLocked()
	n.scheduleReconnectLocked()
	return nil
}

// Join initiates a push-pull exchange with the member at addr, merging
// its view of the group. The exchange is asynchronous; membership fills
// in as the response arrives.
func (n *Node) Join(addr string) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.started || n.shutdown {
		return fmt.Errorf("core: node %s not running", n.cfg.Name)
	}
	req := &wire.PushPullReq{
		Source: n.cfg.Name,
		Join:   true,
		States: n.localStatesLocked(),
	}
	return n.sendPacketLocked(addr, []wire.Message{req}, true)
}

// selfAliveLocked builds an alive announcement for the local member at
// its current incarnation and metadata.
func (n *Node) selfAliveLocked() *wire.Alive {
	var meta []byte
	if n.self != nil {
		meta = n.self.Meta
	}
	return &wire.Alive{
		Incarnation: n.incarnation,
		Node:        n.cfg.Name,
		Addr:        n.cfg.Addr,
		Meta:        meta,
	}
}

// UpdateMeta replaces the local member's application metadata and
// announces it to the group under a fresh incarnation (memberlist's
// UpdateNode).
func (n *Node) UpdateMeta(meta []byte) error {
	if len(meta) > wire.MaxMetaLen {
		return fmt.Errorf("core: meta is %d bytes, limit %d", len(meta), wire.MaxMetaLen)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.started || n.shutdown {
		return fmt.Errorf("core: node %s not running", n.cfg.Name)
	}
	self := n.self
	if self == nil {
		return fmt.Errorf("core: node %s missing own record", n.cfg.Name)
	}
	n.incarnation++
	self.Incarnation = n.incarnation
	self.Meta = append([]byte(nil), meta...)
	n.broadcastLocked(n.cfg.Name, n.selfAliveLocked())
	return nil
}

// Meta returns the local member's current metadata.
func (n *Node) Meta() []byte {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.self != nil {
		return append([]byte(nil), n.self.Meta...)
	}
	return nil
}

// Leave announces a graceful departure. The node keeps running (so the
// announcement can disseminate); call Shutdown afterwards.
func (n *Node) Leave() {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.leaving || !n.started || n.shutdown {
		return
	}
	n.leaving = true
	d := &wire.Dead{Incarnation: n.incarnation, Node: n.cfg.Name, From: n.cfg.Name}
	n.deadNodeLocked(n.self, d)
}

// Shutdown stops all protocol activity. The node cannot be restarted.
func (n *Node) Shutdown() {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.shutdown {
		return
	}
	n.shutdown = true
	stopTimer(n.probeTimer)
	stopTimer(n.gossipTimer)
	stopTimer(n.pushPullTimer)
	stopTimer(n.reconnectTimer)
	for _, h := range n.acks {
		stopTimer(h.timeoutTimer)
		stopTimer(h.periodTimer)
	}
	for _, r := range n.relays {
		stopTimer(r.nackTimer)
		stopTimer(r.expireTimer)
	}
	for _, m := range n.members {
		if m.susp != nil {
			m.susp.Stop()
		}
	}
	n.deferred = nil
}

func stopTimer(t timeutil.Timer) {
	if t != nil {
		t.Stop()
	}
}

// Members returns a snapshot of every known member, including the
// retained dead.
func (n *Node) Members() []Member {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]Member, 0, len(n.members))
	for _, m := range n.members {
		out = append(out, m.Member)
	}
	return out
}

// SampleMembers returns up to k distinct members chosen uniformly at
// random among the alive and suspect members other than the local one —
// the peer-sampling primitive behind gossip fan-out and indirect-probe
// relay selection, exposed for application-level dissemination layers.
func (n *Node) SampleMembers(k int) []Member {
	n.mu.Lock()
	defer n.mu.Unlock()
	picks := n.selectRandomLocked(k, func(m *memberState) bool {
		return m != n.self && (m.State == StateAlive || m.State == StateSuspect)
	})
	out := make([]Member, len(picks))
	for i, m := range picks {
		out[i] = m.Member
	}
	return out
}

// Member returns the local view of the named member.
func (n *Node) Member(name string) (Member, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	m, ok := n.members[name]
	if !ok {
		return Member{}, false
	}
	return m.Member, true
}

// PendingBroadcasts returns the number of gossip updates still queued
// for transmission — every update, not just the local node's. Use
// LeavePending to wait specifically for a graceful departure to drain:
// on a busy cluster, membership churn can keep this count non-zero long
// after the leave announcement itself has gone out.
func (n *Node) PendingBroadcasts() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.queue.Len()
}

// LeavePending reports whether the departure announcement from Leave is
// still queued for gossip: true from Leave until that specific update
// has exhausted its retransmit budget. A graceful shutdown can poll it
// to bound the wait for the leave to disseminate; unlike
// PendingBroadcasts, unrelated queued updates cannot keep it true. It
// is false before Leave is called.
func (n *Node) LeavePending() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.leaving && n.queue.Peek(n.cfg.Name) != nil
}

// NumAlive returns the number of members (including self) currently in
// the alive or suspect states.
func (n *Node) NumAlive() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.aliveCount
}

// estNumNodes is the cluster-size estimate used for gossip and suspicion
// scaling. It reads the atomic mirror so it is callable both with and
// without the node lock (the broadcast queue invokes it mid-GetBroadcasts
// while the core holds the lock).
func (n *Node) estNumNodes() int {
	return int(n.aliveEst.Load())
}

// setAliveCountLocked updates the alive/suspect member count and its
// atomic mirror.
func (n *Node) setAliveCountLocked(v int) {
	n.aliveCount = v
	n.aliveEst.Store(int64(v))
}

// addAliveCountLocked adjusts the alive/suspect member count by delta.
func (n *Node) addAliveCountLocked(delta int) {
	n.setAliveCountLocked(n.aliveCount + delta)
}

// HandlePacket decodes and processes one inbound packet. The transport
// calls it once per delivered datagram/stream message.
//
// Decoding runs through a pooled wire.Unpacker, so the steady-state
// receive path allocates nothing. The unpacker's ownership contract
// (messages valid only until Release) holds here because every handler
// runs synchronously before the Release: the only decoded data the
// handlers retain are strings (interned, immutable) and Meta byte
// slices (freshly allocated per decode), both of which the contract
// exempts.
func (n *Node) HandlePacket(from string, payload []byte) {
	u := wire.AcquireUnpacker()
	defer u.Release()
	msgs, err := u.Decode(payload)
	if err != nil {
		n.cfg.Metrics.IncrCounter("decode_errors", 1)
		return
	}
	for _, msg := range msgs {
		n.handleMessage(from, msg)
	}
}

func (n *Node) handleMessage(from string, msg wire.Message) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.shutdown {
		return
	}
	switch m := msg.(type) {
	case *wire.Ping:
		n.handlePingLocked(from, m)
	case *wire.IndirectPing:
		n.handleIndirectPingLocked(from, m)
	case *wire.Ack:
		n.handleAckLocked(from, m)
	case *wire.Nack:
		n.handleNackLocked(from, m)
	case *wire.Suspect:
		n.handleSuspectLocked(m)
	case *wire.Alive:
		n.handleAliveLocked(m)
	case *wire.Dead:
		n.handleDeadLocked(m)
	case *wire.PushPullReq:
		n.handlePushPullReqLocked(from, m)
	case *wire.PushPullResp:
		n.handlePushPullRespLocked(m)
	default:
		n.cfg.Metrics.IncrCounter("unknown_msgs", 1)
	}
}

// blockedLocked reports whether an injected anomaly is stalling this
// member's protocol loops.
func (n *Node) blockedLocked() bool {
	return n.cfg.Blocked != nil && n.cfg.Blocked()
}

// deferToWakeLocked postpones f until the anomaly gate releases.
func (n *Node) deferToWakeLocked(f func()) {
	n.deferred = append(n.deferred, f)
}

// Wake runs work deferred while the member was blocked. The experiment
// harness calls it when it releases the member's anomaly gate; real
// deployments never need it.
func (n *Node) Wake() {
	n.mu.Lock()
	work := n.deferred
	n.deferred = nil
	n.mu.Unlock()
	for _, f := range work {
		f()
	}
}

// eventJoin/Suspect/Alive/Dead dispatch to the delegate (lock held; see
// EventDelegate contract).
func (n *Node) eventJoinLocked(m *memberState) {
	n.cfg.Metrics.IncrCounter("events_join", 1)
	if n.cfg.Events != nil {
		n.cfg.Events.NotifyJoin(m.Member)
	}
}

func (n *Node) eventSuspectLocked(m *memberState) {
	n.cfg.Metrics.IncrCounter("events_suspect", 1)
	if n.cfg.Events != nil {
		n.cfg.Events.NotifySuspect(m.Member)
	}
}

func (n *Node) eventAliveLocked(m *memberState) {
	n.cfg.Metrics.IncrCounter(metrics.CounterSuspicionsRefuted, 1)
	if n.cfg.Events != nil {
		n.cfg.Events.NotifyAlive(m.Member)
	}
}

func (n *Node) eventDeadLocked(m *memberState) {
	n.cfg.Metrics.IncrCounter("events_dead", 1)
	if n.cfg.Events != nil {
		n.cfg.Events.NotifyDead(m.Member)
	}
}

func (n *Node) eventUpdateLocked(m *memberState) {
	n.cfg.Metrics.IncrCounter("events_update", 1)
	if n.cfg.Events != nil {
		n.cfg.Events.NotifyUpdate(m.Member)
	}
}

// broadcastLocked queues an update about the named member for gossip.
// The message is marshalled into the node's reusable buffer; the queue
// copies the payload into its own storage, so the buffer is free for
// the next broadcast immediately.
func (n *Node) broadcastLocked(name string, msg wire.Message) {
	n.bcastBuf = wire.AppendMarshal(n.bcastBuf[:0], msg)
	n.queue.Queue(name, n.bcastBuf)
}
