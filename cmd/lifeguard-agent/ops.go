package main

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"time"

	"lifeguard"
	"lifeguard/internal/metrics"
	"lifeguard/internal/telemetry"
)

// opsServer is the agent's embedded HTTP ops surface: liveness,
// membership, coordinates, telemetry and Prometheus metrics. It is
// read-only — every endpoint is a snapshot of node state, never a
// mutation.
type opsServer struct {
	srv *http.Server
	ln  net.Listener
}

// startOps binds addr and serves the ops endpoints in a background
// goroutine until close is called.
func startOps(addr string, node *lifeguard.Node, rec *telemetry.NodeRecorder, sink *metrics.MemSink, started time.Time) (*opsServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: newOpsMux(node, rec, sink, started)}
	go srv.Serve(ln)
	return &opsServer{srv: srv, ln: ln}, nil
}

// addr returns the bound listen address (useful with port 0).
func (o *opsServer) addr() string { return o.ln.Addr().String() }

// close shuts the server down, waiting briefly for in-flight requests.
func (o *opsServer) close() {
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	o.srv.Shutdown(ctx)
}

// healthResponse is the /healthz JSON shape.
type healthResponse struct {
	Status            string  `json:"status"`
	Name              string  `json:"name"`
	Addr              string  `json:"addr"`
	UptimeS           float64 `json:"uptime_s"`
	Members           int     `json:"members"`
	Alive             int     `json:"alive"`
	LHM               int     `json:"lhm"`
	PendingBroadcasts int     `json:"pending_broadcasts"`
}

// memberJSON is one entry in the /members JSON response.
type memberJSON struct {
	Name        string `json:"name"`
	Addr        string `json:"addr"`
	State       string `json:"state"`
	Incarnation uint64 `json:"incarnation"`
}

// membersResponse is the /members JSON shape.
type membersResponse struct {
	Members []memberJSON `json:"members"`
}

// coordJSON is a Vivaldi coordinate in the /coords JSON response.
type coordJSON struct {
	Vec        []float64 `json:"vec"`
	Error      float64   `json:"error"`
	Adjustment float64   `json:"adjustment"`
	Height     float64   `json:"height"`
}

// coordPeerJSON is one peer's row in the /coords JSON response.
type coordPeerJSON struct {
	Name     string  `json:"name"`
	EstRTTMs float64 `json:"est_rtt_ms"`
}

// coordsResponse is the /coords JSON shape.
type coordsResponse struct {
	Enabled bool            `json:"enabled"`
	Self    *coordJSON      `json:"self"`
	Peers   []coordPeerJSON `json:"peers"`
}

func toCoordJSON(c *lifeguard.Coordinate) *coordJSON {
	if c == nil {
		return nil
	}
	return &coordJSON{Vec: c.Vec, Error: c.Error, Adjustment: c.Adjustment, Height: c.Height}
}

// countOpenFDs returns the process's open file-descriptor count from
// /proc/self/fd, or -1 where that isn't available (non-Linux); the
// corresponding gauge is simply omitted then.
func countOpenFDs() int {
	ents, err := os.ReadDir("/proc/self/fd")
	if err != nil {
		return -1
	}
	return len(ents)
}

// newOpsMux builds the ops endpoint routing; split from startOps so
// httptest can exercise the handlers without a real listener.
func newOpsMux(node *lifeguard.Node, rec *telemetry.NodeRecorder, sink *metrics.MemSink, started time.Time) *http.ServeMux {
	writeJSON := func(w http.ResponseWriter, v any) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(v)
	}
	countAlive := func() (total, alive int) {
		ms := node.Members()
		for _, m := range ms {
			if m.State == lifeguard.StateAlive {
				alive++
			}
		}
		return len(ms), alive
	}

	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		total, alive := countAlive()
		writeJSON(w, healthResponse{
			Status:            "ok",
			Name:              node.Name(),
			Addr:              node.Addr(),
			UptimeS:           time.Since(started).Seconds(),
			Members:           total,
			Alive:             alive,
			LHM:               node.HealthScore(),
			PendingBroadcasts: node.PendingBroadcasts(),
		})
	})
	mux.HandleFunc("/members", func(w http.ResponseWriter, r *http.Request) {
		ms := node.Members()
		sort.Slice(ms, func(i, j int) bool { return ms[i].Name < ms[j].Name })
		resp := membersResponse{Members: make([]memberJSON, 0, len(ms))}
		for _, m := range ms {
			resp.Members = append(resp.Members, memberJSON{
				Name:        m.Name,
				Addr:        m.Addr,
				State:       m.State.String(),
				Incarnation: m.Incarnation,
			})
		}
		writeJSON(w, resp)
	})
	mux.HandleFunc("/coords", func(w http.ResponseWriter, r *http.Request) {
		self := node.Coordinate()
		resp := coordsResponse{Enabled: self != nil, Self: toCoordJSON(self), Peers: []coordPeerJSON{}}
		for _, name := range node.CoordinatePeers() {
			if rtt, ok := node.EstimateRTT(name); ok {
				resp.Peers = append(resp.Peers, coordPeerJSON{
					Name:     name,
					EstRTTMs: float64(rtt) / float64(time.Millisecond),
				})
			}
		}
		writeJSON(w, resp)
	})
	mux.HandleFunc("/telemetry", func(w http.ResponseWriter, r *http.Request) {
		if rec == nil {
			http.Error(w, "telemetry disabled", http.StatusNotFound)
			return
		}
		writeJSON(w, rec.Snapshot())
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		telemetry.WriteCounters(w, "lifeguard_", sink.Snapshot())
		total, alive := countAlive()
		telemetry.WriteGauge(w, "lifeguard_members", float64(total))
		telemetry.WriteGauge(w, "lifeguard_members_alive", float64(alive))
		telemetry.WriteGauge(w, "lifeguard_health_score", float64(node.HealthScore()))
		telemetry.WriteGauge(w, "lifeguard_pending_broadcasts", float64(node.PendingBroadcasts()))
		// Process-level leak gauges: the e2e soak harness snapshots these
		// before and after churn to assert the agent does not accumulate
		// goroutines or file descriptors.
		telemetry.WriteGauge(w, "lifeguard_goroutines", float64(runtime.NumGoroutine()))
		if fds := countOpenFDs(); fds >= 0 {
			telemetry.WriteGauge(w, "lifeguard_open_fds", float64(fds))
		}
		if rec != nil {
			snap := rec.Snapshot()
			telemetry.WriteGauge(w, "lifeguard_telemetry_samples", float64(snap.Samples))
			telemetry.WriteGauge(w, "lifeguard_telemetry_partitions", float64(snap.Partitions))
			telemetry.WriteCounters(w, "lifeguard_", map[string]int64{
				"telemetry_evictions":  int64(snap.Evictions),
				"telemetry_overwrites": int64(snap.Overwrites),
				"lhm_changes":          int64(snap.LHMChanges),
			})
			telemetry.WriteHistogram(w, "lifeguard_probe_rtt_seconds", snap.RTT)
			telemetry.WriteHistogram(w, "lifeguard_suspicion_seconds", snap.Suspicion)
		}
	})
	return mux
}
