package main

import (
	"strings"
	"testing"
	"time"
)

// TestParseFlags table-tests the agent's flag surface: defaults, the
// mixed-version and e2e tuning flags, and every rejection path.
func TestParseFlags(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		wantErr string                     // substring of the expected error; empty = success
		check   func(*agentOptions) string // returns "" when the parsed options look right
	}{
		{
			name: "defaults",
			args: nil,
			check: func(o *agentOptions) string {
				switch {
				case o.bind != "127.0.0.1:7946":
					return "bind default"
				case o.swim || o.disableCoords:
					return "protocol variant flags default on"
				case o.alpha != 5 || o.beta != 6:
					return "alpha/beta defaults"
				case o.probeInterval != 0 || o.probeTimeout != 0:
					return "probe overrides should default to 0 (= protocol default)"
				case o.leaveTimeout != 5*time.Second:
					return "leave-timeout default"
				}
				return ""
			},
		},
		{
			name: "disable coords",
			args: []string{"-disable-coords", "-name", "old-wire"},
			check: func(o *agentOptions) string {
				if !o.disableCoords || o.name != "old-wire" {
					return "disable-coords/name not parsed"
				}
				return ""
			},
		},
		{
			name: "probe tuning",
			args: []string{"-probe-interval", "200ms", "-probe-timeout", "100ms"},
			check: func(o *agentOptions) string {
				if o.probeInterval != 200*time.Millisecond || o.probeTimeout != 100*time.Millisecond {
					return "probe interval/timeout not parsed"
				}
				return ""
			},
		},
		{
			name: "swim with http",
			args: []string{"-swim", "-http", "127.0.0.1:0"},
			check: func(o *agentOptions) string {
				if !o.swim || o.httpAddr != "127.0.0.1:0" {
					return "swim/http not parsed"
				}
				return ""
			},
		},
		{name: "unknown flag", args: []string{"-no-such-flag"}, wantErr: "flag provided but not defined"},
		{name: "positional junk", args: []string{"join", "127.0.0.1:1"}, wantErr: "unexpected positional arguments"},
		{name: "negative probe interval", args: []string{"-probe-interval", "-1s"}, wantErr: "-probe-interval must not be negative"},
		{name: "negative probe timeout", args: []string{"-probe-timeout", "-5ms"}, wantErr: "-probe-timeout must not be negative"},
		{name: "malformed duration", args: []string{"-probe-interval", "fast"}, wantErr: "invalid value"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			o, err := parseFlags(tc.args)
			if tc.wantErr != "" {
				if err == nil {
					t.Fatalf("parseFlags(%q) succeeded, want error containing %q", tc.args, tc.wantErr)
				}
				if !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("parseFlags(%q) error = %q, want substring %q", tc.args, err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatalf("parseFlags(%q): %v", tc.args, err)
			}
			if msg := tc.check(o); msg != "" {
				t.Errorf("parseFlags(%q): %s (got %+v)", tc.args, msg, *o)
			}
		})
	}
}

// TestRunErrorPaths drives run() end to end through the failures that
// must surface as a nonzero process exit: unparsable flags, an
// unbindable address, and probe settings the core config rejects. Each
// must return promptly with an error — never start the event loop.
func TestRunErrorPaths(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		wantErr string
	}{
		{name: "bad flag", args: []string{"-no-such-flag"}, wantErr: "flag provided but not defined"},
		{name: "unresolvable bind", args: []string{"-bind", "999.999.999.999:1"}, wantErr: "resolve"},
		{name: "malformed bind", args: []string{"-bind", "not-an-address"}, wantErr: ""},
		{
			name:    "timeout exceeds interval",
			args:    []string{"-bind", "127.0.0.1:0", "-probe-interval", "100ms", "-probe-timeout", "300ms"},
			wantErr: "probe timeout",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			done := make(chan error, 1)
			go func() { done <- run(tc.args) }()
			select {
			case err := <-done:
				if err == nil {
					t.Fatalf("run(%q) succeeded, want error", tc.args)
				}
				if tc.wantErr != "" && !strings.Contains(err.Error(), tc.wantErr) {
					t.Errorf("run(%q) error = %q, want substring %q", tc.args, err, tc.wantErr)
				}
			case <-time.After(10 * time.Second):
				t.Fatalf("run(%q) did not return", tc.args)
			}
		})
	}
}
