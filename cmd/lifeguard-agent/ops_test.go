package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"lifeguard"
	"lifeguard/internal/metrics"
	"lifeguard/internal/telemetry"
)

// newTestAgent starts a single live node on a loopback port and returns
// an httptest server over the ops mux, with the recorder and sink for
// direct seeding.
func newTestAgent(t *testing.T) (*httptest.Server, *telemetry.NodeRecorder, *metrics.MemSink) {
	t.Helper()
	tr, err := lifeguard.NewUDPTransport("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tr.Close() })

	cfg := lifeguard.DefaultConfig("ops-test")
	cfg.Addr = tr.LocalAddr()
	cfg.Transport = tr
	sink := metrics.NewMemSink()
	cfg.Metrics = sink
	rec, err := lifeguard.NewNodeTelemetry(telemetry.NodeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Telemetry = rec

	node, err := lifeguard.NewNode(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr.Run(node.HandlePacket)
	if err := node.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(node.Shutdown)

	srv := httptest.NewServer(newOpsMux(node, rec, sink, time.Now()))
	t.Cleanup(srv.Close)
	return srv, rec, sink
}

// getJSON fetches path and decodes the response body into a generic
// map, failing on a non-200 status or a wrong content type.
func getJSON(t *testing.T, srv *httptest.Server, path string) map[string]any {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", path, resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("GET %s: content type %q", path, ct)
	}
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatalf("GET %s: decode: %v", path, err)
	}
	return m
}

// assertKeys pins a JSON object's exact key set — the endpoint schema
// contract.
func assertKeys(t *testing.T, what string, m map[string]any, want ...string) {
	t.Helper()
	got := make([]string, 0, len(m))
	for k := range m {
		got = append(got, k)
	}
	sort.Strings(got)
	sort.Strings(want)
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("%s keys = %v, want %v", what, got, want)
	}
}

func TestOpsHealthz(t *testing.T) {
	srv, _, _ := newTestAgent(t)
	m := getJSON(t, srv, "/healthz")
	assertKeys(t, "/healthz", m,
		"status", "name", "addr", "uptime_s", "members", "alive", "lhm", "pending_broadcasts")
	if m["status"] != "ok" {
		t.Errorf("status = %v", m["status"])
	}
	if m["name"] != "ops-test" {
		t.Errorf("name = %v", m["name"])
	}
	if m["members"].(float64) < 1 || m["alive"].(float64) < 1 {
		t.Errorf("members/alive = %v/%v, want >= 1 (self)", m["members"], m["alive"])
	}
}

func TestOpsMembers(t *testing.T) {
	srv, _, _ := newTestAgent(t)
	m := getJSON(t, srv, "/members")
	assertKeys(t, "/members", m, "members")
	ms := m["members"].([]any)
	if len(ms) != 1 {
		t.Fatalf("members = %d, want 1 (self)", len(ms))
	}
	self := ms[0].(map[string]any)
	assertKeys(t, "/members entry", self, "name", "addr", "state", "incarnation")
	if self["name"] != "ops-test" || self["state"] != "alive" {
		t.Errorf("self = %v", self)
	}
}

func TestOpsCoords(t *testing.T) {
	srv, _, _ := newTestAgent(t)
	m := getJSON(t, srv, "/coords")
	assertKeys(t, "/coords", m, "enabled", "self", "peers")
	if m["enabled"] != true {
		t.Errorf("enabled = %v (coordinates are on by default)", m["enabled"])
	}
	self := m["self"].(map[string]any)
	assertKeys(t, "/coords self", self, "vec", "error", "adjustment", "height")
	if peers := m["peers"].([]any); len(peers) != 0 {
		t.Errorf("peers = %v, want none on a lone node", peers)
	}
}

func TestOpsTelemetry(t *testing.T) {
	srv, rec, _ := newTestAgent(t)
	rec.RecordRTT("peer-1", 12*time.Millisecond)
	rec.RecordProbe("peer-1", telemetry.OutcomeDirectAck)
	rec.RecordSuspicion("peer-1", time.Second, false)
	rec.RecordLHM(2)

	m := getJSON(t, srv, "/telemetry")
	assertKeys(t, "/telemetry", m,
		"peers", "rtt", "suspicion", "lhm", "lhm_changes",
		"samples", "partitions", "evictions", "overwrites")
	for _, h := range []string{"rtt", "suspicion"} {
		assertKeys(t, "/telemetry "+h, m[h].(map[string]any), "bounds_ns", "counts", "count", "sum_ns")
	}
	peers := m["peers"].([]any)
	if len(peers) != 1 {
		t.Fatalf("peers = %d, want 1", len(peers))
	}
	p := peers[0].(map[string]any)
	assertKeys(t, "/telemetry peer", p,
		"peer", "samples", "epochs", "rtt_p50_ms", "rtt_p90_ms", "rtt_p99_ms",
		"direct_acks", "indirect_acks", "timeouts", "loss_rate", "suspicions", "deaths")
	if p["peer"] != "peer-1" || p["samples"].(float64) != 1 {
		t.Errorf("peer = %v", p)
	}
	if m["lhm"].(float64) != 2 {
		t.Errorf("lhm = %v", m["lhm"])
	}
}

func TestOpsMetricsExposition(t *testing.T) {
	srv, rec, sink := newTestAgent(t)
	sink.IncrCounter(metrics.CounterMsgsSent, 3)
	rec.RecordRTT("peer-1", 12*time.Millisecond)
	rec.RecordSuspicion("peer-1", time.Second, true)

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		"# TYPE lifeguard_msgs_sent counter\nlifeguard_msgs_sent 3\n",
		"# TYPE lifeguard_members gauge",
		"# TYPE lifeguard_members_alive gauge",
		"# TYPE lifeguard_health_score gauge",
		"# TYPE lifeguard_pending_broadcasts gauge",
		"# TYPE lifeguard_goroutines gauge",
		"# TYPE lifeguard_telemetry_samples gauge",
		"# TYPE lifeguard_probe_rtt_seconds histogram",
		"lifeguard_probe_rtt_seconds_bucket{le=\"+Inf\"} 1",
		"lifeguard_probe_rtt_seconds_count 1",
		"# TYPE lifeguard_suspicion_seconds histogram",
		"lifeguard_suspicion_seconds_count 1",
		"# TYPE lifeguard_telemetry_evictions counter",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestOpsTelemetryDisabled pins the 404 on /telemetry when the agent
// runs without a recorder, and that /metrics still serves.
func TestOpsTelemetryDisabled(t *testing.T) {
	tr, err := lifeguard.NewUDPTransport("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tr.Close() })
	cfg := lifeguard.DefaultConfig("no-telem")
	cfg.Addr = tr.LocalAddr()
	cfg.Transport = tr
	sink := metrics.NewMemSink()
	cfg.Metrics = sink
	node, err := lifeguard.NewNode(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr.Run(node.HandlePacket)
	if err := node.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(node.Shutdown)
	srv := httptest.NewServer(newOpsMux(node, nil, sink, time.Now()))
	t.Cleanup(srv.Close)

	resp, err := http.Get(srv.URL + "/telemetry")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("/telemetry without recorder: status %d, want 404", resp.StatusCode)
	}
	resp, err = http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/metrics without recorder: status %d", resp.StatusCode)
	}
}

// TestOpsConcurrentScrapes races telemetry writes against snapshot
// reads through the HTTP surface; under -race this is the ops server's
// thread-safety proof.
func TestOpsConcurrentScrapes(t *testing.T) {
	srv, rec, sink := newTestAgent(t)
	stop := make(chan struct{})
	var writer sync.WaitGroup
	writer.Add(1)
	go func() {
		defer writer.Done()
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			rec.RecordRTT("peer-1", time.Duration(i)*time.Microsecond)
			rec.RecordProbe("peer-2", telemetry.OutcomeTimeout)
			rec.RecordLHM(i % 8)
			sink.IncrCounter(metrics.CounterProbes, 1)
			i++
		}
	}()
	var scrapers sync.WaitGroup
	for w := 0; w < 3; w++ {
		scrapers.Add(1)
		go func() {
			defer scrapers.Done()
			for i := 0; i < 30; i++ {
				for _, path := range []string{"/telemetry", "/metrics", "/healthz"} {
					resp, err := http.Get(srv.URL + path)
					if err != nil {
						t.Errorf("GET %s: %v", path, err)
						return
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}
		}()
	}
	scrapers.Wait()
	close(stop)
	writer.Wait()
}
