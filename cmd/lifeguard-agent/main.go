// Command lifeguard-agent runs a single Lifeguard member over real
// UDP/TCP, printing membership events as they happen. Start several on
// one machine to form a live cluster:
//
//	lifeguard-agent -name a -bind 127.0.0.1:7946
//	lifeguard-agent -name b -bind 127.0.0.1:7947 -join 127.0.0.1:7946
//	lifeguard-agent -name c -bind 127.0.0.1:7948 -join 127.0.0.1:7946
//
// Flags select the protocol variant (-swim disables all Lifeguard
// components) and tuning (-alpha, -beta). The agent leaves gracefully on
// SIGINT/SIGTERM.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"syscall"
	"time"

	"lifeguard"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "lifeguard-agent:", err)
		os.Exit(1)
	}
}

type printer struct{ name string }

func (p printer) logf(format string, args ...any) {
	fmt.Printf("%s [%s] %s\n", time.Now().Format("15:04:05.000"), p.name, fmt.Sprintf(format, args...))
}

func (p printer) NotifyJoin(m lifeguard.Member) {
	p.logf("JOIN    %s (%s) inc=%d", m.Name, m.Addr, m.Incarnation)
}

func (p printer) NotifySuspect(m lifeguard.Member) {
	p.logf("SUSPECT %s inc=%d", m.Name, m.Incarnation)
}

func (p printer) NotifyAlive(m lifeguard.Member) {
	p.logf("REFUTED %s inc=%d", m.Name, m.Incarnation)
}

func (p printer) NotifyDead(m lifeguard.Member) {
	p.logf("DEAD    %s inc=%d", m.Name, m.Incarnation)
}

func (p printer) NotifyUpdate(m lifeguard.Member) {
	p.logf("UPDATE  %s inc=%d meta=%dB", m.Name, m.Incarnation, len(m.Meta))
}

func run(args []string) error {
	fs := flag.NewFlagSet("lifeguard-agent", flag.ContinueOnError)
	var (
		name    = fs.String("name", "", "member name (default: bind address)")
		bind    = fs.String("bind", "127.0.0.1:7946", "bind address host:port (port 0 = auto)")
		join    = fs.String("join", "", "address of any existing member")
		swim    = fs.Bool("swim", false, "disable all Lifeguard components (plain SWIM)")
		alpha   = fs.Float64("alpha", 5, "suspicion timeout α")
		beta    = fs.Float64("beta", 6, "suspicion timeout β")
		members = fs.Duration("print-members", 10*time.Second, "interval for membership summaries (0 = off)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	tr, err := lifeguard.NewUDPTransport(*bind)
	if err != nil {
		return err
	}
	defer tr.Close()

	if *name == "" {
		*name = tr.LocalAddr()
	}
	var cfg *lifeguard.Config
	if *swim {
		cfg = lifeguard.SWIMConfig(*name)
	} else {
		cfg = lifeguard.DefaultConfig(*name)
	}
	cfg.SuspicionAlpha = *alpha
	cfg.SuspicionBeta = *beta
	cfg.Addr = tr.LocalAddr()
	cfg.Transport = tr
	cfg.Events = printer{name: *name}

	node, err := lifeguard.NewNode(cfg)
	if err != nil {
		return err
	}
	tr.Run(node.HandlePacket)
	if err := node.Start(); err != nil {
		return err
	}
	defer node.Shutdown()

	p := printer{name: *name}
	p.logf("listening on %s (lifeguard=%v α=%g β=%g)", tr.LocalAddr(), !*swim, *alpha, *beta)

	if *join != "" {
		if err := node.Join(*join); err != nil {
			return fmt.Errorf("join %q: %w", *join, err)
		}
		p.logf("joining via %s", *join)
	}

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)

	var ticker *time.Ticker
	var tick <-chan time.Time
	if *members > 0 {
		ticker = time.NewTicker(*members)
		defer ticker.Stop()
		tick = ticker.C
	}

	for {
		select {
		case <-tick:
			printMembers(p, node)
		case sig := <-sigCh:
			p.logf("received %v, leaving", sig)
			node.Leave()
			// Give the leave a moment to gossip before shutdown.
			time.Sleep(2 * time.Second)
			return nil
		}
	}
}

func printMembers(p printer, node *lifeguard.Node) {
	ms := node.Members()
	sort.Slice(ms, func(i, j int) bool { return ms[i].Name < ms[j].Name })
	alive := 0
	for _, m := range ms {
		if m.State == lifeguard.StateAlive {
			alive++
		}
	}
	p.logf("members: %d total, %d alive (LHM=%d)", len(ms), alive, node.HealthScore())
	for _, m := range ms {
		p.logf("  %-20s %-8s inc=%d addr=%s", m.Name, m.State, m.Incarnation, m.Addr)
	}
}
