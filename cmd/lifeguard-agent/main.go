// Command lifeguard-agent runs a single Lifeguard member over real
// UDP/TCP, printing membership events as they happen. Start several on
// one machine to form a live cluster:
//
//	lifeguard-agent -name a -bind 127.0.0.1:7946
//	lifeguard-agent -name b -bind 127.0.0.1:7947 -join 127.0.0.1:7946
//	lifeguard-agent -name c -bind 127.0.0.1:7948 -join 127.0.0.1:7946
//
// Flags select the protocol variant (-swim disables all Lifeguard
// components, -disable-coords turns off the Vivaldi coordinate wire
// extension) and tuning (-alpha, -beta, -probe-interval,
// -probe-timeout). -http starts the embedded ops server: /healthz,
// /members, /coords, /telemetry (JSON) and /metrics (Prometheus text)
// — see docs/OPS.md. The agent leaves gracefully on SIGINT/SIGTERM,
// waiting up to -leave-timeout for the leave broadcast to drain before
// shutting down.
//
// Startup logging contract: once ready the agent always prints, in
// order, `ops server on http://HOST:PORT` (when -http is set) and
// `listening on HOST:PORT (...)`, both before any -join attempt. The
// e2e harness (e2e/, docs/E2E.md) and the CI smoke step discover the
// ephemeral bound addresses by parsing exactly these lines — keep the
// formats stable.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"sort"
	"syscall"
	"time"

	"lifeguard"
	"lifeguard/internal/metrics"
	"lifeguard/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "lifeguard-agent:", err)
		os.Exit(1)
	}
}

// printer logs membership events through a single shared log.Logger,
// which serializes writes — event callbacks, the ops server and the
// main loop all print concurrently.
type printer struct {
	name string
	lg   *log.Logger
}

func (p printer) logf(format string, args ...any) {
	p.lg.Printf("[%s] %s", p.name, fmt.Sprintf(format, args...))
}

func (p printer) NotifyJoin(m lifeguard.Member) {
	p.logf("JOIN    %s (%s) inc=%d", m.Name, m.Addr, m.Incarnation)
}

func (p printer) NotifySuspect(m lifeguard.Member) {
	p.logf("SUSPECT %s inc=%d", m.Name, m.Incarnation)
}

func (p printer) NotifyAlive(m lifeguard.Member) {
	p.logf("REFUTED %s inc=%d", m.Name, m.Incarnation)
}

func (p printer) NotifyDead(m lifeguard.Member) {
	p.logf("DEAD    %s inc=%d", m.Name, m.Incarnation)
}

func (p printer) NotifyUpdate(m lifeguard.Member) {
	p.logf("UPDATE  %s inc=%d meta=%dB", m.Name, m.Incarnation, len(m.Meta))
}

// agentOptions is the parsed, validated flag set for one agent run.
type agentOptions struct {
	name          string
	bind          string
	join          string
	swim          bool
	disableCoords bool
	alpha         float64
	beta          float64
	probeInterval time.Duration
	probeTimeout  time.Duration
	printMembers  time.Duration
	httpAddr      string
	leaveTimeout  time.Duration
}

// parseFlags parses args into an agentOptions, rejecting values that
// could never produce a runnable node (negative probe timings). Zero
// probe-interval/probe-timeout mean "keep the protocol default"; the
// cross-field rules (timeout ≤ interval, both positive) stay with the
// core config validation so the agent and library can never disagree.
func parseFlags(args []string) (*agentOptions, error) {
	fs := flag.NewFlagSet("lifeguard-agent", flag.ContinueOnError)
	o := &agentOptions{}
	fs.StringVar(&o.name, "name", "", "member name (default: bind address)")
	fs.StringVar(&o.bind, "bind", "127.0.0.1:7946", "bind address host:port (port 0 = auto)")
	fs.StringVar(&o.join, "join", "", "address of any existing member")
	fs.BoolVar(&o.swim, "swim", false, "disable all Lifeguard components (plain SWIM)")
	fs.BoolVar(&o.disableCoords, "disable-coords", false, "disable the Vivaldi coordinate wire extension (pre-coordinate wire format)")
	fs.Float64Var(&o.alpha, "alpha", 5, "suspicion timeout α")
	fs.Float64Var(&o.beta, "beta", 6, "suspicion timeout β")
	fs.DurationVar(&o.probeInterval, "probe-interval", 0, "protocol period between liveness probes (0 = protocol default)")
	fs.DurationVar(&o.probeTimeout, "probe-timeout", 0, "direct probe ack timeout (0 = protocol default)")
	fs.DurationVar(&o.printMembers, "print-members", 10*time.Second, "interval for membership summaries (0 = off)")
	fs.StringVar(&o.httpAddr, "http", "", "ops HTTP listen address host:port (port 0 = auto; empty = disabled)")
	fs.DurationVar(&o.leaveTimeout, "leave-timeout", 5*time.Second, "max wait for the leave broadcast to drain on shutdown")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if fs.NArg() > 0 {
		return nil, fmt.Errorf("unexpected positional arguments: %q", fs.Args())
	}
	if o.probeInterval < 0 {
		return nil, fmt.Errorf("-probe-interval must not be negative (got %v)", o.probeInterval)
	}
	if o.probeTimeout < 0 {
		return nil, fmt.Errorf("-probe-timeout must not be negative (got %v)", o.probeTimeout)
	}
	return o, nil
}

// config builds the node configuration for the validated options,
// given the transport the agent has already bound.
func (o *agentOptions) config(tr *lifeguard.UDPTransport) *lifeguard.Config {
	name := o.name
	if name == "" {
		name = tr.LocalAddr()
	}
	var cfg *lifeguard.Config
	if o.swim {
		cfg = lifeguard.SWIMConfig(name)
	} else {
		cfg = lifeguard.DefaultConfig(name)
	}
	cfg.SuspicionAlpha = o.alpha
	cfg.SuspicionBeta = o.beta
	cfg.DisableCoordinates = o.disableCoords
	if o.probeInterval != 0 {
		cfg.ProbeInterval = o.probeInterval
	}
	if o.probeTimeout != 0 {
		cfg.ProbeTimeout = o.probeTimeout
	}
	cfg.Addr = tr.LocalAddr()
	cfg.Transport = tr
	return cfg
}

func run(args []string) error {
	o, err := parseFlags(args)
	if err != nil {
		return err
	}

	tr, err := lifeguard.NewUDPTransport(o.bind)
	if err != nil {
		return err
	}
	defer tr.Close()

	cfg := o.config(tr)
	p := printer{name: cfg.Name, lg: log.New(os.Stdout, "", log.Ltime|log.Lmicroseconds)}
	cfg.Events = p

	sink := metrics.NewMemSink()
	cfg.Metrics = sink
	var rec *lifeguard.NodeTelemetry
	if o.httpAddr != "" {
		rec, err = lifeguard.NewNodeTelemetry(telemetry.NodeConfig{})
		if err != nil {
			return err
		}
		cfg.Telemetry = rec
	}

	node, err := lifeguard.NewNode(cfg)
	if err != nil {
		return err
	}
	tr.Run(node.HandlePacket)
	if err := node.Start(); err != nil {
		return err
	}
	defer node.Shutdown()

	var ops *opsServer
	if o.httpAddr != "" {
		started := time.Now()
		ops, err = startOps(o.httpAddr, node, rec, sink, started)
		if err != nil {
			return err
		}
		defer ops.close()
		p.logf("ops server on http://%s", ops.addr())
	}

	p.logf("listening on %s (lifeguard=%v coords=%v α=%g β=%g probe=%v/%v)",
		tr.LocalAddr(), !o.swim, !o.disableCoords, o.alpha, o.beta,
		cfg.ProbeInterval, cfg.ProbeTimeout)

	if o.join != "" {
		if err := node.Join(o.join); err != nil {
			return fmt.Errorf("join %q: %w", o.join, err)
		}
		p.logf("joining via %s", o.join)
	}

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)

	var ticker *time.Ticker
	var tick <-chan time.Time
	if o.printMembers > 0 {
		ticker = time.NewTicker(o.printMembers)
		defer ticker.Stop()
		tick = ticker.C
	}

	for {
		select {
		case <-tick:
			printMembers(p, node)
		case sig := <-sigCh:
			p.logf("received %v, leaving", sig)
			node.Leave()
			waitLeaveDrain(p, node, o.leaveTimeout)
			return nil
		}
	}
}

// waitLeaveDrain blocks until the leave announcement itself has
// exhausted its gossip retransmit budget, or until the timeout elapses.
// Tracking the specific leave update (LeavePending) rather than the
// whole queue keeps unrelated membership churn from stalling shutdown,
// and a momentarily empty queue from ending the wait before the leave
// has met its retransmit count. With no live peers there is no one to
// inform and broadcasts can never drain, so it returns immediately.
func waitLeaveDrain(p printer, node *lifeguard.Node, timeout time.Duration) {
	if timeout <= 0 || node.NumAlive() == 0 {
		return
	}
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if !node.LeavePending() {
			p.logf("leave broadcast drained")
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	p.logf("leave drain timed out after %v (leave announcement still pending)", timeout)
}

func printMembers(p printer, node *lifeguard.Node) {
	ms := node.Members()
	sort.Slice(ms, func(i, j int) bool { return ms[i].Name < ms[j].Name })
	alive := 0
	for _, m := range ms {
		if m.State == lifeguard.StateAlive {
			alive++
		}
	}
	p.logf("members: %d total, %d alive (LHM=%d)", len(ms), alive, node.HealthScore())
	for _, m := range ms {
		p.logf("  %-20s %-8s inc=%d addr=%s", m.Name, m.State, m.Incarnation, m.Addr)
	}
}
