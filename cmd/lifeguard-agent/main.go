// Command lifeguard-agent runs a single Lifeguard member over real
// UDP/TCP, printing membership events as they happen. Start several on
// one machine to form a live cluster:
//
//	lifeguard-agent -name a -bind 127.0.0.1:7946
//	lifeguard-agent -name b -bind 127.0.0.1:7947 -join 127.0.0.1:7946
//	lifeguard-agent -name c -bind 127.0.0.1:7948 -join 127.0.0.1:7946
//
// Flags select the protocol variant (-swim disables all Lifeguard
// components) and tuning (-alpha, -beta). -http starts the embedded
// ops server: /healthz, /members, /coords, /telemetry (JSON) and
// /metrics (Prometheus text) — see docs/OPS.md. The agent leaves
// gracefully on SIGINT/SIGTERM, waiting up to -leave-timeout for the
// leave broadcast to drain before shutting down.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"sort"
	"syscall"
	"time"

	"lifeguard"
	"lifeguard/internal/metrics"
	"lifeguard/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "lifeguard-agent:", err)
		os.Exit(1)
	}
}

// printer logs membership events through a single shared log.Logger,
// which serializes writes — event callbacks, the ops server and the
// main loop all print concurrently.
type printer struct {
	name string
	lg   *log.Logger
}

func (p printer) logf(format string, args ...any) {
	p.lg.Printf("[%s] %s", p.name, fmt.Sprintf(format, args...))
}

func (p printer) NotifyJoin(m lifeguard.Member) {
	p.logf("JOIN    %s (%s) inc=%d", m.Name, m.Addr, m.Incarnation)
}

func (p printer) NotifySuspect(m lifeguard.Member) {
	p.logf("SUSPECT %s inc=%d", m.Name, m.Incarnation)
}

func (p printer) NotifyAlive(m lifeguard.Member) {
	p.logf("REFUTED %s inc=%d", m.Name, m.Incarnation)
}

func (p printer) NotifyDead(m lifeguard.Member) {
	p.logf("DEAD    %s inc=%d", m.Name, m.Incarnation)
}

func (p printer) NotifyUpdate(m lifeguard.Member) {
	p.logf("UPDATE  %s inc=%d meta=%dB", m.Name, m.Incarnation, len(m.Meta))
}

func run(args []string) error {
	fs := flag.NewFlagSet("lifeguard-agent", flag.ContinueOnError)
	var (
		name     = fs.String("name", "", "member name (default: bind address)")
		bind     = fs.String("bind", "127.0.0.1:7946", "bind address host:port (port 0 = auto)")
		join     = fs.String("join", "", "address of any existing member")
		swim     = fs.Bool("swim", false, "disable all Lifeguard components (plain SWIM)")
		alpha    = fs.Float64("alpha", 5, "suspicion timeout α")
		beta     = fs.Float64("beta", 6, "suspicion timeout β")
		members  = fs.Duration("print-members", 10*time.Second, "interval for membership summaries (0 = off)")
		httpAddr = fs.String("http", "", "ops HTTP listen address host:port (port 0 = auto; empty = disabled)")
		leaveTO  = fs.Duration("leave-timeout", 5*time.Second, "max wait for the leave broadcast to drain on shutdown")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	tr, err := lifeguard.NewUDPTransport(*bind)
	if err != nil {
		return err
	}
	defer tr.Close()

	if *name == "" {
		*name = tr.LocalAddr()
	}
	var cfg *lifeguard.Config
	if *swim {
		cfg = lifeguard.SWIMConfig(*name)
	} else {
		cfg = lifeguard.DefaultConfig(*name)
	}
	cfg.SuspicionAlpha = *alpha
	cfg.SuspicionBeta = *beta
	cfg.Addr = tr.LocalAddr()
	cfg.Transport = tr
	p := printer{name: *name, lg: log.New(os.Stdout, "", log.Ltime|log.Lmicroseconds)}
	cfg.Events = p

	sink := metrics.NewMemSink()
	cfg.Metrics = sink
	var rec *lifeguard.NodeTelemetry
	if *httpAddr != "" {
		rec, err = lifeguard.NewNodeTelemetry(telemetry.NodeConfig{})
		if err != nil {
			return err
		}
		cfg.Telemetry = rec
	}

	node, err := lifeguard.NewNode(cfg)
	if err != nil {
		return err
	}
	tr.Run(node.HandlePacket)
	if err := node.Start(); err != nil {
		return err
	}
	defer node.Shutdown()

	var ops *opsServer
	if *httpAddr != "" {
		started := time.Now()
		ops, err = startOps(*httpAddr, node, rec, sink, started)
		if err != nil {
			return err
		}
		defer ops.close()
		p.logf("ops server on http://%s", ops.addr())
	}

	p.logf("listening on %s (lifeguard=%v α=%g β=%g)", tr.LocalAddr(), !*swim, *alpha, *beta)

	if *join != "" {
		if err := node.Join(*join); err != nil {
			return fmt.Errorf("join %q: %w", *join, err)
		}
		p.logf("joining via %s", *join)
	}

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)

	var ticker *time.Ticker
	var tick <-chan time.Time
	if *members > 0 {
		ticker = time.NewTicker(*members)
		defer ticker.Stop()
		tick = ticker.C
	}

	for {
		select {
		case <-tick:
			printMembers(p, node)
		case sig := <-sigCh:
			p.logf("received %v, leaving", sig)
			node.Leave()
			waitLeaveDrain(p, node, *leaveTO)
			return nil
		}
	}
}

// waitLeaveDrain blocks until the leave announcement itself has
// exhausted its gossip retransmit budget, or until the timeout elapses.
// Tracking the specific leave update (LeavePending) rather than the
// whole queue keeps unrelated membership churn from stalling shutdown,
// and a momentarily empty queue from ending the wait before the leave
// has met its retransmit count. With no live peers there is no one to
// inform and broadcasts can never drain, so it returns immediately.
func waitLeaveDrain(p printer, node *lifeguard.Node, timeout time.Duration) {
	if timeout <= 0 || node.NumAlive() == 0 {
		return
	}
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if !node.LeavePending() {
			p.logf("leave broadcast drained")
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	p.logf("leave drain timed out after %v (leave announcement still pending)", timeout)
}

func printMembers(p printer, node *lifeguard.Node) {
	ms := node.Members()
	sort.Slice(ms, func(i, j int) bool { return ms[i].Name < ms[j].Name })
	alive := 0
	for _, m := range ms {
		if m.State == lifeguard.StateAlive {
			alive++
		}
	}
	p.logf("members: %d total, %d alive (LHM=%d)", len(ms), alive, node.HealthScore())
	for _, m := range ms {
		p.logf("  %-20s %-8s inc=%d addr=%s", m.Name, m.State, m.Incarnation, m.Addr)
	}
}
