package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"lifeguard/internal/experiment"
)

// This file maintains the bench trajectory: -bench-out appends one
// benchEntry per lifebench invocation to a JSON array file (the repo
// tracks BENCH_scenarios.json), recording the wall-clock cost of every
// scenario at a given scale/parallelism. Comparing entries across
// commits is how simulator performance changes are caught — the records
// themselves are byte-identical by design, so wall time is the only
// signal.

// benchScenario is one scenario's cost within an entry.
type benchScenario struct {
	// Wall is the scenario's wall-clock span in seconds: first cell
	// start to last cell finish within the shared pool.
	Wall float64 `json:"wall_s"`

	// Cells is the number of independent cells the scenario executed.
	Cells int `json:"cells"`
}

// benchEntry is one bench-trajectory data point: a full lifebench
// invocation's cost, broken down by scenario.
type benchEntry struct {
	// When is the invocation's start time, RFC 3339.
	When string `json:"when"`

	// Note is free-form context for the data point: a commit id, a
	// change description ("calendar-queue scheduler").
	Note string `json:"note,omitempty"`

	Scale    string `json:"scale"`
	Seed     int64  `json:"seed"`
	Parallel int    `json:"parallel"`

	// TotalWall is the whole invocation's wall time in seconds,
	// including plan and report phases outside any one scenario's span.
	TotalWall float64 `json:"total_wall_s"`

	// Scenarios maps scenario name to its cost.
	Scenarios map[string]benchScenario `json:"scenarios"`

	// SchedBench is the scheduler microbenchmark data point
	// (BenchmarkSchedulerInsertPop, calendar backend, 100k pending)
	// recorded by scripts/bench.sh. lifebench itself never sets it, but
	// the field must round-trip: appendBenchEntry rewrites the whole
	// file, and an unknown field would be silently dropped.
	SchedBench *microBench `json:"sched_bench,omitempty"`

	// CodecBench is the wire-codec microbenchmark data point
	// (BenchmarkEncodeAllocs: marshal an Alive with a 16-member
	// piggyback compound) recorded by scripts/bench.sh, tracking the
	// encode path's cost and allocation count across commits. Like
	// SchedBench, it exists here only to round-trip.
	CodecBench *microBench `json:"codec_bench,omitempty"`

	// FanoutBench is the zero-copy delivery microbenchmark data point
	// (BenchmarkNetworkDeliverFanout: one payload copy shared by 8
	// destinations) recorded by scripts/bench.sh. Round-trip only.
	FanoutBench *microBench `json:"fanout_bench,omitempty"`

	// PushPullBench is the push-pull snapshot microbenchmark data point
	// (BenchmarkPushPullSnapshot: 1k-member state snapshot off the
	// incrementally sorted roster) recorded by scripts/bench.sh.
	// Round-trip only.
	PushPullBench *microBench `json:"pushpull_bench,omitempty"`
}

// microBench is one microbenchmark measurement.
type microBench struct {
	NsOp     float64 `json:"ns_op"`
	AllocsOp float64 `json:"allocs_op"`
}

// newBenchEntry builds the entry for one finished invocation.
func newBenchEntry(note, scale string, seed int64, parallel int, totalWall float64, results []experiment.NamedResult) benchEntry {
	e := benchEntry{
		When:      time.Now().UTC().Format(time.RFC3339),
		Note:      note,
		Scale:     scale,
		Seed:      seed,
		Parallel:  parallel,
		TotalWall: round3(totalWall),
		Scenarios: make(map[string]benchScenario, len(results)),
	}
	for _, nr := range results {
		e.Scenarios[nr.Name] = benchScenario{Wall: round3(nr.Wall), Cells: nr.Cells}
	}
	return e
}

// round3 keeps wall times readable in the tracked file: millisecond
// precision is far below run-to-run noise.
func round3(s float64) float64 {
	return float64(int64(s*1000+0.5)) / 1000
}

// appendBenchEntry appends one entry to the JSON array in path,
// creating the file if needed. The file is rewritten whole — entries
// are few (one per tracked run) and the format stays a valid,
// indent-stable JSON array.
func appendBenchEntry(path string, e benchEntry) error {
	var entries []benchEntry
	data, err := os.ReadFile(path)
	switch {
	case err == nil:
		if err := json.Unmarshal(data, &entries); err != nil {
			return fmt.Errorf("existing %s is not a bench entry array: %w", path, err)
		}
	case os.IsNotExist(err):
		// First entry; start a new array.
	default:
		return err
	}
	entries = append(entries, e)
	out, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}
