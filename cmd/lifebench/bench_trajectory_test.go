package main

import (
	"bytes"
	"encoding/json"
	"os"
	"testing"
	"time"
)

// TestBenchTrajectoryFile validates the tracked bench-trajectory file:
// it must parse strictly as a non-empty array of benchEntry (an
// unknown field means someone hand-edited the file or renamed a struct
// field without migrating it — either way appendBenchEntry would
// silently drop data on the next rewrite), every entry must carry a
// parseable timestamp and a positive total wall time, and the entries
// must be in chronological order, since the file is append-only.
func TestBenchTrajectoryFile(t *testing.T) {
	const path = "../../BENCH_scenarios.json"
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	var entries []benchEntry
	if err := dec.Decode(&entries); err != nil {
		t.Fatalf("%s no longer matches the benchEntry schema: %v", path, err)
	}
	if len(entries) == 0 {
		t.Fatalf("%s is empty; the trajectory must keep at least one data point", path)
	}

	var prev time.Time
	for i, e := range entries {
		when, err := time.Parse(time.RFC3339, e.When)
		if err != nil {
			t.Fatalf("entry %d: bad when %q: %v", i, e.When, err)
		}
		if when.Before(prev) {
			t.Errorf("entry %d: when %s precedes entry %d's %s; the file is append-only",
				i, e.When, i-1, entries[i-1].When)
		}
		prev = when
		if e.TotalWall <= 0 {
			t.Errorf("entry %d: total_wall_s = %g, want > 0", i, e.TotalWall)
		}
		if len(e.Scenarios) == 0 {
			t.Errorf("entry %d: no scenario breakdown", i)
		}
	}
}
