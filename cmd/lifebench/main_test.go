package main

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"strings"
	"testing"

	"lifeguard/internal/experiment"
)

func TestScaleByName(t *testing.T) {
	cases := map[string]experiment.Scale{
		"smoke": experiment.ScaleSmoke,
		"bench": experiment.ScaleBench,
		"paper": experiment.ScalePaper,
	}
	for name, want := range cases {
		got, err := scaleByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got.Name != want.Name || got.N != want.N {
			t.Errorf("%s resolved to %+v", name, got)
		}
	}
	if _, err := scaleByName("bogus"); err == nil {
		t.Error("unknown scale accepted")
	}
}

func TestRunRejectsUnknownExperiment(t *testing.T) {
	err := run([]string{"-exp", "bogus", "-scale", "smoke", "-quiet"}, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "unknown experiment") {
		t.Errorf("err = %v", err)
	}
}

func TestRunRejectsUnknownScale(t *testing.T) {
	err := run([]string{"-exp", "table4", "-scale", "huge"}, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "unknown scale") {
		t.Errorf("err = %v", err)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}, io.Discard); err == nil {
		t.Error("bad flag accepted")
	}
}

// TestRunList checks -list prints every registered scenario and the
// table/figure aliases without running anything.
func TestRunList(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-list"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, name := range experiment.ScenarioNames() {
		if !strings.Contains(out, name) {
			t.Errorf("-list output missing scenario %q:\n%s", name, out)
		}
	}
	for alias := range aliases {
		if !strings.Contains(out, alias) {
			t.Errorf("-list output missing alias %q:\n%s", alias, out)
		}
	}
}

// TestRunAliasSelectsSection checks a table alias runs its scenario but
// prints only the aliased section.
func TestRunAliasSelectsSection(t *testing.T) {
	if testing.Short() {
		t.Skip("interval sweep run")
	}
	var buf bytes.Buffer
	if err := run([]string{"-exp", "table4", "-scale", "smoke", "-quiet", "-timings=false"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Table IV") {
		t.Errorf("table4 output missing Table IV section:\n%s", out)
	}
	for _, unwanted := range []string{"Table VI", "Figure 2", "Figure 3"} {
		if strings.Contains(out, unwanted) {
			t.Errorf("table4 output leaked the %s section:\n%s", unwanted, out)
		}
	}
}

// TestRunWANJSON runs the WAN experiment at a reduced scale and checks
// the -json output parses into records with the expected shape.
func TestRunWANJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("WAN run")
	}
	var buf bytes.Buffer
	if err := run([]string{"-exp", "wan", "-scale", "smoke", "-quiet", "-timings=false", "-json"}, &buf); err != nil {
		t.Fatal(err)
	}
	var records []record
	if err := json.Unmarshal(buf.Bytes(), &records); err != nil {
		t.Fatalf("output is not a JSON record array: %v\noutput: %s", err, buf.String())
	}
	// The WAN experiment is a same-seed comparison: one static record,
	// one adaptive.
	if len(records) != 2 {
		t.Fatalf("got %d records, want 2", len(records))
	}
	adaptives := map[bool]bool{}
	for _, rec := range records {
		if rec.Experiment != "wan" || rec.Scale != "smoke" || rec.Seed != 1 {
			t.Errorf("record header %+v", rec)
		}
		for _, key := range []string{
			"coord_rel_err_median", "pairs_scored", "fp",
			"detect_cross_zone_median_s", "msgs_sent", "bytes_sent",
			"adaptive_timeouts", "relay_near_picks", "gossip_near_picks",
		} {
			if _, ok := rec.Metrics[key]; !ok {
				t.Errorf("metric %q missing: %v", key, rec.Metrics)
			}
		}
		if rec.Metrics["pairs_scored"] == 0 {
			t.Error("no coordinate pairs scored")
		}
		a, ok := rec.Params["adaptive"].(bool)
		if !ok {
			t.Errorf("record lacks adaptive param: %v", rec.Params)
			continue
		}
		adaptives[a] = true
		if a && rec.Metrics["adaptive_timeouts"] == 0 {
			t.Error("adaptive record took no adaptive timeouts")
		}
		if !a && rec.Metrics["adaptive_timeouts"] != 0 {
			t.Error("static record took adaptive timeouts")
		}
	}
	if !adaptives[true] || !adaptives[false] {
		t.Errorf("expected one static and one adaptive record, got %v", adaptives)
	}
	// JSON mode must not mix human tables into the stream.
	if strings.Contains(buf.String(), "==") {
		t.Error("JSON output contains table headers")
	}
}

// TestRunChaosJSON runs the chaos matrix at smoke scale through the
// CLI and checks the -json output has one well-formed record per
// (scenario, configuration) cell.
func TestRunChaosJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos matrix run")
	}
	var buf bytes.Buffer
	// -parallel 2 exercises the concurrent executor through the CLI;
	// the record content is pinned byte-identical to serial by the
	// experiment package's determinism tests.
	if err := run([]string{"-exp", "chaos", "-scale", "smoke", "-quiet", "-timings=false", "-json", "-parallel", "2"}, &buf); err != nil {
		t.Fatal(err)
	}
	var records []record
	if err := json.Unmarshal(buf.Bytes(), &records); err != nil {
		t.Fatalf("output is not a JSON record array: %v\noutput: %s", err, buf.String())
	}
	wantCells := len(experiment.ChaosScenarioNames()) * len(experiment.Configurations)
	if len(records) != wantCells {
		t.Fatalf("got %d records, want %d", len(records), wantCells)
	}
	for _, rec := range records {
		if rec.Experiment != "chaos" || rec.Scale != "smoke" || rec.Seed != 1 || rec.Config == "" {
			t.Errorf("record header %+v", rec)
		}
		if rec.Wall <= 0 || rec.Cells != wantCells {
			t.Errorf("record stamp wall_s=%g cells=%d, want wall_s > 0 and cells = %d", rec.Wall, rec.Cells, wantCells)
		}
		for _, key := range []string{"fp", "crashes_detected", "suspicions", "refuted", "duplicated", "reordered"} {
			if _, ok := rec.Metrics[key]; !ok {
				t.Errorf("metric %q missing: %v", key, rec.Metrics)
			}
		}
	}
	if strings.Contains(buf.String(), "==") {
		t.Error("JSON output contains table headers")
	}
}

// TestRunJSONTableSmoke checks -json on a table experiment emits one
// record per protocol configuration.
func TestRunJSONTableSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep run")
	}
	var buf bytes.Buffer
	if err := run([]string{"-exp", "table5", "-scale", "smoke", "-quiet", "-timings=false", "-json"}, &buf); err != nil {
		t.Fatal(err)
	}
	var records []record
	if err := json.Unmarshal(buf.Bytes(), &records); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if len(records) != len(experiment.Configurations) {
		t.Fatalf("got %d records, want %d", len(records), len(experiment.Configurations))
	}
	for _, rec := range records {
		if rec.Experiment != "threshold-sweep" || rec.Config == "" {
			t.Errorf("record %+v", rec)
		}
		if _, ok := rec.Metrics["first_detect_median_s"]; !ok {
			t.Errorf("missing latency metric in %v", rec.Metrics)
		}
	}
}

// TestRunBenchOutAppends checks -bench-out creates a JSON-array
// trajectory file and appends to it on the next invocation, with one
// per-scenario cost block per entry.
func TestRunBenchOutAppends(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario runs")
	}
	path := t.TempDir() + "/bench.json"
	args := []string{"-exp", "partition,rolling-restart", "-scale", "smoke", "-quiet", "-timings=false", "-bench-out", path}
	if err := run(append(args, "-bench-note", "first"), io.Discard); err != nil {
		t.Fatal(err)
	}
	if err := run(args, io.Discard); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var entries []benchEntry
	if err := json.Unmarshal(data, &entries); err != nil {
		t.Fatalf("bench file is not a valid entry array: %v", err)
	}
	if len(entries) != 2 {
		t.Fatalf("got %d entries, want 2", len(entries))
	}
	if entries[0].Note != "first" || entries[1].Note != "" {
		t.Errorf("notes = %q, %q", entries[0].Note, entries[1].Note)
	}
	for i, e := range entries {
		if e.Scale != "smoke" || e.Parallel != 1 || e.TotalWall <= 0 || e.When == "" {
			t.Errorf("entry %d stamp: %+v", i, e)
		}
		if len(e.Scenarios) != 2 {
			t.Fatalf("entry %d has %d scenarios, want 2", i, len(e.Scenarios))
		}
		for name, s := range e.Scenarios {
			if s.Cells <= 0 {
				t.Errorf("entry %d scenario %s: cells = %d", i, name, s.Cells)
			}
		}
	}
	// A corrupt target must error out rather than be clobbered.
	if err := os.WriteFile(path, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(args, io.Discard); err == nil {
		t.Error("corrupt bench file accepted")
	}
}
