package main

import (
	"strings"
	"testing"

	"lifeguard/internal/experiment"
)

func TestScaleByName(t *testing.T) {
	cases := map[string]experiment.Scale{
		"smoke": experiment.ScaleSmoke,
		"bench": experiment.ScaleBench,
		"paper": experiment.ScalePaper,
	}
	for name, want := range cases {
		got, err := scaleByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got.Name != want.Name || got.N != want.N {
			t.Errorf("%s resolved to %+v", name, got)
		}
	}
	if _, err := scaleByName("bogus"); err == nil {
		t.Error("unknown scale accepted")
	}
}

func TestRunRejectsUnknownExperiment(t *testing.T) {
	err := run([]string{"-exp", "bogus", "-scale", "smoke", "-quiet"})
	if err == nil || !strings.Contains(err.Error(), "unknown experiment") {
		t.Errorf("err = %v", err)
	}
}

func TestRunRejectsUnknownScale(t *testing.T) {
	err := run([]string{"-exp", "table4", "-scale", "huge"})
	if err == nil || !strings.Contains(err.Error(), "unknown scale") {
		t.Errorf("err = %v", err)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}); err == nil {
		t.Error("bad flag accepted")
	}
}
