package main

import (
	"encoding/json"
	"io"

	"lifeguard/internal/experiment"
)

// record is one machine-readable result row, emitted under -json so
// bench trajectories can be tracked across commits without parsing the
// human tables. The scenarios build their own records; lifebench only
// serializes them.
type record = experiment.Record

// writeRecords emits the collected records as one JSON array.
func writeRecords(w io.Writer, records []record) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(records)
}
