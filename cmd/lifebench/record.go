package main

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"lifeguard/internal/experiment"
)

// record is one machine-readable result row, emitted under -json so
// bench trajectories can be tracked across commits without parsing the
// human tables.
type record struct {
	// Experiment names the table/figure/scenario ("table4", "wan", …).
	Experiment string `json:"experiment"`

	// Config is the protocol configuration the row describes, where
	// applicable ("SWIM", "Lifeguard", …).
	Config string `json:"config,omitempty"`

	// Scale and Seed identify the run for reproduction.
	Scale string `json:"scale"`
	Seed  int64  `json:"seed"`

	// Params holds experiment-specific inputs (α/β, stressed count,
	// zone sizes, …).
	Params map[string]any `json:"params,omitempty"`

	// Metrics holds the row's numeric results, keyed by metric name.
	Metrics map[string]float64 `json:"metrics"`
}

// writeRecords emits the collected records as one JSON array.
func writeRecords(w io.Writer, records []record) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(records)
}

func intervalRecords(results []experiment.IntervalSweepResult, scale string, seed int64) []record {
	out := make([]record, 0, len(results))
	for _, r := range results {
		rec := record{
			Experiment: "interval-sweep",
			Config:     r.Config.Name,
			Scale:      scale,
			Seed:       seed,
			Params:     map[string]any{"alpha": r.Config.Alpha, "beta": r.Config.Beta},
			Metrics: map[string]float64{
				"fp":         float64(r.FP),
				"fp_healthy": float64(r.FPHealthy),
				"msgs_sent":  float64(r.MsgsSent),
				"bytes_sent": float64(r.BytesSent),
				"runs":       float64(r.Runs),
			},
		}
		for c, cell := range r.ByC {
			rec.Metrics[fmt.Sprintf("fp_c%d", c)] = float64(cell.FP)
			rec.Metrics[fmt.Sprintf("fp_healthy_c%d", c)] = float64(cell.FPHealthy)
		}
		out = append(out, rec)
	}
	return out
}

func thresholdRecords(results []experiment.ThresholdSweepResult, scale string, seed int64) []record {
	out := make([]record, 0, len(results))
	for _, r := range results {
		out = append(out, record{
			Experiment: "threshold-sweep",
			Config:     r.Config.Name,
			Scale:      scale,
			Seed:       seed,
			Params:     map[string]any{"alpha": r.Config.Alpha, "beta": r.Config.Beta},
			Metrics: map[string]float64{
				"first_detect_median_s": r.FirstDetect.Median,
				"first_detect_p99_s":    r.FirstDetect.P99,
				"first_detect_p999_s":   r.FirstDetect.P999,
				"full_dissem_median_s":  r.FullDissem.Median,
				"full_dissem_p99_s":     r.FullDissem.P99,
				"full_dissem_p999_s":    r.FullDissem.P999,
				"detected":              float64(r.Detected),
				"undetected":            float64(r.Undetected),
				"runs":                  float64(r.Runs),
			},
		})
	}
	return out
}

func tuningRecords(res experiment.TuningSweepResult, scale string, seed int64) []record {
	out := make([]record, 0, len(res.Cells))
	for _, cell := range res.Cells {
		out = append(out, record{
			Experiment: "tuning-sweep",
			Config:     "Lifeguard",
			Scale:      scale,
			Seed:       seed,
			Params:     map[string]any{"alpha": cell.Alpha, "beta": cell.Beta},
			Metrics: map[string]float64{
				"med_first_pct_swim":  cell.MedFirst,
				"med_full_pct_swim":   cell.MedFull,
				"p99_first_pct_swim":  cell.P99First,
				"p99_full_pct_swim":   cell.P99Full,
				"p999_first_pct_swim": cell.P999First,
				"p999_full_pct_swim":  cell.P999Full,
				"fp_pct_swim":         cell.FP,
				"fp_healthy_pct_swim": cell.FPHealthy,
			},
		})
	}
	return out
}

func stressRecords(results []experiment.StressSweepResult, scale string, seed int64) []record {
	var out []record
	for _, r := range results {
		// ByCount is a map; sort the keys so -json output is stable
		// across identical runs (the whole point of the records).
		counts := make([]int, 0, len(r.ByCount))
		for count := range r.ByCount {
			counts = append(counts, count)
		}
		sort.Ints(counts)
		for _, count := range counts {
			sr := r.ByCount[count]
			out = append(out, record{
				Experiment: "stress",
				Config:     r.Config.Name,
				Scale:      scale,
				Seed:       seed,
				Params:     map[string]any{"stressed": count},
				Metrics: map[string]float64{
					"fp":         float64(sr.FP),
					"fp_healthy": float64(sr.FPHealthy),
				},
			})
		}
	}
	return out
}

func chaosRecords(res experiment.ChaosResult, scale string, seed int64) []record {
	out := make([]record, 0, len(res.Cells))
	for _, cell := range res.Cells {
		out = append(out, record{
			Experiment: "chaos",
			Config:     cell.Config,
			Scale:      scale,
			Seed:       seed,
			Params: map[string]any{
				"scenario":    cell.Scenario,
				"members":     res.Params.N,
				"victims":     cell.Victims,
				"crashes":     cell.Crashes,
				"fault_for_s": res.Params.FaultFor.Seconds(),
				"crash_at_s":  res.Params.CrashAt.Seconds(),
			},
			Metrics: map[string]float64{
				"fp":                    float64(cell.FP),
				"fp_healthy":            float64(cell.FPHealthy),
				"victim_deaths":         float64(cell.VictimDeaths),
				"crashes_detected":      float64(cell.CrashesDetected),
				"crash_detect_median_s": cell.CrashDetect.Median,
				"crash_detect_max_s":    cell.CrashDetect.Max,
				"suspicions":            float64(cell.Suspicions),
				"refuted":               float64(cell.Refuted),
				"refute_median_s":       cell.RefuteLatency.Median,
				"msgs_sent":             float64(cell.MsgsSent),
				"bytes_sent":            float64(cell.BytesSent),
				"duplicated":            float64(cell.Duplicated),
				"reordered":             float64(cell.Reordered),
				"fault_drops":           float64(cell.FaultDrops),
			},
		})
	}
	return out
}

func wanRecord(res experiment.WANResult, scale string, seed int64, adaptive bool) record {
	rec := record{
		Experiment: "wan",
		Config:     "Lifeguard",
		Scale:      scale,
		Seed:       seed,
		Params: map[string]any{
			"members":       res.N,
			"zones":         len(res.Params.Zones),
			"fail_per_zone": res.Params.FailPerZone,
			"converge_s":    res.Params.Converge.Seconds(),
			"adaptive":      adaptive,
		},
		Metrics: map[string]float64{
			"coord_rel_err_median":       res.CoordErr.Median,
			"coord_rel_err_p99":          res.CoordErr.P99,
			"coord_abs_err_mean_s":       res.MeanAbsErr,
			"pairs_scored":               float64(res.PairsScored),
			"fp":                         float64(res.FP),
			"fp_healthy":                 float64(res.FPHealthy),
			"detect_cross_zone_median_s": res.CrossZoneDetect.Median,
			"detect_cross_zone_p99_s":    res.CrossZoneDetect.P99,
			"msgs_sent":                  float64(res.MsgsSent),
			"bytes_sent":                 float64(res.BytesSent),
			"adaptive_timeouts":          float64(res.AdaptiveTimeouts),
			"adaptive_timeout_fallbacks": float64(res.AdaptiveFallbacks),
			"relay_near_picks":           float64(res.RelayNear),
			"relay_random_picks":         float64(res.RelayRandom),
			"gossip_near_picks":          float64(res.GossipNear),
			"gossip_escape_picks":        float64(res.GossipEscape),
		},
	}
	for _, z := range res.PerZone {
		rec.Metrics["detect_median_s_"+z.Zone] = z.FirstDetect.Median
		rec.Metrics["detect_cross_zone_median_s_"+z.Zone] = z.CrossZoneDetect.Median
		rec.Metrics["detected_"+z.Zone] = float64(z.Detected)
		rec.Metrics["failed_"+z.Zone] = float64(z.Failed)
		rec.Metrics["fp_"+z.Zone] = float64(z.FP)
	}
	return rec
}
