// Command lifebench regenerates the Lifeguard paper's tables and
// figures on the discrete-event simulator, plus the scenarios built on
// top of it: WAN coordinates, the chaos fault matrix, large-cluster
// churn, partition/heal, and rolling restarts.
//
// Usage:
//
//	lifebench -list
//	lifebench -exp table4 [-scale smoke|bench|paper] [-seed N]
//	lifebench -exp all -scale bench -parallel 4
//	lifebench -exp chaos,rolling-restart -json
//
// Experiments are the registered scenarios (see -list) plus the
// table/figure aliases fig1, fig2, fig3, table4, table5, table6,
// table7, and "all". Scales trade fidelity for time: smoke (seconds),
// bench (minutes, default), paper (the full grids of Tables II/III
// with 10 repetitions — hours).
//
// -parallel N runs up to N independent scenario cells concurrently.
// Every cell derives its seed from its canonical matrix position, so
// the output — human tables and JSON records alike — is byte-identical
// at any parallelism.
//
// -json replaces the human-readable tables with a JSON array of
// result records (experiment name, params, metrics, wall-clock
// duration and cell count), the stable interface for tracking bench
// trajectories across commits.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"time"

	"lifeguard/internal/experiment"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "lifebench:", err)
		os.Exit(1)
	}
}

// aliases maps the paper's table/figure names to a registered scenario
// and the report section to display.
var aliases = map[string]struct{ scenario, section string }{
	"fig1":   {"stress", "fig1"},
	"fig2":   {"interval", "fig2"},
	"fig3":   {"interval", "fig3"},
	"table4": {"interval", "table4"},
	"table5": {"threshold", "table5"},
	"table6": {"interval", "table6"},
	"table7": {"tuning", "table7"},
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("lifebench", flag.ContinueOnError)
	var (
		exp      = fs.String("exp", "all", "comma-separated experiments: any registered scenario, a table/figure alias, or all (see -list)")
		list     = fs.Bool("list", false, "list the registered scenarios and aliases, then exit")
		scale    = fs.String("scale", "bench", "sweep scale: smoke|bench|paper")
		seed     = fs.Int64("seed", 1, "base RNG seed")
		parallel = fs.Int("parallel", 1, "max scenario cells run concurrently (output identical at any value)")
		quiet    = fs.Bool("quiet", false, "suppress progress output")
		timings  = fs.Bool("timings", true, "print wall-clock timings per experiment")
		jsonOut  = fs.Bool("json", false, "emit machine-readable JSON records instead of tables")

		benchOut  = fs.String("bench-out", "", "append a bench-trajectory entry (per-scenario wall times and cell counts) to this JSON file")
		benchNote = fs.String("bench-note", "", "free-form note recorded in the -bench-out entry (a commit id, a change description)")

		cpuProfile = fs.String("cpuprofile", "", "write a CPU profile of the scenario runs to this file (inspect with go tool pprof)")
		memProfile = fs.String("memprofile", "", "write a post-run heap profile to this file (inspect with go tool pprof)")

		wanMembers = fs.Int("wan-members", 0, "WAN experiment: members per zone (0 takes the scale default)")
		wanFail    = fs.Int("wan-fail", 3, "WAN experiment: members crashed per zone in the detection phase")

		chaosMembers = fs.Int("chaos-members", 0, "chaos experiment: cluster size (0 takes the scale default)")
		chaosVictims = fs.Int("chaos-victims", 6, "chaos experiment: members afflicted by each scenario's non-fatal fault (0 for none)")
		chaosCrashes = fs.Int("chaos-crashes", 3, "chaos experiment: members hard-crashed during the fault window (0 for none)")

		restartMembers = fs.Int("restart-members", 0, "rolling-restart experiment: cluster size (0 takes the scale default)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		return listScenarios(stdout)
	}

	sc, err := scaleByName(*scale)
	if err != nil {
		return err
	}

	// Resolve the requested experiments into scenarios and the section
	// keys to display (nil = every section).
	type selection struct {
		run      bool
		sections map[string]bool // nil means all
	}
	selected := make(map[string]*selection)
	sel := func(name string) *selection {
		s := selected[name]
		if s == nil {
			s = &selection{}
			selected[name] = s
		}
		return s
	}
	for _, token := range strings.Split(*exp, ",") {
		token = strings.TrimSpace(token)
		switch {
		case token == "all":
			for _, name := range experiment.ScenarioNames() {
				s := sel(name)
				s.run = true
				s.sections = nil
			}
		case isScenario(token):
			s := sel(token)
			s.run = true
			s.sections = nil
		default:
			alias, ok := aliases[token]
			if !ok {
				return fmt.Errorf("unknown experiment %q (want %s|all)", token, strings.Join(experimentNames(), "|"))
			}
			s := sel(alias.scenario)
			if !s.run {
				// First selection of this scenario via an alias: show
				// only the aliased sections.
				s.sections = map[string]bool{}
			}
			s.run = true
			if s.sections != nil {
				s.sections[alias.section] = true
			}
		}
	}

	// On the CLI, an explicit 0 means "none"; the library's zero value
	// means "default", so map 0 to the negative sentinel.
	victims, crashes := *chaosVictims, *chaosCrashes
	if victims == 0 {
		victims = -1
	}
	if crashes == 0 {
		crashes = -1
	}
	wanFailPerZone := *wanFail
	if wanFailPerZone == 0 {
		wanFailPerZone = -1
	}

	// Collect the selected scenarios in registration order — the
	// canonical run order — and execute them through one shared worker
	// pool, so a short scenario's tail never idles workers while a long
	// one runs.
	var names []string
	for _, s := range experiment.Scenarios() {
		if pick := selected[s.Name()]; pick != nil && pick.run {
			names = append(names, s.Name())
		}
	}

	var progress experiment.Progress
	if !*quiet {
		label := "cells"
		if len(names) == 1 {
			label = names[0]
		}
		progress = func(done, total int) {
			fmt.Fprintf(os.Stderr, "\r%s: %d/%d", label, done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}

	// The CPU profile brackets exactly the scenario runs — flag parsing
	// and report rendering stay out of the picture.
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}

	start := time.Now()
	results, err := experiment.RunScenarios(names, experiment.RunOptions{
		Scale:             sc,
		Seed:              *seed,
		Parallel:          *parallel,
		Progress:          progress,
		WANMembersPerZone: *wanMembers,
		WANFailPerZone:    wanFailPerZone,
		ChaosN:            *chaosMembers,
		ChaosVictims:      victims,
		ChaosCrashes:      crashes,
		RestartN:          *restartMembers,
	})
	if err != nil {
		return err
	}
	totalWall := time.Since(start).Seconds()

	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			return fmt.Errorf("memprofile: %w", err)
		}
		defer f.Close()
		runtime.GC() // settle the heap so the profile shows retained memory
		if err := pprof.WriteHeapProfile(f); err != nil {
			return fmt.Errorf("memprofile: %w", err)
		}
	}

	var records []record
	for _, nr := range results {
		if *timings {
			fmt.Fprintf(os.Stderr, "[%s took %v]\n", nr.Name, time.Duration(nr.Wall*float64(time.Second)).Round(time.Millisecond))
		}
		records = append(records, nr.Result.Records...)
		if !*jsonOut {
			pick := selected[nr.Name]
			for _, section := range nr.Result.Sections {
				if pick.sections != nil && !pick.sections[section.Key] {
					continue
				}
				fmt.Fprintf(stdout, "== %s ==\n%s\n", section.Title, section.Body)
			}
		}
	}

	if *benchOut != "" {
		if err := appendBenchEntry(*benchOut, newBenchEntry(*benchNote, *scale, *seed, *parallel, totalWall, results)); err != nil {
			return fmt.Errorf("bench-out: %w", err)
		}
	}

	// Every -exp token either errored above or selected a registered
	// scenario, so at least one scenario always ran.
	if *jsonOut {
		return writeRecords(stdout, records)
	}
	return nil
}

// isScenario reports whether name is a registered scenario.
func isScenario(name string) bool {
	_, err := experiment.LookupScenario(name)
	return err == nil
}

// sortedAliases returns the alias names in stable display order.
func sortedAliases() []string {
	al := make([]string, 0, len(aliases))
	for name := range aliases {
		al = append(al, name)
	}
	sort.Strings(al)
	return al
}

// experimentNames lists every accepted -exp value (scenarios then
// aliases) for error messages.
func experimentNames() []string {
	return append(experiment.ScenarioNames(), sortedAliases()...)
}

// listScenarios prints the registry and the table/figure aliases.
func listScenarios(stdout io.Writer) error {
	fmt.Fprintln(stdout, "Registered scenarios (run order of -exp all):")
	for _, s := range experiment.Scenarios() {
		fmt.Fprintf(stdout, "  %-16s %s\n", s.Name(), s.Description())
	}
	fmt.Fprintln(stdout, "Aliases:")
	for _, name := range sortedAliases() {
		a := aliases[name]
		fmt.Fprintf(stdout, "  %-16s %s section of the %s scenario\n", name, a.section, a.scenario)
	}
	return nil
}

func scaleByName(name string) (experiment.Scale, error) {
	switch name {
	case "smoke":
		return experiment.ScaleSmoke, nil
	case "bench":
		return experiment.ScaleBench, nil
	case "paper":
		return experiment.ScalePaper, nil
	default:
		return experiment.Scale{}, fmt.Errorf("unknown scale %q (want smoke|bench|paper)", name)
	}
}
