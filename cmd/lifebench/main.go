// Command lifebench regenerates the Lifeguard paper's tables and
// figures on the discrete-event simulator, plus the WAN coordinate
// experiment built on the zone topology model.
//
// Usage:
//
//	lifebench -exp table4 [-scale smoke|bench|paper] [-seed N]
//	lifebench -exp all -scale bench
//	lifebench -exp wan -json
//	lifebench -exp chaos -json
//
// Experiments: fig1, fig2, fig3, table4, table5, table6, table7, wan,
// chaos, all. Scales trade fidelity for time: smoke (seconds), bench
// (minutes, default), paper (the full grids of Tables II/III with 10
// repetitions — hours).
//
// -json replaces the human-readable tables with a JSON array of
// result records (experiment name, params, metrics), the stable
// interface for tracking bench trajectories across commits.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"lifeguard/internal/experiment"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "lifebench:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("lifebench", flag.ContinueOnError)
	var (
		exp     = fs.String("exp", "all", "experiment: fig1|fig2|fig3|table4|table5|table6|table7|wan|chaos|all")
		scale   = fs.String("scale", "bench", "sweep scale: smoke|bench|paper")
		seed    = fs.Int64("seed", 1, "base RNG seed")
		quiet   = fs.Bool("quiet", false, "suppress progress output")
		timings = fs.Bool("timings", true, "print wall-clock timings per experiment")
		jsonOut = fs.Bool("json", false, "emit machine-readable JSON records instead of tables")

		wanMembers = fs.Int("wan-members", 0, "WAN experiment: members per zone (0 takes the scale default)")
		wanFail    = fs.Int("wan-fail", 3, "WAN experiment: members crashed per zone in the detection phase")

		chaosMembers = fs.Int("chaos-members", 0, "chaos experiment: cluster size (0 takes the scale default)")
		chaosVictims = fs.Int("chaos-victims", 6, "chaos experiment: members afflicted by each scenario's non-fatal fault (0 for none)")
		chaosCrashes = fs.Int("chaos-crashes", 3, "chaos experiment: members hard-crashed during the fault window (0 for none)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	sc, err := scaleByName(*scale)
	if err != nil {
		return err
	}

	progress := func(string) experiment.Progress { return nil }
	if !*quiet {
		progress = func(label string) experiment.Progress {
			return func(done, total int) {
				fmt.Fprintf(os.Stderr, "\r%s: %d/%d", label, done, total)
				if done == total {
					fmt.Fprintln(os.Stderr)
				}
			}
		}
	}

	want := map[string]bool{}
	for _, e := range strings.Split(*exp, ",") {
		want[strings.TrimSpace(e)] = true
	}
	all := want["all"]
	ran := 0
	var records []record

	timed := func(name string, fn func() error) error {
		start := time.Now()
		if err := fn(); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		if *timings {
			fmt.Fprintf(os.Stderr, "[%s took %v]\n", name, time.Since(start).Round(time.Millisecond))
		}
		ran++
		return nil
	}

	// section prints a table header+body unless JSON output is on.
	section := func(title, body string) {
		if *jsonOut {
			return
		}
		fmt.Fprintf(stdout, "== %s ==\n%s\n", title, body)
	}

	// Interval sweeps feed Table IV, Table VI and Figures 2/3; run them
	// once and render all four views.
	if all || want["table4"] || want["table6"] || want["fig2"] || want["fig3"] {
		var results []experiment.IntervalSweepResult
		err := timed("interval-sweeps", func() error {
			for _, proto := range experiment.Configurations {
				r, err := experiment.RunIntervalSweep(proto, sc, *seed, progress("interval "+proto.Name))
				if err != nil {
					return err
				}
				results = append(results, r)
			}
			return nil
		})
		if err != nil {
			return err
		}
		records = append(records, intervalRecords(results, sc.Name, *seed)...)
		if all || want["table4"] {
			section("Table IV: aggregated false positives", experiment.FormatTable4(results))
		}
		if all || want["fig2"] {
			section("Figure 2: total FP vs concurrent anomalies", experiment.FormatFigure2(results, false))
		}
		if all || want["fig3"] {
			section("Figure 3: FP at healthy members vs concurrent anomalies", experiment.FormatFigure2(results, true))
		}
		if all || want["table6"] {
			section("Table VI: message load", experiment.FormatTable6(results))
		}
	}

	if all || want["table5"] {
		var results []experiment.ThresholdSweepResult
		err := timed("threshold-sweeps", func() error {
			for _, proto := range experiment.Configurations {
				r, err := experiment.RunThresholdSweep(proto, sc, *seed, progress("threshold "+proto.Name))
				if err != nil {
					return err
				}
				results = append(results, r)
			}
			return nil
		})
		if err != nil {
			return err
		}
		records = append(records, thresholdRecords(results, sc.Name, *seed)...)
		section("Table V: detection and dissemination latency (s)", experiment.FormatTable5(results))
	}

	if all || want["table7"] {
		var res experiment.TuningSweepResult
		err := timed("tuning-sweep", func() error {
			var err error
			res, err = experiment.RunTuningSweep(
				experiment.PaperAlphas, experiment.PaperBetas, sc, *seed,
				progress("tuning"))
			return err
		})
		if err != nil {
			return err
		}
		records = append(records, tuningRecords(res, sc.Name, *seed)...)
		section("Table VII: performance as % of SWIM under α/β tunings", experiment.FormatTable7(res))
	}

	if all || want["fig1"] {
		var results []experiment.StressSweepResult
		err := timed("stress-sweeps", func() error {
			for _, proto := range []experiment.ProtocolConfig{experiment.ConfigSWIM, experiment.ConfigLifeguard} {
				r, err := experiment.RunStressSweep(proto, sc, *seed, progress("stress "+proto.Name))
				if err != nil {
					return err
				}
				results = append(results, r)
			}
			return nil
		})
		if err != nil {
			return err
		}
		records = append(records, stressRecords(results, sc.Name, *seed)...)
		section("Figure 1: false positives from CPU exhaustion", experiment.FormatFigure1(results))
	}

	if all || want["wan"] {
		var res experiment.WANComparison
		err := timed("wan", func() error {
			perZone := sc.WANMembersPerZone
			if *wanMembers > 0 {
				perZone = *wanMembers
			}
			zones, pairs := experiment.DefaultWANZones(perZone)
			var err error
			res, err = experiment.RunWANComparison(
				experiment.ClusterConfig{Seed: *seed, Protocol: experiment.ConfigLifeguard},
				experiment.WANParams{
					Zones:       zones,
					Pairs:       pairs,
					Converge:    sc.WANConverge,
					FailPerZone: *wanFail,
				},
			)
			return err
		})
		if err != nil {
			return err
		}
		records = append(records,
			wanRecord(res.Static, sc.Name, *seed, false),
			wanRecord(res.Adaptive, sc.Name, *seed, true))
		section("WAN: adaptive vs static topology-aware detection", experiment.FormatWANComparison(res))
	}

	if all || want["chaos"] {
		var res experiment.ChaosResult
		err := timed("chaos", func() error {
			n := sc.ChaosN
			if *chaosMembers > 0 {
				n = *chaosMembers
			}
			// On the CLI, an explicit 0 means "none"; the library's
			// zero value means "default", so map 0 to the negative
			// sentinel.
			victims, crashes := *chaosVictims, *chaosCrashes
			if victims == 0 {
				victims = -1
			}
			if crashes == 0 {
				crashes = -1
			}
			var err error
			res, err = experiment.RunChaos(
				experiment.ClusterConfig{Seed: *seed},
				experiment.ChaosParams{
					N:        n,
					Victims:  victims,
					Crashes:  crashes,
					FaultFor: sc.ChaosFaultFor,
					Settle:   sc.ChaosSettle,
				},
			)
			return err
		})
		if err != nil {
			return err
		}
		records = append(records, chaosRecords(res, sc.Name, *seed)...)
		section("Chaos: fault-scenario matrix × protocol ablation", experiment.FormatChaos(res))
	}

	if ran == 0 {
		return fmt.Errorf("unknown experiment %q (want fig1|fig2|fig3|table4|table5|table6|table7|wan|chaos|all)", *exp)
	}
	if *jsonOut {
		return writeRecords(stdout, records)
	}
	return nil
}

func scaleByName(name string) (experiment.Scale, error) {
	switch name {
	case "smoke":
		return experiment.ScaleSmoke, nil
	case "bench":
		return experiment.ScaleBench, nil
	case "paper":
		return experiment.ScalePaper, nil
	default:
		return experiment.Scale{}, fmt.Errorf("unknown scale %q (want smoke|bench|paper)", name)
	}
}
