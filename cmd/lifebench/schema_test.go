package main

import (
	"bytes"
	"encoding/json"
	"os"
	"strings"
	"testing"

	"lifeguard/internal/experiment"
)

// loadGolden reads a checked-in golden record array strictly: unknown
// fields are rejected, so a renamed or removed struct field fails here
// before it bit-rots the docs.
func loadGolden(t *testing.T, path string) []record {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	var records []record
	if err := dec.Decode(&records); err != nil {
		t.Fatalf("%s no longer matches the record schema: %v", path, err)
	}
	// Every record carries the harness stamp: the run's wall-clock
	// duration (the BENCH perf trajectory) and its cell count.
	for i, rec := range records {
		if rec.Wall <= 0 {
			t.Errorf("%s record %d: wall_s = %g, want > 0", path, i, rec.Wall)
		}
		if rec.Cells <= 0 {
			t.Errorf("%s record %d: cells = %d, want > 0", path, i, rec.Cells)
		}
	}
	return records
}

// TestGoldenWANRecordSchema unmarshals the checked-in golden WAN record
// pair against the documented schema (docs/LIFEBENCH.md): the top-level
// record shape must match exactly (unknown fields are rejected, so a
// renamed or removed struct field fails here before it bit-rots the
// doc), and every fixed param/metric key the document lists must be
// present with a sane value.
func TestGoldenWANRecordSchema(t *testing.T) {
	wanRecords := loadGolden(t, "testdata/wan_record_golden.json")
	if len(wanRecords) != 2 {
		t.Fatalf("golden holds %d records, want 2 (static + adaptive)", len(wanRecords))
	}

	fixedParams := []string{"members", "zones", "fail_per_zone", "converge_s", "adaptive"}
	fixedMetrics := []string{
		"coord_rel_err_median", "coord_rel_err_p99", "coord_abs_err_mean_s",
		"pairs_scored", "fp", "fp_healthy",
		"detect_cross_zone_median_s", "detect_cross_zone_p99_s",
		"msgs_sent", "bytes_sent",
		"adaptive_timeouts", "adaptive_timeout_fallbacks",
		"relay_near_picks", "relay_random_picks",
		"gossip_near_picks", "gossip_escape_picks",
		"obs_rtt_samples", "obs_rtt_p50_err_median", "obs_rtt_p90_err_median",
	}
	perZonePrefixes := []string{
		"detect_median_s_", "detect_cross_zone_median_s_",
		"detected_", "failed_", "fp_",
	}
	// Telemetry-derived per-zone-pair quantile errors: 10 unordered
	// pairs (including intra-zone) on the canonical 4-zone WAN.
	perPairPrefixes := []string{"obs_rtt_p50_err_", "obs_rtt_p90_err_"}

	sawAdaptive := map[bool]bool{}
	for i, rec := range wanRecords {
		if rec.Experiment != "wan" {
			t.Errorf("record %d: experiment %q, want wan", i, rec.Experiment)
		}
		for _, key := range fixedParams {
			if _, ok := rec.Params[key]; !ok {
				t.Errorf("record %d: documented param %q missing", i, key)
			}
		}
		for _, key := range fixedMetrics {
			if _, ok := rec.Metrics[key]; !ok {
				t.Errorf("record %d: documented metric %q missing", i, key)
			}
		}
		for _, prefix := range perZonePrefixes {
			found := 0
			for key := range rec.Metrics {
				if strings.HasPrefix(key, prefix) {
					found++
				}
			}
			// The golden run uses the canonical 4-zone WAN. fp_ also
			// prefixes fp_healthy; only the per-zone count matters.
			if found < 4 {
				t.Errorf("record %d: %d per-zone metrics with prefix %q, want ≥ 4", i, found, prefix)
			}
		}
		if rec.Metrics["obs_rtt_samples"] <= 0 {
			t.Errorf("record %d: obs_rtt_samples = %g, want > 0 (telemetry not flowing)", i, rec.Metrics["obs_rtt_samples"])
		}
		for _, prefix := range perPairPrefixes {
			found := 0
			for key := range rec.Metrics {
				if strings.HasPrefix(key, prefix) && !strings.HasSuffix(key, "_median") {
					found++
				}
			}
			if found != 10 {
				t.Errorf("record %d: %d per-pair metrics with prefix %q, want 10", i, found, prefix)
			}
		}
		a, ok := rec.Params["adaptive"].(bool)
		if !ok {
			t.Fatalf("record %d: adaptive param is %T, want bool", i, rec.Params["adaptive"])
		}
		sawAdaptive[a] = true
	}
	if !sawAdaptive[false] || !sawAdaptive[true] {
		t.Errorf("golden must hold one static and one adaptive record, got %v", sawAdaptive)
	}
}

// TestGoldenChaosRecordSchema unmarshals the checked-in golden chaos
// matrix against the documented schema (docs/LIFEBENCH.md): one record
// per (scenario, configuration) cell, every documented param and
// metric key present, the full scenario and configuration axes
// covered, and the fault engine's duplication/reordering counters
// demonstrably flowing end to end (non-zero in the lossy cells).
func TestGoldenChaosRecordSchema(t *testing.T) {
	records := loadGolden(t, "testdata/chaos_record_golden.json")
	scenarios := experiment.ChaosScenarioNames()
	wantCells := len(scenarios) * len(experiment.Configurations)
	if len(records) != wantCells {
		t.Fatalf("golden holds %d records, want %d (scenarios × configurations)", len(records), wantCells)
	}

	fixedParams := []string{"scenario", "members", "victims", "crashes", "fault_for_s", "crash_at_s"}
	fixedMetrics := []string{
		"fp", "fp_healthy", "victim_deaths",
		"crashes_detected", "crash_detect_median_s", "crash_detect_max_s",
		"suspicions", "refuted", "refute_median_s",
		"msgs_sent", "bytes_sent",
		"duplicated", "reordered", "fault_drops",
	}

	sawScenario := map[string]bool{}
	sawConfig := map[string]bool{}
	lossyCountersEngaged := false
	for i, rec := range records {
		if rec.Experiment != "chaos" {
			t.Errorf("record %d: experiment %q, want chaos", i, rec.Experiment)
		}
		for _, key := range fixedParams {
			if _, ok := rec.Params[key]; !ok {
				t.Errorf("record %d: documented param %q missing", i, key)
			}
		}
		for _, key := range fixedMetrics {
			if _, ok := rec.Metrics[key]; !ok {
				t.Errorf("record %d: documented metric %q missing", i, key)
			}
		}
		scenario, ok := rec.Params["scenario"].(string)
		if !ok {
			t.Fatalf("record %d: scenario param is %T, want string", i, rec.Params["scenario"])
		}
		sawScenario[scenario] = true
		sawConfig[rec.Config] = true
		if scenario == "lossy-link" && rec.Metrics["duplicated"] > 0 && rec.Metrics["reordered"] > 0 {
			lossyCountersEngaged = true
		}
		if rec.Metrics["crashes_detected"] == 0 {
			t.Errorf("record %d (%s/%s): no crashes detected", i, scenario, rec.Config)
		}
	}
	for _, name := range scenarios {
		if !sawScenario[name] {
			t.Errorf("scenario %q missing from the golden matrix", name)
		}
	}
	for _, proto := range experiment.Configurations {
		if !sawConfig[proto.Name] {
			t.Errorf("configuration %q missing from the golden matrix", proto.Name)
		}
	}
	if !lossyCountersEngaged {
		t.Error("lossy-link cells show no duplicated/reordered packets — fault counters not flowing")
	}
}

// TestGoldenRestartRecordSchema unmarshals the checked-in golden
// rolling-restart records against the documented schema
// (docs/LIFEBENCH.md): one record per Table I configuration, every
// documented param and metric key present, and the rejoin machinery
// demonstrably working (every restarted member rejoined).
func TestGoldenRestartRecordSchema(t *testing.T) {
	records := loadGolden(t, "testdata/restart_record_golden.json")
	if len(records) != len(experiment.Configurations) {
		t.Fatalf("golden holds %d records, want %d (one per configuration)", len(records), len(experiment.Configurations))
	}

	fixedParams := []string{"members", "waves", "per_wave", "down_for_s", "stagger_s", "wave_every_s", "settle_s"}
	fixedMetrics := []string{
		"restarts", "rejoined", "fp", "fp_healthy",
		"rejoin_median_s", "rejoin_max_s",
		"msgs_sent", "bytes_sent",
	}

	sawConfig := map[string]bool{}
	for i, rec := range records {
		if rec.Experiment != "rolling-restart" {
			t.Errorf("record %d: experiment %q, want rolling-restart", i, rec.Experiment)
		}
		for _, key := range fixedParams {
			if _, ok := rec.Params[key]; !ok {
				t.Errorf("record %d: documented param %q missing", i, key)
			}
		}
		for _, key := range fixedMetrics {
			if _, ok := rec.Metrics[key]; !ok {
				t.Errorf("record %d: documented metric %q missing", i, key)
			}
		}
		sawConfig[rec.Config] = true
		if rec.Metrics["restarts"] == 0 {
			t.Errorf("record %d (%s): no members restarted", i, rec.Config)
		}
		if rec.Metrics["rejoined"] != rec.Metrics["restarts"] {
			t.Errorf("record %d (%s): %g of %g restarted members rejoined",
				i, rec.Config, rec.Metrics["rejoined"], rec.Metrics["restarts"])
		}
	}
	for _, proto := range experiment.Configurations {
		if !sawConfig[proto.Name] {
			t.Errorf("configuration %q missing from the golden records", proto.Name)
		}
	}
}
