package main

import (
	"bytes"
	"encoding/json"
	"os"
	"strings"
	"testing"
)

// TestGoldenWANRecordSchema unmarshals the checked-in golden WAN record
// pair against the documented schema (docs/LIFEBENCH.md): the top-level
// record shape must match exactly (unknown fields are rejected, so a
// renamed or removed struct field fails here before it bit-rots the
// doc), and every fixed param/metric key the document lists must be
// present with a sane value.
func TestGoldenWANRecordSchema(t *testing.T) {
	raw, err := os.ReadFile("testdata/wan_record_golden.json")
	if err != nil {
		t.Fatal(err)
	}
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	var records []record
	if err := dec.Decode(&records); err != nil {
		t.Fatalf("golden record no longer matches the record schema: %v", err)
	}
	if len(records) != 2 {
		t.Fatalf("golden holds %d records, want 2 (static + adaptive)", len(records))
	}

	fixedParams := []string{"members", "zones", "fail_per_zone", "converge_s", "adaptive"}
	fixedMetrics := []string{
		"coord_rel_err_median", "coord_rel_err_p99", "coord_abs_err_mean_s",
		"pairs_scored", "fp", "fp_healthy",
		"detect_cross_zone_median_s", "detect_cross_zone_p99_s",
		"msgs_sent", "bytes_sent",
		"adaptive_timeouts", "adaptive_timeout_fallbacks",
		"relay_near_picks", "relay_random_picks",
		"gossip_near_picks", "gossip_escape_picks",
	}
	perZonePrefixes := []string{
		"detect_median_s_", "detect_cross_zone_median_s_",
		"detected_", "failed_", "fp_",
	}

	sawAdaptive := map[bool]bool{}
	for i, rec := range records {
		if rec.Experiment != "wan" {
			t.Errorf("record %d: experiment %q, want wan", i, rec.Experiment)
		}
		for _, key := range fixedParams {
			if _, ok := rec.Params[key]; !ok {
				t.Errorf("record %d: documented param %q missing", i, key)
			}
		}
		for _, key := range fixedMetrics {
			if _, ok := rec.Metrics[key]; !ok {
				t.Errorf("record %d: documented metric %q missing", i, key)
			}
		}
		for _, prefix := range perZonePrefixes {
			found := 0
			for key := range rec.Metrics {
				if strings.HasPrefix(key, prefix) {
					found++
				}
			}
			// The golden run uses the canonical 4-zone WAN. fp_ also
			// prefixes fp_healthy; only the per-zone count matters.
			if found < 4 {
				t.Errorf("record %d: %d per-zone metrics with prefix %q, want ≥ 4", i, found, prefix)
			}
		}
		a, ok := rec.Params["adaptive"].(bool)
		if !ok {
			t.Fatalf("record %d: adaptive param is %T, want bool", i, rec.Params["adaptive"])
		}
		sawAdaptive[a] = true
	}
	if !sawAdaptive[false] || !sawAdaptive[true] {
		t.Errorf("golden must hold one static and one adaptive record, got %v", sawAdaptive)
	}
}
