// Package simulation exposes the discrete-event experiment harness the
// paper's evaluation runs on: simulated clusters with virtual time,
// anomaly injection (the paper's block/unblock slow-processing model),
// and the Threshold, Interval and CPU-exhaustion experiments.
//
// It is the public face of internal/experiment, letting library users
// reproduce the paper's results or evaluate their own tunings without
// deploying real clusters:
//
//	res, err := simulation.RunInterval(
//	    simulation.ClusterConfig{N: 128, Seed: 1, Protocol: simulation.ConfigLifeguard},
//	    simulation.IntervalParams{C: 8, D: 16 * time.Second, I: 64 * time.Millisecond},
//	)
package simulation

import (
	"lifeguard/internal/experiment"
	"lifeguard/internal/sim"
)

// ProtocolConfig selects Lifeguard components and suspicion tuning.
type ProtocolConfig = experiment.ProtocolConfig

// The paper's five test configurations (Table I).
var (
	// ConfigSWIM is the baseline with all Lifeguard components off.
	ConfigSWIM = experiment.ConfigSWIM

	// ConfigLHAProbe enables only Local Health Aware Probe.
	ConfigLHAProbe = experiment.ConfigLHAProbe

	// ConfigLHASuspicion enables only Local Health Aware Suspicion.
	ConfigLHASuspicion = experiment.ConfigLHASuspicion

	// ConfigBuddy enables only the Buddy System.
	ConfigBuddy = experiment.ConfigBuddy

	// ConfigLifeguard enables all three components (α=5, β=6).
	ConfigLifeguard = experiment.ConfigLifeguard
)

// Configurations lists Table I in the paper's order.
var Configurations = experiment.Configurations

// ClusterConfig sizes and seeds a simulated cluster.
type ClusterConfig = experiment.ClusterConfig

// Cluster is a simulated group of protocol nodes with anomaly gates.
// Use it directly for custom experiments; the Run helpers cover the
// paper's.
type Cluster = experiment.Cluster

// NewCluster builds a simulated cluster.
func NewCluster(cc ClusterConfig) (*Cluster, error) { return experiment.NewCluster(cc) }

// Experiment parameter and result types.
type (
	// ThresholdParams is one Threshold experiment (§V-D1).
	ThresholdParams = experiment.ThresholdParams

	// ThresholdResult holds detection/dissemination latency samples.
	ThresholdResult = experiment.ThresholdResult

	// IntervalParams is one Interval experiment (§V-D2).
	IntervalParams = experiment.IntervalParams

	// IntervalResult holds false-positive and message-load counts.
	IntervalResult = experiment.IntervalResult

	// StressParams is the Figure-1 CPU-exhaustion scenario.
	StressParams = experiment.StressParams

	// StressResult holds the Figure-1 metrics.
	StressResult = experiment.StressResult

	// PartitionParams is the partition/heal experiment behind the
	// paper's §II robustness claim.
	PartitionParams = experiment.PartitionParams

	// PartitionResult reports behaviour across a partition.
	PartitionResult = experiment.PartitionResult

	// ChurnParams is the large-cluster churn scenario: a paper-scale
	// cluster under continuous join/leave/fail membership change.
	ChurnParams = experiment.ChurnParams

	// ChurnResult reports detection latency, false positives and join
	// convergence across one churn run.
	ChurnResult = experiment.ChurnResult

	// LinkProfile is one zone-pair's one-way delay model in a WAN
	// topology: Base delay plus a uniform random addition in
	// [0, Jitter), both in virtual time. The zero value means "use the
	// topology default".
	LinkProfile = sim.LinkProfile

	// WANZone names one zone of a WAN experiment and the number of
	// members placed in it.
	WANZone = experiment.WANZone

	// WANParams parameterizes a WAN experiment: zones and their link
	// profiles, the coordinate-convergence phase, and the per-zone
	// failure phase. Zero-value fields take the defaults documented on
	// the experiment package's type.
	WANParams = experiment.WANParams

	// WANZoneResult is the per-zone slice of a WAN run: failure counts,
	// detection latency summaries (overall and cross-zone) and false
	// positives.
	WANZoneResult = experiment.WANZoneResult

	// WANResult holds one WAN run's metrics: coordinate accuracy,
	// per-zone detection, cross-zone detection latency, bandwidth, the
	// adaptive-extension counters, and — when the cluster runs with
	// ClusterConfig.Telemetry — the observed-RTT-versus-ground-truth
	// quantile errors.
	WANResult = experiment.WANResult

	// WANPairRTTErr compares telemetry-observed RTT quantiles against
	// the simulator's ground truth for one unordered zone pair.
	WANPairRTTErr = experiment.WANPairRTTErr

	// WANComparison holds a same-seed adaptive-versus-static pair of
	// WAN runs.
	WANComparison = experiment.WANComparison

	// DelayDist is a delay distribution for fault injection: Base plus
	// a uniform random addition in [0, Jitter). The zero value means
	// "no delay".
	DelayDist = sim.DelayDist

	// PauseMode selects what happens to a paused member's inbound
	// packets: buffered (PauseBuffer) or discarded (PauseDrop).
	PauseMode = sim.PauseMode

	// LinkFault is an injected per-link impairment: extra loss,
	// duplication and reordering on one directed member link.
	LinkFault = sim.LinkFault

	// FaultSchedule is a deterministic, time-ordered script of fault
	// transitions — member degradation, pause/resume, crashes, link
	// impairments and partitions — applied on the simulation's event
	// loop. Build one and install it with Cluster.Net.InstallFaults for
	// custom chaos experiments; RunChaos builds them from named
	// scenarios.
	FaultSchedule = sim.FaultSchedule

	// ChaosParams parameterizes the chaos scenario matrix: cluster and
	// fault-set sizes, the fault window, per-scenario fault levels, and
	// the scenario/configuration axes.
	ChaosParams = experiment.ChaosParams

	// ChaosCellResult is one (scenario, configuration) cell of a chaos
	// matrix: false positives, victim deaths, crash-detection latency,
	// refutation behaviour, transport load and the fault-intervention
	// counters, plus a determinism digest of the full event log.
	ChaosCellResult = experiment.ChaosCellResult

	// ChaosResult holds one chaos matrix run.
	ChaosResult = experiment.ChaosResult

	// RestartParams parameterizes the rolling-restart scenario: members
	// leave and rejoin under the same name in staggered waves (a
	// rolling deploy), scored per Table I configuration.
	RestartParams = experiment.RestartParams

	// RestartCellResult is one configuration's rolling-restart score:
	// false positives, rejoin convergence, transport load and a
	// determinism digest.
	RestartCellResult = experiment.RestartCellResult

	// RestartResult holds one rolling-restart run across the
	// configuration axis.
	RestartResult = experiment.RestartResult

	// Scale selects how much of the paper's combinatorial space a
	// sweep covers: parameter grids, cluster sizes and durations for
	// every scenario.
	Scale = experiment.Scale

	// Record is one machine-readable result row of a scenario run —
	// the unified format cmd/lifebench emits under -json.
	Record = experiment.Record

	// Section is one human-readable report block of a scenario.
	Section = experiment.Section

	// ScenarioResult is a scenario run's merged output: records plus
	// report sections.
	ScenarioResult = experiment.ScenarioResult

	// Cell is one independent unit of scenario work: a fully seeded
	// simulation run the executor may schedule concurrently.
	Cell = experiment.Cell

	// RunOptions parameterizes one scenario run: scale, seed,
	// parallelism, progress callbacks and per-scenario overrides.
	RunOptions = experiment.RunOptions

	// Scenario is one registered experiment: it plans independent
	// seeded cells and merges their outputs into records and sections.
	// Implement it and call RegisterScenario to add custom scenarios to
	// the harness.
	Scenario = experiment.Scenario

	// Progress receives completion callbacks (done and total cells).
	Progress = experiment.Progress
)

// The built-in sweep scales.
var (
	// ScaleSmoke is a minimal scale for tests: seconds of wall time.
	ScaleSmoke = experiment.ScaleSmoke

	// ScaleBench is the default benchmark scale: minutes.
	ScaleBench = experiment.ScaleBench

	// ScalePaper is the paper's full grids with 10 repetitions: hours.
	ScalePaper = experiment.ScalePaper
)

// Pause modes for FaultSchedule.PauseNode.
const (
	// PauseBuffer queues a paused member's inbound packets for
	// processing after resume (the paper's §V-D anomaly model).
	PauseBuffer = sim.PauseBuffer

	// PauseDrop discards a paused member's inbound packets; never
	// resumed, it models a hard crash.
	PauseDrop = sim.PauseDrop
)

// RunThreshold executes one Threshold experiment: a single set of C
// fully-correlated anomalies of duration D, measuring detection and
// dissemination latency.
func RunThreshold(cc ClusterConfig, p ThresholdParams) (ThresholdResult, error) {
	return experiment.RunThreshold(cc, p)
}

// RunInterval executes one Interval experiment: cyclic anomalies of
// duration D separated by intervals I, measuring false positives and
// message load.
func RunInterval(cc ClusterConfig, p IntervalParams) (IntervalResult, error) {
	return experiment.RunInterval(cc, p)
}

// RunStress executes one Figure-1 CPU-exhaustion run: a 100-member
// cluster with Stressed members on a heavy block/wake duty cycle.
func RunStress(cc ClusterConfig, p StressParams) (StressResult, error) {
	return experiment.RunStress(cc, p)
}

// RunPartition executes one partition/heal experiment: the cluster is
// split into two halves, both sides settle on their own membership, the
// partition heals, and the groups automatically re-merge (§II).
func RunPartition(cc ClusterConfig, p PartitionParams) (PartitionResult, error) {
	return experiment.RunPartition(cc, p)
}

// RunChurn executes the large-cluster churn scenario: a cluster of
// ClusterConfig.N members (2048 by default) under a steady
// fail/join/leave cycle, measuring crash-detection latency, false
// positives and join convergence at paper scale.
func RunChurn(cc ClusterConfig, p ChurnParams) (ChurnResult, error) {
	return experiment.RunChurn(cc, p)
}

// RunWAN executes one WAN experiment: a multi-zone cluster on a
// topology-aware network, a coordinate-convergence phase scored against
// the simulator's ground-truth RTTs, and a per-zone failure phase
// scored for detection latency (including cross-zone) and false
// positives. Set ClusterConfig.TopologyAware to run it with the
// coordinate-driven protocol extensions enabled.
func RunWAN(cc ClusterConfig, p WANParams) (WANResult, error) {
	return experiment.RunWAN(cc, p)
}

// RunWANComparison executes the WAN experiment twice with the same seed
// and parameters — once static, once topology-aware — so detection
// latency, false positives and bandwidth can be compared directly.
func RunWANComparison(cc ClusterConfig, p WANParams) (WANComparison, error) {
	return experiment.RunWANComparison(cc, p)
}

// DefaultWANZones returns the canonical 4-zone WAN (two US zones,
// Europe, Asia-Pacific) with realistic inter-zone latencies and
// membersPerZone members in each zone.
func DefaultWANZones(membersPerZone int) ([]WANZone, map[[2]string]LinkProfile) {
	return experiment.DefaultWANZones(membersPerZone)
}

// FormatWAN renders one WAN result as a human-readable table.
func FormatWAN(r WANResult) string { return experiment.FormatWAN(r) }

// FormatWANComparison renders an adaptive-versus-static WAN pair with
// the headline deltas.
func FormatWANComparison(c WANComparison) string { return experiment.FormatWANComparison(c) }

// RunChaos executes the chaos scenario matrix: every named fault
// scenario (degraded members, pause/resume flaps, asymmetric
// partitions, lossy links, and all combined) crossed with the Table I
// protocol ablation at one shared seed, each cell mixing non-fatal
// faults on a victim set with real hard crashes and scoring false
// positives, crash-detection latency and refutation latency.
func RunChaos(cc ClusterConfig, p ChaosParams) (ChaosResult, error) {
	return experiment.RunChaos(cc, p)
}

// ChaosScenarioNames lists the chaos scenarios in matrix order.
func ChaosScenarioNames() []string { return experiment.ChaosScenarioNames() }

// FormatChaos renders a chaos matrix as a human-readable ablation
// table.
func FormatChaos(r ChaosResult) string { return experiment.FormatChaos(r) }

// RunRestart executes the rolling-restart scenario: members leave and
// rejoin under the same name in staggered waves, scored per Table I
// configuration on false positives, re-join convergence time and
// bandwidth.
func RunRestart(cc ClusterConfig, p RestartParams) (RestartResult, error) {
	return experiment.RunRestart(cc, p)
}

// FormatRestart renders a rolling-restart run as a human-readable
// per-configuration table.
func FormatRestart(r RestartResult) string { return experiment.FormatRestart(r) }

// FormatChurn renders one churn run as a human-readable summary.
func FormatChurn(r ChurnResult) string { return experiment.FormatChurn(r) }

// FormatPartition renders one partition/heal run as a human-readable
// summary.
func FormatPartition(r PartitionResult) string { return experiment.FormatPartition(r) }

// Scenarios returns the registered scenarios in registration order —
// the canonical run order of lifebench's -exp all.
func Scenarios() []Scenario { return experiment.Scenarios() }

// ScenarioNames returns the registered scenario names in registration
// order.
func ScenarioNames() []string { return experiment.ScenarioNames() }

// LookupScenario resolves a registered scenario by name.
func LookupScenario(name string) (Scenario, error) { return experiment.LookupScenario(name) }

// RegisterScenario adds a custom scenario to the registry, making it
// runnable through RunScenario alongside the built-ins. It panics on a
// duplicate name.
func RegisterScenario(s Scenario) { experiment.Register(s) }

// RunScenario plans, executes and reports one registered scenario. Up
// to opt.Parallel independent cells run concurrently; because every
// cell's seed derives from its canonical position, the records are
// byte-identical at any parallelism. Each record is stamped with the
// scale, seed, cell count and the run's wall-clock duration.
func RunScenario(name string, opt RunOptions) (ScenarioResult, error) {
	return experiment.RunScenario(name, opt)
}

// NamedResult is one scenario's output from a RunScenarios batch: the
// scenario name, its merged result, its wall-clock span in seconds and
// its cell count.
type NamedResult = experiment.NamedResult

// RunScenarios plans every named scenario up front and executes all
// their cells through one worker pool of up to opt.Parallel workers,
// so a short scenario's tail never idles workers while a long one
// runs. Results come back in the order names were given, each
// byte-identical to a standalone RunScenario run (wall_s aside).
func RunScenarios(names []string, opt RunOptions) ([]NamedResult, error) {
	return experiment.RunScenarios(names, opt)
}

// NodeName returns the canonical member name for index i in a simulated
// cluster, useful for targeting specific members in custom experiments.
func NodeName(i int) string { return experiment.NodeName(i) }
